/**
 * @file
 * Table VI reproduction: effect of the FFT folding optimization on
 * latency, throughput, FFT-unit area, and total core area (parameter
 * set I, both Strix variants sized for 16,384-point transforms).
 */

#include <cstdio>

#include "common/table.h"
#include "strix/accelerator.h"
#include "strix/area_model.h"

using namespace strix;

int
main()
{
    std::printf("=== Table VI: FFT folding optimization effects "
                "(parameter set I) ===\n\n");

    StrixAccelerator folded{StrixConfig::paperDefault()};
    StrixAccelerator unfolded{StrixConfig::paperNoFolding()};
    PbsPerf pf = folded.evaluatePbs(paramsSetI());
    PbsPerf pn = unfolded.evaluatePbs(paramsSetI());
    ChipBreakdown af = computeChipBreakdown(StrixConfig::paperDefault());
    ChipBreakdown an =
        computeChipBreakdown(StrixConfig::paperNoFolding());

    TextTable t;
    t.header({"Metric", "No Fold.", "With Fold.", "Improv.",
              "paper Improv."});
    t.row({"Latency (ms)", TextTable::num(pn.latency_ms, 2),
           TextTable::num(pf.latency_ms, 2),
           TextTable::num(pn.latency_ms / pf.latency_ms, 2) + "x",
           "1.68x"});
    t.row({"Throughput (PBS/s)",
           TextTable::num(pn.throughput_pbs_s, 0),
           TextTable::num(pf.throughput_pbs_s, 0),
           TextTable::num(pf.throughput_pbs_s / pn.throughput_pbs_s, 2) +
               "x",
           "1.99x"});
    t.row({"FFT Unit Area (mm2)",
           TextTable::num(an.fft_instance_mm2, 2),
           TextTable::num(af.fft_instance_mm2, 2),
           TextTable::num(an.fft_instance_mm2 / af.fft_instance_mm2, 2) +
               "x",
           "1.73x"});
    t.row({"Total Core Area (mm2)", TextTable::num(an.core.area_mm2, 2),
           TextTable::num(af.core.area_mm2, 2),
           TextTable::num(an.core.area_mm2 / af.core.area_mm2, 2) + "x",
           "1.48x"});
    t.print();

    std::printf("\nPaper values: latency 0.27 -> 0.16 ms, throughput "
                "37,472 -> 74,696 PBS/s, FFT unit 3.13 -> 1.81 mm2, "
                "core 13.87 -> 9.38 mm2.\n");
    std::printf("The folding scheme packs coefficient j and j+N/2 into "
                "one complex sample, so an N-point negacyclic "
                "transform runs on an N/2-point pipelined FFT "
                "(Sec. V-A).\n");
    return 0;
}
