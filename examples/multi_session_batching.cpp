/**
 * @file
 * Cross-session dynamic batching: many concurrent serving sessions,
 * one BatchExecutor, full-width PBS sweeps.
 *
 * The scenario behind Strix's two-level batching (Sec. III): a server
 * hosts many low-rate sessions, and no single session ever has enough
 * ciphertexts in hand to fill the PBS pipeline by itself. Per-call
 * batching (`bootstrapBatch`) cannot help -- each call sees one
 * session's one or two requests. The BatchExecutor closes the gap:
 * sessions submit individual requests through the async API
 * (`ServerContext::submitApplyLut`) and requests that share a key
 * bundle -- tenants resolved through the ContextCache, so identity is
 * the EvalKeys pointer -- coalesce into full sweeps. A second tenant
 * runs alongside to show the isolation property: its requests land in
 * their own shard and are never mixed into the first tenant's sweeps.
 *
 * Every result is self-checked by decryption; the demo exits nonzero
 * on any mismatch.
 */

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "tfhe/batch_executor.h"
#include "tfhe/context_cache.h"
#include "tfhe/server_context.h"

using namespace strix;

namespace {

constexpr uint64_t kSpace = 8;
constexpr int kSessions = 4;
constexpr int kRequestsPerSession = 8;
constexpr uint64_t kTenantSeedA = 7001;
constexpr uint64_t kTenantSeedB = 7002;

/**
 * One serving session: fetch the tenant's cached keys, open a
 * ServerContext on the shared executor, submit a stream of LUT
 * requests, and self-check every decrypted answer. Returns the number
 * of mismatches.
 */
int
runSession(int session, std::shared_ptr<BatchExecutor> exec)
{
    const uint64_t seed = session % 2 == 0 ? kTenantSeedA : kTenantSeedB;
    auto keyset = ContextCache::global().getOrCreateKeyset(
        testParams(48, 512), seed);

    ServerContext server(keyset->evalKeys());
    server.attachExecutor(std::move(exec));

    auto triple = [](int64_t v) { return (3 * v) % int64_t(kSpace); };
    std::vector<std::future<LweCiphertext>> futs;
    for (int i = 0; i < kRequestsPerSession; ++i) {
        LweCiphertext ct =
            keyset->encryptInt(int64_t(i) % int64_t(kSpace), kSpace);
        futs.push_back(server.submitApplyLut(ct, kSpace, triple));
    }

    int mismatches = 0;
    for (int i = 0; i < kRequestsPerSession; ++i) {
        int64_t got = keyset->decryptInt(futs[size_t(i)].get(), kSpace);
        int64_t want = triple(int64_t(i) % int64_t(kSpace));
        if (got != want) {
            std::fprintf(stderr,
                         "session %d request %d: got %lld want %lld\n",
                         session, i, (long long)got, (long long)want);
            ++mismatches;
        }
    }
    return mismatches;
}

} // namespace

int
main()
{
    std::printf("=== Cross-session dynamic batching demo ===\n\n");
    std::printf("%d sessions x %d PBS requests, 2 tenants, one "
                "BatchExecutor\n\n",
                kSessions, kRequestsPerSession);

    BatchExecutor::Options opts;
    opts.target_batch = 8;     // sweep width the paper's TvLP plays
    opts.flush_delay_us = 500; // latency bound for a trickling session
    auto exec = std::make_shared<BatchExecutor>(opts);

    std::vector<std::thread> sessions;
    std::vector<int> mismatches(kSessions, 0);
    for (int s = 0; s < kSessions; ++s)
        sessions.emplace_back(
            [&, s] { mismatches[size_t(s)] = runSession(s, exec); });
    for (auto &t : sessions)
        t.join();
    exec->drain();

    int bad = 0;
    for (int m : mismatches)
        bad += m;

    BatchExecutor::Stats st = exec->stats();
    std::printf("requests submitted:   %llu\n",
                (unsigned long long)st.submitted);
    std::printf("sweeps issued:        %llu  (size %llu / deadline "
                "%llu / drain %llu)\n",
                (unsigned long long)st.sweeps,
                (unsigned long long)st.size_flushes,
                (unsigned long long)st.deadline_flushes,
                (unsigned long long)st.drain_flushes);
    std::printf("tenant shards:        %zu  (requests never co-batch "
                "across key bundles)\n",
                st.shards);
    std::printf("sweep occupancy:      %.2f  (mean width / target "
                "width %zu)\n",
                st.occupancy(opts.target_batch), opts.target_batch);
    std::printf("self-check:           %s\n",
                bad == 0 ? "all decryptions correct"
                         : "MISMATCHES FOUND");

    std::printf("\nReading: no single session ever fills a sweep by "
                "itself; the executor's coalescing is what keeps the "
                "batch path busy -- the software analogue of keeping "
                "the HSC pipeline full across the device-level batch "
                "(Sec. IV-C).\n");
    return bad == 0 ? 0 : 1;
}
