#include "support/test_util.h"

namespace strix {
namespace test {

TorusPolynomial
randomTorusPoly(size_t n, Rng &rng)
{
    TorusPolynomial p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = rng.uniformTorus32();
    return p;
}

IntPolynomial
randomSmallIntPoly(size_t n, int32_t bound, Rng &rng)
{
    IntPolynomial p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = static_cast<int32_t>(rng.uniformBelow(2 * bound + 1)) -
               bound;
    return p;
}

TorusPolynomial
randomMessagePoly(uint32_t n, Rng &rng, uint64_t space)
{
    TorusPolynomial mu(n);
    for (uint32_t i = 0; i < n; ++i)
        mu[i] = encodeMessage(
            static_cast<int64_t>(rng.uniformBelow(space)), space);
    return mu;
}

TfheParams
fastParams()
{
    return testParams(48, 512, 1, 3, 8, 0.0);
}

TfheParams
midParams()
{
    return testParams(20, 256, 1, 3, 8, 0.0);
}

} // namespace test
} // namespace strix
