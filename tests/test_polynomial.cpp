/**
 * @file
 * Unit and property tests for negacyclic polynomial arithmetic.
 * Schoolbook, Karatsuba, and FFT multipliers are cross-checked.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "poly/negacyclic_fft.h"
#include "poly/polynomial.h"
#include "support/test_util.h"

namespace strix {
namespace {

using test::randomSmallIntPoly;
using test::randomTorusPoly;

TEST(Polynomial, AddSubRoundTrip)
{
    Rng rng(1);
    TorusPolynomial a = randomTorusPoly(64, rng);
    TorusPolynomial b = randomTorusPoly(64, rng);
    TorusPolynomial c = a;
    c.addAssign(b);
    c.subAssign(b);
    EXPECT_EQ(c, a);
}

TEST(Polynomial, NegateIsAdditiveInverse)
{
    Rng rng(2);
    TorusPolynomial a = randomTorusPoly(32, rng);
    TorusPolynomial b = a;
    b.negate();
    a.addAssign(b);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], 0u);
}

TEST(Polynomial, RotateByZeroIsIdentity)
{
    Rng rng(3);
    TorusPolynomial a = randomTorusPoly(64, rng);
    TorusPolynomial out(64);
    negacyclicRotate(out, a, 0);
    EXPECT_EQ(out, a);
}

TEST(Polynomial, RotateByNNegates)
{
    Rng rng(4);
    const size_t n = 64;
    TorusPolynomial a = randomTorusPoly(n, rng);
    TorusPolynomial out(n);
    negacyclicRotate(out, a, static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], 0u - a[i]);
}

TEST(Polynomial, RotateBy2NIsIdentity)
{
    Rng rng(5);
    const size_t n = 64;
    TorusPolynomial a = randomTorusPoly(n, rng);
    TorusPolynomial out(n);
    negacyclicRotate(out, a, static_cast<uint32_t>(2 * n));
    EXPECT_EQ(out, a);
}

TEST(Polynomial, RotationComposes)
{
    Rng rng(6);
    const size_t n = 128;
    TorusPolynomial a = randomTorusPoly(n, rng);
    TorusPolynomial r1(n), r2(n), direct(n);
    negacyclicRotate(r1, a, 37);
    negacyclicRotate(r2, r1, 99);
    negacyclicRotate(direct, a, 136);
    EXPECT_EQ(r2, direct);
}

TEST(Polynomial, RotateMatchesMonomialMultiplication)
{
    // X^a * poly computed via schoolbook with a one-hot IntPolynomial.
    Rng rng(7);
    const size_t n = 32;
    TorusPolynomial p = randomTorusPoly(n, rng);
    for (uint32_t power : {1u, 5u, 31u, 32u, 40u, 63u}) {
        TorusPolynomial rotated(n);
        negacyclicRotate(rotated, p, power);

        IntPolynomial monomial(n);
        bool neg = power >= n;
        monomial[power % n] = neg ? -1 : 1;
        TorusPolynomial expected(n);
        negacyclicMulNaive(expected, monomial, p);
        EXPECT_EQ(rotated, expected) << "power=" << power;
    }
}

TEST(Polynomial, RotateMinusOne)
{
    Rng rng(8);
    const size_t n = 64;
    TorusPolynomial p = randomTorusPoly(n, rng);
    TorusPolynomial got(n), rot(n);
    negacyclicRotateMinusOne(got, p, 17);
    negacyclicRotate(rot, p, 17);
    rot.subAssign(p);
    EXPECT_EQ(got, rot);
}

/** Karatsuba vs schoolbook over random inputs at several sizes. */
class MulCrossCheck : public ::testing::TestWithParam<size_t>
{
};

TEST_P(MulCrossCheck, KaratsubaMatchesNaive)
{
    const size_t n = GetParam();
    Rng rng(100 + n);
    for (int trial = 0; trial < 5; ++trial) {
        IntPolynomial a = randomSmallIntPoly(n, 512, rng);
        TorusPolynomial b = randomTorusPoly(n, rng);
        TorusPolynomial r1(n), r2(n);
        negacyclicMulNaive(r1, a, b);
        negacyclicMulKaratsuba(r2, a, b);
        EXPECT_EQ(r1, r2) << "n=" << n << " trial=" << trial;
    }
}

TEST_P(MulCrossCheck, FftMatchesNaive)
{
    const size_t n = GetParam();
    Rng rng(200 + n);
    for (int trial = 0; trial < 5; ++trial) {
        // FFT path is exact only up to rounding; with small int
        // coefficients the products stay far below 2^53 and the
        // result must round to the exact value.
        IntPolynomial a = randomSmallIntPoly(n, 512, rng);
        TorusPolynomial b = randomTorusPoly(n, rng);
        TorusPolynomial r1(n), r2(n);
        negacyclicMulNaive(r1, a, b);
        negacyclicMulFft(r2, a, b);
        int64_t max_err = 0;
        for (size_t i = 0; i < n; ++i) {
            int64_t e = std::abs(
                static_cast<int64_t>(torusDistance(r1[i], r2[i])));
            max_err = std::max(max_err, e);
        }
        // FFT rounding error must be tiny compared to any noise term.
        EXPECT_LE(max_err, 4) << "n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MulCrossCheck,
                         ::testing::Values(16, 32, 64, 128, 256, 1024));

TEST(Polynomial, MulByOneIsIdentity)
{
    Rng rng(9);
    const size_t n = 64;
    TorusPolynomial b = randomTorusPoly(n, rng);
    IntPolynomial one(n);
    one[0] = 1;
    TorusPolynomial r(n);
    negacyclicMulNaive(r, one, b);
    EXPECT_EQ(r, b);
    negacyclicMulKaratsuba(r, one, b);
    EXPECT_EQ(r, b);
}

TEST(Polynomial, MulDistributesOverAddition)
{
    Rng rng(10);
    const size_t n = 64;
    IntPolynomial a = randomSmallIntPoly(n, 64, rng);
    TorusPolynomial b = randomTorusPoly(n, rng);
    TorusPolynomial c = randomTorusPoly(n, rng);

    TorusPolynomial bc = b;
    bc.addAssign(c);
    TorusPolynomial left(n);
    negacyclicMulNaive(left, a, bc);

    TorusPolynomial ab(n), ac(n);
    negacyclicMulNaive(ab, a, b);
    negacyclicMulNaive(ac, a, c);
    ab.addAssign(ac);
    EXPECT_EQ(left, ab);
}

TEST(Polynomial, MulAddAccumulates)
{
    Rng rng(11);
    const size_t n = 32;
    IntPolynomial a = randomSmallIntPoly(n, 16, rng);
    TorusPolynomial b = randomTorusPoly(n, rng);
    TorusPolynomial acc = randomTorusPoly(n, rng);
    TorusPolynomial expected = acc;
    TorusPolynomial prod(n);
    negacyclicMulNaive(prod, a, b);
    expected.addAssign(prod);
    negacyclicMulAddNaive(acc, a, b);
    EXPECT_EQ(acc, expected);
}

TEST(Polynomial, XTimesXPowNMinus1IsMinusOne)
{
    // (X) * (X^{N-1}) = X^N = -1 in the negacyclic ring.
    const size_t n = 16;
    IntPolynomial x(n);
    x[1] = 1;
    TorusPolynomial xn1(n);
    xn1[n - 1] = 1u << 30;
    TorusPolynomial r(n);
    negacyclicMulNaive(r, x, xn1);
    EXPECT_EQ(r[0], 0u - (1u << 30));
    for (size_t i = 1; i < n; ++i)
        EXPECT_EQ(r[i], 0u);
}

} // namespace
} // namespace strix
