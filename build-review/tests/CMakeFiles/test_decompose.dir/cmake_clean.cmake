file(REMOVE_RECURSE
  "CMakeFiles/test_decompose.dir/test_decompose.cpp.o"
  "CMakeFiles/test_decompose.dir/test_decompose.cpp.o.d"
  "test_decompose"
  "test_decompose.pdb"
  "test_decompose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
