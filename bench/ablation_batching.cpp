/**
 * @file
 * Ablation: two-level batching (the paper's central idea).
 *
 * Sweeps the core-level batch size m and compares against a
 * device-level-only configuration (m = 1, the GPU's limitation), for
 * sets I and IV. Shows where each configuration flips from memory-
 * to compute-bound and how much throughput core-level batching buys
 * at a fixed core count.
 *
 * Flags:
 *   --measured       additionally run the measured software section:
 *                    a synthetic multi-session load through the real
 *                    BatchExecutor vs a per-call single-consumer
 *                    baseline (saturated throughput), plus an
 *                    open-loop sweep of the flush delay reporting
 *                    occupancy and p50/p99 request latency.
 *   --smoke          trim the measured workload (used by ctest).
 *   --json <file>    write the measured rows as JSON; CI's bench job
 *                    uploads this in the `bench-results` artifact.
 */

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_flags.h"
#include "common/table.h"
#include "strix/accelerator.h"
#include "tfhe/batch_executor.h"
#include "tfhe/client_keyset.h"
#include "tfhe/server_context.h"

using namespace strix;

namespace {

void
sweepSet(const TfheParams &p)
{
    std::printf("-- parameter set %s --\n", p.name.c_str());
    StrixConfig cfg = StrixConfig::paperDefault();
    Hsc core(cfg, p);
    const double hz = cfg.clock_ghz * 1e9;
    const uint32_t cap = core.memory().coreBatch();

    TextTable t;
    t.header({"m (LWE/core)", "epoch batch", "PBS/s", "HBM util %",
              "bound"});
    for (uint32_t m = 1; m <= cap; m *= 2) {
        Cycle iter = core.iterationCycles(m);
        double tp = double(m) * cfg.tvlp * hz / (double(p.n) * iter);
        HscUtilization u = core.utilization(m);
        t.row({std::to_string(m), std::to_string(m * cfg.tvlp),
               TextTable::num(tp, 0), TextTable::num(100 * u.hbm, 0),
               core.memoryBound(m) ? "memory" : "compute"});
    }
    t.print();

    Cycle i1 = core.iterationCycles(1);
    Cycle ic = core.iterationCycles(cap);
    double gain = double(i1) * cap / double(ic);
    std::printf("Two-level batching gain at fixed TvLP=%u: %.2fx over "
                "device-level-only batching (m=1).\n\n",
                cfg.tvlp, gain);
}

} // namespace

/**
 * The same sweep on a bandwidth-starved platform (one DDR-class
 * 75 GB/s channel group instead of an HBM stack): here core-level
 * batching is the difference between a memory-bound and a
 * compute-bound accelerator, which is the regime the GPU analysis of
 * Sec. III lives in.
 */
void
sweepLowBandwidth(const TfheParams &p)
{
    std::printf("-- parameter set %s, 75 GB/s external memory --\n",
                p.name.c_str());
    StrixConfig cfg = StrixConfig::paperDefault();
    cfg.hbm_gbps = 75.0;
    Hsc core(cfg, p);
    const double hz = cfg.clock_ghz * 1e9;
    const uint32_t cap = core.memory().coreBatch();

    TextTable t;
    t.header({"m (LWE/core)", "PBS/s", "vs m=1", "bound"});
    double tp1 = 0.0;
    for (uint32_t m = 1; m <= cap; m *= 2) {
        Cycle iter = core.iterationCycles(m);
        double tp = double(m) * cfg.tvlp * hz / (double(p.n) * iter);
        if (m == 1)
            tp1 = tp;
        t.row({std::to_string(m), TextTable::num(tp, 0),
               TextTable::num(tp / tp1, 2) + "x",
               core.memoryBound(m) ? "memory" : "compute"});
    }
    t.print();
    std::printf("\n");
}

// ---------------------------------------------------------------------
// Measured section: the real BatchExecutor under synthetic
// multi-session load, against the per-call baseline it replaces.
// ---------------------------------------------------------------------

namespace measured {

constexpr uint64_t kSpace = 8;
constexpr int kSessions = 4; //!< the acceptance bar is >= 4 sessions

using Clock = std::chrono::steady_clock;

uint64_t
microsSince(Clock::time_point t0)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - t0)
                        .count());
}

/** One row of the measured report (printed and emitted as JSON). */
struct Row
{
    std::string name;     //!< BM_PerCallBaseline/... or BM_BatchExecutor/...
    double pbs_per_s = 0; //!< completed requests / wall time
    double p50_us = 0;    //!< median submit->complete latency
    double p99_us = 0;
    double occupancy = 0; //!< mean sweep width / target width (0: n/a)
    double speedup = 1;   //!< throughput vs the per-call baseline
};

double
percentile(std::vector<uint64_t> lat_us, double p)
{
    if (lat_us.empty())
        return 0.0;
    std::sort(lat_us.begin(), lat_us.end());
    size_t idx = size_t(p * double(lat_us.size() - 1) + 0.5);
    return double(lat_us[std::min(idx, lat_us.size() - 1)]);
}

/**
 * The architecture the executor replaces: a FIFO request queue with
 * one consumer thread calling bootstrap() per request -- every
 * request pays a full, unbatched PBS on one core no matter how many
 * sessions are waiting behind it.
 */
class PerCallServer
{
  public:
    explicit PerCallServer(ServerContext &server)
        : server_(server), consumer_([this] { consumeLoop(); })
    {
    }

    ~PerCallServer() { shutdown(); }

    std::future<LweCiphertext> submit(LweCiphertext ct,
                                      const TorusPolynomial *tv)
    {
        std::future<LweCiphertext> fut;
        {
            std::lock_guard<std::mutex> lock(m_);
            queue_.push_back(Item{std::move(ct), tv, {}});
            fut = queue_.back().result.get_future();
        }
        cv_.notify_one();
        return fut;
    }

    void shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stopping_ = true;
        }
        cv_.notify_one();
        if (consumer_.joinable())
            consumer_.join();
    }

  private:
    struct Item
    {
        LweCiphertext ct;
        const TorusPolynomial *tv;
        std::promise<LweCiphertext> result;
    };

    void consumeLoop()
    {
        for (;;) {
            Item item;
            {
                std::unique_lock<std::mutex> lock(m_);
                cv_.wait(lock,
                         [&] { return stopping_ || !queue_.empty(); });
                if (queue_.empty())
                    return; // stopping and drained
                item = std::move(queue_.front());
                queue_.pop_front();
            }
            item.result.set_value(server_.bootstrap(item.ct, *item.tv));
        }
    }

    ServerContext &server_;
    std::mutex m_;
    std::condition_variable cv_;
    std::deque<Item> queue_;
    bool stopping_ = false;
    std::thread consumer_;
};

/**
 * Drive @p submit from kSessions concurrent session threads, each
 * keeping a small window of requests outstanding (@p gap_us == 0), or
 * pacing submissions open-loop at one request per @p gap_us per
 * session. Returns wall-clock seconds and fills @p lat_us with every
 * request's submit->complete latency.
 */
template <typename SubmitFn>
double
driveSessions(const ClientKeyset &client, int per_session,
              uint64_t gap_us, SubmitFn submit,
              std::vector<uint64_t> &lat_us)
{
    constexpr int kWindow = 4;
    std::vector<std::vector<uint64_t>> per_thread(kSessions);
    // Pre-encrypt outside the timed region: the load generator should
    // cost arrivals, not client-side encryptions.
    std::vector<std::vector<LweCiphertext>> inputs(kSessions);
    for (int s = 0; s < kSessions; ++s)
        for (int i = 0; i < per_session; ++i)
            inputs[size_t(s)].push_back(client.encryptInt(
                int64_t(i) % int64_t(kSpace), kSpace));

    auto t0 = Clock::now();
    std::vector<std::thread> sessions;
    for (int s = 0; s < kSessions; ++s) {
        sessions.emplace_back([&, s] {
            auto &lats = per_thread[size_t(s)];
            std::deque<std::pair<uint64_t, std::future<LweCiphertext>>>
                window;
            auto record_front = [&] {
                window.front().second.get();
                lats.push_back(microsSince(t0) - window.front().first);
                window.pop_front();
            };
            auto harvest_ready = [&] {
                while (!window.empty() &&
                       window.front().second.wait_for(
                           std::chrono::seconds(0)) ==
                           std::future_status::ready)
                    record_front();
            };
            for (int i = 0; i < per_session; ++i) {
                if (gap_us != 0) {
                    // Open loop: arrival times are scheduled, never a
                    // reaction to completions -- but completions are
                    // harvested as they happen so each latency sample
                    // is taken close to when its future became ready.
                    const uint64_t due = uint64_t(s) * (gap_us / 4) +
                                         uint64_t(i) * gap_us;
                    while (microsSince(t0) < due) {
                        harvest_ready();
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(50));
                    }
                }
                window.emplace_back(microsSince(t0),
                                    submit(s, inputs[size_t(s)][size_t(i)]));
                if (gap_us != 0)
                    harvest_ready();
                else // closed loop: block at the pipelining window
                    while (window.size() > size_t(kWindow))
                        record_front();
            }
            while (!window.empty())
                record_front();
        });
    }
    for (auto &t : sessions)
        t.join();
    double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    for (auto &lats : per_thread)
        lat_us.insert(lat_us.end(), lats.begin(), lats.end());
    return seconds;
}

/** Saturated + open-loop measurements; returns the report rows. */
std::vector<Row>
run(bool smoke)
{
    // Toy-but-real PBS parameters (same set the multi-session example
    // serves): small enough that a sweep finishes in milliseconds,
    // real enough that blind rotation + keyswitch dominate.
    const TfheParams params = testParams(48, 512);
    ClientKeyset client(params, 424242);
    ServerContext server(client.evalKeys());
    const TorusPolynomial tv = makeIntTestVector(
        params.N, kSpace,
        [](int64_t v) { return (v + 1) % int64_t(kSpace); });

    const int per_session = smoke ? 8 : 48;
    std::vector<Row> rows;

    // Single-PBS latency anchors the open-loop arrival rate.
    auto w0 = Clock::now();
    server.bootstrap(client.encryptInt(1, kSpace), tv);
    const double pbs_us = double(microsSince(w0));

    // -- Per-call baseline, saturated ---------------------------------
    {
        std::vector<uint64_t> lat;
        PerCallServer percall(server);
        double secs = driveSessions(
            client, per_session, 0,
            [&](int, const LweCiphertext &ct) {
                return percall.submit(ct, &tv);
            },
            lat);
        Row r;
        r.name = "BM_PerCallBaseline/saturated";
        r.pbs_per_s = double(kSessions) * per_session / secs;
        r.p50_us = percentile(lat, 0.50);
        r.p99_us = percentile(lat, 0.99);
        rows.push_back(r);
    }
    const double baseline_tp = rows[0].pbs_per_s;

    // -- BatchExecutor, saturated -------------------------------------
    {
        BatchExecutor::Options opts;
        opts.target_batch = size_t(kSessions) * 4;
        opts.flush_delay_us = 500;
        BatchExecutor exec(opts);
        std::vector<uint64_t> lat;
        double secs = driveSessions(
            client, per_session, 0,
            [&](int, const LweCiphertext &ct) {
                return exec.submit(client.evalKeys(), ct, tv);
            },
            lat);
        exec.drain();
        Row r;
        r.name = "BM_BatchExecutor/saturated";
        r.pbs_per_s = double(kSessions) * per_session / secs;
        r.p50_us = percentile(lat, 0.50);
        r.p99_us = percentile(lat, 0.99);
        r.occupancy = exec.stats().occupancy(opts.target_batch);
        r.speedup = r.pbs_per_s / baseline_tp;
        rows.push_back(r);
    }

    // -- BatchExecutor, open loop: latency vs flush delay -------------
    // Arrivals paced so the aggregate rate across sessions is ~60% of
    // the per-call baseline's capacity (1/pbs_us): both small and
    // large flush delays face the same offered load, and what moves
    // is how long a request waits for its sweep.
    const uint64_t gap_us = std::max<uint64_t>(
        1, uint64_t(double(kSessions) * pbs_us / 0.6));
    std::vector<uint64_t> delays =
        smoke ? std::vector<uint64_t>{500}
              : std::vector<uint64_t>{100, 500, 2000};
    for (uint64_t delay : delays) {
        BatchExecutor::Options opts;
        opts.target_batch = size_t(kSessions) * 2;
        opts.flush_delay_us = delay;
        BatchExecutor exec(opts);
        std::vector<uint64_t> lat;
        double secs = driveSessions(
            client, per_session, gap_us,
            [&](int, const LweCiphertext &ct) {
                return exec.submit(client.evalKeys(), ct, tv);
            },
            lat);
        exec.drain();
        Row r;
        r.name = "BM_BatchExecutor/flush_" + std::to_string(delay) + "us";
        r.pbs_per_s = double(kSessions) * per_session / secs;
        r.p50_us = percentile(lat, 0.50);
        r.p99_us = percentile(lat, 0.99);
        r.occupancy = exec.stats().occupancy(opts.target_batch);
        r.speedup = r.pbs_per_s / baseline_tp;
        rows.push_back(r);
    }
    return rows;
}

void
print(const std::vector<Row> &rows)
{
    std::printf("-- measured: %d concurrent sessions, software PBS "
                "(toy set n=48 N=512) --\n",
                kSessions);
    TextTable t;
    t.header({"load", "PBS/s", "p50 us", "p99 us", "occupancy",
              "vs per-call"});
    for (const Row &r : rows)
        t.row({r.name, TextTable::num(r.pbs_per_s, 0),
               TextTable::num(r.p50_us, 0), TextTable::num(r.p99_us, 0),
               r.occupancy > 0 ? TextTable::num(r.occupancy, 2) : "-",
               TextTable::num(r.speedup, 2) + "x"});
    t.print();
    std::printf("\nReading: the saturated rows are the dynamic-"
                "batching claim -- coalescing %d sessions' requests "
                "into full sweeps vs bootstrapping them one call at a "
                "time (gain tracks the machine's core count). The "
                "flush_* rows show the latency/occupancy trade the "
                "flush delay buys under open-loop load.\n\n",
                kSessions);
}

bool
writeJson(const std::string &path, const std::vector<Row> &rows,
          bool smoke)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"binary\": \"ablation_batching\",\n"
                 "  \"mode\": \"measured\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"sessions\": %d,\n"
                 "  \"rows\": [",
                 smoke ? "true" : "false", kSessions);
    for (size_t i = 0; i < rows.size(); ++i)
        std::fprintf(f,
                     "%s\n    {\"name\": \"%s\", \"pbs_per_s\": %.2f, "
                     "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                     "\"occupancy\": %.3f, \"speedup\": %.3f}",
                     i ? "," : "", rows[i].name.c_str(),
                     rows[i].pbs_per_s, rows[i].p50_us, rows[i].p99_us,
                     rows[i].occupancy, rows[i].speedup);
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace measured

int
main(int argc, char **argv)
{
    bool measured_mode = false;
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--measured")) {
            measured_mode = true;
        } else if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!matchJsonFlag(argc, argv, i, json_path)) {
            std::fprintf(stderr, "usage: ablation_batching [--measured] "
                                 "[--smoke] [--json <file>]\n");
            return 2;
        }
    }

    std::printf("=== Ablation: core-level batch size (two-level "
                "batching vs device-level only) ===\n\n");
    sweepSet(paramsSetI());
    sweepSet(paramsSetIV());
    sweepLowBandwidth(paramsSetI());

    std::printf("Reading: with m = 1 every blind-rotation iteration "
                "waits on the bootstrapping-key stream (the GPU's "
                "regime); streaming m ciphertexts through the "
                "pipelined core amortizes each key fetch until the "
                "cores are compute-bound -- the motivation for the "
                "HSC (Sec. III).\n");

    if (measured_mode) {
        std::printf("\n=== Measured: cross-session dynamic batching "
                    "(BatchExecutor) ===\n\n");
        std::vector<measured::Row> rows = measured::run(smoke);
        measured::print(rows);
        if (!json_path.empty() &&
            !measured::writeJson(json_path, rows, smoke))
            return 1;
    }
    return 0;
}
