/**
 * @file
 * Google-benchmark microbenchmarks of the software TFHE substrate:
 * transforms, multipliers, decomposition, external product, PBS,
 * keyswitch, and gates. These are the measured counterparts of the
 * CPU baseline's cost model.
 *
 * `--json <file>` (or `--json=<file>`) writes the results as Google
 * Benchmark's JSON to <file>; CI's bench job uploads that file as the
 * `bench-results` artifact, and BENCH_baseline.json in the repo root
 * is the first recorded capture. The BM_FftForward/<kernel> rows run
 * the scalar and AVX2 kernel tables explicitly, so one run records
 * the dispatch speedup; every other row uses whatever activeKernels()
 * selected (see the `fft_kernel` context key, and STRIX_FORCE_SCALAR
 * to pin it).
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "poly/simd.h"
#include "tfhe/context_cache.h"
#include "tfhe/gates.h"
#include "tfhe/serialize.h"
#include "workloads/circuit.h"
#include "workloads/circuit_analysis.h"

using namespace strix;

namespace {

/** Shared set-I split keyset (keygen is expensive; build once). */
struct KeysI
{
    KeysI() : client(paramsSetI(), 77), server(client.evalKeys()) {}
    ClientKeyset client;
    ServerContext server;
};

KeysI &
keysI()
{
    static KeysI keys;
    return keys;
}

void
BM_ComplexFft(benchmark::State &state)
{
    const size_t m = state.range(0);
    const FftPlan &plan = FftPlan::get(m);
    std::vector<Cplx> data(m, Cplx(0.5, -0.25));
    for (auto _ : state) {
        plan.forward(data.data());
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ComplexFft)->Arg(512)->Arg(1024)->Arg(8192);

void
BM_NegacyclicForward(benchmark::State &state)
{
    const size_t n = state.range(0);
    const auto &eng = NegacyclicFft::get(n);
    Rng rng(1);
    TorusPolynomial p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = rng.uniformTorus32();
    FreqPolynomial f;
    for (auto _ : state) {
        eng.forward(f, p);
        benchmark::DoNotOptimize(f.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NegacyclicForward)->Arg(1024)->Arg(2048)->Arg(16384);

void
BM_PolyMulNaive(benchmark::State &state)
{
    const size_t n = state.range(0);
    Rng rng(2);
    IntPolynomial a(n);
    TorusPolynomial b(n), r(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = int32_t(rng.uniformBelow(1024)) - 512;
        b[i] = rng.uniformTorus32();
    }
    for (auto _ : state) {
        negacyclicMulNaive(r, a, b);
        benchmark::DoNotOptimize(r.data());
    }
}
BENCHMARK(BM_PolyMulNaive)->Arg(256)->Arg(1024);

void
BM_PolyMulKaratsuba(benchmark::State &state)
{
    const size_t n = state.range(0);
    Rng rng(3);
    IntPolynomial a(n);
    TorusPolynomial b(n), r(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = int32_t(rng.uniformBelow(1024)) - 512;
        b[i] = rng.uniformTorus32();
    }
    for (auto _ : state) {
        negacyclicMulKaratsuba(r, a, b);
        benchmark::DoNotOptimize(r.data());
    }
}
BENCHMARK(BM_PolyMulKaratsuba)->Arg(256)->Arg(1024);

void
BM_PolyMulFft(benchmark::State &state)
{
    const size_t n = state.range(0);
    Rng rng(4);
    IntPolynomial a(n);
    TorusPolynomial b(n), r(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = int32_t(rng.uniformBelow(1024)) - 512;
        b[i] = rng.uniformTorus32();
    }
    for (auto _ : state) {
        negacyclicMulFft(r, a, b);
        benchmark::DoNotOptimize(r.data());
    }
}
BENCHMARK(BM_PolyMulFft)->Arg(256)->Arg(1024)->Arg(16384);

void
BM_GadgetDecomposePoly(benchmark::State &state)
{
    const size_t n = state.range(0);
    GadgetParams g{10, 2};
    Rng rng(5);
    TorusPolynomial p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = rng.uniformTorus32();
    std::vector<IntPolynomial> out;
    for (auto _ : state) {
        gadgetDecomposePoly(out, p, g);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GadgetDecomposePoly)->Arg(1024)->Arg(16384);

/**
 * Fused vs per-poly external product: the A/B pair for the batched
 * FFT sweep. Both run with a persistent scratch, so the delta is the
 * transform scheduling alone (results are bit-identical; the tests
 * assert it).
 */
void
BM_ExternalProductFft(benchmark::State &state)
{
    Rng rng(6);
    const uint32_t n = 1024, k = 1;
    GlweKey key(k, n, rng);
    GadgetParams g{10, 2};
    GgswFft ggsw(ggswEncrypt(key, 1, g, 0.0, rng));
    TorusPolynomial mu(n);
    GlweCiphertext ct = glweEncrypt(key, mu, 0.0, rng);
    GlweCiphertext out;
    PbsScratch scratch;
    for (auto _ : state) {
        ggsw.externalProduct(out, ct, scratch);
        benchmark::DoNotOptimize(&out);
    }
    state.SetLabel("batch-fused FFT sweep");
}
BENCHMARK(BM_ExternalProductFft);

void
BM_ExternalProductFftPerPoly(benchmark::State &state)
{
    Rng rng(6);
    const uint32_t n = 1024, k = 1;
    GlweKey key(k, n, rng);
    GadgetParams g{10, 2};
    GgswFft ggsw(ggswEncrypt(key, 1, g, 0.0, rng));
    TorusPolynomial mu(n);
    GlweCiphertext ct = glweEncrypt(key, mu, 0.0, rng);
    GlweCiphertext out;
    PbsScratch scratch;
    for (auto _ : state) {
        ggsw.externalProductPerPoly(out, ct, scratch);
        benchmark::DoNotOptimize(&out);
    }
    state.SetLabel("per-poly reference");
}
BENCHMARK(BM_ExternalProductFftPerPoly);

void
BM_ProgrammableBootstrap(benchmark::State &state)
{
    auto &keys = keysI();
    auto ct = keys.client.encryptInt(2, 4);
    TorusPolynomial tv = makeIntTestVector(keys.server.params().N, 4,
                                           [](int64_t x) { return x; });
    for (auto _ : state) {
        auto out = programmableBootstrap(ct, tv, keys.server.bsk());
        benchmark::DoNotOptimize(&out);
    }
    state.SetLabel("parameter set I");
}
BENCHMARK(BM_ProgrammableBootstrap)->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

void
BM_KeySwitch(benchmark::State &state)
{
    auto &keys = keysI();
    auto ct = keys.client.encryptInt(2, 4);
    TorusPolynomial tv = makeIntTestVector(keys.server.params().N, 4,
                                           [](int64_t x) { return x; });
    auto big = programmableBootstrap(ct, tv, keys.server.bsk());
    for (auto _ : state) {
        auto out = keySwitch(big, keys.server.ksk());
        benchmark::DoNotOptimize(&out);
    }
}
BENCHMARK(BM_KeySwitch)->Unit(benchmark::kMillisecond);

void
BM_GateNand(benchmark::State &state)
{
    auto &keys = keysI();
    auto a = keys.client.encryptBit(true);
    auto b = keys.client.encryptBit(false);
    for (auto _ : state) {
        auto out = gateNand(keys.server, a, b);
        benchmark::DoNotOptimize(&out);
    }
    state.SetLabel("bootstrapped NAND, set I");
}
BENCHMARK(BM_GateNand)->Unit(benchmark::kMillisecond)->MinTime(2.0);

/**
 * Forward FFT through an explicit kernel table: the A/B pair CI
 * records so the dispatch speedup is measured, not asserted (expected
 * well above 2x on AVX2 hosts -- the baseline capture shows 5-9x --
 * but the bench job never gates a merge; shared runners are noisy).
 */
void
BM_FftForwardKernel(benchmark::State &state, const PolyKernels *kernels,
                    size_t m)
{
    const FftPlan &plan = FftPlan::get(m);
    std::vector<Cplx> data(m, Cplx(0.5, -0.25));
    for (auto _ : state) {
        plan.forward(data.data(), *kernels);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(state.iterations() * int64_t(m));
}

/**
 * Batched forward FFT through an explicit kernel table. Reported
 * per-transform (items = batch members), so the row is directly
 * comparable against BM_FftForward at the same m: the gap is the
 * twiddle-amortization win of the stage-major batch sweep.
 */
void
BM_FftForwardBatchKernel(benchmark::State &state,
                         const PolyKernels *kernels, size_t m,
                         size_t batch)
{
    const FftPlan &plan = FftPlan::get(m);
    std::vector<Cplx> data(m * batch, Cplx(0.5, -0.25));
    for (auto _ : state) {
        plan.forwardBatch(data.data(), batch, *kernels);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(state.iterations() * int64_t(m) *
                            int64_t(batch));
}

/**
 * Keygen-amortization A/B: BM_KeygenCold generates a full keyset from
 * scratch (a fresh seed each iteration so nothing ages into warmth),
 * BM_ContextCacheHit looks the same shape up in a primed
 * ContextCache. The recorded ratio is the claim the service layer
 * makes: repeated sessions pay a lookup, not a keygen (expected
 * >= 100x; typically far more). The paper sets would inflate the
 * ratio further but make the cold rows minutes long, so both rows use
 * the small-but-real PBS shape the unit tests bootstrap with
 * (n=48, N=512, k=1, l=3).
 */
const TfheParams &
cacheBenchParams()
{
    static const TfheParams p = testParams(48, 512, 1, 3, 8, 0.0);
    return p;
}

void
BM_KeygenCold(benchmark::State &state)
{
    uint64_t seed = 0x5eed;
    for (auto _ : state) {
        ClientKeyset keyset(cacheBenchParams(), seed++);
        benchmark::DoNotOptimize(&keyset);
    }
    state.SetLabel("full keygen, n=48 N=512");
}
BENCHMARK(BM_KeygenCold)->Unit(benchmark::kMillisecond);

void
BM_ContextCacheHit(benchmark::State &state)
{
    static ContextCache cache;
    cache.getOrCreate(cacheBenchParams(), 0x5eed); // prime: one miss
    for (auto _ : state) {
        auto keys = cache.getOrCreate(cacheBenchParams(), 0x5eed);
        benchmark::DoNotOptimize(keys.get());
    }
    state.SetLabel("cached EvalKeys lookup");
}
BENCHMARK(BM_ContextCacheHit);

/**
 * Naive-vs-planned circuit evaluation A/B on the 8-bit ripple-carry
 * adder: the naive row bootstraps all 37 gates sequentially; the
 * planned row runs the CircuitAnalyzer plan (majority fusion + XOR
 * elision + per-level bootstrapBatch sweeps). Both rows carry their
 * PBS count as a counter so the CI summary can print the elision
 * ratio next to the wall-time speedup. Same small-but-real PBS shape
 * as the cache rows; the plan itself is parameter-checked at set I in
 * test_circuit_analysis.
 */
struct CircuitBench
{
    CircuitBench()
        : client(cacheBenchParams(), 0xC13C),
          server(client.evalKeys()), circuit(buildAdder(8)),
          plan(analyzeCircuit(circuit, cacheBenchParams()))
    {
        for (uint32_t i = 0; i < circuit.numInputs(); ++i)
            inputs.push_back(client.encryptBit((i & 1) != 0));
    }
    ClientKeyset client;
    ServerContext server;
    Circuit circuit;
    CircuitPlan plan;
    std::vector<LweCiphertext> inputs;
};

CircuitBench &
circuitBench()
{
    static CircuitBench bench;
    return bench;
}

void
BM_CircuitNaive(benchmark::State &state)
{
    auto &b = circuitBench();
    for (auto _ : state) {
        auto out = b.circuit.evalEncrypted(b.server, b.inputs);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["pbs"] = double(b.circuit.pbsCount());
    state.SetLabel("adder8, every gate bootstrapped");
}
BENCHMARK(BM_CircuitNaive)->Unit(benchmark::kMillisecond);

void
BM_CircuitPlanned(benchmark::State &state)
{
    auto &b = circuitBench();
    for (auto _ : state) {
        auto out = b.circuit.evalEncrypted(b.server, b.inputs, b.plan);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["pbs"] = double(b.plan.pbsCount());
    state.counters["pbs_elided"] = double(b.plan.elidedPbs());
    state.SetLabel(b.plan.summary());
}
BENCHMARK(BM_CircuitPlanned)->Unit(benchmark::kMillisecond);

/** Counting sink: serialization cost without buffer-growth noise. */
class CountingBuf : public std::streambuf
{
  public:
    uint64_t count() const { return count_; }

  protected:
    int overflow(int ch) override
    {
        ++count_;
        return ch;
    }
    std::streamsize xsputn(const char *, std::streamsize n) override
    {
        count_ += uint64_t(n);
        return n;
    }

  private:
    uint64_t count_ = 0;
};

/**
 * EvalKeys frame writers, v1 (expanded) vs v2 (seeded): the recorded
 * byte counters are the wire-size claim (EVK2 ~ 1/(k+1) of the BSK +
 * 1/(n+1) of the KSK; ~1/3 of EVK1 at set I), the times the
 * serialization cost at paper set I.
 */
void
BM_EvalKeysSerialize(benchmark::State &state, EvalKeysFormat format)
{
    auto &keys = keysI();
    uint64_t bytes = 0;
    for (auto _ : state) {
        CountingBuf sink;
        std::ostream os(&sink);
        serialize(os, *keys.client.evalKeys(), format);
        bytes = sink.count();
        benchmark::DoNotOptimize(bytes);
    }
    state.counters["frame_bytes"] =
        benchmark::Counter(double(bytes));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(bytes));
    state.SetLabel("parameter set I");
}
BENCHMARK_CAPTURE(BM_EvalKeysSerialize, v1, EvalKeysFormat::Expanded)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EvalKeysSerialize, v2, EvalKeysFormat::Seeded)
    ->Unit(benchmark::kMillisecond);

/**
 * Server-side cost of standing up keys from a seeded frame: parse +
 * mask re-expansion (PRNG) + per-row forward FFTs. The price paid
 * once per key delivery for shipping a third of the bytes.
 */
void
BM_SeededExpand(benchmark::State &state)
{
    auto &keys = keysI();
    std::stringstream wire;
    serialize(wire, *keys.client.evalKeys(), EvalKeysFormat::Seeded);
    const std::string frame = wire.str();
    for (auto _ : state) {
        std::istringstream is(frame);
        auto bundle = deserializeEvalKeys(is);
        benchmark::DoNotOptimize(bundle.get());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(frame.size()));
    state.SetLabel("EVK2 -> EvalKeys, set I");
}
BENCHMARK(BM_SeededExpand)->Unit(benchmark::kMillisecond);

/**
 * Budget-pressure churn: two keysets, a budget that fits one. Every
 * lookup misses, regenerates, and LRU-evicts the other bundle, so the
 * row records the full miss-under-pressure path (keygen + accounting
 * + eviction scan); the delta against BM_KeygenCold is the cache's
 * own overhead.
 */
void
BM_ContextCacheEvict(benchmark::State &state)
{
    static ContextCache cache;
    static const uint64_t bundle_bytes =
        cache.getOrCreate(cacheBenchParams(), 0)->residentBytes();
    cache.setBudgetBytes(bundle_bytes);
    uint64_t flip = 0;
    for (auto _ : state) {
        auto keys = cache.getOrCreate(cacheBenchParams(), 1 + flip % 2);
        ++flip;
        benchmark::DoNotOptimize(keys.get());
    }
    state.counters["evictions"] =
        benchmark::Counter(double(cache.stats().evictions));
    state.SetLabel("keygen + LRU evict, n=48 N=512");
}
BENCHMARK(BM_ContextCacheEvict)->Unit(benchmark::kMillisecond);

void
registerKernelBenchmarks()
{
    struct Entry {
        const char *name;
        const PolyKernels *kernels;
    };
    std::vector<Entry> tables{{"scalar", &scalarKernels()}};
    if (const PolyKernels *avx2 = avx2Kernels())
        tables.push_back({"avx2", avx2});
    for (const Entry &e : tables)
        for (size_t m : {size_t{512}, size_t{1024}, size_t{8192}}) {
            std::string name =
                std::string("BM_FftForward/") + e.name + "/" +
                std::to_string(m);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [kernels = e.kernels, m](benchmark::State &st) {
                    BM_FftForwardKernel(st, kernels, m);
                });
            // Batch 4 = the (k+1)*l digit count of sets I/II; batch 8
            // covers the larger gadget shapes.
            for (size_t batch : {size_t{4}, size_t{8}}) {
                std::string bname =
                    std::string("BM_FftForwardBatch/") + e.name + "/" +
                    std::to_string(m) + "/" + std::to_string(batch);
                benchmark::RegisterBenchmark(
                    bname.c_str(),
                    [kernels = e.kernels, m,
                     batch](benchmark::State &st) {
                        BM_FftForwardBatchKernel(st, kernels, m, batch);
                    });
            }
        }
}

} // namespace

int
main(int argc, char **argv)
{
    // Translate our stable `--json <file>` flag into Google
    // Benchmark's out/out_format pair; everything else passes through
    // (e.g. --benchmark_filter).
    std::vector<std::string> args;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (!matchJsonFlag(argc, argv, i, json_path))
            args.emplace_back(argv[i]);
    }
    if (!json_path.empty()) {
        args.push_back("--benchmark_out=" + json_path);
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char *> cargv{argv[0]};
    for (std::string &s : args)
        cargv.push_back(s.data());
    int cargc = static_cast<int>(cargv.size());

    registerKernelBenchmarks();
    benchmark::Initialize(&cargc, cargv.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data()))
        return 1;
    // Recorded into the JSON context so the artifact says which
    // backend the non-A/B rows ran on.
    benchmark::AddCustomContext("fft_kernel", activeKernels().name);
    benchmark::AddCustomContext("avx2_available",
                                avx2Kernels() ? "yes" : "no");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
