# Empty compiler generated dependencies file for test_decompose.
# This may be replaced when dependencies are built.
