/**
 * @file
 * Quickstart: the 5-minute tour of the library.
 *
 *  1. Client-side key generation (paper parameter set I, 110-bit):
 *     a ClientKeyset owns the secrets, its EvalKeys bundle is the
 *     public material a server evaluates with.
 *  2. Ship the EvalKeys over a (simulated) wire and stand up a
 *     ServerContext on the deserialized bundle -- the server never
 *     sees a secret key, and the type system keeps it that way.
 *  3. Encrypt bits client-side, evaluate bootstrapped gates on the
 *     server, decrypt client-side.
 *  4. Programmable bootstrapping of an integer function (PBS).
 *  5. Ask the Strix simulator what the same workload costs on the
 *     accelerator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <sstream>

#include "strix/accelerator.h"
#include "tfhe/client_keyset.h"
#include "tfhe/gates.h"
#include "tfhe/serialize.h"

using namespace strix;

int
main()
{
    std::printf("-- 1. client-side key generation (parameter set %s, "
                "lambda = %d bits)\n",
                paramsSetI().name.c_str(), paramsSetI().lambda);
    ClientKeyset client(paramsSetI(), /*seed=*/42);

    std::printf("-- 2. ship the evaluation keys to the server\n");
    // Two wire formats: the expanded EVK1 frame carries every mask
    // and body component; the seeded EVK2 frame ships only the mask
    // seeds plus body components and the server re-expands the masks
    // (deterministically -- the rebuilt keys are bit-identical).
    std::stringstream wire_v1;
    serialize(wire_v1, *client.evalKeys(), EvalKeysFormat::Expanded);
    std::stringstream wire;
    serialize(wire, *client.evalKeys(), EvalKeysFormat::Seeded);
    const double v1_mib = double(wire_v1.tellp()) / (1024.0 * 1024.0);
    const double v2_mib = double(wire.tellp()) / (1024.0 * 1024.0);
    std::printf("   EvalKeys frame (EVK1, expanded): %.1f MiB (BSK + "
                "KSK, no secret key inside)\n",
                v1_mib);
    std::printf("   EvalKeys frame (EVK2, seeded)  : %.1f MiB (%.0f%% "
                "of EVK1)\n",
                v2_mib, 100.0 * v2_mib / v1_mib);
    if (v2_mib > 0.55 * v1_mib) {
        std::printf("   ERROR: seeded frame exceeds 55%% of the "
                    "expanded frame\n");
        return 1;
    }
    // The server stands on the deserialized public bundle alone,
    // re-expanded from the compressed frame.
    ServerContext server(deserializeEvalKeys(wire));

    std::printf("-- 3. bootstrapped boolean gates (evaluated server-"
                "side)\n");
    auto a = client.encryptBit(true);
    auto b = client.encryptBit(false);
    std::printf("   NAND(1,0) = %d   (expect 1)\n",
                client.decryptBit(gateNand(server, a, b)));
    std::printf("   AND(1,0)  = %d   (expect 0)\n",
                client.decryptBit(gateAnd(server, a, b)));
    std::printf("   XOR(1,0)  = %d   (expect 1)\n",
                client.decryptBit(gateXor(server, a, b)));
    auto m = gateMux(server, a, b, client.encryptBit(true));
    std::printf("   MUX(1,0,1) = %d  (expect 0: selects b)\n",
                client.decryptBit(m));

    std::printf("-- 4. programmable bootstrapping: f(x) = x^2 mod 8 "
                "on an encrypted x\n");
    const uint64_t space = 8;
    for (int64_t x : {2, 3, 5}) {
        auto ct = client.encryptInt(x, space);
        auto ct2 = server.applyLut(
            ct, space, [](int64_t v) { return (v * v) % 8; });
        std::printf("   x = %lld -> f(x) = %lld (expect %lld)\n",
                    static_cast<long long>(x),
                    static_cast<long long>(client.decryptInt(ct2, space)),
                    static_cast<long long>((x * x) % 8));
    }

    std::printf("-- 5. the same ops on the Strix accelerator model\n");
    StrixAccelerator strix;
    PbsPerf perf = strix.evaluatePbs(paramsSetI());
    std::printf("   PBS latency   : %.3f ms\n", perf.latency_ms);
    std::printf("   PBS throughput: %.0f PBS/s (device batch %u = "
                "%u cores x %u LWE/core)\n",
                perf.throughput_pbs_s, perf.device_batch,
                strix.config().tvlp, perf.core_batch);
    std::printf("done.\n");
    return 0;
}
