/**
 * @file
 * Iterative radix-2 complex FFT with a precomputed plan.
 *
 * This mirrors the structure of the hardware pipelined-FFT in the
 * paper (Fig. 5): log2(M) butterfly stages with twiddle ROMs; the
 * software version applies the same dataflow sequentially. Plans are
 * cached per size.
 *
 * The butterfly loops themselves live behind the runtime-dispatched
 * kernel table in poly/simd.h: a plan holds only the precomputed
 * tables (bit-reversal permutation, stage-major twiddles), and
 * forward()/inverse() run whichever backend activeKernels() selected
 * at startup (AVX2+FMA where available, scalar otherwise or under
 * STRIX_FORCE_SCALAR=1). The kernel-explicit overloads let tests and
 * benchmarks run both backends side by side in one process.
 */

#ifndef STRIX_POLY_COMPLEX_FFT_H
#define STRIX_POLY_COMPLEX_FFT_H

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace strix {

using Cplx = std::complex<double>;

struct FftTables;
struct PolyKernels;

/**
 * Largest log2 size the process-wide plan caches accept. 2^32 points
 * is far beyond any realistic ring dimension and matches the 32-bit
 * permutation indices a plan stores; the bound also sizes the fixed
 * slot arrays backing the lock-free caches.
 */
inline constexpr size_t kMaxFftLog2 = 32;

/**
 * FFT plan for a fixed power-of-two size M: bit-reversal permutation
 * and per-stage twiddle factors.
 */
class FftPlan
{
  public:
    /** Build a plan for size @p m (power of two, >= 2). */
    explicit FftPlan(size_t m);

    size_t size() const { return m_; }

    /**
     * In-place forward transform with positive exponent convention:
     * X_k = sum_j x_j * exp(+2*pi*i*j*k / M). Runs the dispatched
     * (activeKernels) backend.
     */
    void forward(Cplx *data) const;

    /**
     * In-place inverse transform (negative exponent), scaled by 1/M:
     * x_j = (1/M) sum_k X_k * exp(-2*pi*i*j*k / M).
     */
    void inverse(Cplx *data) const;

    /**
     * Batched in-place forward transform of @p batch contiguous
     * size-M members (member b at data[b*M, (b+1)*M)). Bit-identical
     * to calling forward() on each member, but the butterfly stages
     * sweep the whole batch stage-major, amortizing twiddle loads --
     * the software form of Strix's streaming FFT batch schedule.
     */
    void forwardBatch(Cplx *data, size_t batch) const;

    /** forward() through an explicit kernel table (A/B testing). */
    void forward(Cplx *data, const PolyKernels &kernels) const;

    /** forwardBatch() through an explicit kernel table (A/B testing). */
    void forwardBatch(Cplx *data, size_t batch,
                      const PolyKernels &kernels) const;

    /** inverse() through an explicit kernel table (A/B testing). */
    void inverse(Cplx *data, const PolyKernels &kernels) const;

    /** Borrowed view of the precomputed tables for kernel calls. */
    FftTables tables() const;

    /**
     * Obtain a cached plan for size @p m. Thread-safe: the first call
     * for a size builds and publishes the plan under a lock; every
     * later call is a single lock-free acquire load. Returned
     * references stay valid for the process lifetime.
     */
    static const FftPlan &get(size_t m);

    /**
     * Build and publish the plan for size @p m ahead of time so that
     * subsequent get() calls -- including concurrent ones on the PBS
     * hot path -- never take the construction lock.
     */
    static void prewarm(size_t m);

  private:
    size_t m_;
    std::vector<uint32_t> bit_reverse_;
    /**
     * Stage-major twiddles (m-1 entries): for each stage
     * len = 2, 4, ..., m, the len/2 factors exp(+2*pi*i*j/len)
     * contiguously. See FftTables::stage_twiddles.
     */
    std::vector<Cplx> stage_twiddles_;
};

} // namespace strix

#endif // STRIX_POLY_COMPLEX_FFT_H
