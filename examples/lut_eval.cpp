/**
 * @file
 * Homomorphic look-up tables: an encrypted threshold classifier.
 *
 * Scenario (the kind of workload the paper's intro motivates): a
 * server scores sensor readings it must never see in the clear. Each
 * reading x in [0,16) is encrypted client-side; the server
 * homomorphically evaluates
 *
 *     risk(x)  = 0 (low) / 1 (medium) / 2 (high)   -- one PBS
 *     clamp(x) = min(x, 9)                          -- one PBS
 *     score    = risk(clamp(x) + bias)              -- chained PBS
 *
 * demonstrating that PBS evaluates arbitrary univariate functions
 * while refreshing noise, so chains of any depth stay decryptable.
 */

#include <cstdio>

#include "tfhe/context.h"

using namespace strix;

namespace {

int64_t
risk(int64_t x)
{
    if (x < 6)
        return 0;
    if (x < 11)
        return 1;
    return 2;
}

} // namespace

int
main()
{
    const uint64_t space = 16;
    TfheContext ctx(paramsSetI(), 1001);

    std::printf("Encrypted threshold classifier (msg space %llu)\n\n",
                static_cast<unsigned long long>(space));
    std::printf("%6s %12s %12s %18s\n", "x", "risk(x)", "clamp(x)",
                "risk(clamp(x)+2)");

    int failures = 0;
    for (int64_t x = 0; x < 16; x += 3) {
        auto ct = ctx.encryptInt(x, space);

        auto ct_risk = ctx.applyLut(ct, space, risk);
        auto ct_clamp = ctx.applyLut(
            ct, space, [](int64_t v) { return v < 9 ? v : 9; });

        // Chained PBS: add an encrypted bias, then classify again.
        auto bias = ctx.encryptInt(2, space);
        auto shifted = ct_clamp;
        shifted.addAssign(bias);
        // Additions shift the centered encoding by the bias center;
        // recenter with a trivial correction of -1/(4*space)... the
        // LUT API hides this: chain through applyLut directly.
        auto recenter = LweCiphertext::trivial(
            shifted.dim(), 0u - encodeLut(0, space));
        shifted.addAssign(recenter);
        auto ct_chain = ctx.applyLut(shifted, space, risk);

        int64_t got_risk = ctx.decryptInt(ct_risk, space);
        int64_t got_clamp = ctx.decryptInt(ct_clamp, space);
        int64_t got_chain = ctx.decryptInt(ct_chain, space);
        int64_t want_clamp = x < 9 ? x : 9;
        int64_t want_chain = risk(want_clamp + 2);

        bool ok = got_risk == risk(x) && got_clamp == want_clamp &&
                  got_chain == want_chain;
        failures += !ok;
        std::printf("%6lld %8lld (%lld) %8lld (%lld) %12lld (%lld)  %s\n",
                    static_cast<long long>(x),
                    static_cast<long long>(got_risk),
                    static_cast<long long>(risk(x)),
                    static_cast<long long>(got_clamp),
                    static_cast<long long>(want_clamp),
                    static_cast<long long>(got_chain),
                    static_cast<long long>(want_chain),
                    ok ? "ok" : "MISMATCH");
    }

    std::printf("\n%s\n", failures == 0
                              ? "all encrypted evaluations correct"
                              : "SOME EVALUATIONS FAILED");
    return failures == 0 ? 0 : 1;
}
