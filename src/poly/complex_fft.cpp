/**
 * @file
 * FFT plan construction (tables only -- the butterfly loops live in
 * the dispatched kernel backends, poly/simd_*.cpp).
 */

#include "poly/complex_fft.h"

#include <cmath>

#include "common/logging.h"
#include "poly/plan_cache.h"
#include "poly/simd.h"

namespace strix {

FftPlan::FftPlan(size_t m) : m_(m)
{
    panicIfNot(m >= 2 && (m & (m - 1)) == 0, "FFT size must be 2^k >= 2");
    // The permutation table stores 32-bit indices (half the footprint
    // scanned on every transform); enforce the narrowing contract
    // rather than silently wrapping for absurd plan sizes.
    panicIfNot(m <= (uint64_t{1} << 32), "FFT size exceeds 2^32");

    bit_reverse_.resize(m);
    size_t log_m = 0;
    while ((size_t{1} << log_m) < m)
        ++log_m;
    for (size_t i = 0; i < m; ++i) {
        size_t r = 0;
        for (size_t b = 0; b < log_m; ++b)
            if (i & (size_t{1} << b))
                r |= size_t{1} << (log_m - 1 - b);
        bit_reverse_[i] = static_cast<uint32_t>(r);
    }

    // Stage-major layout: each stage's twiddles are contiguous so the
    // vector butterflies stream them with plain loads. The angle
    // 2*pi*j/len equals the old strided table's 2*pi*(j*m/len)/m
    // exactly (power-of-two scaling of a double is exact), so the
    // scalar path stays bit-identical to the original implementation.
    stage_twiddles_.reserve(m - 1);
    for (size_t len = 2; len <= m; len <<= 1)
        for (size_t j = 0; j < len / 2; ++j) {
            double ang = 2.0 * M_PI * static_cast<double>(j) /
                         static_cast<double>(len);
            stage_twiddles_.emplace_back(std::cos(ang), std::sin(ang));
        }
}

FftTables
FftPlan::tables() const
{
    return FftTables{m_, bit_reverse_.data(), stage_twiddles_.data()};
}

void
FftPlan::forward(Cplx *data) const
{
    activeKernels().fftForward(tables(), data);
}

void
FftPlan::inverse(Cplx *data) const
{
    activeKernels().fftInverse(tables(), data);
}

void
FftPlan::forwardBatch(Cplx *data, size_t batch) const
{
    activeKernels().fftForwardBatch(tables(), data, batch);
}

void
FftPlan::forward(Cplx *data, const PolyKernels &kernels) const
{
    kernels.fftForward(tables(), data);
}

void
FftPlan::forwardBatch(Cplx *data, size_t batch,
                      const PolyKernels &kernels) const
{
    kernels.fftForwardBatch(tables(), data, batch);
}

void
FftPlan::inverse(Cplx *data, const PolyKernels &kernels) const
{
    kernels.fftInverse(tables(), data);
}

namespace {

detail::Log2PlanCache<FftPlan> g_plan_cache;

} // namespace

const FftPlan &
FftPlan::get(size_t m)
{
    panicIfNot(m >= 2 && (m & (m - 1)) == 0, "FFT size must be 2^k >= 2");
    return g_plan_cache.get(m);
}

void
FftPlan::prewarm(size_t m)
{
    get(m);
}

} // namespace strix
