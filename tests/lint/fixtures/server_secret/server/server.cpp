// Fixture: a serving-daemon TU including the key-owning ContextCache
// facade -- the closure walk must surface the chain down to
// tfhe/client_keyset.h even though the include is indirect.
#include "tfhe/context_cache.h"

int
serve()
{
    ClientKeyset keys; // and naming the secret type is its own hit
    (void)keys;
    return 0;
}
