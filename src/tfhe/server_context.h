/**
 * @file
 * ServerContext: the evaluation-side half of the split TFHE API.
 *
 * Constructed from a `shared_ptr<const EvalKeys>` -- the public
 * BSK/KSK bundle a ClientKeyset exports (or a deserialized bundle
 * from a remote client) -- and owns everything evaluation needs on
 * top of it: the bootstrap entry points, the batch worker pool, and
 * the FFT plan prewarm. It holds no secret key and no RNG: code that
 * compiles against ServerContext alone provably cannot decrypt.
 *
 * Many ServerContexts may share one EvalKeys with zero key
 * duplication (each adds only its pool), which is the seam the
 * multi-session serving and sharding work builds on. On top of the
 * synchronous calls there is an async seam: submitBootstrap /
 * submitApplyLut return futures and, when a BatchExecutor is
 * attached, coalesce with requests from every other session on the
 * same EvalKeys bundle into full-width sweeps (see
 * tfhe/batch_executor.h).
 *
 * Thread-safety contract
 * ----------------------
 * Every member is safe to call concurrently on one shared context.
 * Key material is immutable, the FFT plan caches are prewarmed at
 * construction and lock-free to read, and every bootstrap carries its
 * own scratch buffers. setBatchThreads() publishes a replacement pool
 * under the same lock the batch calls use to snapshot it: batches
 * already in flight finish undisturbed on the pool they started with
 * (the snapshot keeps it alive), and later calls use the new size.
 */

#ifndef STRIX_TFHE_SERVER_CONTEXT_H
#define STRIX_TFHE_SERVER_CONTEXT_H

#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/sync.h"
#include "tfhe/eval_keys.h"

namespace strix {

class BatchExecutor;

/** PBS evaluation engine over a shared public-key bundle. */
class ServerContext
{
  public:
    /**
     * Wrap @p keys (panics on null) and prewarm the FFT plan caches
     * for its ring dimension. The batch worker pool spins up lazily
     * on the first batch call (size: ThreadPool's default,
     * overridable via STRIX_THREADS or setBatchThreads), so
     * sequential users never pay for idle threads.
     */
    explicit ServerContext(std::shared_ptr<const EvalKeys> keys);

    const TfheParams &params() const { return keys_->params(); }
    const BootstrappingKey &bsk() const { return keys_->bsk(); }
    const KeySwitchKey &ksk() const { return keys_->ksk(); }

    /** The shared bundle this context evaluates under. */
    const std::shared_ptr<const EvalKeys> &evalKeys() const
    {
        return keys_;
    }

    /**
     * Bootstrap @p ct against @p test_vector and keyswitch back to
     * dimension n -- the PBS+KS node every workload graph is made of.
     */
    LweCiphertext bootstrap(const LweCiphertext &ct,
                            const TorusPolynomial &test_vector) const;

    /**
     * Programmable bootstrapping of an integer function f over
     * [0, msg_space): returns an encryption of f(m) (centered
     * encoding), keyswitched to dimension n.
     */
    LweCiphertext applyLut(const LweCiphertext &ct, uint64_t msg_space,
                           const std::function<int64_t(int64_t)> &f) const;

    /**
     * Batched PBS+KS: bootstrap @p count ciphertexts against one
     * shared test vector, parallelized across ciphertexts on the
     * context's worker pool with one scratch buffer per worker.
     * out[i] always corresponds to cts[i] and is bit-identical to
     * bootstrap(cts[i], test_vector) at any thread count -- the
     * software seam for Strix-style ciphertext batching.
     */
    std::vector<LweCiphertext>
    bootstrapBatch(const LweCiphertext *cts, size_t count,
                   const TorusPolynomial &test_vector) const;

    /** Convenience overload over a vector batch. */
    std::vector<LweCiphertext>
    bootstrapBatch(const std::vector<LweCiphertext> &cts,
                   const TorusPolynomial &test_vector) const;

    /**
     * Batched PBS+KS with a per-ciphertext test vector: tvs[i] is the
     * LUT applied to cts[i] (every pointer non-null, same ring
     * dimension). This is the sweep shape cross-session coalescing
     * needs -- requests keep their own LUTs while sharing one
     * parallel sweep -- and each out[i] is bit-identical to
     * bootstrap(cts[i], *tvs[i]) at any thread count.
     */
    std::vector<LweCiphertext>
    bootstrapBatch(const LweCiphertext *cts,
                   const TorusPolynomial *const *tvs, size_t count) const;

    /**
     * Batched applyLut: builds the test vector for @p f once and
     * evaluates it over the whole batch via bootstrapBatch.
     */
    std::vector<LweCiphertext>
    applyLutBatch(const std::vector<LweCiphertext> &cts, uint64_t msg_space,
                  const std::function<int64_t(int64_t)> &f) const;

    /**
     * Attach (or detach, with nullptr) a cross-session batching
     * executor: submitBootstrap/submitApplyLut route through it, so
     * this context's requests coalesce with every other context
     * sharing the same EvalKeys bundle and executor. Safe to call
     * concurrently with submits: in-flight requests stay with the
     * executor they were submitted to.
     */
    void attachExecutor(std::shared_ptr<BatchExecutor> executor)
        STRIX_EXCLUDES(pool_mutex_);

    /** The attached executor, or nullptr. */
    std::shared_ptr<BatchExecutor> executor() const
        STRIX_EXCLUDES(pool_mutex_);

    /**
     * Async PBS+KS: returns a future for bootstrap(ct, test_vector).
     * With an executor attached the request is queued for a coalesced
     * sweep (latency bounded by the executor's flush policy); without
     * one it runs inline and the future is already ready. Results are
     * bit-identical either way.
     */
    std::future<LweCiphertext>
    submitBootstrap(const LweCiphertext &ct,
                    const TorusPolynomial &test_vector) const;

    /** Async applyLut, same routing rules as submitBootstrap. */
    std::future<LweCiphertext>
    submitApplyLut(const LweCiphertext &ct, uint64_t msg_space,
                   const std::function<int64_t(int64_t)> &f) const;

    /**
     * Resize the batch worker pool to @p threads workers (0 restores
     * the default). Safe to call concurrently with batch calls:
     * in-flight batches complete on the pool they snapshotted; the
     * replacement serves later calls.
     */
    void setBatchThreads(unsigned threads) STRIX_EXCLUDES(pool_mutex_);

    /**
     * Batch worker count the next batch call will use (>= 1,
     * including the caller). Pure query: does not spin up the pool.
     */
    unsigned batchThreads() const STRIX_EXCLUDES(pool_mutex_);

  private:
    /**
     * Snapshot the current pool (building it on first use). Returning
     * the shared_ptr by value is what makes setBatchThreads safe
     * concurrently with batches: a replacement cannot destroy a pool
     * a running batch still references.
     */
    std::shared_ptr<ThreadPool> pool() const STRIX_EXCLUDES(pool_mutex_);

    std::shared_ptr<const EvalKeys> keys_;

    /** Prewarms the FFT plan caches before any evaluation runs. */
    struct FftPrewarm
    {
        explicit FftPrewarm(const TfheParams &p);
    };
    FftPrewarm fft_prewarm_;

    mutable Mutex pool_mutex_;
    mutable std::shared_ptr<ThreadPool> pool_
        STRIX_GUARDED_BY(pool_mutex_);
    unsigned batch_threads_ STRIX_GUARDED_BY(pool_mutex_) =
        0; //!< requested size; 0 = default
    std::shared_ptr<BatchExecutor> executor_
        STRIX_GUARDED_BY(pool_mutex_); //!< null = inline submits
};

} // namespace strix

#endif // STRIX_TFHE_SERVER_CONTEXT_H
