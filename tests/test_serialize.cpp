/**
 * @file
 * Serialization round-trip and malformed-input tests, including the
 * randomized structure-level fuzz sweeps: random-shape round-trips,
 * exhaustive truncation (every strict prefix must throw), header
 * bit-flips (must throw), and random payload byte-flips (must either
 * throw std::runtime_error or parse -- never crash or hang).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "tfhe/integer.h"
#include "tfhe/serialize.h"
#include "support/test_util.h"

namespace strix {
namespace {

TEST(Serialize, ParamsRoundTrip)
{
    std::stringstream ss;
    serialize(ss, paramsSetII());
    TfheParams p = deserializeParams(ss);
    EXPECT_EQ(p.name, "II");
    EXPECT_EQ(p.n, paramsSetII().n);
    EXPECT_EQ(p.N, paramsSetII().N);
    EXPECT_EQ(p.l_bsk, paramsSetII().l_bsk);
    EXPECT_DOUBLE_EQ(p.lwe_noise, paramsSetII().lwe_noise);
    EXPECT_EQ(p.lambda, 128);
}

TEST(Serialize, LweKeyRoundTrip)
{
    Rng rng(1);
    LweKey key(500, rng);
    std::stringstream ss;
    serialize(ss, key);
    LweKey back = deserializeLweKey(ss);
    ASSERT_EQ(back.dim(), key.dim());
    for (uint32_t i = 0; i < key.dim(); ++i)
        EXPECT_EQ(back.bit(i), key.bit(i));
}

TEST(Serialize, CiphertextRoundTripDecrypts)
{
    Rng rng(2);
    LweKey key(128, rng);
    auto ct = lweEncrypt(key, encodeMessage(5, 16), 0.0, rng);
    std::stringstream ss;
    serialize(ss, ct);
    LweCiphertext back = deserializeLweCiphertext(ss);
    EXPECT_EQ(lweDecrypt(key, back, 16), 5);
}

TEST(Serialize, GlweKeyRoundTrip)
{
    Rng rng(3);
    GlweKey key(2, 64, rng);
    std::stringstream ss;
    serialize(ss, key);
    GlweKey back = deserializeGlweKey(ss);
    ASSERT_EQ(back.k(), 2u);
    ASSERT_EQ(back.ringDim(), 64u);
    for (uint32_t i = 0; i < 2; ++i)
        EXPECT_EQ(back.poly(i), key.poly(i));
}

TEST(Serialize, TorusPolynomialRoundTrip)
{
    Rng rng(4);
    TorusPolynomial p = test::randomTorusPoly(256, rng);
    std::stringstream ss;
    serialize(ss, p);
    EXPECT_EQ(deserializeTorusPolynomial(ss), p);
}

TEST(Serialize, KeySwitchKeyRoundTripFunctional)
{
    // The deserialized ksk must actually keyswitch correctly.
    Rng rng(5);
    TfheParams p = testParams(32, 64);
    p.l_ksk = 12;
    p.ks_base_bits = 2;
    LweKey from(128, rng);
    LweKey to(32, rng);
    KeySwitchKey ksk = KeySwitchKey::generate(from, to, p, rng);

    std::stringstream ss;
    serialize(ss, ksk);
    KeySwitchKey back = deserializeKeySwitchKey(ss);

    auto ct = lweEncrypt(from, encodeMessage(3, 8), 0.0, rng);
    EXPECT_EQ(lweDecrypt(to, keySwitch(ct, back), 8), 3);
}

TEST(Serialize, EncryptedUintRoundTrip)
{
    test::TestKeys keys(testParams(32, 256, 1, 3, 8, 0.0), 99);
    IntegerOps ops(keys.server);
    EncryptedUint x = ops.encrypt(keys.client, 201, 4);
    std::stringstream ss;
    serialize(ss, x);
    EncryptedUint back = deserializeEncryptedUint(ss);
    EXPECT_EQ(ops.decrypt(keys.client, back), 201u);
    EXPECT_EQ(back.digit_bits, x.digit_bits);
}

TEST(Serialize, MultipleFramesInOneStream)
{
    Rng rng(6);
    LweKey key(64, rng);
    auto c1 = lweEncrypt(key, encodeMessage(1, 8), 0.0, rng);
    auto c2 = lweEncrypt(key, encodeMessage(2, 8), 0.0, rng);
    std::stringstream ss;
    serialize(ss, paramsSetI());
    serialize(ss, c1);
    serialize(ss, c2);
    TfheParams p = deserializeParams(ss);
    EXPECT_EQ(p.name, "I");
    EXPECT_EQ(lweDecrypt(key, deserializeLweCiphertext(ss), 8), 1);
    EXPECT_EQ(lweDecrypt(key, deserializeLweCiphertext(ss), 8), 2);
}

TEST(Serialize, WrongTagThrows)
{
    Rng rng(7);
    LweKey key(16, rng);
    std::stringstream ss;
    serialize(ss, key);
    EXPECT_THROW(deserializeLweCiphertext(ss), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows)
{
    Rng rng(8);
    LweKey key(64, rng);
    auto ct = lweEncrypt(key, 0, 0.0, rng);
    std::stringstream full;
    serialize(full, ct);
    std::string bytes = full.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(deserializeLweCiphertext(truncated),
                 std::runtime_error);
}

TEST(Serialize, GarbageThrows)
{
    std::stringstream ss("this is not a TFHE frame at all....");
    EXPECT_THROW(deserializeParams(ss), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Randomized structure-level fuzz sweeps.

/** Serialize one frame and return its raw bytes. */
template <typename T>
std::string
frameBytes(const T &value)
{
    std::stringstream ss;
    serialize(ss, value);
    return ss.str();
}

TEST(SerializeFuzz, RandomParamsRoundTripSweep)
{
    Rng rng(101);
    for (int iter = 0; iter < 50; ++iter) {
        TfheParams p;
        // Arbitrary field soup, including empty and longish names and
        // non-finite-free but extreme doubles.
        size_t name_len = rng.uniformBelow(64);
        for (size_t i = 0; i < name_len; ++i)
            p.name.push_back(
                static_cast<char>('a' + rng.uniformBelow(26)));
        p.n = static_cast<uint32_t>(rng.uniformTorus32());
        p.N = static_cast<uint32_t>(rng.uniformTorus32());
        p.k = static_cast<uint32_t>(rng.uniformBelow(17));
        p.l_bsk = static_cast<uint32_t>(rng.uniformBelow(65));
        p.bg_bits = static_cast<uint32_t>(rng.uniformBelow(33));
        p.l_ksk = static_cast<uint32_t>(rng.uniformBelow(65));
        p.ks_base_bits = static_cast<uint32_t>(rng.uniformBelow(33));
        p.lwe_noise = rng.uniformDouble() * 1e-3;
        p.glwe_noise = rng.uniformDouble() * 1e-12;
        p.lambda = static_cast<int>(rng.uniformBelow(257));

        std::stringstream ss;
        serialize(ss, p);
        TfheParams back = deserializeParams(ss);
        EXPECT_EQ(back.name, p.name);
        EXPECT_EQ(back.n, p.n);
        EXPECT_EQ(back.N, p.N);
        EXPECT_EQ(back.k, p.k);
        EXPECT_EQ(back.l_bsk, p.l_bsk);
        EXPECT_EQ(back.bg_bits, p.bg_bits);
        EXPECT_EQ(back.l_ksk, p.l_ksk);
        EXPECT_EQ(back.ks_base_bits, p.ks_base_bits);
        EXPECT_DOUBLE_EQ(back.lwe_noise, p.lwe_noise);
        EXPECT_DOUBLE_EQ(back.glwe_noise, p.glwe_noise);
        EXPECT_EQ(back.lambda, p.lambda);
    }
}

TEST(SerializeFuzz, RandomShapeMultiFrameRoundTripSweep)
{
    // Streams of randomly shaped, randomly ordered frames must
    // round-trip structure by structure.
    Rng rng(202);
    for (int iter = 0; iter < 25; ++iter) {
        std::stringstream ss;

        size_t lwe_dim = 1 + rng.uniformBelow(300);
        LweKey lkey(static_cast<uint32_t>(lwe_dim), rng);
        serialize(ss, lkey);

        size_t poly_n = size_t{1} << (1 + rng.uniformBelow(9));
        TorusPolynomial poly =
            test::randomTorusPoly(poly_n, rng);
        serialize(ss, poly);

        uint32_t k = 1 + static_cast<uint32_t>(rng.uniformBelow(3));
        uint32_t ring = 1u << (2 + rng.uniformBelow(7));
        GlweKey gkey(k, ring, rng);
        serialize(ss, gkey);

        auto ct = lweEncrypt(lkey, encodeMessage(1, 8), 0.0, rng);
        serialize(ss, ct);

        LweKey lback = deserializeLweKey(ss);
        ASSERT_EQ(lback.dim(), lkey.dim());
        for (uint32_t i = 0; i < lkey.dim(); ++i)
            ASSERT_EQ(lback.bit(i), lkey.bit(i));

        EXPECT_EQ(deserializeTorusPolynomial(ss), poly);

        GlweKey gback = deserializeGlweKey(ss);
        ASSERT_EQ(gback.k(), k);
        ASSERT_EQ(gback.ringDim(), ring);
        for (uint32_t i = 0; i < k; ++i)
            ASSERT_EQ(gback.poly(i), gkey.poly(i));

        EXPECT_EQ(lweDecrypt(lkey, deserializeLweCiphertext(ss), 8), 1);
    }
}

TEST(SerializeFuzz, EveryStrictPrefixThrows)
{
    // A frame cut anywhere before its last byte must be rejected --
    // no partial parse may leak out as a valid structure.
    Rng rng(303);
    LweKey key(48, rng);
    TfheParams params = paramsSetII();
    TorusPolynomial poly = test::randomTorusPoly(64, rng);
    auto ct = lweEncrypt(key, encodeMessage(3, 8), 0.0, rng);

    const std::string frames[] = {
        frameBytes(params),
        frameBytes(key),
        frameBytes(poly),
        frameBytes(ct),
    };
    int idx = 0;
    for (const std::string &bytes : frames) {
        SCOPED_TRACE("frame " + std::to_string(idx++));
        for (size_t cut = 0; cut < bytes.size(); ++cut) {
            std::stringstream ss(bytes.substr(0, cut));
            switch (idx - 1) {
              case 0:
                EXPECT_THROW(deserializeParams(ss), std::runtime_error)
                    << "cut=" << cut;
                break;
              case 1:
                EXPECT_THROW(deserializeLweKey(ss), std::runtime_error)
                    << "cut=" << cut;
                break;
              case 2:
                EXPECT_THROW(deserializeTorusPolynomial(ss),
                             std::runtime_error)
                    << "cut=" << cut;
                break;
              default:
                EXPECT_THROW(deserializeLweCiphertext(ss),
                             std::runtime_error)
                    << "cut=" << cut;
            }
        }
    }
}

TEST(SerializeFuzz, EveryHeaderBitFlipThrows)
{
    // The 8-byte header is tag + version; any single-bit corruption
    // of it must be rejected outright.
    Rng rng(404);
    TorusPolynomial poly = test::randomTorusPoly(32, rng);
    const std::string bytes = frameBytes(poly);
    ASSERT_GE(bytes.size(), 8u);
    for (size_t bit = 0; bit < 64; ++bit) {
        std::string corrupted = bytes;
        corrupted[bit / 8] =
            static_cast<char>(corrupted[bit / 8] ^ (1 << (bit % 8)));
        std::stringstream ss(corrupted);
        EXPECT_THROW(deserializeTorusPolynomial(ss), std::runtime_error)
            << "bit " << bit;
    }
}

TEST(SerializeFuzz, RandomByteFlipsNeverCrash)
{
    // Payload corruption may parse to a different (garbage) structure
    // or throw std::runtime_error; anything else -- a crash, a hang,
    // an unbounded allocation (bounded by the length-field caps in
    // serialize.cpp), another exception type -- is a bug.
    Rng rng(505);
    TfheParams p = testParams(16, 64);
    p.l_ksk = 2;
    p.ks_base_bits = 4;
    LweKey from(48, rng);
    LweKey to(16, rng);
    KeySwitchKey ksk = KeySwitchKey::generate(from, to, p, rng);
    const std::string base = frameBytes(ksk);

    for (int iter = 0; iter < 300; ++iter) {
        std::string corrupted = base;
        // Flip 1-4 random bytes anywhere in the frame.
        size_t flips = 1 + rng.uniformBelow(4);
        for (size_t f = 0; f < flips; ++f) {
            size_t pos = rng.uniformBelow(corrupted.size());
            corrupted[pos] = static_cast<char>(
                corrupted[pos] ^
                static_cast<char>(1 + rng.uniformBelow(255)));
        }
        std::stringstream ss(corrupted);
        try {
            KeySwitchKey back = deserializeKeySwitchKey(ss);
            // Parsed (e.g. only ciphertext payload bytes flipped):
            // the plausibility guards must still have held.
            EXPECT_LE(back.gadget().levels, 64u);
        } catch (const std::runtime_error &) {
            // Rejected: fine.
        }
    }
}

TEST(SerializeFuzz, ImplausibleVectorLengthRejectedWithoutAllocating)
{
    // A hostile length field (2^32 entries = 16 GiB) must be rejected
    // by the plausibility cap, not by attempting the allocation.
    std::stringstream ss;
    serialize(ss, LweCiphertext(4));
    std::string bytes = ss.str();
    // Frame layout: tag(4) version(4) then u64 vector length.
    uint64_t huge = uint64_t{1} << 32;
    std::memcpy(&bytes[8], &huge, sizeof(huge));
    std::stringstream corrupted(bytes);
    EXPECT_THROW(deserializeLweCiphertext(corrupted), std::runtime_error);

    // A length just inside the cap on a short frame must throw
    // "truncated" after consuming the bytes that exist -- the reader
    // grows with the stream, it never eagerly allocates the claimed
    // 128 MiB (readU32Vector's incremental loop).
    uint64_t capped = (uint64_t{1} << 25) - 1;
    std::memcpy(&bytes[8], &capped, sizeof(capped));
    std::stringstream truncated(bytes);
    EXPECT_THROW(deserializeLweCiphertext(truncated), std::runtime_error);
}

// ---------------------------------------------------------------------------
// EvalKeys bundles: the shipped server keyset gets the same hostile-
// input hardening as ciphertexts -- functional round-trip, randomized
// shape sweep, truncation, header bit-flips, payload byte-flips.

/** Tiny bundle the fuzz sweeps can afford to re-serialize often. */
const EvalKeys &
tinyEvalKeys()
{
    static test::TestKeys keys(testParams(16, 64, 1, 2, 8, 0.0),
                               test::kSeedSerialize);
    return *keys.client.evalKeys();
}

TEST(SerializeEvalKeys, RoundTripEvaluatesBitIdentically)
{
    // A server standing on the deserialized bundle must produce
    // ciphertexts bit-identical to the original context's: the
    // frequency-domain BSK rows round-trip exactly.
    test::TestKeys keys(testParams(32, 256, 1, 3, 8, 0.0),
                        test::kSeedSerialize);
    std::stringstream wire;
    serialize(wire, *keys.client.evalKeys());

    std::shared_ptr<const EvalKeys> shipped = deserializeEvalKeys(wire);
    ASSERT_NE(shipped, nullptr);
    EXPECT_EQ(shipped->params().N, 256u);
    ServerContext remote(shipped);

    const uint64_t space = 8;
    auto square = [](int64_t v) { return (v * v) % 8; };
    for (int64_t m = 0; m < 4; ++m) {
        auto ct = keys.client.encryptInt(m, space);
        LweCiphertext here = keys.server.applyLut(ct, space, square);
        LweCiphertext there = remote.applyLut(ct, space, square);
        EXPECT_EQ(here.raw(), there.raw()) << "m=" << m;
        EXPECT_EQ(keys.client.decryptInt(there, space), (m * m) % 8);
    }
}

TEST(SerializeEvalKeys, StandaloneBskFrameRoundTrips)
{
    // The BSK frame also reads standalone (no params frame to cross-
    // check against): the rebuilt key must re-serialize byte-exactly
    // and carry the shape fields through its synthesized params.
    const EvalKeys &keys = tinyEvalKeys();
    const std::string bytes = frameBytes(keys.bsk());
    std::stringstream ss(bytes);
    BootstrappingKey back = deserializeBootstrappingKey(ss);
    EXPECT_EQ(back.n(), keys.bsk().n());
    EXPECT_EQ(back.params().N, keys.params().N);
    EXPECT_EQ(back.params().k, keys.params().k);
    EXPECT_EQ(back.params().l_bsk, keys.params().l_bsk);
    EXPECT_EQ(frameBytes(back), bytes);
}

TEST(SerializeEvalKeys, RandomShapeRoundTripSweep)
{
    // Re-serializing the deserialized bundle must reproduce the frame
    // byte-for-byte across random small key shapes.
    Rng rng(606);
    for (int iter = 0; iter < 4; ++iter) {
        uint32_t n = 4 + uint32_t(rng.uniformBelow(12));
        uint32_t big_n = 16u << rng.uniformBelow(3);
        uint32_t k = 1 + uint32_t(rng.uniformBelow(2));
        uint32_t l = 1 + uint32_t(rng.uniformBelow(3));
        ClientKeyset client(testParams(n, big_n, k, l, 8, 0.0),
                            1000 + uint64_t(iter));

        const std::string bytes = frameBytes(*client.evalKeys());
        std::stringstream ss(bytes);
        std::shared_ptr<const EvalKeys> back = deserializeEvalKeys(ss);
        EXPECT_EQ(frameBytes(*back), bytes)
            << "n=" << n << " N=" << big_n << " k=" << k << " l=" << l;
    }
}

TEST(SerializeEvalKeys, StrictPrefixSampleThrows)
{
    // The frame is ~100 KiB, so (unlike the small-frame sweep above)
    // cutting at *every* byte is quadratic; sample instead: the whole
    // header/shape region densely, then strided and random interior
    // cuts, and the last bytes.
    const std::string bytes = frameBytes(tinyEvalKeys());
    ASSERT_GT(bytes.size(), 512u);

    std::vector<size_t> cuts;
    for (size_t c = 0; c < 256; ++c)
        cuts.push_back(c);
    for (size_t c = 256; c < bytes.size(); c += 997)
        cuts.push_back(c);
    Rng rng(707);
    for (int i = 0; i < 64; ++i)
        cuts.push_back(rng.uniformBelow(bytes.size()));
    for (size_t back = 1; back <= 16; ++back)
        cuts.push_back(bytes.size() - back);

    for (size_t cut : cuts) {
        std::stringstream ss(bytes.substr(0, cut));
        EXPECT_THROW(deserializeEvalKeys(ss), std::runtime_error)
            << "cut=" << cut;
    }
}

TEST(SerializeEvalKeys, EveryHeaderBitFlipThrows)
{
    // The outer header plus the nested params header: any single-bit
    // corruption must be rejected outright.
    const std::string bytes = frameBytes(tinyEvalKeys());
    ASSERT_GE(bytes.size(), 16u);
    for (size_t bit = 0; bit < 128; ++bit) {
        std::string corrupted = bytes;
        corrupted[bit / 8] =
            static_cast<char>(corrupted[bit / 8] ^ (1 << (bit % 8)));
        std::stringstream ss(corrupted);
        EXPECT_THROW(deserializeEvalKeys(ss), std::runtime_error)
            << "bit " << bit;
    }
}

TEST(SerializeEvalKeys, RandomByteFlipsNeverCrash)
{
    // Payload corruption may parse (BSK rows are raw doubles: bit
    // flips there change values, not structure) or throw
    // std::runtime_error; a crash, hang, abort, or unbounded
    // allocation is a bug. Shape-field corruption must be caught by
    // the plausibility caps and the params cross-checks.
    const std::string base = frameBytes(tinyEvalKeys());
    Rng rng(808);
    for (int iter = 0; iter < 60; ++iter) {
        std::string corrupted = base;
        size_t flips = 1 + rng.uniformBelow(4);
        for (size_t f = 0; f < flips; ++f) {
            size_t pos = rng.uniformBelow(corrupted.size());
            corrupted[pos] = static_cast<char>(
                corrupted[pos] ^
                static_cast<char>(1 + rng.uniformBelow(255)));
        }
        std::stringstream ss(corrupted);
        try {
            std::shared_ptr<const EvalKeys> back =
                deserializeEvalKeys(ss);
            // Parsed: the cross-checks must still have held.
            ASSERT_NE(back, nullptr);
            EXPECT_EQ(back->bsk().n(), back->params().n);
        } catch (const std::runtime_error &) {
            // Rejected: fine.
        }
    }
}

TEST(SerializeEvalKeys, MismatchedKskIsRejected)
{
    // Splice the KSK of a *different* keyset shape into an otherwise
    // valid bundle: the params cross-check must refuse to assemble a
    // bundle that would silently evaluate garbage.
    test::TestKeys keys(testParams(16, 64, 1, 2, 8, 0.0), 11);
    test::TestKeys other(testParams(24, 128, 1, 2, 8, 0.0), 12);

    std::stringstream spliced;
    // Hand-assemble the frame: outer header + params + bsk come from
    // `keys`, the ksk from `other`.
    serialize(spliced, *keys.client.evalKeys());
    std::string bytes = spliced.str();
    std::string good_ksk = frameBytes(keys.client.evalKeys()->ksk());
    std::string bad_ksk = frameBytes(other.client.evalKeys()->ksk());
    ASSERT_GT(bytes.size(), good_ksk.size());
    bytes.resize(bytes.size() - good_ksk.size());
    bytes += bad_ksk;

    std::stringstream ss(bytes);
    EXPECT_THROW(deserializeEvalKeys(ss), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Seeded (EVK2) frames: compressed bundles must round-trip to
// bit-identical keys, re-serialize byte-exactly, beat the expanded
// frame on size, and reject the same hostile inputs as EVK1.

/** The tiny bundle's bytes in the seeded v2 format. */
std::string
seededBytes(const EvalKeys &keys)
{
    std::stringstream ss;
    serialize(ss, keys, EvalKeysFormat::Seeded);
    return ss.str();
}

TEST(SerializeEvk2, FunctionalRoundTrip)
{
    // A server standing on a bundle re-expanded from seeds must
    // produce ciphertexts bit-identical to the original keyset's.
    test::TestKeys keys(testParams(32, 256, 1, 3, 8, 0.0),
                        test::kSeedSerialize);
    std::stringstream wire;
    serialize(wire, *keys.client.evalKeys(), EvalKeysFormat::Seeded);

    std::shared_ptr<const EvalKeys> shipped = deserializeEvalKeys(wire);
    ASSERT_NE(shipped, nullptr);
    ServerContext remote(shipped);

    const uint64_t space = 8;
    auto square = [](int64_t v) { return (v * v) % 8; };
    for (int64_t m = 0; m < 4; ++m) {
        auto ct = keys.client.encryptInt(m, space);
        LweCiphertext here = keys.server.applyLut(ct, space, square);
        LweCiphertext there = remote.applyLut(ct, space, square);
        EXPECT_EQ(here.raw(), there.raw()) << "m=" << m;
        EXPECT_EQ(keys.client.decryptInt(there, space), (m * m) % 8);
    }
}

TEST(SerializeEvk2, RebuiltBundleIsBitIdenticalToOriginal)
{
    // The EVK1 frame carries every FFT-domain BSK row and every KSK
    // entry verbatim, so EVK1(rebuilt) == EVK1(original) pins the
    // rebuilt bundle bit-identical across the whole key material --
    // and doubles as the cross-version compatibility check.
    const EvalKeys &orig = tinyEvalKeys();
    std::stringstream wire(seededBytes(orig));
    std::shared_ptr<const EvalKeys> rebuilt = deserializeEvalKeys(wire);
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_EQ(frameBytes(*rebuilt), frameBytes(orig));
}

TEST(SerializeEvk2, ReserializeIsByteExact)
{
    // v2 -> bundle -> v2 must reproduce the frame byte-for-byte (the
    // rebuilt bundle keeps its mask seeds).
    const std::string bytes = seededBytes(tinyEvalKeys());
    std::stringstream ss(bytes);
    std::shared_ptr<const EvalKeys> back = deserializeEvalKeys(ss);
    ASSERT_NE(back, nullptr);
    ASSERT_TRUE(back->seeds().has_value());
    EXPECT_EQ(seededBytes(*back), bytes);
}

TEST(SerializeEvk2, RandomShapeRoundTripSweep)
{
    // Byte-exact v2 re-serialization and EVK1 bit-identity across
    // random small key shapes.
    Rng rng(909);
    for (int iter = 0; iter < 4; ++iter) {
        uint32_t n = 4 + uint32_t(rng.uniformBelow(12));
        uint32_t big_n = 16u << rng.uniformBelow(3);
        uint32_t k = 1 + uint32_t(rng.uniformBelow(2));
        uint32_t l = 1 + uint32_t(rng.uniformBelow(3));
        ClientKeyset client(testParams(n, big_n, k, l, 8, 0.0),
                            2000 + uint64_t(iter));

        const std::string bytes = seededBytes(*client.evalKeys());
        std::stringstream ss(bytes);
        std::shared_ptr<const EvalKeys> back = deserializeEvalKeys(ss);
        ASSERT_NE(back, nullptr);
        EXPECT_EQ(seededBytes(*back), bytes)
            << "n=" << n << " N=" << big_n << " k=" << k << " l=" << l;
        EXPECT_EQ(frameBytes(*back), frameBytes(*client.evalKeys()))
            << "n=" << n << " N=" << big_n << " k=" << k << " l=" << l;
    }
}

TEST(SerializeEvk2, CompressesWellUnderTheExpandedFrame)
{
    // The acceptance bar is <= 55% of EVK1; the seeded frame drops all
    // mask material (~1/(k+1) of the BSK, ~1/(n+1) of the KSK), which
    // lands well under that even at tiny shapes.
    const EvalKeys &keys = tinyEvalKeys();
    const size_t v1 = frameBytes(keys).size();
    const size_t v2 = seededBytes(keys).size();
    EXPECT_LE(double(v2), 0.55 * double(v1))
        << "v1=" << v1 << " v2=" << v2;
}

TEST(SerializeEvk2, ExpandedOnlyBundleRefusesSeededFormat)
{
    // A bundle loaded from an EVK1 frame carries no mask seeds, so it
    // can only re-serialize expanded; asking for Seeded must throw
    // rather than invent seeds.
    std::stringstream wire(frameBytes(tinyEvalKeys()));
    std::shared_ptr<const EvalKeys> back = deserializeEvalKeys(wire);
    ASSERT_NE(back, nullptr);
    EXPECT_FALSE(back->seeds().has_value());
    std::stringstream out;
    EXPECT_THROW(serialize(out, *back, EvalKeysFormat::Seeded),
                 std::runtime_error);
    // Expanded still works and matches the original frame.
    std::stringstream out1;
    serialize(out1, *back, EvalKeysFormat::Expanded);
    EXPECT_EQ(out1.str(), frameBytes(tinyEvalKeys()));
}

TEST(SerializeEvk2, StrictPrefixSampleThrows)
{
    // Same sampling strategy as the EVK1 sweep: dense over the header
    // and shape sections, strided + random over the bodies, and the
    // final bytes.
    const std::string bytes = seededBytes(tinyEvalKeys());
    ASSERT_GT(bytes.size(), 512u);

    std::vector<size_t> cuts;
    for (size_t c = 0; c < 256; ++c)
        cuts.push_back(c);
    for (size_t c = 256; c < bytes.size(); c += 499)
        cuts.push_back(c);
    Rng rng(1010);
    for (int i = 0; i < 64; ++i)
        cuts.push_back(rng.uniformBelow(bytes.size()));
    for (size_t back = 1; back <= 16; ++back)
        cuts.push_back(bytes.size() - back);

    for (size_t cut : cuts) {
        std::stringstream ss(bytes.substr(0, cut));
        EXPECT_THROW(deserializeEvalKeys(ss), std::runtime_error)
            << "cut=" << cut;
    }
}

TEST(SerializeEvk2, EveryHeaderBitFlipThrows)
{
    // Outer EVK2 header plus the nested params header. Note the EVK1
    // and EVK2 tags differ in two bits, so no single flip can silently
    // cross frame generations.
    const std::string bytes = seededBytes(tinyEvalKeys());
    ASSERT_GE(bytes.size(), 16u);
    for (size_t bit = 0; bit < 128; ++bit) {
        std::string corrupted = bytes;
        corrupted[bit / 8] =
            static_cast<char>(corrupted[bit / 8] ^ (1 << (bit % 8)));
        std::stringstream ss(corrupted);
        EXPECT_THROW(deserializeEvalKeys(ss), std::runtime_error)
            << "bit " << bit;
    }
}

TEST(SerializeEvk2, TamperedSectionLengthThrows)
{
    // The BSK2 SHAPE section sits right after the nested params frame:
    // [id u32][length u64][payload]. Corrupting the declared length --
    // short, long, or hostile-huge -- must be rejected by the section
    // bounds checks, never trusted for allocation.
    const EvalKeys &keys = tinyEvalKeys();
    const std::string bytes = seededBytes(keys);
    const size_t params_len = frameBytes(keys.params()).size();
    // outer header (8) + params frame + BSK2 header (8) + section id.
    const size_t len_off = 8 + params_len + 8 + 4;
    ASSERT_LE(len_off + 8, bytes.size());

    for (uint64_t bad : {uint64_t{0}, uint64_t{27}, uint64_t{29},
                         uint64_t{1} << 40, ~uint64_t{0}}) {
        std::string corrupted = bytes;
        std::memcpy(&corrupted[len_off], &bad, sizeof(bad));
        std::stringstream ss(corrupted);
        EXPECT_THROW(deserializeEvalKeys(ss), std::runtime_error)
            << "len=" << bad;
    }
}

TEST(SerializeEvk2, RandomByteFlipsNeverCrash)
{
    // Body corruption may parse (freq-domain doubles / raw Torus32
    // bodies: flips change values, not structure) or throw
    // std::runtime_error; anything else is a bug.
    const std::string base = seededBytes(tinyEvalKeys());
    Rng rng(1111);
    for (int iter = 0; iter < 60; ++iter) {
        std::string corrupted = base;
        size_t flips = 1 + rng.uniformBelow(4);
        for (size_t f = 0; f < flips; ++f) {
            size_t pos = rng.uniformBelow(corrupted.size());
            corrupted[pos] = static_cast<char>(
                corrupted[pos] ^
                static_cast<char>(1 + rng.uniformBelow(255)));
        }
        std::stringstream ss(corrupted);
        try {
            std::shared_ptr<const EvalKeys> back =
                deserializeEvalKeys(ss);
            ASSERT_NE(back, nullptr);
            EXPECT_EQ(back->bsk().n(), back->params().n);
        } catch (const std::runtime_error &) {
            // Rejected: fine.
        }
    }
}

} // namespace
} // namespace strix
