/**
 * @file
 * PBS implementation.
 */

#include "tfhe/bootstrap.h"

#include "common/logging.h"

namespace strix {

BootstrappingKey
BootstrappingKey::generate(const LweKey &lwe_key, const GlweKey &glwe_key,
                           const TfheParams &params, Rng &rng)
{
    panicIfNot(lwe_key.dim() == params.n, "bsk: LWE key dim mismatch");
    panicIfNot(glwe_key.k() == params.k &&
                   glwe_key.ringDim() == params.N,
               "bsk: GLWE key shape mismatch");

    BootstrappingKey bsk;
    bsk.params_ = params;
    GadgetParams g{params.bg_bits, params.l_bsk};
    bsk.ggsw_fft_.reserve(params.n);
    for (uint32_t i = 0; i < params.n; ++i) {
        GgswCiphertext ggsw =
            ggswEncrypt(glwe_key, lwe_key.bit(i), g, params.glwe_noise, rng);
        bsk.ggsw_fft_.emplace_back(ggsw);
    }
    return bsk;
}

BootstrappingKey
BootstrappingKey::generateSeeded(const LweKey &lwe_key,
                                 const GlweKey &glwe_key,
                                 const TfheParams &params,
                                 uint64_t mask_seed, Rng &noise_rng)
{
    panicIfNot(lwe_key.dim() == params.n, "bsk: LWE key dim mismatch");
    panicIfNot(glwe_key.k() == params.k &&
                   glwe_key.ringDim() == params.N,
               "bsk: GLWE key shape mismatch");

    BootstrappingKey bsk;
    bsk.params_ = params;
    const GadgetParams g{params.bg_bits, params.l_bsk};
    const Rng mask_root(mask_seed);
    const uint64_t rows_per_bit =
        uint64_t(params.k + 1) * params.l_bsk;
    bsk.ggsw_fft_.reserve(params.n);
    for (uint32_t i = 0; i < params.n; ++i) {
        GgswCiphertext ggsw =
            ggswEncryptSeeded(glwe_key, lwe_key.bit(i), g,
                              params.glwe_noise, mask_root,
                              uint64_t(i) * rows_per_bit, noise_rng);
        bsk.ggsw_fft_.emplace_back(ggsw);
    }
    return bsk;
}

BootstrappingKey
BootstrappingKey::fromSeededBodies(const TfheParams &params,
                                   uint64_t mask_seed,
                                   std::vector<FreqPolynomial> freq_bodies)
{
    const uint32_t k = params.k;
    const uint32_t big_n = params.N;
    const GadgetParams g{params.bg_bits, params.l_bsk};
    const size_t rows_per_bit = size_t(k + 1) * g.levels;
    panicIfNot(freq_bodies.size() == size_t(params.n) * rows_per_bit,
               "bsk fromSeededBodies: body count mismatch");

    const auto &eng = NegacyclicFft::get(big_n);
    const Rng mask_root(mask_seed);
    GlweCiphertext scratch(k, big_n);
    std::vector<GgswFft> bits;
    bits.reserve(params.n);
    for (uint32_t i = 0; i < params.n; ++i) {
        std::vector<FreqPolynomial> rows(rows_per_bit * (k + 1));
        for (size_t r = 0; r < rows_per_bit; ++r) {
            // Identical fork id and draw order as ggswEncryptSeeded
            // (stream_base + block*levels + level == flat row index),
            // identical per-polynomial forward transform as the
            // GgswFft constructor: the regenerated mask columns are
            // bit-identical to the generated key's.
            Rng mask_rng =
                mask_root.fork(uint64_t(i) * rows_per_bit + r);
            glweFillMask(scratch, mask_rng);
            for (uint32_t c = 0; c < k; ++c)
                eng.forward(rows[r * (k + 1) + c], scratch.poly(c));
            FreqPolynomial &body = freq_bodies[i * rows_per_bit + r];
            panicIfNot(body.size() == size_t(big_n) / 2,
                       "bsk fromSeededBodies: body size mismatch");
            rows[r * (k + 1) + k] = std::move(body);
        }
        bits.push_back(
            GgswFft::fromRawRows(k, big_n, g, std::move(rows)));
    }
    return fromBits(params, std::move(bits));
}

BootstrappingKey
BootstrappingKey::fromBits(const TfheParams &params,
                           std::vector<GgswFft> bits)
{
    panicIfNot(bits.size() == params.n, "bsk: bit count mismatch");
    const GadgetParams g{params.bg_bits, params.l_bsk};
    for (const GgswFft &ggsw : bits) {
        panicIfNot(ggsw.k() == params.k && ggsw.ringDim() == params.N &&
                       ggsw.gadget().base_bits == g.base_bits &&
                       ggsw.gadget().levels == g.levels,
                   "bsk: GGSW shape mismatch");
    }
    BootstrappingKey bsk;
    bsk.params_ = params;
    bsk.ggsw_fft_ = std::move(bits);
    return bsk;
}

UnrolledBootstrappingKey
UnrolledBootstrappingKey::generate(const LweKey &lwe_key,
                                   const GlweKey &glwe_key,
                                   const TfheParams &params, Rng &rng)
{
    panicIfNot(lwe_key.dim() == params.n, "ubsk: LWE key dim mismatch");
    UnrolledBootstrappingKey ubsk;
    ubsk.params_ = params;
    GadgetParams g{params.bg_bits, params.l_bsk};
    const uint32_t pairs = (params.n + 1) / 2;
    ubsk.triples_.reserve(pairs);
    for (uint32_t i = 0; i < pairs; ++i) {
        int32_t s = lwe_key.bit(2 * i);
        // Odd n: the last pair is padded with an implicit zero bit.
        int32_t t = 2 * i + 1 < params.n ? lwe_key.bit(2 * i + 1) : 0;
        Triple tr{
            GgswFft(ggswEncrypt(glwe_key, s, g, params.glwe_noise, rng)),
            GgswFft(ggswEncrypt(glwe_key, t, g, params.glwe_noise, rng)),
            GgswFft(
                ggswEncrypt(glwe_key, s * t, g, params.glwe_noise, rng))};
        ubsk.triples_.push_back(std::move(tr));
    }
    return ubsk;
}

uint64_t
UnrolledBootstrappingKey::bytes() const
{
    // 3 GGSW per pair of key bits = 1.5x the regular bsk.
    return uint64_t(pairs()) * 3 * (params_.k + 1) * params_.l_bsk *
           (params_.k + 1) * params_.N * sizeof(uint32_t);
}

void
blindRotateUnrolled(GlweCiphertext &acc, const LweCiphertext &ct,
                    const UnrolledBootstrappingKey &ubsk,
                    PbsScratch &scratch)
{
    const TfheParams &p = ubsk.params();
    panicIfNot(ct.dim() == p.n, "blindRotateUnrolled: dim mismatch");
    const uint32_t two_n = 2 * p.N;
    const ModSwitch ms(p.N);

    const uint32_t b_tilde = ms(ct.b());
    if (b_tilde != 0) {
        GlweCiphertext rotated(p.k, p.N);
        for (uint32_t c = 0; c <= p.k; ++c)
            negacyclicRotate(rotated.poly(c), acc.poly(c),
                             two_n - b_tilde);
        acc = std::move(rotated);
    }

    // All pair-iteration working storage comes from the scratch, so
    // the ceil(n/2) hot iterations allocate nothing (externalProduct
    // uses the digit/frequency buffers, never these four).
    GlweCiphertext &d = scratch.diff;
    GlweCiphertext &prod = scratch.prod;
    GlweCiphertext &sum = scratch.sum;
    TorusPolynomial &tmp = scratch.rot_tmp;
    if (d.k() != p.k || d.ringDim() != p.N)
        d = GlweCiphertext(p.k, p.N);
    if (sum.k() != p.k || sum.ringDim() != p.N)
        sum = GlweCiphertext(p.k, p.N);
    if (tmp.size() != p.N)
        tmp = TorusPolynomial(p.N);

    for (uint32_t i = 0; i < ubsk.pairs(); ++i) {
        const uint32_t a = ms(ct.a(2 * i));
        const uint32_t b = 2 * i + 1 < p.n ? ms(ct.a(2 * i + 1)) : 0;
        if (a == 0 && b == 0)
            continue;

        sum.clear();
        // s-term: GGSW(s) [*] (X^a - 1) acc
        if (a != 0) {
            for (uint32_t c = 0; c <= p.k; ++c)
                negacyclicRotateMinusOne(d.poly(c), acc.poly(c), a);
            ubsk.first(i).externalProduct(prod, d, scratch);
            sum.addAssign(prod);
        }
        // t-term: GGSW(t) [*] (X^b - 1) acc
        if (b != 0) {
            for (uint32_t c = 0; c <= p.k; ++c)
                negacyclicRotateMinusOne(d.poly(c), acc.poly(c), b);
            ubsk.second(i).externalProduct(prod, d, scratch);
            sum.addAssign(prod);
        }
        // st-term: GGSW(s*t) [*] (X^a - 1)(X^b - 1) acc
        if (a != 0 && b != 0) {
            for (uint32_t c = 0; c <= p.k; ++c) {
                // X^{a+b} acc - X^a acc - X^b acc + acc
                negacyclicRotate(d.poly(c), acc.poly(c),
                                 (a + b) % two_n);
                negacyclicRotate(tmp, acc.poly(c), a);
                d.poly(c).subAssign(tmp);
                negacyclicRotate(tmp, acc.poly(c), b);
                d.poly(c).subAssign(tmp);
                d.poly(c).addAssign(acc.poly(c));
            }
            ubsk.product(i).externalProduct(prod, d, scratch);
            sum.addAssign(prod);
        }
        acc.addAssign(sum);
    }
}

void
blindRotateUnrolled(GlweCiphertext &acc, const LweCiphertext &ct,
                    const UnrolledBootstrappingKey &ubsk)
{
    PbsScratch scratch;
    blindRotateUnrolled(acc, ct, ubsk, scratch);
}

LweCiphertext
programmableBootstrapUnrolled(const LweCiphertext &ct,
                              const TorusPolynomial &test_vector,
                              const UnrolledBootstrappingKey &ubsk,
                              PbsScratch &scratch)
{
    const TfheParams &p = ubsk.params();
    panicIfNot(test_vector.size() == p.N,
               "unrolled PBS: test vector size mismatch");
    GlweCiphertext acc = GlweCiphertext::trivial(p.k, test_vector);
    blindRotateUnrolled(acc, ct, ubsk, scratch);
    return sampleExtract(acc, 0);
}

LweCiphertext
programmableBootstrapUnrolled(const LweCiphertext &ct,
                              const TorusPolynomial &test_vector,
                              const UnrolledBootstrappingKey &ubsk)
{
    PbsScratch scratch;
    return programmableBootstrapUnrolled(ct, test_vector, ubsk, scratch);
}

ModSwitch::ModSwitch(uint32_t big_n)
{
    panicIfNot(big_n != 0 && (big_n & (big_n - 1)) == 0,
               "modulus switch: ring dim must be a power of two");
    // log2(2N) <= 32; the loop terminates because 2N is a power of
    // two (the panic above rules everything else out).
    uint32_t log_2n = 1;
    while ((static_cast<uint64_t>(big_n) << 1) >> log_2n != 1)
        ++log_2n;
    shift_ = kTorus32Bits - log_2n;
    mask_ = static_cast<uint32_t>((static_cast<uint64_t>(big_n) << 1) - 1);
    // Round-half-up bias of half a grid step. When 2N = 2^32 the grid
    // is the torus itself: no rounding, and a bias of 1 << (shift-1)
    // would have been the old code's shift-by-minus-one underflow.
    bias_ = shift_ == 0 ? 0 : uint64_t{1} << (shift_ - 1);
}

uint32_t
modulusSwitch(Torus32 a, uint32_t big_n)
{
    return ModSwitch(big_n)(a);
}

void
blindRotate(GlweCiphertext &acc, const LweCiphertext &ct,
            const BootstrappingKey &bsk, PbsScratch &scratch)
{
    const TfheParams &p = bsk.params();
    panicIfNot(ct.dim() == p.n, "blindRotate: ciphertext dim mismatch");
    const uint32_t two_n = 2 * p.N;
    const ModSwitch ms(p.N);

    // Initial rotation by -b~ (Algorithm 1, line 4).
    const uint32_t b_tilde = ms(ct.b());
    if (b_tilde != 0) {
        GlweCiphertext rotated(p.k, p.N);
        for (uint32_t c = 0; c <= p.k; ++c)
            negacyclicRotate(rotated.poly(c), acc.poly(c),
                             two_n - b_tilde);
        acc = std::move(rotated);
    }

    // n CMux iterations (lines 5-12); each is one blind-rotation
    // iteration of the Strix PBS cluster.
    for (uint32_t i = 0; i < p.n; ++i) {
        const uint32_t a_tilde = ms(ct.a(i));
        if (a_tilde == 0)
            continue; // rotation by X^0 - 1 = 0 contributes nothing
        bsk.bit(i).cmuxRotate(acc, a_tilde, scratch);
    }
}

void
blindRotate(GlweCiphertext &acc, const LweCiphertext &ct,
            const BootstrappingKey &bsk)
{
    PbsScratch scratch;
    blindRotate(acc, ct, bsk, scratch);
}

LweCiphertext
programmableBootstrap(const LweCiphertext &ct,
                      const TorusPolynomial &test_vector,
                      const BootstrappingKey &bsk, PbsScratch &scratch)
{
    const TfheParams &p = bsk.params();
    panicIfNot(test_vector.size() == p.N, "PBS: test vector size mismatch");
    GlweCiphertext acc = GlweCiphertext::trivial(p.k, test_vector);
    blindRotate(acc, ct, bsk, scratch);
    return sampleExtract(acc, 0);
}

LweCiphertext
programmableBootstrap(const LweCiphertext &ct,
                      const TorusPolynomial &test_vector,
                      const BootstrappingKey &bsk)
{
    PbsScratch scratch;
    return programmableBootstrap(ct, test_vector, bsk, scratch);
}

Torus32
encodeLut(int64_t m, uint64_t msg_space)
{
    // (2m+1) / (4p)
    return encodeMessage(2 * m + 1, 4 * msg_space);
}

int64_t
decodeLut(Torus32 phase, uint64_t msg_space)
{
    // floor(phase * 2p) over the positive half-torus.
    unsigned __int128 num =
        static_cast<unsigned __int128>(phase) * (2 * msg_space);
    return static_cast<int64_t>(static_cast<uint64_t>(num >> 32) %
                                msg_space);
}

TorusPolynomial
makeTestVector(uint32_t big_n, uint64_t msg_space,
               const std::function<Torus32(int64_t)> &f)
{
    panicIfNot(msg_space <= big_n, "LUT larger than polynomial degree");
    TorusPolynomial tv(big_n);
    for (uint32_t j = 0; j < big_n; ++j) {
        auto m = static_cast<int64_t>(
            (static_cast<uint64_t>(j) * msg_space) / big_n);
        tv[j] = f(m);
    }
    return tv;
}

TorusPolynomial
makeIntTestVector(uint32_t big_n, uint64_t msg_space,
                  const std::function<int64_t(int64_t)> &f)
{
    return makeTestVector(big_n, msg_space, [&](int64_t m) {
        return encodeLut(f(m), msg_space);
    });
}

} // namespace strix
