/**
 * @file
 * TfheContext: full key material plus high-level encrypt/decrypt and
 * bootstrap entry points. This is the main user-facing handle of the
 * software TFHE library.
 */

#ifndef STRIX_TFHE_CONTEXT_H
#define STRIX_TFHE_CONTEXT_H

#include <memory>

#include "tfhe/bootstrap.h"
#include "tfhe/keyswitch.h"

namespace strix {

/**
 * Key bundle for one TFHE instance: LWE key (dim n), GLWE key, the
 * extracted LWE key (dim k*N), bootstrapping key, keyswitching key.
 */
class TfheContext
{
  public:
    /** Generate all keys for @p params deterministically from @p seed. */
    TfheContext(const TfheParams &params, uint64_t seed = 0xC0DEC0DEULL);

    const TfheParams &params() const { return params_; }
    const LweKey &lweKey() const { return lwe_key_; }
    const GlweKey &glweKey() const { return glwe_key_; }
    const LweKey &extractedKey() const { return extracted_key_; }
    const BootstrappingKey &bsk() const { return bsk_; }
    const KeySwitchKey &ksk() const { return ksk_; }
    Rng &rng() { return rng_; }

    /** Encrypt a boolean as mu = +-1/8 under the dim-n key. */
    LweCiphertext encryptBit(bool bit);

    /** Decrypt a boolean (sign of the phase). */
    bool decryptBit(const LweCiphertext &ct) const;

    /**
     * Encrypt an integer in [0, msg_space) with centered LUT encoding
     * (padding bit) under the dim-n key.
     */
    LweCiphertext encryptInt(int64_t m, uint64_t msg_space);

    /** Decrypt an integer with centered LUT encoding. */
    int64_t decryptInt(const LweCiphertext &ct, uint64_t msg_space) const;

    /**
     * Bootstrap @p ct against @p test_vector and keyswitch back to
     * dimension n -- the PBS+KS node every workload graph is made of.
     */
    LweCiphertext bootstrap(const LweCiphertext &ct,
                            const TorusPolynomial &test_vector) const;

    /**
     * Programmable bootstrapping of an integer function f over
     * [0, msg_space): returns an encryption of f(m) (centered
     * encoding), keyswitched to dimension n.
     */
    LweCiphertext applyLut(const LweCiphertext &ct, uint64_t msg_space,
                           const std::function<int64_t(int64_t)> &f) const;

  private:
    TfheParams params_;
    Rng rng_;
    LweKey lwe_key_;
    GlweKey glwe_key_;
    LweKey extracted_key_;
    BootstrappingKey bsk_;
    KeySwitchKey ksk_;
};

} // namespace strix

#endif // STRIX_TFHE_CONTEXT_H
