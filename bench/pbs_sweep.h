/**
 * @file
 * Shared measured batch-PBS scaling sweep used by cpu_measured and
 * ablation_parallelism: one bootstrapBatch call per pool size with
 * kPerWorker ciphertexts per worker (so every row is fully supplied),
 * identity LUT so every output self-checks, thread counts
 * deduplicated (max(4, hw) repeats 4 on a 4-core machine).
 */

#ifndef STRIX_BENCH_PBS_SWEEP_H
#define STRIX_BENCH_PBS_SWEEP_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.h"
#include "tfhe/context.h"

namespace strix {

/** One row of the measured batch-PBS scaling sweep. */
struct PbsSweepRow
{
    unsigned threads;
    size_t batch;
    double pbs_per_s;
    double scaling;
};

/**
 * Print the threads/batch/PBS-per-second/scaling table for @p ctx.
 * @param rows_out when non-null, receives one PbsSweepRow per printed
 *        row (used by cpu_measured --json).
 * @return false if any decrypted batch output mismatches (the caller
 *         should exit nonzero).
 */
inline bool
runBatchPbsSweep(TfheContext &ctx, bool smoke,
                 std::vector<PbsSweepRow> *rows_out = nullptr)
{
    const uint64_t space = 4;
    TorusPolynomial tv = makeIntTestVector(
        ctx.params().N, space, [](int64_t x) { return x; });

    unsigned hw = std::thread::hardware_concurrency();
    std::vector<unsigned> counts{1u, 2u, 4u, std::max(4u, hw)};
    if (smoke)
        counts = {1u, 2u};
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

    // Encryption advances the context RNG and is the one part of the
    // thread-safety contract that must stay on this thread; encrypt
    // once for the widest row.
    const size_t per_worker = smoke ? 2 : 4;
    std::vector<LweCiphertext> inputs;
    for (size_t i = 0; i < per_worker * counts.back(); ++i)
        inputs.push_back(ctx.encryptInt(int64_t(i % space), space));

    using Clock = std::chrono::steady_clock;
    TextTable t;
    t.header({"threads", "batch", "PBS/s", "scaling"});
    double tp1 = 0.0;
    bool ok = true;
    for (unsigned n : counts) {
        ctx.setBatchThreads(n);
        const size_t batch = per_worker * n;
        auto t0 = Clock::now();
        std::vector<LweCiphertext> outs =
            ctx.bootstrapBatch(inputs.data(), batch, tv);
        double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        for (size_t i = 0; i < outs.size(); ++i)
            ok &= ctx.decryptInt(outs[i], space) == int64_t(i % space);
        double tp = double(outs.size()) / secs;
        if (n == 1)
            tp1 = tp;
        if (rows_out)
            rows_out->push_back({n, batch, tp, tp / tp1});
        t.row({std::to_string(n), std::to_string(batch),
               TextTable::num(tp, 1), TextTable::num(tp / tp1, 2) + "x"});
    }
    t.print();
    std::printf("\nbatch outputs %s the identity LUT\n",
                ok ? "match" : "MISMATCH");
    return ok;
}

} // namespace strix

#endif // STRIX_BENCH_PBS_SWEEP_H
