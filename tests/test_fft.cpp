/**
 * @file
 * Tests for the complex FFT and the folded negacyclic FFT.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "poly/complex_fft.h"
#include "poly/negacyclic_fft.h"
#include "support/test_util.h"

namespace strix {
namespace {

TEST(ComplexFft, ForwardInverseRoundTrip)
{
    for (size_t m : {2u, 8u, 64u, 512u}) {
        Rng rng(m);
        std::vector<Cplx> data(m), orig(m);
        for (auto &c : data)
            c = Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);
        orig = data;
        const FftPlan &plan = FftPlan::get(m);
        plan.forward(data.data());
        plan.inverse(data.data());
        for (size_t i = 0; i < m; ++i) {
            EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-12);
            EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-12);
        }
    }
}

TEST(ComplexFft, MatchesDirectDft)
{
    const size_t m = 16;
    Rng rng(3);
    std::vector<Cplx> data(m);
    for (auto &c : data)
        c = Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);

    // Direct O(M^2) DFT with the same positive-exponent convention.
    std::vector<Cplx> expected(m, Cplx(0, 0));
    for (size_t k = 0; k < m; ++k)
        for (size_t j = 0; j < m; ++j) {
            double ang = 2.0 * M_PI * j * k / m;
            expected[k] += data[j] * Cplx(std::cos(ang), std::sin(ang));
        }

    FftPlan::get(m).forward(data.data());
    for (size_t k = 0; k < m; ++k) {
        EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-10);
        EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-10);
    }
}

TEST(ComplexFft, LinearityOfTransform)
{
    const size_t m = 64;
    Rng rng(4);
    std::vector<Cplx> a(m), b(m), sum(m);
    for (size_t i = 0; i < m; ++i) {
        a[i] = Cplx(rng.uniformDouble(), rng.uniformDouble());
        b[i] = Cplx(rng.uniformDouble(), rng.uniformDouble());
        sum[i] = a[i] + b[i];
    }
    const FftPlan &plan = FftPlan::get(m);
    plan.forward(a.data());
    plan.forward(b.data());
    plan.forward(sum.data());
    for (size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(sum[i].real(), a[i].real() + b[i].real(), 1e-9);
        EXPECT_NEAR(sum[i].imag(), a[i].imag() + b[i].imag(), 1e-9);
    }
}

TEST(ComplexFft, PlanCacheReturnsSameInstance)
{
    EXPECT_EQ(&FftPlan::get(256), &FftPlan::get(256));
    EXPECT_NE(&FftPlan::get(256), &FftPlan::get(512));
}

/** The folded transform must invert exactly (up to rounding). */
class NegacyclicRoundTrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(NegacyclicRoundTrip, TorusPolySurvives)
{
    const size_t n = GetParam();
    Rng rng(n);
    TorusPolynomial p = test::randomTorusPoly(n, rng);
    const auto &eng = NegacyclicFft::get(n);
    FreqPolynomial f;
    eng.forward(f, p);
    TorusPolynomial back(n);
    eng.inverse(back, f);
    for (size_t i = 0; i < n; ++i) {
        // Allow one ulp of rounding.
        EXPECT_LE(std::abs(torusDistance(back[i], p[i])), 1) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NegacyclicRoundTrip,
                         ::testing::Values(4, 16, 64, 256, 1024, 4096,
                                           16384));

TEST(NegacyclicFft, FrequencySizeIsHalfRingDim)
{
    // The folding scheme: an N-point negacyclic transform produces
    // N/2 complex points (Sec. V-A).
    const auto &eng = NegacyclicFft::get(1024);
    TorusPolynomial p(1024);
    FreqPolynomial f;
    eng.forward(f, p);
    EXPECT_EQ(f.size(), 512u);
}

TEST(NegacyclicFft, MonomialProductViaFftIsExactRotation)
{
    const size_t n = 128;
    Rng rng(5);
    TorusPolynomial p = test::randomTorusPoly(n, rng);

    IntPolynomial mono(n);
    mono[3] = 1;
    TorusPolynomial viaFft(n), viaRotate(n);
    negacyclicMulFft(viaFft, mono, p);
    negacyclicRotate(viaRotate, p, 3);
    for (size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(torusDistance(viaFft[i], viaRotate[i])), 1);
}

TEST(NegacyclicFft, MulAccumulateAddsInFrequencyDomain)
{
    const size_t n = 64;
    Rng rng(6);
    IntPolynomial a(n), b(n);
    TorusPolynomial x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.uniformBelow(17)) - 8;
        b[i] = static_cast<int32_t>(rng.uniformBelow(17)) - 8;
        x[i] = rng.uniformTorus32();
        y[i] = rng.uniformTorus32();
    }

    // freq(a)*freq(x) + freq(b)*freq(y) inverted == a*x + b*y.
    const auto &eng = NegacyclicFft::get(n);
    FreqPolynomial fa, fb, fx, fy, acc;
    eng.forward(fa, a);
    eng.forward(fb, b);
    eng.forward(fx, x);
    eng.forward(fy, y);
    NegacyclicFft::mulAccumulate(acc, fa, fx);
    NegacyclicFft::mulAccumulate(acc, fb, fy);
    TorusPolynomial got(n);
    eng.inverse(got, acc);

    TorusPolynomial expected(n);
    negacyclicMulNaive(expected, a, x);
    negacyclicMulAddNaive(expected, b, y);
    for (size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(torusDistance(got[i], expected[i])), 2);
}

} // namespace
} // namespace strix
