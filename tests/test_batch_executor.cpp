/**
 * @file
 * BatchExecutor tests: the WaitableClock seam, both flush triggers
 * (size and deadline, the latter driven by a ManualWaitableClock with
 * no real sleeps), bit-identity against the direct bootstrapBatch
 * path, cross-tenant shard isolation, shutdown/drain semantics, and a
 * concurrent mixed-tenant submit stress for the TSan CI leg.
 */

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/waitclock.h"
#include "support/test_util.h"
#include "tfhe/batch_executor.h"
#include "tfhe/server_context.h"

using namespace strix;
using namespace strix::test;

namespace {

constexpr uint64_t kSpace = 8;

/** A deadline the real clock will not hit within any test's runtime. */
constexpr uint64_t kNeverUs = 3600u * 1000u * 1000u; // one hour

void
expectSameCiphertext(const LweCiphertext &a, const LweCiphertext &b,
                     size_t index)
{
    EXPECT_EQ(a.raw(), b.raw())
        << "ciphertext " << index << " differs from the direct path";
}

} // namespace

TEST(WaitableClock, ManualClockLatchesSignals)
{
    ManualWaitableClock clock;
    EXPECT_EQ(clock.nowMicros(), 0u);
    // A latched signal makes the next wait return immediately even
    // though the deadline is far in the virtual future.
    clock.signal();
    EXPECT_TRUE(clock.waitUntil(kNeverUs));
    // The latch was consumed: an already-elapsed deadline now returns
    // false (deadline path, no signal).
    clock.advance(2000);
    EXPECT_EQ(clock.nowMicros(), 2000u);
    EXPECT_FALSE(clock.waitUntil(1500));
}

TEST(WaitableClock, ManualClockAdvanceWakesDeadlineWaiter)
{
    ManualWaitableClock clock;
    std::atomic<bool> woke{false};
    std::thread waiter([&] {
        clock.waitUntil(500);
        woke = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(woke.load()); // virtual time has not moved
    clock.advance(500);
    waiter.join();
    EXPECT_TRUE(woke.load());
}

TEST(WaitableClock, SteadyClockConsumesLatchedSignal)
{
    SteadyWaitableClock clock;
    clock.signal();
    EXPECT_TRUE(clock.waitUntil(kNeverUs)); // returns without sleeping
    EXPECT_FALSE(clock.waitUntil(0));       // deadline already elapsed
}

class BatchExecutorTest : public ::testing::Test
{
  protected:
    BatchExecutorTest() : keys_(fastParams(), kSeedBatchExecutor) {}

    LweCiphertext encrypt(int64_t v)
    {
        return keys_.client.encryptInt(v % int64_t(kSpace), kSpace);
    }

    TorusPolynomial shiftLut(int64_t delta) const
    {
        return makeIntTestVector(
            keys_.server.params().N, kSpace, [delta](int64_t v) {
                return (v + delta) % int64_t(kSpace);
            });
    }

    TestKeys keys_;
};

TEST_F(BatchExecutorTest, SizeTriggerSweepsAtFullWidth)
{
    BatchExecutor::Options opts;
    opts.target_batch = 4;
    opts.flush_delay_us = kNeverUs; // size trigger only
    BatchExecutor exec(opts);

    TorusPolynomial tv = shiftLut(3);
    std::vector<std::future<LweCiphertext>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(
            exec.submit(keys_.client.evalKeys(), encrypt(i), tv));

    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(keys_.client.decryptInt(futs[size_t(i)].get(), kSpace),
                  (i + 3) % int64_t(kSpace))
            << "request " << i;

    exec.drain();
    BatchExecutor::Stats st = exec.stats();
    EXPECT_EQ(st.submitted, 8u);
    EXPECT_EQ(st.completed, 8u);
    EXPECT_EQ(st.sweeps, 2u); // two full-width sweeps, nothing partial
    EXPECT_EQ(st.swept_lwes, 8u);
    EXPECT_EQ(st.size_flushes, 2u);
    EXPECT_EQ(st.deadline_flushes, 0u);
    EXPECT_EQ(st.shards, 1u);
    EXPECT_DOUBLE_EQ(st.occupancy(opts.target_batch), 1.0);
}

TEST_F(BatchExecutorTest, DeadlineTriggerFiresOnVirtualTimeOnly)
{
    auto clock = std::make_shared<ManualWaitableClock>();
    BatchExecutor::Options opts;
    opts.target_batch = 64; // never reached: deadline must flush
    opts.flush_delay_us = 500;
    BatchExecutor exec(opts, clock);

    TorusPolynomial tv = shiftLut(1);
    std::future<LweCiphertext> fut =
        exec.submit(keys_.client.evalKeys(), encrypt(5), tv);

    // Below both triggers nothing may flush, no matter how much real
    // time passes -- the executor's only clock is the manual one.
    EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(50)),
              std::future_status::timeout);
    clock->advance(499); // one microsecond short of the deadline
    EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(50)),
              std::future_status::timeout);
    EXPECT_EQ(exec.stats().sweeps, 0u);

    clock->advance(1); // now == submit time + flush_delay_us
    EXPECT_EQ(keys_.client.decryptInt(fut.get(), kSpace), 6);

    exec.drain();
    BatchExecutor::Stats st = exec.stats();
    EXPECT_EQ(st.sweeps, 1u);
    EXPECT_EQ(st.deadline_flushes, 1u);
    EXPECT_EQ(st.size_flushes, 0u);
}

TEST_F(BatchExecutorTest, ResultsBitIdenticalToDirectBatch)
{
    constexpr size_t kCount = 10;
    std::vector<LweCiphertext> cts;
    std::vector<TorusPolynomial> tvs;
    std::vector<const TorusPolynomial *> tv_ptrs;
    for (size_t i = 0; i < kCount; ++i) {
        cts.push_back(encrypt(int64_t(i)));
        tvs.push_back(shiftLut(int64_t(i % 3))); // heterogeneous LUTs
    }
    for (size_t i = 0; i < kCount; ++i)
        tv_ptrs.push_back(&tvs[i]);

    std::vector<LweCiphertext> direct = keys_.server.bootstrapBatch(
        cts.data(), tv_ptrs.data(), kCount);

    BatchExecutor::Options opts;
    opts.target_batch = 5;
    opts.flush_delay_us = kNeverUs;
    BatchExecutor exec(opts);
    std::vector<std::future<LweCiphertext>> futs;
    for (size_t i = 0; i < kCount; ++i)
        futs.push_back(
            exec.submit(keys_.client.evalKeys(), cts[i], tvs[i]));

    for (size_t i = 0; i < kCount; ++i)
        expectSameCiphertext(futs[i].get(), direct[i], i);
}

TEST_F(BatchExecutorTest, PerRequestLutBatchMatchesSingleBootstrap)
{
    // The per-request-test-vector bootstrapBatch overload the sweeps
    // run on: each slot gets its own LUT, each out[i] is bit-identical
    // to the single-call path for (cts[i], tvs[i]).
    constexpr size_t kCount = 6;
    std::vector<LweCiphertext> cts;
    std::vector<TorusPolynomial> tvs;
    std::vector<const TorusPolynomial *> tv_ptrs;
    for (size_t i = 0; i < kCount; ++i) {
        cts.push_back(encrypt(int64_t(i)));
        tvs.push_back(shiftLut(int64_t(i)));
    }
    for (size_t i = 0; i < kCount; ++i)
        tv_ptrs.push_back(&tvs[i]);

    keys_.server.setBatchThreads(3);
    std::vector<LweCiphertext> batch = keys_.server.bootstrapBatch(
        cts.data(), tv_ptrs.data(), kCount);
    ASSERT_EQ(batch.size(), kCount);
    for (size_t i = 0; i < kCount; ++i) {
        expectSameCiphertext(batch[i],
                             keys_.server.bootstrap(cts[i], tvs[i]), i);
        EXPECT_EQ(keys_.client.decryptInt(batch[i], kSpace),
                  int64_t((2 * i) % kSpace));
    }
}

TEST_F(BatchExecutorTest, CrossTenantShardsNeverCoBatch)
{
    // A second tenant with a *differently shaped* ring: if requests
    // ever co-batched across shards the sweep would mix N=512 and
    // N=256 test vectors and could not produce correct results.
    TestKeys other(midParams(), kSeedBatchExecutor + 1);

    BatchExecutor::Options opts;
    opts.target_batch = 3;
    opts.flush_delay_us = kNeverUs;
    BatchExecutor exec(opts);

    TorusPolynomial tv_a = shiftLut(1);
    TorusPolynomial tv_b = makeIntTestVector(
        other.server.params().N, kSpace,
        [](int64_t v) { return (v + 2) % int64_t(kSpace); });

    std::vector<std::future<LweCiphertext>> futs_a, futs_b;
    for (int i = 0; i < 6; ++i) { // interleaved submissions
        futs_a.push_back(
            exec.submit(keys_.client.evalKeys(), encrypt(i), tv_a));
        futs_b.push_back(exec.submit(
            other.client.evalKeys(),
            other.client.encryptInt(i % int64_t(kSpace), kSpace), tv_b));
    }

    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(keys_.client.decryptInt(futs_a[size_t(i)].get(),
                                          kSpace),
                  (i + 1) % int64_t(kSpace))
            << "tenant A request " << i;
        EXPECT_EQ(other.client.decryptInt(futs_b[size_t(i)].get(),
                                          kSpace),
                  (i + 2) % int64_t(kSpace))
            << "tenant B request " << i;
    }

    exec.drain();
    BatchExecutor::Stats st = exec.stats();
    EXPECT_EQ(st.shards, 2u);
    EXPECT_EQ(st.completed, 12u);
    EXPECT_GE(st.sweeps, 4u); // 2 tenants x ceil(6/3) -- never merged
}

TEST_F(BatchExecutorTest, ShutdownDrainsInFlightFutures)
{
    TorusPolynomial tv = shiftLut(2);
    std::vector<std::future<LweCiphertext>> futs;
    {
        BatchExecutor::Options opts;
        opts.target_batch = 100;        // size trigger unreachable
        opts.flush_delay_us = kNeverUs; // deadline unreachable
        BatchExecutor exec(opts);
        for (int i = 0; i < 5; ++i)
            futs.push_back(
                exec.submit(keys_.client.evalKeys(), encrypt(i), tv));
        exec.shutdown();
        BatchExecutor::Stats st = exec.stats();
        EXPECT_EQ(st.completed, 5u);
        EXPECT_EQ(st.drain_flushes, 1u);
        // Destructor runs here: a second (idempotent) shutdown.
    }
    for (int i = 0; i < 5; ++i) {
        ASSERT_EQ(futs[size_t(i)].wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "future " << i << " dropped by shutdown";
        EXPECT_EQ(keys_.client.decryptInt(futs[size_t(i)].get(), kSpace),
                  (i + 2) % int64_t(kSpace));
    }
}

TEST_F(BatchExecutorTest, SubmitAfterShutdownPanics)
{
    BatchExecutor exec;
    exec.shutdown();
    TorusPolynomial tv = shiftLut(0);
    EXPECT_DEATH(exec.submit(keys_.client.evalKeys(), encrypt(1), tv),
                 "after shutdown");
}

TEST_F(BatchExecutorTest, DrainOnIdleExecutorReturnsImmediately)
{
    BatchExecutor exec;
    exec.drain(); // nothing in flight: must not hang
    EXPECT_EQ(exec.stats().submitted, 0u);
}

TEST_F(BatchExecutorTest, SubmitBootstrapRoutesThroughExecutor)
{
    auto exec = std::make_shared<BatchExecutor>([] {
        BatchExecutor::Options o;
        o.target_batch = 2;
        o.flush_delay_us = kNeverUs;
        return o;
    }());

    // Two sessions over the same bundle share the executor's shard.
    ServerContext session_a(keys_.client.evalKeys());
    ServerContext session_b(keys_.client.evalKeys());
    session_a.attachExecutor(exec);
    session_b.attachExecutor(exec);
    ASSERT_EQ(session_a.executor().get(), exec.get());

    TorusPolynomial tv = shiftLut(1);
    // One submit per session: only coalescing can reach width 2.
    std::future<LweCiphertext> fa = session_a.submitBootstrap(encrypt(3), tv);
    std::future<LweCiphertext> fb =
        session_b.submitApplyLut(encrypt(4), kSpace, [](int64_t v) {
            return (v + 1) % int64_t(kSpace);
        });
    EXPECT_EQ(keys_.client.decryptInt(fa.get(), kSpace), 4);
    EXPECT_EQ(keys_.client.decryptInt(fb.get(), kSpace), 5);

    exec->drain();
    BatchExecutor::Stats st = exec->stats();
    EXPECT_EQ(st.sweeps, 1u); // both sessions' requests in one sweep
    EXPECT_EQ(st.size_flushes, 1u);
    EXPECT_EQ(st.shards, 1u);
}

TEST_F(BatchExecutorTest, SubmitWithoutExecutorRunsInline)
{
    TorusPolynomial tv = shiftLut(2);
    LweCiphertext ct = encrypt(1);
    ASSERT_EQ(keys_.server.executor(), nullptr);
    std::future<LweCiphertext> fut =
        keys_.server.submitBootstrap(ct, tv);
    // No executor: the future is ready on return, and bit-identical
    // to the synchronous call.
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    expectSameCiphertext(fut.get(), keys_.server.bootstrap(ct, tv), 0);
}

/**
 * The TSan stress: several client threads with mixed tenants hammer
 * one executor, then everything is drained and decrypted. This is the
 * shape the dispatcher's locking exists for.
 */
TEST_F(BatchExecutorTest, ConcurrentMixedTenantSubmitStress)
{
    TestKeys other(midParams(), kSeedBatchExecutor + 2);

    BatchExecutor::Options opts;
    opts.target_batch = 4;
    opts.flush_delay_us = 300; // real clock: let both triggers fire
    BatchExecutor exec(opts);

    TorusPolynomial tv_a = shiftLut(1);
    TorusPolynomial tv_b = makeIntTestVector(
        other.server.params().N, kSpace,
        [](int64_t v) { return (v + 2) % int64_t(kSpace); });

    constexpr int kThreads = 4;
    constexpr int kPerThread = 6;
    std::vector<std::future<LweCiphertext>> futs(
        size_t(kThreads) * kPerThread);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const size_t idx = size_t(t) * kPerThread + size_t(i);
                const bool tenant_a = idx % 2 == 0;
                TestKeys &k = tenant_a ? keys_ : other;
                futs[idx] = exec.submit(
                    k.client.evalKeys(),
                    k.client.encryptInt(int64_t(idx % kSpace), kSpace),
                    tenant_a ? tv_a : tv_b);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    for (size_t idx = 0; idx < futs.size(); ++idx) {
        const bool tenant_a = idx % 2 == 0;
        TestKeys &k = tenant_a ? keys_ : other;
        const int64_t shift = tenant_a ? 1 : 2;
        EXPECT_EQ(k.client.decryptInt(futs[idx].get(), kSpace),
                  int64_t((idx % kSpace + uint64_t(shift)) % kSpace))
            << "request " << idx;
    }

    exec.drain();
    BatchExecutor::Stats st = exec.stats();
    EXPECT_EQ(st.submitted, uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(st.completed, st.submitted);
    EXPECT_EQ(st.swept_lwes, st.submitted);
    EXPECT_EQ(st.shards, 2u);
}
