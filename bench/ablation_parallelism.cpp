/**
 * @file
 * Ablation: PLP and CoLP (the two parallelism levels Sec. IV-A
 * discusses but the evaluation does not tabulate), plus the NoC
 * multicast feasibility that pins CLP.
 *
 * PLP replicates the FFT/VMA instances; its availability is bounded
 * by (k+1)*lb. CoLP replicates the output-column datapaths; bounded
 * by (k+1). The sweep shows both the throughput effect and the area
 * cost, quantifying the paper's choice PLP=2, CoLP=2.
 *
 * A final measured section runs the software substrate's own
 * ciphertext-level parallelism -- ServerContext::bootstrapBatch across
 * worker counts -- so the hardware ablation sits next to what a CPU
 * actually achieves by batching whole ciphertexts.
 */

#include <cstdio>
#include <cstring>

#include "common/table.h"
#include "pbs_sweep.h"
#include "strix/accelerator.h"
#include "strix/area_model.h"
#include "strix/noc.h"
#include "tfhe/client_keyset.h"
#include "tfhe/server_context.h"

using namespace strix;

int
main(int argc, char **argv)
{
    // --smoke: trim the measured software sweep for the ctest smoke
    // run (the analytic sections are already fast).
    const bool smoke = argc > 1 && !std::strcmp(argv[1], "--smoke");
    std::printf("=== Ablation: PLP / CoLP sweep (set II: k=1, lb=3 "
                "=> PLP avail = 6, CoLP avail = 2) ===\n\n");

    const TfheParams &p = paramsSetII();
    TextTable t;
    t.header({"PLP", "CoLP", "iter II cy", "PBS/s", "core mm2",
              "PBS/s/mm2"});
    for (uint32_t plp : {1u, 2u, 3u, 6u}) {
        for (uint32_t colp : {1u, 2u}) {
            StrixConfig cfg = StrixConfig::paperDefault();
            cfg.plp = plp;
            cfg.colp = colp;
            StrixAccelerator acc(cfg);
            PbsPerf perf = acc.evaluatePbs(p);
            UnitTiming timing(cfg, p);
            ChipBreakdown area = computeChipBreakdown(cfg, p.N);
            t.row({std::to_string(plp), std::to_string(colp),
                   std::to_string(timing.iterationII()),
                   TextTable::num(perf.throughput_pbs_s, 0),
                   TextTable::num(area.core.area_mm2, 2),
                   TextTable::num(perf.throughput_pbs_s /
                                      area.core.area_mm2 / 8,
                                  0)});
        }
    }
    t.print();
    std::printf("\nPLP=2/CoLP=2 (the paper's choice) balances the "
                "FFT count against the decomposer/accumulator lanes; "
                "pushing PLP to its availability limit buys "
                "throughput sublinearly in area because the non-FFT "
                "units must widen too.\n\n");

    std::printf("=== NoC multicast feasibility vs CLP (set I) ===\n\n");
    TextTable n;
    n.header({"CLP", "bsk demand GB/s", "bsk bus GB/s", "feasible"});
    for (uint32_t clp : {2u, 4u, 8u, 16u}) {
        StrixConfig cfg = StrixConfig::paperDefault();
        cfg.clp = clp;
        NocModel noc(cfg, paramsSetI());
        MulticastPlan plan = noc.multicastPlan();
        n.row({std::to_string(clp),
               TextTable::num(plan.bsk_demand_gbps, 1),
               TextTable::num(plan.bsk_bus_gbps, 1),
               plan.feasible ? "yes" : "NO"});
    }
    n.print();
    std::printf("\nThe fixed 512-bit multicast bus is sized exactly "
                "for CLP=4; doubling CLP would overrun it -- the "
                "on-chip counterpart of Table VII's off-chip "
                "bandwidth wall.\n\n");

    std::printf("=== Measured software ciphertext-level parallelism "
                "(bootstrapBatch, set I) ===\n\n");
    ClientKeyset client(paramsSetI(), 777);
    ServerContext server(client.evalKeys());
    bool ok = runBatchPbsSweep(client, server, smoke);
    std::printf("\nSoftware CLP parallelizes across whole ciphertexts "
                "only -- the per-PBS critical path is untouched, which "
                "is exactly the limitation Strix's PLP/CoLP attack "
                "inside one bootstrap.\n");
    return ok ? 0 : 1;
}
