/**
 * @file
 * ClientKeyset implementation: keygen and secret-key operations.
 */

#include "tfhe/client_keyset.h"

#include "poly/negacyclic_fft.h"

namespace strix {

ClientKeyset::FftPrewarm::FftPrewarm(const TfheParams &p)
{
    NegacyclicFft::prewarm(p.N);
}

// See the header for the manual proof behind the analysis opt-out.
ClientKeyset::ClientKeyset(const TfheParams &params, uint64_t seed)
    STRIX_NO_THREAD_SAFETY_ANALYSIS
    : params_(params),
      fft_prewarm_(params_),
      rng_(seed),
      lwe_key_(params.n, rng_),
      glwe_key_(params.k, params.N, rng_),
      extracted_key_(glwe_key_.extractedLweKey())
{
    // Sequenced statements, not constructor arguments: every draw
    // below advances rng_, and the order (mask seeds, then BSK noise,
    // then KSK noise) pins the deterministic keygen stream for a
    // given (params, seed).
    //
    // Keys are generated on the *seeded* path: mask components come
    // from deterministic substreams rooted at two seeds drawn here,
    // so the EvalKeys bundle records them and can serialize as a
    // compressed EVK2 frame (seed + bodies, ~1/(k+1) the size; see
    // serialize.h) that re-expands bit-identically.
    const EvalKeySeeds seeds{rng_.next64(), rng_.next64()};
    BootstrappingKey bsk = BootstrappingKey::generateSeeded(
        lwe_key_, glwe_key_, params_, seeds.bsk_mask, rng_);
    KeySwitchKey ksk = KeySwitchKey::generateSeeded(
        extracted_key_, lwe_key_, params_, seeds.ksk_mask, rng_);
    eval_keys_ = std::make_shared<const EvalKeys>(
        params_, std::move(bsk), std::move(ksk), seeds);
}

LweCiphertext
ClientKeyset::encryptBit(bool bit) const
{
    MutexLock lock(rng_mutex_);
    return encryptBit(bit, rng_);
}

LweCiphertext
ClientKeyset::encryptBit(bool bit, Rng &rng) const
{
    Torus32 mu = encodeMessage(bit ? 1 : -1, 8); // +-1/8
    return lweEncrypt(lwe_key_, mu, params_.lwe_noise, rng);
}

LweCiphertext
ClientKeyset::encryptInt(int64_t m, uint64_t msg_space) const
{
    MutexLock lock(rng_mutex_);
    return encryptInt(m, msg_space, rng_);
}

LweCiphertext
ClientKeyset::encryptInt(int64_t m, uint64_t msg_space, Rng &rng) const
{
    return lweEncrypt(lwe_key_, encodeLut(m, msg_space),
                      params_.lwe_noise, rng);
}

bool
ClientKeyset::decryptBit(const LweCiphertext &ct) const
{
    Torus32 phase = lwePhase(lwe_key_, ct);
    return static_cast<int32_t>(phase) > 0;
}

int64_t
ClientKeyset::decryptInt(const LweCiphertext &ct, uint64_t msg_space) const
{
    return decodeLut(lwePhase(lwe_key_, ct), msg_space);
}

} // namespace strix
