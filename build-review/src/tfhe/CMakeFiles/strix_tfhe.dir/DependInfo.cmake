
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tfhe/bootstrap.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/bootstrap.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/bootstrap.cpp.o.d"
  "/root/repo/src/tfhe/context.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/context.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/context.cpp.o.d"
  "/root/repo/src/tfhe/decompose.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/decompose.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/decompose.cpp.o.d"
  "/root/repo/src/tfhe/decomposer_hw.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/decomposer_hw.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/decomposer_hw.cpp.o.d"
  "/root/repo/src/tfhe/gates.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/gates.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/gates.cpp.o.d"
  "/root/repo/src/tfhe/ggsw.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/ggsw.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/ggsw.cpp.o.d"
  "/root/repo/src/tfhe/glwe.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/glwe.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/glwe.cpp.o.d"
  "/root/repo/src/tfhe/integer.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/integer.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/integer.cpp.o.d"
  "/root/repo/src/tfhe/keyswitch.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/keyswitch.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/keyswitch.cpp.o.d"
  "/root/repo/src/tfhe/lwe.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/lwe.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/lwe.cpp.o.d"
  "/root/repo/src/tfhe/noise.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/noise.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/noise.cpp.o.d"
  "/root/repo/src/tfhe/params.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/params.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/params.cpp.o.d"
  "/root/repo/src/tfhe/serialize.cpp" "src/tfhe/CMakeFiles/strix_tfhe.dir/serialize.cpp.o" "gcc" "src/tfhe/CMakeFiles/strix_tfhe.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/poly/CMakeFiles/strix_poly.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/strix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
