/**
 * @file
 * Fig. 8 reproduction: functional-unit timing (Gantt trace) of the
 * first two blind-rotation iterations with three LWE ciphertexts per
 * core, parameter set I, plus per-unit utilization.
 */

#include <cstdio>

#include "common/table.h"
#include "strix/accelerator.h"

using namespace strix;

int
main()
{
    std::printf("=== Fig. 8: functional-unit timing, first two BR "
                "iterations, 3 LWE/core (set I) ===\n\n");

    StrixAccelerator strix;
    Hsc core = strix.makeCore(paramsSetI());

    GanttTrace trace = core.traceBlindRotation(2, 3);
    std::printf("%s\n", trace.render(96).c_str());
    std::printf("(digits mark which LWE each unit is processing; 'k' "
                "marks bootstrapping-key streaming)\n\n");

    const Cycle period = core.iterationCycles(3);
    std::printf("Iteration period: %llu cycles (%.0f ns at 1.2 GHz); "
                "iteration II per LWE: %llu cycles\n",
                static_cast<unsigned long long>(period),
                double(period) / 1.2,
                static_cast<unsigned long long>(
                    core.timing().iterationII()));

    HscUtilization u = core.utilization(3);
    TextTable t;
    t.header({"Unit", "utilization %", "paper"});
    t.row({"Rotator", TextTable::num(100 * u.rotator, 0), "~50%"});
    t.row({"Decomposer", TextTable::num(100 * u.decomposer, 0),
           "~100%"});
    t.row({"FFT", TextTable::num(100 * u.fft, 0), "~100%"});
    t.row({"VMA", TextTable::num(100 * u.vma, 0), "~100%"});
    t.row({"IFFT", TextTable::num(100 * u.ifft, 0), "~100%"});
    t.row({"Accumulator", TextTable::num(100 * u.accumulator, 0),
           "~100%"});
    t.row({"Local scratchpad", TextTable::num(100 * u.local_scratchpad,
                                              0),
           "~90%"});
    t.row({"HBM (bsk stream)", TextTable::num(100 * u.hbm, 0), "~60%"});
    t.print();

    std::printf("\nThe bsk for iteration i+1 streams during iteration "
                "i; with 3 LWEs per core the compute time exceeds the "
                "fetch time ('time gap to fetch the next keys'), so "
                "the pipeline is compute-bound, as in the paper.\n");
    return 0;
}
