/**
 * @file
 * GGSW / external product implementation.
 */

#include "tfhe/ggsw.h"

#include "common/logging.h"
#include "poly/simd.h"

namespace strix {

GgswCiphertext::GgswCiphertext(uint32_t k, uint32_t big_n,
                               const GadgetParams &g)
    : k_(k), big_n_(big_n), g_(g)
{
    rows_.resize(size_t(k + 1) * g.levels, GlweCiphertext(k, big_n));
}

GgswCiphertext
ggswEncrypt(const GlweKey &key, int32_t m, const GadgetParams &g,
            double stddev, Rng &rng)
{
    const uint32_t k = key.k();
    const uint32_t n = key.ringDim();
    GgswCiphertext out(k, n, g);
    for (uint32_t block = 0; block <= k; ++block) {
        for (uint32_t level = 0; level < g.levels; ++level) {
            GlweCiphertext row = glweEncryptZero(key, stddev, rng);
            // Add m * q/B^(level+1) on component `block` (constant
            // coefficient). For block < k this lands on a mask
            // polynomial; for block == k on the body.
            Torus32 scale = g.levelScale(level + 1);
            row.poly(block)[0] +=
                static_cast<uint32_t>(m) * scale;
            out.row(size_t(block) * g.levels + level) = std::move(row);
        }
    }
    return out;
}

GgswCiphertext
ggswEncryptSeeded(const GlweKey &key, int32_t m, const GadgetParams &g,
                  double stddev, const Rng &mask_root,
                  uint64_t stream_base, Rng &noise_rng)
{
    const uint32_t k = key.k();
    const uint32_t n = key.ringDim();
    GgswCiphertext out(k, n, g);
    const TorusPolynomial zero(n);
    for (uint32_t block = 0; block <= k; ++block) {
        for (uint32_t level = 0; level < g.levels; ++level) {
            Rng mask_rng = mask_root.fork(
                stream_base + uint64_t(block) * g.levels + level);
            GlweCiphertext row =
                glweEncryptSeeded(key, zero, stddev, mask_rng, noise_rng);
            const Torus32 scale = g.levelScale(level + 1);
            if (block == k) {
                row.body()[0] += static_cast<uint32_t>(m) * scale;
            } else {
                // Body form (see header): body -= m*scale*z_block,
                // exact mod-2^32 arithmetic over the binary key poly.
                const IntPolynomial &z = key.poly(block);
                for (uint32_t j = 0; j < n; ++j)
                    row.body()[j] -= static_cast<uint32_t>(m) * scale *
                                     static_cast<uint32_t>(z[j]);
            }
            out.row(size_t(block) * g.levels + level) = std::move(row);
        }
    }
    return out;
}

void
externalProduct(GlweCiphertext &out, const GgswCiphertext &ggsw,
                const GlweCiphertext &glwe)
{
    const uint32_t k = ggsw.k();
    const uint32_t n = ggsw.ringDim();
    const GadgetParams &g = ggsw.gadget();
    panicIfNot(glwe.k() == k && glwe.ringDim() == n,
               "externalProduct: shape mismatch");

    out = GlweCiphertext(k, n);
    std::vector<IntPolynomial> digits;
    TorusPolynomial prod(n);
    for (uint32_t comp = 0; comp <= k; ++comp) {
        gadgetDecomposePoly(digits, glwe.poly(comp), g);
        for (uint32_t level = 0; level < g.levels; ++level) {
            const GlweCiphertext &row =
                ggsw.row(size_t(comp) * g.levels + level);
            for (uint32_t c = 0; c <= k; ++c) {
                negacyclicMulKaratsuba(prod, digits[level], row.poly(c));
                out.poly(c).addAssign(prod);
            }
        }
    }
}

GgswFft::GgswFft(const GgswCiphertext &ggsw)
    : k_(ggsw.k()), big_n_(ggsw.ringDim()), g_(ggsw.gadget())
{
    const auto &eng = NegacyclicFft::get(big_n_);
    const uint32_t nrows = ggsw.rows();
    rows_.resize(size_t(nrows) * (k_ + 1));
    for (uint32_t r = 0; r < nrows; ++r)
        for (uint32_t c = 0; c <= k_; ++c)
            eng.forward(rows_[size_t(r) * (k_ + 1) + c],
                        ggsw.row(r).poly(c));
}

GgswFft
GgswFft::fromRawRows(uint32_t k, uint32_t big_n, const GadgetParams &g,
                     std::vector<FreqPolynomial> rows)
{
    const size_t expect_rows =
        size_t(k + 1) * g.levels * (size_t(k) + 1);
    panicIfNot(rows.size() == expect_rows,
               "GgswFft::fromRawRows: row count mismatch");
    for (const FreqPolynomial &row : rows)
        panicIfNot(row.size() == size_t(big_n) / 2,
                   "GgswFft::fromRawRows: row size mismatch");
    GgswFft out;
    out.k_ = k;
    out.big_n_ = big_n;
    out.g_ = g;
    out.rows_ = std::move(rows);
    return out;
}

void
GgswFft::externalProduct(GlweCiphertext &out, const GlweCiphertext &glwe,
                         PbsScratch &scratch) const
{
    panicIfNot(glwe.k() == k_ && glwe.ringDim() == big_n_,
               "externalProduct(fft): shape mismatch");
    const auto &eng = NegacyclicFft::get(big_n_);
    const PolyKernels &kernels = activeKernels();

    // Decompose every component (Decomposer unit) into one contiguous
    // digit matrix, transform all (k+1)*l digits in a single batched
    // FFT sweep (FFT unit -- Strix streams the whole decomposition of
    // a batch through the transform as one schedule, not digit by
    // digit), multiply-accumulate against bsk rows (VMA unit),
    // inverse-transform each output column (IFFT unit).
    const size_t nrows = (size_t(k_) + 1) * g_.levels;
    const size_t m = size_t(big_n_) / 2;
    std::vector<int32_t> &coeffs = scratch.digit_coeffs;
    std::vector<Cplx> &fdigits = scratch.fdigits;
    std::vector<FreqPolynomial> &acc = scratch.acc;
    coeffs.resize(nrows * big_n_);
    fdigits.resize(nrows * m);
    if (acc.size() != size_t(k_) + 1)
        acc.resize(size_t(k_) + 1);
    for (auto &col : acc)
        col.assign(m, Cplx(0, 0));

    for (uint32_t comp = 0; comp <= k_; ++comp)
        gadgetDecomposePolyInto(
            coeffs.data() + size_t(comp) * g_.levels * big_n_,
            glwe.poly(comp), g_);
    eng.forwardBatch(fdigits.data(), coeffs.data(), nrows, kernels);
    for (size_t r = 0; r < nrows; ++r) {
        const Cplx *fdigit = fdigits.data() + r * m;
        for (uint32_t c = 0; c <= k_; ++c)
            kernels.mulAccumulate(acc[c].data(), fdigit,
                                  row(r, c).data(), m);
    }

    if (out.k() != k_ || out.ringDim() != big_n_)
        out = GlweCiphertext(k_, big_n_);
    for (uint32_t c = 0; c <= k_; ++c)
        eng.inverse(out.poly(c), acc[c], kernels);
}

void
GgswFft::externalProductPerPoly(GlweCiphertext &out,
                                const GlweCiphertext &glwe,
                                PbsScratch &scratch) const
{
    panicIfNot(glwe.k() == k_ && glwe.ringDim() == big_n_,
               "externalProduct(fft): shape mismatch");
    const auto &eng = NegacyclicFft::get(big_n_);

    // One transform per digit: the pre-fusion dataflow, kept as the
    // reference the batched path must match bit for bit.
    std::vector<IntPolynomial> &digits = scratch.digits;
    std::vector<FreqPolynomial> &acc = scratch.acc;
    FreqPolynomial &fdigit = scratch.fdigit;
    if (acc.size() != size_t(k_) + 1)
        acc.resize(size_t(k_) + 1);
    for (auto &col : acc)
        col.assign(big_n_ / 2, Cplx(0, 0));
    for (uint32_t comp = 0; comp <= k_; ++comp) {
        gadgetDecomposePoly(digits, glwe.poly(comp), g_);
        for (uint32_t level = 0; level < g_.levels; ++level) {
            eng.forward(fdigit, digits[level]);
            size_t r = size_t(comp) * g_.levels + level;
            for (uint32_t c = 0; c <= k_; ++c)
                NegacyclicFft::mulAccumulate(acc[c], fdigit, row(r, c));
        }
    }

    if (out.k() != k_ || out.ringDim() != big_n_)
        out = GlweCiphertext(k_, big_n_);
    for (uint32_t c = 0; c <= k_; ++c)
        eng.inverse(out.poly(c), acc[c]);
}

void
GgswFft::externalProduct(GlweCiphertext &out, const GlweCiphertext &glwe) const
{
    PbsScratch scratch;
    externalProduct(out, glwe, scratch);
}

void
GgswFft::cmuxRotate(GlweCiphertext &acc, uint32_t power,
                    PbsScratch &scratch) const
{
    // diff = X^power * acc - acc (Rotator unit: rotate and subtract)
    GlweCiphertext &diff = scratch.diff;
    if (diff.k() != k_ || diff.ringDim() != big_n_)
        diff = GlweCiphertext(k_, big_n_);
    for (uint32_t c = 0; c <= k_; ++c)
        negacyclicRotateMinusOne(diff.poly(c), acc.poly(c), power);
    // acc += ggsw [*] diff
    externalProduct(scratch.prod, diff, scratch);
    acc.addAssign(scratch.prod);
}

void
GgswFft::cmuxRotate(GlweCiphertext &acc, uint32_t power) const
{
    PbsScratch scratch;
    cmuxRotate(acc, power, scratch);
}

} // namespace strix
