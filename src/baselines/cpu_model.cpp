/**
 * @file
 * CPU model implementation.
 */

#include "baselines/cpu_model.h"

#include <cmath>

namespace strix {

double
CpuModel::pbsLatencyMs(const TfheParams &p) const
{
    // Anchor: Concrete on Xeon Platinum, set I (n=500, N=1024): 14 ms.
    // Cost model: n blind-rotation iterations, each dominated by
    // (k+1)*lb forward + (k+1) inverse FFTs of N points plus O(N)
    // work => latency ~ n * transforms * N*log2(N).
    constexpr double kAnchorMs = 14.0;
    constexpr double kAnchorN = 500.0;
    constexpr double kAnchorBigN = 1024.0;
    constexpr double kAnchorTransforms = 6.0; // (k+1)*lb + (k+1), set I

    double transforms = double(p.k + 1) * p.l_bsk + (p.k + 1);
    double fft_cost = double(p.N) * std::log2(double(p.N)) /
                      (kAnchorBigN * std::log2(kAnchorBigN));
    // FFTs share twiddle/input loads, so the marginal cost of extra
    // decomposition levels is sub-linear (exponent fit to Concrete's
    // sets II/III), and large working sets fall out of cache (fit to
    // set IV). With these two fitted exponents the model lands within
    // 11% of all four published Concrete rows.
    double transform_scale =
        std::sqrt(transforms / kAnchorTransforms);
    double cache_penalty =
        p.N > 4096 ? std::pow(double(p.N) / 4096.0, 0.32) : 1.0;
    return kAnchorMs * (double(p.n) / kAnchorN) * transform_scale *
           fft_cost * cache_penalty;
}

double
CpuModel::runBatchSeconds(const TfheParams &p, uint64_t num_lwes) const
{
    // Each worker bootstraps one message at a time; no packing.
    uint64_t rounds = (num_lwes + threads_ - 1) / threads_;
    return double(rounds) * pbsLatencyMs(p) / 1000.0;
}

double
CpuModel::runGraphSeconds(const TfheParams &p, const WorkloadGraph &g) const
{
    // Layers are barriers; linear MACs run at ~1 GMAC/s/thread and
    // are negligible next to PBS but accounted for completeness.
    double seconds = 0.0;
    for (const auto &layer : g.layers()) {
        seconds += runBatchSeconds(p, layer.pbs_count);
        seconds += double(layer.linear_macs) / (1e9 * threads_);
    }
    return seconds;
}

} // namespace strix
