file(REMOVE_RECURSE
  "libstrix_baselines.a"
)
