/**
 * @file
 * Homomorphic Streaming Core (HSC) model: the six-stage PBS cluster
 * pipeline plus the keyswitch cluster (Sec. IV-B), with a trace mode
 * that reproduces the Fig. 8 functional-unit timing diagram.
 */

#ifndef STRIX_STRIX_HSC_H
#define STRIX_STRIX_HSC_H

#include "sim/timeline.h"
#include "strix/functional_units.h"
#include "strix/memory_system.h"

namespace strix {

/** Utilization summary of one HSC over a steady-state window. */
struct HscUtilization
{
    double rotator;
    double decomposer;
    double fft;
    double vma;
    double ifft;
    double accumulator;
    double local_scratchpad;
    double hbm;
};

/**
 * One Strix core. All timing is derived from the UnitTiming closed
 * forms; the trace mode lays the per-LWE busy intervals onto
 * timelines to visualize pipelining and compute utilizations.
 */
class Hsc
{
  public:
    Hsc(const StrixConfig &cfg, const TfheParams &p)
        : cfg_(cfg), params_(p), timing_(cfg, p), mem_(cfg, p)
    {
    }

    const UnitTiming &timing() const { return timing_; }
    const MemorySystem &memory() const { return mem_; }

    /**
     * Cycles of one blind-rotation iteration when @p batch LWEs
     * stream through the PBS cluster: compute time or the bsk fetch
     * for the next iteration, whichever dominates (Fig. 8's "time gap
     * to fetch the next keys").
     */
    Cycle iterationCycles(uint32_t batch) const
    {
        return std::max<Cycle>(Cycle(batch) * timing_.iterationII(),
                               mem_.bskFetchCycles());
    }

    /** Full blind rotation (all iterations) for @p batch LWEs. */
    Cycle blindRotationCycles(uint32_t batch) const
    {
        return timing_.iterations() * iterationCycles(batch) +
               timing_.drainCycles();
    }

    /** Whether the core is memory-bound at this batch size. */
    bool memoryBound(uint32_t batch) const
    {
        return mem_.bskFetchCycles() >
               Cycle(batch) * timing_.iterationII();
    }

    /**
     * Build the Fig. 8 trace: @p iterations blind-rotation iterations
     * with @p batch LWEs per core. Rows: the five functional units
     * (FFT and IFFT separately), local scratchpad, HBM.
     */
    GanttTrace traceBlindRotation(uint32_t iterations,
                                  uint32_t batch) const;

    /** Per-unit utilization over the traced steady-state window. */
    HscUtilization utilization(uint32_t batch) const;

  private:
    StrixConfig cfg_;
    TfheParams params_;
    UnitTiming timing_;
    MemorySystem mem_;
};

} // namespace strix

#endif // STRIX_STRIX_HSC_H
