// Fixture: a server root that (illegally) pulls in the secret keys.
// test_lint.py asserts strix_lint rejects this with an include chain.
#ifndef FIXTURE_TFHE_BOOTSTRAP_H
#define FIXTURE_TFHE_BOOTSTRAP_H

#include "tfhe/client_keyset.h"

namespace strix {
inline int bootstrapWithSecrets(const ClientKeyset &)
{
    return 0;
}
} // namespace strix

#endif
