/**
 * @file
 * POSIX TCP primitives implementation.
 *
 * Error taxonomy: transient kernel-buffer conditions surface as
 * WouldBlock, orderly shutdown as Eof, and everything else as Error;
 * EINTR never escapes. Writes use send(MSG_NOSIGNAL) so a peer reset
 * is an Error return, not a process-killing SIGPIPE.
 */

#include "net/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace strix {

namespace {

bool
setFdNonBlocking(int fd, bool on)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return ::fcntl(fd, F_SETFL, want) == 0;
}

bool
setFdNoDelay(int fd, bool on)
{
    const int v = on ? 1 : 0;
    return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &v,
                        sizeof(v)) == 0;
}

} // namespace

// --- TcpConn ---------------------------------------------------------

TcpConn &
TcpConn::operator=(TcpConn &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
TcpConn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
TcpConn::setNonBlocking(bool on)
{
    return valid() && setFdNonBlocking(fd_, on);
}

bool
TcpConn::setNoDelay(bool on)
{
    return valid() && setFdNoDelay(fd_, on);
}

TcpConn::IoResult
TcpConn::readSome(void *buf, size_t cap, size_t &got)
{
    got = 0;
    if (!valid())
        return IoResult::Error;
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, cap, 0);
        if (n > 0) {
            got = static_cast<size_t>(n);
            return IoResult::Ok;
        }
        if (n == 0)
            return IoResult::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoResult::WouldBlock;
        return IoResult::Error;
    }
}

TcpConn::IoResult
TcpConn::writeSome(const void *buf, size_t len, size_t &put)
{
    put = 0;
    if (!valid())
        return IoResult::Error;
    if (len == 0)
        return IoResult::Ok;
    for (;;) {
        const ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
        if (n >= 0) {
            put = static_cast<size_t>(n);
            return IoResult::Ok;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoResult::WouldBlock;
        return IoResult::Error;
    }
}

bool
TcpConn::readFull(void *buf, size_t len)
{
    auto *p = static_cast<unsigned char *>(buf);
    size_t off = 0;
    while (off < len) {
        size_t got = 0;
        switch (readSome(p + off, len - off, got)) {
        case IoResult::Ok:
            off += got;
            break;
        case IoResult::WouldBlock: {
            // Blocking-mode sockets should not get here, but a caller
            // may hand us a non-blocking fd: wait for readability.
            struct pollfd pfd = {fd_, POLLIN, 0};
            (void)::poll(&pfd, 1, -1);
            break;
        }
        default:
            return false;
        }
    }
    return true;
}

bool
TcpConn::writeFull(const void *buf, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(buf);
    size_t off = 0;
    while (off < len) {
        size_t put = 0;
        switch (writeSome(p + off, len - off, put)) {
        case IoResult::Ok:
            off += put;
            break;
        case IoResult::WouldBlock: {
            struct pollfd pfd = {fd_, POLLOUT, 0};
            (void)::poll(&pfd, 1, -1);
            break;
        }
        default:
            return false;
        }
    }
    return true;
}

TcpConn
TcpConn::connect(const std::string &host, uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return TcpConn();
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return TcpConn();
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        ::close(fd);
        return TcpConn();
    }
    setFdNoDelay(fd, true);
    return TcpConn(fd);
}

TcpConn
TcpConn::connectLoopback(uint16_t port)
{
    return connect("127.0.0.1", port);
}

// --- TcpListener -----------------------------------------------------

TcpListener &
TcpListener::operator=(TcpListener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        other.fd_ = -1;
        other.port_ = 0;
    }
    return *this;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        port_ = 0;
    }
}

TcpListener
TcpListener::listenLoopback(uint16_t port, int backlog)
{
    TcpListener l;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return l;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, backlog) != 0 || !setFdNonBlocking(fd, true)) {
        ::close(fd);
        return l;
    }
    // Resolve the kernel-assigned port for port-0 binds.
    struct sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&bound),
                      &blen) != 0) {
        ::close(fd);
        return l;
    }
    l.fd_ = fd;
    l.port_ = ntohs(bound.sin_port);
    return l;
}

TcpConn
TcpListener::accept()
{
    if (!valid())
        return TcpConn();
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            setFdNonBlocking(fd, true);
            setFdNoDelay(fd, true);
            return TcpConn(fd);
        }
        if (errno == EINTR)
            continue;
        return TcpConn(); // EAGAIN (none pending) or a transient error
    }
}

// --- Poller ----------------------------------------------------------

void
Poller::clear()
{
    slots_.clear();
}

void
Poller::add(int fd, bool want_read, bool want_write)
{
    struct pollfd p;
    p.fd = fd;
    p.events = 0;
    p.revents = 0;
    if (want_read)
        p.events |= POLLIN;
    if (want_write)
        p.events |= POLLOUT;
    slots_.push_back(p);
}

int
Poller::wait(int timeout_ms)
{
    if (slots_.empty())
        return 0;
    for (;;) {
        const int n = ::poll(slots_.data(), slots_.size(), timeout_ms);
        if (n >= 0)
            return n;
        if (errno != EINTR)
            return 0;
    }
}

const struct pollfd *
Poller::find(int fd) const
{
    for (const struct pollfd &s : slots_)
        if (s.fd == fd)
            return &s;
    return nullptr;
}

bool
Poller::readable(int fd) const
{
    const struct pollfd *s = find(fd);
    return s != nullptr && (s->revents & (POLLIN | POLLHUP)) != 0;
}

bool
Poller::writable(int fd) const
{
    const struct pollfd *s = find(fd);
    return s != nullptr && (s->revents & POLLOUT) != 0;
}

bool
Poller::errored(int fd) const
{
    const struct pollfd *s = find(fd);
    return s != nullptr &&
           (s->revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
}

} // namespace strix
