#!/usr/bin/env python3
"""Architecture linter: layering DAG + secret-isolation rule.

Three invariants are enforced over the include graph of src/ (and,
with --repo, the tests/, examples/ and bench/ trees):

1. Layering. The libraries form a strict DAG (see src/CMakeLists.txt):

       common -> poly -> tfhe -> {strix, workloads, baselines}
       common -> sim  -> strix
       common -> net  -> server <- {tfhe, workloads}

   A file in layer L may only include headers from the layers L is
   allowed to depend on. An upward or sideways include (poly including
   tfhe/, common including anything, net/ including tfhe/ -- the wire
   layer moves opaque bytes and must stay below the crypto) is a
   violation.

2. Secret isolation. `tfhe/client_keyset.h` holds the secret keys.
   Server-side translation units -- server_context, batch_executor,
   eval_keys, gates, bootstrap, everything under net/ and server/
   (the serving daemon), every tools/ TU when --repo is given, and
   everything those transitively include -- must not include it, and
   must not name `ClientKeyset`. In particular the daemon must not
   include the key-owning tfhe/context_cache.h facade: its include of
   the secret header makes the closure walk fail with the chain.
   Client-facing facades that legitimately bridge the two halves are
   listed in an explicit allowlist; the allowlist itself is checked
   for freshness (an entry that no longer includes client_keyset.h is
   stale and fails the run, so the list cannot rot into fiction).

3. Facade deprecation. `tfhe/context.h` is the deprecated combined
   client+server facade; the split types replaced it. No TU anywhere
   in the repo may include it except the allowlisted facade-coverage
   test (tests/test_gates.cpp keeps the deprecated surface compiling
   until removal). Scanning the non-src trees requires --repo.

Optionally cross-checks TU coverage against a compile_commands.json:
a compiled source under src/ the linter did not scan is an error (the
lint surface silently shrank); a scanned .cpp missing from the build
is only a warning (config-dependent sources like simd_avx2.cpp).

Exit status: 0 clean, 1 violations found, 2 bad invocation/input.
"""

import argparse
import json
import os
import re
import sys
from collections import deque

# Layer -> layers it may include from (itself always allowed).
LAYER_DEPS = {
    "common": set(),
    "net": {"common"},
    "poly": {"common"},
    "sim": {"common"},
    "tfhe": {"common", "poly"},
    "strix": {"common", "poly", "sim", "tfhe"},
    "workloads": {"common", "poly", "sim", "strix", "tfhe"},
    "baselines": {"common", "poly", "sim", "strix", "tfhe"},
    "server": {"common", "net", "poly", "sim", "strix", "tfhe",
               "workloads"},
}

SECRET_HEADER = "tfhe/client_keyset.h"

# Modules owning the secret header: its own implementation files.
SECRET_OWNERS = {"tfhe/client_keyset.h", "tfhe/client_keyset.cpp"}

# Client-facing facades audited to hold/route secret keys on purpose.
# Kept deliberately small; tools/lint/test_lint.py asserts staleness
# detection, and rule [allowlist-stale] fails the run if an entry
# stops including the secret header.
DEFAULT_ALLOWLIST = [
    "tfhe/context.h",        # legacy combined client+server facade
    "tfhe/context_cache.h",  # keygen-amortizing cache (key-owning side)
    "tfhe/integer.h",        # client-side integer encrypt/decrypt API
    "workloads/circuit_client.h",  # encrypt-eval-decrypt wrapper
]

# The deprecated combined facade and the one TU allowed to keep
# including it: the facade-coverage test that proves the deprecated
# surface still compiles and behaves until its removal. The facade
# header itself (it lives in the scanned src tree) is exempt too.
DEPRECATED_HEADER = "tfhe/context.h"
DEPRECATED_ALLOWLIST = {
    "tfhe/context.h",         # the facade's own header
    "tests/test_gates.cpp",   # facade-coverage test (pragma-suppressed)
}

# Repo-root trees scanned (in addition to --src) when --repo is given.
REPO_TREES = ["tests", "examples", "bench"]

# Server-side roots: the pure-evaluation surface. Their transitive
# include closure is the "server side" for rules [secret-include] and
# [secret-name].
SERVER_ROOTS = [
    "tfhe/server_context",
    "tfhe/batch_executor",
    "tfhe/eval_keys",
    "tfhe/gates",
    "tfhe/bootstrap",
]

# Whole directories that are server-side in their entirety: every TU
# of the wire layer and the serving daemon (plus, when --repo merges
# them in, the tools/ binaries) is a closure root.
SERVER_ROOT_DIRS = ("net", "server", "tools")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def strip_comments_and_strings(text):
    """Remove //, /* */ comments and string/char literals."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j  # keep the newline
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            # preserve line count inside the comment
            seg = text[i:] if j < 0 else text[i : j + 2]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def scan_tree(src_root):
    """Map repo-relative path -> [(line_no, included_rel_path)]."""
    files = {}
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if not name.endswith((".h", ".cpp", ".hpp", ".cc")):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, src_root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as f:
                text = f.read()
            includes = []
            for line_no, line in enumerate(text.splitlines(), 1):
                m = INCLUDE_RE.match(line)
                if m:
                    includes.append((line_no, m.group(1)))
            files[rel] = {"includes": includes, "text": text}
    return files


def layer_of(rel):
    return rel.split("/", 1)[0] if "/" in rel else None


def check_layering(files):
    violations = []
    for rel in sorted(files):
        layer = layer_of(rel)
        if layer not in LAYER_DEPS:
            continue
        allowed = LAYER_DEPS[layer] | {layer}
        for line_no, inc in files[rel]["includes"]:
            if inc not in files:
                continue  # system/third-party header
            inc_layer = layer_of(inc)
            if inc_layer in LAYER_DEPS and inc_layer not in allowed:
                violations.append(
                    f"{rel}:{line_no}: [layering] {layer}/ may not "
                    f"include {inc_layer}/ (got \"{inc}\"); allowed: "
                    f"{', '.join(sorted(allowed))}"
                )
    return violations


def server_closure(files):
    """BFS the include graph from the server roots.

    Returns {reached_file: (parent, line_no)} for chain printing;
    roots map to (None, 0).
    """
    queue = deque()
    seen = {}
    roots = []
    for root in SERVER_ROOTS:
        for ext in (".h", ".cpp"):
            roots.append(root + ext)
    roots += [rel for rel in sorted(files)
              if layer_of(rel) in SERVER_ROOT_DIRS]
    for rel in roots:
        if rel in files and rel not in seen:
            seen[rel] = (None, 0)
            queue.append(rel)
    while queue:
        cur = queue.popleft()
        for line_no, inc in files[cur]["includes"]:
            if inc in files and inc not in seen:
                seen[inc] = (cur, line_no)
                queue.append(inc)
    return seen


def include_chain(closure, target):
    """Render the root -> ... -> target chain with file:line hops."""
    hops = []
    cur = target
    while cur is not None:
        parent, line = closure[cur]
        hops.append((cur, parent, line))
        cur = parent
    hops.reverse()
    lines = [f"    {hops[0][0]} (server root)"]
    for rel, parent, line in hops[1:]:
        lines.append(f"    -> {rel} (included at {parent}:{line})")
    return "\n".join(lines)


def check_secret_isolation(files, allowlist):
    violations = []
    allowed_direct = set(allowlist) | SECRET_OWNERS

    # Rule [secret-direct]: only audited facades include the header.
    for rel in sorted(files):
        for line_no, inc in files[rel]["includes"]:
            if inc == SECRET_HEADER and rel not in allowed_direct:
                violations.append(
                    f"{rel}:{line_no}: [secret-direct] includes "
                    f"{SECRET_HEADER} but is not on the audited "
                    f"allowlist (tools/lint/strix_lint.py)"
                )

    # Rule [secret-include]: the server closure never reaches it.
    closure = server_closure(files)
    if SECRET_HEADER in closure:
        parent, line = closure[SECRET_HEADER]
        violations.append(
            f"{parent}:{line}: [secret-include] server-side closure "
            f"reaches {SECRET_HEADER}; include chain:\n"
            + include_chain(closure, SECRET_HEADER)
        )

    # Rule [secret-name]: no server-side TU names the secret type,
    # even without the include (forward declarations, reinterpret
    # tricks). Comments and strings are stripped first.
    name_re = re.compile(r"\bClientKeyset\b")
    for rel in sorted(closure):
        if rel in SECRET_OWNERS or rel in allowed_direct:
            continue
        code = strip_comments_and_strings(files[rel]["text"])
        for line_no, line in enumerate(code.splitlines(), 1):
            if name_re.search(line):
                violations.append(
                    f"{rel}:{line_no}: [secret-name] server-side TU "
                    f"names ClientKeyset"
                )

    # Rule [allowlist-stale]: every allowlist entry still earns its
    # place by directly including the secret header.
    for entry in allowlist:
        if entry not in files:
            violations.append(
                f"{entry}:0: [allowlist-stale] allowlisted file does "
                f"not exist"
            )
            continue
        direct = {inc for _, inc in files[entry]["includes"]}
        if SECRET_HEADER not in direct:
            violations.append(
                f"{entry}:0: [allowlist-stale] allowlisted but no "
                f"longer includes {SECRET_HEADER}; remove it from the "
                f"allowlist"
            )
    return violations


def check_deprecated_context(files):
    """Rule [deprecated-context] over src + (optionally) repo trees.

    @p files maps scan-relative paths (src files keep their src-
    relative names, repo files are prefixed tests/, examples/,
    bench/) to their include lists.
    """
    violations = []
    for rel in sorted(files):
        if rel in DEPRECATED_ALLOWLIST:
            continue
        for line_no, inc in files[rel]["includes"]:
            if inc == DEPRECATED_HEADER:
                violations.append(
                    f"{rel}:{line_no}: [deprecated-context] includes "
                    f"{DEPRECATED_HEADER} (deprecated combined "
                    f"facade); use ClientKeyset + ServerContext (see "
                    f"README migration table)"
                )
    # Freshness, mirroring [allowlist-stale]: the facade-coverage
    # test earns its exemption by still including the header.
    for entry in sorted(DEPRECATED_ALLOWLIST - {DEPRECATED_HEADER}):
        if entry not in files:
            continue  # tree not scanned this run
        direct = {inc for _, inc in files[entry]["includes"]}
        if DEPRECATED_HEADER not in direct:
            violations.append(
                f"{entry}:0: [deprecated-context] allowlisted but no "
                f"longer includes {DEPRECATED_HEADER}; remove it from "
                f"DEPRECATED_ALLOWLIST"
            )
    return violations


def check_compile_commands(files, cc_path, src_root):
    """Cross-check TU coverage. Returns (violations, warnings)."""
    try:
        with open(cc_path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        print(f"strix_lint: cannot read {cc_path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    src_abs = os.path.abspath(src_root)
    compiled = set()
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if path.startswith(src_abs + os.sep):
            rel = os.path.relpath(path, src_abs).replace(os.sep, "/")
            compiled.add(rel)
    violations = []
    for rel in sorted(compiled - set(files)):
        violations.append(
            f"{rel}:0: [coverage] compiled (per {cc_path}) but not "
            f"scanned by the linter -- lint surface out of sync"
        )
    warnings = []
    scanned_cpp = {r for r in files if r.endswith((".cpp", ".cc"))}
    for rel in sorted(scanned_cpp - compiled):
        warnings.append(
            f"note: {rel} scanned but absent from {cc_path} "
            f"(config-dependent source?)"
        )
    return violations, warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--src", default="src",
                    help="source root to scan (default: src)")
    ap.add_argument("--repo", default=None,
                    help="repo root; additionally scans its tests/, "
                         "examples/ and bench/ trees for the "
                         "[deprecated-context] rule")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for TU coverage check")
    ap.add_argument("--allowlist", default=None,
                    help="comma-separated override of the audited "
                         "secret-header allowlist (empty string: no "
                         "facade may include it)")
    args = ap.parse_args()

    if not os.path.isdir(args.src):
        print(f"strix_lint: no such directory: {args.src}",
              file=sys.stderr)
        return 2

    if args.allowlist is None:
        allowlist = DEFAULT_ALLOWLIST
    else:
        allowlist = [a for a in args.allowlist.split(",") if a]

    files = scan_tree(args.src)
    src_files = dict(files)  # for the compile-commands cross-check
    # With --repo, the daemon binaries under tools/ join the layering
    # and secret checks as server-side closure roots: a tool that
    # touched secret-key headers would ship key material in an
    # evaluation-only binary.
    if args.repo:
        tools_root = os.path.join(args.repo, "tools")
        if os.path.isdir(tools_root):
            for rel, info in scan_tree(tools_root).items():
                files[f"tools/{rel}"] = info
    violations = check_layering(files)
    violations += check_secret_isolation(files, allowlist)

    # [deprecated-context] spans src and, with --repo, the non-src
    # TU trees; those extra trees deliberately stay out of the
    # layering/secret checks (tests may hold secret keys).
    all_files = dict(files)
    if args.repo:
        for tree in REPO_TREES:
            tree_root = os.path.join(args.repo, tree)
            if not os.path.isdir(tree_root):
                continue
            for rel, info in scan_tree(tree_root).items():
                # Lint fixtures are linter *inputs*, not TUs.
                if tree == "tests" and rel.startswith("lint/fixtures/"):
                    continue
                all_files[f"{tree}/{rel}"] = info
    violations += check_deprecated_context(all_files)
    if args.compile_commands:
        cc_violations, warnings = check_compile_commands(
            src_files, args.compile_commands, args.src)
        violations += cc_violations
        for w in warnings:
            print(w)

    if violations:
        for v in violations:
            print(v)
        print(f"strix_lint: {len(violations)} violation(s) in "
              f"{len(files)} files")
        return 1
    print(f"strix_lint: OK ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
