file(REMOVE_RECURSE
  "CMakeFiles/strix_test_support.dir/support/test_util.cpp.o"
  "CMakeFiles/strix_test_support.dir/support/test_util.cpp.o.d"
  "libstrix_test_support.a"
  "libstrix_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strix_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
