/**
 * @file
 * Radix-2 decimation-in-time FFT implementation.
 */

#include "poly/complex_fft.h"

#include <cmath>

#include "common/logging.h"
#include "poly/plan_cache.h"

namespace strix {

FftPlan::FftPlan(size_t m) : m_(m)
{
    panicIfNot(m >= 2 && (m & (m - 1)) == 0, "FFT size must be 2^k >= 2");

    bit_reverse_.resize(m);
    size_t log_m = 0;
    while ((size_t{1} << log_m) < m)
        ++log_m;
    for (size_t i = 0; i < m; ++i) {
        size_t r = 0;
        for (size_t b = 0; b < log_m; ++b)
            if (i & (size_t{1} << b))
                r |= size_t{1} << (log_m - 1 - b);
        bit_reverse_[i] = r;
    }

    twiddles_.resize(m / 2);
    for (size_t j = 0; j < m / 2; ++j) {
        double ang = 2.0 * M_PI * static_cast<double>(j) /
                     static_cast<double>(m);
        twiddles_[j] = Cplx(std::cos(ang), std::sin(ang));
    }
}

void
FftPlan::transform(Cplx *data, bool positive_exponent) const
{
    // Bit-reversal permutation.
    for (size_t i = 0; i < m_; ++i) {
        size_t j = bit_reverse_[i];
        if (i < j)
            std::swap(data[i], data[j]);
    }

    // log2(M) butterfly stages, mirroring the hardware BFU stages.
    for (size_t len = 2; len <= m_; len <<= 1) {
        size_t half = len >> 1;
        size_t stride = m_ / len;
        for (size_t base = 0; base < m_; base += len) {
            for (size_t j = 0; j < half; ++j) {
                Cplx w = twiddles_[j * stride];
                if (!positive_exponent)
                    w = std::conj(w);
                Cplx u = data[base + j];
                Cplx v = data[base + j + half] * w;
                data[base + j] = u + v;
                data[base + j + half] = u - v;
            }
        }
    }
}

void
FftPlan::forward(Cplx *data) const
{
    transform(data, true);
}

void
FftPlan::inverse(Cplx *data) const
{
    transform(data, false);
    const double inv = 1.0 / static_cast<double>(m_);
    for (size_t i = 0; i < m_; ++i)
        data[i] *= inv;
}

namespace {

detail::Log2PlanCache<FftPlan> g_plan_cache;

} // namespace

const FftPlan &
FftPlan::get(size_t m)
{
    panicIfNot(m >= 2 && (m & (m - 1)) == 0, "FFT size must be 2^k >= 2");
    return g_plan_cache.get(m);
}

void
FftPlan::prewarm(size_t m)
{
    get(m);
}

} // namespace strix
