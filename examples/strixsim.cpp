/**
 * @file
 * strixsim: command-line driver for the Strix simulator.
 *
 * Usage:
 *   strixsim [--set I|II|III|IV] [--tvlp N] [--clp N] [--plp N]
 *            [--colp N] [--no-fold] [--unroll] [--hbm GBPS]
 *            [--lwes COUNT] [--trace]
 *
 * Prints the PBS microbenchmark (latency / throughput / bandwidth /
 * batch sizes), the area/power estimate, and optionally the epoch
 * schedule for a batch of COUNT ciphertexts.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.h"
#include "strix/accelerator.h"
#include "strix/area_model.h"
#include "strix/noc.h"
#include "strix/scheduler.h"

using namespace strix;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: strixsim [--set I|II|III|IV] [--tvlp N] [--clp N]\n"
        "                [--plp N] [--colp N] [--no-fold] [--unroll]\n"
        "                [--hbm GBPS] [--lwes COUNT] [--trace]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    StrixConfig cfg = StrixConfig::paperDefault();
    const TfheParams *params = &paramsSetI();
    uint64_t lwes = 0;
    bool trace = false;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage();
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--set")) {
            const char *name = need("--set");
            params = nullptr;
            for (const auto &p : paperParamSets())
                if (p.name == name)
                    params = &p;
            if (!params) {
                std::fprintf(stderr, "unknown parameter set %s\n", name);
                usage();
            }
        } else if (!std::strcmp(argv[i], "--tvlp")) {
            cfg.tvlp = std::atoi(need("--tvlp"));
        } else if (!std::strcmp(argv[i], "--clp")) {
            cfg.clp = std::atoi(need("--clp"));
        } else if (!std::strcmp(argv[i], "--plp")) {
            cfg.plp = std::atoi(need("--plp"));
        } else if (!std::strcmp(argv[i], "--colp")) {
            cfg.colp = std::atoi(need("--colp"));
        } else if (!std::strcmp(argv[i], "--hbm")) {
            cfg.hbm_gbps = std::atof(need("--hbm"));
        } else if (!std::strcmp(argv[i], "--lwes")) {
            lwes = std::strtoull(need("--lwes"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--no-fold")) {
            cfg.folding = false;
        } else if (!std::strcmp(argv[i], "--unroll")) {
            cfg.key_unrolling = true;
        } else if (!std::strcmp(argv[i], "--trace")) {
            trace = true;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            usage();
        }
    }

    std::printf("Strix configuration: TvLP=%u CLP=%u PLP=%u CoLP=%u "
                "fold=%s unroll=%s HBM=%.0f GB/s, parameter set %s\n\n",
                cfg.tvlp, cfg.clp, cfg.plp, cfg.colp,
                cfg.folding ? "yes" : "no",
                cfg.key_unrolling ? "yes" : "no", cfg.hbm_gbps,
                params->name.c_str());

    StrixAccelerator acc(cfg);
    PbsPerf perf = acc.evaluatePbs(*params);
    UnitTiming timing(cfg, *params);
    ChipBreakdown area = computeChipBreakdown(cfg);
    NocModel noc(cfg, *params);

    TextTable t;
    t.header({"metric", "value"});
    t.row({"PBS latency (ms)", TextTable::num(perf.latency_ms, 3)});
    t.row({"PBS throughput (PBS/s)",
           TextTable::num(perf.throughput_pbs_s, 0)});
    t.row({"blind-rotation iterations",
           std::to_string(timing.iterations())});
    t.row({"iteration II (cycles)",
           std::to_string(timing.iterationII())});
    t.row({"core batch m", std::to_string(perf.core_batch)});
    t.row({"epoch batch", std::to_string(perf.device_batch)});
    t.row({"required bandwidth (GB/s)",
           TextTable::num(perf.required_bw_gbps, 0)});
    t.row({"bound", perf.memory_bound ? "memory" : "compute"});
    t.row({"chip area (mm2)", TextTable::num(area.total.area_mm2, 1)});
    t.row({"chip power (W)", TextTable::num(area.total.power_w, 1)});
    t.row({"NoC multicast feasible",
           noc.multicastPlan().feasible ? "yes" : "NO"});
    t.row({"global scratchpad fits",
           noc.scratchpadPlan().fits ? "yes" : "NO"});
    t.print();

    if (lwes > 0) {
        BatchPerf bp = acc.runBatch(*params, lwes);
        std::printf("\nBatch of %llu LWEs: %.3f ms over %llu epochs "
                    "(%.0f PBS/s sustained)\n",
                    static_cast<unsigned long long>(lwes),
                    bp.seconds * 1e3,
                    static_cast<unsigned long long>(bp.epochs),
                    double(lwes) / bp.seconds);
        if (trace) {
            EpochScheduler sched(cfg);
            auto epochs = sched.schedule(*params, lwes);
            std::printf("\n%s",
                        EpochScheduler::toTrace(epochs).render(96)
                            .c_str());
        }
    }
    return 0;
}
