/**
 * @file
 * Circuit netlist implementation and standard cells.
 */

#include "workloads/circuit.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "workloads/circuit_analysis.h"

namespace strix {

Wire
Circuit::input(const std::string &)
{
    nodes_.push_back({GateOp::Input});
    inputs_.push_back(static_cast<Wire>(nodes_.size() - 1));
    return inputs_.back();
}

Wire
Circuit::constant(bool value)
{
    Node n{GateOp::Const};
    n.const_value = value;
    nodes_.push_back(n);
    return static_cast<Wire>(nodes_.size() - 1);
}

Wire
Circuit::gate(GateOp op, Wire a, Wire b)
{
    panicIfNot(op != GateOp::Input && op != GateOp::Const &&
                   op != GateOp::Not && op != GateOp::Mux,
               "gate(): use the dedicated builders");
    panicIfNot(a < nodes_.size() && b < nodes_.size(),
               "gate(): operand out of range");
    nodes_.push_back({op, a, b});
    return static_cast<Wire>(nodes_.size() - 1);
}

Wire
Circuit::notGate(Wire a)
{
    panicIfNot(a < nodes_.size(), "notGate(): operand out of range");
    nodes_.push_back({GateOp::Not, a});
    return static_cast<Wire>(nodes_.size() - 1);
}

Wire
Circuit::mux(Wire sel, Wire hi, Wire lo)
{
    panicIfNot(sel < nodes_.size() && hi < nodes_.size() &&
                   lo < nodes_.size(),
               "mux(): operand out of range");
    nodes_.push_back({GateOp::Mux, sel, hi, lo});
    return static_cast<Wire>(nodes_.size() - 1);
}

void
Circuit::output(Wire w, const std::string &)
{
    panicIfNot(w < nodes_.size(), "output(): wire out of range");
    outputs_.push_back(w);
}

uint64_t
Circuit::pbsCount() const
{
    uint64_t count = 0;
    for (const auto &n : nodes_) {
        switch (n.op) {
          case GateOp::Input:
          case GateOp::Const:
          case GateOp::Not:
            break;
          case GateOp::Mux:
            count += 2;
            break;
          default:
            count += 1;
        }
    }
    return count;
}

std::vector<uint32_t>
Circuit::levels() const
{
    return CircuitAnalyzer::naiveLevels(*this);
}

uint32_t
Circuit::depth() const
{
    auto lvl = levels();
    uint32_t d = 0;
    for (size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].op != GateOp::Input && nodes_[i].op != GateOp::Const)
            d = std::max(d, lvl[i]);
    return d;
}

std::vector<bool>
Circuit::evalPlain(const std::vector<bool> &inputs) const
{
    panicIfNot(inputs.size() == inputs_.size(),
               "evalPlain: wrong input count");
    std::vector<bool> val(nodes_.size(), false);
    size_t next_input = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        switch (n.op) {
          case GateOp::Input: val[i] = inputs[next_input++]; break;
          case GateOp::Const: val[i] = n.const_value; break;
          case GateOp::And: val[i] = val[n.a] && val[n.b]; break;
          case GateOp::Or: val[i] = val[n.a] || val[n.b]; break;
          case GateOp::Xor: val[i] = val[n.a] != val[n.b]; break;
          case GateOp::Nand: val[i] = !(val[n.a] && val[n.b]); break;
          case GateOp::Nor: val[i] = !(val[n.a] || val[n.b]); break;
          case GateOp::Xnor: val[i] = val[n.a] == val[n.b]; break;
          case GateOp::AndNY: val[i] = !val[n.a] && val[n.b]; break;
          case GateOp::AndYN: val[i] = val[n.a] && !val[n.b]; break;
          case GateOp::Not: val[i] = !val[n.a]; break;
          case GateOp::Mux:
            val[i] = val[n.a] ? val[n.b] : val[n.c];
            break;
        }
    }
    std::vector<bool> out;
    out.reserve(outputs_.size());
    for (Wire w : outputs_)
        out.push_back(val[w]);
    return out;
}

std::vector<LweCiphertext>
Circuit::evalEncrypted(const ServerContext &server,
                       const std::vector<LweCiphertext> &inputs) const
{
    panicIfNot(inputs.size() == inputs_.size(),
               "evalEncrypted: wrong input count");
    const Torus32 mu = encodeMessage(1, 8);
    std::vector<LweCiphertext> val(nodes_.size());
    size_t next_input = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        switch (n.op) {
          case GateOp::Input:
            val[i] = inputs[next_input++];
            break;
          case GateOp::Const:
            val[i] = LweCiphertext::trivial(
                server.params().n, n.const_value ? mu : 0u - mu);
            break;
          case GateOp::And:
            val[i] = gateAnd(server, val[n.a], val[n.b]);
            break;
          case GateOp::Or:
            val[i] = gateOr(server, val[n.a], val[n.b]);
            break;
          case GateOp::Xor:
            val[i] = gateXor(server, val[n.a], val[n.b]);
            break;
          case GateOp::Nand:
            val[i] = gateNand(server, val[n.a], val[n.b]);
            break;
          case GateOp::Nor:
            val[i] = gateNor(server, val[n.a], val[n.b]);
            break;
          case GateOp::Xnor:
            val[i] = gateXnor(server, val[n.a], val[n.b]);
            break;
          case GateOp::AndNY:
            val[i] = gateAndNY(server, val[n.a], val[n.b]);
            break;
          case GateOp::AndYN:
            val[i] = gateAndYN(server, val[n.a], val[n.b]);
            break;
          case GateOp::Not: val[i] = gateNot(val[n.a]); break;
          case GateOp::Mux:
            val[i] = gateMux(server, val[n.a], val[n.b], val[n.c]);
            break;
        }
    }
    std::vector<LweCiphertext> out;
    out.reserve(outputs_.size());
    for (Wire w : outputs_)
        out.push_back(val[w]);
    return out;
}

WorkloadGraph
Circuit::toWorkloadGraph() const
{
    WorkloadGraph g(name_);
    auto lvl = levels();
    std::map<uint32_t, uint64_t> pbs_per_level;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        switch (nodes_[i].op) {
          case GateOp::Input:
          case GateOp::Const:
          case GateOp::Not:
            break;
          case GateOp::Mux:
            pbs_per_level[lvl[i]] += 2;
            break;
          default:
            pbs_per_level[lvl[i]] += 1;
        }
    }
    for (const auto &[level, pbs] : pbs_per_level) {
        g.addLayer({"level-" + std::to_string(level), pbs,
                    /*linear_macs=*/pbs * 2});
    }
    return g;
}

Circuit
buildAdder(uint32_t bits)
{
    Circuit c("adder" + std::to_string(bits));
    std::vector<Wire> a(bits), b(bits);
    for (uint32_t i = 0; i < bits; ++i)
        a[i] = c.input("a" + std::to_string(i));
    for (uint32_t i = 0; i < bits; ++i)
        b[i] = c.input("b" + std::to_string(i));

    Wire carry = 0;
    bool have_carry = false;
    for (uint32_t i = 0; i < bits; ++i) {
        Wire axb = c.gate(GateOp::Xor, a[i], b[i]);
        Wire sum = have_carry ? c.gate(GateOp::Xor, axb, carry) : axb;
        Wire gen = c.gate(GateOp::And, a[i], b[i]);
        Wire prop =
            have_carry ? c.gate(GateOp::And, axb, carry) : Wire{0};
        carry = have_carry ? c.gate(GateOp::Or, gen, prop) : gen;
        have_carry = true;
        c.output(sum, "s" + std::to_string(i));
    }
    c.output(carry, "cout");
    return c;
}

Circuit
buildEqualityComparator(uint32_t bits)
{
    Circuit c("eq" + std::to_string(bits));
    std::vector<Wire> a(bits), b(bits);
    for (uint32_t i = 0; i < bits; ++i)
        a[i] = c.input();
    for (uint32_t i = 0; i < bits; ++i)
        b[i] = c.input();
    Wire acc = c.gate(GateOp::Xnor, a[0], b[0]);
    for (uint32_t i = 1; i < bits; ++i) {
        Wire eq = c.gate(GateOp::Xnor, a[i], b[i]);
        acc = c.gate(GateOp::And, acc, eq);
    }
    c.output(acc, "eq");
    return c;
}

Circuit
buildLessThan(uint32_t bits)
{
    Circuit c("lt" + std::to_string(bits));
    std::vector<Wire> a(bits), b(bits);
    for (uint32_t i = 0; i < bits; ++i)
        a[i] = c.input();
    for (uint32_t i = 0; i < bits; ++i)
        b[i] = c.input();
    // From LSB upward: lt_i = (b_i & !a_i) | (eq_i & lt_{i-1}).
    Wire lt = c.gate(GateOp::AndNY, a[0], b[0]);
    for (uint32_t i = 1; i < bits; ++i) {
        Wire bi_gt = c.gate(GateOp::AndNY, a[i], b[i]);
        Wire eq = c.gate(GateOp::Xnor, a[i], b[i]);
        Wire keep = c.gate(GateOp::And, eq, lt);
        lt = c.gate(GateOp::Or, bi_gt, keep);
    }
    c.output(lt, "lt");
    return c;
}

Circuit
buildMultiplier(uint32_t bits)
{
    Circuit c("mul" + std::to_string(bits));
    std::vector<Wire> a(bits), b(bits);
    for (uint32_t i = 0; i < bits; ++i)
        a[i] = c.input();
    for (uint32_t i = 0; i < bits; ++i)
        b[i] = c.input();

    // Shift-add: acc (2*bits wires) accumulates a * b_j << j.
    std::vector<Wire> acc(2 * bits, c.constant(false));
    for (uint32_t j = 0; j < bits; ++j) {
        // Partial product row.
        std::vector<Wire> pp(2 * bits, c.constant(false));
        for (uint32_t i = 0; i < bits; ++i)
            pp[i + j] = c.gate(GateOp::And, a[i], b[j]);
        // Ripple-add row into acc.
        Wire carry = c.constant(false);
        for (uint32_t k = j; k < 2 * bits; ++k) {
            Wire axb = c.gate(GateOp::Xor, acc[k], pp[k]);
            Wire sum = c.gate(GateOp::Xor, axb, carry);
            Wire gen = c.gate(GateOp::And, acc[k], pp[k]);
            Wire prop = c.gate(GateOp::And, axb, carry);
            carry = c.gate(GateOp::Or, gen, prop);
            acc[k] = sum;
        }
    }
    for (uint32_t k = 0; k < 2 * bits; ++k)
        c.output(acc[k], "p" + std::to_string(k));
    return c;
}

} // namespace strix
