/**
 * @file
 * ThreadPool implementation.
 */

#include "common/parallel.h"

#include <cctype>
#include <cstdlib>

#include "common/logging.h"

namespace strix {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(m_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("STRIX_THREADS")) {
        // strtoul accepts a leading minus and wraps the negated value
        // into unsigned range ("-1" -> ULONG_MAX, and a large negative
        // can wrap back *inside* [1, 4096] on its way through 2^64),
        // so a sign must be rejected before parsing, not after.
        const char *num = env;
        while (std::isspace(static_cast<unsigned char>(*num)))
            ++num;
        char *end = nullptr;
        unsigned long v = 0;
        if (*num != '-')
            v = std::strtoul(num, &end, 10);
        if (end != num && end != nullptr && *end == '\0' && v >= 1 &&
            v <= 4096)
            return static_cast<unsigned>(v);
        warn("ignoring invalid STRIX_THREADS value '" +
             std::string(env) + "'");
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
}

void
ThreadPool::runShare(const std::function<void(size_t, unsigned)> &fn,
                     size_t count, unsigned worker)
{
    size_t i;
    while (!abort_.load(std::memory_order_relaxed) &&
           (i = next_.fetch_add(1, std::memory_order_relaxed)) < count) {
        try {
            fn(i, worker);
        } catch (...) {
            abort_.store(true, std::memory_order_relaxed);
            MutexLock lock(m_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop(unsigned worker)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(size_t, unsigned)> *fn = nullptr;
        size_t count = 0;
        {
            MutexLock lock(m_);
            cv_.wait(lock, [&] {
                m_.assertHeld(); // the wait runs its predicate locked
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            fn = fn_;
            count = count_;
        }
        runShare(*fn, count, worker);
        {
            MutexLock lock(m_);
            if (--busy_ == 0)
                done_cv_.notify_one();
        }
    }
}

void
ThreadPool::parallelFor(size_t count,
                        const std::function<void(size_t, unsigned)> &fn)
{
    if (count == 0)
        return;
    MutexLock submit(submit_mutex_);
    const bool serial = workers_.empty() || count == 1;
    if (serial) {
        // The inline fallback runs through the same runShare machinery
        // as the parallel path so the error contract cannot diverge: a
        // throwing fn stops the index handout, the first exception is
        // recorded, and it is rethrown below -- byte-for-byte what a
        // caller observes at N workers.
        next_.store(0, std::memory_order_relaxed);
        abort_.store(false, std::memory_order_relaxed);
        runShare(fn, count, 0);
    } else {
        {
            MutexLock lock(m_);
            fn_ = &fn;
            count_ = count;
            next_.store(0, std::memory_order_relaxed);
            abort_.store(false, std::memory_order_relaxed);
            busy_ = static_cast<unsigned>(workers_.size());
            ++generation_;
        }
        cv_.notify_all();
        runShare(fn, count, 0);
    }

    MutexLock lock(m_);
    if (!serial) {
        done_cv_.wait(lock, [&] {
            m_.assertHeld(); // the wait runs its predicate locked
            return busy_ == 0;
        });
        fn_ = nullptr;
    }
    if (first_error_) {
        std::exception_ptr e = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(e);
    }
}

} // namespace strix
