/**
 * @file
 * Busy-interval timelines for functional-unit activity, used to build
 * the Fig. 8 Gantt trace and utilization statistics.
 */

#ifndef STRIX_SIM_TIMELINE_H
#define STRIX_SIM_TIMELINE_H

#include <deque>
#include <string>
#include <vector>

#include "common/types.h"

namespace strix {

/** One busy interval of a unit: [start, end) cycles, with a label. */
struct BusyInterval
{
    Cycle start;
    Cycle end;
    std::string label; //!< e.g. "LWE-1"

    Cycle length() const { return end - start; }
};

/**
 * Records the busy intervals of one hardware unit and answers
 * utilization queries. Intervals may be recorded out of order; they
 * are sorted on demand.
 */
class UnitTimeline
{
  public:
    explicit UnitTimeline(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Record a busy interval. */
    void record(Cycle start, Cycle end, std::string label = "");

    const std::vector<BusyInterval> &intervals() const { return ivals_; }

    /** Total busy cycles within [from, to), clipping intervals. */
    Cycle busyCycles(Cycle from, Cycle to) const;

    /** Utilization in [0,1] over the window [from, to). */
    double utilization(Cycle from, Cycle to) const;

    /** True if some pair of recorded intervals overlaps. */
    bool hasOverlap() const;

    /** Latest end cycle over all intervals (0 if empty). */
    Cycle endCycle() const;

  private:
    std::string name_;
    std::vector<BusyInterval> ivals_;
};

/**
 * A group of unit timelines (one per functional unit of a core, plus
 * memory/HBM rows) with an ASCII Gantt renderer approximating the
 * paper's Fig. 8.
 */
class GanttTrace
{
  public:
    /**
     * Add (or fetch) a named row. References stay valid as more rows
     * are added (deque storage).
     */
    UnitTimeline &row(const std::string &name);

    const std::deque<UnitTimeline> &rows() const { return rows_; }

    /** Latest end cycle over all rows. */
    Cycle endCycle() const;

    /**
     * Render an ASCII Gantt chart: one line per row, @p width columns
     * spanning [0, endCycle()). Busy cells print the first letter of
     * the interval label ('#' if unlabeled).
     */
    std::string render(size_t width = 100) const;

  private:
    std::deque<UnitTimeline> rows_;
};

} // namespace strix

#endif // STRIX_SIM_TIMELINE_H
