/**
 * @file
 * NuFHE-like GPU baseline model (Sec. III).
 *
 * Device-level batching only: all SMs execute the same blind-rotation
 * iteration on different ciphertexts, so the blind-rotation kernel
 * time is flat up to #SM ciphertexts and doubles at every multiple
 * (BR fragmentation, Eqs. (1)-(2)). Core-level batching on a GPU does
 * not help: the per-iteration time grows linearly with LWEs per SM
 * (Fig. 2, right), which is exactly what this model exposes.
 */

#ifndef STRIX_BASELINES_GPU_MODEL_H
#define STRIX_BASELINES_GPU_MODEL_H

#include "strix/graph.h"
#include "tfhe/params.h"

namespace strix {

/** Analytic NuFHE/Titan-RTX model. */
class GpuModel
{
  public:
    /**
     * @param num_sm  streaming multiprocessors (Titan RTX: 72)
     * @param nn_kernel_efficiency  speedup NuFHE's fused NN kernels
     *        achieve over back-to-back PBS launches (keyswitch and
     *        linear kernels overlap the blind rotation of the next
     *        fragment). Calibrated so the Deep-NN runs land in the
     *        paper's reported 8-17x Strix advantage; 1.0 disables
     *        fusion and is what the microbenchmarks use implicitly
     *        (runBatchSeconds is not scaled).
     */
    explicit GpuModel(uint32_t num_sm = 72,
                      double nn_kernel_efficiency = 4.4)
        : num_sm_(num_sm), nn_eff_(nn_kernel_efficiency)
    {
    }

    uint32_t numSm() const { return num_sm_; }

    /**
     * Blind-rotation kernel time for one full device batch
     * (<= num_sm ciphertexts), i.e. "BR time per core" in Eq. (1).
     * Anchored at NuFHE's published set-I batch time; parameter sets
     * with lb > 2 fall off the fused kernel path and execute the
     * blind rotation as sequential FFT kernel launches, which NuFHE's
     * published set-II row shows to be ~3.2x slower per iteration.
     */
    double epochMs(const TfheParams &p) const;

    /**
     * Single-PBS latency. For the fused-kernel path this is one
     * (underfilled) device batch. On the sequential-FFT path
     * (lb > 2) a single ciphertext cannot spread its FFT kernel
     * launches across SMs, so latency degrades far beyond the batch
     * time -- NuFHE's published set-II row (700 ms latency vs 144 ms
     * batch time) calibrates the 4.87x penalty.
     */
    double pbsLatencyMs(const TfheParams &p) const
    {
        double ms = epochMs(p) * 1.028; // launch overhead (set I: 37)
        if (p.l_bsk > 2)
            ms *= 4.87;
        return ms;
    }

    /** Sustained throughput with full device batches. */
    double throughputPbsPerSec(const TfheParams &p) const
    {
        return double(num_sm_) / (epochMs(p) / 1000.0);
    }

    /** Number of BR fragmentations for @p num_lwes (Eq. (2)). */
    uint64_t fragmentations(uint64_t num_lwes) const
    {
        if (num_lwes == 0)
            return 0;
        return (num_lwes + num_sm_ - 1) / num_sm_ - 1;
    }

    /** Total time for a batch of independent PBS (Eq. (1)). */
    double runBatchSeconds(const TfheParams &p, uint64_t num_lwes) const
    {
        return double(fragmentations(num_lwes) + 1) * epochMs(p) / 1000.0;
    }

    /**
     * Emulate core-level batching on the GPU: assigning @p per_core
     * LWEs to every SM stretches each blind-rotation iteration
     * linearly, so the total time does not improve (Fig. 2, right).
     */
    double coreLevelBatchSeconds(const TfheParams &p,
                                 uint32_t per_core) const
    {
        return double(per_core) * epochMs(p) / 1000.0;
    }

    /** Layered workload execution (layer barriers, NN kernel fusion). */
    double runGraphSeconds(const TfheParams &p,
                           const WorkloadGraph &g) const;

  private:
    uint32_t num_sm_;
    double nn_eff_;
};

} // namespace strix

#endif // STRIX_BASELINES_GPU_MODEL_H
