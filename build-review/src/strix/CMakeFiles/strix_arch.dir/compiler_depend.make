# Empty compiler generated dependencies file for strix_arch.
# This may be replaced when dependencies are built.
