file(REMOVE_RECURSE
  "libstrix_test_support.a"
)
