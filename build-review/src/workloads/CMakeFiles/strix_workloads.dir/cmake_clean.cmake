file(REMOVE_RECURSE
  "CMakeFiles/strix_workloads.dir/circuit.cpp.o"
  "CMakeFiles/strix_workloads.dir/circuit.cpp.o.d"
  "CMakeFiles/strix_workloads.dir/decision_tree.cpp.o"
  "CMakeFiles/strix_workloads.dir/decision_tree.cpp.o.d"
  "CMakeFiles/strix_workloads.dir/deepnn.cpp.o"
  "CMakeFiles/strix_workloads.dir/deepnn.cpp.o.d"
  "libstrix_workloads.a"
  "libstrix_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strix_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
