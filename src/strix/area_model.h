/**
 * @file
 * Parametric area/power model calibrated to the paper's TSMC-28nm
 * synthesis results (Table III) at the shipped design point
 * (TvLP=8, CLP=4, PLP=2, CoLP=2, folded 8192-point FFT, 1.2 GHz).
 *
 * The model scales each unit with its lane count and the FFT with its
 * point count, so the Table VI folding ablation (FFT 1.73x, core
 * 1.48x) is *derived* from the same constants rather than hard-coded.
 */

#ifndef STRIX_STRIX_AREA_MODEL_H
#define STRIX_STRIX_AREA_MODEL_H

#include "strix/config.h"

namespace strix {

/** Area (mm^2) and power (W) of one component. */
struct AreaPower
{
    double area_mm2 = 0.0;
    double power_w = 0.0;

    AreaPower operator+(const AreaPower &o) const
    {
        return {area_mm2 + o.area_mm2, power_w + o.power_w};
    }
    AreaPower operator*(double s) const
    {
        return {area_mm2 * s, power_w * s};
    }
};

/** Full chip breakdown in the layout of Table III. */
struct ChipBreakdown
{
    AreaPower local_scratchpad;
    AreaPower rotator;
    AreaPower decomposer;
    AreaPower ifftu; //!< all FFT+IFFT instances of one core
    AreaPower vma;
    AreaPower accumulator;
    AreaPower core;      //!< one HSC
    AreaPower all_cores; //!< TvLP HSCs
    AreaPower noc;
    AreaPower global_scratchpad;
    AreaPower hbm_phy;
    AreaPower total;

    /** Area of a single (I)FFT instance (Table VI's "FFT Unit Area"). */
    double fft_instance_mm2 = 0.0;
};

/**
 * Compute the chip breakdown for a configuration.
 *
 * @param cfg   parallelism configuration (folding matters!)
 * @param max_n largest supported polynomial degree (FFT sizing);
 *              the paper sizes for N = 16384
 */
ChipBreakdown computeChipBreakdown(const StrixConfig &cfg,
                                   uint32_t max_n = 16384);

} // namespace strix

#endif // STRIX_STRIX_AREA_MODEL_H
