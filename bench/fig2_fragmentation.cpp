/**
 * @file
 * Fig. 2 reproduction: blind-rotation kernel time on a 72-SM GPU.
 *
 * Left plot:  normalized execution time vs #LWE, showing the
 *             device-level batching staircase (BR fragmentation at
 *             every multiple of 72).
 * Right plot: normalized execution time vs LWE-per-core, showing that
 *             core-level batching on a GPU scales time linearly (no
 *             win) -- the motivation for Strix's specialized cores.
 */

#include <cstdio>

#include "baselines/gpu_model.h"
#include "common/table.h"

using namespace strix;

int
main()
{
    std::printf("=== Fig. 2: GPU blind-rotation fragmentation "
                "(NuFHE model, Titan RTX 72 SMs, parameter set I) "
                "===\n\n");

    GpuModel gpu(72);
    const TfheParams &p = paramsSetI();
    const double t1 = gpu.runBatchSeconds(p, 1);

    std::printf("-- Device-level batching: execution time vs number "
                "of LWEs --\n");
    TextTable dev;
    dev.header({"# LWE", "BR fragmentations", "normalized time"});
    for (uint64_t lwes :
         {1, 36, 72, 73, 108, 144, 145, 216, 217, 288}) {
        dev.row({std::to_string(lwes),
                 std::to_string(gpu.fragmentations(lwes)),
                 TextTable::num(gpu.runBatchSeconds(p, lwes) / t1, 2)});
    }
    dev.print();
    std::printf("Paper: flat at 1x for 1-72 LWEs, stepping to 2x/3x/4x "
                "at 73/145/217 (Eq. (1)-(2)).\n\n");

    std::printf("-- Core-level batching on the GPU: time vs LWE per "
                "core --\n");
    TextTable core;
    core.header({"LWE/core", "normalized time"});
    for (uint32_t c : {1u, 2u, 3u}) {
        core.row({std::to_string(c),
                  TextTable::num(gpu.coreLevelBatchSeconds(p, c) / t1,
                                 2)});
    }
    core.print();
    std::printf("Paper: linear growth 1x/2x/3x -- GPUs gain nothing "
                "from core-level batching, motivating the HSC's fully "
                "pipelined datapath.\n");
    return 0;
}
