/**
 * @file
 * GLWE implementation.
 */

#include "tfhe/glwe.h"

#include "common/logging.h"

namespace strix {

GlweKey::GlweKey(uint32_t k, uint32_t big_n, Rng &rng)
{
    polys_.resize(k, IntPolynomial(big_n));
    for (auto &p : polys_)
        for (size_t i = 0; i < big_n; ++i)
            p[i] = rng.uniformBit();
}

LweKey
GlweKey::extractedLweKey() const
{
    std::vector<int32_t> bits;
    bits.reserve(size_t(k()) * ringDim());
    for (const auto &p : polys_)
        for (size_t i = 0; i < p.size(); ++i)
            bits.push_back(p[i]);
    return LweKey(std::move(bits));
}

GlweCiphertext::GlweCiphertext(uint32_t k, uint32_t big_n)
{
    polys_.resize(k + 1, TorusPolynomial(big_n));
}

void
GlweCiphertext::clear()
{
    for (auto &p : polys_)
        p.clear();
}

void
GlweCiphertext::addAssign(const GlweCiphertext &other)
{
    panicIfNot(polys_.size() == other.polys_.size(), "GLWE k mismatch");
    for (size_t i = 0; i < polys_.size(); ++i)
        polys_[i].addAssign(other.polys_[i]);
}

void
GlweCiphertext::subAssign(const GlweCiphertext &other)
{
    panicIfNot(polys_.size() == other.polys_.size(), "GLWE k mismatch");
    for (size_t i = 0; i < polys_.size(); ++i)
        polys_[i].subAssign(other.polys_[i]);
}

GlweCiphertext
GlweCiphertext::trivial(uint32_t k, const TorusPolynomial &mu)
{
    GlweCiphertext ct(k, static_cast<uint32_t>(mu.size()));
    ct.body() = mu;
    return ct;
}

GlweCiphertext
glweEncrypt(const GlweKey &key, const TorusPolynomial &mu, double stddev,
            Rng &rng)
{
    const uint32_t k = key.k();
    const uint32_t n = key.ringDim();
    panicIfNot(mu.size() == n, "glweEncrypt: message size mismatch");

    GlweCiphertext ct(k, n);
    TorusPolynomial prod(n);
    for (uint32_t i = 0; i < k; ++i) {
        for (uint32_t j = 0; j < n; ++j)
            ct.poly(i)[j] = rng.uniformTorus32();
        // body += A_i * z_i. Karatsuba over int64 is exact (keys are
        // binary), which keeps zero-noise encryptions exactly
        // decryptable -- the FFT path would add rounding noise here.
        negacyclicMulKaratsuba(prod, key.poly(i), ct.poly(i));
        ct.body().addAssign(prod);
    }
    for (uint32_t j = 0; j < n; ++j)
        ct.body()[j] += mu[j] + rng.gaussianTorus32(stddev);
    return ct;
}

GlweCiphertext
glweEncryptZero(const GlweKey &key, double stddev, Rng &rng)
{
    TorusPolynomial zero(key.ringDim());
    return glweEncrypt(key, zero, stddev, rng);
}

void
glweFillMask(GlweCiphertext &ct, Rng &mask_rng)
{
    const uint32_t k = ct.k();
    const uint32_t n = ct.ringDim();
    for (uint32_t i = 0; i < k; ++i)
        for (uint32_t j = 0; j < n; ++j)
            ct.poly(i)[j] = mask_rng.uniformTorus32();
}

GlweCiphertext
glweEncryptSeeded(const GlweKey &key, const TorusPolynomial &mu,
                  double stddev, Rng &mask_rng, Rng &noise_rng)
{
    const uint32_t k = key.k();
    const uint32_t n = key.ringDim();
    panicIfNot(mu.size() == n, "glweEncryptSeeded: message size mismatch");

    GlweCiphertext ct(k, n);
    glweFillMask(ct, mask_rng);
    TorusPolynomial prod(n);
    for (uint32_t i = 0; i < k; ++i) {
        // Exact Karatsuba for the same reason as glweEncrypt: the
        // zero-noise algebraic tests must decrypt exactly.
        negacyclicMulKaratsuba(prod, key.poly(i), ct.poly(i));
        ct.body().addAssign(prod);
    }
    for (uint32_t j = 0; j < n; ++j)
        ct.body()[j] += mu[j] + noise_rng.gaussianTorus32(stddev);
    return ct;
}

TorusPolynomial
glwePhase(const GlweKey &key, const GlweCiphertext &ct)
{
    panicIfNot(key.k() == ct.k() && key.ringDim() == ct.ringDim(),
               "glwePhase: key/ct mismatch");
    TorusPolynomial phase = ct.body();
    TorusPolynomial acc(key.ringDim());
    for (uint32_t i = 0; i < key.k(); ++i) {
        negacyclicMulKaratsuba(acc, key.poly(i), ct.poly(i));
        phase.subAssign(acc);
    }
    return phase;
}

LweCiphertext
sampleExtract(const GlweCiphertext &ct, size_t index)
{
    const uint32_t k = ct.k();
    const uint32_t n = ct.ringDim();
    panicIfNot(index < n, "sampleExtract: index out of range");

    LweCiphertext out(k * n);
    // Coefficient p of A_i * z_i equals
    //   sum_{j<=p} A_i[p-j] z_i[j] - sum_{j>p} A_i[N+p-j] z_i[j],
    // so the extracted mask holds A_i[p-j] for j <= p and the negated
    // wrapped coefficients beyond.
    for (uint32_t i = 0; i < k; ++i) {
        const TorusPolynomial &a = ct.poly(i);
        for (size_t j = 0; j <= index; ++j)
            out.a(size_t(i) * n + j) = a[index - j];
        for (size_t j = index + 1; j < n; ++j)
            out.a(size_t(i) * n + j) = 0u - a[n + index - j];
    }
    out.b() = ct.body()[index];
    return out;
}

} // namespace strix
