// Fixture: server-root TU whose closure reaches client_keyset.h.
#include "tfhe/bootstrap.h"
