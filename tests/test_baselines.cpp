/**
 * @file
 * CPU/GPU baseline model tests against the published Table V rows and
 * the Fig. 2 fragmentation behaviour.
 */

#include <gtest/gtest.h>

#include "baselines/cpu_model.h"
#include "baselines/gpu_model.h"
#include "baselines/reference_platforms.h"

namespace strix {
namespace {

::testing::AssertionResult
within(double got, double want, double tol)
{
    double rel = std::abs(got / want - 1.0);
    if (rel <= tol)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "got " << got << ", want " << want << " (rel " << rel
           << ")";
}

TEST(CpuModel, AnchorsToConcreteSetI)
{
    CpuModel cpu;
    EXPECT_DOUBLE_EQ(cpu.pbsLatencyMs(paramsSetI()), 14.0);
    EXPECT_NEAR(cpu.throughputPbsPerSec(paramsSetI()), 70.0, 2.0);
}

TEST(CpuModel, TracksPublishedConcreteRows)
{
    CpuModel cpu;
    EXPECT_TRUE(within(cpu.pbsLatencyMs(paramsSetII()), 19.0, 0.15));
    EXPECT_TRUE(within(cpu.pbsLatencyMs(paramsSetIII()), 38.0, 0.15));
    EXPECT_TRUE(within(cpu.pbsLatencyMs(paramsSetIV()), 969.0, 0.15));
}

TEST(CpuModel, BatchRoundsByThreads)
{
    CpuModel cpu(8);
    const TfheParams &p = paramsSetI();
    double one = cpu.runBatchSeconds(p, 1);
    double eight = cpu.runBatchSeconds(p, 8);
    double nine = cpu.runBatchSeconds(p, 9);
    EXPECT_DOUBLE_EQ(one, eight);  // underfilled round
    EXPECT_NEAR(nine, 2 * one, 1e-12);
}

TEST(GpuModel, AnchorsToNuFheSetI)
{
    GpuModel gpu;
    EXPECT_TRUE(within(gpu.pbsLatencyMs(paramsSetI()), 37.0, 0.05));
    EXPECT_TRUE(within(gpu.throughputPbsPerSec(paramsSetI()), 2000.0,
                       0.05));
}

TEST(GpuModel, SetIIFallsOffTheFusedKernel)
{
    // NuFHE set II: 700 ms / 500 PBS/s (sequential FFT path).
    GpuModel gpu;
    EXPECT_TRUE(within(gpu.throughputPbsPerSec(paramsSetII()), 500.0,
                       0.10));
}

TEST(GpuModel, FragmentationFormulaEq2)
{
    GpuModel gpu(72);
    EXPECT_EQ(gpu.fragmentations(0), 0u);
    EXPECT_EQ(gpu.fragmentations(1), 0u);
    EXPECT_EQ(gpu.fragmentations(72), 0u);
    EXPECT_EQ(gpu.fragmentations(73), 1u);
    EXPECT_EQ(gpu.fragmentations(144), 1u);
    EXPECT_EQ(gpu.fragmentations(145), 2u);
    EXPECT_EQ(gpu.fragmentations(288), 3u);
}

TEST(GpuModel, Fig2StaircaseTotalTime)
{
    // Total time = (#fragmentations + 1) * BR time (Eq. (1)): flat up
    // to 72 LWEs, 2x at 73, 3x at 145...
    GpuModel gpu(72);
    const TfheParams &p = paramsSetI();
    double t1 = gpu.runBatchSeconds(p, 1);
    EXPECT_DOUBLE_EQ(gpu.runBatchSeconds(p, 72), t1);
    EXPECT_DOUBLE_EQ(gpu.runBatchSeconds(p, 73), 2 * t1);
    EXPECT_DOUBLE_EQ(gpu.runBatchSeconds(p, 288), 4 * t1);
}

TEST(GpuModel, CoreLevelBatchingDoesNotHelpGpus)
{
    // Fig. 2 right: assigning c LWEs per SM stretches the iteration
    // linearly -- no net win. This is the motivation for Strix.
    GpuModel gpu(72);
    const TfheParams &p = paramsSetI();
    double c1 = gpu.coreLevelBatchSeconds(p, 1);
    EXPECT_DOUBLE_EQ(gpu.coreLevelBatchSeconds(p, 2), 2 * c1);
    EXPECT_DOUBLE_EQ(gpu.coreLevelBatchSeconds(p, 3), 3 * c1);
}

TEST(ReferencePlatforms, TableVRowsPresent)
{
    const auto &rows = tableVReferenceRows();
    ASSERT_EQ(rows.size(), 11u);
    // Spot checks.
    EXPECT_EQ(rows[0].platform, "Concrete");
    EXPECT_EQ(rows[10].platform, "Matcha");
    EXPECT_TRUE(rows[10].latency_ms.has_value());
    EXPECT_DOUBLE_EQ(*rows[10].latency_ms, 0.20);
    EXPECT_FALSE(rows[8].latency_ms.has_value()); // XHEC has no latency
    const auto &strix_rows = tableVStrixPaperRows();
    ASSERT_EQ(strix_rows.size(), 4u);
    EXPECT_DOUBLE_EQ(*strix_rows[0].throughput_pbs_s, 74696);
}

} // namespace
} // namespace strix
