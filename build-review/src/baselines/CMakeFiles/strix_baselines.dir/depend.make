# Empty dependencies file for strix_baselines.
# This may be replaced when dependencies are built.
