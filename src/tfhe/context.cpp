/**
 * @file
 * TfheContext implementation.
 */

#include "tfhe/context.h"

namespace strix {

TfheContext::TfheContext(const TfheParams &params, uint64_t seed)
    : params_(params),
      rng_(seed),
      lwe_key_(params.n, rng_),
      glwe_key_(params.k, params.N, rng_),
      extracted_key_(glwe_key_.extractedLweKey()),
      bsk_(BootstrappingKey::generate(lwe_key_, glwe_key_, params, rng_)),
      ksk_(KeySwitchKey::generate(extracted_key_, lwe_key_, params, rng_))
{
}

LweCiphertext
TfheContext::encryptBit(bool bit)
{
    Torus32 mu = encodeMessage(bit ? 1 : -1, 8); // +-1/8
    return lweEncrypt(lwe_key_, mu, params_.lwe_noise, rng_);
}

bool
TfheContext::decryptBit(const LweCiphertext &ct) const
{
    Torus32 phase = lwePhase(lwe_key_, ct);
    return static_cast<int32_t>(phase) > 0;
}

LweCiphertext
TfheContext::encryptInt(int64_t m, uint64_t msg_space)
{
    return lweEncrypt(lwe_key_, encodeLut(m, msg_space), params_.lwe_noise,
                      rng_);
}

int64_t
TfheContext::decryptInt(const LweCiphertext &ct, uint64_t msg_space) const
{
    return decodeLut(lwePhase(lwe_key_, ct), msg_space);
}

LweCiphertext
TfheContext::bootstrap(const LweCiphertext &ct,
                       const TorusPolynomial &test_vector) const
{
    LweCiphertext big = programmableBootstrap(ct, test_vector, bsk_);
    return keySwitch(big, ksk_);
}

LweCiphertext
TfheContext::applyLut(const LweCiphertext &ct, uint64_t msg_space,
                      const std::function<int64_t(int64_t)> &f) const
{
    TorusPolynomial tv = makeIntTestVector(params_.N, msg_space, f);
    return bootstrap(ct, tv);
}

} // namespace strix
