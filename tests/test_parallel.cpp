/**
 * @file
 * Thread-parallel PBS: the ThreadPool primitive, the lock-free FFT
 * plan caches under concurrent first touch, and the batched bootstrap
 * path -- including the N-threads-x-M-bootstraps stress test that
 * asserts bit-exact agreement with the single-threaded path on one
 * shared context. Labeled `slow`; this suite is what the TSan CI job
 * exists to watch.
 */

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "poly/complex_fft.h"
#include "poly/negacyclic_fft.h"
#include "support/test_util.h"
#include "tfhe/server_context.h"

using namespace strix;
using namespace strix::test;

namespace {

/** Bit-exact LWE ciphertext comparison (mask scalars and body). */
void
expectSameCiphertext(const LweCiphertext &a, const LweCiphertext &b,
                     size_t index)
{
    EXPECT_EQ(a.raw(), b.raw()) << "ciphertext " << index
                                << " differs from sequential path";
}

} // namespace

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    std::atomic<bool> worker_in_range{true};
    pool.parallelFor(kCount, [&](size_t i, unsigned worker) {
        if (worker >= pool.threads())
            worker_in_range = false;
        hits[i].fetch_add(1);
    });
    EXPECT_TRUE(worker_in_range.load());
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<size_t> order;
    pool.parallelFor(8, [&](size_t i, unsigned worker) {
        EXPECT_EQ(worker, 0u);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 8u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, CountSmallerThanPool)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(3, [&](size_t i, unsigned) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroCountIsANoop)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [&](size_t, unsigned) { FAIL(); });
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](size_t i, unsigned) {
                                      if (i == 17)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> ran{0};
    pool.parallelFor(10, [&](size_t, unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

/**
 * Regression for the serial-fallback error contract: a 1-thread pool
 * (and count == 1 on any pool) used to bypass the abort_/first_error_
 * machinery and let exceptions fly out mid-loop. The contract must be
 * identical inline and across N workers: same exception type and
 * message on the caller, remaining indices never attempted after the
 * throw, pool fully usable afterwards with no stale deferred error.
 */
TEST(ThreadPool, ErrorContractIdenticalInlineAndParallel)
{
    for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(threads);
        ThreadPool pool(threads);
        std::atomic<int> attempts{0};
        bool caught = false;
        try {
            pool.parallelFor(16, [&](size_t i, unsigned) {
                attempts.fetch_add(1);
                if (i == 3)
                    throw std::runtime_error("contract");
            });
        } catch (const std::runtime_error &e) {
            caught = true;
            EXPECT_STREQ(e.what(), "contract");
        }
        EXPECT_TRUE(caught);
        if (threads == 1) {
            // Inline order is deterministic: indices 0..3 ran, the
            // abort flag stopped everything after the throw.
            EXPECT_EQ(attempts.load(), 4);
        } else {
            EXPECT_LE(attempts.load(), 16);
        }
        // The next loop must run clean: every index covered, and no
        // stale first_error_ rethrown from the previous job.
        std::atomic<int> ran{0};
        pool.parallelFor(8, [&](size_t, unsigned) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 8);
    }
}

TEST(ThreadPool, CountOneOnParallelPoolUsesErrorContract)
{
    // count == 1 takes the inline path even on a multi-worker pool.
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(
                     1, [](size_t, unsigned) {
                         throw std::logic_error("single");
                     }),
                 std::logic_error);
    std::atomic<int> ran{0};
    pool.parallelFor(1, [&](size_t, unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
}

/**
 * STRIX_THREADS parsing fixture: snapshots and restores the variable
 * around each case so the suite leaves the environment untouched.
 */
class StrixThreadsEnv : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (const char *old = std::getenv("STRIX_THREADS")) {
            saved_ = old;
            had_value_ = true;
        }
        unsetenv("STRIX_THREADS");
        fallback_ = ThreadPool::defaultThreadCount();
    }

    void TearDown() override
    {
        if (had_value_)
            setenv("STRIX_THREADS", saved_.c_str(), 1);
        else
            unsetenv("STRIX_THREADS");
    }

    std::string saved_;
    bool had_value_ = false;
    unsigned fallback_ = 0; //!< hardware default with the var unset
};

TEST_F(StrixThreadsEnv, PositiveOverrideIsHonored)
{
    setenv("STRIX_THREADS", "7", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 7u);
}

TEST_F(StrixThreadsEnv, NegativeValueFallsBackToDefault)
{
    // strtoul happily parses "-1" as ULONG_MAX; before the sign check
    // that was rejected only by luck of the [1, 4096] range test.
    setenv("STRIX_THREADS", "-1", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), fallback_);
}

TEST_F(StrixThreadsEnv, WrappingNegativeValueFallsBackToDefault)
{
    // The regression this satellite fixes: -(2^64 - 4096) wraps under
    // strtoul's modular parse to exactly 4096 -- inside the accepted
    // range -- so the old code silently spun up 4096 workers.
    setenv("STRIX_THREADS", "-18446744073709547520", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), fallback_);
}

TEST_F(StrixThreadsEnv, WhitespacePrefixedNegativeIsRejected)
{
    setenv("STRIX_THREADS", "  -3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), fallback_);
}

TEST_F(StrixThreadsEnv, GarbageAndOutOfRangeFallBackToDefault)
{
    setenv("STRIX_THREADS", "not-a-number", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), fallback_);
    setenv("STRIX_THREADS", "0", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), fallback_);
    setenv("STRIX_THREADS", "5000", 1); // above the 4096 cap
    EXPECT_EQ(ThreadPool::defaultThreadCount(), fallback_);
}

/**
 * Many threads race to build the same (previously untouched) plan
 * sizes. Before the caches were synchronized this corrupted the
 * std::map; now every thread must get the same published instance.
 * Uses sizes no other suite requests so the first touch really is
 * concurrent.
 */
TEST(FftPlanCache, ConcurrentFirstTouchPublishesOneInstance)
{
    constexpr size_t kPlanSize = size_t{1} << 14;
    constexpr size_t kRingDim = size_t{1} << 13;
    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::vector<const FftPlan *> plans(kThreads, nullptr);
    std::vector<const NegacyclicFft *> engines(kThreads, nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {
            } // start barrier: maximize first-touch overlap
            plans[t] = &FftPlan::get(kPlanSize);
            engines[t] = &NegacyclicFft::get(kRingDim);
        });
    }
    for (auto &t : threads)
        t.join();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(plans[t], plans[0]);
        EXPECT_EQ(engines[t], engines[0]);
    }
    EXPECT_EQ(plans[0]->size(), kPlanSize);
    EXPECT_EQ(engines[0]->ringDim(), kRingDim);
}

TEST(FftPlanCache, PrewarmPublishesPlan)
{
    NegacyclicFft::prewarm(size_t{1} << 12);
    EXPECT_EQ(NegacyclicFft::get(size_t{1} << 12).ringDim(),
              size_t{1} << 12);
    FftPlan::prewarm(size_t{1} << 15);
    EXPECT_EQ(FftPlan::get(size_t{1} << 15).size(), size_t{1} << 15);
}

class BatchPbs : public ::testing::Test
{
  protected:
    BatchPbs() : keys_(fastParams(), kSeedParallel) {}

    static constexpr uint64_t kSpace = 8;

    std::vector<LweCiphertext> encryptRange(size_t count)
    {
        std::vector<LweCiphertext> cts;
        for (size_t i = 0; i < count; ++i)
            cts.push_back(
                keys_.client.encryptInt(int64_t(i % kSpace), kSpace));
        return cts;
    }

    TestKeys keys_;
    const ClientKeyset &client() { return keys_.client; }
    ServerContext &server() { return keys_.server; }
};

TEST_F(BatchPbs, BatchMatchesSequentialBitExact)
{
    auto cts = encryptRange(12);
    TorusPolynomial tv = makeIntTestVector(
        server().params().N, kSpace,
        [](int64_t v) { return (v + 3) % int64_t(kSpace); });

    std::vector<LweCiphertext> seq;
    for (const auto &ct : cts)
        seq.push_back(server().bootstrap(ct, tv));

    server().setBatchThreads(4);
    ASSERT_EQ(server().batchThreads(), 4u);
    std::vector<LweCiphertext> batch = server().bootstrapBatch(cts, tv);

    ASSERT_EQ(batch.size(), seq.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        expectSameCiphertext(batch[i], seq[i], i);
        EXPECT_EQ(client().decryptInt(batch[i], kSpace),
                  int64_t((i % kSpace + 3) % kSpace));
    }
}

TEST_F(BatchPbs, ApplyLutBatchMatchesApplyLut)
{
    auto cts = encryptRange(6);
    auto square = [](int64_t v) { return (v * v) % int64_t(kSpace); };

    server().setBatchThreads(3);
    std::vector<LweCiphertext> batch =
        server().applyLutBatch(cts, kSpace, square);

    ASSERT_EQ(batch.size(), cts.size());
    for (size_t i = 0; i < cts.size(); ++i)
        expectSameCiphertext(
            batch[i], server().applyLut(cts[i], kSpace, square), i);
}

TEST_F(BatchPbs, DeterministicAcrossThreadCounts)
{
    auto cts = encryptRange(9);
    TorusPolynomial tv = makeIntTestVector(
        server().params().N, kSpace, [](int64_t v) { return v; });

    server().setBatchThreads(1);
    std::vector<LweCiphertext> one = server().bootstrapBatch(cts, tv);
    server().setBatchThreads(4);
    std::vector<LweCiphertext> four = server().bootstrapBatch(cts, tv);

    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i)
        expectSameCiphertext(four[i], one[i], i);
}

/**
 * The stress test the ISSUE asks for: N threads x M bootstraps against
 * one shared context (hand-rolled std::thread, not the pool), checked
 * bit-exactly against the sequential answers. This is the workload
 * that used to race on the FFT plan caches.
 */
TEST_F(BatchPbs, SharedContextConcurrentBootstrapsMatchSequential)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 3;
    auto cts = encryptRange(kThreads * kPerThread);
    TorusPolynomial tv = makeIntTestVector(
        server().params().N, kSpace,
        [](int64_t v) { return (2 * v) % int64_t(kSpace); });

    std::vector<LweCiphertext> seq;
    for (const auto &ct : cts)
        seq.push_back(server().bootstrap(ct, tv));

    std::vector<LweCiphertext> conc(cts.size());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                size_t idx = size_t(t) * kPerThread + i;
                conc[idx] = server().bootstrap(cts[idx], tv);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    for (size_t i = 0; i < cts.size(); ++i)
        expectSameCiphertext(conc[i], seq[i], i);
}

/** Concurrent bootstrapBatch calls on one context must serialize safely. */
TEST_F(BatchPbs, ConcurrentBatchCallsAreSafe)
{
    auto cts = encryptRange(4);
    TorusPolynomial tv = makeIntTestVector(
        server().params().N, kSpace, [](int64_t v) { return v; });
    server().setBatchThreads(2);

    std::vector<LweCiphertext> a, b;
    std::thread other(
        [&] { a = server().bootstrapBatch(cts, tv); });
    b = server().bootstrapBatch(cts, tv);
    other.join();

    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectSameCiphertext(a[i], b[i], i);
}

/**
 * Regression for the setBatchThreads race (documented-but-unchecked
 * before the split API): resizing the pool while batches are in
 * flight must be safe and leave every result bit-identical -- each
 * batch snapshots its pool, so a replacement can never destroy a pool
 * a running batch still uses. TSan watches this under STRIX_TSAN.
 */
TEST_F(BatchPbs, SetBatchThreadsDuringInFlightBatchesIsSafe)
{
    auto cts = encryptRange(8);
    TorusPolynomial tv = makeIntTestVector(
        server().params().N, kSpace, [](int64_t v) { return v; });

    std::vector<LweCiphertext> expected =
        server().bootstrapBatch(cts, tv);

    constexpr int kRounds = 6;
    std::vector<std::vector<LweCiphertext>> results(kRounds);
    std::atomic<bool> stop{false};
    std::thread resizer([&] {
        unsigned next = 1;
        while (!stop.load()) {
            server().setBatchThreads(1 + next++ % 4);
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> batchers;
    for (int r = 0; r < kRounds; ++r) {
        batchers.emplace_back([&, r] {
            results[r] = server().bootstrapBatch(cts, tv);
        });
    }
    for (auto &t : batchers)
        t.join();
    stop = true;
    resizer.join();

    for (int r = 0; r < kRounds; ++r) {
        ASSERT_EQ(results[r].size(), expected.size()) << "round " << r;
        for (size_t i = 0; i < expected.size(); ++i)
            expectSameCiphertext(results[r][i], expected[i], i);
    }
}

/**
 * The zero-duplication sharing contract: any number of ServerContexts
 * built on one EvalKeys bundle reference the same key material
 * (pointer-identical bsk/ksk) and evaluate bit-identically, including
 * concurrently.
 */
TEST_F(BatchPbs, ManyServerContextsShareOneEvalKeysBundle)
{
    auto cts = encryptRange(6);
    TorusPolynomial tv = makeIntTestVector(
        server().params().N, kSpace, [](int64_t v) { return v; });
    std::vector<LweCiphertext> expected =
        server().bootstrapBatch(cts, tv);

    constexpr int kContexts = 3;
    std::vector<std::unique_ptr<ServerContext>> servers;
    for (int s = 0; s < kContexts; ++s)
        servers.push_back(
            std::make_unique<ServerContext>(client().evalKeys()));

    std::vector<std::vector<LweCiphertext>> results(kContexts);
    std::vector<std::thread> threads;
    for (int s = 0; s < kContexts; ++s) {
        EXPECT_EQ(&servers[s]->bsk(), &server().bsk());
        EXPECT_EQ(&servers[s]->ksk(), &server().ksk());
        threads.emplace_back([&, s] {
            servers[s]->setBatchThreads(unsigned(s) + 1);
            results[s] = servers[s]->bootstrapBatch(cts, tv);
        });
    }
    for (auto &t : threads)
        t.join();

    for (int s = 0; s < kContexts; ++s) {
        ASSERT_EQ(results[s].size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i)
            expectSameCiphertext(results[s][i], expected[i], i);
    }
}

/**
 * The satellite-1 contract: encryptBit/encryptInt are now safe to
 * call concurrently on one shared keyset (internal RNG mutex); every
 * resulting ciphertext must decrypt to its message.
 */
TEST_F(BatchPbs, ConcurrentEncryptionsAreSafeAndDecrypt)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 32;
    std::vector<LweCiphertext> cts(kThreads * kPerThread);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                size_t idx = size_t(t) * kPerThread + i;
                cts[idx] = client().encryptInt(
                    int64_t(idx % kSpace), kSpace);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (size_t i = 0; i < cts.size(); ++i)
        EXPECT_EQ(client().decryptInt(cts[i], kSpace),
                  int64_t(i % kSpace));
}
