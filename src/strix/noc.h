/**
 * @file
 * NoC and global-scratchpad model (Sec. IV-B "Memory system and NoC").
 *
 * Strix uses a fixed multicast network for the shared bsk/ksk streams
 * (one-to-all, unidirectional) and point-to-point links between each
 * core and its private section of the global scratchpad. The global
 * scratchpad is double-buffered so the next iteration's keys stream
 * from HBM while the current ones are multicast to the cores.
 *
 * This module answers the two questions the design depends on:
 *   - does a working set (double-buffered bsk tile + ksk tile +
 *     ciphertexts/test vectors for a full epoch batch) fit in the
 *     21 MB global scratchpad for a given parameter set?
 *   - can the multicast buses (512-bit bsk, 256-bit ksk, Sec. VI-A)
 *     feed the cores at the rate the PBS clusters consume?
 */

#ifndef STRIX_STRIX_NOC_H
#define STRIX_STRIX_NOC_H

#include "strix/functional_units.h"
#include "strix/memory_system.h"

namespace strix {

/** Capacity plan of the global scratchpad for one parameter set. */
struct GlobalScratchpadPlan
{
    uint64_t bsk_tile_bytes;  //!< double-buffered GGSW iteration tile
    uint64_t ksk_tile_bytes;  //!< double-buffered keyswitch tile
    uint64_t ct_bytes;        //!< LWEs + test vectors for one epoch
    uint64_t total_bytes;
    uint64_t capacity_bytes;
    bool fits;
};

/** Multicast bus feasibility for the shared key streams. */
struct MulticastPlan
{
    double bsk_bus_gbps;      //!< 512-bit bus at core clock
    double bsk_demand_gbps;   //!< what the PBS clusters consume
    double ksk_bus_gbps;      //!< 256-bit bus at core clock
    double ksk_demand_gbps;   //!< what the KS clusters consume
    bool feasible;            //!< both demands within bus capacity
};

/** NoC/global-scratchpad analyzer. */
class NocModel
{
  public:
    NocModel(const StrixConfig &cfg, const TfheParams &p)
        : cfg_(cfg), p_(p), mem_(cfg, p), timing_(cfg, p)
    {
    }

    /** Bus widths from Sec. VI-A. */
    static constexpr uint32_t kBskBusBits = 512;
    static constexpr uint32_t kKskBusBits = 256;

    /** Capacity plan for the epoch working set. */
    GlobalScratchpadPlan scratchpadPlan() const;

    /** Multicast feasibility at the steady-state iteration rate. */
    MulticastPlan multicastPlan() const;

  private:
    StrixConfig cfg_;
    TfheParams p_;
    MemorySystem mem_;
    UnitTiming timing_;
};

} // namespace strix

#endif // STRIX_STRIX_NOC_H
