/**
 * @file
 * Fig. 7 reproduction: Zama Deep-NN (NN-20/50/100) execution time on
 * CPU, GPU, and Strix for polynomial degrees N = 1024/2048/4096.
 */

#include <cstdio>

#include "baselines/cpu_model.h"
#include "baselines/gpu_model.h"
#include "common/table.h"
#include "strix/accelerator.h"
#include "workloads/deepnn.h"

using namespace strix;

int
main()
{
    std::printf("=== Fig. 7: Zama Deep-NN execution time (ms), "
                "CPU vs GPU vs Strix ===\n\n");

    CpuModel cpu;
    GpuModel gpu;
    StrixAccelerator strix;

    TextTable t;
    t.header({"Model", "N", "#PBS", "CPU ms", "GPU ms", "Strix ms",
              "CPU/Strix", "GPU/Strix"});

    double min_cpu_ratio = 1e30, max_cpu_ratio = 0;
    double min_gpu_ratio = 1e30, max_gpu_ratio = 0;
    for (uint32_t depth : {20u, 50u, 100u}) {
        WorkloadGraph g = buildDeepNn(depth);
        for (uint32_t big_n : {1024u, 2048u, 4096u}) {
            const TfheParams &p = deepNnParams(big_n);
            double cpu_ms = cpu.runGraphSeconds(p, g) * 1e3;
            double gpu_ms = gpu.runGraphSeconds(p, g) * 1e3;
            double strix_ms = strix.runGraph(p, g).seconds * 1e3;
            double rc = cpu_ms / strix_ms;
            double rg = gpu_ms / strix_ms;
            min_cpu_ratio = std::min(min_cpu_ratio, rc);
            max_cpu_ratio = std::max(max_cpu_ratio, rc);
            min_gpu_ratio = std::min(min_gpu_ratio, rg);
            max_gpu_ratio = std::max(max_gpu_ratio, rg);
            t.row({g.name(), std::to_string(big_n),
                   std::to_string(g.totalPbs()),
                   TextTable::num(cpu_ms, 0), TextTable::num(gpu_ms, 0),
                   TextTable::num(strix_ms, 0), TextTable::num(rc, 1),
                   TextTable::num(rg, 1)});
        }
        t.separator();
    }
    t.print();

    std::printf("\nSpeedup ranges across all nine points:\n");
    std::printf("  Strix vs CPU: %.0f-%.0fx  (paper: 33-38x)\n",
                min_cpu_ratio, max_cpu_ratio);
    std::printf("  Strix vs GPU: %.0f-%.0fx  (paper: 8-17x)\n",
                min_gpu_ratio, max_gpu_ratio);
    std::printf("\nShape checks: Strix wins on every point; the gap "
                "widens with heavier workloads (deeper networks, "
                "larger N); the GPU suffers BR fragmentation on the "
                "92-neuron layers (92 < 2 x 72 SMs).\n");
    return 0;
}
