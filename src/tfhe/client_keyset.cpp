/**
 * @file
 * ClientKeyset implementation: keygen and secret-key operations.
 */

#include "tfhe/client_keyset.h"

#include "poly/negacyclic_fft.h"

namespace strix {

ClientKeyset::FftPrewarm::FftPrewarm(const TfheParams &p)
{
    NegacyclicFft::prewarm(p.N);
}

// See the header for the manual proof behind the analysis opt-out.
ClientKeyset::ClientKeyset(const TfheParams &params, uint64_t seed)
    STRIX_NO_THREAD_SAFETY_ANALYSIS
    : params_(params),
      fft_prewarm_(params_),
      rng_(seed),
      lwe_key_(params.n, rng_),
      glwe_key_(params.k, params.N, rng_),
      extracted_key_(glwe_key_.extractedLweKey())
{
    // Sequenced statements, not constructor arguments: both generate()
    // calls advance rng_, and the BSK must consume the stream first to
    // keep the key material bit-identical to the historical layout.
    BootstrappingKey bsk =
        BootstrappingKey::generate(lwe_key_, glwe_key_, params_, rng_);
    KeySwitchKey ksk =
        KeySwitchKey::generate(extracted_key_, lwe_key_, params_, rng_);
    eval_keys_ = std::make_shared<const EvalKeys>(
        params_, std::move(bsk), std::move(ksk));
}

LweCiphertext
ClientKeyset::encryptBit(bool bit) const
{
    MutexLock lock(rng_mutex_);
    return encryptBit(bit, rng_);
}

LweCiphertext
ClientKeyset::encryptBit(bool bit, Rng &rng) const
{
    Torus32 mu = encodeMessage(bit ? 1 : -1, 8); // +-1/8
    return lweEncrypt(lwe_key_, mu, params_.lwe_noise, rng);
}

LweCiphertext
ClientKeyset::encryptInt(int64_t m, uint64_t msg_space) const
{
    MutexLock lock(rng_mutex_);
    return encryptInt(m, msg_space, rng_);
}

LweCiphertext
ClientKeyset::encryptInt(int64_t m, uint64_t msg_space, Rng &rng) const
{
    return lweEncrypt(lwe_key_, encodeLut(m, msg_space),
                      params_.lwe_noise, rng);
}

bool
ClientKeyset::decryptBit(const LweCiphertext &ct) const
{
    Torus32 phase = lwePhase(lwe_key_, ct);
    return static_cast<int32_t>(phase) > 0;
}

int64_t
ClientKeyset::decryptInt(const LweCiphertext &ct, uint64_t msg_space) const
{
    return decodeLut(lwePhase(lwe_key_, ct), msg_space);
}

} // namespace strix
