# Empty compiler generated dependencies file for test_lwe.
# This may be replaced when dependencies are built.
