/**
 * @file
 * Portable clang Thread Safety Analysis annotation macros.
 *
 * Clang's -Wthread-safety turns locking discipline into a compile-time
 * property: data members declare which mutex guards them
 * (STRIX_GUARDED_BY), functions declare which locks they take, need,
 * or must not hold (STRIX_ACQUIRE / STRIX_REQUIRES / STRIX_EXCLUDES),
 * and any access that cannot be proven to hold the right capability is
 * a hard error under -Werror. On compilers without the analysis (gcc,
 * MSVC) every macro expands to nothing, so annotated code builds
 * everywhere and the clang CI leg is the enforcer.
 *
 * The annotations only bind to *annotated* lock types: libstdc++'s
 * std::mutex and std::lock_guard carry no attributes, so locking
 * through them is invisible to the analysis and every guarded access
 * would be flagged. Use the annotated wrappers in common/sync.h
 * (strix::Mutex, strix::MutexLock, ...) for any mutex that guards
 * annotated state.
 *
 * Macro names and attribute spellings follow the reference header in
 * the clang Thread Safety Analysis documentation.
 */

#ifndef STRIX_COMMON_THREAD_ANNOTATIONS_H
#define STRIX_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__)
#define STRIX_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define STRIX_THREAD_ANNOTATION_(x) // no-op outside clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define STRIX_CAPABILITY(x) STRIX_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII class whose lifetime equals holding a capability. */
#define STRIX_SCOPED_CAPABILITY STRIX_THREAD_ANNOTATION_(scoped_lockable)

/** Data member readable only with @p x held (shared or exclusive). */
#define STRIX_GUARDED_BY(x) STRIX_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define STRIX_PT_GUARDED_BY(x) STRIX_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function requires the capability held exclusively on entry. */
#define STRIX_REQUIRES(...) \
    STRIX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function requires at least shared (reader) access on entry. */
#define STRIX_REQUIRES_SHARED(...) \
    STRIX_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability exclusively (held on return). */
#define STRIX_ACQUIRE(...) \
    STRIX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function acquires shared (reader) access. */
#define STRIX_ACQUIRE_SHARED(...) \
    STRIX_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/** Function releases an exclusively held capability. */
#define STRIX_RELEASE(...) \
    STRIX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function releases shared (reader) access. */
#define STRIX_RELEASE_SHARED(...) \
    STRIX_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/** Function releases a capability held in either mode. */
#define STRIX_RELEASE_GENERIC(...) \
    STRIX_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/** Function tries to acquire; first arg is the success return value. */
#define STRIX_TRY_ACQUIRE(...) \
    STRIX_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/**
 * Function must NOT be entered with the capability held (documents
 * non-reentrancy and lock ordering; catches self-deadlock).
 */
#define STRIX_EXCLUDES(...) \
    STRIX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/**
 * Runtime no-op that tells the analysis the capability is held from
 * this point on. The escape hatch for contexts the analysis cannot
 * see through -- condition-variable wait predicates are the canonical
 * case: the lock IS held when the predicate runs, but the predicate
 * body is analyzed as a standalone lambda.
 */
#define STRIX_ASSERT_CAPABILITY(x) \
    STRIX_THREAD_ANNOTATION_(assert_capability(x))

/** Shared-mode variant of STRIX_ASSERT_CAPABILITY. */
#define STRIX_ASSERT_SHARED_CAPABILITY(x) \
    STRIX_THREAD_ANNOTATION_(assert_shared_capability(x))

/** Function returns a reference to the capability guarding @p x. */
#define STRIX_RETURN_CAPABILITY(x) \
    STRIX_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Opt a function out of the analysis entirely. Only with a comment
 * carrying the manual proof -- silent annotation-washing defeats the
 * whole point of the gating CI leg.
 */
#define STRIX_NO_THREAD_SAFETY_ANALYSIS \
    STRIX_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif // STRIX_COMMON_THREAD_ANNOTATIONS_H
