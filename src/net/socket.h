/**
 * @file
 * Dependency-free POSIX TCP primitives for the serving layer.
 *
 * TcpConn wraps a connected socket as a move-only fd owner with
 * explicit non-blocking IO results (Ok / WouldBlock / Eof / Error --
 * no errno spelunking at call sites, no SIGPIPE), TcpListener wraps a
 * non-blocking accept loop, and Poller wraps poll(2) over a caller-
 * built fd set. Everything is loopback/cluster plumbing: no TLS, no
 * name resolution beyond dotted quads, by design -- the daemon fronts
 * *encrypted* traffic, and its deployment story puts transport
 * security in the usual terminators. This layer never includes
 * tfhe/ (lint-enforced): bytes in, bytes out.
 */

#ifndef STRIX_NET_SOCKET_H
#define STRIX_NET_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <poll.h>

namespace strix {

/** Move-only owner of a connected TCP socket. */
class TcpConn
{
  public:
    /** IO outcome for the non-blocking read/write paths. */
    enum class IoResult
    {
        Ok,         //!< made progress (>= 1 byte, or had nothing to do)
        WouldBlock, //!< kernel buffer empty/full; poll and retry
        Eof,        //!< peer closed its end
        Error       //!< connection is dead (reset, EPIPE, ...)
    };

    TcpConn() = default;
    /** Adopt @p fd (already connected; caller loses ownership). */
    explicit TcpConn(int fd) : fd_(fd) {}
    ~TcpConn() { close(); }

    TcpConn(TcpConn &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    TcpConn &operator=(TcpConn &&other) noexcept;
    TcpConn(const TcpConn &) = delete;
    TcpConn &operator=(const TcpConn &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /** Toggle O_NONBLOCK. Returns false if the fcntl failed. */
    bool setNonBlocking(bool on);
    /** Disable Nagle; the BufferedSender does the coalescing. */
    bool setNoDelay(bool on);

    /**
     * Read up to @p cap bytes into @p buf; @p got is the byte count
     * on Ok. EINTR retries internally; 0-byte reads report Eof.
     */
    IoResult readSome(void *buf, size_t cap, size_t &got);

    /**
     * Write up to @p len bytes from @p buf; @p put is the byte count
     * on Ok (may be a short write). SIGPIPE is suppressed.
     */
    IoResult writeSome(const void *buf, size_t len, size_t &put);

    /** Blocking: read exactly @p len bytes. False on EOF/error. */
    bool readFull(void *buf, size_t len);
    /** Blocking: write all of @p len bytes. False on error. */
    bool writeFull(const void *buf, size_t len);

    /**
     * Blocking connect to @p host (dotted quad) : @p port. Returns an
     * invalid conn on failure.
     */
    static TcpConn connect(const std::string &host, uint16_t port);
    /** connect("127.0.0.1", port). */
    static TcpConn connectLoopback(uint16_t port);

  private:
    int fd_ = -1;
};

/** Non-blocking listening socket. */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener() { close(); }

    TcpListener(TcpListener &&other) noexcept : fd_(other.fd_),
                                                port_(other.port_)
    {
        other.fd_ = -1;
        other.port_ = 0;
    }
    TcpListener &operator=(TcpListener &&other) noexcept;
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind + listen on 127.0.0.1:@p port (0 = kernel-assigned
     * ephemeral port, reported by port()). The accept path is
     * non-blocking. Returns an invalid listener on failure.
     */
    static TcpListener listenLoopback(uint16_t port, int backlog = 64);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    /** The bound port (resolves port-0 binds). */
    uint16_t port() const { return port_; }
    void close();

    /**
     * Accept one pending connection (already non-blocking, TCP_NODELAY
     * set); an invalid TcpConn when none is pending.
     */
    TcpConn accept();

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
};

/** poll(2) over a caller-built fd set. */
class Poller
{
  public:
    void clear();
    /** Add @p fd, watching for readability and/or writability. */
    void add(int fd, bool want_read, bool want_write);
    /**
     * Block up to @p timeout_ms (-1 = forever, 0 = poll). Returns the
     * number of ready fds (0 on timeout; EINTR retries internally).
     */
    int wait(int timeout_ms);
    bool readable(int fd) const;
    bool writable(int fd) const;
    /** Error/hangup flagged (the read path will observe Eof/Error). */
    bool errored(int fd) const;

  private:
    const struct pollfd *find(int fd) const;
    std::vector<struct pollfd> slots_;
};

} // namespace strix

#endif // STRIX_NET_SOCKET_H
