/**
 * @file
 * StrixServer integration tests over live loopback sockets: the
 * tenant lifecycle (register / compute / re-register), admission
 * control, deadlines, budget-driven key eviction, drain semantics,
 * and a hostile-wire-input suite (truncated, length-lying,
 * type-confused, bit-flipped frames and oversized payloads) -- every
 * hostile case must produce a structured error frame or a clean
 * close, never a crash. Runs under the unit label so the ASan+UBSan
 * CI leg executes all of it.
 */

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "server/server.h"
#include "server/wire_codec.h"
#include "tfhe/bootstrap.h"
#include "tfhe/context_cache.h"
#include "tfhe/server_context.h"
#include "workloads/circuit.h"
#include "workloads/circuit_analysis.h"

using namespace strix;

namespace {

constexpr uint64_t kSpace = 8;

std::shared_ptr<const ClientKeyset>
keysetFor(uint64_t seed)
{
    return ContextCache::global().getOrCreateKeyset(testParams(48, 512),
                                                    seed);
}

std::vector<uint8_t>
keysPayload(const ClientKeyset &keyset)
{
    return encodeEvalKeysPayload(*keyset.evalKeys(),
                                 EvalKeysFormat::Seeded);
}

int64_t
triple(int64_t v)
{
    return (3 * v) % int64_t(kSpace);
}

std::vector<uint8_t>
bootstrapPayload(const ClientKeyset &keyset, int64_t m)
{
    const TfheParams &p = keyset.evalKeys()->params();
    return encodeBootstrapPayload(
        keyset.encryptInt(m, kSpace),
        makeIntTestVector(p.N, kSpace, triple));
}

/** Register @p tenant through @p client; asserts success. */
void
registerTenant(StrixClient &client, uint64_t tenant,
               const ClientKeyset &keyset)
{
    StrixClient::Reply r = client.call(MsgType::RegisterTenant, tenant,
                                       keysPayload(keyset));
    ASSERT_TRUE(r.ok) << r.error_text;
}

/**
 * Server + connected client harness. Each test gets fresh instances
 * so option knobs and counters never leak between cases.
 */
struct Harness
{
    explicit Harness(StrixServer::Options opts = StrixServer::Options())
        : server(opts)
    {
        EXPECT_TRUE(server.start());
        EXPECT_TRUE(client.connectLoopback(server.port()));
    }

    StrixServer server;
    StrixClient client;
};

// --- lifecycle round trips -------------------------------------------

TEST(Server, PingRoundTrip)
{
    Harness h;
    EXPECT_TRUE(h.client.ping());
    EXPECT_TRUE(h.client.ping()) << "connection stays usable";
}

TEST(Server, BootstrapRoundTrip)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    for (int64_t m = 0; m < 3; ++m) {
        StrixClient::Reply r = h.client.call(
            MsgType::Bootstrap, 1, bootstrapPayload(*keyset, m));
        ASSERT_TRUE(r.ok) << r.error_text;
        std::vector<LweCiphertext> out = decodeCiphertexts(r.payload);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(keyset->decryptInt(out[0], kSpace), triple(m));
    }
}

TEST(Server, ApplyLutRoundTripMatchesLocal)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);
    ServerContext local(keyset->evalKeys());

    std::vector<int64_t> table;
    for (uint64_t v = 0; v < kSpace; ++v)
        table.push_back(triple(int64_t(v)));

    const int64_t m = 5;
    LweCiphertext ct = keyset->encryptInt(m, kSpace);
    StrixClient::Reply r =
        h.client.call(MsgType::ApplyLut, 1,
                      encodeApplyLutPayload(ct, kSpace, table));
    ASSERT_TRUE(r.ok) << r.error_text;
    std::vector<LweCiphertext> out = decodeCiphertexts(r.payload);
    ASSERT_EQ(out.size(), 1u);
    const int64_t got = keyset->decryptInt(out[0], kSpace);
    EXPECT_EQ(got, triple(m));
    EXPECT_EQ(got, keyset->decryptInt(local.applyLut(ct, kSpace, triple),
                                      kSpace));
}

TEST(Server, EvalCircuitRoundTrip)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    Circuit c;
    const Wire a = c.input();
    const Wire b = c.input();
    c.output(c.gate(GateOp::Xor, a, b));
    c.output(c.gate(GateOp::And, a, b));

    for (int bits = 0; bits < 4; ++bits) {
        const bool va = (bits & 1) != 0, vb = (bits & 2) != 0;
        std::vector<LweCiphertext> inputs;
        inputs.push_back(keyset->encryptBit(va));
        inputs.push_back(keyset->encryptBit(vb));
        StrixClient::Reply r = h.client.call(
            MsgType::EvalCircuit, 1, encodeCircuitPayload(c, inputs));
        ASSERT_TRUE(r.ok) << r.error_text;
        std::vector<LweCiphertext> out = decodeCiphertexts(r.payload);
        ASSERT_EQ(out.size(), 2u);
        EXPECT_EQ(keyset->decryptBit(out[0]), va != vb);
        EXPECT_EQ(keyset->decryptBit(out[1]), va && vb);
    }
}

// --- tenant lifecycle edges ------------------------------------------

TEST(Server, UnknownTenantRejected)
{
    Harness h;
    auto keyset = keysetFor(501);
    StrixClient::Reply r = h.client.call(
        MsgType::Bootstrap, 77, bootstrapPayload(*keyset, 1));
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, WireError::UnknownTenant);
}

TEST(Server, ReRegisterIsIdempotent)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);
    registerTenant(h.client, 1, *keyset);

    const CacheStats cs = h.server.cacheStats();
    EXPECT_EQ(cs.inserts, 1u) << "second upload adopted no new bundle";
    EXPECT_EQ(cs.entries, 1u);
}

TEST(Server, UnknownMessageTypeAnswered)
{
    Harness h;
    StrixClient::Reply r =
        h.client.call(static_cast<MsgType>(0x55), 1, {});
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, WireError::UnknownType);
    EXPECT_TRUE(h.client.ping()) << "connection survives";
}

// --- admission control ------------------------------------------------

TEST(Server, PerTenantInflightCapRejectsBusy)
{
    StrixServer::Options opts;
    opts.max_inflight_per_tenant = 2;
    // Executor never flushes on its own: admitted requests stay
    // pending until drain, so the 3rd and 4th pipelined requests
    // deterministically hit the cap.
    opts.exec.target_batch = 1000;
    opts.exec.flush_delay_us = 1000ull * 1000 * 1000;
    Harness h(opts);
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    for (int i = 0; i < 4; ++i)
        ASSERT_NE(h.client.send(MsgType::Bootstrap, 1,
                                bootstrapPayload(*keyset, i)),
                  0u);

    // The two rejects reply immediately; the two admitted requests
    // are only fulfilled by the drain below.
    StrixClient::Reply r1, r2;
    ASSERT_TRUE(h.client.recvReply(r1));
    ASSERT_TRUE(h.client.recvReply(r2));
    EXPECT_FALSE(r1.ok);
    EXPECT_EQ(r1.error, WireError::Busy);
    EXPECT_FALSE(r2.ok);
    EXPECT_EQ(r2.error, WireError::Busy);

    h.server.stop(); // drain fulfils the admitted pair
    StrixClient::Reply r3, r4;
    ASSERT_TRUE(h.client.recvReply(r3));
    ASSERT_TRUE(h.client.recvReply(r4));
    EXPECT_TRUE(r3.ok);
    EXPECT_TRUE(r4.ok);
    EXPECT_EQ(h.server.stats().busy_rejects, 2u);
}

TEST(Server, GlobalQueueDepthRejectsBusy)
{
    StrixServer::Options opts;
    opts.max_queue_depth = 1;
    opts.exec.target_batch = 1000;
    opts.exec.flush_delay_us = 1000ull * 1000 * 1000;
    Harness h(opts);
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    for (int i = 0; i < 2; ++i)
        ASSERT_NE(h.client.send(MsgType::Bootstrap, 1,
                                bootstrapPayload(*keyset, i)),
                  0u);
    StrixClient::Reply r1;
    ASSERT_TRUE(h.client.recvReply(r1));
    EXPECT_FALSE(r1.ok);
    EXPECT_EQ(r1.error, WireError::Busy);
    h.server.stop();
    StrixClient::Reply r2;
    ASSERT_TRUE(h.client.recvReply(r2));
    EXPECT_TRUE(r2.ok);
}

// --- deadlines --------------------------------------------------------

TEST(Server, DeadlineExceededOnLateCompletion)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    // A 1 us budget cannot cover a PBS (hundreds of us at these
    // parameters): the work completes, the reply is the structured
    // deadline error instead of a stale result.
    StrixClient::Reply r =
        h.client.call(MsgType::Bootstrap, 1,
                      bootstrapPayload(*keyset, 1), /*deadline_us=*/1);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, WireError::DeadlineExceeded);
    EXPECT_EQ(h.server.stats().deadline_misses, 1u);
}

TEST(Server, GenerousDeadlineIsMet)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);
    StrixClient::Reply r = h.client.call(
        MsgType::Bootstrap, 1, bootstrapPayload(*keyset, 1),
        /*deadline_us=*/60ull * 1000 * 1000);
    EXPECT_TRUE(r.ok) << r.error_text;
    EXPECT_EQ(h.server.stats().deadline_misses, 0u);
}

// --- budget-driven eviction ------------------------------------------

TEST(Server, BudgetEvictsIdleTenantWhoMustReRegister)
{
    auto keyset_a = keysetFor(501);
    auto keyset_b = keysetFor(502);
    const uint64_t bundle_bytes =
        keyset_a->evalKeys()->residentBytes();

    StrixServer::Options opts;
    // Room for one bundle plus slack, never two: registering B must
    // evict idle A.
    opts.cache_budget_bytes = bundle_bytes + bundle_bytes / 2;
    Harness h(opts);

    registerTenant(h.client, 1, *keyset_a);
    StrixClient::Reply r = h.client.call(
        MsgType::Bootstrap, 1, bootstrapPayload(*keyset_a, 1));
    ASSERT_TRUE(r.ok) << r.error_text;

    registerTenant(h.client, 2, *keyset_b);
    EXPECT_GE(h.server.cacheStats().evictions, 1u);

    // A was evicted: structured error, not a crash or a wrong answer.
    r = h.client.call(MsgType::Bootstrap, 1,
                      bootstrapPayload(*keyset_a, 1));
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, WireError::UnknownTenant);

    // Re-registering restores service (and now evicts idle B).
    registerTenant(h.client, 1, *keyset_a);
    r = h.client.call(MsgType::Bootstrap, 1,
                      bootstrapPayload(*keyset_a, 2));
    ASSERT_TRUE(r.ok) << r.error_text;
    std::vector<LweCiphertext> out = decodeCiphertexts(r.payload);
    EXPECT_EQ(keyset_a->decryptInt(out.at(0), kSpace), triple(2));
}

// --- hostile wire input ----------------------------------------------

/**
 * Send raw bytes, then read whatever comes back until the peer
 * closes. Returns the decoded error replies seen (possibly none, if
 * the server just closed). The connection must terminate -- a server
 * that neither answers nor closes would hang this helper's 5 s guard.
 */
std::vector<ErrorInfo>
sendHostileBytes(uint16_t port, const std::vector<uint8_t> &bytes,
                 bool half_close = false)
{
    TcpConn conn = TcpConn::connectLoopback(port);
    EXPECT_TRUE(conn.valid());
    EXPECT_TRUE(conn.writeFull(bytes.data(), bytes.size()));
    if (half_close)
        ::shutdown(conn.fd(), SHUT_WR);

    std::vector<ErrorInfo> errors;
    FrameDecoder dec;
    std::vector<uint8_t> buf(64 * 1024);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
        size_t got = 0;
        const TcpConn::IoResult r =
            conn.readSome(buf.data(), buf.size(), got);
        if (r == TcpConn::IoResult::Eof ||
            r == TcpConn::IoResult::Error)
            break;
        if (r != TcpConn::IoResult::Ok)
            continue;
        dec.feed(buf.data(), got);
        WireMessage m;
        while (dec.next(m))
            if (m.type == MsgType::Error)
                errors.push_back(decodeErrorPayload(m.payload));
    }
    return errors;
}

TEST(ServerHostile, GarbageBytesGetErrorFrameThenClose)
{
    Harness h;
    std::vector<uint8_t> garbage(100);
    for (size_t i = 0; i < garbage.size(); ++i)
        garbage[i] = uint8_t(0xC0 + i);
    std::vector<ErrorInfo> errs =
        sendHostileBytes(h.server.port(), garbage);
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_EQ(errs[0].code, WireError::Protocol);
    EXPECT_TRUE(h.client.ping()) << "server survives hostile conn";
}

TEST(ServerHostile, TruncatedFrameThenDisconnectIsClean)
{
    Harness h;
    WireMessage m;
    m.type = MsgType::Ping;
    m.payload = std::vector<uint8_t>(1000, 7);
    std::vector<uint8_t> frame = encodeMessage(m);
    frame.resize(frame.size() / 2); // half a message, then FIN
    std::vector<ErrorInfo> errs =
        sendHostileBytes(h.server.port(), frame, /*half_close=*/true);
    EXPECT_TRUE(errs.empty()) << "incomplete frame is not an error";
    EXPECT_TRUE(h.client.ping());
}

TEST(ServerHostile, LengthLyingHeaderRejected)
{
    Harness h;
    std::vector<uint8_t> frame = encodeMessage(WireMessage{});
    const uint64_t lie = 1ull << 62; // over any cap
    std::memcpy(&frame[36], &lie, sizeof(lie));
    std::vector<ErrorInfo> errs =
        sendHostileBytes(h.server.port(), frame);
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_EQ(errs[0].code, WireError::Protocol);
    EXPECT_TRUE(h.client.ping());
}

TEST(ServerHostile, TypeConfusedPayloadRejectedConnSurvives)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    // A well-formed ApplyLut payload sent as a Bootstrap request: the
    // validating reader rejects it, the connection stays usable.
    std::vector<int64_t> table(kSpace, 1);
    LweCiphertext ct = keyset->encryptInt(1, kSpace);
    StrixClient::Reply r = h.client.call(
        MsgType::Bootstrap, 1,
        encodeApplyLutPayload(ct, kSpace, table));
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, WireError::BadPayload);
    EXPECT_TRUE(h.client.ping());

    r = h.client.call(MsgType::Bootstrap, 1,
                      bootstrapPayload(*keyset, 1));
    EXPECT_TRUE(r.ok) << "tenant still serviceable: "
                      << r.error_text;
}

TEST(ServerHostile, BitFlippedPayloadRejected)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    std::vector<uint8_t> payload = bootstrapPayload(*keyset, 1);
    payload[2] ^= 0x10; // corrupt the inner LCT1 frame tag
    StrixClient::Reply r =
        h.client.call(MsgType::Bootstrap, 1, payload);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, WireError::BadPayload);
    EXPECT_TRUE(h.client.ping());
}

TEST(ServerHostile, BitFlippedKeyUploadRejected)
{
    Harness h;
    auto keyset = keysetFor(501);
    std::vector<uint8_t> payload = keysPayload(*keyset);
    payload[payload.size() / 2] ^= 0x01;
    StrixClient::Reply r =
        h.client.call(MsgType::RegisterTenant, 9, payload);
    // Either the validating reader catches the flip (BadPayload) or
    // the flip landed in raw key material and deserializes to a
    // different-but-well-formed bundle; both are acceptable -- the
    // requirement is no crash and a usable server.
    if (!r.ok) {
        EXPECT_EQ(r.error, WireError::BadPayload);
    }
    EXPECT_TRUE(h.client.ping());
}

TEST(ServerHostile, OversizedComputePayloadRejected)
{
    StrixServer::Options opts;
    opts.max_request_payload_bytes = 1024;
    Harness h(opts);
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    StrixClient::Reply r = h.client.call(
        MsgType::Bootstrap, 1, std::vector<uint8_t>(4096, 0));
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, WireError::PayloadTooLarge);
    EXPECT_TRUE(h.client.ping());
}

TEST(ServerHostile, HostileCircuitOperandsRejected)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    // Hand-build a circuit payload whose gate references a forward
    // wire (out of topological order): must be BadPayload, not a
    // daemon panic.
    Circuit c;
    const Wire a = c.input();
    const Wire b = c.input();
    c.output(c.gate(GateOp::And, a, b));
    std::vector<LweCiphertext> inputs;
    inputs.push_back(keyset->encryptBit(true));
    inputs.push_back(keyset->encryptBit(false));
    std::vector<uint8_t> payload = encodeCircuitPayload(c, inputs);
    // Node records (5 x u32 each) start after the 8-byte CIQ1 frame
    // header + u64 node count; node 2 (the gate) sits at offset
    // 16 + 2*20. Its `a` operand field is 4 bytes in; point it at
    // wire 7 (beyond every node).
    const size_t gate_a_off = 16 + 2 * 20 + 4;
    payload[gate_a_off] = 7;
    StrixClient::Reply r =
        h.client.call(MsgType::EvalCircuit, 1, payload);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, WireError::BadPayload);
    EXPECT_TRUE(h.client.ping());
}

// --- drain / shutdown -------------------------------------------------

TEST(Server, DrainFulfilsPendingBeforeShutdown)
{
    StrixServer::Options opts;
    // The executor's own triggers never fire; only the shutdown
    // drain can fulfil the request.
    opts.exec.target_batch = 1000;
    opts.exec.flush_delay_us = 1000ull * 1000 * 1000;
    Harness h(opts);
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);

    ASSERT_NE(h.client.send(MsgType::Bootstrap, 1,
                            bootstrapPayload(*keyset, 3)),
              0u);
    // Wait until the server has admitted the request (stop() stops
    // reading, so racing it could drop the unread frame instead).
    while (h.server.stats().requests < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    h.server.stop();
    StrixClient::Reply r;
    ASSERT_TRUE(h.client.recvReply(r));
    ASSERT_TRUE(r.ok) << r.error_text;
    std::vector<LweCiphertext> out = decodeCiphertexts(r.payload);
    EXPECT_EQ(keyset->decryptInt(out.at(0), kSpace), triple(3));
    EXPECT_GE(h.server.executorStats().drain_flushes, 1u);
}

TEST(Server, RequestsDuringDrainAnswerShuttingDown)
{
    Harness h;
    auto keyset = keysetFor(501);
    registerTenant(h.client, 1, *keyset);
    h.server.stop();
    // The listener is closed and reads stop during drain; by now the
    // server is fully down, so the connection just dies -- the
    // guarantee is a clean close, not a reply.
    StrixClient::Reply r = h.client.call(
        MsgType::Bootstrap, 1, bootstrapPayload(*keyset, 1));
    EXPECT_FALSE(r.ok);
}

TEST(Server, StressManyConnectionsTwoTenants)
{
    StrixServer::Options opts;
    opts.exec.target_batch = 8;
    opts.exec.flush_delay_us = 300;
    Harness h(opts);
    auto keyset_a = keysetFor(501);
    auto keyset_b = keysetFor(502);

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            const uint64_t tenant = t % 2 == 0 ? 1 : 2;
            const ClientKeyset &ks =
                tenant == 1 ? *keyset_a : *keyset_b;
            StrixClient c;
            if (!c.connectLoopback(h.server.port())) {
                ++failures;
                return;
            }
            StrixClient::Reply reg = c.call(MsgType::RegisterTenant,
                                            tenant, keysPayload(ks));
            if (!reg.ok) {
                ++failures;
                return;
            }
            for (int i = 0; i < 4; ++i) {
                StrixClient::Reply r =
                    c.call(MsgType::Bootstrap, tenant,
                           bootstrapPayload(ks, i));
                if (!r.ok ||
                    ks.decryptInt(decodeCiphertexts(r.payload).at(0),
                                  kSpace) != triple(i))
                    ++failures;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(h.server.stats().protocol_errors, 0u);
}

} // namespace
