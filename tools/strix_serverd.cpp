/**
 * @file
 * strix_serverd: the multi-tenant encrypted-compute serving daemon.
 *
 * Binds a loopback port and serves the MSG1 protocol (see
 * net/wire.h): tenants upload EVK1/EVK2 key bundles, then submit
 * Bootstrap / ApplyLut / EvalCircuit requests whose PBS work batches
 * across tenants through the shared BatchExecutor. SIGINT/SIGTERM
 * trigger a clean drain: pending responses are fulfilled and flushed
 * before exit.
 *
 * This process is evaluation-only by construction: it links no code
 * that can touch a secret key (lint-enforced), so operating it
 * requires no more trust than holding ciphertexts does.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/client.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int /*sig*/)
{
    g_stop = 1;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --port N            listen port (default 7780; 0 = ephemeral)\n"
        "  --budget-mb N       tenant key-memory budget in MiB (0 = unbounded)\n"
        "  --target-batch N    PBS batch width trigger (default 16)\n"
        "  --flush-delay-us N  PBS batch deadline trigger (default 200)\n"
        "  --send-mtu N        response coalescing threshold bytes (default 16384)\n"
        "  --send-flush-us N   response coalescing delay (default 100)\n"
        "  --max-inflight N    per-tenant in-flight admission cap (default 32)\n"
        "  --queue-depth N     global in-flight admission cap (default 256)\n"
        "  --selftest          bind ephemeral, ping self once, drain, exit\n",
        argv0);
}

uint64_t
parseU64(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
        std::fprintf(stderr, "strix_serverd: bad value for %s: %s\n",
                     flag, value);
        std::exit(2);
    }
    return static_cast<uint64_t>(v);
}

int
selftest(strix::StrixServer::Options opts)
{
    opts.port = 0;
    strix::StrixServer server(opts);
    if (!server.start()) {
        std::fprintf(stderr, "strix_serverd: selftest bind failed\n");
        return 1;
    }
    strix::StrixClient client;
    if (!client.connectLoopback(server.port())) {
        std::fprintf(stderr, "strix_serverd: selftest connect failed\n");
        return 1;
    }
    if (!client.ping()) {
        std::fprintf(stderr, "strix_serverd: selftest ping failed\n");
        return 1;
    }
    server.stop();
    std::printf("strix_serverd: selftest ok (port %u)\n",
                unsigned(server.port()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    strix::StrixServer::Options opts;
    opts.port = 7780;
    bool run_selftest = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "strix_serverd: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--port") {
            opts.port = static_cast<uint16_t>(parseU64("--port", next()));
        } else if (arg == "--budget-mb") {
            opts.cache_budget_bytes =
                parseU64("--budget-mb", next()) << 20;
        } else if (arg == "--target-batch") {
            opts.exec.target_batch =
                size_t(parseU64("--target-batch", next()));
        } else if (arg == "--flush-delay-us") {
            opts.exec.flush_delay_us =
                parseU64("--flush-delay-us", next());
        } else if (arg == "--send-mtu") {
            opts.send.mtu_bytes = size_t(parseU64("--send-mtu", next()));
        } else if (arg == "--send-flush-us") {
            opts.send.flush_delay_us =
                parseU64("--send-flush-us", next());
        } else if (arg == "--max-inflight") {
            opts.max_inflight_per_tenant =
                size_t(parseU64("--max-inflight", next()));
        } else if (arg == "--queue-depth") {
            opts.max_queue_depth =
                size_t(parseU64("--queue-depth", next()));
        } else if (arg == "--selftest") {
            run_selftest = true;
        } else {
            std::fprintf(stderr, "strix_serverd: unknown flag %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (run_selftest)
        return selftest(opts);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    strix::StrixServer server(opts);
    if (!server.start()) {
        std::fprintf(stderr, "strix_serverd: cannot bind port %u\n",
                     unsigned(opts.port));
        return 1;
    }
    std::printf("strix_serverd: serving on 127.0.0.1:%u\n",
                unsigned(server.port()));
    std::fflush(stdout);

    while (!g_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::printf("strix_serverd: draining...\n");
    server.stop();
    const strix::StrixServer::Stats s = server.stats();
    std::printf("strix_serverd: served %llu requests "
                "(%llu ok, %llu errors, %llu busy)\n",
                (unsigned long long)s.requests,
                (unsigned long long)s.ok_replies,
                (unsigned long long)s.error_replies,
                (unsigned long long)s.busy_rejects);
    return 0;
}
