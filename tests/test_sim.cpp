/**
 * @file
 * Tests for the simulation framework: timelines, Gantt rendering,
 * bandwidth accounting.
 */

#include <gtest/gtest.h>

#include "sim/bandwidth.h"
#include "sim/timeline.h"

namespace strix {
namespace {

TEST(UnitTimeline, BusyCyclesClipsToWindow)
{
    UnitTimeline t("fft");
    t.record(10, 20, "a");
    t.record(30, 50, "b");
    EXPECT_EQ(t.busyCycles(0, 100), 30u);
    EXPECT_EQ(t.busyCycles(15, 35), 10u); // 5 from [10,20) + 5 from [30,50)
    EXPECT_EQ(t.busyCycles(50, 60), 0u);
}

TEST(UnitTimeline, UtilizationFractions)
{
    UnitTimeline t("vma");
    t.record(0, 50);
    EXPECT_DOUBLE_EQ(t.utilization(0, 100), 0.5);
    EXPECT_DOUBLE_EQ(t.utilization(0, 50), 1.0);
    EXPECT_DOUBLE_EQ(t.utilization(60, 70), 0.0);
}

TEST(UnitTimeline, OverlapDetection)
{
    UnitTimeline a("x");
    a.record(0, 10);
    a.record(10, 20); // adjacent is fine
    EXPECT_FALSE(a.hasOverlap());
    a.record(15, 25);
    EXPECT_TRUE(a.hasOverlap());
}

TEST(UnitTimeline, ZeroLengthIntervalsIgnored)
{
    UnitTimeline t("acc");
    t.record(5, 5);
    EXPECT_TRUE(t.intervals().empty());
    EXPECT_EQ(t.endCycle(), 0u);
}

TEST(GanttTrace, RowsAreStableAndNamed)
{
    GanttTrace g;
    g.row("Rotator").record(0, 10);
    g.row("FFT").record(5, 20);
    EXPECT_EQ(g.rows().size(), 2u);
    // Fetching an existing row must not duplicate it.
    g.row("Rotator").record(20, 30);
    EXPECT_EQ(g.rows().size(), 2u);
    EXPECT_EQ(g.endCycle(), 30u);
}

TEST(GanttTrace, RenderContainsRowNames)
{
    GanttTrace g;
    g.row("Rotator").record(0, 100, "1");
    g.row("HBM").record(0, 60, "k");
    std::string out = g.render(50);
    EXPECT_NE(out.find("Rotator"), std::string::npos);
    EXPECT_NE(out.find("HBM"), std::string::npos);
    EXPECT_NE(out.find('1'), std::string::npos);
    EXPECT_NE(out.find('k'), std::string::npos);
}

TEST(ChannelGroup, BandwidthShareSplit)
{
    // 8 of 16 channels of a 300 GB/s stack = 150 GB/s.
    ChannelGroup bsk(300.0, 8, 16);
    EXPECT_DOUBLE_EQ(bsk.gbps(), 150.0);
    ChannelGroup ksk(300.0, 4, 16);
    EXPECT_DOUBLE_EQ(ksk.gbps(), 75.0);
}

TEST(ChannelGroup, TransferCyclesAtClock)
{
    ChannelGroup g(300.0, 16, 16);
    // 300 bytes at 300 GB/s = 1 ns = 1.2 cycles at 1.2 GHz.
    EXPECT_EQ(g.transferCycles(300, 1.2), 1u);
    // 3 MB at 300 GB/s = 10 us = 12000 cycles.
    EXPECT_EQ(g.transferCycles(3000000, 1.2), 12000u);
}

TEST(ChannelGroup, RequiredGbpsInvertsTransfer)
{
    // Moving 512 KiB every 4096 cycles at 1.2 GHz needs ~153.6 GB/s.
    double need = ChannelGroup::requiredGbps(512 * 1024, 4096, 1.2);
    EXPECT_NEAR(need, 153.6, 1.0);
}

} // namespace
} // namespace strix
