/**
 * @file
 * UnitTimeline / GanttTrace implementation.
 */

#include "sim/timeline.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace strix {

void
UnitTimeline::record(Cycle start, Cycle end, std::string label)
{
    panicIfNot(end >= start, "timeline interval ends before it starts");
    if (end == start)
        return; // zero-length activity is not recorded
    ivals_.push_back({start, end, std::move(label)});
}

Cycle
UnitTimeline::busyCycles(Cycle from, Cycle to) const
{
    Cycle busy = 0;
    for (const auto &iv : ivals_) {
        Cycle s = std::max(iv.start, from);
        Cycle e = std::min(iv.end, to);
        if (e > s)
            busy += e - s;
    }
    return busy;
}

double
UnitTimeline::utilization(Cycle from, Cycle to) const
{
    if (to <= from)
        return 0.0;
    return static_cast<double>(busyCycles(from, to)) /
           static_cast<double>(to - from);
}

bool
UnitTimeline::hasOverlap() const
{
    auto sorted = ivals_;
    std::sort(sorted.begin(), sorted.end(),
              [](const BusyInterval &a, const BusyInterval &b) {
                  return a.start < b.start;
              });
    for (size_t i = 1; i < sorted.size(); ++i)
        if (sorted[i].start < sorted[i - 1].end)
            return true;
    return false;
}

Cycle
UnitTimeline::endCycle() const
{
    Cycle end = 0;
    for (const auto &iv : ivals_)
        end = std::max(end, iv.end);
    return end;
}

UnitTimeline &
GanttTrace::row(const std::string &name)
{
    for (auto &r : rows_)
        if (r.name() == name)
            return r;
    rows_.emplace_back(name);
    return rows_.back();
}

Cycle
GanttTrace::endCycle() const
{
    Cycle end = 0;
    for (const auto &r : rows_)
        end = std::max(end, r.endCycle());
    return end;
}

std::string
GanttTrace::render(size_t width) const
{
    const Cycle end = endCycle();
    if (end == 0 || rows_.empty())
        return "(empty trace)\n";

    size_t name_w = 0;
    for (const auto &r : rows_)
        name_w = std::max(name_w, r.name().size());

    std::ostringstream out;
    const double cycles_per_col =
        static_cast<double>(end) / static_cast<double>(width);
    for (const auto &r : rows_) {
        out << r.name() << std::string(name_w - r.name().size(), ' ')
            << " |";
        std::string line(width, ' ');
        for (const auto &iv : r.intervals()) {
            auto c0 = static_cast<size_t>(iv.start / cycles_per_col);
            auto c1 = static_cast<size_t>(
                std::max<double>(iv.end / cycles_per_col,
                                 c0 + 1));
            char mark = iv.label.empty() ? '#' : iv.label.back();
            for (size_t c = c0; c < std::min(c1, width); ++c)
                line[c] = mark;
        }
        out << line << "|\n";
    }
    out << std::string(name_w, ' ') << " 0" << std::string(width - 2, ' ')
        << end << " cycles\n";
    return out.str();
}

} // namespace strix
