/**
 * @file
 * Zama Deep-NN workload generator (Sec. VI-C / Fig. 7).
 *
 * The benchmark network (Chillotti et al., "Programmable
 * bootstrapping enables efficient homomorphic inference of deep
 * neural networks"): 28x28 encrypted input, a 10x11 convolution with
 * ReLU producing [1, 2, 21, 20], then dense layers of 92 neurons with
 * ReLU, and a 10-way linear classifier head. Every ReLU is one PBS.
 */

#ifndef STRIX_WORKLOADS_DEEPNN_H
#define STRIX_WORKLOADS_DEEPNN_H

#include "strix/graph.h"

namespace strix {

/** Shape constants of the Zama Deep-NN family. */
struct DeepNnShape
{
    static constexpr uint32_t kInputPixels = 28 * 28;       // 784
    static constexpr uint32_t kConvKernel = 10 * 11;        // 110
    static constexpr uint32_t kConvOutputs = 1 * 2 * 21 * 20; // 840
    static constexpr uint32_t kDenseWidth = 92;
    static constexpr uint32_t kClasses = 10;
};

/**
 * Build the layered PBS/KS graph of NN-@p depth (20, 50, or 100; any
 * depth >= 3 is accepted). Layer count includes the conv layer and
 * the linear classifier head.
 */
WorkloadGraph buildDeepNn(uint32_t depth);

/** Total PBS count of NN-depth (convenience for tests/benches). */
uint64_t deepNnPbsCount(uint32_t depth);

} // namespace strix

#endif // STRIX_WORKLOADS_DEEPNN_H
