/**
 * @file
 * NoC / global scratchpad model tests.
 */

#include <gtest/gtest.h>

#include "strix/noc.h"

namespace strix {
namespace {

TEST(Noc, WorkingSetFitsForAllPaperSets)
{
    // The 21 MB global scratchpad must hold the double-buffered key
    // tiles plus a full epoch of ciphertexts for every parameter set
    // the paper evaluates -- otherwise the design would not work.
    for (const auto &p : paperParamSets()) {
        NocModel noc(StrixConfig::paperDefault(), p);
        GlobalScratchpadPlan plan = noc.scratchpadPlan();
        EXPECT_TRUE(plan.fits)
            << "set " << p.name << ": " << plan.total_bytes << " > "
            << plan.capacity_bytes;
        EXPECT_GT(plan.total_bytes, 0u);
    }
}

TEST(Noc, BskTileIsDoubleBuffered)
{
    NocModel noc(StrixConfig::paperDefault(), paramsSetI());
    MemorySystem mem(StrixConfig::paperDefault(), paramsSetI());
    EXPECT_EQ(noc.scratchpadPlan().bsk_tile_bytes,
              2 * mem.bskBytesPerIteration());
}

TEST(Noc, MulticastFeasibleAtDesignPoint)
{
    // The 512-bit bsk bus exactly sustains the TvLP=8/CLP=4 design
    // point; the 256-bit ksk bus has ample headroom.
    for (const auto &p : paperParamSets()) {
        NocModel noc(StrixConfig::paperDefault(), p);
        MulticastPlan plan = noc.multicastPlan();
        EXPECT_TRUE(plan.feasible) << "set " << p.name;
        EXPECT_LE(plan.bsk_demand_gbps, plan.bsk_bus_gbps * 1.001);
    }
}

TEST(Noc, BskBusSaturatesExactlyAtDesignPoint)
{
    // Sec. VI-A sizes the bsk bus at 512 bits: at set I the demand
    // equals the capacity (the bus is cut to fit, a classic sizing).
    NocModel noc(StrixConfig::paperDefault(), paramsSetI());
    MulticastPlan plan = noc.multicastPlan();
    EXPECT_NEAR(plan.bsk_demand_gbps / plan.bsk_bus_gbps, 1.0, 0.01);
}

TEST(Noc, DoublingClpOverrunsTheBskBus)
{
    // CLP = 8 doubles the consumption rate; the fixed 512-bit bus can
    // no longer feed it -- the NoC-side counterpart of Table VII's
    // memory-bound transition.
    StrixConfig cfg = StrixConfig::paperDefault();
    cfg.clp = 8;
    NocModel noc(cfg, paramsSetI());
    MulticastPlan plan = noc.multicastPlan();
    EXPECT_GT(plan.bsk_demand_gbps, plan.bsk_bus_gbps);
    EXPECT_FALSE(plan.feasible);
}

TEST(Noc, BusWidthConstants)
{
    EXPECT_EQ(NocModel::kBskBusBits, 512u);
    EXPECT_EQ(NocModel::kKskBusBits, 256u);
    // 512 bits at 1.2 GHz = 76.8 GB/s.
    NocModel noc(StrixConfig::paperDefault(), paramsSetI());
    EXPECT_NEAR(noc.multicastPlan().bsk_bus_gbps, 76.8, 0.1);
}

} // namespace
} // namespace strix
