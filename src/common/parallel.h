/**
 * @file
 * Small persistent worker pool for data-parallel loops.
 *
 * The pool backs the batched PBS path: one ServerContext owns one pool
 * and fans blind rotations of a ciphertext batch out across it. It is
 * deliberately minimal -- a single parallel-for primitive -- rather
 * than a general task system; everything the batching seam needs is
 * "run f(i) for i in [0, count) on K threads with per-thread scratch".
 */

#ifndef STRIX_COMMON_PARALLEL_H
#define STRIX_COMMON_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace strix {

/**
 * Fixed-size pool of persistent worker threads driving parallelFor.
 *
 * parallelFor(count, fn) invokes fn(index, worker) exactly once for
 * every index in [0, count). The calling thread participates as
 * worker 0; pool threads are workers 1..threads()-1, so `worker` can
 * index per-thread scratch storage of size threads(). Indices are
 * handed out dynamically (one shared atomic counter) for load
 * balance; callers that need deterministic output write results by
 * index, which makes the result independent of the schedule.
 *
 * Thread safety: concurrent parallelFor calls from different threads
 * are safe -- submission is internally serialized, so they simply run
 * one after another.
 *
 * Error contract: if fn throws, the loop stops handing out new
 * indices, in-flight indices on other workers still complete, and the
 * *first* exception (in completion order) is rethrown on the calling
 * thread once the loop has quiesced; later exceptions are dropped.
 * Indices never handed out are never attempted, and the pool remains
 * fully usable afterwards. This contract is identical whether the
 * loop runs inline (a 1-thread pool, or count == 1) or across N
 * workers -- the inline fallback goes through the same abort/record/
 * deferred-rethrow machinery, asserted by tests/test_parallel.cpp.
 */
class ThreadPool
{
  public:
    /**
     * @param threads total worker count including the caller;
     *                0 means defaultThreadCount(). 1 runs inline with
     *                no extra threads.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers including the calling thread: >= 1. */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /** Run fn(index, worker) for every index in [0, count). */
    void parallelFor(size_t count,
                     const std::function<void(size_t, unsigned)> &fn)
        STRIX_EXCLUDES(submit_mutex_, m_);

    /**
     * Pool size used when the constructor gets 0: the STRIX_THREADS
     * environment variable if set to a positive integer in [1, 4096],
     * otherwise std::thread::hardware_concurrency() (minimum 1).
     * Anything else -- including negative values, which strtoul would
     * otherwise silently wrap into the accepted range -- is rejected
     * with a warning and falls back to the hardware default.
     */
    static unsigned defaultThreadCount();

  private:
    void workerLoop(unsigned worker);
    void runShare(const std::function<void(size_t, unsigned)> &fn,
                  size_t count, unsigned worker);

    std::vector<std::thread> workers_; //!< immutable after construction

    Mutex submit_mutex_; //!< serializes parallelFor callers

    // Job state, guarded by m_ except the two atomics: next_ and
    // abort_ are the lock-free mid-job fast path every worker hammers
    // (relaxed order suffices -- each job resets them under the
    // submission serialization before any worker observes the new
    // generation, and indices carry no payload).
    Mutex m_;
    CondVar cv_;      //!< wakes workers on a new job
    CondVar done_cv_; //!< wakes the submitting caller
    const std::function<void(size_t, unsigned)> *fn_
        STRIX_GUARDED_BY(m_) = nullptr;
    size_t count_ STRIX_GUARDED_BY(m_) = 0;
    std::atomic<size_t> next_{0};    //!< next index to hand out
    std::atomic<bool> abort_{false}; //!< set on first exception
    unsigned busy_ STRIX_GUARDED_BY(m_) = 0; //!< workers still on job
    uint64_t generation_ STRIX_GUARDED_BY(m_) = 0; //!< bumped per job
    bool stop_ STRIX_GUARDED_BY(m_) = false;
    std::exception_ptr first_error_ STRIX_GUARDED_BY(m_);
};

} // namespace strix

#endif // STRIX_COMMON_PARALLEL_H
