/**
 * @file
 * Client-side circuit convenience: encrypt, evaluate, decrypt.
 *
 * Deliberately separate from workloads/circuit.h: the netlist and its
 * server-side evaluation path must stay compilable without
 * tfhe/client_keyset.h (the secret-isolation rule tools/lint enforces),
 * so the single wrapper that *does* need secret keys lives here. Only
 * client-side code -- tests, examples, a trusted session runtime --
 * should include this header.
 */

#ifndef STRIX_WORKLOADS_CIRCUIT_CLIENT_H
#define STRIX_WORKLOADS_CIRCUIT_CLIENT_H

#include <vector>

#include "tfhe/client_keyset.h"
#include "workloads/circuit.h"

namespace strix {

/**
 * End-to-end convenience for single-process use: encrypt @p inputs
 * under @p client, evaluate @p circuit on @p server, decrypt the
 * outputs with @p client.
 */
std::vector<bool> evalEncrypted(const Circuit &circuit,
                                const ClientKeyset &client,
                                const ServerContext &server,
                                const std::vector<bool> &inputs);

} // namespace strix

#endif // STRIX_WORKLOADS_CIRCUIT_CLIENT_H
