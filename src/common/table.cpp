/**
 * @file
 * TextTable implementation.
 */

#include "common/table.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace strix {

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != ',' && c != 'x' && c != '%' &&
            c != 'e' && c != 'E')
            return false;
    }
    return true;
}

} // namespace

void
TextTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
TextTable::row(std::vector<std::string> cols)
{
    rows_.push_back({std::move(cols), false});
}

void
TextTable::separator()
{
    rows_.push_back({{}, true});
}

std::string
TextTable::render() const
{
    // Compute column widths.
    std::vector<size_t> widths;
    auto fit = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    fit(header_);
    for (const auto &r : rows_)
        if (!r.is_separator)
            fit(r.cells);

    std::ostringstream out;
    auto emitSep = [&]() {
        for (size_t i = 0; i < widths.size(); ++i) {
            out << '+' << std::string(widths[i] + 2, '-');
        }
        out << "+\n";
    };
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            bool right = looksNumeric(cell);
            out << "| ";
            if (right)
                out << std::string(widths[i] - cell.size(), ' ') << cell;
            else
                out << cell << std::string(widths[i] - cell.size(), ' ');
            out << ' ';
        }
        out << "|\n";
    };

    emitSep();
    if (!header_.empty()) {
        emitRow(header_);
        emitSep();
    }
    for (const auto &r : rows_) {
        if (r.is_separator)
            emitSep();
        else
            emitRow(r.cells);
    }
    emitSep();
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TextTable::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TextTable::numSep(uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace strix
