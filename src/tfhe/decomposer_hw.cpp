/**
 * @file
 * Streaming decomposer implementation.
 */

#include "tfhe/decomposer_hw.h"

#include "common/logging.h"

namespace strix {

StreamingDecomposer::StreamingDecomposer(const GadgetParams &g) : g_(g)
{
    panicIfNot(g.base_bits * g.levels <= 32,
               "decomposer: gadget exceeds torus width");
    const uint32_t keep = g.base_bits * g.levels;
    // Rounding to the nearest multiple of 2^(32-keep): add half an ulp
    // of the kept grid, then mask away the dropped bits. keep == 32
    // means nothing is rounded away.
    if (keep == 32) {
        round_carry_ = 0;
        round_mask_ = ~Torus32{0};
    } else {
        round_carry_ = Torus32{1} << (kTorus32Bits - keep - 1);
        round_mask_ = ~((Torus32{1} << (kTorus32Bits - keep)) - 1);
    }

    level_mask_.resize(g.levels);
    level_shift_.resize(g.levels);
    for (uint32_t j = 1; j <= g.levels; ++j) {
        level_shift_[j - 1] = kTorus32Bits - j * g.base_bits;
        level_mask_[j - 1] = (g.base() - 1u) << level_shift_[j - 1];
    }
}

Torus32
StreamingDecomposer::roundStep(Torus32 coeff) const
{
    return (coeff + round_carry_) & round_mask_;
}

void
StreamingDecomposer::decomposeOne(int32_t *digits, Torus32 coeff) const
{
    const Torus32 rounded = roundStep(coeff);
    const auto base = g_.base();
    const auto half = base >> 1;

    // Extraction: walk levels from least significant (largest j)
    // upward, propagating a carry whenever the unsigned digit falls in
    // the upper half -- the paper's "add it to the carry (zero or one)
    // from the previous extracted bit".
    uint32_t carry = 0;
    for (uint32_t j = g_.levels; j >= 1; --j) {
        uint32_t u =
            ((rounded & level_mask_[j - 1]) >> level_shift_[j - 1]) + carry;
        if (u >= half) {
            digits[j - 1] = static_cast<int32_t>(u) -
                            static_cast<int32_t>(base);
            carry = 1;
        } else {
            digits[j - 1] = static_cast<int32_t>(u);
            carry = 0;
        }
    }
    // A carry out of the most-significant level wraps mod 2^32 on the
    // torus and is dropped, exactly as in the reference decomposition.
}

void
StreamingDecomposer::push(Torus32 coeff)
{
    rounded_fifo_.push_back(roundStep(coeff));
    // The extraction stage drains one buffered coefficient into
    // `levels` digit outputs; model the fixed-rate drain by expanding
    // immediately into the output FIFO (order: level 0 first, the
    // bsk row order).
    Torus32 rounded = rounded_fifo_.front();
    rounded_fifo_.pop_front();
    std::vector<int32_t> digits(g_.levels);
    // Reuse the combinational lane on the already-rounded value; the
    // rounding step is idempotent.
    decomposeOne(digits.data(), rounded);
    for (uint32_t j = 0; j < g_.levels; ++j)
        out_fifo_.emplace_back(digits[j], j);
}

int32_t
StreamingDecomposer::pop(uint32_t &level)
{
    panicIfNot(!out_fifo_.empty(), "decomposer pop on empty FIFO");
    auto [digit, lvl] = out_fifo_.front();
    out_fifo_.pop_front();
    level = lvl;
    return digit;
}

void
streamingDecomposePoly(std::vector<IntPolynomial> &out,
                       const TorusPolynomial &poly, const GadgetParams &g)
{
    StreamingDecomposer dec(g);
    const size_t n = poly.size();
    // (clear+emplace rather than assign(count, proto): GCC 12's
    // -Wfree-nonheap-object misfires on the inlined prototype dtor.)
    out.clear();
    out.reserve(g.levels);
    for (uint32_t j = 0; j < g.levels; ++j)
        out.emplace_back(n);
    size_t coeff_idx = 0;
    for (size_t i = 0; i < n; ++i) {
        dec.push(poly[i]);
        while (dec.outputReady()) {
            uint32_t level = 0;
            int32_t d = dec.pop(level);
            out[level][coeff_idx] = d;
            if (level == g.levels - 1)
                ++coeff_idx;
        }
    }
    panicIfNot(coeff_idx == n, "streaming decomposer lost coefficients");
}

} // namespace strix
