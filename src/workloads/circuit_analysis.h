/**
 * @file
 * Static noise-budget analysis and bootstrap-eliding circuit plans.
 *
 * The naive Circuit::evalEncrypted path bootstraps every 2-input gate
 * -- the Strix premise that PBS dominates everything, paid in full.
 * But a PBS is only *required* when a gate's output must return to
 * the standard +-1/8 sign encoding with fresh noise; XOR-shaped gates
 * are torus-linear and can defer that normalization. This module is
 * the compile-time pass that decides, per gate, whether the PBS can
 * be elided, and proves with the analytic NoiseModel that every
 * deferred bootstrap still decodes:
 *
 *  - **XOR/XNOR elision.** A bit b is encrypted as phase (2b-1)*e
 *    with amplitude e = 1/8. For operands of amplitude e, the
 *    combination sum_i (1/(4 e_i)) * x_i + 1/4 has phase +-1/4 whose
 *    sign is the XOR of the operand bits (this is exactly the linear
 *    form gateXor feeds its sign bootstrap). Skipping the bootstrap
 *    leaves a *wide* wire of amplitude 1/4 that decodes by sign like
 *    any other, XORs onward with weight 1, negates for free (NOT /
 *    XNOR), and re-enters the standard domain through any later sign
 *    bootstrap. Non-XOR gates cannot consume wide wires (their
 *    +-1/8-grid linear forms wrap the torus), so a gate is elided
 *    only when every transitive consumer is XOR-shaped, a free NOT,
 *    or a primary output.
 *
 *  - **Majority fusion.** The ripple-carry idiom
 *    `Or(And(x,y), And(Xor(x,y), z))` is the 3-input majority, and
 *    majority of three +-1/8 wires is the *sign of x + y + z*: one
 *    PBS replaces three, and it frees the Xor(x,y) wire (its And
 *    consumer disappears) for elision. Fused And/Or nodes are never
 *    computed.
 *
 *  - **Noise-budget proof.** Per-wire worst-case variance is
 *    propagated through NoiseModel: fresh inputs, linear-combination
 *    growth for elided gates, pbsOutput() at each surviving
 *    bootstrap, modSwitch() at each PBS input. A plan is *feasible*
 *    when every surviving PBS input and every primary output keeps
 *    its phase inside the decoding margin at z standard deviations
 *    (the budget knob). When an elision overdraws the budget the
 *    analyzer un-elides the worst offender and retries; when even the
 *    all-bootstrap plan cannot meet the budget it reports lint-style
 *    diagnostics with the offending wire chain instead of silently
 *    under-bootstrapping.
 *
 *  - **Levelization.** The surviving PBS ops are levelized by
 *    dependency depth so Circuit::evalEncrypted(plan) lands all PBS
 *    of a level in one bootstrapBatch sweep (or one submitBootstrap
 *    volley through an attached BatchExecutor) -- turning the
 *    latency-bound gate stream into width-bound batches. This is the
 *    single level computation Circuit::levels()/depth()/
 *    toWorkloadGraph() now delegate to.
 *
 * The reference for the optimization framing is Benhamouda et al.,
 * "Optimization of Bootstrapping in Circuits" (see PAPERS.md).
 */

#ifndef STRIX_WORKLOADS_CIRCUIT_ANALYSIS_H
#define STRIX_WORKLOADS_CIRCUIT_ANALYSIS_H

#include <cstdint>
#include <string>
#include <vector>

#include "tfhe/noise.h"
#include "workloads/circuit.h"

namespace strix {

/** How a node is realized by the planned evaluation. */
enum class PlanAction : uint8_t
{
    Wire,      //!< Input/Const: a value appears, nothing is computed
    Linear,    //!< LWE linear combination only -- PBS elided (free)
    Bootstrap, //!< linear combination + sign PBS + KS (1 PBS; MUX: 2)
    Fused,     //!< absorbed into a majority bootstrap, never computed
};

/** Sign-encoding amplitude of a wire's phase. */
enum class WireEncoding : uint8_t
{
    Std8,  //!< +-1/8: fresh encryptions and bootstrap outputs
    Wide4, //!< +-1/4: elided XOR/XNOR chains (decodes by sign)
};

/** How the relaxation loop picks the elided wire to revert when a
 * noise budget is violated. */
enum class UnelidePolicy : uint8_t
{
    /**
     * Cost-based: trial-pin candidates from the violation's ancestor
     * cone and keep a single pin that provably restores *every*
     * budget -- one PBS spent where the greedy policy may burn
     * several (a shared trunk fixes all its sinks at once; the
     * max-variance wire may fix only one). Candidates are tried in
     * descending-variance order; when no single pin suffices the
     * policy falls back to MaxVariance for guaranteed progress.
     */
    CheapestSufficient,
    /** Greedy legacy policy: always the max-variance elided wire in
     * the violation cone, re-checking after each revert. */
    MaxVariance,
};

/** Analysis knobs. */
struct AnalysisOptions
{
    /**
     * Noise budget in standard deviations: every surviving PBS input
     * and every primary output must keep its predicted phase stddev
     * below margin/z, where margin is the distance from the nominal
     * phase to the nearest decoding boundary (1/8 for standard-gate
     * linear forms, 1/4 for wide wires). Higher z = stricter budget;
     * an unmeetable z yields an infeasible plan with diagnostics.
     */
    double z = 6.0;

    /** Allow XOR/XNOR PBS elision (off = bootstrap every gate). */
    bool elide = true;

    /** Recognize Or(And(x,y),And(Xor(x,y),z)) as one majority PBS. */
    bool fuse_majority = true;

    /**
     * Variance of the primary-input ciphertexts. Negative means
     * "fresh client encryption" (NoiseModel::freshLwe()); pass
     * pbsOutput() when chaining circuits on bootstrapped outputs.
     */
    double input_variance = -1.0;

    /** Budget-relaxation revert policy (see UnelidePolicy). */
    UnelidePolicy unelide = UnelidePolicy::CheapestSufficient;
};

/**
 * The reusable output of the analysis: per-node action, level
 * assignment and predicted variance, plus plan-wide PBS accounting
 * and feasibility diagnostics. Produced by CircuitAnalyzer (or the
 * analyzeCircuit convenience) and consumed by
 * Circuit::evalEncrypted(server, inputs, plan) and
 * Circuit::toWorkloadGraph(plan).
 */
class CircuitPlan
{
  public:
    /** Per-node plan entry. */
    struct Node
    {
        PlanAction action = PlanAction::Bootstrap;
        WireEncoding encoding = WireEncoding::Std8;
        /** PBS level (Wire/Linear nodes: level of their operands). */
        uint32_t level = 0;
        /** Predicted worst-case variance of the node's output wire. */
        double variance = 0.0;
        /**
         * Predicted variance at the PBS decision (linear form +
         * modulus switch); 0 for non-bootstrap nodes. MUX reports the
         * larger of its two linear forms.
         */
        double pbs_input_variance = 0.0;
        /** Bootstraps this node performs (0, 1, or 2 for MUX). */
        uint8_t pbs = 0;
        /** True for the majority bootstrap replacing a fused idiom. */
        bool majority = false;
        /** Majority operands (valid when majority is true). */
        Wire maj_x = 0, maj_y = 0, maj_z = 0;
    };

    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(Wire w) const { return nodes_[w]; }
    size_t numNodes() const { return nodes_.size(); }

    /** Max PBS level (0 = no bootstraps survive). */
    uint32_t depth() const { return depth_; }

    /** Surviving bootstraps under this plan. */
    uint64_t pbsCount() const { return pbs_count_; }

    /** Bootstraps the naive path would run. */
    uint64_t naivePbsCount() const { return naive_pbs_; }

    /** PBS removed by elision + fusion (naive - planned). */
    uint64_t elidedPbs() const { return naive_pbs_ - pbs_count_; }

    /** Elided fraction of the naive PBS count, in [0, 1]. */
    double elisionRatio() const
    {
        return naive_pbs_ == 0
                   ? 0.0
                   : double(elidedPbs()) / double(naive_pbs_);
    }

    /** Predicted phase stddev of wire @p w. */
    double predictedStddev(Wire w) const;

    /** Budget (stddev multiplier) the plan was proven against. */
    double z() const { return z_; }

    /**
     * True when every surviving PBS input and primary output meets
     * the z-sigma budget. Infeasible plans carry diagnostics() and
     * are rejected by Circuit::evalEncrypted(plan).
     */
    bool feasible() const { return feasible_; }

    /**
     * Lint-style diagnostics (one string per violated budget, with a
     * wire chain tracing the dominant noise contributors); empty when
     * feasible.
     */
    const std::vector<std::string> &diagnostics() const
    {
        return diagnostics_;
    }

    /** One-line accounting summary for benches and examples. */
    std::string summary() const;

  private:
    friend class CircuitAnalyzer;

    std::vector<Node> nodes_;
    std::string circuit_name_;
    uint32_t depth_ = 0;
    uint64_t pbs_count_ = 0;
    uint64_t naive_pbs_ = 0;
    double z_ = 6.0;
    bool feasible_ = true;
    std::vector<std::string> diagnostics_;
};

/**
 * The dataflow pass: builds a CircuitPlan for one (circuit, params)
 * pair. Stateless between calls; cheap enough to run per-request, but
 * the plan is reusable across any number of evaluations under any
 * EvalKeys bundle with the same parameters.
 */
class CircuitAnalyzer
{
  public:
    CircuitAnalyzer(const Circuit &circuit, const TfheParams &params,
                    const AnalysisOptions &options = {})
        : circuit_(circuit), params_(params), options_(options)
    {
    }

    /** Run the analysis. */
    CircuitPlan plan() const;

    /**
     * Params-free naive levelization: every 2-input gate and MUX is
     * one PBS level above its operands, NOT rides its operand's
     * level, inputs/consts sit at level 0. This is the single level
     * computation Circuit::levels()/depth()/toWorkloadGraph() use.
     */
    static std::vector<uint32_t> naiveLevels(const Circuit &circuit);

  private:
    const Circuit &circuit_;
    const TfheParams &params_;
    AnalysisOptions options_;
};

/** Convenience: CircuitAnalyzer(circuit, params, options).plan(). */
CircuitPlan analyzeCircuit(const Circuit &circuit,
                           const TfheParams &params,
                           const AnalysisOptions &options = {});

} // namespace strix

#endif // STRIX_WORKLOADS_CIRCUIT_ANALYSIS_H
