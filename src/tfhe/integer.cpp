/**
 * @file
 * Encrypted integer arithmetic implementation.
 */

#include "tfhe/integer.h"

#include "common/logging.h"

namespace strix {

namespace {

/** Trivial encryption of digit 0 in the centered encoding. */
LweCiphertext
trivialZero(uint32_t dim, uint64_t space)
{
    return LweCiphertext::trivial(dim, encodeLut(0, space));
}

} // namespace

EncryptedUint
IntegerOps::encrypt(const ClientKeyset &client, uint64_t value,
                    uint32_t num_digits) const
{
    EncryptedUint out;
    out.digit_bits = digit_bits_;
    out.digits.reserve(num_digits);
    for (uint32_t i = 0; i < num_digits; ++i) {
        out.digits.push_back(
            client.encryptInt(int64_t(value % base()), space()));
        value /= base();
    }
    return out;
}

uint64_t
IntegerOps::decrypt(const ClientKeyset &client,
                    const EncryptedUint &x) const
{
    uint64_t value = 0;
    for (uint32_t i = x.numDigits(); i-- > 0;) {
        value = value * base() +
                uint64_t(client.decryptInt(x.digits[i], space()));
    }
    return value;
}

LweCiphertext
IntegerOps::recenter(LweCiphertext sum, uint32_t terms) const
{
    // Each centered term contributes +1/(4p); keep exactly one.
    int32_t extra = int32_t(terms) - 1;
    if (extra != 0) {
        Torus32 half = encodeMessage(1, 4 * space());
        LweCiphertext fix = LweCiphertext::trivial(
            sum.dim(), 0u - static_cast<uint32_t>(extra) * half);
        sum.addAssign(fix);
    }
    return sum;
}

EncryptedUint
IntegerOps::add(const EncryptedUint &a, const EncryptedUint &b) const
{
    panicIfNot(a.numDigits() == b.numDigits(),
               "integer add: digit count mismatch");
    const uint32_t n = a.numDigits();
    const uint64_t p = space();
    const int64_t b_val = base();

    EncryptedUint out;
    out.digit_bits = digit_bits_;
    out.digits.reserve(n);
    LweCiphertext carry = trivialZero(server_.params().n, p);
    for (uint32_t i = 0; i < n; ++i) {
        LweCiphertext s = a.digits[i];
        s.addAssign(b.digits[i]);
        s.addAssign(carry);
        s = recenter(std::move(s), 3);
        // s in [0, 2B-1]: split into digit and carry with two PBS.
        out.digits.push_back(server_.applyLut(
            s, p, [b_val](int64_t v) { return v % b_val; }));
        if (i + 1 < n) {
            carry = server_.applyLut(
                s, p, [b_val](int64_t v) { return v / b_val; });
        }
    }
    return out;
}

EncryptedUint
IntegerOps::sub(const EncryptedUint &a, const EncryptedUint &b) const
{
    panicIfNot(a.numDigits() == b.numDigits(),
               "integer sub: digit count mismatch");
    const uint32_t n = a.numDigits();
    const uint64_t p = space();
    const int64_t b_val = base();

    EncryptedUint out;
    out.digit_bits = digit_bits_;
    out.digits.reserve(n);
    LweCiphertext borrow = trivialZero(server_.params().n, p);
    for (uint32_t i = 0; i < n; ++i) {
        // t = a - b - borrow + B, in [0, 2B-1].
        LweCiphertext t = a.digits[i];
        t.subAssign(b.digits[i]);
        t.subAssign(borrow);
        // offsets: +1 (a) - 1 (b) - 1 (borrow) = -1; recenter to +1.
        t = recenter(std::move(t), static_cast<uint32_t>(-1));
        LweCiphertext shift = LweCiphertext::trivial(
            t.dim(), encodeMessage(2 * b_val, int64_t(4 * p)));
        t.addAssign(shift);
        out.digits.push_back(server_.applyLut(
            t, p, [b_val](int64_t v) { return v % b_val; }));
        if (i + 1 < n) {
            borrow = server_.applyLut(
                t, p, [b_val](int64_t v) { return v < b_val ? 1 : 0; });
        }
    }
    return out;
}

EncryptedUint
IntegerOps::addScalar(const EncryptedUint &a, uint64_t value) const
{
    EncryptedUint b;
    b.digit_bits = digit_bits_;
    const uint32_t dim = server_.params().n;
    for (uint32_t i = 0; i < a.numDigits(); ++i) {
        b.digits.push_back(LweCiphertext::trivial(
            dim, encodeLut(int64_t(value % base()), space())));
        value /= base();
    }
    return add(a, b);
}

LweCiphertext
IntegerOps::equal(const EncryptedUint &a, const EncryptedUint &b) const
{
    panicIfNot(a.numDigits() == b.numDigits(),
               "integer equal: digit count mismatch");
    panicIfNot(a.numDigits() < space(),
               "integer equal: too many digits for the match counter");
    const uint64_t p = space();
    const int64_t b_val = base();
    const int64_t n = a.numDigits();

    // Per digit: d = a - b + B in [1, 2B-1]; eq <=> d == B. Sum the
    // per-digit indicators and compare against the digit count.
    LweCiphertext acc = trivialZero(server_.params().n, p);
    for (uint32_t i = 0; i < a.numDigits(); ++i) {
        LweCiphertext d = a.digits[i];
        d.subAssign(b.digits[i]);
        d = recenter(std::move(d), 0);
        LweCiphertext shift = LweCiphertext::trivial(
            d.dim(), encodeMessage(2 * b_val, int64_t(4 * p)));
        d.addAssign(shift);
        LweCiphertext eq = server_.applyLut(
            d, p, [b_val](int64_t v) { return v == b_val ? 1 : 0; });
        acc.addAssign(eq);
    }
    acc = recenter(std::move(acc),
                   static_cast<uint32_t>(a.numDigits() + 1));
    return server_.applyLut(acc, p,
                         [n](int64_t v) { return v == n ? 1 : 0; });
}

LweCiphertext
IntegerOps::notBit(const LweCiphertext &b) const
{
    // 1 - b: e(1) - e(b) = e(1-b) - half; recenter by one half-step.
    LweCiphertext out =
        LweCiphertext::trivial(b.dim(), encodeLut(1, space()));
    out.subAssign(b);
    LweCiphertext fix = LweCiphertext::trivial(
        out.dim(), encodeMessage(1, 4 * space()));
    out.addAssign(fix);
    return out;
}

LweCiphertext
IntegerOps::trivialDigit(uint64_t value) const
{
    return LweCiphertext::trivial(server_.params().n,
                                  encodeLut(int64_t(value % base()),
                                            space()));
}

LweCiphertext
IntegerOps::selectDigit(const LweCiphertext &sel, const LweCiphertext &hi,
                        const LweCiphertext &lo) const
{
    const uint64_t p = space();
    const int64_t b_val = base();

    // pack = sel * base + x, uniquely encoding (sel, x) in [0, 2B).
    auto pack = [&](const LweCiphertext &x) {
        LweCiphertext s = sel;
        s.scalarMulAssign(int32_t(b_val));
        // Scaling the centered encoding by B leaves B half-offsets;
        // together with x's we have B+1; keep exactly one.
        s.addAssign(x);
        LweCiphertext fix = LweCiphertext::trivial(
            s.dim(),
            0u - static_cast<uint32_t>(b_val) *
                     encodeMessage(1, 4 * p));
        s.addAssign(fix);
        return s;
    };

    // hi-half: keep x when sel = 1; lo-half: keep x when sel = 0.
    LweCiphertext keep_hi = server_.applyLut(
        pack(hi), p,
        [b_val](int64_t v) { return v >= b_val ? v - b_val : 0; });
    LweCiphertext keep_lo = server_.applyLut(
        pack(lo), p,
        [b_val](int64_t v) { return v < b_val ? v : 0; });
    keep_hi.addAssign(keep_lo);
    return recenter(std::move(keep_hi), 2);
}

LweCiphertext
IntegerOps::lessThan(const EncryptedUint &a, const EncryptedUint &b) const
{
    panicIfNot(a.numDigits() == b.numDigits(),
               "integer lessThan: digit count mismatch");
    const uint64_t p = space();
    const int64_t b_val = base();

    // Borrow chain of a - b: the final borrow is 1 iff a < b.
    LweCiphertext borrow = trivialZero(server_.params().n, p);
    for (uint32_t i = 0; i < a.numDigits(); ++i) {
        LweCiphertext t = a.digits[i];
        t.subAssign(b.digits[i]);
        t.subAssign(borrow);
        t = recenter(std::move(t), static_cast<uint32_t>(-1));
        LweCiphertext shift = LweCiphertext::trivial(
            t.dim(), encodeMessage(2 * b_val, int64_t(4 * p)));
        t.addAssign(shift);
        borrow = server_.applyLut(
            t, p, [b_val](int64_t v) { return v < b_val ? 1 : 0; });
    }
    return borrow;
}

} // namespace strix
