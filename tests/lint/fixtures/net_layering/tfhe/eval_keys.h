// Fixture stand-in for the real tfhe/eval_keys.h.
#ifndef FIXTURE_TFHE_EVAL_KEYS_H
#define FIXTURE_TFHE_EVAL_KEYS_H
struct EvalKeys
{
};
#endif
