/**
 * @file
 * Decision-tree inference implementation.
 */

#include "workloads/decision_tree.h"

#include "common/logging.h"
#include "common/random.h"

namespace strix {

void
DecisionTree::setNode(size_t i, uint32_t feature, uint64_t threshold)
{
    panicIfNot(i < nodes_.size(), "tree node index out of range");
    panicIfNot(feature < num_features_, "tree feature out of range");
    nodes_[i] = {feature, threshold};
}

uint64_t
DecisionTree::predictPlain(const std::vector<uint64_t> &features) const
{
    panicIfNot(features.size() == num_features_,
               "tree: wrong feature count");
    size_t i = 0;
    while (i < nodes_.size()) {
        const Node &n = nodes_[i];
        bool right = features[n.feature] >= n.threshold;
        i = 2 * i + (right ? 2 : 1);
    }
    return leaves_[i - nodes_.size()];
}

LweCiphertext
DecisionTree::predictEncrypted(
    const IntegerOps &ops, const std::vector<EncryptedUint> &features) const
{
    panicIfNot(features.size() == num_features_,
               "tree: wrong encrypted feature count");
    const uint32_t digits = features[0].numDigits();

    // Phase 1: all comparisons (independent, one layer). Decision
    // bit d_i = 1 means "go right" (feature >= threshold), computed
    // as NOT (feature < threshold).
    std::vector<LweCiphertext> decide(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
        EncryptedUint thr;
        thr.digit_bits = features[0].digit_bits;
        uint64_t t = nodes_[i].threshold;
        for (uint32_t d = 0; d < digits; ++d) {
            thr.digits.push_back(ops.trivialDigit(t % ops.base()));
            t /= ops.base();
        }
        decide[i] =
            ops.notBit(ops.lessThan(features[nodes_[i].feature], thr));
    }

    // Phase 2: oblivious leaf selection, bottom-up MUX reduction.
    std::vector<LweCiphertext> vals;
    vals.reserve(leaves_.size());
    for (uint64_t leaf : leaves_)
        vals.push_back(ops.trivialDigit(leaf));

    // Internal nodes of level l occupy indices [2^l - 1, 2^{l+1} - 1).
    for (uint32_t level = depth_; level-- > 0;) {
        const size_t first = (size_t{1} << level) - 1;
        const size_t count = size_t{1} << level;
        std::vector<LweCiphertext> next;
        next.reserve(count);
        for (size_t j = 0; j < count; ++j) {
            next.push_back(ops.selectDigit(decide[first + j],
                                           vals[2 * j + 1],
                                           vals[2 * j]));
        }
        vals = std::move(next);
    }
    panicIfNot(vals.size() == 1, "tree reduction did not converge");
    return vals[0];
}

WorkloadGraph
DecisionTree::toWorkloadGraph(uint32_t digits) const
{
    WorkloadGraph g("tree-d" + std::to_string(depth_));
    // One comparison layer: every internal node's borrow chain runs
    // independently (digits PBS each).
    g.addLayer({"compare", nodes_.size() * digits,
                nodes_.size() * digits * 4});
    // MUX reduction: one layer per level, 2 PBS per select.
    for (uint32_t level = depth_; level-- > 0;) {
        const uint64_t count = uint64_t{1} << level;
        g.addLayer({"select-" + std::to_string(level), count * 2,
                    count * 4});
    }
    return g;
}

DecisionTree
randomTree(uint32_t depth, uint32_t num_features, uint64_t feature_space,
           uint64_t seed)
{
    Rng rng(seed);
    DecisionTree tree(depth, num_features);
    for (size_t i = 0; i < tree.numNodes(); ++i) {
        tree.setNode(i,
                     static_cast<uint32_t>(rng.uniformBelow(num_features)),
                     rng.uniformBelow(feature_space));
    }
    for (size_t i = 0; i < tree.numLeaves(); ++i)
        tree.setLeaf(i, rng.uniformBelow(4)); // class labels 0..3
    return tree;
}

} // namespace strix
