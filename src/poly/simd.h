/**
 * @file
 * Runtime-dispatched kernel tables for the hot transform loops.
 *
 * Every cycle of a software PBS is spent in four loops: the FFT
 * butterfly stages, the fold+twist feeding the negacyclic transform,
 * the untwist+round leaving it, and the frequency-domain
 * multiply-accumulate of the external product. This header exposes
 * those loops as a table of C function pointers so that one CPUID
 * check at startup -- not an #ifdef at build time -- decides whether
 * the AVX2+FMA implementations or the portable scalar reference runs.
 *
 * Dispatch contract:
 *  - scalarKernels() is always available and is the semantic
 *    reference; the vector backends must match it to floating-point
 *    rounding (tests/test_fft.cpp cross-checks every table entry over
 *    every plan size the parameter sets use).
 *  - avx2Kernels() returns nullptr unless the binary was built with
 *    STRIX_SIMD=ON *and* the running CPU reports AVX2 and FMA.
 *  - activeKernels() picks the best available table once (latched on
 *    first call); setting the environment variable STRIX_FORCE_SCALAR
 *    to anything but "0"/"" before first use forces the scalar table,
 *    which is how the benchmarks A/B the two paths in one binary.
 *
 * Adding a backend (NEON, AVX-512) means adding one translation unit
 * defining another PolyKernels table plus a probe in simd.cpp --
 * nothing above src/poly changes.
 */

#ifndef STRIX_POLY_SIMD_H
#define STRIX_POLY_SIMD_H

#include <cstddef>
#include <cstdint>

#include "poly/complex_fft.h"

namespace strix {

/**
 * Borrowed view of one FftPlan's precomputed tables, laid out for
 * vector-friendly access.
 */
struct FftTables
{
    size_t m;                    //!< transform size (power of two >= 2)
    const uint32_t *bit_reverse; //!< m permutation indices
    /**
     * Stage-major twiddles: for stage len = 2, 4, ..., m (in that
     * order), the len/2 factors w_len^j = exp(+2*pi*i*j/len) stored
     * contiguously; m-1 entries total. Contiguous per-stage storage is
     * what lets the vector butterflies load twiddles with plain
     * unaligned loads instead of gathers.
     */
    const Cplx *stage_twiddles;
};

/**
 * One backend's implementations of the transform hot loops. All
 * pointers are non-null in a published table.
 */
struct PolyKernels
{
    const char *name; //!< "scalar", "avx2", ... (stable, test-visible)

    /** In-place forward DIT FFT (positive exponent), bit-reversal included. */
    void (*fftForward)(const FftTables &t, Cplx *data);

    /**
     * Batched in-place forward FFT over @p batch contiguous
     * transforms: member b occupies data[b*m, (b+1)*m). Semantically
     * identical to calling fftForward on each member -- the tests
     * assert bit-exact agreement -- but the stage loop is fused: after
     * per-member bit reversal, each butterfly stage sweeps the whole
     * batch before the next stage runs. Member starts are multiples of
     * m (itself a multiple of every stage length), so one base sweep
     * over batch*m elements never straddles a member boundary, and the
     * vector backend can hoist a small stage's twiddles into registers
     * once per stage instead of reloading them per transform. This is
     * the software analogue of Strix's streaming FFT: the (k+1)*l
     * decomposition digits of an external product go through the plan
     * as one scheduled batch.
     */
    void (*fftForwardBatch)(const FftTables &t, Cplx *data, size_t batch);

    /** In-place inverse FFT (negative exponent), scaled by 1/m. */
    void (*fftInverse)(const FftTables &t, Cplx *data);

    /**
     * Fold+twist entering the negacyclic transform:
     * out[j] = (lo[j] + i*hi[j]) * tw[j] for j in [0, m). lo/hi are
     * the low/high halves of the length-2m coefficient array (signed
     * centered lift for torus inputs).
     */
    void (*twist)(Cplx *out, const int32_t *lo, const int32_t *hi,
                  const Cplx *tw, size_t m);

    /**
     * Batched fold+twist over a contiguous digit matrix: row b of
     * @p coeffs is the length-2m coefficient array of one polynomial
     * (so lo = coeffs + b*2m, hi = lo + m), and row b of @p out is its
     * m twisted points. Bit-identical to calling twist per row; a
     * separate entry so backends may amortize the shared twist table
     * across the batch.
     */
    void (*twistBatch)(Cplx *out, const int32_t *coeffs, const Cplx *tw,
                       size_t m, size_t batch);

    /**
     * Untwist+round leaving the negacyclic transform: for
     * u = freq[j] * conj(tw[j]), store round(u.re) mod 2^32 into
     * lo[j] and round(u.im) mod 2^32 into hi[j].
     *
     * Contract: |u| < 2^51 for every element. That is the validity
     * bound of the vector backends' magic-number rounding, and every
     * shipped parameter set stays below ~2^50 (inner products of N
     * decomposed coefficients: N * Bg/2 * 2^31). Backends may differ
     * on exact-.5 ties (round-half-even vs half-away), a one-ulp
     * slack the tests allow.
     */
    void (*untwist)(uint32_t *lo, uint32_t *hi, const Cplx *freq,
                    const Cplx *tw, size_t m);

    /** out[i] += a[i] * b[i] for i in [0, m). */
    void (*mulAccumulate)(Cplx *out, const Cplx *a, const Cplx *b,
                          size_t m);
};

/** Portable reference table; always built, never null. */
const PolyKernels &scalarKernels();

/**
 * AVX2+FMA table, or nullptr when the build disabled STRIX_SIMD, the
 * compiler cannot target AVX2, or the running CPU lacks AVX2/FMA.
 */
const PolyKernels *avx2Kernels();

/** CPUID probe: does this machine support AVX2 and FMA? */
bool cpuSupportsAvx2Fma();

/** True when STRIX_FORCE_SCALAR is set (non-empty, not "0"). */
bool simdForcedScalar();

/**
 * The table every FftPlan/NegacyclicFft call uses by default.
 * Selected once on first use: scalar if forced or nothing better
 * probes, otherwise the best vector backend. Thread-safe (magic
 * static).
 */
const PolyKernels &activeKernels();

// NOTE for backend authors: each backend TU carries its own
// file-local copy of the bit-reversal permutation instead of a shared
// inline helper here. A header-inline function compiled into the
// AVX2 TU would be emitted under -mavx2, and the linker may keep that
// VEX-encoded comdat copy for *all* TUs -- leaking AVX instructions
// into the scalar path on machines the dispatch is meant to protect.

} // namespace strix

#endif // STRIX_POLY_SIMD_H
