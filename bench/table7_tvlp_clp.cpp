/**
 * @file
 * Table VII reproduction: TvLP-vs-CLP trade-off at a fixed
 * TvLP x CLP = 32 budget, parameter set IV, one 300 GB/s HBM2e stack.
 * Shows throughput, latency, and the required external bandwidth;
 * configurations whose bsk stream exceeds the stack go memory-bound
 * and lose throughput.
 */

#include <cstdio>

#include "common/table.h"
#include "strix/accelerator.h"

using namespace strix;

int
main()
{
    std::printf("=== Table VII: TvLP and CLP effects on throughput, "
                "latency, and required bandwidth (set IV, "
                "TvLP*CLP = 32) ===\n\n");

    struct PaperRow
    {
        uint32_t tvlp, clp;
        double tp, lat, bw;
    };
    const PaperRow paper[] = {
        {16, 2, 2368, 7.2, 200}, {8, 4, 2368, 3.8, 257},
        {4, 8, 2364, 3.8, 371},  {2, 16, 1240, 3.6, 599},
        {1, 32, 620, 3.6, 1053},
    };

    TextTable t;
    t.header({"TvLP", "CLP", "PBS/s", "Latency ms", "Req. BW GB/s",
              "bound", "paper PBS/s", "paper ms", "paper GB/s"});
    for (const auto &row : paper) {
        StrixConfig cfg = StrixConfig::paperDefault();
        cfg.tvlp = row.tvlp;
        cfg.clp = row.clp;
        PbsPerf perf =
            StrixAccelerator(cfg).evaluatePbs(paramsSetIV());
        t.row({std::to_string(row.tvlp), std::to_string(row.clp),
               TextTable::num(perf.throughput_pbs_s, 0),
               TextTable::num(perf.latency_ms, 1),
               TextTable::num(perf.required_bw_gbps, 0),
               perf.memory_bound ? "memory" : "compute",
               TextTable::num(row.tp, 0), TextTable::num(row.lat, 1),
               TextTable::num(row.bw, 0)});
    }
    t.print();

    std::printf("\nShape checks (paper Sec. VI-C):\n"
                "  * TvLP=8/CLP=4 is the sweet spot: highest "
                "throughput at the lowest bandwidth within one "
                "stack.\n"
                "  * Raising CLP shortens the gap between bsk fetches "
                "=> the required bandwidth roughly doubles per CLP "
                "doubling.\n"
                "  * Beyond the stack's 300 GB/s the cores starve and "
                "throughput collapses (memory-bound rows).\n"
                "  * Latency saturates near the bsk-fetch floor once "
                "CLP >= 4.\n");
    return 0;
}
