/**
 * @file
 * Tests for the complex FFT and the folded negacyclic FFT, plus the
 * scalar-vs-AVX2 kernel cross-checks for the runtime-dispatch seam
 * (poly/simd.h). The cross-checks sweep every plan size any shipped
 * parameter set touches (midParams N=256 ... set IV N=16384) and run
 * under both CI legs: with STRIX_SIMD=ON they compare the two
 * backends element by element; with STRIX_SIMD=OFF (or on a non-AVX2
 * host) the vector half skips and the scalar reference still runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/random.h"
#include "poly/complex_fft.h"
#include "poly/negacyclic_fft.h"
#include "poly/simd.h"
#include "support/test_util.h"

namespace strix {
namespace {

TEST(ComplexFft, ForwardInverseRoundTrip)
{
    for (size_t m : {2u, 8u, 64u, 512u}) {
        Rng rng(m);
        std::vector<Cplx> data(m), orig(m);
        for (auto &c : data)
            c = Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);
        orig = data;
        const FftPlan &plan = FftPlan::get(m);
        plan.forward(data.data());
        plan.inverse(data.data());
        for (size_t i = 0; i < m; ++i) {
            EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-12);
            EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-12);
        }
    }
}

TEST(ComplexFft, MatchesDirectDft)
{
    const size_t m = 16;
    Rng rng(3);
    std::vector<Cplx> data(m);
    for (auto &c : data)
        c = Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);

    // Direct O(M^2) DFT with the same positive-exponent convention.
    std::vector<Cplx> expected(m, Cplx(0, 0));
    for (size_t k = 0; k < m; ++k)
        for (size_t j = 0; j < m; ++j) {
            double ang = 2.0 * M_PI * j * k / m;
            expected[k] += data[j] * Cplx(std::cos(ang), std::sin(ang));
        }

    FftPlan::get(m).forward(data.data());
    for (size_t k = 0; k < m; ++k) {
        EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-10);
        EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-10);
    }
}

TEST(ComplexFft, LinearityOfTransform)
{
    const size_t m = 64;
    Rng rng(4);
    std::vector<Cplx> a(m), b(m), sum(m);
    for (size_t i = 0; i < m; ++i) {
        a[i] = Cplx(rng.uniformDouble(), rng.uniformDouble());
        b[i] = Cplx(rng.uniformDouble(), rng.uniformDouble());
        sum[i] = a[i] + b[i];
    }
    const FftPlan &plan = FftPlan::get(m);
    plan.forward(a.data());
    plan.forward(b.data());
    plan.forward(sum.data());
    for (size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(sum[i].real(), a[i].real() + b[i].real(), 1e-9);
        EXPECT_NEAR(sum[i].imag(), a[i].imag() + b[i].imag(), 1e-9);
    }
}

TEST(ComplexFft, PlanCacheReturnsSameInstance)
{
    EXPECT_EQ(&FftPlan::get(256), &FftPlan::get(256));
    EXPECT_NE(&FftPlan::get(256), &FftPlan::get(512));
}

/** The folded transform must invert exactly (up to rounding). */
class NegacyclicRoundTrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(NegacyclicRoundTrip, TorusPolySurvives)
{
    const size_t n = GetParam();
    Rng rng(n);
    TorusPolynomial p = test::randomTorusPoly(n, rng);
    const auto &eng = NegacyclicFft::get(n);
    FreqPolynomial f;
    eng.forward(f, p);
    TorusPolynomial back(n);
    eng.inverse(back, f);
    for (size_t i = 0; i < n; ++i) {
        // Allow one ulp of rounding.
        EXPECT_LE(std::abs(torusDistance(back[i], p[i])), 1) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NegacyclicRoundTrip,
                         ::testing::Values(4, 16, 64, 256, 1024, 4096,
                                           16384));

TEST(NegacyclicFft, FrequencySizeIsHalfRingDim)
{
    // The folding scheme: an N-point negacyclic transform produces
    // N/2 complex points (Sec. V-A).
    const auto &eng = NegacyclicFft::get(1024);
    TorusPolynomial p(1024);
    FreqPolynomial f;
    eng.forward(f, p);
    EXPECT_EQ(f.size(), 512u);
}

TEST(NegacyclicFft, MonomialProductViaFftIsExactRotation)
{
    const size_t n = 128;
    Rng rng(5);
    TorusPolynomial p = test::randomTorusPoly(n, rng);

    IntPolynomial mono(n);
    mono[3] = 1;
    TorusPolynomial viaFft(n), viaRotate(n);
    negacyclicMulFft(viaFft, mono, p);
    negacyclicRotate(viaRotate, p, 3);
    for (size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(torusDistance(viaFft[i], viaRotate[i])), 1);
}

TEST(NegacyclicFft, MulAccumulateAddsInFrequencyDomain)
{
    const size_t n = 64;
    Rng rng(6);
    IntPolynomial a(n), b(n);
    TorusPolynomial x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.uniformBelow(17)) - 8;
        b[i] = static_cast<int32_t>(rng.uniformBelow(17)) - 8;
        x[i] = rng.uniformTorus32();
        y[i] = rng.uniformTorus32();
    }

    // freq(a)*freq(x) + freq(b)*freq(y) inverted == a*x + b*y.
    const auto &eng = NegacyclicFft::get(n);
    FreqPolynomial fa, fb, fx, fy, acc;
    eng.forward(fa, a);
    eng.forward(fb, b);
    eng.forward(fx, x);
    eng.forward(fy, y);
    NegacyclicFft::mulAccumulate(acc, fa, fx);
    NegacyclicFft::mulAccumulate(acc, fb, fy);
    TorusPolynomial got(n);
    eng.inverse(got, acc);

    TorusPolynomial expected(n);
    negacyclicMulNaive(expected, a, x);
    negacyclicMulAddNaive(expected, b, y);
    for (size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(torusDistance(got[i], expected[i])), 2);
}

// ---------------------------------------------------------------------------
// Runtime-dispatch seam: scalar vs AVX2 kernel cross-checks.

/**
 * Every complex-FFT plan size the software path can instantiate:
 * N/2 for midParams (128), fastParams (256), sets I/II (512),
 * set III (1024), Deep-NN 4096 (2048), set IV (8192), plus the tiny
 * sizes the algorithm must still handle.
 */
const size_t kPlanSizes[] = {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                             2048, 4096, 8192};

/** Ring dimensions: n = 2m for each plan size above. */
const size_t kRingDims[] = {4, 8, 16, 32, 64, 128, 256, 512, 1024,
                            2048, 4096, 8192, 16384};

/**
 * FMA vs separate multiply/add changes rounding, so vector results
 * are ULP-bounded, not bit-equal: allow a small relative error
 * against the largest magnitude in the reference output.
 */
double
maxAbs(const Cplx *data, size_t m)
{
    double mx = 0.0;
    for (size_t i = 0; i < m; ++i)
        mx = std::max(mx, std::abs(data[i]));
    return mx;
}

void
expectUlpClose(const Cplx *got, const Cplx *ref, size_t m, double rel)
{
    const double tol = std::max(maxAbs(ref, m), 1.0) * rel;
    for (size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(got[i].real(), ref[i].real(), tol) << "index " << i;
        EXPECT_NEAR(got[i].imag(), ref[i].imag(), tol) << "index " << i;
    }
}

TEST(SimdDispatch, ActiveTableMatchesProbeAndOverride)
{
    // The active table is latched once; whatever it is, it must be
    // consistent with the CPUID probe and the environment override.
    const PolyKernels &active = activeKernels();
    if (simdForcedScalar()) {
        EXPECT_STREQ(active.name, "scalar");
    } else if (avx2Kernels() != nullptr) {
        EXPECT_STREQ(active.name, "avx2");
    } else {
        EXPECT_STREQ(active.name, "scalar");
    }
    if (avx2Kernels() != nullptr) {
        EXPECT_TRUE(cpuSupportsAvx2Fma());
    }
}

TEST(SimdDispatch, ScalarTableIsAlwaysAvailable)
{
    const PolyKernels &s = scalarKernels();
    EXPECT_STREQ(s.name, "scalar");
    EXPECT_NE(s.fftForward, nullptr);
    EXPECT_NE(s.fftForwardBatch, nullptr);
    EXPECT_NE(s.fftInverse, nullptr);
    EXPECT_NE(s.twist, nullptr);
    EXPECT_NE(s.twistBatch, nullptr);
    EXPECT_NE(s.untwist, nullptr);
    EXPECT_NE(s.mulAccumulate, nullptr);
}

class KernelCrossCheck : public ::testing::TestWithParam<size_t>
{
  protected:
    void SetUp() override
    {
        if (avx2Kernels() == nullptr)
            GTEST_SKIP() << "AVX2 kernels unavailable "
                            "(STRIX_SIMD=OFF or non-AVX2 host)";
    }
};

TEST_P(KernelCrossCheck, ForwardFftMatchesScalar)
{
    const size_t m = GetParam();
    const FftPlan &plan = FftPlan::get(m);
    Rng rng(m);
    std::vector<Cplx> ref(m), vec(m);
    for (size_t i = 0; i < m; ++i)
        ref[i] = Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);
    vec = ref;
    plan.forward(ref.data(), scalarKernels());
    plan.forward(vec.data(), *avx2Kernels());
    expectUlpClose(vec.data(), ref.data(), m, 1e-12);
}

TEST_P(KernelCrossCheck, InverseFftMatchesScalar)
{
    const size_t m = GetParam();
    const FftPlan &plan = FftPlan::get(m);
    Rng rng(m + 17);
    std::vector<Cplx> ref(m), vec(m);
    for (size_t i = 0; i < m; ++i)
        ref[i] = Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);
    vec = ref;
    plan.inverse(ref.data(), scalarKernels());
    plan.inverse(vec.data(), *avx2Kernels());
    expectUlpClose(vec.data(), ref.data(), m, 1e-12);
}

TEST_P(KernelCrossCheck, MulAccumulateMatchesScalar)
{
    const size_t m = GetParam();
    Rng rng(m + 31);
    FreqPolynomial a(m), b(m), ref(m), vec(m);
    for (size_t i = 0; i < m; ++i) {
        a[i] = Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);
        b[i] = Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);
        ref[i] = vec[i] =
            Cplx(rng.uniformDouble() - 0.5, rng.uniformDouble() - 0.5);
    }
    scalarKernels().mulAccumulate(ref.data(), a.data(), b.data(), m);
    avx2Kernels()->mulAccumulate(vec.data(), a.data(), b.data(), m);
    expectUlpClose(vec.data(), ref.data(), m, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(PlanSizes, KernelCrossCheck,
                         ::testing::ValuesIn(kPlanSizes));

class NegacyclicKernelCrossCheck : public ::testing::TestWithParam<size_t>
{
  protected:
    void SetUp() override
    {
        if (avx2Kernels() == nullptr)
            GTEST_SKIP() << "AVX2 kernels unavailable "
                            "(STRIX_SIMD=OFF or non-AVX2 host)";
    }
};

TEST_P(NegacyclicKernelCrossCheck, TorusForwardMatchesScalar)
{
    const size_t n = GetParam();
    const auto &eng = NegacyclicFft::get(n);
    Rng rng(n);
    TorusPolynomial p = test::randomTorusPoly(n, rng);
    FreqPolynomial ref, vec;
    eng.forward(ref, p, scalarKernels());
    eng.forward(vec, p, *avx2Kernels());
    ASSERT_EQ(vec.size(), ref.size());
    expectUlpClose(vec.data(), ref.data(), ref.size(), 1e-12);
}

TEST_P(NegacyclicKernelCrossCheck, IntForwardMatchesScalar)
{
    const size_t n = GetParam();
    const auto &eng = NegacyclicFft::get(n);
    Rng rng(n + 7);
    IntPolynomial p = test::randomSmallIntPoly(n, 512, rng);
    FreqPolynomial ref, vec;
    eng.forward(ref, p, scalarKernels());
    eng.forward(vec, p, *avx2Kernels());
    ASSERT_EQ(vec.size(), ref.size());
    expectUlpClose(vec.data(), ref.data(), ref.size(), 1e-12);
}

TEST_P(NegacyclicKernelCrossCheck, InverseMatchesScalarWithinOneStep)
{
    // Full inverse path (inverse FFT + untwist + round to Torus32).
    // The vector untwist rounds ties to even where scalar llround
    // rounds away from zero, and FMA shifts values near a rounding
    // boundary, so allow one grid step.
    const size_t n = GetParam();
    const auto &eng = NegacyclicFft::get(n);
    Rng rng(n + 13);
    TorusPolynomial p = test::randomTorusPoly(n, rng);
    FreqPolynomial f;
    eng.forward(f, p, scalarKernels());
    TorusPolynomial ref(n), vec(n);
    eng.inverse(ref, f, scalarKernels());
    eng.inverse(vec, f, *avx2Kernels());
    for (size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(torusDistance(vec[i], ref[i])), 1) << i;
}

TEST_P(NegacyclicKernelCrossCheck, RoundTripSurvivesUnderAvx2)
{
    // Same property the scalar path guarantees: forward then inverse
    // recovers the torus polynomial to one ulp.
    const size_t n = GetParam();
    const auto &eng = NegacyclicFft::get(n);
    Rng rng(n + 23);
    TorusPolynomial p = test::randomTorusPoly(n, rng);
    FreqPolynomial f;
    eng.forward(f, p, *avx2Kernels());
    TorusPolynomial back(n);
    eng.inverse(back, f, *avx2Kernels());
    for (size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(torusDistance(back[i], p[i])), 1) << i;
}

TEST_P(NegacyclicKernelCrossCheck, ProductMatchesExactKaratsuba)
{
    // End-to-end check against exact integer arithmetic: the AVX2
    // pipeline (twist -> FFT -> mulAcc -> inverse FFT -> untwist)
    // must compute the same negacyclic product the exact Karatsuba
    // multiplier does, to the usual FFT rounding slack.
    const size_t n = GetParam();
    if (n > 4096)
        GTEST_SKIP() << "Karatsuba reference too slow beyond 4096";
    const auto &eng = NegacyclicFft::get(n);
    Rng rng(n + 29);
    IntPolynomial a = test::randomSmallIntPoly(n, 512, rng);
    TorusPolynomial b = test::randomTorusPoly(n, rng);

    FreqPolynomial fa, fb, prod;
    eng.forward(fa, a, *avx2Kernels());
    eng.forward(fb, b, *avx2Kernels());
    NegacyclicFft::mulAccumulate(prod, fa, fb, *avx2Kernels());
    TorusPolynomial got(n);
    eng.inverse(got, prod, *avx2Kernels());

    TorusPolynomial expected(n);
    negacyclicMulKaratsuba(expected, a, b);
    for (size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(torusDistance(got[i], expected[i])), 2) << i;
}

INSTANTIATE_TEST_SUITE_P(RingDims, NegacyclicKernelCrossCheck,
                         ::testing::ValuesIn(kRingDims));

// ---------------------------------------------------------------------------
// Batched transforms: the fused stage sweep must be BIT-identical to
// per-member transforms -- same table, element by element -- not just
// ULP-close. These sweeps run on every CI leg: with STRIX_SIMD=OFF
// only the scalar table is exercised; with STRIX_FORCE_SCALAR=1 the
// `active` leg pins to scalar while the explicit avx2 leg still runs.

/** Batch sizes covering 1, odd, the PBS digit counts, and >1 chunk. */
const size_t kBatchSizes[] = {1, 2, 3, 4, 6, 8};

/** Every kernel table reachable in this process, with a tag. */
std::vector<std::pair<const char *, const PolyKernels *>>
allKernelTables()
{
    std::vector<std::pair<const char *, const PolyKernels *>> tables{
        {"scalar", &scalarKernels()}, {"active", &activeKernels()}};
    if (const PolyKernels *avx2 = avx2Kernels())
        tables.emplace_back("avx2", avx2);
    return tables;
}

class FftBatchExactness : public ::testing::TestWithParam<size_t>
{
};

TEST_P(FftBatchExactness, ForwardBatchBitIdenticalToSingle)
{
    const size_t m = GetParam();
    const FftPlan &plan = FftPlan::get(m);
    for (const auto &[tag, kernels] : allKernelTables()) {
        for (size_t batch : kBatchSizes) {
            Rng rng(m + 101 * batch);
            std::vector<Cplx> fused(m * batch), single(m * batch);
            for (auto &c : fused)
                c = Cplx(rng.uniformDouble() - 0.5,
                         rng.uniformDouble() - 0.5);
            single = fused;
            plan.forwardBatch(fused.data(), batch, *kernels);
            for (size_t b = 0; b < batch; ++b)
                plan.forward(single.data() + b * m, *kernels);
            for (size_t i = 0; i < m * batch; ++i) {
                ASSERT_EQ(fused[i].real(), single[i].real())
                    << tag << " m=" << m << " batch=" << batch
                    << " i=" << i;
                ASSERT_EQ(fused[i].imag(), single[i].imag())
                    << tag << " m=" << m << " batch=" << batch
                    << " i=" << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PlanSizes, FftBatchExactness,
                         ::testing::ValuesIn(kPlanSizes));

class NegacyclicFftBatch : public ::testing::TestWithParam<size_t>
{
};

TEST_P(NegacyclicFftBatch, ForwardBatchBitIdenticalToPerPoly)
{
    // Digit-like inputs (the external product's actual feed): small
    // signed coefficients, contiguous rows.
    const size_t n = GetParam();
    const auto &eng = NegacyclicFft::get(n);
    const size_t m = n / 2;
    for (const auto &[tag, kernels] : allKernelTables()) {
        for (size_t batch : {size_t{1}, size_t{4}, size_t{6}}) {
            Rng rng(n + 13 * batch);
            std::vector<int32_t> coeffs(n * batch);
            for (auto &c : coeffs)
                c = static_cast<int32_t>(rng.uniformBelow(1024)) - 512;
            std::vector<Cplx> fused(m * batch);
            eng.forwardBatch(fused.data(), coeffs.data(), batch,
                             *kernels);
            for (size_t b = 0; b < batch; ++b) {
                IntPolynomial row(n);
                std::copy(coeffs.begin() + b * n,
                          coeffs.begin() + (b + 1) * n, row.data());
                FreqPolynomial ref;
                eng.forward(ref, row, *kernels);
                for (size_t j = 0; j < m; ++j) {
                    ASSERT_EQ(fused[b * m + j].real(), ref[j].real())
                        << tag << " n=" << n << " b=" << b
                        << " j=" << j;
                    ASSERT_EQ(fused[b * m + j].imag(), ref[j].imag())
                        << tag << " n=" << n << " b=" << b
                        << " j=" << j;
                }
            }
        }
    }
}

TEST_P(NegacyclicFftBatch, DispatchedForwardBatchMatchesPerPoly)
{
    // Same comparison through the default (activeKernels) overloads:
    // whatever backend the dispatcher latched, fused == per-poly.
    const size_t n = GetParam();
    const auto &eng = NegacyclicFft::get(n);
    const size_t m = n / 2;
    const size_t batch = 5;
    Rng rng(n + 77);
    std::vector<int32_t> coeffs(n * batch);
    for (auto &c : coeffs)
        c = static_cast<int32_t>(rng.uniformBelow(64)) - 32;
    std::vector<Cplx> fused(m * batch);
    eng.forwardBatch(fused.data(), coeffs.data(), batch);
    for (size_t b = 0; b < batch; ++b) {
        IntPolynomial row(n);
        std::copy(coeffs.begin() + b * n, coeffs.begin() + (b + 1) * n,
                  row.data());
        FreqPolynomial ref;
        eng.forward(ref, row);
        for (size_t j = 0; j < m; ++j) {
            ASSERT_EQ(fused[b * m + j], ref[j])
                << "n=" << n << " b=" << b << " j=" << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RingDims, NegacyclicFftBatch,
                         ::testing::ValuesIn(kRingDims));

TEST(NegacyclicFft, MulAccumulatePanicsOnAccumulatorShapeMismatch)
{
    const size_t n = 64;
    Rng rng(31);
    IntPolynomial a(n);
    TorusPolynomial x(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.uniformBelow(17)) - 8;
        x[i] = rng.uniformTorus32();
    }
    const auto &eng = NegacyclicFft::get(n);
    FreqPolynomial fa, fx;
    eng.forward(fa, a);
    eng.forward(fx, x);

    // Empty accumulator still auto-sizes...
    FreqPolynomial acc;
    NegacyclicFft::mulAccumulate(acc, fa, fx);
    EXPECT_EQ(acc.size(), n / 2);
    // ...but a wrong-sized one is a caller shape bug, not a request
    // to throw away the partial sum.
    FreqPolynomial wrong(n / 4, Cplx(0, 0));
    EXPECT_DEATH(NegacyclicFft::mulAccumulate(wrong, fa, fx),
                 "accumulator size mismatch");
}

} // namespace
} // namespace strix
