/**
 * @file
 * Negacyclic FFT with the paper's folding scheme (Sec. V-A).
 *
 * Polynomial multiplication in Z[X]/(X^N+1) amounts to evaluating both
 * polynomials at the odd 2N-th roots of unity. Because inputs are
 * real, only N/2 evaluation points are independent. The *folding
 * scheme* packs coefficient j and j+N/2 into one complex number,
 * twists by exp(i*pi*j/N), and runs an N/2-point complex FFT -- an
 * N-point negacyclic transform on half-size hardware, exactly the
 * optimization Table VI ablates (2x throughput, 1.7x FFT area).
 *
 * Derivation: with w = exp(i*pi/N), A_k = sum_j a_j w^{(2k+1)j}; for
 * even k = 2t and u_j = a_j + i*a_{j+N/2},
 *     A_{2t} = sum_{j<N/2} (u_j w^j) exp(+2*pi*i*t*j/(N/2)),
 * while odd-indexed values follow by conjugate symmetry, so the even
 * half determines the whole transform of a real polynomial.
 */

#ifndef STRIX_POLY_NEGACYCLIC_FFT_H
#define STRIX_POLY_NEGACYCLIC_FFT_H

#include <vector>

#include "poly/complex_fft.h"
#include "poly/polynomial.h"

namespace strix {

struct PolyKernels;

/** Frequency-domain image of a length-N real polynomial: N/2 points. */
using FreqPolynomial = std::vector<Cplx>;

/**
 * Folded negacyclic transform engine for a fixed ring dimension N.
 */
class NegacyclicFft
{
  public:
    /** @param n ring dimension N (power of two, >= 4). */
    explicit NegacyclicFft(size_t n);

    size_t ringDim() const { return n_; }

    /** Forward transform of an integer polynomial. */
    void forward(FreqPolynomial &out, const IntPolynomial &poly) const;

    /** Forward transform of a torus polynomial (centered lift). */
    void forward(FreqPolynomial &out, const TorusPolynomial &poly) const;

    /**
     * Inverse transform onto the Torus32 grid (round and wrap
     * mod 2^32).
     */
    void inverse(TorusPolynomial &out, const FreqPolynomial &freq) const;

    /**
     * Batched forward transform of @p batch contiguous length-N
     * coefficient rows: row b of @p coeffs is the N signed
     * (centered-lift) coefficients of one polynomial, row b of @p out
     * its N/2 frequency points. Bit-identical to calling forward() on
     * each row; the fold/twist and every FFT stage sweep the batch as
     * one planned pass (Strix's streaming-FFT batch schedule). This is
     * the path the external product feeds its (k+1)*l decomposition
     * digits through.
     */
    void forwardBatch(Cplx *out, const int32_t *coeffs, size_t batch) const;

    /**
     * out_k += a_k * b_k (frequency-domain multiply-accumulate).
     * An empty @p out is auto-sized (zero-initialized); a non-empty
     * accumulator of the wrong size panics instead of being silently
     * reinitialized, so shape bugs in callers surface immediately.
     */
    static void mulAccumulate(FreqPolynomial &out, const FreqPolynomial &a,
                              const FreqPolynomial &b);

    /**
     * Kernel-explicit overloads of the transforms above, used by the
     * scalar-vs-vector cross-check tests and the A/B benchmarks. The
     * default overloads run activeKernels().
     */
    void forward(FreqPolynomial &out, const IntPolynomial &poly,
                 const PolyKernels &kernels) const;
    void forward(FreqPolynomial &out, const TorusPolynomial &poly,
                 const PolyKernels &kernels) const;
    void forwardBatch(Cplx *out, const int32_t *coeffs, size_t batch,
                      const PolyKernels &kernels) const;
    void inverse(TorusPolynomial &out, const FreqPolynomial &freq,
                 const PolyKernels &kernels) const;
    static void mulAccumulate(FreqPolynomial &out, const FreqPolynomial &a,
                              const FreqPolynomial &b,
                              const PolyKernels &kernels);

    /**
     * Obtain a cached engine for ring dimension @p n. Thread-safe:
     * first touch builds under a lock, steady-state lookups are a
     * single lock-free acquire load; references never dangle.
     */
    static const NegacyclicFft &get(size_t n);

    /**
     * Build and publish the engine for ring dimension @p n (and its
     * underlying N/2-point FftPlan) ahead of time, so later get()
     * calls on the PBS hot path never take the construction lock.
     */
    static void prewarm(size_t n);

  private:
    void forwardImpl(FreqPolynomial &out, const int32_t *coeffs,
                     size_t size, const PolyKernels &kernels) const;

    size_t n_;
    const FftPlan &plan_;     //!< N/2-point complex FFT
    std::vector<Cplx> twist_; //!< exp(i*pi*j/N), j in [0, N/2)
};

/** result = a * b mod (X^N+1) via the folded FFT. */
void negacyclicMulFft(TorusPolynomial &result, const IntPolynomial &a,
                      const TorusPolynomial &b);

/** result += a * b mod (X^N+1) via the folded FFT. */
void negacyclicMulAddFft(TorusPolynomial &result, const IntPolynomial &a,
                         const TorusPolynomial &b);

} // namespace strix

#endif // STRIX_POLY_NEGACYCLIC_FFT_H
