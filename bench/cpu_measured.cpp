/**
 * @file
 * Measured CPU baseline: runs our actual software TFHE (not the
 * analytic model) single- and multi-threaded, reporting real PBS
 * latency and throughput on this machine. Complements Table V's
 * Concrete rows: the absolute numbers depend on how optimized the
 * FFT is, but the scaling behaviour (throughput = threads/latency,
 * no packing) is the phenomenon the paper's Sec. III builds on.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/table.h"
#include "tfhe/context.h"

using namespace strix;

int
main(int argc, char **argv)
{
    // --smoke: single rep, no thread sweep beyond 2 workers. Used by
    // the ctest smoke run so the binary is exercised end-to-end
    // without paying for a full measurement.
    const bool smoke = argc > 1 && !std::strcmp(argv[1], "--smoke");

    std::printf("=== Measured software-TFHE PBS on this machine "
                "(parameter set I) ===\n\n");

    TfheContext ctx(paramsSetI(), 4242);
    const uint64_t space = 4;
    TorusPolynomial tv = makeIntTestVector(
        ctx.params().N, space, [](int64_t x) { return x; });

    // Pre-encrypt a pool of inputs (encryption uses the context RNG
    // and is not thread-safe; bootstrapping is const and is).
    std::vector<LweCiphertext> inputs;
    for (int i = 0; i < (smoke ? 4 : 64); ++i)
        inputs.push_back(ctx.encryptInt(i % 4, space));

    using Clock = std::chrono::steady_clock;

    // Single-thread latency.
    const int warm = smoke ? 0 : 2, reps = smoke ? 1 : 8;
    for (int i = 0; i < warm; ++i)
        ctx.bootstrap(inputs[0], tv);
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i)
        ctx.bootstrap(inputs[i % inputs.size()], tv);
    double lat_ms =
        std::chrono::duration<double>(Clock::now() - t0).count() /
        reps * 1e3;
    std::printf("single-thread PBS+KS latency: %.2f ms "
                "(Concrete on Xeon: 14 ms)\n\n",
                lat_ms);

    // Thread scaling: each worker bootstraps independently -- no
    // packing, the TFHE bottleneck the paper attacks.
    TextTable t;
    t.header({"threads", "PBS/s", "scaling"});
    double tp1 = 0.0;
    unsigned hw = std::thread::hardware_concurrency();
    std::vector<unsigned> counts{1u, 2u, 4u, std::max(4u, hw)};
    if (smoke)
        counts = {1u, 2u};
    for (unsigned n : counts) {
        std::atomic<int> done{0};
        const int per_thread = smoke ? 1 : 4;
        auto t1 = Clock::now();
        std::vector<std::thread> workers;
        for (unsigned w = 0; w < n; ++w) {
            workers.emplace_back([&, w] {
                for (int i = 0; i < per_thread; ++i) {
                    auto out = ctx.bootstrap(
                        inputs[(w * per_thread + i) % inputs.size()],
                        tv);
                    done.fetch_add(1, std::memory_order_relaxed);
                    (void)out;
                }
            });
        }
        for (auto &w : workers)
            w.join();
        double secs =
            std::chrono::duration<double>(Clock::now() - t1).count();
        double tp = done.load() / secs;
        if (n == 1)
            tp1 = tp;
        t.row({std::to_string(n), TextTable::num(tp, 1),
               TextTable::num(tp / tp1, 2) + "x"});
    }
    t.print();
    std::printf("\nEach thread bootstraps one message at a time; "
                "throughput only scales with workers, never within a "
                "bootstrap -- the 'no ciphertext packing' property "
                "that motivates Strix's batching architecture.\n");
    return 0;
}
