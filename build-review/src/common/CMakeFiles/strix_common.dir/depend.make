# Empty dependencies file for strix_common.
# This may be replaced when dependencies are built.
