/**
 * @file
 * GLWE encryption and sample-extraction tests.
 */

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "tfhe/glwe.h"

namespace strix {
namespace {

using test::randomMessagePoly;

TEST(Glwe, ZeroNoisePhaseRecoversMessage)
{
    Rng rng(1);
    for (uint32_t k : {1u, 2u, 3u}) {
        GlweKey key(k, 64, rng);
        TorusPolynomial mu = randomMessagePoly(64, rng);
        auto ct = glweEncrypt(key, mu, 0.0, rng);
        EXPECT_EQ(glwePhase(key, ct), mu) << "k=" << k;
    }
}

TEST(Glwe, TrivialCiphertextPhaseIsBody)
{
    Rng rng(2);
    GlweKey key(2, 32, rng);
    TorusPolynomial mu = randomMessagePoly(32, rng);
    auto ct = GlweCiphertext::trivial(2, mu);
    EXPECT_EQ(glwePhase(key, ct), mu);
}

TEST(Glwe, HomomorphicAddition)
{
    Rng rng(3);
    GlweKey key(1, 64, rng);
    TorusPolynomial m1 = randomMessagePoly(64, rng);
    TorusPolynomial m2 = randomMessagePoly(64, rng);
    auto c1 = glweEncrypt(key, m1, 0.0, rng);
    auto c2 = glweEncrypt(key, m2, 0.0, rng);
    c1.addAssign(c2);
    TorusPolynomial expected = m1;
    expected.addAssign(m2);
    EXPECT_EQ(glwePhase(key, c1), expected);
}

TEST(Glwe, NoisyDecryptionWithinBudget)
{
    Rng rng(4);
    GlweKey key(1, 1024, rng);
    TorusPolynomial mu = randomMessagePoly(1024, rng);
    auto ct = glweEncrypt(key, mu, 9.0e-9, rng); // set I GLWE noise
    TorusPolynomial phase = glwePhase(key, ct);
    for (size_t i = 0; i < phase.size(); ++i) {
        EXPECT_EQ(decodeMessage(phase[i], 16), decodeMessage(mu[i], 16));
    }
}

TEST(Glwe, ExtractedKeyFlattensCoefficients)
{
    Rng rng(5);
    GlweKey key(2, 16, rng);
    LweKey lwe = key.extractedLweKey();
    ASSERT_EQ(lwe.dim(), 32u);
    for (uint32_t i = 0; i < 2; ++i)
        for (uint32_t j = 0; j < 16; ++j)
            EXPECT_EQ(lwe.bit(i * 16 + j), key.poly(i)[j]);
}

class SampleExtractIndex : public ::testing::TestWithParam<size_t>
{
};

TEST_P(SampleExtractIndex, ExtractsCoefficient)
{
    const size_t index = GetParam();
    Rng rng(100 + index);
    const uint32_t n = 64;
    for (uint32_t k : {1u, 2u}) {
        GlweKey key(k, n, rng);
        TorusPolynomial mu = randomMessagePoly(n, rng);
        auto ct = glweEncrypt(key, mu, 0.0, rng);
        LweCiphertext lwe = sampleExtract(ct, index);
        ASSERT_EQ(lwe.dim(), k * n);
        LweKey extracted = key.extractedLweKey();
        EXPECT_EQ(lwePhase(extracted, lwe), mu[index])
            << "k=" << k << " index=" << index;
    }
}

INSTANTIATE_TEST_SUITE_P(Indices, SampleExtractIndex,
                         ::testing::Values(0, 1, 31, 62, 63));

TEST(Glwe, SampleExtractOfSumIsSumOfExtracts)
{
    Rng rng(6);
    GlweKey key(1, 32, rng);
    auto c1 = glweEncrypt(key, randomMessagePoly(32, rng), 0.0, rng);
    auto c2 = glweEncrypt(key, randomMessagePoly(32, rng), 0.0, rng);
    auto sum = c1;
    sum.addAssign(c2);

    auto e1 = sampleExtract(c1, 5);
    auto e2 = sampleExtract(c2, 5);
    e1.addAssign(e2);
    auto es = sampleExtract(sum, 5);
    LweKey extracted = key.extractedLweKey();
    EXPECT_EQ(lwePhase(extracted, e1), lwePhase(extracted, es));
}

} // namespace
} // namespace strix
