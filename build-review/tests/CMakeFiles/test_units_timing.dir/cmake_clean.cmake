file(REMOVE_RECURSE
  "CMakeFiles/test_units_timing.dir/test_units_timing.cpp.o"
  "CMakeFiles/test_units_timing.dir/test_units_timing.cpp.o.d"
  "test_units_timing"
  "test_units_timing.pdb"
  "test_units_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_units_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
