/**
 * @file
 * Strix hardware configuration (Sec. IV-A design point and Sec. VI-A
 * hardware modeling assumptions).
 */

#ifndef STRIX_STRIX_CONFIG_H
#define STRIX_STRIX_CONFIG_H

#include <cstdint>

namespace strix {

/** Parallelism knobs and platform constants of a Strix instance. */
struct StrixConfig
{
    // Four parallelism levels (Sec. IV-A). The shipped design point is
    // TvLP = 8, CLP = 4, PLP = 2, CoLP = 2.
    uint32_t tvlp = 8; //!< test-vector level parallelism = # HSC cores
    uint32_t clp = 4;  //!< coefficient level parallelism = FFT lanes
    uint32_t plp = 2;  //!< polynomial level parallelism = FFT/VMA units
    uint32_t colp = 2; //!< column level parallelism = output columns

    /** Folding scheme on: N-point transform on an N/2-point FFT. */
    bool folding = true;

    /**
     * 2x bootstrapping-key unrolling (Matcha's technique, Sec. VII):
     * half the blind-rotation iterations, but 3 external products and
     * 1.5x key traffic per bootstrap. Off in the Strix design.
     */
    bool key_unrolling = false;

    double clock_ghz = 1.2; //!< synthesis clock (Sec. VI-A)

    // HBM2e stack: 300 GB/s over 16 channels, split 8 bsk / 4 ksk /
    // 4 ciphertext (Sec. VI-A).
    double hbm_gbps = 300.0;
    int hbm_channels = 16;
    int bsk_channels = 8;
    int ksk_channels = 4;
    int ct_channels = 4;

    // Scratchpads (Sec. VI-A / Table III).
    double global_scratch_mb = 21.0;
    double local_scratch_kb = 640.0; //!< 0.625 MB per HSC
    /** Fraction of the local scratchpad assigned to the PBS cluster. */
    double local_pbs_fraction = 0.8;

    // Keyswitch cluster parallelism (Sec. IV-A): CLP = 8, CoLP = 8.
    uint32_t ks_clp = 8;
    uint32_t ks_colp = 8;

    /** Effective lanes of non-FFT units (folding requires 2*CLP). */
    uint32_t effLanes() const { return folding ? 2 * clp : clp; }

    /** Local scratchpad bytes reserved for PBS test vectors. */
    uint64_t
    localPbsBytes() const
    {
        return static_cast<uint64_t>(local_scratch_kb * 1024.0 *
                                     local_pbs_fraction);
    }

    /** The paper's shipped 8-core configuration. */
    static StrixConfig paperDefault() { return StrixConfig{}; }

    /** Non-folded ablation twin (Table VI). */
    static StrixConfig
    paperNoFolding()
    {
        StrixConfig c;
        c.folding = false;
        return c;
    }
};

} // namespace strix

#endif // STRIX_STRIX_CONFIG_H
