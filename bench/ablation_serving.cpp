/**
 * @file
 * Ablation: end-to-end serving through the StrixServer daemon.
 *
 * Drives a live loopback StrixServer with real MSG1 frames and real
 * software PBS (toy set n=48 N=512) in two client shapes:
 *
 *   BM_ServerPerCall        one connection, strictly serial call()s:
 *                           every request pays the full round trip
 *                           plus a lonely width-1 executor sweep
 *                           (the flush delay in full).
 *   BM_ServerBatched/<s>    s pipelined sessions, each keeping a
 *                           window of requests outstanding; the
 *                           server coalesces them into full-width
 *                           sweeps. The <s>x2 variant splits the
 *                           sessions across two tenants with
 *                           different key bundles -- the multi-tenant
 *                           serving claim (per-bundle shards batch
 *                           independently, one executor).
 *
 * Every reply is decode-checked against the expected LUT output, so
 * the throughput numbers cannot silently come from wrong answers.
 *
 * Flags:
 *   --measured       run the measured load (this bench has no
 *                    analytic section; without the flag it only
 *                    prints what it would do, so the plain ctest
 *                    smoke stays instant).
 *   --smoke          trim request counts (used by ctest).
 *   --json <file>    write rows as JSON; CI's bench job uploads this
 *                    in the `bench-results` artifact.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_flags.h"
#include "common/table.h"
#include "net/client.h"
#include "server/server.h"
#include "server/wire_codec.h"
#include "tfhe/bootstrap.h"
#include "tfhe/context_cache.h"

using namespace strix;

namespace {

constexpr uint64_t kSpace = 8;
constexpr int kSessions = 4; //!< pipelined connections per batched row
constexpr size_t kWindow = 8; //!< requests in flight per session

using BenchClock = std::chrono::steady_clock;

uint64_t
microsSince(BenchClock::time_point t0)
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            BenchClock::now() - t0)
            .count());
}

int64_t
triple(int64_t v)
{
    return (3 * v) % int64_t(kSpace);
}

/** One row of the report (printed and emitted as JSON). */
struct Row
{
    std::string name;
    double req_per_s = 0; //!< decode-checked replies / wall time
    double p50_us = 0;    //!< send -> reply latency
    double p99_us = 0;
    double speedup = 1;   //!< throughput vs BM_ServerPerCall
};

double
percentile(std::vector<uint64_t> lat_us, double p)
{
    if (lat_us.empty())
        return 0.0;
    std::sort(lat_us.begin(), lat_us.end());
    size_t idx = size_t(p * double(lat_us.size() - 1) + 0.5);
    return double(lat_us[std::min(idx, lat_us.size() - 1)]);
}

std::shared_ptr<const ClientKeyset>
keysetFor(uint64_t seed)
{
    return ContextCache::global().getOrCreateKeyset(testParams(48, 512),
                                                    seed);
}

/** Pre-encoded Bootstrap request with its expected decode. */
struct Prepared
{
    std::vector<uint8_t> payload;
    int64_t expect = 0;
};

std::vector<Prepared>
prepare(const ClientKeyset &keyset, int count)
{
    const TfheParams &p = keyset.evalKeys()->params();
    const TorusPolynomial tv = makeIntTestVector(p.N, kSpace, triple);
    std::vector<Prepared> out;
    out.reserve(size_t(count));
    for (int i = 0; i < count; ++i) {
        const int64_t m = i % int64_t(kSpace);
        out.push_back({encodeBootstrapPayload(
                           keyset.encryptInt(m, kSpace), tv),
                       triple(m)});
    }
    return out;
}

/** Decode-check one Ok reply; returns false on any mismatch. */
bool
checkReply(const StrixClient::Reply &r, const ClientKeyset &keyset,
           int64_t expect)
{
    if (!r.ok)
        return false;
    std::vector<LweCiphertext> out = decodeCiphertexts(r.payload);
    return out.size() == 1 &&
           keyset.decryptInt(out[0], kSpace) == expect;
}

bool
registerTenant(StrixClient &client, uint64_t tenant,
               const ClientKeyset &keyset)
{
    StrixClient::Reply r = client.call(
        MsgType::RegisterTenant, tenant,
        encodeEvalKeysPayload(*keyset.evalKeys(),
                              EvalKeysFormat::Seeded));
    return r.ok;
}

/** Serial closed-loop client: one request in flight, ever. */
bool
runPerCall(uint16_t port, uint64_t tenant, const ClientKeyset &keyset,
           const std::vector<Prepared> &reqs, double &secs,
           std::vector<uint64_t> &lat_us)
{
    StrixClient client;
    if (!client.connectLoopback(port))
        return false;
    auto t0 = BenchClock::now();
    for (const Prepared &req : reqs) {
        const uint64_t sent = microsSince(t0);
        StrixClient::Reply r =
            client.call(MsgType::Bootstrap, tenant, req.payload);
        if (!checkReply(r, keyset, req.expect))
            return false;
        lat_us.push_back(microsSince(t0) - sent);
    }
    secs = double(microsSince(t0)) * 1e-6;
    return true;
}

/**
 * @p sessions pipelined connections, session s serving tenant
 * `tenants[s % tenants.size()]`, each keeping kWindow requests in
 * flight. Replies may arrive out of submission order; latency is
 * matched by request id.
 */
bool
runBatched(uint16_t port, int sessions,
           const std::vector<uint64_t> &tenants,
           const std::vector<const ClientKeyset *> &keysets,
           const std::vector<Prepared> &reqs, double &secs,
           std::vector<uint64_t> &lat_us)
{
    std::vector<std::vector<uint64_t>> per_thread((size_t(sessions)));
    std::vector<char> ok(size_t(sessions), 1);
    auto t0 = BenchClock::now();
    std::vector<std::thread> threads;
    for (int s = 0; s < sessions; ++s) {
        threads.emplace_back([&, s] {
            const uint64_t tenant = tenants[size_t(s) % tenants.size()];
            const ClientKeyset &keyset =
                *keysets[size_t(s) % keysets.size()];
            StrixClient client;
            if (!client.connectLoopback(port)) {
                ok[size_t(s)] = 0;
                return;
            }
            std::map<uint64_t, std::pair<uint64_t, int64_t>> open;
            auto harvest = [&] {
                StrixClient::Reply r;
                if (!client.recvReply(r))
                    return false;
                auto it = open.find(r.request_id);
                if (it == open.end() ||
                    !checkReply(r, keyset, it->second.second))
                    return false;
                per_thread[size_t(s)].push_back(microsSince(t0) -
                                                it->second.first);
                open.erase(it);
                return true;
            };
            for (const Prepared &req : reqs) {
                const uint64_t id = client.send(MsgType::Bootstrap,
                                                tenant, req.payload);
                if (id == 0) {
                    ok[size_t(s)] = 0;
                    return;
                }
                open.emplace(id,
                             std::make_pair(microsSince(t0), req.expect));
                while (open.size() >= kWindow)
                    if (!harvest()) {
                        ok[size_t(s)] = 0;
                        return;
                    }
            }
            while (!open.empty())
                if (!harvest()) {
                    ok[size_t(s)] = 0;
                    return;
                }
        });
    }
    for (auto &t : threads)
        t.join();
    secs = double(microsSince(t0)) * 1e-6;
    for (size_t s = 0; s < per_thread.size(); ++s) {
        if (!ok[s])
            return false;
        lat_us.insert(lat_us.end(), per_thread[s].begin(),
                      per_thread[s].end());
    }
    return true;
}

/** Measured load against one fresh server; returns the rows. */
bool
run(bool smoke, std::vector<Row> &rows)
{
    // Same executor policy for every row: the ablation is the client
    // shape (serial vs pipelined), not a server retune. A serial
    // caller never fills the batch and eats flush_delay_us per
    // request; pipelined sessions fill it and sweep immediately.
    StrixServer::Options opts;
    opts.exec.target_batch = kWindow;
    opts.exec.flush_delay_us = 1000;
    StrixServer server(opts);
    if (!server.start()) {
        std::fprintf(stderr, "server failed to start\n");
        return false;
    }

    auto keyset1 = keysetFor(9001);
    auto keyset2 = keysetFor(9002);
    StrixClient admin;
    if (!admin.connectLoopback(server.port()) ||
        !registerTenant(admin, 1, *keyset1) ||
        !registerTenant(admin, 2, *keyset2)) {
        std::fprintf(stderr, "tenant registration failed\n");
        return false;
    }

    const int per_session = smoke ? 16 : 64;
    const std::vector<Prepared> reqs1 = prepare(*keyset1, per_session);
    const std::vector<Prepared> reqs2 = prepare(*keyset2, per_session);

    // -- serial per-call baseline -------------------------------------
    {
        Row r;
        r.name = "BM_ServerPerCall";
        std::vector<uint64_t> lat;
        double secs = 0;
        if (!runPerCall(server.port(), 1, *keyset1, reqs1, secs, lat)) {
            std::fprintf(stderr, "per-call run failed\n");
            return false;
        }
        r.req_per_s = double(per_session) / secs;
        r.p50_us = percentile(lat, 0.50);
        r.p99_us = percentile(lat, 0.99);
        rows.push_back(r);
    }
    const double baseline = rows[0].req_per_s;

    // -- pipelined sessions, one tenant (cross-connection batching) ---
    {
        Row r;
        r.name = "BM_ServerBatched/" + std::to_string(kSessions);
        std::vector<uint64_t> lat;
        double secs = 0;
        if (!runBatched(server.port(), kSessions, {1}, {keyset1.get()},
                        reqs1, secs, lat)) {
            std::fprintf(stderr, "batched run failed\n");
            return false;
        }
        r.req_per_s = double(kSessions) * per_session / secs;
        r.p50_us = percentile(lat, 0.50);
        r.p99_us = percentile(lat, 0.99);
        r.speedup = r.req_per_s / baseline;
        rows.push_back(r);
    }

    // -- pipelined sessions across two tenants (two key bundles) ------
    {
        Row r;
        r.name = "BM_ServerBatched/" + std::to_string(kSessions) + "x2";
        std::vector<uint64_t> lat;
        double secs = 0;
        // Half the sessions serve tenant 2 with its own bundle and
        // its own pre-encrypted requests; the halves run concurrently
        // so both bundles' shards are live in the one executor.
        std::vector<uint64_t> lat1, lat2;
        double secs1 = 0, secs2 = 0;
        bool ok1 = false, ok2 = false;
        std::thread t1([&] {
            ok1 = runBatched(server.port(), kSessions / 2, {1},
                             {keyset1.get()}, reqs1, secs1, lat1);
        });
        std::thread t2([&] {
            ok2 = runBatched(server.port(), kSessions / 2, {2},
                             {keyset2.get()}, reqs2, secs2, lat2);
        });
        t1.join();
        t2.join();
        if (!ok1 || !ok2) {
            std::fprintf(stderr, "multi-tenant run failed\n");
            return false;
        }
        secs = std::max(secs1, secs2);
        lat = lat1;
        lat.insert(lat.end(), lat2.begin(), lat2.end());
        r.req_per_s = double(kSessions) * per_session / secs;
        r.p50_us = percentile(lat, 0.50);
        r.p99_us = percentile(lat, 0.99);
        r.speedup = r.req_per_s / baseline;
        rows.push_back(r);
    }

    server.stop();
    return true;
}

void
print(const std::vector<Row> &rows)
{
    TextTable t;
    t.header({"load", "req/s", "p50 us", "p99 us", "vs per-call"});
    for (const Row &r : rows)
        t.row({r.name, TextTable::num(r.req_per_s, 0),
               TextTable::num(r.p50_us, 0), TextTable::num(r.p99_us, 0),
               TextTable::num(r.speedup, 2) + "x"});
    t.print();
    std::printf("\nReading: the serial client pays round trip + the "
                "executor's flush delay on every request; pipelined "
                "sessions fill the batch window so the server sweeps "
                "full-width immediately. The x2 row splits the "
                "sessions across two tenants with different key "
                "bundles -- per-bundle shards batch independently "
                "inside one executor.\n");
}

bool
writeJson(const std::string &path, const std::vector<Row> &rows,
          bool smoke)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"binary\": \"ablation_serving\",\n"
                 "  \"mode\": \"measured\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"sessions\": %d,\n"
                 "  \"window\": %zu,\n"
                 "  \"rows\": [",
                 smoke ? "true" : "false", kSessions, kWindow);
    for (size_t i = 0; i < rows.size(); ++i)
        std::fprintf(f,
                     "%s\n    {\"name\": \"%s\", \"req_per_s\": %.2f, "
                     "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                     "\"speedup\": %.3f}",
                     i ? "," : "", rows[i].name.c_str(),
                     rows[i].req_per_s, rows[i].p50_us, rows[i].p99_us,
                     rows[i].speedup);
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool measured_mode = false;
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--measured")) {
            measured_mode = true;
        } else if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!matchJsonFlag(argc, argv, i, json_path)) {
            std::fprintf(stderr, "usage: ablation_serving [--measured] "
                                 "[--smoke] [--json <file>]\n");
            return 2;
        }
    }

    std::printf("=== Ablation: serving daemon -- serial calls vs "
                "pipelined multi-tenant sessions ===\n\n");
    if (!measured_mode) {
        std::printf("(analytic section: none; pass --measured to "
                    "drive a live loopback StrixServer with real "
                    "PBS)\n");
        return 0;
    }

    std::printf("-- measured: %d sessions x window %zu, software PBS "
                "(toy set n=48 N=512), decode-checked --\n\n",
                kSessions, kWindow);
    std::vector<Row> rows;
    if (!run(smoke, rows))
        return 1;
    print(rows);
    if (!json_path.empty() && !writeJson(json_path, rows, smoke))
        return 1;
    return 0;
}
