# Empty compiler generated dependencies file for strix_workloads.
# This may be replaced when dependencies are built.
