/**
 * @file
 * Iterative radix-2 complex FFT with a precomputed plan.
 *
 * This mirrors the structure of the hardware pipelined-FFT in the
 * paper (Fig. 5): log2(M) butterfly stages with twiddle ROMs; the
 * software version applies the same dataflow sequentially. Plans are
 * cached per size.
 */

#ifndef STRIX_POLY_COMPLEX_FFT_H
#define STRIX_POLY_COMPLEX_FFT_H

#include <complex>
#include <cstddef>
#include <vector>

namespace strix {

using Cplx = std::complex<double>;

/**
 * Largest log2 size the process-wide plan caches accept. 2^40 points
 * is far beyond any realistic ring dimension; the bound only sizes
 * the fixed slot arrays backing the lock-free caches.
 */
inline constexpr size_t kMaxFftLog2 = 40;

/**
 * FFT plan for a fixed power-of-two size M: bit-reversal permutation
 * and per-stage twiddle factors.
 */
class FftPlan
{
  public:
    /** Build a plan for size @p m (power of two, >= 2). */
    explicit FftPlan(size_t m);

    size_t size() const { return m_; }

    /**
     * In-place forward transform with positive exponent convention:
     * X_k = sum_j x_j * exp(+2*pi*i*j*k / M).
     */
    void forward(Cplx *data) const;

    /**
     * In-place inverse transform (negative exponent), scaled by 1/M:
     * x_j = (1/M) sum_k X_k * exp(-2*pi*i*j*k / M).
     */
    void inverse(Cplx *data) const;

    /**
     * Obtain a cached plan for size @p m. Thread-safe: the first call
     * for a size builds and publishes the plan under a lock; every
     * later call is a single lock-free acquire load. Returned
     * references stay valid for the process lifetime.
     */
    static const FftPlan &get(size_t m);

    /**
     * Build and publish the plan for size @p m ahead of time so that
     * subsequent get() calls -- including concurrent ones on the PBS
     * hot path -- never take the construction lock.
     */
    static void prewarm(size_t m);

  private:
    void transform(Cplx *data, bool positive_exponent) const;

    size_t m_;
    std::vector<size_t> bit_reverse_;
    /** Twiddles w^j = exp(+2*pi*i*j/M) for j in [0, M/2). */
    std::vector<Cplx> twiddles_;
};

} // namespace strix

#endif // STRIX_POLY_COMPLEX_FFT_H
