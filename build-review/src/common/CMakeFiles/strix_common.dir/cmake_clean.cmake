file(REMOVE_RECURSE
  "CMakeFiles/strix_common.dir/parallel.cpp.o"
  "CMakeFiles/strix_common.dir/parallel.cpp.o.d"
  "CMakeFiles/strix_common.dir/random.cpp.o"
  "CMakeFiles/strix_common.dir/random.cpp.o.d"
  "CMakeFiles/strix_common.dir/table.cpp.o"
  "CMakeFiles/strix_common.dir/table.cpp.o.d"
  "CMakeFiles/strix_common.dir/types.cpp.o"
  "CMakeFiles/strix_common.dir/types.cpp.o.d"
  "libstrix_common.a"
  "libstrix_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strix_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
