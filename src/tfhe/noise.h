/**
 * @file
 * Noise analysis for TFHE operations.
 *
 * TFHE correctness is a noise budget: every homomorphic operation
 * adds variance, and decryption fails once the noise crosses half an
 * encoding step. This module provides (a) the standard analytic
 * variance formulas for each operation (fresh encryption, linear
 * combinations, external product, blind rotation, modulus switching,
 * keyswitching) and (b) empirical measurement helpers the tests use
 * to validate the formulas against the real implementation.
 *
 * All variances are expressed on the torus (fraction of 1), i.e. a
 * fresh encryption with stddev sigma has variance sigma^2.
 */

#ifndef STRIX_TFHE_NOISE_H
#define STRIX_TFHE_NOISE_H

#include <cmath>
#include <vector>

#include "tfhe/params.h"

namespace strix {

/** Analytic variance predictions for the TFHE operations. */
class NoiseModel
{
  public:
    explicit NoiseModel(const TfheParams &p) : p_(p) {}

    /** Variance of a fresh LWE encryption. */
    double freshLwe() const { return sq(p_.lwe_noise); }

    /** Variance of a fresh GLWE encryption. */
    double freshGlwe() const { return sq(p_.glwe_noise); }

    /**
     * Variance after an integer linear combination sum_i w_i * c_i of
     * independent ciphertexts with variances v.
     */
    static double linearCombination(const std::vector<int32_t> &w,
                                    const std::vector<double> &v);

    /**
     * Variance added by one external product GGSW(bit) [*] GLWE
     * (the standard bound, e.g. Chillotti et al. 2020, Thm 4.2):
     *
     *   V_out <= V_in + (k+1) * l * N * (B/2)^2 * V_ggsw
     *            + (1 + k*N) * eps^2
     *
     * where eps = q / (2 B^l) is the gadget rounding error (Eq. (3)).
     */
    double externalProduct(double v_in) const;

    /** Variance after a full blind rotation (n CMux iterations). */
    double blindRotation() const;

    /**
     * Variance added by switching the modulus from q to 2N: the
     * rounding of n+1 coefficients adds ~ (n/12) * (1/(2N))^2 to the
     * *phase* (in units of the 2N grid mapped back to the torus).
     */
    double modSwitch() const;

    /**
     * Variance after keyswitching a ciphertext of variance v_in:
     *   V_out <= V_in + kN * l_ks * V_ksk * (base/2)^2-ish digit
     *   factor + kN * eps_ks^2 rounding.
     * We use balanced (signed) digits, so the digit variance factor
     * is E[d^2] <= (base/2)^2 (worst case).
     */
    double keySwitch(double v_in) const;

    /** Variance of the LWE produced by one full PBS (+ keyswitch). */
    double pbsOutput() const;

    /**
     * Maximum tolerable phase stddev for decoding a msg_space-sized
     * message with failure probability ~erfc(z/sqrt(2)): half a step
     * divided by z standard deviations.
     */
    static double
    decodableStddev(uint64_t msg_space, double z = 6.0)
    {
        // half an encoding step = 1/(2*msg_space), divided by z.
        return 1.0 / (2.0 * double(msg_space) * z);
    }

    /** True if a PBS output decodes reliably in msg_space. */
    bool pbsDecodes(uint64_t msg_space, double z = 6.0) const
    {
        return std::sqrt(pbsOutput()) < decodableStddev(msg_space, z);
    }

  private:
    static double sq(double x) { return x * x; }

    TfheParams p_;
};

/**
 * Empirical phase-error statistics, collected by encrypting known
 * messages, applying an operation, and measuring the centered
 * distance between the resulting phase and the expected value.
 */
struct NoiseStats
{
    double mean = 0.0;     //!< mean signed error (torus units)
    double variance = 0.0; //!< error variance (torus units^2)
    double worst = 0.0;    //!< max |error|
    size_t samples = 0;

    /** Accumulate one signed torus error. */
    void add(double err);
    /** Finalize mean/variance (call once after all add()s). */
    void finalize();
};

} // namespace strix

#endif // STRIX_TFHE_NOISE_H
