/**
 * @file
 * GGSW ciphertexts and the external product.
 *
 * A GGSW ciphertext of integer message m under GLWE key z is the
 * (k+1)*lb x (k+1) matrix of polynomials (Sec. II-D): row (i, j) is a
 * GLWE encryption of zero plus m * q/B^{j+1} placed on component i.
 * The external product GGSW(m) [*] GLWE(M) = GLWE(m*M) decomposes each
 * GLWE component and multiply-accumulates against the matrix rows
 * (Algorithm 1, lines 7-10) -- the core of every blind-rotation
 * iteration.
 */

#ifndef STRIX_TFHE_GGSW_H
#define STRIX_TFHE_GGSW_H

#include <vector>

#include "tfhe/decompose.h"
#include "tfhe/glwe.h"

namespace strix {

/** GGSW ciphertext: (k+1)*levels GLWE rows. */
class GgswCiphertext
{
  public:
    GgswCiphertext() = default;
    GgswCiphertext(uint32_t k, uint32_t big_n, const GadgetParams &g);

    uint32_t k() const { return k_; }
    uint32_t ringDim() const { return big_n_; }
    const GadgetParams &gadget() const { return g_; }
    uint32_t rows() const { return static_cast<uint32_t>(rows_.size()); }

    /** Row r = block * levels + level; block i targets component i. */
    GlweCiphertext &row(size_t r) { return rows_[r]; }
    const GlweCiphertext &row(size_t r) const { return rows_[r]; }

  private:
    uint32_t k_ = 0;
    uint32_t big_n_ = 0;
    GadgetParams g_{0, 0};
    std::vector<GlweCiphertext> rows_;
};

/** Encrypt integer @p m (usually a key bit) as a GGSW ciphertext. */
GgswCiphertext ggswEncrypt(const GlweKey &key, int32_t m,
                           const GadgetParams &g, double stddev, Rng &rng);

/**
 * Seeded GGSW encryption: every mask polynomial is pure PRNG output
 * from a per-row fork of the stream rooted at @p mask_root (row
 * (block, level) uses stream id @p stream_base + block*levels +
 * level), so a holder of the root seed regenerates all masks and only
 * the k+1 body polynomials per GGSW need shipping (the BSK2 frame).
 *
 * The message is placed in *body form*: ggswEncrypt adds m*scale to
 * mask component `block`, which is fine when masks travel with the
 * ciphertext but leaks m outright once the mask is declared to be
 * public PRNG output (shipped-mask minus regenerated-PRNG = m*scale).
 * Here the masks stay untouched and the algebraically equivalent
 * -m*scale*z_block is folded into the body instead (for block == k the
 * message lands on the body either way). Both forms have identical
 * row phase E - m*scale*z_block, hence identical external-product
 * semantics and noise; only the ciphertext representation differs.
 */
GgswCiphertext ggswEncryptSeeded(const GlweKey &key, int32_t m,
                                 const GadgetParams &g, double stddev,
                                 const Rng &mask_root,
                                 uint64_t stream_base, Rng &noise_rng);

/**
 * External product: out = ggsw [*] glwe, computed exactly (Karatsuba).
 * Used as the reference against the FFT-domain path.
 */
void externalProduct(GlweCiphertext &out, const GgswCiphertext &ggsw,
                     const GlweCiphertext &glwe);

/**
 * Reusable working buffers for the FFT external-product path.
 *
 * One instance serves one thread: blind rotation reuses the same
 * buffers across all n CMux iterations, so the hot loop performs no
 * heap allocation, and the batched PBS path gives each pool worker
 * its own instance so no hidden shared state remains on the hot path.
 * Buffers are sized lazily on first use and resized only when the
 * parameter shape changes; results are bit-identical with or without
 * an external scratch.
 */
struct PbsScratch
{
    /**
     * Contiguous digit matrix for the fused external product:
     * (k+1)*l rows of N coefficients, decomposed component-major so
     * row comp*l + level holds digit `level` of GLWE component `comp`
     * -- exactly the bsk row order.
     */
    std::vector<int32_t> digit_coeffs;
    /**
     * Frequency images of every digit row, (k+1)*l rows of N/2 points,
     * produced by one NegacyclicFft::forwardBatch sweep.
     */
    std::vector<Cplx> fdigits;
    std::vector<FreqPolynomial> acc;    //!< per-column freq accumulators
    GlweCiphertext diff;                //!< CMux rotate-minus-one input
    GlweCiphertext prod;                //!< external-product output
    GlweCiphertext sum;                 //!< unrolled-PBS pair accumulator
    TorusPolynomial rot_tmp;            //!< unrolled-PBS rotation scratch
    std::vector<IntPolynomial> digits;  //!< per-poly reference path digits
    FreqPolynomial fdigit;              //!< per-poly reference digit FFT
};

/**
 * GGSW with rows pre-transformed to the frequency domain; this is the
 * form in which Strix stores the bootstrapping key in the global
 * scratchpad (bsk polynomials arrive at the VMA unit already in the
 * Fourier domain).
 */
class GgswFft
{
  public:
    GgswFft() = default;

    /** Transform every polynomial of @p ggsw. */
    GgswFft(const GgswCiphertext &ggsw);

    /**
     * Rebuild from raw frequency rows (deserialization): @p rows is
     * the flat (k+1)*levels*(k+1) layout rawRows() exposes, each of
     * big_n/2 points. Shape-checked; panics on mismatch.
     */
    static GgswFft fromRawRows(uint32_t k, uint32_t big_n,
                               const GadgetParams &g,
                               std::vector<FreqPolynomial> rows);

    uint32_t k() const { return k_; }
    uint32_t ringDim() const { return big_n_; }
    const GadgetParams &gadget() const { return g_; }

    /**
     * Flat frequency-row storage, row-major over (row, column):
     * entry r*(k+1)+c is row(r, c). Exposed for serialization; the
     * doubles round-trip bit-exactly, so a shipped key evaluates
     * bit-identically to the original.
     */
    const std::vector<FreqPolynomial> &rawRows() const { return rows_; }

    /** Frequency image of row r, column c. */
    const FreqPolynomial &row(size_t r, size_t c) const
    {
        return rows_[r * (k_ + 1) + c];
    }

    /**
     * External product with frequency-domain accumulation:
     * decompose -> FFT -> multiply-accumulate -> IFFT, exactly the
     * PBS-cluster dataflow (Rotator output -> Decomposer -> FFT ->
     * VMA -> IFFT -> Accumulator). All working storage comes from
     * @p scratch (one instance per thread).
     *
     * The FFT stage is batch-fused: all (k+1)*l decomposition digits
     * land in one contiguous scratch matrix and go through a single
     * NegacyclicFft::forwardBatch sweep (Strix's streaming-FFT batch
     * schedule) instead of (k+1)*l isolated transforms. Results are
     * bit-identical to externalProductPerPoly, the per-transform
     * reference kept for tests and A/B benchmarks.
     */
    void externalProduct(GlweCiphertext &out, const GlweCiphertext &glwe,
                         PbsScratch &scratch) const;

    /** Convenience overload with a throwaway local scratch. */
    void externalProduct(GlweCiphertext &out,
                         const GlweCiphertext &glwe) const;

    /**
     * Reference external product transforming one digit at a time
     * through NegacyclicFft::forward. Semantics (and bits) match
     * externalProduct exactly; kept as the A/B target the batched
     * path is tested and benchmarked against.
     */
    void externalProductPerPoly(GlweCiphertext &out,
                                const GlweCiphertext &glwe,
                                PbsScratch &scratch) const;

    /**
     * Fused CMux used by blind rotation:
     *   acc <- acc + ggsw [*] (X^power * acc - acc),
     * selecting between acc and its rotation with one external
     * product (Algorithm 1, lines 6-11).
     */
    void cmuxRotate(GlweCiphertext &acc, uint32_t power,
                    PbsScratch &scratch) const;

    /** Convenience overload with a throwaway local scratch. */
    void cmuxRotate(GlweCiphertext &acc, uint32_t power) const;

  private:
    uint32_t k_ = 0;
    uint32_t big_n_ = 0;
    GadgetParams g_{0, 0};
    std::vector<FreqPolynomial> rows_;
};

} // namespace strix

#endif // STRIX_TFHE_GGSW_H
