/**
 * @file
 * BatchExecutor: cross-session dynamic batching for the PBS stream --
 * the software rendering of Strix's two-level ciphertext batching.
 *
 * The paper wins throughput by keeping full-width ciphertext batches
 * streaming through the PBS pipeline. `ServerContext::bootstrapBatch`
 * already batches *within* one caller's call; this executor closes the
 * remaining gap by coalescing *across* callers: independent sessions
 * submit single PBS requests and get futures back, and requests that
 * share a params-shard -- the same `EvalKeys` bundle by pointer
 * identity, which is what `ContextCache` hands out -- are swept
 * together as one full-width `bootstrapBatch` call. Requests from
 * different shards never co-batch (cross-tenant isolation by
 * construction: a sweep runs under exactly one key bundle).
 *
 * Flush policy is the buffered-sender shape: a shard flushes when its
 * fill reaches `target_batch` requests (size trigger) or when its
 * oldest request has waited `flush_delay_us` (deadline trigger), so a
 * saturated stream runs at full occupancy while a trickle still meets
 * a microsecond-scale latency bound. The staging is double-buffered:
 * the dispatcher swaps a shard's fill queue out under the lock and
 * runs the decompose -> batch-FFT -> MAC sweep outside it, so the next
 * batch fills while the current one is in flight. (Within the sweep,
 * the PR 4 fused external product already streams all decomposition
 * digits through one planned batch FFT -- the executor supplies that
 * pipeline with full batches, which is the paper's TvLP knob in
 * software.)
 *
 * Time comes from a WaitableClock, so the deadline path is testable
 * with a ManualWaitableClock and no real sleeps.
 *
 * Thread-safety: every member is safe to call concurrently. Results
 * are bit-identical to calling `bootstrap`/`bootstrapBatch` directly
 * -- batching changes scheduling, never values (asserted by
 * tests/test_batch_executor.cpp).
 */

#ifndef STRIX_TFHE_BATCH_EXECUTOR_H
#define STRIX_TFHE_BATCH_EXECUTOR_H

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/waitclock.h"
#include "tfhe/server_context.h"

namespace strix {

/** Coalesces PBS requests across sessions into full-width sweeps. */
class BatchExecutor
{
  public:
    /** Flush-policy knobs. */
    struct Options
    {
        /**
         * Size trigger: a shard flushes as soon as this many requests
         * are waiting (values < 1 are treated as 1). This is the
         * sweep width the occupancy metric is measured against.
         */
        size_t target_batch = 16;

        /**
         * Deadline trigger: maximum time a request may wait in the
         * fill queue before its shard is flushed regardless of width.
         * 0 flushes on the dispatcher's next pass.
         */
        uint64_t flush_delay_us = 200;

        /**
         * Worker-pool size for each shard's sweep, including the
         * dispatcher thread (0 = ThreadPool's default).
         */
        unsigned sweep_threads = 0;
    };

    /** Monotonic counters; a consistent snapshot via stats(). */
    struct Stats
    {
        uint64_t submitted = 0;        //!< requests accepted
        uint64_t completed = 0;        //!< futures fulfilled
        uint64_t sweeps = 0;           //!< bootstrapBatch calls issued
        uint64_t swept_lwes = 0;       //!< requests across all sweeps
        uint64_t size_flushes = 0;     //!< sweeps triggered by width
        uint64_t deadline_flushes = 0; //!< sweeps triggered by age
        uint64_t drain_flushes = 0;    //!< sweeps triggered by shutdown
        size_t shards = 0;             //!< distinct EvalKeys seen

        /** Mean batch width over target width: 1.0 = full sweeps. */
        double occupancy(size_t target_batch) const
        {
            if (sweeps == 0 || target_batch == 0)
                return 0.0;
            return double(swept_lwes) /
                   (double(sweeps) * double(target_batch));
        }
    };

    /**
     * Start the dispatcher. @p clock defaults to a fresh
     * SteadyWaitableClock; tests pass a ManualWaitableClock to drive
     * the deadline trigger deterministically.
     */
    explicit BatchExecutor(Options opts,
                           std::shared_ptr<WaitableClock> clock = nullptr);

    /** Default Options, real clock. */
    BatchExecutor();

    /** Drains every pending request (see shutdown()), then joins. */
    ~BatchExecutor();

    BatchExecutor(const BatchExecutor &) = delete;
    BatchExecutor &operator=(const BatchExecutor &) = delete;

    /**
     * Queue one PBS+KS of @p ct against @p test_vector under @p keys
     * (panics on null, or after shutdown). The future yields a result
     * bit-identical to `ServerContext(keys).bootstrap(ct, tv)`; a
     * failed sweep delivers the exception through every affected
     * future instead. Safe from any thread; requests sharing a keys
     * pointer coalesce into one sweep.
     */
    std::future<LweCiphertext> submit(std::shared_ptr<const EvalKeys> keys,
                                      LweCiphertext ct,
                                      TorusPolynomial test_vector)
        STRIX_EXCLUDES(m_);

    /**
     * Block until every request submitted so far has completed.
     * Concurrent submitters can re-fill the queues afterwards; drain
     * only promises a moment of emptiness.
     */
    void drain() STRIX_EXCLUDES(m_);

    /**
     * Mark everything currently queued as due and wake the dispatcher
     * (non-blocking); requests submitted later fall back to the
     * normal triggers. A serving layer's shutdown drain calls this
     * each pass so pending responses are fulfilled promptly even
     * under a very long flush_delay_us policy. Sweeps this forces are
     * counted as drain_flushes.
     */
    void flushNow() STRIX_EXCLUDES(m_);

    /**
     * Stop accepting submissions, flush everything still queued
     * (futures are fulfilled, not dropped), and join the dispatcher.
     * Idempotent and safe to call concurrently; the destructor calls
     * it. Submitting afterwards panics.
     */
    void shutdown() STRIX_EXCLUDES(m_, join_mutex_);

    /**
     * Release shards whose fill queue is empty and whose sweep is not
     * currently running, dropping the executor's reference to their
     * EvalKeys bundle. A serving layer calls this after budget-driven
     * key eviction so a departed tenant's bundle does not stay pinned
     * by the executor forever; the shard is recreated transparently
     * on that bundle's next submit. Returns the shards released.
     */
    size_t releaseIdleShards() STRIX_EXCLUDES(m_);

    /** Snapshot of the counters. */
    Stats stats() const STRIX_EXCLUDES(m_);

    const Options &options() const { return opts_; }

  private:
    /** One queued PBS request. */
    struct Request
    {
        uint64_t submit_us = 0; //!< clock time at submission
        LweCiphertext ct;
        TorusPolynomial tv;
        std::promise<LweCiphertext> result;
    };

    /**
     * Per-params-shard state: the key bundle, a private ServerContext
     * whose pool runs this shard's sweeps, and the fill queue the
     * dispatcher swaps batches out of. Shards are created on first
     * submit and live until shutdown or releaseIdleShards(); the
     * dispatcher marks a shard `sweeping` under the lock before
     * running its sweep unlocked, and release skips sweeping shards,
     * so raw Shard pointers the dispatcher holds across the unlocked
     * sweep stay valid.
     */
    struct Shard
    {
        Shard(std::shared_ptr<const EvalKeys> k, unsigned sweep_threads);

        std::shared_ptr<const EvalKeys> keys;
        ServerContext eval;
        // Guarded by the owning BatchExecutor's m_. The analysis has
        // no way to express a guard that lives in another object, so
        // this contract is manual: every fill access sits in a
        // BatchExecutor member that provably holds m_ (submit and the
        // locked sections of dispatchLoop); runSweep never touches it.
        std::deque<Request> fill;
        // Guarded by m_ like fill: true while the dispatcher runs
        // this shard's sweep outside the lock.
        bool sweeping = false;
    };

    void dispatchLoop() STRIX_EXCLUDES(m_);

    /** Run one sweep outside the lock and fulfill its promises. */
    static void runSweep(Shard &shard, std::vector<Request> batch);

    const Options opts_;
    const std::shared_ptr<WaitableClock> clock_;

    // Lock order: m_ is never held across a WaitableClock call -- the
    // dispatcher releases it around clock_->wait()/waitUntil() and
    // producers signal() after dropping it, so BatchExecutor::m_ and
    // the clock's internal mutex are never nested.
    mutable Mutex m_;
    std::map<const EvalKeys *, std::unique_ptr<Shard>> shards_
        STRIX_GUARDED_BY(m_);
    Stats stats_ STRIX_GUARDED_BY(m_);
    uint64_t in_flight_ STRIX_GUARDED_BY(m_) = 0; //!< submitted - completed
    bool stopping_ STRIX_GUARDED_BY(m_) = false;
    bool flush_now_ STRIX_GUARDED_BY(m_) = false; //!< force-flush latch
    CondVar drained_cv_; //!< signaled at in_flight_ == 0

    Mutex join_mutex_;       //!< serializes concurrent shutdown()s
    std::thread dispatcher_; //!< started last: sees a complete object
};

} // namespace strix

#endif // STRIX_TFHE_BATCH_EXECUTOR_H
