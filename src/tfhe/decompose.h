/**
 * @file
 * Signed gadget decomposition (Algorithm 1 line 7 / Eq. (3)).
 *
 * Decompose(a, l, B): round a to the closest multiple of q/B^l, then
 * write the result as sum_{j=1..l} d_j * q/B^j with balanced digits
 * d_j in [-B/2, B/2). The approximation error satisfies
 *     | a - sum d_j q/B^j |_inf <= q / (2 B^l),
 * which is Eq. (3) of the paper.
 */

#ifndef STRIX_TFHE_DECOMPOSE_H
#define STRIX_TFHE_DECOMPOSE_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "poly/polynomial.h"

namespace strix {

/** Decomposition configuration. */
struct GadgetParams
{
    uint32_t base_bits; //!< log2(B)
    uint32_t levels;    //!< l

    uint32_t base() const { return 1u << base_bits; }

    /** q/B^j for level j in [1, levels]: shift amount 32 - j*base_bits. */
    Torus32 levelScale(uint32_t j) const
    {
        return Torus32{1} << (kTorus32Bits - j * base_bits);
    }
};

/**
 * Decompose one torus scalar into @p g.levels balanced digits
 * (digit j corresponds to weight q/B^{j+1}, i.e. most significant
 * first, matching the bsk row layout).
 */
void gadgetDecompose(int32_t *digits, Torus32 a, const GadgetParams &g);

/** Recompose digits back to the torus: sum_j d_j * q/B^{j+1}. */
Torus32 gadgetRecompose(const int32_t *digits, const GadgetParams &g);

/**
 * Decompose every coefficient of @p poly; out[j] is the level-(j+1)
 * IntPolynomial. out is resized to g.levels polynomials.
 */
void gadgetDecomposePoly(std::vector<IntPolynomial> &out,
                         const TorusPolynomial &poly, const GadgetParams &g);

/**
 * Decompose every coefficient of @p poly into a caller-owned
 * contiguous level-major matrix: out[j*n + i] is digit level j+1 of
 * coefficient i. @p out must hold g.levels * poly.size() entries.
 * Digits are identical to gadgetDecomposePoly's; the contiguous
 * layout is what the batched external-product FFT sweeps in one pass.
 */
void gadgetDecomposePolyInto(int32_t *out, const TorusPolynomial &poly,
                             const GadgetParams &g);

} // namespace strix

#endif // STRIX_TFHE_DECOMPOSE_H
