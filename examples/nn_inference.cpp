/**
 * @file
 * Encrypted neural-network inference, end to end.
 *
 * Part 1 runs a small real encrypted multilayer perceptron on the
 * software TFHE library: 4 encrypted inputs -> 3 hidden neurons with
 * PBS ReLU -> 2 output scores, verified against the cleartext
 * network.
 *
 * Part 2 loads the paper's Zama Deep-NN benchmark graphs (NN-20/50/
 * 100) and schedules them on the Strix simulator, printing per-layer
 * epoch counts and the CPU/GPU/Strix comparison of Fig. 7.
 */

#include <cstdio>
#include <vector>

#include "baselines/cpu_model.h"
#include "baselines/gpu_model.h"
#include "strix/accelerator.h"
#include "tfhe/client_keyset.h"
#include "tfhe/server_context.h"
#include "workloads/deepnn.h"

using namespace strix;

namespace {

/** Cleartext reference MLP with small signed integer weights. */
struct TinyMlp
{
    // 3 hidden neurons x 4 inputs, then 2 outputs x 3 hidden.
    int w1[3][4] = {{1, -1, 1, 0}, {0, 1, -1, 1}, {1, 1, 0, -1}};
    int w2[2][3] = {{1, -1, 1}, {-1, 1, 1}};

    static int64_t relu(int64_t v) { return v > 0 ? v : 0; }
};

/**
 * Homomorphic linear layer: out_j = sum_i w[j][i] * in_i. Weights are
 * plaintext (model is public, data is encrypted), so this is LWE
 * scalar arithmetic -- no bootstrapping needed.
 */
LweCiphertext
linearCombo(const std::vector<LweCiphertext> &in, const int *w,
            size_t n, uint32_t dim, uint64_t space)
{
    // Sum of centered encodings of x_i with weights w_i encodes
    // sum w_i x_i + (sum w_i - 1)/2 half-steps; recenter accordingly.
    LweCiphertext acc(dim);
    int weight_sum = 0;
    for (size_t i = 0; i < n; ++i) {
        if (w[i] == 0)
            continue;
        LweCiphertext scaled = in[i];
        scaled.scalarMulAssign(w[i]);
        acc.addAssign(scaled);
        weight_sum += w[i];
    }
    // Each centered encoding carries +1/(4p); after weighting, the
    // total offset is weight_sum/(4p); restore exactly one.
    Torus32 correction = encodeMessage(1, 4 * space) *
                         static_cast<uint32_t>(weight_sum - 1);
    LweCiphertext fix = LweCiphertext::trivial(dim, 0u - correction);
    acc.addAssign(fix);
    return acc;
}

} // namespace

int
main()
{
    // ---------------------------------------------------------------
    // Part 1: a real encrypted MLP on the software library.
    // ---------------------------------------------------------------
    std::printf("== Part 1: encrypted 4-3-2 MLP on software TFHE ==\n");
    // Signed values in [-8, 8) via two's wrap. Set I's modulus-switch
    // rounding noise (~0.003 of the torus at n=500, N=1024) needs the
    // 1/(4*space) bucket margin to stay several sigma wide: space=16
    // gives ~5 sigma, space=32 would fail ~1% of bootstraps.
    const uint64_t space = 16;
    ClientKeyset client(paramsSetI(), 555);
    ServerContext server(client.evalKeys());
    TinyMlp mlp;

    const int64_t inputs[4] = {3, 1, 2, 4};

    // Cleartext reference.
    int64_t hidden_ref[3], out_ref[2];
    for (int j = 0; j < 3; ++j) {
        int64_t acc = 0;
        for (int i = 0; i < 4; ++i)
            acc += mlp.w1[j][i] * inputs[i];
        hidden_ref[j] = TinyMlp::relu(acc);
    }
    for (int j = 0; j < 2; ++j) {
        int64_t acc = 0;
        for (int i = 0; i < 3; ++i)
            acc += mlp.w2[j][i] * hidden_ref[i];
        out_ref[j] = acc;
    }

    // Encrypted evaluation.
    std::vector<LweCiphertext> enc_in;
    for (int64_t v : inputs)
        enc_in.push_back(client.encryptInt(v, space));

    // All three hidden neurons share the ReLU LUT, so the layer is one
    // bootstrapBatch call: the linear parts are computed first, then
    // every PBS in the layer runs as a single batch on the context's
    // worker pool -- the software shape of Strix's ciphertext batching.
    std::vector<LweCiphertext> hidden_lin;
    for (int j = 0; j < 3; ++j)
        hidden_lin.push_back(
            linearCombo(enc_in, mlp.w1[j], 4, server.params().n, space));
    // PBS ReLU over centered small signed values: inputs in
    // [0, space) with the upper half representing negatives.
    std::vector<LweCiphertext> enc_hidden =
        server.applyLutBatch(hidden_lin, space, [&](int64_t v) {
            int64_t centered =
                v < int64_t(space) / 2 ? v : v - int64_t(space);
            return TinyMlp::relu(centered);
        });

    bool ok = true;
    std::printf("  hidden (after PBS ReLU): ");
    for (int j = 0; j < 3; ++j) {
        int64_t got = client.decryptInt(enc_hidden[j], space);
        std::printf("%lld(%lld) ", static_cast<long long>(got),
                    static_cast<long long>(hidden_ref[j]));
        ok &= got == hidden_ref[j];
    }
    std::printf("\n  outputs (linear only)  : ");
    for (int j = 0; j < 2; ++j) {
        auto lin = linearCombo(enc_hidden, mlp.w2[j], 3,
                               server.params().n, space);
        int64_t got = client.decryptInt(lin, space);
        int64_t want = (out_ref[j] % int64_t(space) + space) %
                       int64_t(space);
        std::printf("%lld(%lld) ", static_cast<long long>(got),
                    static_cast<long long>(want));
        ok &= got == want;
    }
    std::printf("\n  => %s\n\n",
                ok ? "matches cleartext network"
                   : "MISMATCH vs cleartext network");

    // ---------------------------------------------------------------
    // Part 2: the paper's Deep-NN graphs on the accelerator model.
    // ---------------------------------------------------------------
    std::printf("== Part 2: Zama Deep-NN on the Strix simulator ==\n");
    StrixAccelerator strix;
    CpuModel cpu;
    GpuModel gpu;
    const TfheParams &p = deepNnParams(1024);

    WorkloadGraph g = buildDeepNn(20);
    std::printf("NN-20 (N=1024): %llu PBS total\n",
                static_cast<unsigned long long>(g.totalPbs()));
    std::printf("  %-16s %8s %8s\n", "layer", "#PBS", "epochs");
    for (const auto &layer : g.layers()) {
        BatchPerf lp = strix.runBatch(p, layer.pbs_count);
        std::printf("  %-16s %8llu %8llu\n", layer.name.c_str(),
                    static_cast<unsigned long long>(layer.pbs_count),
                    static_cast<unsigned long long>(lp.epochs));
    }

    for (uint32_t depth : {20u, 50u, 100u}) {
        WorkloadGraph nn = buildDeepNn(depth);
        double s = strix.runGraph(p, nn).seconds * 1e3;
        double c = cpu.runGraphSeconds(p, nn) * 1e3;
        double gm = gpu.runGraphSeconds(p, nn) * 1e3;
        std::printf("NN-%-3u  CPU %8.0f ms   GPU %8.0f ms   Strix "
                    "%6.0f ms   (%.0fx / %.0fx)\n",
                    depth, c, gm, s, c / s, gm / s);
    }
    return ok ? 0 : 1;
}
