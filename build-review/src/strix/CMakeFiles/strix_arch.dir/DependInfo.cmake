
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/timeline.cpp" "src/strix/CMakeFiles/strix_arch.dir/__/sim/timeline.cpp.o" "gcc" "src/strix/CMakeFiles/strix_arch.dir/__/sim/timeline.cpp.o.d"
  "/root/repo/src/strix/accelerator.cpp" "src/strix/CMakeFiles/strix_arch.dir/accelerator.cpp.o" "gcc" "src/strix/CMakeFiles/strix_arch.dir/accelerator.cpp.o.d"
  "/root/repo/src/strix/area_model.cpp" "src/strix/CMakeFiles/strix_arch.dir/area_model.cpp.o" "gcc" "src/strix/CMakeFiles/strix_arch.dir/area_model.cpp.o.d"
  "/root/repo/src/strix/hsc.cpp" "src/strix/CMakeFiles/strix_arch.dir/hsc.cpp.o" "gcc" "src/strix/CMakeFiles/strix_arch.dir/hsc.cpp.o.d"
  "/root/repo/src/strix/noc.cpp" "src/strix/CMakeFiles/strix_arch.dir/noc.cpp.o" "gcc" "src/strix/CMakeFiles/strix_arch.dir/noc.cpp.o.d"
  "/root/repo/src/strix/scheduler.cpp" "src/strix/CMakeFiles/strix_arch.dir/scheduler.cpp.o" "gcc" "src/strix/CMakeFiles/strix_arch.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/tfhe/CMakeFiles/strix_tfhe.dir/DependInfo.cmake"
  "/root/repo/build-review/src/poly/CMakeFiles/strix_poly.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/strix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
