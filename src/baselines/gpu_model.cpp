/**
 * @file
 * GPU model implementation.
 */

#include "baselines/gpu_model.h"

#include <cmath>

namespace strix {

double
GpuModel::epochMs(const TfheParams &p) const
{
    // Anchor: NuFHE set I (n=500, N=1024, lb=2): 36 ms per device
    // batch (published: 37 ms latency, 2000 PBS/s at 72 SMs).
    constexpr double kAnchorMs = 36.0;
    constexpr double kAnchorN = 500.0;
    constexpr double kAnchorBigN = 1024.0;

    double scale = (double(p.n) / kAnchorN) *
                   (double(p.N) * std::log2(double(p.N)) /
                    (kAnchorBigN * std::log2(kAnchorBigN)));
    if (p.l_bsk > 2) {
        // Fused blind-rotation kernel only supports lb = 2; deeper
        // gadgets run the rotation as sequential FFT kernels. The
        // factor is calibrated on NuFHE's published set-II row
        // (700 ms / 500 PBS/s => 144 ms per batch = 3.17x the
        // n-scaled fused time).
        scale *= 3.17 * (double(p.l_bsk) / 3.0);
    }
    return kAnchorMs * scale;
}

double
GpuModel::runGraphSeconds(const TfheParams &p, const WorkloadGraph &g) const
{
    double seconds = 0.0;
    for (const auto &layer : g.layers()) {
        seconds += runBatchSeconds(p, layer.pbs_count);
        // Linear layers run as cuBLAS-like kernels, ~1 TMAC/s.
        seconds += double(layer.linear_macs) / 1e12;
    }
    return seconds / nn_eff_;
}

} // namespace strix
