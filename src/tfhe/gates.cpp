/**
 * @file
 * Gate bootstrapping implementation with optional phase timers.
 */

#include "tfhe/gates.h"

#include <chrono>

#include "poly/simd.h"

namespace strix {

namespace {

GateStats g_stats;
bool g_stats_on = false;

using Clock = std::chrono::steady_clock;

/** Scoped timer accumulating into a GateStats field. */
class PhaseTimer
{
  public:
    explicit PhaseTimer(double &sink)
        : sink_(sink), start_(g_stats_on ? Clock::now() : Clock::time_point{})
    {
    }
    ~PhaseTimer()
    {
        if (g_stats_on) {
            sink_ += std::chrono::duration<double>(Clock::now() - start_)
                         .count();
        }
    }

  private:
    double &sink_;
    Clock::time_point start_;
};

/** mu = 1/8 constant test vector for the sign bootstrap. */
TorusPolynomial
signTestVector(uint32_t big_n)
{
    TorusPolynomial tv(big_n);
    Torus32 mu = encodeMessage(1, 8);
    for (uint32_t j = 0; j < big_n; ++j)
        tv[j] = mu;
    return tv;
}

/** linear combo -> sign bootstrap -> keyswitch. */
LweCiphertext
signBootstrap(const ServerContext &ctx, const LweCiphertext &linear)
{
    if (g_stats_on)
        return instrumentedGateBootstrap(ctx, linear);
    TorusPolynomial tv = signTestVector(ctx.params().N);
    return ctx.bootstrap(linear, tv);
}

Torus32
eighth(int mult)
{
    return encodeMessage(mult, 8);
}

} // namespace

void
gateStatsEnable(bool on)
{
    g_stats_on = on;
}

void
gateStatsReset()
{
    g_stats = GateStats{};
}

const GateStats &
gateStats()
{
    return g_stats;
}

LweCiphertext
instrumentedGateBootstrap(const ServerContext &ctx, const LweCiphertext &linear)
{
    const TfheParams &p = ctx.params();
    const BootstrappingKey &bsk = ctx.bsk();
    const auto &eng = NegacyclicFft::get(p.N);
    const GadgetParams g{p.bg_bits, p.l_bsk};
    const uint32_t two_n = 2 * p.N;

    GlweCiphertext acc =
        GlweCiphertext::trivial(p.k, signTestVector(p.N));

    const ModSwitch ms(p.N);
    {
        PhaseTimer t(g_stats.other_pbs_s);
        const uint32_t b_tilde = ms(linear.b());
        if (b_tilde != 0) {
            GlweCiphertext rotated(p.k, p.N);
            for (uint32_t c = 0; c <= p.k; ++c)
                negacyclicRotate(rotated.poly(c), acc.poly(c),
                                 two_n - b_tilde);
            acc = std::move(rotated);
        }
    }

    // Blind rotation with per-phase timers; computation is identical
    // to GgswFft::cmuxRotate, including the batch-fused FFT sweep
    // over all (k+1)*l decomposition digits.
    const size_t nrows = (size_t(p.k) + 1) * g.levels;
    const size_t half_n = size_t(p.N) / 2;
    const PolyKernels &kernels = activeKernels();
    GlweCiphertext diff(p.k, p.N);
    std::vector<int32_t> digit_coeffs(nrows * p.N);
    std::vector<Cplx> fdigits(nrows * half_n);
    std::vector<FreqPolynomial> facc(p.k + 1);
    for (uint32_t i = 0; i < p.n; ++i) {
        const uint32_t a_tilde = ms(linear.a(i));
        if (a_tilde == 0)
            continue;
        const GgswFft &ggsw = bsk.bit(i);

        {
            PhaseTimer t(g_stats.rotate_s);
            for (uint32_t c = 0; c <= p.k; ++c)
                negacyclicRotateMinusOne(diff.poly(c), acc.poly(c),
                                         a_tilde);
        }
        for (auto &f : facc)
            f.assign(half_n, Cplx(0, 0));
        {
            PhaseTimer t(g_stats.decompose_s);
            for (uint32_t comp = 0; comp <= p.k; ++comp)
                gadgetDecomposePolyInto(
                    digit_coeffs.data() + size_t(comp) * g.levels * p.N,
                    diff.poly(comp), g);
        }
        {
            PhaseTimer t(g_stats.fft_s);
            eng.forwardBatch(fdigits.data(), digit_coeffs.data(), nrows);
        }
        {
            PhaseTimer t(g_stats.vecmult_s);
            for (size_t r = 0; r < nrows; ++r) {
                const Cplx *fdigit = fdigits.data() + r * half_n;
                for (uint32_t c = 0; c <= p.k; ++c)
                    kernels.mulAccumulate(facc[c].data(), fdigit,
                                          ggsw.row(r, c).data(),
                                          half_n);
            }
        }
        {
            PhaseTimer t(g_stats.ifft_accum_s);
            TorusPolynomial prod(p.N);
            for (uint32_t c = 0; c <= p.k; ++c) {
                eng.inverse(prod, facc[c]);
                acc.poly(c).addAssign(prod);
            }
        }
    }

    LweCiphertext big;
    {
        PhaseTimer t(g_stats.other_pbs_s);
        big = sampleExtract(acc, 0);
    }
    PhaseTimer t(g_stats.keyswitch_s);
    return keySwitch(big, ctx.ksk());
}

LweCiphertext
gateNand(const ServerContext &ctx, const LweCiphertext &a,
         const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, eighth(1));
    {
        PhaseTimer t(g_stats.linear_s);
        lin.subAssign(a);
        lin.subAssign(b);
    }
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateAnd(const ServerContext &ctx, const LweCiphertext &a,
        const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, eighth(-1));
    lin.addAssign(a);
    lin.addAssign(b);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateOr(const ServerContext &ctx, const LweCiphertext &a,
       const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, eighth(1));
    lin.addAssign(a);
    lin.addAssign(b);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateNor(const ServerContext &ctx, const LweCiphertext &a,
        const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, eighth(-1));
    lin.subAssign(a);
    lin.subAssign(b);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateXor(const ServerContext &ctx, const LweCiphertext &a,
        const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, encodeMessage(1, 4));
    LweCiphertext sum = a;
    sum.addAssign(b);
    sum.scalarMulAssign(2);
    lin.addAssign(sum);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateXnor(const ServerContext &ctx, const LweCiphertext &a,
         const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, encodeMessage(-1, 4));
    LweCiphertext sum = a;
    sum.addAssign(b);
    sum.scalarMulAssign(2);
    lin.subAssign(sum);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateAndNY(const ServerContext &ctx, const LweCiphertext &a,
          const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, eighth(-1));
    lin.subAssign(a);
    lin.addAssign(b);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateAndYN(const ServerContext &ctx, const LweCiphertext &a,
          const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, eighth(-1));
    lin.addAssign(a);
    lin.subAssign(b);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateOrNY(const ServerContext &ctx, const LweCiphertext &a,
         const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, eighth(1));
    lin.subAssign(a);
    lin.addAssign(b);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateOrYN(const ServerContext &ctx, const LweCiphertext &a,
         const LweCiphertext &b)
{
    LweCiphertext lin =
        LweCiphertext::trivial(ctx.params().n, eighth(1));
    lin.addAssign(a);
    lin.subAssign(b);
    return signBootstrap(ctx, lin);
}

LweCiphertext
gateNot(const LweCiphertext &a)
{
    LweCiphertext out = a;
    out.negate();
    return out;
}

LweCiphertext
gateMux(const ServerContext &ctx, const LweCiphertext &a,
        const LweCiphertext &b, const LweCiphertext &c)
{
    const TfheParams &p = ctx.params();
    TorusPolynomial tv = signTestVector(p.N);

    // u1 = PBS(a AND b), u2 = PBS(not a AND c), both kept at
    // dimension k*N; one keyswitch at the end (as in the TFHE lib).
    LweCiphertext lin1 = LweCiphertext::trivial(p.n, eighth(-1));
    lin1.addAssign(a);
    lin1.addAssign(b);
    LweCiphertext u1 = programmableBootstrap(lin1, tv, ctx.bsk());

    LweCiphertext lin2 = LweCiphertext::trivial(p.n, eighth(-1));
    lin2.subAssign(a);
    lin2.addAssign(c);
    LweCiphertext u2 = programmableBootstrap(lin2, tv, ctx.bsk());

    u1.addAssign(u2);
    LweCiphertext bias =
        LweCiphertext::trivial(u1.dim(), eighth(1));
    u1.addAssign(bias);
    return keySwitch(u1, ctx.ksk());
}

} // namespace strix
