/**
 * @file
 * Area/power model constants and scaling rules.
 *
 * Calibration anchors (paper Table III / Table VI, TSMC 28nm):
 *   local scratchpad 0.625 MB     -> 0.92 mm^2, 0.47 W
 *   rotator     (16 lanes total)  -> 0.02 mm^2, 0.01 W
 *   decomposer  (16 lanes total)  -> 0.28 mm^2, 0.02 W
 *   I/FFTU (4x 8192-pt, CLP=4)    -> 7.23 mm^2, 5.49 W  (1.81/unit)
 *   VMA         (16 lanes total)  -> 0.63 mm^2, 0.10 W
 *   accumulator (16 lanes total)  -> 0.32 mm^2, 0.13 W
 *   16384-pt CLP=4 FFT unit       -> 3.13 mm^2 (Table VI, no fold)
 *   global scratchpad 21 MB       -> 51.40 mm^2, 26.24 W
 *   NoC (8 cores)                 -> 0.04 mm^2, 0.01 W
 *   HBM2 PHY                      -> 14.90 mm^2, 1.23 W
 */

#include "strix/area_model.h"

#include <cmath>

namespace strix {

namespace {

// FFT instance: butterfly logic scales with lanes * stages, the
// shuffle delay-line SRAM with point count. Constants fit the two
// anchors (8192-pt: 1.81 mm^2, 16384-pt: 3.13 mm^2 at CLP = 4).
constexpr double kFftLogicPerLaneStage = 0.00943; // mm^2
constexpr double kFftSramPerPoint = 1.611e-4;     // mm^2
constexpr double kFftPowerPerArea = 5.49 / 7.23;  // W per mm^2

// Per-lane datapath constants (anchored at 16 lanes each).
constexpr double kRotatorPerLane[2] = {0.02 / 16, 0.01 / 16};
constexpr double kDecomposerPerLane[2] = {0.28 / 16, 0.02 / 16};
constexpr double kVmaPerLane[2] = {0.63 / 16, 0.10 / 16};
constexpr double kAccumPerLane[2] = {0.32 / 16, 0.13 / 16};

// SRAM macros (different port/width organizations).
constexpr double kLocalSpadPerMb[2] = {0.92 / 0.625, 0.47 / 0.625};
constexpr double kGlobalSpadPerMb[2] = {51.40 / 21.0, 26.24 / 21.0};

constexpr double kNocPerCore[2] = {0.04 / 8, 0.01 / 8};
constexpr double kHbmPhy[2] = {14.90, 1.23};

AreaPower
perLane(const double c[2], double lanes)
{
    return {c[0] * lanes, c[1] * lanes};
}

} // namespace

ChipBreakdown
computeChipBreakdown(const StrixConfig &cfg, uint32_t max_n)
{
    ChipBreakdown b;

    // (I)FFT instances: PLP forward + PLP inverse pipelines. With
    // folding an N-point transform runs on an N/2-point engine.
    const double points = cfg.folding ? max_n / 2.0 : max_n;
    const double stages = std::log2(points);
    b.fft_instance_mm2 = kFftLogicPerLaneStage * cfg.clp * stages +
                         kFftSramPerPoint * points;
    const double fft_units = 2.0 * cfg.plp; // FFT + IFFT
    b.ifftu = {b.fft_instance_mm2 * fft_units,
               b.fft_instance_mm2 * fft_units * kFftPowerPerArea};

    // Non-FFT units: lane counts follow the folding choice
    // (Sec. V-A: folding requires 2*CLP lanes elsewhere).
    const double lanes = double(cfg.effLanes()) * cfg.colp;
    b.rotator = perLane(kRotatorPerLane, lanes);
    b.decomposer = perLane(kDecomposerPerLane, lanes);
    b.vma = perLane(kVmaPerLane, double(cfg.effLanes()) * cfg.plp);
    b.accumulator = perLane(kAccumPerLane, lanes);

    const double local_mb = cfg.local_scratch_kb / 1024.0;
    b.local_scratchpad = {kLocalSpadPerMb[0] * local_mb,
                          kLocalSpadPerMb[1] * local_mb};

    b.core = b.local_scratchpad + b.rotator + b.decomposer + b.ifftu +
             b.vma + b.accumulator;
    b.all_cores = b.core * double(cfg.tvlp);

    b.noc = perLane(kNocPerCore, double(cfg.tvlp));
    b.global_scratchpad = {kGlobalSpadPerMb[0] * cfg.global_scratch_mb,
                           kGlobalSpadPerMb[1] * cfg.global_scratch_mb};
    b.hbm_phy = {kHbmPhy[0], kHbmPhy[1]};

    b.total = b.all_cores + b.noc + b.global_scratchpad + b.hbm_phy;
    return b;
}

} // namespace strix
