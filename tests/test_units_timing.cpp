/**
 * @file
 * Closed-form functional-unit timing tests, checked against the
 * hand-derived cycle counts of the paper design point (Sec. V).
 */

#include <gtest/gtest.h>

#include "strix/functional_units.h"
#include "strix/memory_system.h"

namespace strix {
namespace {

TEST(UnitTiming, PaperDesignPointSetI)
{
    // Set I (n=500, N=1024, k=1, lb=2) with TvLP=8/CLP=4/PLP=2/CoLP=2
    // and folding: the FFT (and the balanced decomposer/VMA/IFFT/
    // accumulator) dominate at 256 cycles; the rotator runs at 50%.
    UnitTiming t(StrixConfig::paperDefault(), paramsSetI());
    EXPECT_EQ(t.fftCyclesPerPoly(), 128u);   // (N/2)/CLP
    EXPECT_EQ(t.fftCycles(), 256u);          // 4 polys on 2 instances
    EXPECT_EQ(t.ifftCycles(), 256u);         // 1:1 split
    EXPECT_EQ(t.decomposerCycles(), 256u);
    EXPECT_EQ(t.vmaCycles(), 256u);
    EXPECT_EQ(t.accumulatorCycles(), 256u);
    EXPECT_EQ(t.rotatorCycles(), 128u);      // 50% utilization
    EXPECT_EQ(t.iterationII(), 256u);
}

TEST(UnitTiming, NoFoldingDoublesTheFftBottleneck)
{
    UnitTiming fold(StrixConfig::paperDefault(), paramsSetI());
    UnitTiming nofold(StrixConfig::paperNoFolding(), paramsSetI());
    EXPECT_EQ(nofold.fftCyclesPerPoly(), 2 * fold.fftCyclesPerPoly());
    EXPECT_EQ(nofold.iterationII(), 2 * fold.iterationII());
}

TEST(UnitTiming, IterationIIScalesWithParameters)
{
    StrixConfig cfg = StrixConfig::paperDefault();
    // Set II: lb = 3 => ceil(6/2) = 3 transforms per FFT instance.
    EXPECT_EQ(UnitTiming(cfg, paramsSetII()).iterationII(), 384u);
    // Set III: N = 2048, lb = 3.
    EXPECT_EQ(UnitTiming(cfg, paramsSetIII()).iterationII(), 768u);
    // Set IV: N = 16384, lb = 2.
    EXPECT_EQ(UnitTiming(cfg, paramsSetIV()).iterationII(), 4096u);
}

TEST(UnitTiming, KeyswitchHidesBehindBlindRotation)
{
    // Sec. IV-B: the keyswitch cluster must keep up with the PBS
    // cluster so KS latency can hide behind the next blind rotation.
    StrixConfig cfg = StrixConfig::paperDefault();
    for (const auto &p : paperParamSets()) {
        UnitTiming t(cfg, p);
        EXPECT_LE(t.keyswitchCycles(),
                  Cycle(p.n) * t.iterationII())
            << "set " << p.name;
    }
}

TEST(UnitTiming, DoublingClpHalvesIteration)
{
    StrixConfig cfg = StrixConfig::paperDefault();
    cfg.clp = 8;
    UnitTiming fast(cfg, paramsSetIV());
    UnitTiming base(StrixConfig::paperDefault(), paramsSetIV());
    EXPECT_EQ(fast.iterationII() * 2, base.iterationII());
}

TEST(MemorySystem, BskBytesPerIteration)
{
    // One GGSW in the Fourier domain: (k+1)^2 * lb polys of N/2
    // complex points, 8 bytes each. Set I: 4*2*512*8 = 32 KiB.
    MemorySystem mem(StrixConfig::paperDefault(), paramsSetI());
    EXPECT_EQ(mem.bskBytesPerIteration(), 32u * 1024);
    // Set IV: 4*2*8192*8 = 512 KiB.
    MemorySystem mem4(StrixConfig::paperDefault(), paramsSetIV());
    EXPECT_EQ(mem4.bskBytesPerIteration(), 512u * 1024);
}

TEST(MemorySystem, CoreBatchFromLocalScratchpad)
{
    // Set IV test vectors are 128 KiB; double-buffered in the 512 KiB
    // PBS section => core batch 2 (matches the Sec. VI-C trade-off).
    MemorySystem mem4(StrixConfig::paperDefault(), paramsSetIV());
    EXPECT_EQ(mem4.coreBatch(), 2u);
    // Set I test vectors are 8 KiB => batch 32.
    MemorySystem mem1(StrixConfig::paperDefault(), paramsSetI());
    EXPECT_EQ(mem1.coreBatch(), 32u);
}

TEST(MemorySystem, BskFetchGatesSmallBatches)
{
    // Set IV at the bsk channel share (150 GB/s): 512 KiB per
    // iteration = ~4096 cycles, equal to the compute II. A single
    // LWE per core is therefore exactly at the memory boundary.
    StrixConfig cfg = StrixConfig::paperDefault();
    MemorySystem mem(cfg, paramsSetIV());
    UnitTiming t(cfg, paramsSetIV());
    EXPECT_NEAR(double(mem.bskFetchCycles()), double(t.iterationII()),
                double(t.iterationII()) * 0.05);
}

} // namespace
} // namespace strix
