/**
 * @file
 * LWE ciphertexts and keys.
 *
 * An LWE ciphertext under key s in {0,1}^n encrypting message mu in T:
 *     (a_1..a_n, b),  b = <a, s> + mu + e.
 * Matching the paper's data-structure description (Sec. II-D), the
 * ciphertext is a flat vector of n+1 Torus32 scalars with the body b
 * stored at index n.
 */

#ifndef STRIX_TFHE_LWE_H
#define STRIX_TFHE_LWE_H

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace strix {

/** Binary LWE secret key of dimension n. */
class LweKey
{
  public:
    LweKey() = default;

    /** Sample a uniform binary key of dimension @p n. */
    LweKey(uint32_t n, Rng &rng);

    /** Build from explicit bits (used by sample extraction). */
    explicit LweKey(std::vector<int32_t> bits) : bits_(std::move(bits)) {}

    uint32_t dim() const { return static_cast<uint32_t>(bits_.size()); }
    int32_t bit(size_t i) const { return bits_[i]; }
    const std::vector<int32_t> &bits() const { return bits_; }

  private:
    std::vector<int32_t> bits_;
};

/** LWE ciphertext: n mask scalars followed by the body. */
class LweCiphertext
{
  public:
    LweCiphertext() = default;
    explicit LweCiphertext(uint32_t n) : data_(n + 1, 0) {}

    uint32_t dim() const { return static_cast<uint32_t>(data_.size()) - 1; }

    Torus32 &a(size_t i) { return data_[i]; }
    Torus32 a(size_t i) const { return data_[i]; }
    Torus32 &b() { return data_.back(); }
    Torus32 b() const { return data_.back(); }

    /** Raw n+1 scalar view (mask then body), as in Algorithm 1. */
    std::vector<Torus32> &raw() { return data_; }
    const std::vector<Torus32> &raw() const { return data_; }

    /** this += other. */
    void addAssign(const LweCiphertext &other);
    /** this -= other. */
    void subAssign(const LweCiphertext &other);
    /** this *= integer factor. */
    void scalarMulAssign(int32_t factor);
    /** Negate (homomorphic NOT for centered encodings). */
    void negate();

    /** Noiseless encryption of a constant (a = 0, b = mu). */
    static LweCiphertext trivial(uint32_t n, Torus32 mu);

  private:
    std::vector<Torus32> data_;
};

/** Encrypt torus message @p mu under @p key with noise @p stddev. */
LweCiphertext lweEncrypt(const LweKey &key, Torus32 mu, double stddev,
                         Rng &rng);

/** Fill the @p n mask scalars of @p ct from @p mask_rng (n draws). */
void lweFillMask(LweCiphertext &ct, Rng &mask_rng);

/**
 * Encrypt with the mask drawn from @p mask_rng and the noise from
 * @p noise_rng. With the mask stream forked from a shippable seed
 * (Rng::fork), the mask scalars are pure PRNG output any holder of the
 * seed regenerates via lweFillMask -- only the body must travel, which
 * is what the seeded KSK2 frame exploits. Bitwise identical to
 * lweEncrypt when both streams sit at the equivalent positions.
 */
LweCiphertext lweEncryptSeeded(const LweKey &key, Torus32 mu,
                               double stddev, Rng &mask_rng,
                               Rng &noise_rng);

/** Decrypt to the raw phase b - <a, s> (message + noise). */
Torus32 lwePhase(const LweKey &key, const LweCiphertext &ct);

/**
 * Decrypt and decode to an integer message in [0, msg_space), rounding
 * the phase to the nearest encoding.
 */
int64_t lweDecrypt(const LweKey &key, const LweCiphertext &ct,
                   uint64_t msg_space);

} // namespace strix

#endif // STRIX_TFHE_LWE_H
