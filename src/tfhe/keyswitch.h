/**
 * @file
 * LWE-to-LWE keyswitching (Algorithm 2).
 *
 * After PBS the ciphertext is encrypted under the extracted key of
 * dimension k*N. Keyswitching decomposes each mask scalar and
 * subtracts the matching combination of keyswitching-key rows,
 * yielding a ciphertext of dimension n under the original key
 * (a k*N*lk x (n+1) vector-matrix multiplication, as the paper says).
 */

#ifndef STRIX_TFHE_KEYSWITCH_H
#define STRIX_TFHE_KEYSWITCH_H

#include <vector>

#include "tfhe/decompose.h"
#include "tfhe/lwe.h"
#include "tfhe/params.h"

namespace strix {

/** Keyswitching key: rows ksk[i][j] = LWE_s(z_i * q / base^{j+1}). */
class KeySwitchKey
{
  public:
    KeySwitchKey() = default;

    uint32_t inDim() const { return in_dim_; }
    uint32_t outDim() const { return out_dim_; }
    const GadgetParams &gadget() const { return g_; }

    const LweCiphertext &row(size_t i, size_t level) const
    {
        return rows_[i * g_.levels + level];
    }

    /**
     * Generate a keyswitching key from @p from (dimension k*N,
     * typically GlweKey::extractedLweKey()) to @p to (dimension n).
     */
    static KeySwitchKey generate(const LweKey &from, const LweKey &to,
                                 const TfheParams &params, Rng &rng);

    /** Rebuild from raw rows (deserialization). */
    static KeySwitchKey fromRows(uint32_t in_dim, uint32_t out_dim,
                                 const GadgetParams &g,
                                 std::vector<LweCiphertext> rows);

  private:
    uint32_t in_dim_ = 0;
    uint32_t out_dim_ = 0;
    GadgetParams g_{0, 0};
    std::vector<LweCiphertext> rows_;
};

/** Switch @p ct (dimension ksk.inDim()) to dimension ksk.outDim(). */
LweCiphertext keySwitch(const LweCiphertext &ct, const KeySwitchKey &ksk);

} // namespace strix

#endif // STRIX_TFHE_KEYSWITCH_H
