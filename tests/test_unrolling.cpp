/**
 * @file
 * Bootstrapping-key unrolling tests: functional equivalence with the
 * regular PBS, key-size accounting, and the simulator-side trade-off.
 */

#include <gtest/gtest.h>

#include "strix/accelerator.h"
#include "tfhe/bootstrap.h"

namespace strix {
namespace {

/** Small exact setup with both key forms. */
struct UnrollFixture
{
    TfheParams params = testParams(17, 256, 1, 3, 8, 0.0); // odd n!
    Rng rng{909};
    LweKey lwe_key{params.n, rng};
    GlweKey glwe_key{params.k, params.N, rng};
    BootstrappingKey bsk =
        BootstrappingKey::generate(lwe_key, glwe_key, params, rng);
    UnrolledBootstrappingKey ubsk =
        UnrolledBootstrappingKey::generate(lwe_key, glwe_key, params,
                                           rng);
};

TEST(Unrolling, PairCountCeilsOddDimensions)
{
    UnrollFixture f;
    EXPECT_EQ(f.ubsk.pairs(), 9u); // ceil(17/2)
}

TEST(Unrolling, KeyIsOneAndAHalfTimesLarger)
{
    UnrollFixture f;
    // 3 GGSW per 2 key bits vs 2 GGSW: 1.5x (plus odd-n padding).
    double ratio =
        double(f.ubsk.bytes()) / double(f.params.bskBytes());
    EXPECT_NEAR(ratio, 1.5, 0.15);
}

TEST(Unrolling, MatchesRegularBlindRotation)
{
    UnrollFixture f;
    const uint64_t space = 8;
    TorusPolynomial tv = makeIntTestVector(
        f.params.N, space, [](int64_t x) { return (x * 3 + 1) % 8; });

    for (int64_t m = 0; m < 8; ++m) {
        auto ct = lweEncrypt(f.lwe_key, encodeLut(m, space), 0.0, f.rng);
        auto regular = programmableBootstrap(ct, tv, f.bsk);
        auto unrolled = programmableBootstrapUnrolled(ct, tv, f.ubsk);
        LweKey extracted = f.glwe_key.extractedLweKey();
        EXPECT_EQ(decodeLut(lwePhase(extracted, regular), space),
                  decodeLut(lwePhase(extracted, unrolled), space))
            << "m=" << m;
        EXPECT_EQ(decodeLut(lwePhase(extracted, unrolled), space),
                  (m * 3 + 1) % 8)
            << "m=" << m;
    }
}

TEST(Unrolling, EvenDimensionAlsoWorks)
{
    TfheParams params = testParams(16, 256, 1, 3, 8, 0.0);
    Rng rng(910);
    LweKey lwe_key(params.n, rng);
    GlweKey glwe_key(params.k, params.N, rng);
    auto ubsk = UnrolledBootstrappingKey::generate(lwe_key, glwe_key,
                                                   params, rng);
    EXPECT_EQ(ubsk.pairs(), 8u);
    const uint64_t space = 4;
    TorusPolynomial tv = makeIntTestVector(
        params.N, space, [](int64_t x) { return x; });
    auto ct = lweEncrypt(lwe_key, encodeLut(2, space), 0.0, rng);
    auto out = programmableBootstrapUnrolled(ct, tv, ubsk);
    EXPECT_EQ(decodeLut(lwePhase(glwe_key.extractedLweKey(), out),
                        space),
              2);
}

TEST(Unrolling, ExplicitScratchMatchesThrowawayAcrossReuse)
{
    // The scratch-threaded unrolled PBS (hot loop allocation-free)
    // must be bit-identical to the throwaway-scratch overload, and a
    // scratch reused across calls -- including after serving the
    // regular PBS path -- must not leak state between them.
    UnrollFixture f;
    const uint64_t space = 8;
    TorusPolynomial tv = makeIntTestVector(
        f.params.N, space, [](int64_t x) { return (x * 5 + 2) % 8; });

    PbsScratch scratch;
    for (int64_t m : {0, 3, 7, 1}) {
        auto ct = lweEncrypt(f.lwe_key, encodeLut(m, space), 0.0, f.rng);
        auto with_scratch =
            programmableBootstrapUnrolled(ct, tv, f.ubsk, scratch);
        auto throwaway = programmableBootstrapUnrolled(ct, tv, f.ubsk);
        EXPECT_TRUE(with_scratch.raw() == throwaway.raw()) << "m=" << m;
        // Interleave a regular PBS through the same scratch.
        auto regular = programmableBootstrap(ct, tv, f.bsk, scratch);
        EXPECT_EQ(decodeLut(lwePhase(f.glwe_key.extractedLweKey(),
                                     regular),
                            space),
                  (m * 5 + 2) % 8)
            << "m=" << m;
    }
}

TEST(Unrolling, SimulatorHalvesIterationsTriplesWork)
{
    StrixConfig plain = StrixConfig::paperDefault();
    StrixConfig unroll = StrixConfig::paperDefault();
    unroll.key_unrolling = true;

    UnitTiming tp(plain, paramsSetI());
    UnitTiming tu(unroll, paramsSetI());
    EXPECT_EQ(tu.iterations(), 250u);
    EXPECT_EQ(tp.iterations(), 500u);
    EXPECT_EQ(tu.fftCycles(), 3 * tp.fftCycles());
    EXPECT_EQ(tu.productsPerIteration(), 3u);
}

TEST(Unrolling, ThroughputTradeoffAtFixedHardware)
{
    // At fixed hardware the unrolled schedule does 1.5x the FFT work
    // per bootstrap: throughput drops by 1.5x. (The latency win needs
    // 3x the FFT instances -- see the ablation bench.)
    StrixConfig unroll = StrixConfig::paperDefault();
    unroll.key_unrolling = true;
    PbsPerf base = StrixAccelerator().evaluatePbs(paramsSetI());
    PbsPerf u = StrixAccelerator(unroll).evaluatePbs(paramsSetI());
    EXPECT_NEAR(base.throughput_pbs_s / u.throughput_pbs_s, 1.5, 0.05);
}

TEST(Unrolling, LatencyWinsOnlyWithScaledDatapathAndBandwidth)
{
    // Unrolling triples both the per-iteration compute and the bsk
    // stream. With 3x-replicated datapaths but the baseline HBM the
    // key stream gates the iteration and the latency win evaporates;
    // adding bandwidth finally realizes it. This is why the paper
    // prefers batching over unrolling.
    PbsPerf base = StrixAccelerator().evaluatePbs(paramsSetI());

    StrixConfig wide = StrixConfig::paperDefault();
    wide.key_unrolling = true;
    wide.plp = 6;
    wide.colp = 6;
    PbsPerf starved = StrixAccelerator(wide).evaluatePbs(paramsSetI());
    EXPECT_GE(starved.latency_ms, base.latency_ms * 0.95);

    wide.hbm_gbps = 1200.0;
    PbsPerf fed = StrixAccelerator(wide).evaluatePbs(paramsSetI());
    EXPECT_LT(fed.latency_ms, base.latency_ms);
}

} // namespace
} // namespace strix
