/**
 * @file
 * Bandwidth stream accounting for the HBM model: a channel group with
 * a fixed share of the total bandwidth, plus helpers converting bytes
 * to cycles at a given clock.
 */

#ifndef STRIX_SIM_BANDWIDTH_H
#define STRIX_SIM_BANDWIDTH_H

#include <cstdint>

#include "common/types.h"

namespace strix {

/**
 * A group of HBM channels dedicated to one traffic class (bsk, ksk,
 * or ciphertexts, per Sec. VI-A: 8/4/4 channels of one HBM2e stack).
 */
class ChannelGroup
{
  public:
    /**
     * @param total_gbps   total stack bandwidth (e.g. 300 GB/s)
     * @param channels     channels assigned to this group
     * @param total_channels channels in the stack (e.g. 16)
     */
    ChannelGroup(double total_gbps, int channels, int total_channels)
        : gbps_(total_gbps * channels / total_channels)
    {
    }

    double gbps() const { return gbps_; }

    /** Seconds to transfer @p bytes. */
    double transferSeconds(uint64_t bytes) const
    {
        return static_cast<double>(bytes) / (gbps_ * 1e9);
    }

    /** Cycles to transfer @p bytes at @p clock_ghz. */
    Cycle transferCycles(uint64_t bytes, double clock_ghz) const
    {
        return static_cast<Cycle>(transferSeconds(bytes) * clock_ghz *
                                  1e9 + 0.5);
    }

    /** Sustained GB/s needed to move @p bytes every @p cycles. */
    static double
    requiredGbps(uint64_t bytes, Cycle cycles, double clock_ghz)
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(bytes) * clock_ghz /
               static_cast<double>(cycles);
    }

  private:
    double gbps_;
};

} // namespace strix

#endif // STRIX_SIM_BANDWIDTH_H
