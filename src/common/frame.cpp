/**
 * @file
 * FrameWriter/FrameReader implementation (moved verbatim from
 * tfhe/serialize.cpp so net/ can link the framing layer without
 * pulling in TFHE). Byte layout and error messages are unchanged.
 */

#include "common/frame.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace strix {

// --- FrameWriter -----------------------------------------------------

FrameWriter::FrameWriter(std::ostream &os, uint32_t tag,
                         uint32_t version)
    : os_(os)
{
    u32(tag);
    u32(version);
}

void
FrameWriter::bytes(const void *data, size_t len)
{
    if (in_section_) {
        const auto *p = static_cast<const unsigned char *>(data);
        buf_.insert(buf_.end(), p, p + len);
        return;
    }
    os_.write(static_cast<const char *>(data),
              static_cast<std::streamsize>(len));
}

void
FrameWriter::u32(uint32_t v)
{
    // Explicit little-endian byte order for portability.
    unsigned char b[4] = {static_cast<unsigned char>(v),
                          static_cast<unsigned char>(v >> 8),
                          static_cast<unsigned char>(v >> 16),
                          static_cast<unsigned char>(v >> 24)};
    bytes(b, 4);
}

void
FrameWriter::u64(uint64_t v)
{
    u32(static_cast<uint32_t>(v & 0xFFFFFFFFu));
    u32(static_cast<uint32_t>(v >> 32));
}

void
FrameWriter::f64(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
FrameWriter::beginSection(uint32_t id)
{
    if (in_section_)
        throw std::logic_error("FrameWriter: nested section");
    in_section_ = true;
    section_id_ = id;
    buf_.clear();
}

void
FrameWriter::endSection()
{
    if (!in_section_)
        throw std::logic_error("FrameWriter: no open section");
    in_section_ = false;
    u32(section_id_);
    u64(buf_.size());
    bytes(buf_.data(), buf_.size());
}

// --- FrameReader -----------------------------------------------------

FrameReader::FrameReader(std::istream &is) : is_(is)
{
    tag_ = u32();
    version_ = u32();
}

FrameReader::FrameReader(std::istream &is, uint32_t expect,
                         uint32_t version, const char *what)
    : FrameReader(is)
{
    if (tag_ != expect)
        throw std::runtime_error(std::string("serialize: expected ") +
                                 what + " frame");
    if (version_ != version)
        throw std::runtime_error("serialize: unsupported version");
}

void
FrameReader::bytes(void *out, size_t len)
{
    if (in_section_) {
        if (remaining_ < len)
            throw std::runtime_error(
                "serialize: read past section end");
        remaining_ -= len;
    }
    is_.read(static_cast<char *>(out),
             static_cast<std::streamsize>(len));
    if (!is_)
        throw std::runtime_error("serialize: truncated stream");
}

uint32_t
FrameReader::u32()
{
    unsigned char b[4];
    bytes(b, 4);
    return uint32_t(b[0]) | uint32_t(b[1]) << 8 | uint32_t(b[2]) << 16 |
           uint32_t(b[3]) << 24;
}

uint64_t
FrameReader::u64()
{
    uint64_t lo = u32();
    uint64_t hi = u32();
    return lo | (hi << 32);
}

double
FrameReader::f64()
{
    uint64_t bits = u64();
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

void
FrameReader::enterSection(uint32_t id, uint64_t max_len)
{
    if (in_section_)
        throw std::logic_error("FrameReader: nested section");
    uint32_t got_id = u32();
    uint64_t len = u64();
    if (got_id != id)
        throw std::runtime_error("serialize: unexpected section");
    if (len > max_len)
        throw std::runtime_error(
            "serialize: implausible section length");
    in_section_ = true;
    remaining_ = len;
}

void
FrameReader::leaveSection()
{
    if (!in_section_)
        throw std::logic_error("FrameReader: no open section");
    if (remaining_ != 0)
        throw std::runtime_error("serialize: section length mismatch");
    in_section_ = false;
}

} // namespace strix
