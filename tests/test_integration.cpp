/**
 * @file
 * Cross-layer integration tests: client/server serialization flows,
 * circuit-to-accelerator pipelines, and consistency between the
 * functional library and the timing models.
 */

#include <gtest/gtest.h>

#include "support/test_util.h"
#include <sstream>

#include "baselines/cpu_model.h"
#include "baselines/gpu_model.h"
#include "strix/accelerator.h"
#include "strix/scheduler.h"
#include "tfhe/serialize.h"
#include "workloads/circuit.h"
#include "workloads/decision_tree.h"
#include "workloads/deepnn.h"

namespace strix {
namespace {

test::TestKeys &
exactKeys()
{
    static test::TestKeys keys(test::fastParams(),
                               test::kSeedIntegration);
    return keys;
}

TEST(Integration, ClientServerRoundTrip)
{
    // Client encrypts, serializes; the server deserializes, computes
    // a homomorphic LUT, serializes the result; client decrypts. The
    // server block sees only ServerContext -- no secret key in scope.
    const ClientKeyset &client = exactKeys().client;
    const ServerContext &server = exactKeys().server;
    const uint64_t space = 8;

    std::stringstream wire;
    {
        auto ct = client.encryptInt(5, space);
        serialize(wire, ct);
    }
    std::stringstream back;
    {
        // Server side: only the ciphertext and public keys.
        LweCiphertext ct = deserializeLweCiphertext(wire);
        auto out = server.applyLut(
            ct, space, [](int64_t x) { return (7 - x) % 8; });
        serialize(back, out);
    }
    LweCiphertext result = deserializeLweCiphertext(back);
    EXPECT_EQ(client.decryptInt(result, space), 2);
}

TEST(Integration, EvalKeysShipAcrossTheWire)
{
    // The full key-export flow: the client serializes its EvalKeys
    // bundle, a fresh remote ServerContext stands on the deserialized
    // copy and answers a LUT query the client can decrypt.
    const ClientKeyset &client = exactKeys().client;
    std::stringstream wire;
    serialize(wire, *client.evalKeys());

    ServerContext remote(deserializeEvalKeys(wire));
    const uint64_t space = 8;
    auto ct = client.encryptInt(3, space);
    auto out = remote.applyLut(
        ct, space, [](int64_t x) { return (x * 2) % 8; });
    EXPECT_EQ(client.decryptInt(out, space), 6);
}

TEST(Integration, KskShipsAcrossTheWire)
{
    // Serialize the keyswitching key, rebuild it, and run a full
    // PBS + (deserialized) KS chain.
    const ClientKeyset &client = exactKeys().client;
    const ServerContext &server = exactKeys().server;
    std::stringstream wire;
    serialize(wire, server.ksk());
    KeySwitchKey ksk = deserializeKeySwitchKey(wire);

    const uint64_t space = 8;
    auto ct = client.encryptInt(3, space);
    TorusPolynomial tv = makeIntTestVector(
        server.params().N, space, [](int64_t x) { return x * 2 % 8; });
    auto big = programmableBootstrap(ct, tv, server.bsk());
    auto out = keySwitch(big, ksk);
    EXPECT_EQ(client.decryptInt(out, space), 6);
}

TEST(Integration, CircuitGraphConsistentWithFunctionalCost)
{
    // The workload graph's PBS count must equal what the encrypted
    // evaluation actually executes (gate accounting).
    Circuit c = buildMultiplier(3);
    WorkloadGraph g = c.toWorkloadGraph();
    EXPECT_EQ(g.totalPbs(), c.pbsCount());

    // And all platforms order the same way on it.
    CpuModel cpu;
    GpuModel gpu(72, 1.0);
    StrixAccelerator strix;
    double cpu_s = cpu.runGraphSeconds(paramsSetI(), g);
    double gpu_s = gpu.runGraphSeconds(paramsSetI(), g);
    double strix_s = strix.runGraph(paramsSetI(), g).seconds;
    EXPECT_LT(strix_s, gpu_s);
    EXPECT_LT(strix_s, cpu_s);
}

TEST(Integration, TreeGraphMatchesEncryptedPbsCount)
{
    // Count the PBS the encrypted tree evaluation performs via the
    // gate-stats-free route: compare against the graph's accounting.
    DecisionTree t = randomTree(3, 4, 16, 5);
    const uint32_t digits = 2;
    WorkloadGraph g = t.toWorkloadGraph(digits);
    // 7 comparisons x 2 digits + (4+2+1) muxes x 2 PBS.
    EXPECT_EQ(g.totalPbs(), 7u * digits + 7u * 2);
}

TEST(Integration, DeepNnEndToEndAllPlatformsOrdered)
{
    WorkloadGraph g = buildDeepNn(20);
    for (uint32_t big_n : {1024u, 2048u, 4096u}) {
        const TfheParams &p = deepNnParams(big_n);
        CpuModel cpu;
        GpuModel gpu;
        StrixAccelerator strix;
        double c = cpu.runGraphSeconds(p, g);
        double gm = gpu.runGraphSeconds(p, g);
        double s = strix.runGraph(p, g).seconds;
        EXPECT_LT(s, gm);
        EXPECT_LT(gm, c);
        // Fig. 7's reported bands.
        EXPECT_GT(c / s, 25.0) << big_n;
        EXPECT_LT(c / s, 60.0) << big_n;
    }
}

TEST(Integration, UnrolledContextFullLutChain)
{
    // Unrolled bootstrapping inside a longer computation: LUT chain
    // with additions between, all on the unrolled key.
    TfheParams params = test::midParams();
    Rng rng(111);
    LweKey lwe_key(params.n, rng);
    GlweKey glwe_key(params.k, params.N, rng);
    auto ubsk = UnrolledBootstrappingKey::generate(lwe_key, glwe_key,
                                                   params, rng);
    auto ksk = KeySwitchKey::generate(glwe_key.extractedLweKey(),
                                      lwe_key, params, rng);

    const uint64_t space = 8;
    auto ct = lweEncrypt(lwe_key, encodeLut(2, space), 0.0, rng);
    // f(x) = x+1, applied three times: 2 -> 5.
    for (int i = 0; i < 3; ++i) {
        TorusPolynomial tv = makeIntTestVector(
            params.N, space, [](int64_t x) { return (x + 1) % 8; });
        auto big = programmableBootstrapUnrolled(ct, tv, ubsk);
        ct = keySwitch(big, ksk);
    }
    EXPECT_EQ(decodeLut(lwePhase(lwe_key, ct), space), 5);
}

TEST(Integration, SimulatorAgreesWithSchedulerOnDeepNn)
{
    // runGraph must equal the sum of per-layer scheduled makespans.
    StrixAccelerator strix;
    EpochScheduler sched(StrixConfig::paperDefault());
    WorkloadGraph g = buildDeepNn(20);
    const TfheParams &p = deepNnParams(1024);

    double layered = 0.0;
    for (const auto &layer : g.layers()) {
        auto epochs = sched.schedule(p, layer.pbs_count);
        layered += double(EpochScheduler::makespan(epochs)) / 1.2e9;
        layered += double(layer.linear_macs) / 8.0 / 1.2e9;
    }
    EXPECT_NEAR(strix.runGraph(p, g).seconds, layered, 1e-9);
}

} // namespace
} // namespace strix
