/**
 * @file
 * EvalKeys shape validation.
 */

#include "tfhe/eval_keys.h"

#include "common/logging.h"

namespace strix {

EvalKeys::EvalKeys(TfheParams params, BootstrappingKey bsk,
                   KeySwitchKey ksk)
    : params_(std::move(params)), bsk_(std::move(bsk)), ksk_(std::move(ksk))
{
    panicIfNot(bsk_.n() == params_.n,
               "EvalKeys: bsk dimension does not match params");
    panicIfNot(bsk_.params().N == params_.N &&
                   bsk_.params().k == params_.k,
               "EvalKeys: bsk ring shape does not match params");
    panicIfNot(bsk_.params().bg_bits == params_.bg_bits &&
                   bsk_.params().l_bsk == params_.l_bsk,
               "EvalKeys: bsk gadget does not match params");
    panicIfNot(ksk_.inDim() == params_.extractedDim(),
               "EvalKeys: ksk input dimension does not match params");
    panicIfNot(ksk_.outDim() == params_.n,
               "EvalKeys: ksk output dimension does not match params");
    panicIfNot(ksk_.gadget().base_bits == params_.ks_base_bits &&
                   ksk_.gadget().levels == params_.l_ksk,
               "EvalKeys: ksk gadget does not match params");
}

} // namespace strix
