/**
 * @file
 * net/ layer unit tests: MSG1 framing (incremental decode, hostile
 * headers), the BufferedSender coalescing policy, and the TCP
 * primitives over real loopback sockets.
 */

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/buffered.h"
#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"

using namespace strix;

namespace {

std::vector<uint8_t>
payloadOf(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

WireMessage
sampleMessage()
{
    WireMessage m;
    m.type = MsgType::ApplyLut;
    m.tenant = 42;
    m.request_id = 1234567;
    m.deadline_us = 5000;
    m.payload = payloadOf("hello payload");
    return m;
}

// --- MSG1 framing ----------------------------------------------------

TEST(Msg1, EncodeDecodeRoundTrip)
{
    const WireMessage m = sampleMessage();
    const std::vector<uint8_t> frame = encodeMessage(m);
    ASSERT_EQ(frame.size(), kMsg1HeaderBytes + m.payload.size());

    FrameDecoder dec;
    dec.feed(frame.data(), frame.size());
    WireMessage out;
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out.type, m.type);
    EXPECT_EQ(out.tenant, m.tenant);
    EXPECT_EQ(out.request_id, m.request_id);
    EXPECT_EQ(out.deadline_us, m.deadline_us);
    EXPECT_EQ(out.payload, m.payload);
    EXPECT_FALSE(dec.next(out));
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Msg1, OneByteDripDecode)
{
    const WireMessage m = sampleMessage();
    const std::vector<uint8_t> frame = encodeMessage(m);

    FrameDecoder dec;
    WireMessage out;
    for (size_t i = 0; i + 1 < frame.size(); ++i) {
        dec.feed(&frame[i], 1);
        ASSERT_FALSE(dec.next(out)) << "complete at byte " << i;
    }
    dec.feed(&frame[frame.size() - 1], 1);
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out.payload, m.payload);
}

TEST(Msg1, ManyMessagesOneFeed)
{
    std::vector<uint8_t> stream;
    for (uint64_t i = 0; i < 5; ++i) {
        WireMessage m = sampleMessage();
        m.request_id = i;
        const std::vector<uint8_t> f = encodeMessage(m);
        stream.insert(stream.end(), f.begin(), f.end());
    }
    FrameDecoder dec;
    dec.feed(stream.data(), stream.size());
    WireMessage out;
    for (uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(dec.next(out));
        EXPECT_EQ(out.request_id, i);
    }
    EXPECT_FALSE(dec.next(out));
}

TEST(Msg1, BadMagicThrowsAndPoisons)
{
    std::vector<uint8_t> frame = encodeMessage(sampleMessage());
    frame[0] ^= 0xFF;
    FrameDecoder dec;
    dec.feed(frame.data(), frame.size());
    WireMessage out;
    EXPECT_THROW(dec.next(out), std::runtime_error);
    // Poisoned: even well-formed follow-up bytes must keep throwing
    // (there is no trustworthy resync point).
    const std::vector<uint8_t> good = encodeMessage(sampleMessage());
    dec.feed(good.data(), good.size());
    EXPECT_THROW(dec.next(out), std::runtime_error);
}

TEST(Msg1, BadVersionThrows)
{
    std::vector<uint8_t> frame = encodeMessage(sampleMessage());
    frame[4] = 0x7F; // version field, little-endian low byte
    FrameDecoder dec;
    dec.feed(frame.data(), frame.size());
    WireMessage out;
    EXPECT_THROW(dec.next(out), std::runtime_error);
}

TEST(Msg1, LengthLieOverCapThrows)
{
    std::vector<uint8_t> frame = encodeMessage(sampleMessage());
    // Claim a payload length far over the decoder cap: must throw as
    // soon as the header is parsed, never allocate the claimed size.
    FrameLimits limits;
    limits.max_payload_bytes = 1024;
    const uint64_t lie = 1ull << 40;
    std::memcpy(&frame[36], &lie, sizeof(lie));
    FrameDecoder dec(limits);
    dec.feed(frame.data(), frame.size());
    WireMessage out;
    EXPECT_THROW(dec.next(out), std::runtime_error);
}

TEST(Msg1, ErrorPayloadRoundTrip)
{
    const std::vector<uint8_t> frame =
        encodeError(7, 99, WireError::Busy, "queue full");
    FrameDecoder dec;
    dec.feed(frame.data(), frame.size());
    WireMessage out;
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out.type, MsgType::Error);
    EXPECT_EQ(out.tenant, 7u);
    EXPECT_EQ(out.request_id, 99u);
    const ErrorInfo info = decodeErrorPayload(out.payload);
    EXPECT_EQ(info.code, WireError::Busy);
    EXPECT_EQ(info.text, "queue full");
}

TEST(Msg1, MalformedErrorPayloadThrows)
{
    std::vector<uint8_t> truncated = {1, 0, 0, 0, 50}; // lies length
    EXPECT_THROW(decodeErrorPayload(truncated), std::runtime_error);
    std::vector<uint8_t> tiny = {1};
    EXPECT_THROW(decodeErrorPayload(tiny), std::runtime_error);
}

// --- BufferedSender policy -------------------------------------------

TEST(BufferedSender, SizeTriggerAtMtu)
{
    BufferedSender::Options opts;
    opts.mtu_bytes = 100;
    opts.flush_delay_us = 1000000; // deadline effectively off
    BufferedSender s(opts);

    s.queue(std::vector<uint8_t>(40, 0xAB), /*now_us=*/10);
    EXPECT_FALSE(s.wantFlush(10));
    s.queue(std::vector<uint8_t>(40, 0xCD), 11);
    EXPECT_FALSE(s.wantFlush(11));
    s.queue(std::vector<uint8_t>(40, 0xEF), 12);
    EXPECT_TRUE(s.wantFlush(12)) << "120 >= 100 bytes pending";
    EXPECT_EQ(s.pendingBytes(), 120u);
    EXPECT_EQ(s.framesQueued(), 3u);
}

TEST(BufferedSender, DeadlineTriggerAges)
{
    BufferedSender::Options opts;
    opts.mtu_bytes = 1 << 20;
    opts.flush_delay_us = 100;
    BufferedSender s(opts);

    s.queue(std::vector<uint8_t>(8, 1), /*now_us=*/1000);
    EXPECT_FALSE(s.wantFlush(1050));
    EXPECT_EQ(s.flushDeadline(), 1100u);
    EXPECT_TRUE(s.wantFlush(1100));
    // A later frame does not reset the oldest byte's age.
    s.queue(std::vector<uint8_t>(8, 2), 1090);
    EXPECT_EQ(s.flushDeadline(), 1100u);
}

TEST(BufferedSender, EmptyHasNoDeadline)
{
    BufferedSender s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.flushDeadline(), 0u);
    EXPECT_FALSE(s.wantFlush(123456));
}

// --- TCP primitives over loopback ------------------------------------

TEST(Tcp, ListenConnectRoundTrip)
{
    TcpListener lis = TcpListener::listenLoopback(0);
    ASSERT_TRUE(lis.valid());
    ASSERT_NE(lis.port(), 0u) << "ephemeral port resolved";
    EXPECT_FALSE(lis.accept().valid()) << "no pending connection";

    TcpConn client = TcpConn::connectLoopback(lis.port());
    ASSERT_TRUE(client.valid());
    TcpConn served;
    // The accept side is non-blocking; poll for the connection.
    Poller poller;
    for (int i = 0; i < 100 && !served.valid(); ++i) {
        poller.clear();
        poller.add(lis.fd(), true, false);
        poller.wait(50);
        served = lis.accept();
    }
    ASSERT_TRUE(served.valid());

    const char ping[] = "ping!";
    ASSERT_TRUE(client.writeFull(ping, sizeof(ping)));
    char buf[sizeof(ping)] = {};
    ASSERT_TRUE(served.readFull(buf, sizeof(buf)));
    EXPECT_STREQ(buf, ping);

    client.close();
    size_t got = 0;
    // After peer close the read path reports Eof (possibly after a
    // poll wakeup; readFull folds that in).
    EXPECT_FALSE(served.readFull(buf, 1));
    (void)got;
}

TEST(Tcp, BufferedSenderFlushesOverSocket)
{
    TcpListener lis = TcpListener::listenLoopback(0);
    ASSERT_TRUE(lis.valid());
    TcpConn client = TcpConn::connectLoopback(lis.port());
    ASSERT_TRUE(client.valid());
    TcpConn served;
    Poller poller;
    for (int i = 0; i < 100 && !served.valid(); ++i) {
        poller.clear();
        poller.add(lis.fd(), true, false);
        poller.wait(50);
        served = lis.accept();
    }
    ASSERT_TRUE(served.valid());
    ASSERT_TRUE(client.setNonBlocking(true));

    // Queue more than any kernel buffer default and pump flushTo
    // until drained: exercises short writes + WouldBlock retention.
    const size_t total = 8 << 20;
    BufferedSender sender;
    sender.queue(std::vector<uint8_t>(total, 0x5A), 0);

    std::vector<uint8_t> received;
    received.reserve(total);
    std::vector<uint8_t> chunk(256 * 1024);
    int spins = 0;
    while (received.size() < total && spins < 100000) {
        ++spins;
        if (!sender.empty()) {
            const TcpConn::IoResult r = sender.flushTo(served);
            ASSERT_NE(r, TcpConn::IoResult::Error);
            ASSERT_NE(r, TcpConn::IoResult::Eof);
        }
        size_t got = 0;
        const TcpConn::IoResult r =
            client.readSome(chunk.data(), chunk.size(), got);
        if (r == TcpConn::IoResult::Ok)
            received.insert(received.end(), chunk.begin(),
                            chunk.begin() + long(got));
        else
            ASSERT_EQ(r, TcpConn::IoResult::WouldBlock);
    }
    ASSERT_EQ(received.size(), total);
    EXPECT_TRUE(sender.empty());
    EXPECT_GE(sender.writeCalls(), 1u);
    for (size_t i = 0; i < total; i += 1 << 18)
        ASSERT_EQ(received[i], 0x5A) << "at " << i;
}

} // namespace
