/**
 * @file
 * Unit tests for the text table renderer.
 */

#include <gtest/gtest.h>

#include "common/table.h"

namespace strix {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t;
    t.header({"Platform", "Latency"});
    t.row({"CPU", "14.00"});
    t.row({"Strix", "0.16"});
    std::string out = t.render();
    EXPECT_NE(out.find("Platform"), std::string::npos);
    EXPECT_NE(out.find("Strix"), std::string::npos);
    EXPECT_NE(out.find("0.16"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"x"});
    EXPECT_NO_THROW(t.render());
}

TEST(TextTable, NumFormatsFixedPoint)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

TEST(TextTable, NumSepInsertsThousands)
{
    EXPECT_EQ(TextTable::numSep(74696), "74,696");
    EXPECT_EQ(TextTable::numSep(999), "999");
    EXPECT_EQ(TextTable::numSep(1000000), "1,000,000");
    EXPECT_EQ(TextTable::numSep(0), "0");
}

TEST(TextTable, SeparatorProducesRule)
{
    TextTable t;
    t.header({"h"});
    t.row({"1"});
    t.separator();
    t.row({"2"});
    std::string out = t.render();
    // 4 rules: top, under header, explicit, bottom.
    size_t count = 0, pos = 0;
    while ((pos = out.find("+--", pos)) != std::string::npos) {
        ++count;
        pos += 3;
    }
    EXPECT_GE(count, 4u);
}

} // namespace
} // namespace strix
