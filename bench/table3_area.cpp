/**
 * @file
 * Table III reproduction: area and power breakdown of Strix (8 HSCs,
 * TSMC 28nm constants) from the parametric area model.
 */

#include <cstdio>

#include "common/table.h"
#include "strix/area_model.h"

using namespace strix;

namespace {

void
row(TextTable &t, const char *name, const AreaPower &ap,
    double paper_area, double paper_power)
{
    t.row({name, TextTable::num(ap.area_mm2, 2),
           TextTable::num(ap.power_w, 2), TextTable::num(paper_area, 2),
           TextTable::num(paper_power, 2)});
}

} // namespace

int
main()
{
    std::printf("=== Table III: area and power breakdown of Strix "
                "(model vs paper, TSMC 28nm, 1.2 GHz) ===\n\n");

    ChipBreakdown b = computeChipBreakdown(StrixConfig::paperDefault());

    TextTable t;
    t.header({"Component", "area mm2", "power W", "paper mm2",
              "paper W"});
    row(t, "Local scratchpad (0.625MB)", b.local_scratchpad, 0.92, 0.47);
    row(t, "Rotator", b.rotator, 0.02, 0.01);
    row(t, "Decomposer", b.decomposer, 0.28, 0.02);
    row(t, "I/FFTU", b.ifftu, 7.23, 5.49);
    row(t, "VMA", b.vma, 0.63, 0.10);
    row(t, "Accumulator", b.accumulator, 0.32, 0.13);
    t.separator();
    row(t, "1 core", b.core, 9.38, 6.21);
    row(t, "8 cores", b.all_cores, 75.03, 49.67);
    row(t, "Global NoC", b.noc, 0.04, 0.01);
    row(t, "Global scratchpad (21MB)", b.global_scratchpad, 51.40,
        26.24);
    row(t, "HBM2 PHY", b.hbm_phy, 14.90, 1.23);
    t.separator();
    row(t, "Total", b.total, 141.37, 77.14);
    t.print();

    std::printf("\nOn-chip SRAM: %.1f MB total (vs 45-512 MB for CKKS "
                "accelerators, Sec. VII).\n",
                21.0 + 8 * 0.625);
    return 0;
}
