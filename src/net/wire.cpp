/**
 * @file
 * MSG1 framing implementation.
 */

#include "net/wire.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/frame.h"

namespace strix {

std::vector<uint8_t>
encodeMessage(const WireMessage &msg)
{
    std::ostringstream os;
    FrameWriter w(os, kMsg1Magic, kMsg1Version);
    w.u32(static_cast<uint32_t>(msg.type));
    w.u64(msg.tenant);
    w.u64(msg.request_id);
    w.u64(msg.deadline_us);
    w.u64(msg.payload.size());
    w.bytes(msg.payload.data(), msg.payload.size());
    const std::string s = os.str();
    return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t>
encodeError(uint64_t tenant, uint64_t request_id, WireError code,
            const std::string &text)
{
    WireMessage msg;
    msg.type = MsgType::Error;
    msg.tenant = tenant;
    msg.request_id = request_id;
    msg.payload.reserve(8 + text.size());
    auto put32 = [&msg](uint32_t v) {
        msg.payload.push_back(static_cast<uint8_t>(v));
        msg.payload.push_back(static_cast<uint8_t>(v >> 8));
        msg.payload.push_back(static_cast<uint8_t>(v >> 16));
        msg.payload.push_back(static_cast<uint8_t>(v >> 24));
    };
    put32(static_cast<uint32_t>(code));
    put32(static_cast<uint32_t>(text.size()));
    msg.payload.insert(msg.payload.end(), text.begin(), text.end());
    return encodeMessage(msg);
}

ErrorInfo
decodeErrorPayload(const std::vector<uint8_t> &payload)
{
    if (payload.size() < 8)
        throw std::runtime_error("net: truncated error payload");
    auto get32 = [&payload](size_t at) {
        return uint32_t(payload[at]) | uint32_t(payload[at + 1]) << 8 |
               uint32_t(payload[at + 2]) << 16 |
               uint32_t(payload[at + 3]) << 24;
    };
    ErrorInfo info;
    info.code = static_cast<WireError>(get32(0));
    const uint32_t len = get32(4);
    if (payload.size() - 8 < len)
        throw std::runtime_error("net: error text length lies");
    info.text.assign(payload.begin() + 8, payload.begin() + 8 + len);
    return info;
}

const char *
wireErrorName(WireError code)
{
    switch (code) {
    case WireError::Protocol:
        return "Protocol";
    case WireError::BadPayload:
        return "BadPayload";
    case WireError::UnknownType:
        return "UnknownType";
    case WireError::UnknownTenant:
        return "UnknownTenant";
    case WireError::Busy:
        return "Busy";
    case WireError::DeadlineExceeded:
        return "DeadlineExceeded";
    case WireError::Infeasible:
        return "Infeasible";
    case WireError::ShuttingDown:
        return "ShuttingDown";
    case WireError::PayloadTooLarge:
        return "PayloadTooLarge";
    case WireError::Internal:
        return "Internal";
    }
    return "Unknown";
}

void
FrameDecoder::feed(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow its buffer without bound.
    if (off_ > 0 && off_ >= buf_.size() / 2) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(off_));
        off_ = 0;
    }
    buf_.insert(buf_.end(), p, p + len);
}

uint32_t
FrameDecoder::u32At(size_t at) const
{
    const size_t i = off_ + at;
    return uint32_t(buf_[i]) | uint32_t(buf_[i + 1]) << 8 |
           uint32_t(buf_[i + 2]) << 16 | uint32_t(buf_[i + 3]) << 24;
}

uint64_t
FrameDecoder::u64At(size_t at) const
{
    return uint64_t(u32At(at)) | uint64_t(u32At(at + 4)) << 32;
}

bool
FrameDecoder::next(WireMessage &out)
{
    if (poisoned_)
        throw std::runtime_error("net: decoder poisoned by a framing "
                                 "error");
    if (buffered() < kMsg1HeaderBytes)
        return false;
    if (u32At(0) != kMsg1Magic) {
        poisoned_ = true;
        throw std::runtime_error("net: bad MSG1 magic");
    }
    if (u32At(4) != kMsg1Version) {
        poisoned_ = true;
        throw std::runtime_error("net: unsupported MSG1 version");
    }
    const uint64_t payload_len = u64At(36);
    if (payload_len > limits_.max_payload_bytes) {
        poisoned_ = true;
        throw std::runtime_error("net: implausible payload length");
    }
    if (buffered() - kMsg1HeaderBytes < payload_len)
        return false; // wait for the rest of the payload
    out.type = static_cast<MsgType>(u32At(8));
    out.tenant = u64At(12);
    out.request_id = u64At(20);
    out.deadline_us = u64At(28);
    const size_t body = off_ + kMsg1HeaderBytes;
    out.payload.assign(buf_.begin() + static_cast<ptrdiff_t>(body),
                       buf_.begin() +
                           static_cast<ptrdiff_t>(body + payload_len));
    off_ += kMsg1HeaderBytes + static_cast<size_t>(payload_len);
    return true;
}

} // namespace strix
