/**
 * @file
 * Decision-tree inference tests: plain evaluation, encrypted
 * evaluation vs plain (including randomized property sweeps), and
 * workload lowering.
 */

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "workloads/decision_tree.h"

namespace strix {
namespace {

test::TestKeys &
exactKeys()
{
    static test::TestKeys keys(test::fastParams(),
                               test::kSeedDecisionTree);
    return keys;
}

const ClientKeyset &
exactClient()
{
    return exactKeys().client;
}

/** Hand-built depth-2 tree over two features in [0,16). */
DecisionTree
smallTree()
{
    DecisionTree t(2, 2);
    t.setNode(0, 0, 8);  // root: f0 >= 8 ?
    t.setNode(1, 1, 4);  // left subtree: f1 >= 4 ?
    t.setNode(2, 1, 12); // right subtree: f1 >= 12 ?
    t.setLeaf(0, 0);
    t.setLeaf(1, 1);
    t.setLeaf(2, 2);
    t.setLeaf(3, 3);
    return t;
}

TEST(DecisionTree, PlainPredictionPaths)
{
    DecisionTree t = smallTree();
    EXPECT_EQ(t.predictPlain({0, 0}), 0u);   // left, left
    EXPECT_EQ(t.predictPlain({0, 5}), 1u);   // left, right
    EXPECT_EQ(t.predictPlain({9, 0}), 2u);   // right, left
    EXPECT_EQ(t.predictPlain({9, 13}), 3u);  // right, right
    // Boundary: f0 = 8 satisfies >= 8 (right), f1 = 4 < 12 (left).
    EXPECT_EQ(t.predictPlain({8, 4}), 2u);
}

TEST(DecisionTree, EncryptedMatchesPlainSmallTree)
{
    DecisionTree t = smallTree();
    IntegerOps ops(exactKeys().server);
    for (auto f : {std::vector<uint64_t>{0, 0}, {0, 5}, {9, 0}, {9, 13},
                   {8, 4}, {7, 11}, {15, 15}}) {
        std::vector<EncryptedUint> enc;
        for (uint64_t v : f)
            enc.push_back(ops.encrypt(exactClient(), v, 2)); // 2 base-4 digits
        auto out = t.predictEncrypted(ops, enc);
        EXPECT_EQ(uint64_t(exactClient().decryptInt(out, ops.space())),
                  t.predictPlain(f))
            << "f=(" << f[0] << "," << f[1] << ")";
    }
}

TEST(DecisionTree, EncryptedMatchesPlainRandomized)
{
    // Property sweep: random depth-3 trees, random feature vectors.
    IntegerOps ops(exactKeys().server);
    Rng rng(24680);
    for (int trial = 0; trial < 3; ++trial) {
        DecisionTree t = randomTree(3, 4, 16, 1000 + trial);
        std::vector<uint64_t> f(4);
        for (auto &v : f)
            v = rng.uniformBelow(16);
        std::vector<EncryptedUint> enc;
        for (uint64_t v : f)
            enc.push_back(ops.encrypt(exactClient(), v, 2));
        auto out = t.predictEncrypted(ops, enc);
        EXPECT_EQ(uint64_t(exactClient().decryptInt(out, ops.space())),
                  t.predictPlain(f))
            << "trial " << trial;
    }
}

TEST(DecisionTree, WorkloadGraphShape)
{
    DecisionTree t = randomTree(4, 8, 256, 7);
    const uint32_t digits = 4;
    WorkloadGraph g = t.toWorkloadGraph(digits);
    // compare layer + 4 select layers.
    ASSERT_EQ(g.layers().size(), 5u);
    EXPECT_EQ(g.layers()[0].pbs_count, 15u * digits);
    // Select layers shrink 8 -> 4 -> 2 -> 1 muxes (2 PBS each).
    EXPECT_EQ(g.layers()[1].pbs_count, 16u);
    EXPECT_EQ(g.layers()[4].pbs_count, 2u);
    EXPECT_EQ(g.totalPbs(), 15u * digits + 2 * 15u);
}

TEST(DecisionTree, RandomTreeIsWithinBounds)
{
    DecisionTree t = randomTree(5, 10, 1000, 42);
    EXPECT_EQ(t.numNodes(), 31u);
    EXPECT_EQ(t.numLeaves(), 32u);
    EXPECT_EQ(t.predictPlain(std::vector<uint64_t>(10, 0)),
              t.predictPlain(std::vector<uint64_t>(10, 0)));
}

TEST(DecisionTree, SelectDigitHelper)
{
    IntegerOps ops(exactKeys().server);
    auto hi = ops.trivialDigit(3);
    auto lo = ops.trivialDigit(1);
    auto one = ops.trivialDigit(1);
    auto zero = ops.trivialDigit(0);
    EXPECT_EQ(exactClient().decryptInt(ops.selectDigit(one, hi, lo),
                                    ops.space()),
              3);
    EXPECT_EQ(exactClient().decryptInt(ops.selectDigit(zero, hi, lo),
                                    ops.space()),
              1);
}

TEST(DecisionTree, NotBitHelper)
{
    IntegerOps ops(exactKeys().server);
    EXPECT_FALSE(ops.decryptBit(exactClient(), ops.notBit(ops.trivialDigit(1))));
    EXPECT_TRUE(ops.decryptBit(exactClient(), ops.notBit(ops.trivialDigit(0))));
}

} // namespace
} // namespace strix
