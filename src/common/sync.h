/**
 * @file
 * Annotated synchronization primitives for thread-safety analysis.
 *
 * Thin, zero-cost wrappers over the std primitives that carry the
 * clang Thread Safety Analysis attributes libstdc++'s own types lack
 * (see common/thread_annotations.h). Every mutex in this codebase
 * that guards STRIX_GUARDED_BY state uses these wrappers, so the
 * locking discipline is machine-checked on the clang CI leg:
 *
 *   Mutex m_;
 *   int value_ STRIX_GUARDED_BY(m_);
 *   ...
 *   MutexLock lock(m_);   // analysis: m_ acquired here
 *   value_ = 1;           // ok; without the lock: compile error
 *
 * Condition variables use CondVar (std::condition_variable_any),
 * which waits directly on a MutexLock; wait *predicates* must open
 * with `m_.assertHeld()` because the analysis treats a lambda body as
 * a standalone function and cannot see that the wait machinery runs
 * it with the lock held.
 */

#ifndef STRIX_COMMON_SYNC_H
#define STRIX_COMMON_SYNC_H

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace strix {

/** std::mutex with thread-safety-analysis attributes. */
class STRIX_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() STRIX_ACQUIRE() { m_.lock(); }
    void unlock() STRIX_RELEASE() { m_.unlock(); }
    bool try_lock() STRIX_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /**
     * Tell the analysis this mutex is held (runtime no-op). For wait
     * predicates and other contexts the analysis cannot see into;
     * every use is a manual claim, so keep them next to the wait that
     * makes them true.
     */
    void assertHeld() const STRIX_ASSERT_CAPABILITY(this) {}

  private:
    std::mutex m_;
};

/** std::shared_mutex with thread-safety-analysis attributes. */
class STRIX_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() STRIX_ACQUIRE() { m_.lock(); }
    void unlock() STRIX_RELEASE() { m_.unlock(); }
    void lock_shared() STRIX_ACQUIRE_SHARED() { m_.lock_shared(); }
    void unlock_shared() STRIX_RELEASE_SHARED() { m_.unlock_shared(); }

    /** See Mutex::assertHeld. */
    void assertHeld() const STRIX_ASSERT_CAPABILITY(this) {}
    /** Shared-mode claim: reader access is held. */
    void assertReaderHeld() const STRIX_ASSERT_SHARED_CAPABILITY(this) {}

  private:
    std::shared_mutex m_;
};

/**
 * Scoped exclusive lock over a Mutex (lock_guard / unique_lock in
 * one): acquires in the constructor, releases in the destructor, and
 * supports manual unlock()/lock() so it can back condition-variable
 * waits and unlock-before-rethrow paths. Not movable -- the analysis
 * tracks the object itself as the held capability.
 */
class STRIX_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) STRIX_ACQUIRE(m) : m_(m) { m_.lock(); }

    ~MutexLock() STRIX_RELEASE()
    {
        if (held_)
            m_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Re-acquire after a manual unlock (CondVar uses this pair). */
    void lock() STRIX_ACQUIRE()
    {
        m_.lock();
        held_ = true;
    }

    void unlock() STRIX_RELEASE()
    {
        held_ = false;
        m_.unlock();
    }

  private:
    Mutex &m_;
    bool held_ = true;
};

/** Scoped exclusive (writer) lock over a SharedMutex. */
class STRIX_SCOPED_CAPABILITY SharedWriterLock
{
  public:
    explicit SharedWriterLock(SharedMutex &m) STRIX_ACQUIRE(m) : m_(m)
    {
        m_.lock();
    }
    ~SharedWriterLock() STRIX_RELEASE() { m_.unlock(); }

    SharedWriterLock(const SharedWriterLock &) = delete;
    SharedWriterLock &operator=(const SharedWriterLock &) = delete;

  private:
    SharedMutex &m_;
};

/** Scoped shared (reader) lock over a SharedMutex. */
class STRIX_SCOPED_CAPABILITY SharedReaderLock
{
  public:
    explicit SharedReaderLock(SharedMutex &m) STRIX_ACQUIRE_SHARED(m)
        : m_(m)
    {
        m_.lock_shared();
    }
    ~SharedReaderLock() STRIX_RELEASE_SHARED() { m_.unlock_shared(); }

    SharedReaderLock(const SharedReaderLock &) = delete;
    SharedReaderLock &operator=(const SharedReaderLock &) = delete;

  private:
    SharedMutex &m_;
};

/**
 * Condition variable that waits on a MutexLock.
 * condition_variable_any works with any BasicLockable, which is what
 * lets the annotated scoped lock stand in for std::unique_lock; the
 * pool/executor wakeup paths this backs are per-job, not per-index,
 * so the _any indirection costs nothing measurable.
 */
using CondVar = std::condition_variable_any;

} // namespace strix

#endif // STRIX_COMMON_SYNC_H
