/**
 * @file
 * Waitable monotonic clock: the time seam for deadline-driven queues.
 *
 * A flush loop (the BatchExecutor's dispatcher, a network buffered
 * sender) needs exactly three time operations: read a monotonic
 * microsecond counter, sleep until a deadline, and be woken early by a
 * producer. Bundling them behind one interface makes the deadline
 * path testable: production code gets SteadyWaitableClock (real
 * std::chrono::steady_clock time), tests get ManualWaitableClock and
 * advance virtual time deterministically -- a "deadline elapsed" test
 * never has to sleep for real or race the scheduler.
 *
 * Wakeups use a latch, not an edge: signal() with no waiter present
 * makes the *next* wait return immediately. That closes the classic
 * lost-wakeup window where a consumer checks its queue, finds it
 * empty, and a producer signals before the consumer reaches wait().
 */

#ifndef STRIX_COMMON_WAITCLOCK_H
#define STRIX_COMMON_WAITCLOCK_H

#include <chrono>
#include <cstdint>

#include "common/sync.h"

namespace strix {

/**
 * Monotonic microsecond clock with latched deadline waits.
 *
 * Time starts at 0 when the clock is constructed and never goes
 * backwards. All members are safe to call concurrently; any number of
 * threads may wait, and signal() wakes them all (each consumes no
 * more than the one latched signal -- waiters re-check their own
 * state, so spurious returns are part of the contract).
 */
class WaitableClock
{
  public:
    virtual ~WaitableClock() = default;

    /** Monotonic microseconds since clock construction. */
    virtual uint64_t nowMicros() const = 0;

    /**
     * Block until nowMicros() >= deadline_us or a signal arrives
     * (latched or live). Returns true if a signal was consumed,
     * false if the deadline elapsed. Callers must re-check their own
     * predicate either way.
     */
    virtual bool waitUntil(uint64_t deadline_us) = 0;

    /** Block until a signal arrives (no deadline). */
    virtual void wait() = 0;

    /** Wake current waiters; latch for the next one if none. */
    virtual void signal() = 0;
};

/** WaitableClock over std::chrono::steady_clock. */
class SteadyWaitableClock final : public WaitableClock
{
  public:
    SteadyWaitableClock() : start_(std::chrono::steady_clock::now()) {}

    uint64_t nowMicros() const override;
    bool waitUntil(uint64_t deadline_us) override;
    void wait() override;
    void signal() override;

  private:
    const std::chrono::steady_clock::time_point start_;
    mutable Mutex m_;
    CondVar cv_;
    bool signaled_ STRIX_GUARDED_BY(m_) = false; //!< the wakeup latch
};

/**
 * Manually advanced WaitableClock for tests. Time only moves when
 * advance()/set() is called; both wake deadline waiters so they can
 * re-evaluate. A waitUntil() whose deadline is already in the past
 * returns immediately.
 */
class ManualWaitableClock final : public WaitableClock
{
  public:
    uint64_t nowMicros() const override;
    bool waitUntil(uint64_t deadline_us) override;
    void wait() override;
    void signal() override;

    /** Move virtual time forward by @p micros. */
    void advance(uint64_t micros);

    /** Jump virtual time to @p micros (panics on going backwards). */
    void set(uint64_t micros);

  private:
    mutable Mutex m_;
    CondVar cv_;
    uint64_t now_us_ STRIX_GUARDED_BY(m_) = 0;   //!< virtual time
    bool signaled_ STRIX_GUARDED_BY(m_) = false; //!< the wakeup latch
};

} // namespace strix

#endif // STRIX_COMMON_WAITCLOCK_H
