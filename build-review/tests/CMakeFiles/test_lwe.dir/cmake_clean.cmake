file(REMOVE_RECURSE
  "CMakeFiles/test_lwe.dir/test_lwe.cpp.o"
  "CMakeFiles/test_lwe.dir/test_lwe.cpp.o.d"
  "test_lwe"
  "test_lwe.pdb"
  "test_lwe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lwe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
