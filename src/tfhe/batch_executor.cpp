/**
 * @file
 * BatchExecutor implementation.
 *
 * One dispatcher thread owns the flush decisions: it scans the shards
 * for a due fill queue (size, deadline, or drain trigger), swaps out
 * up to target_batch requests under the lock, and runs the sweep with
 * the lock released so producers keep filling the next batch -- the
 * double-buffered fill/flush overlap. The sweep itself is
 * ServerContext::bootstrapBatch on the shard's private context, so
 * parallelism across ciphertexts and the fused FFT pipeline come from
 * the existing batch path unchanged (and results stay bit-identical
 * to it by construction).
 */

#include "tfhe/batch_executor.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace strix {

namespace {

BatchExecutor::Options
sanitized(BatchExecutor::Options opts)
{
    opts.target_batch = std::max<size_t>(1, opts.target_batch);
    return opts;
}

constexpr uint64_t kNoDeadline = std::numeric_limits<uint64_t>::max();

} // namespace

BatchExecutor::Shard::Shard(std::shared_ptr<const EvalKeys> k,
                            unsigned sweep_threads)
    : keys(std::move(k)), eval(keys)
{
    if (sweep_threads != 0)
        eval.setBatchThreads(sweep_threads);
}

BatchExecutor::BatchExecutor() : BatchExecutor(Options()) {}

BatchExecutor::BatchExecutor(Options opts,
                             std::shared_ptr<WaitableClock> clock)
    : opts_(sanitized(opts)),
      clock_(clock ? std::move(clock)
                   : std::make_shared<SteadyWaitableClock>()),
      dispatcher_([this] { dispatchLoop(); })
{
}

BatchExecutor::~BatchExecutor()
{
    shutdown();
}

std::future<LweCiphertext>
BatchExecutor::submit(std::shared_ptr<const EvalKeys> keys,
                      LweCiphertext ct, TorusPolynomial test_vector)
{
    panicIfNot(keys != nullptr, "BatchExecutor: null EvalKeys bundle");
    std::future<LweCiphertext> fut;
    {
        MutexLock lock(m_);
        panicIfNot(!stopping_, "BatchExecutor: submit after shutdown");
        std::unique_ptr<Shard> &slot = shards_[keys.get()];
        if (!slot)
            slot = std::make_unique<Shard>(std::move(keys),
                                           opts_.sweep_threads);
        Request r;
        r.submit_us = clock_->nowMicros();
        r.ct = std::move(ct);
        r.tv = std::move(test_vector);
        fut = r.result.get_future();
        slot->fill.push_back(std::move(r));
        ++stats_.submitted;
        ++in_flight_;
        stats_.shards = shards_.size();
    }
    // Wake the dispatcher to re-evaluate the triggers. The latch in
    // the clock closes the window where it already checked the queues
    // but has not reached its wait yet.
    clock_->signal();
    return fut;
}

void
BatchExecutor::dispatchLoop()
{
    MutexLock lock(m_);
    for (;;) {
        Shard *due = nullptr;
        uint64_t *reason = nullptr;
        uint64_t next_deadline = kNoDeadline;
        const uint64_t now = clock_->nowMicros();
        for (auto &entry : shards_) {
            Shard &sh = *entry.second;
            if (sh.fill.empty())
                continue;
            if (sh.fill.size() >= opts_.target_batch) {
                due = &sh;
                reason = &stats_.size_flushes;
                break;
            }
            if (stopping_ || flush_now_) {
                due = &sh;
                reason = &stats_.drain_flushes;
                break;
            }
            uint64_t deadline =
                sh.fill.front().submit_us + opts_.flush_delay_us;
            if (deadline < sh.fill.front().submit_us)
                deadline = kNoDeadline - 1; // saturate a wrapped sum
            if (deadline <= now) {
                due = &sh;
                reason = &stats_.deadline_flushes;
                break;
            }
            next_deadline = std::min(next_deadline, deadline);
        }

        if (due != nullptr) {
            // Double-buffer swap: move up to one sweep's width out of
            // the fill queue; anything beyond target_batch stays and
            // is picked up by the next pass (likely as a size flush).
            const size_t take =
                std::min(due->fill.size(), opts_.target_batch);
            std::vector<Request> batch;
            batch.reserve(take);
            for (size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(due->fill.front()));
                due->fill.pop_front();
            }
            ++stats_.sweeps;
            stats_.swept_lwes += take;
            ++*reason;

            due->sweeping = true; // pins the shard across the unlock
            lock.unlock();
            runSweep(*due, std::move(batch)); // fill continues meanwhile
            lock.lock();
            due->sweeping = false;

            stats_.completed += take;
            in_flight_ -= take;
            if (in_flight_ == 0)
                drained_cv_.notify_all();
            continue;
        }

        if (stopping_)
            return; // every queue empty, nothing in flight
        flush_now_ = false; // queues momentarily empty: latch satisfied
        lock.unlock();
        if (next_deadline == kNoDeadline)
            clock_->wait();
        else
            clock_->waitUntil(next_deadline);
        lock.lock();
    }
}

void
BatchExecutor::runSweep(Shard &shard, std::vector<Request> batch)
{
    std::vector<LweCiphertext> cts;
    std::vector<const TorusPolynomial *> tvs;
    cts.reserve(batch.size());
    tvs.reserve(batch.size());
    for (Request &r : batch) {
        cts.push_back(std::move(r.ct));
        tvs.push_back(&r.tv);
    }
    try {
        std::vector<LweCiphertext> outs =
            shard.eval.bootstrapBatch(cts.data(), tvs.data(),
                                      batch.size());
        for (size_t i = 0; i < batch.size(); ++i)
            batch[i].result.set_value(std::move(outs[i]));
    } catch (...) {
        // A failed sweep fails every request it carried: each future
        // observes the (shared) exception instead of hanging.
        for (Request &r : batch)
            r.result.set_exception(std::current_exception());
    }
}

size_t
BatchExecutor::releaseIdleShards()
{
    MutexLock lock(m_);
    size_t released = 0;
    for (auto it = shards_.begin(); it != shards_.end();) {
        Shard &sh = *it->second;
        if (sh.fill.empty() && !sh.sweeping) {
            it = shards_.erase(it);
            ++released;
        } else {
            ++it;
        }
    }
    stats_.shards = shards_.size();
    return released;
}

void
BatchExecutor::drain()
{
    MutexLock lock(m_);
    drained_cv_.wait(lock, [&] {
        m_.assertHeld(); // the wait runs its predicate locked
        return in_flight_ == 0;
    });
}

void
BatchExecutor::flushNow()
{
    {
        MutexLock lock(m_);
        flush_now_ = true;
    }
    clock_->signal();
}

void
BatchExecutor::shutdown()
{
    {
        MutexLock lock(m_);
        stopping_ = true;
    }
    clock_->signal();
    MutexLock join_lock(join_mutex_);
    if (dispatcher_.joinable())
        dispatcher_.join();
}

BatchExecutor::Stats
BatchExecutor::stats() const
{
    MutexLock lock(m_);
    return stats_;
}

} // namespace strix
