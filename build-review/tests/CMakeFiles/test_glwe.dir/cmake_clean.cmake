file(REMOVE_RECURSE
  "CMakeFiles/test_glwe.dir/test_glwe.cpp.o"
  "CMakeFiles/test_glwe.dir/test_glwe.cpp.o.d"
  "test_glwe"
  "test_glwe.pdb"
  "test_glwe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glwe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
