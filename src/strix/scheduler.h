/**
 * @file
 * Epoch scheduler (Sec. IV-C "Workload Scheduling").
 *
 * A batch of LWEs executes as a series of epochs of up to
 * TvLP * core_batch ciphertexts. The PBS cluster blind-rotates epoch
 * e+1 while the keyswitch cluster drains epoch e; the KS cluster
 * becomes the critical path only when an epoch's keyswitching
 * outlasts the next epoch's blind rotation. This module materializes
 * that schedule as explicit intervals (used by the accelerator's
 * runBatch and renderable as a chip-level Gantt trace).
 */

#ifndef STRIX_STRIX_SCHEDULER_H
#define STRIX_STRIX_SCHEDULER_H

#include <vector>

#include "sim/timeline.h"
#include "strix/hsc.h"

namespace strix {

/** One scheduled epoch. */
struct EpochRecord
{
    uint64_t index;      //!< epoch number
    uint64_t lwes;       //!< ciphertexts in this epoch
    uint32_t core_batch; //!< LWEs per core
    Cycle br_start;      //!< blind rotation interval [start, end)
    Cycle br_end;
    Cycle ks_start;      //!< keyswitch interval [start, end)
    Cycle ks_end;

    /** True if this epoch's KS extends past the next epoch's BR. */
    bool ks_exposed = false;
};

/** Materialized schedule for a batch. */
class EpochScheduler
{
  public:
    explicit EpochScheduler(const StrixConfig &cfg) : cfg_(cfg) {}

    /** Build the schedule for @p num_lwes PBS(+KS) operations. */
    std::vector<EpochRecord> schedule(const TfheParams &p,
                                      uint64_t num_lwes) const;

    /** Total cycles from first BR start to last KS end. */
    static Cycle makespan(const std::vector<EpochRecord> &epochs);

    /**
     * Chip-level Gantt trace: one row for the PBS clusters, one for
     * the KS clusters, epochs labeled by index.
     */
    static GanttTrace toTrace(const std::vector<EpochRecord> &epochs);

  private:
    StrixConfig cfg_;
};

} // namespace strix

#endif // STRIX_STRIX_SCHEDULER_H
