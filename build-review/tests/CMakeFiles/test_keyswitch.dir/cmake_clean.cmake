file(REMOVE_RECURSE
  "CMakeFiles/test_keyswitch.dir/test_keyswitch.cpp.o"
  "CMakeFiles/test_keyswitch.dir/test_keyswitch.cpp.o.d"
  "test_keyswitch"
  "test_keyswitch.pdb"
  "test_keyswitch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
