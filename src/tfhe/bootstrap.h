/**
 * @file
 * Programmable bootstrapping (Algorithm 1): modulus switching, blind
 * rotation, sample extraction, and LUT (test-vector) construction.
 */

#ifndef STRIX_TFHE_BOOTSTRAP_H
#define STRIX_TFHE_BOOTSTRAP_H

#include <functional>
#include <vector>

#include "tfhe/ggsw.h"
#include "tfhe/params.h"

namespace strix {

/**
 * Bootstrapping key: one GGSW encryption (under the GLWE key) of each
 * LWE key bit, stored in the frequency domain as Strix does in its
 * global scratchpad.
 */
class BootstrappingKey
{
  public:
    BootstrappingKey() = default;

    uint32_t n() const { return static_cast<uint32_t>(ggsw_fft_.size()); }
    const GgswFft &bit(size_t i) const { return ggsw_fft_[i]; }
    const TfheParams &params() const { return params_; }

    /** Generate from the input LWE key and output GLWE key. */
    static BootstrappingKey generate(const LweKey &lwe_key,
                                     const GlweKey &glwe_key,
                                     const TfheParams &params, Rng &rng);

    /**
     * Seeded-mask generation (ggswEncryptSeeded per key bit): every
     * mask polynomial comes from the deterministic stream rooted at
     * @p mask_seed -- GLWE row (bit i, block, level) forks stream id
     * i*(k+1)*l_bsk + block*l_bsk + level -- and only noise draws
     * from @p noise_rng. A key generated this way is fully determined
     * by (mask_seed, bodies), which is what the compressed BSK2 frame
     * ships; fromSeededBodies() reconstructs it bit-identically.
     */
    static BootstrappingKey generateSeeded(const LweKey &lwe_key,
                                           const GlweKey &glwe_key,
                                           const TfheParams &params,
                                           uint64_t mask_seed,
                                           Rng &noise_rng);

    /**
     * Rebuild a generateSeeded() key from its mask seed plus the
     * shipped frequency-domain body column: @p freq_bodies holds
     * n*(k+1)*l_bsk polynomials of N/2 points, entry
     * i*(k+1)*l_bsk + r being column k of GLWE row r of bit i. Masks
     * are re-expanded from per-row forks of @p mask_seed and forward-
     * transformed through the same per-polynomial FFT path the
     * GgswFft constructor uses, so the rebuilt key is bit-identical
     * to the generated one (same process / same FFT kernel; see
     * README). Needs no secret key. Panics on shape mismatch --
     * callers feeding untrusted bytes validate shapes first
     * (serialize.cpp does).
     */
    static BootstrappingKey
    fromSeededBodies(const TfheParams &params, uint64_t mask_seed,
                     std::vector<FreqPolynomial> freq_bodies);

    /**
     * Rebuild from pre-transformed per-bit GGSWs (deserialization).
     * bits.size() must equal params.n and every GGSW must match the
     * parameter shape; panics on mismatch.
     */
    static BootstrappingKey fromBits(const TfheParams &params,
                                     std::vector<GgswFft> bits);

  private:
    std::vector<GgswFft> ggsw_fft_;
    TfheParams params_;
};

/**
 * Bootstrapping key with 2x unrolling (Bourse et al., as used by the
 * Matcha accelerator the paper compares against): key bits are taken
 * in pairs (s, t) and each pair stores GGSW(s), GGSW(t), GGSW(s*t),
 * letting one blind-rotation iteration absorb two mask elements:
 *
 *   X^{a*s + b*t} = 1 + s(X^a - 1) + t(X^b - 1)
 *                     + s*t (X^a - 1)(X^b - 1).
 *
 * Halves the iteration count at 1.5x key size and 3 external
 * products per iteration.
 */
class UnrolledBootstrappingKey
{
  public:
    UnrolledBootstrappingKey() = default;

    /** Number of unrolled iterations: ceil(n / 2). */
    uint32_t pairs() const
    {
        return static_cast<uint32_t>(triples_.size());
    }
    const TfheParams &params() const { return params_; }

    /** GGSW triple (s, t, s*t) for pair @p i. */
    const GgswFft &first(size_t i) const { return triples_[i].s; }
    const GgswFft &second(size_t i) const { return triples_[i].t; }
    const GgswFft &product(size_t i) const { return triples_[i].st; }

    static UnrolledBootstrappingKey generate(const LweKey &lwe_key,
                                             const GlweKey &glwe_key,
                                             const TfheParams &params,
                                             Rng &rng);

    /** Key bytes relative to the regular bsk: 1.5x. */
    uint64_t bytes() const;

  private:
    struct Triple
    {
        GgswFft s, t, st;
    };
    std::vector<Triple> triples_;
    TfheParams params_;
};

/**
 * Precomputed modulus switch to Z_{2N}: round(a * 2N / 2^32)
 * (Algorithm 1, line 3). The constructor derives the shift, rounding
 * bias, and wrap mask once -- it runs n times per blind rotation, so
 * hot callers hoist one instance out of their loops -- and panics on
 * a non-power-of-two ring dimension (the old per-call log2 loop spun
 * forever on one). The big_n = 2^31 edge, where 2N fills the whole
 * torus and the shift is zero, degenerates to the identity map
 * instead of the former shift-by-(0-1) underflow.
 */
class ModSwitch
{
  public:
    explicit ModSwitch(uint32_t big_n);

    /** Switch one torus scalar: round-half-up, wrapped mod 2N. */
    uint32_t operator()(Torus32 a) const
    {
        return static_cast<uint32_t>(
                   (static_cast<uint64_t>(a) + bias_) >> shift_) &
               mask_;
    }

  private:
    uint32_t shift_; //!< 32 - log2(2N); 0 when big_n == 2^31
    uint32_t mask_;  //!< 2N - 1
    uint64_t bias_;  //!< half a grid step (0 when shift_ == 0)
};

/**
 * Modulus switch one torus scalar to Z_{2N}. One-shot convenience
 * over ModSwitch; loops should hoist a ModSwitch instance instead.
 */
uint32_t modulusSwitch(Torus32 a, uint32_t big_n);

/**
 * Blind rotation (Algorithm 1, lines 4-12): rotate @p acc by -b~, then
 * run n CMux iterations accumulating X^{a~_i * s_i}.
 *
 * @param acc     in: trivial GLWE of the test vector; out: rotated GLWE
 * @param ct      the LWE ciphertext being bootstrapped (dimension n)
 * @param bsk     bootstrapping key
 * @param scratch per-thread working buffers reused across iterations
 */
void blindRotate(GlweCiphertext &acc, const LweCiphertext &ct,
                 const BootstrappingKey &bsk, PbsScratch &scratch);

/** Convenience overload with a throwaway local scratch. */
void blindRotate(GlweCiphertext &acc, const LweCiphertext &ct,
                 const BootstrappingKey &bsk);

/**
 * Blind rotation with the 2x-unrolled key: ceil(n/2) iterations.
 * All working storage (pair difference, external-product output, pair
 * sum, rotation temporary) lives in @p scratch, so the hot loop is
 * allocation-free; one scratch per thread parallelizes cleanly.
 */
void blindRotateUnrolled(GlweCiphertext &acc, const LweCiphertext &ct,
                         const UnrolledBootstrappingKey &ubsk,
                         PbsScratch &scratch);

/** Convenience overload with a throwaway local scratch. */
void blindRotateUnrolled(GlweCiphertext &acc, const LweCiphertext &ct,
                         const UnrolledBootstrappingKey &ubsk);

/** PBS using the unrolled key (functionally identical to PBS). */
LweCiphertext programmableBootstrapUnrolled(
    const LweCiphertext &ct, const TorusPolynomial &test_vector,
    const UnrolledBootstrappingKey &ubsk, PbsScratch &scratch);

/** Convenience overload with a throwaway local scratch. */
LweCiphertext programmableBootstrapUnrolled(
    const LweCiphertext &ct, const TorusPolynomial &test_vector,
    const UnrolledBootstrappingKey &ubsk);

/**
 * Full PBS: blind-rotate the test vector, then sample-extract
 * coefficient 0. The result is an LWE ciphertext of dimension k*N
 * encrypting tv[phase~] (keyswitching converts it back to dim n).
 * Thread-safe: shares no mutable state; @p scratch carries all
 * working storage, so one scratch per thread parallelizes cleanly.
 */
LweCiphertext programmableBootstrap(const LweCiphertext &ct,
                                    const TorusPolynomial &test_vector,
                                    const BootstrappingKey &bsk,
                                    PbsScratch &scratch);

/** Convenience overload with a throwaway local scratch. */
LweCiphertext programmableBootstrap(const LweCiphertext &ct,
                                    const TorusPolynomial &test_vector,
                                    const BootstrappingKey &bsk);

/**
 * Encode integer message @p m in [0, msg_space) at the *center* of its
 * phase window: mu = (2m+1) / (4*msg_space). Centered encoding keeps
 * the phase of message 0 strictly positive under noise, avoiding the
 * negacyclic sign flip.
 */
Torus32 encodeLut(int64_t m, uint64_t msg_space);

/** Decode a centered-encoded message: floor(phase * 2*msg_space). */
int64_t decodeLut(Torus32 phase, uint64_t msg_space);

/**
 * Build the test vector for evaluating f: [0,msg_space) -> Torus32
 * during bootstrapping: coefficient j holds f(floor(j * msg_space/N)).
 */
TorusPolynomial makeTestVector(uint32_t big_n, uint64_t msg_space,
                               const std::function<Torus32(int64_t)> &f);

/**
 * Convenience: test vector of an integer-to-integer function with
 * centered output encoding in the same message space.
 */
TorusPolynomial makeIntTestVector(uint32_t big_n, uint64_t msg_space,
                                  const std::function<int64_t(int64_t)> &f);

} // namespace strix

#endif // STRIX_TFHE_BOOTSTRAP_H
