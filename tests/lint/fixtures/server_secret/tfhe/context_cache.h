// Fixture stand-in for the real key-owning facade: what makes it
// client-side is exactly this include.
#ifndef FIXTURE_TFHE_CONTEXT_CACHE_H
#define FIXTURE_TFHE_CONTEXT_CACHE_H
#include "tfhe/client_keyset.h"
#endif
