/**
 * @file
 * ContextCache implementation.
 */

#include "tfhe/context_cache.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace strix {

namespace {

/**
 * Exact cache key over every field that affects keygen: all numeric
 * parameters (doubles by bit pattern, so -0.0 vs 0.0 or NaN payloads
 * cannot alias), the name, and the seed. Two parameter sets that
 * differ only in name hash apart -- conservative, but a name is part
 * of a set's identity in this codebase.
 */
std::string
cacheKey(const TfheParams &p, uint64_t seed)
{
    uint64_t lwe_bits, glwe_bits;
    static_assert(sizeof(lwe_bits) == sizeof(p.lwe_noise));
    std::memcpy(&lwe_bits, &p.lwe_noise, sizeof(lwe_bits));
    std::memcpy(&glwe_bits, &p.glwe_noise, sizeof(glwe_bits));
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%" PRIu32 ";N=%" PRIu32 ";k=%" PRIu32
                  ";lb=%" PRIu32 ";bg=%" PRIu32 ";lk=%" PRIu32
                  ";kb=%" PRIu32 ";ln=%" PRIx64 ";gn=%" PRIx64
                  ";lam=%d;seed=%" PRIx64 ";",
                  p.n, p.N, p.k, p.l_bsk, p.bg_bits, p.l_ksk,
                  p.ks_base_bits, lwe_bits, glwe_bits, p.lambda, seed);
    return std::string(buf) + p.name;
}

} // namespace

ContextCache &
ContextCache::global()
{
    static ContextCache cache;
    return cache;
}

std::shared_ptr<ContextCache::Entry>
ContextCache::entryFor(const std::string &key)
{
    {
        SharedReaderLock read(index_mutex_);
        // Look up through a const alias: a reader lock only grants
        // shared access to entries_, and the analysis (correctly)
        // rejects the non-const find() overload under it.
        const auto &index = entries_;
        auto it = index.find(key);
        if (it != index.end())
            return it->second;
    }
    SharedWriterLock write(index_mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted)
        it->second = std::make_shared<Entry>();
    return it->second;
}

std::shared_ptr<const ClientKeyset>
ContextCache::getOrCreateKeyset(const TfheParams &params, uint64_t seed)
{
    const std::string key = cacheKey(params, seed);
    std::shared_ptr<Entry> entry = entryFor(key);
    bool built_now = false;
    std::call_once(entry->once, [&] {
        entry->keyset = std::make_shared<const ClientKeyset>(params, seed);
        // Release-store after the keyset write: the eviction scan
        // (which never passes through this call_once) acquires
        // `built` before touching `keyset`.
        entry->built.store(true, std::memory_order_release);
        keygens_.fetch_add(1, std::memory_order_relaxed);
        built_now = true;
    });
    // Stamp recency from the global clock; an atomic per-entry stamp
    // keeps the hit path on the reader lock (entryFor) -- no list to
    // reorder, so no writer lock on hits.
    entry->last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                           std::memory_order_relaxed);
    if (built_now)
        accountAndEvict(key, entry);
    else
        hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->keyset;
}

std::shared_ptr<const EvalKeys>
ContextCache::getOrCreate(const TfheParams &params, uint64_t seed)
{
    return getOrCreateKeyset(params, seed)->evalKeys();
}

void
ContextCache::accountAndEvict(const std::string &key,
                              const std::shared_ptr<Entry> &entry)
{
    SharedWriterLock write(index_mutex_);
    // clear() may have raced the keygen: if the slot no longer holds
    // this entry, the caller keeps an unaccounted orphan bundle and
    // the cache owes nothing for it.
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second != entry)
        return;
    const uint64_t bytes = entry->keyset->evalKeys()->residentBytes();
    entry->bytes.store(bytes, std::memory_order_relaxed);
    resident_bytes_ += bytes;
    evictIfOver(entry.get());
}

void
ContextCache::evictIfOver(const Entry *exclude)
{
    while (budget_bytes_ != 0 && resident_bytes_ > budget_bytes_) {
        auto victim = entries_.end();
        uint64_t victim_tick = 0;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            Entry &e = *it->second;
            if (&e == exclude)
                continue; // the bundle being returned right now
            // Unbuilt entries hold no accounted bytes (keygen still
            // running or pending); acquire pairs with the
            // release-store in getOrCreateKeyset.
            if (!e.built.load(std::memory_order_acquire))
                continue;
            // Pinned: some caller still holds the keyset or its
            // EvalKeys bundle beyond the cache's own references.
            // Evicting it would not invalidate them (shared_ptr),
            // but an active tenant must stay resident.
            if (e.keyset.use_count() > 1 ||
                e.keyset->evalKeys().use_count() > 1)
                continue;
            const uint64_t tick =
                e.last_used.load(std::memory_order_relaxed);
            if (victim == entries_.end() || tick < victim_tick) {
                victim = it;
                victim_tick = tick;
            }
        }
        if (victim == entries_.end())
            return; // everything left is pinned or building
        resident_bytes_ -=
            victim->second->bytes.load(std::memory_order_relaxed);
        entries_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ContextCache::setBudgetBytes(uint64_t budget)
{
    SharedWriterLock write(index_mutex_);
    budget_bytes_ = budget;
    evictIfOver(nullptr);
}

CacheStats
ContextCache::stats() const
{
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = keygens_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    SharedReaderLock read(index_mutex_);
    s.resident_bytes = resident_bytes_;
    s.entries = entries_.size();
    s.budget_bytes = budget_bytes_;
    return s;
}

size_t
ContextCache::size() const
{
    SharedReaderLock read(index_mutex_);
    return entries_.size();
}

void
ContextCache::clear()
{
    SharedWriterLock write(index_mutex_);
    entries_.clear();
    resident_bytes_ = 0;
}

} // namespace strix
