/**
 * @file
 * MSG1 payload codec implementation.
 *
 * Every decoder reads from an istringstream over the payload bytes
 * through the validating FrameReader layer and the hardened
 * serialize.h readers, and finishes by checking the payload was
 * consumed exactly (no trailing garbage rides along). All failures
 * throw std::runtime_error.
 */

#include "server/wire_codec.h"

#include <sstream>
#include <stdexcept>

namespace strix {

namespace {

/** Sub-frame tags for the typed request headers. */
constexpr uint32_t kTagLutRequest = 0x3151554C;     // "LUQ1"
constexpr uint32_t kTagCircuitRequest = 0x31514943; // "CIQ1"
constexpr uint32_t kTagCiphertexts = 0x31535443;    // "CTS1"

std::vector<uint8_t>
streamBytes(const std::ostringstream &os)
{
    const std::string s = os.str();
    return std::vector<uint8_t>(s.begin(), s.end());
}

std::string
payloadString(const std::vector<uint8_t> &payload)
{
    return std::string(payload.begin(), payload.end());
}

void
expectFullyConsumed(std::istream &is)
{
    if (is.peek() != std::char_traits<char>::eof())
        throw std::runtime_error(
            "serialize: trailing bytes after payload");
}

} // namespace

// --- Bootstrap -------------------------------------------------------

std::vector<uint8_t>
encodeBootstrapPayload(const LweCiphertext &ct,
                       const TorusPolynomial &tv)
{
    std::ostringstream os;
    serialize(os, ct);
    serialize(os, tv);
    return streamBytes(os);
}

BootstrapRequest
decodeBootstrapPayload(const std::vector<uint8_t> &payload)
{
    std::istringstream is(payloadString(payload));
    BootstrapRequest req{deserializeLweCiphertext(is),
                         deserializeTorusPolynomial(is)};
    expectFullyConsumed(is);
    return req;
}

// --- ApplyLut --------------------------------------------------------

std::vector<uint8_t>
encodeApplyLutPayload(const LweCiphertext &ct, uint64_t msg_space,
                      const std::vector<int64_t> &table)
{
    std::ostringstream os;
    FrameWriter w(os, kTagLutRequest, 1);
    w.u64(msg_space);
    w.u64(table.size());
    for (int64_t v : table)
        w.u64(static_cast<uint64_t>(v)); // two's-complement round trip
    serialize(os, ct);
    return streamBytes(os);
}

ApplyLutRequest
decodeApplyLutPayload(const std::vector<uint8_t> &payload)
{
    std::istringstream is(payloadString(payload));
    FrameReader r(is, kTagLutRequest, 1, "LUT request");
    ApplyLutRequest req;
    req.msg_space = r.u64();
    if (req.msg_space < 2 || req.msg_space > kMaxLutMsgSpace)
        throw std::runtime_error("serialize: implausible msg_space");
    const uint64_t count = r.u64();
    if (count != req.msg_space)
        throw std::runtime_error(
            "serialize: LUT table size != msg_space");
    req.table.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        req.table.push_back(static_cast<int64_t>(r.u64()));
    req.ct = deserializeLweCiphertext(is);
    expectFullyConsumed(is);
    return req;
}

// --- EvalCircuit -----------------------------------------------------

std::vector<uint8_t>
encodeCircuitPayload(const Circuit &circuit,
                     const std::vector<LweCiphertext> &inputs)
{
    std::ostringstream os;
    FrameWriter w(os, kTagCircuitRequest, 1);
    w.u64(circuit.numNodes());
    for (Wire i = 0; i < circuit.numNodes(); ++i) {
        const Circuit::Node &n = circuit.node(i);
        w.u32(static_cast<uint32_t>(n.op));
        w.u32(n.a);
        w.u32(n.b);
        w.u32(n.c);
        w.u32(n.const_value ? 1 : 0);
    }
    w.u64(circuit.numOutputs());
    for (Wire o : circuit.outputs())
        w.u32(o);
    w.u64(inputs.size());
    for (const LweCiphertext &ct : inputs)
        serialize(os, ct);
    return streamBytes(os);
}

CircuitRequest
decodeCircuitPayload(const std::vector<uint8_t> &payload)
{
    std::istringstream is(payloadString(payload));
    FrameReader r(is, kTagCircuitRequest, 1, "circuit request");
    const uint64_t num_nodes = r.u64();
    if (num_nodes > kMaxCircuitNodes)
        throw std::runtime_error(
            "serialize: implausible circuit size");
    CircuitRequest req;
    // Rebuild through the public netlist API so its topological-order
    // panics become our validation: operands are range-checked here
    // first, so hostile indices throw instead of panicking the daemon.
    for (uint64_t i = 0; i < num_nodes; ++i) {
        const uint32_t op_raw = r.u32();
        const Wire a = r.u32();
        const Wire b = r.u32();
        const Wire c = r.u32();
        const bool const_value = r.u32() != 0;
        if (op_raw > static_cast<uint32_t>(GateOp::Const))
            throw std::runtime_error("serialize: unknown gate op");
        const auto op = static_cast<GateOp>(op_raw);
        auto checkOperand = [i](Wire w) {
            if (w >= i)
                throw std::runtime_error(
                    "serialize: circuit operand out of order");
        };
        switch (op) {
        case GateOp::Input:
            req.circuit.input();
            break;
        case GateOp::Const:
            req.circuit.constant(const_value);
            break;
        case GateOp::Not:
            checkOperand(a);
            req.circuit.notGate(a);
            break;
        case GateOp::Mux:
            checkOperand(a);
            checkOperand(b);
            checkOperand(c);
            req.circuit.mux(a, b, c);
            break;
        default:
            checkOperand(a);
            checkOperand(b);
            req.circuit.gate(op, a, b);
            break;
        }
    }
    const uint64_t num_outputs = r.u64();
    if (num_outputs > num_nodes)
        throw std::runtime_error(
            "serialize: more outputs than nodes");
    for (uint64_t i = 0; i < num_outputs; ++i) {
        const Wire o = r.u32();
        if (o >= num_nodes)
            throw std::runtime_error(
                "serialize: output wire out of range");
        req.circuit.output(o);
    }
    const uint64_t num_inputs = r.u64();
    if (num_inputs != req.circuit.numInputs())
        throw std::runtime_error(
            "serialize: input ciphertext count mismatch");
    req.inputs.reserve(num_inputs);
    for (uint64_t i = 0; i < num_inputs; ++i)
        req.inputs.push_back(deserializeLweCiphertext(is));
    expectFullyConsumed(is);
    return req;
}

// --- ciphertext vectors ----------------------------------------------

std::vector<uint8_t>
encodeCiphertexts(const std::vector<LweCiphertext> &cts)
{
    std::ostringstream os;
    FrameWriter w(os, kTagCiphertexts, 1);
    w.u64(cts.size());
    for (const LweCiphertext &ct : cts)
        serialize(os, ct);
    return streamBytes(os);
}

std::vector<LweCiphertext>
decodeCiphertexts(const std::vector<uint8_t> &payload)
{
    std::istringstream is(payloadString(payload));
    FrameReader r(is, kTagCiphertexts, 1, "ciphertext vector");
    const uint64_t count = r.u64();
    if (count > kMaxWireCiphertexts)
        throw std::runtime_error(
            "serialize: implausible ciphertext count");
    std::vector<LweCiphertext> cts;
    cts.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        cts.push_back(deserializeLweCiphertext(is));
    expectFullyConsumed(is);
    return cts;
}

// --- RegisterTenant --------------------------------------------------

std::vector<uint8_t>
encodeEvalKeysPayload(const EvalKeys &keys, EvalKeysFormat format)
{
    std::ostringstream os;
    serialize(os, keys, format);
    return streamBytes(os);
}

std::shared_ptr<const EvalKeys>
decodeEvalKeysPayload(const std::vector<uint8_t> &payload)
{
    std::istringstream is(payloadString(payload));
    std::shared_ptr<const EvalKeys> keys = deserializeEvalKeys(is);
    expectFullyConsumed(is);
    return keys;
}

} // namespace strix
