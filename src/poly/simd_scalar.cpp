/**
 * @file
 * Portable scalar kernel table: the semantic reference every vector
 * backend is cross-checked against. The butterfly math reproduces the
 * original FftPlan::transform loop bit-for-bit (the stage-major
 * twiddle table holds the same double values the old strided table
 * produced, because scaling an angle by a power of two is exact).
 */

#include <cmath>
#include <utility>

#include "poly/simd.h"

namespace strix {
namespace {

// Deliberately file-local (not a shared header inline): see the
// backend-author note in simd.h.
void
bitReversePermute(const FftTables &t, Cplx *data)
{
    for (size_t i = 0; i < t.m; ++i) {
        size_t j = t.bit_reverse[i];
        if (i < j)
            std::swap(data[i], data[j]);
    }
}

void
fftForwardScalar(const FftTables &t, Cplx *data)
{
    bitReversePermute(t, data);
    const Cplx *tw = t.stage_twiddles;
    for (size_t len = 2; len <= t.m; len <<= 1) {
        const size_t half = len >> 1;
        for (size_t base = 0; base < t.m; base += len) {
            for (size_t j = 0; j < half; ++j) {
                Cplx u = data[base + j];
                Cplx v = data[base + j + half] * tw[j];
                data[base + j] = u + v;
                data[base + j + half] = u - v;
            }
        }
        tw += half;
    }
}

void
fftForwardBatchScalar(const FftTables &t, Cplx *data, size_t batch)
{
    for (size_t b = 0; b < batch; ++b)
        bitReversePermute(t, data + b * t.m);
    // Stage-major over the batch: every member start is a multiple of
    // t.m, which is a multiple of every stage length, so sweeping base
    // over the whole batch*m buffer runs the per-member stage loops in
    // one pass. Each element sees exactly the ops fftForwardScalar
    // would apply, so the result is bit-identical per member.
    const size_t total = t.m * batch;
    const Cplx *tw = t.stage_twiddles;
    for (size_t len = 2; len <= t.m; len <<= 1) {
        const size_t half = len >> 1;
        for (size_t base = 0; base < total; base += len) {
            for (size_t j = 0; j < half; ++j) {
                Cplx u = data[base + j];
                Cplx v = data[base + j + half] * tw[j];
                data[base + j] = u + v;
                data[base + j + half] = u - v;
            }
        }
        tw += half;
    }
}

void
fftInverseScalar(const FftTables &t, Cplx *data)
{
    bitReversePermute(t, data);
    const Cplx *tw = t.stage_twiddles;
    for (size_t len = 2; len <= t.m; len <<= 1) {
        const size_t half = len >> 1;
        for (size_t base = 0; base < t.m; base += len) {
            for (size_t j = 0; j < half; ++j) {
                Cplx u = data[base + j];
                Cplx v = data[base + j + half] * std::conj(tw[j]);
                data[base + j] = u + v;
                data[base + j + half] = u - v;
            }
        }
        tw += half;
    }
    const double inv = 1.0 / static_cast<double>(t.m);
    for (size_t i = 0; i < t.m; ++i)
        data[i] *= inv;
}

void
twistScalar(Cplx *out, const int32_t *lo, const int32_t *hi,
            const Cplx *tw, size_t m)
{
    for (size_t j = 0; j < m; ++j) {
        Cplx u(static_cast<double>(lo[j]), static_cast<double>(hi[j]));
        out[j] = u * tw[j];
    }
}

void
twistBatchScalar(Cplx *out, const int32_t *coeffs, const Cplx *tw,
                 size_t m, size_t batch)
{
    for (size_t b = 0; b < batch; ++b)
        twistScalar(out + b * m, coeffs + b * 2 * m,
                    coeffs + b * 2 * m + m, tw, m);
}

void
untwistScalar(uint32_t *lo, uint32_t *hi, const Cplx *freq,
              const Cplx *tw, size_t m)
{
    for (size_t j = 0; j < m; ++j) {
        Cplx u = freq[j] * std::conj(tw[j]);
        // Round to the integer grid and wrap mod 2^32. The kernel
        // contract (simd.h) bounds |u| < 2^51 -- TFHE gadget
        // decomposition keeps real inputs below ~2^50 -- so llround
        // never overflows int64 and the vector backends' magic-number
        // rounding agrees with this reference.
        lo[j] = static_cast<uint32_t>(
            static_cast<int64_t>(std::llround(u.real())));
        hi[j] = static_cast<uint32_t>(
            static_cast<int64_t>(std::llround(u.imag())));
    }
}

void
mulAccumulateScalar(Cplx *out, const Cplx *a, const Cplx *b, size_t m)
{
    for (size_t i = 0; i < m; ++i)
        out[i] += a[i] * b[i];
}

const PolyKernels kScalarKernels = {
    "scalar",         fftForwardScalar, fftForwardBatchScalar,
    fftInverseScalar, twistScalar,      twistBatchScalar,
    untwistScalar,    mulAccumulateScalar,
};

} // namespace

const PolyKernels &
scalarKernels()
{
    return kScalarKernels;
}

} // namespace strix
