# Empty compiler generated dependencies file for test_ggsw.
# This may be replaced when dependencies are built.
