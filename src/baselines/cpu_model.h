/**
 * @file
 * Concrete-like CPU baseline model.
 *
 * Two modes:
 *  - analytic: per-PBS latency anchored at the published Concrete
 *    numbers (Table V) and scaled with n (blind-rotation iterations)
 *    and N*log2(N) (FFT cost) for unlisted parameter sets;
 *  - measured: runs our own software TFHE and reports real wall time
 *    (used by the Fig. 1 workload-breakdown bench).
 *
 * Workload runs model a multi-socket Xeon with `threads` independent
 * workers, each bootstrapping one LWE at a time (no packing -- the
 * paper's central observation about TFHE on CPUs).
 */

#ifndef STRIX_BASELINES_CPU_MODEL_H
#define STRIX_BASELINES_CPU_MODEL_H

#include "strix/graph.h"
#include "tfhe/params.h"

namespace strix {

/** Analytic CPU model. */
class CpuModel
{
  public:
    /** @param threads worker threads for batch workloads. */
    explicit CpuModel(uint32_t threads = 24) : threads_(threads) {}

    uint32_t threads() const { return threads_; }

    /**
     * Single PBS (+keyswitch) latency in ms. Anchored to Concrete's
     * published set-I latency and scaled by n * N*log2(N); the other
     * published sets calibrate the accuracy of that scaling.
     */
    double pbsLatencyMs(const TfheParams &p) const;

    /** Single-thread throughput is simply 1/latency. */
    double throughputPbsPerSec(const TfheParams &p) const
    {
        return 1000.0 / pbsLatencyMs(p);
    }

    /** Seconds to run @p num_lwes independent PBS on `threads`. */
    double runBatchSeconds(const TfheParams &p, uint64_t num_lwes) const;

    /** Seconds to run a layered workload graph (layer barriers). */
    double runGraphSeconds(const TfheParams &p,
                           const WorkloadGraph &g) const;

  private:
    uint32_t threads_;
};

} // namespace strix

#endif // STRIX_BASELINES_CPU_MODEL_H
