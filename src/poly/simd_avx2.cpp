/**
 * @file
 * AVX2+FMA kernel table. This is the only translation unit compiled
 * with -mavx2 -mfma; it must never be entered on a CPU without those
 * features, which avx2Kernels() guarantees by probing CPUID before
 * publishing the table.
 *
 * Data layout: std::complex<double> is array-of-two-doubles, so one
 * __m256d holds two complex values [re0 im0 re1 im1]. A complex
 * multiply is then a movedup/permute pair plus one FMA:
 *   even lanes  re = vr*wr - vi*wi   (fmaddsub subtracts on evens)
 *   odd  lanes  im = vi*wr + vr*wi   (adds on odds)
 * and multiplying by the conjugate just swaps fmaddsub for fmsubadd.
 *
 * The stage-major twiddle table (FftTables::stage_twiddles) makes
 * every butterfly's twiddle load a contiguous unaligned load; the old
 * strided layout would have needed gathers.
 */

#include "poly/simd.h"

#if !defined(__AVX2__) || !defined(__FMA__)
#error "simd_avx2.cpp must be compiled with -mavx2 -mfma"
#endif

#include <immintrin.h>

#include <cmath>
#include <utility>

namespace strix {
namespace {

// Deliberately file-local (not a shared header inline): see the
// backend-author note in simd.h.
void
bitReversePermute(const FftTables &t, Cplx *data)
{
    for (size_t i = 0; i < t.m; ++i) {
        size_t j = t.bit_reverse[i];
        if (i < j)
            std::swap(data[i], data[j]);
    }
}

/** [a0*b0, a1*b1] for 2 packed complex doubles per register. */
inline __m256d
cplxMul(__m256d a, __m256d b)
{
    __m256d br = _mm256_movedup_pd(b);     // [br0 br0 br1 br1]
    __m256d bi = _mm256_permute_pd(b, 0xF); // [bi0 bi0 bi1 bi1]
    __m256d as = _mm256_permute_pd(a, 0x5); // [ai0 ar0 ai1 ar1]
    return _mm256_fmaddsub_pd(a, br, _mm256_mul_pd(as, bi));
}

/** [a0*conj(b0), a1*conj(b1)]. */
inline __m256d
cplxMulConj(__m256d a, __m256d b)
{
    __m256d br = _mm256_movedup_pd(b);
    __m256d bi = _mm256_permute_pd(b, 0xF);
    __m256d as = _mm256_permute_pd(a, 0x5);
    return _mm256_fmsubadd_pd(a, br, _mm256_mul_pd(as, bi));
}

/**
 * First butterfly stage (len = 2, twiddle 1): adjacent-pair
 * sum/difference, two complex values per register.
 */
inline void
stageLen2(double *d, size_t m)
{
    for (size_t i = 0; i < m; i += 2) {
        __m256d x = _mm256_loadu_pd(d + 2 * i); // [c_i, c_{i+1}]
        __m256d sw = _mm256_permute2f128_pd(x, x, 0x01);
        __m256d sum = _mm256_add_pd(x, sw);
        // sw - x puts c_i - c_{i+1} in the *upper* lane, which is
        // where the blend takes it from.
        __m256d diff = _mm256_sub_pd(sw, x);
        // [c_i + c_{i+1}, c_i - c_{i+1}]
        _mm256_storeu_pd(d + 2 * i, _mm256_blend_pd(sum, diff, 0xC));
    }
}

/**
 * One butterfly stage of length @p len swept over @p span contiguous
 * elements; span is the transform size for a single FFT and the whole
 * chunk (members * m) for the batched sweep. Conj selects forward
 * (v*w) vs inverse (v*conj(w)).
 */
template <bool Conj>
inline void
stageSweep(double *d, const Cplx *tw, size_t len, size_t span)
{
    const size_t half = len >> 1;
    const double *twd = reinterpret_cast<const double *>(tw);
    for (size_t base = 0; base < span; base += len) {
        double *lo = d + 2 * base;
        double *hi = d + 2 * (base + half);
        size_t j = 0;
        // Two independent butterfly vectors per iteration keeps
        // both FMA ports busy.
        for (; j + 4 <= half; j += 4) {
            __m256d w0 = _mm256_loadu_pd(twd + 2 * j);
            __m256d w1 = _mm256_loadu_pd(twd + 2 * j + 4);
            __m256d u0 = _mm256_loadu_pd(lo + 2 * j);
            __m256d u1 = _mm256_loadu_pd(lo + 2 * j + 4);
            __m256d v0 = _mm256_loadu_pd(hi + 2 * j);
            __m256d v1 = _mm256_loadu_pd(hi + 2 * j + 4);
            __m256d p0 = Conj ? cplxMulConj(v0, w0) : cplxMul(v0, w0);
            __m256d p1 = Conj ? cplxMulConj(v1, w1) : cplxMul(v1, w1);
            _mm256_storeu_pd(lo + 2 * j, _mm256_add_pd(u0, p0));
            _mm256_storeu_pd(lo + 2 * j + 4, _mm256_add_pd(u1, p1));
            _mm256_storeu_pd(hi + 2 * j, _mm256_sub_pd(u0, p0));
            _mm256_storeu_pd(hi + 2 * j + 4, _mm256_sub_pd(u1, p1));
        }
        for (; j < half; j += 2) {
            __m256d w = _mm256_loadu_pd(twd + 2 * j);
            __m256d u = _mm256_loadu_pd(lo + 2 * j);
            __m256d v = _mm256_loadu_pd(hi + 2 * j);
            __m256d p = Conj ? cplxMulConj(v, w) : cplxMul(v, w);
            _mm256_storeu_pd(lo + 2 * j, _mm256_add_pd(u, p));
            _mm256_storeu_pd(hi + 2 * j, _mm256_sub_pd(u, p));
        }
    }
}

/** Shared stage loop; Conj selects forward (v*w) vs inverse (v*conj(w)). */
template <bool Conj>
inline void
butterflyStages(const FftTables &t, Cplx *data)
{
    double *d = reinterpret_cast<double *>(data);
    const size_t m = t.m;
    stageLen2(d, m);
    const Cplx *tw = t.stage_twiddles + 1; // past the len=2 stage
    for (size_t len = 4; len <= m; len <<= 1) {
        stageSweep<Conj>(d, tw, len, m);
        tw += len >> 1;
    }
}

void
fftForwardAvx2(const FftTables &t, Cplx *data)
{
    bitReversePermute(t, data);
    butterflyStages<false>(t, data);
}

/**
 * One L1-resident chunk of the batched forward FFT: per-member bit
 * reversal, then every butterfly stage sweeps the whole chunk before
 * the next stage runs. Member starts are multiples of t.m, which
 * every stage length divides, so one base sweep over batch*m elements
 * never straddles a member.
 *
 * The batch win is twiddle amortization: the three smallest
 * twiddle-bearing stages (len 4/8/16) keep the entire stage twiddle
 * set in registers for the whole sweep, where the per-poly path
 * reloads it for every transform; the larger stages reuse the exact
 * loop of butterflyStages over the longer span. Every element sees
 * the same add/sub/FMA sequence the single-transform kernel applies,
 * so results are bit-identical to per-member fftForwardAvx2 (the
 * tests assert equality, not ULP closeness).
 */
void
fftForwardBatchChunkAvx2(const FftTables &t, Cplx *data, size_t batch)
{
    for (size_t b = 0; b < batch; ++b)
        bitReversePermute(t, data + b * t.m);
    double *d = reinterpret_cast<double *>(data);
    const size_t m = t.m;
    const size_t total = m * batch;
    stageLen2(d, total);
    const Cplx *tw = t.stage_twiddles + 1; // past the len=2 stage
    if (m >= 4) { // len = 4, half = 2: one hoisted register
        const __m256d w =
            _mm256_loadu_pd(reinterpret_cast<const double *>(tw));
        for (size_t base = 0; base < total; base += 4) {
            double *lo = d + 2 * base;
            double *hi = lo + 4;
            __m256d u = _mm256_loadu_pd(lo);
            __m256d v = _mm256_loadu_pd(hi);
            __m256d p = cplxMul(v, w);
            _mm256_storeu_pd(lo, _mm256_add_pd(u, p));
            _mm256_storeu_pd(hi, _mm256_sub_pd(u, p));
        }
        tw += 2;
    }
    if (m >= 8) { // len = 8, half = 4: two hoisted registers
        const double *twd = reinterpret_cast<const double *>(tw);
        const __m256d w0 = _mm256_loadu_pd(twd);
        const __m256d w1 = _mm256_loadu_pd(twd + 4);
        for (size_t base = 0; base < total; base += 8) {
            double *lo = d + 2 * base;
            double *hi = lo + 8;
            __m256d u0 = _mm256_loadu_pd(lo);
            __m256d u1 = _mm256_loadu_pd(lo + 4);
            __m256d v0 = _mm256_loadu_pd(hi);
            __m256d v1 = _mm256_loadu_pd(hi + 4);
            __m256d p0 = cplxMul(v0, w0);
            __m256d p1 = cplxMul(v1, w1);
            _mm256_storeu_pd(lo, _mm256_add_pd(u0, p0));
            _mm256_storeu_pd(lo + 4, _mm256_add_pd(u1, p1));
            _mm256_storeu_pd(hi, _mm256_sub_pd(u0, p0));
            _mm256_storeu_pd(hi + 4, _mm256_sub_pd(u1, p1));
        }
        tw += 4;
    }
    if (m >= 16) { // len = 16, half = 8: four hoisted registers
        const double *twd = reinterpret_cast<const double *>(tw);
        const __m256d w0 = _mm256_loadu_pd(twd);
        const __m256d w1 = _mm256_loadu_pd(twd + 4);
        const __m256d w2 = _mm256_loadu_pd(twd + 8);
        const __m256d w3 = _mm256_loadu_pd(twd + 12);
        for (size_t base = 0; base < total; base += 16) {
            double *lo = d + 2 * base;
            double *hi = lo + 16;
            __m256d u0 = _mm256_loadu_pd(lo);
            __m256d u1 = _mm256_loadu_pd(lo + 4);
            __m256d v0 = _mm256_loadu_pd(hi);
            __m256d v1 = _mm256_loadu_pd(hi + 4);
            __m256d p0 = cplxMul(v0, w0);
            __m256d p1 = cplxMul(v1, w1);
            _mm256_storeu_pd(lo, _mm256_add_pd(u0, p0));
            _mm256_storeu_pd(lo + 4, _mm256_add_pd(u1, p1));
            _mm256_storeu_pd(hi, _mm256_sub_pd(u0, p0));
            _mm256_storeu_pd(hi + 4, _mm256_sub_pd(u1, p1));
            __m256d u2 = _mm256_loadu_pd(lo + 8);
            __m256d u3 = _mm256_loadu_pd(lo + 12);
            __m256d v2 = _mm256_loadu_pd(hi + 8);
            __m256d v3 = _mm256_loadu_pd(hi + 12);
            __m256d p2 = cplxMul(v2, w2);
            __m256d p3 = cplxMul(v3, w3);
            _mm256_storeu_pd(lo + 8, _mm256_add_pd(u2, p2));
            _mm256_storeu_pd(lo + 12, _mm256_add_pd(u3, p3));
            _mm256_storeu_pd(hi + 8, _mm256_sub_pd(u2, p2));
            _mm256_storeu_pd(hi + 12, _mm256_sub_pd(u3, p3));
        }
        tw += 8;
    }
    for (size_t len = 32; len <= m; len <<= 1) {
        stageSweep<false>(d, tw, len, total);
        tw += len >> 1;
    }
}

/**
 * Batched forward FFT. The stage-major sweep re-touches a chunk's
 * entire data once per stage, so the chunk working set is capped near
 * 32 KiB (half a typical L1d): members beyond that are processed as
 * consecutive L1-resident chunks. This keeps the small-stage twiddle
 * amortization where it pays (many members per chunk at the external
 * product's m = N/2 sizes) without turning large-m sweeps into
 * L2-streaming loops. Chunking only changes the order independent
 * members are processed in, never the per-member arithmetic.
 */
void
fftForwardBatchAvx2(const FftTables &t, Cplx *data, size_t batch)
{
    constexpr size_t kChunkPoints = 2048; // * sizeof(Cplx) = 32 KiB
    const size_t max_members =
        t.m >= kChunkPoints ? 1 : kChunkPoints / t.m;
    while (batch > 0) {
        const size_t members =
            batch < max_members ? batch : max_members;
        fftForwardBatchChunkAvx2(t, data, members);
        data += members * t.m;
        batch -= members;
    }
}

void
fftInverseAvx2(const FftTables &t, Cplx *data)
{
    bitReversePermute(t, data);
    butterflyStages<true>(t, data);
    double *d = reinterpret_cast<double *>(data);
    const __m256d inv =
        _mm256_set1_pd(1.0 / static_cast<double>(t.m));
    for (size_t i = 0; i < 2 * t.m; i += 4)
        _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i), inv));
}

void
twistAvx2(Cplx *out, const int32_t *lo, const int32_t *hi, const Cplx *tw,
          size_t m)
{
    double *o = reinterpret_cast<double *>(out);
    const double *twd = reinterpret_cast<const double *>(tw);
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        __m256d re = _mm256_cvtepi32_pd(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(lo + j)));
        __m256d im = _mm256_cvtepi32_pd(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(hi + j)));
        // Interleave [r0..r3]/[i0..i3] into packed complex pairs.
        __m256d t0 = _mm256_unpacklo_pd(re, im); // [r0 i0 r2 i2]
        __m256d t1 = _mm256_unpackhi_pd(re, im); // [r1 i1 r3 i3]
        __m256d c01 = _mm256_permute2f128_pd(t0, t1, 0x20);
        __m256d c23 = _mm256_permute2f128_pd(t0, t1, 0x31);
        _mm256_storeu_pd(o + 2 * j,
                         cplxMul(c01, _mm256_loadu_pd(twd + 2 * j)));
        _mm256_storeu_pd(o + 2 * j + 4,
                         cplxMul(c23, _mm256_loadu_pd(twd + 2 * j + 4)));
    }
    for (; j < m; ++j)
        out[j] = Cplx(static_cast<double>(lo[j]),
                      static_cast<double>(hi[j])) *
                 tw[j];
}

void
twistBatchAvx2(Cplx *out, const int32_t *coeffs, const Cplx *tw, size_t m,
               size_t batch)
{
    // The twist table is shared by every row and stays cache-hot
    // across the batch; the per-row loop is already vectorized.
    for (size_t b = 0; b < batch; ++b)
        twistAvx2(out + b * m, coeffs + b * 2 * m, coeffs + b * 2 * m + m,
                  tw, m);
}

void
untwistAvx2(uint32_t *lo, uint32_t *hi, const Cplx *freq, const Cplx *tw,
            size_t m)
{
    const double *f = reinterpret_cast<const double *>(freq);
    const double *twd = reinterpret_cast<const double *>(tw);
    // 2^52 + 2^51: adding it forces round-to-nearest onto the integer
    // grid and leaves value mod 2^32 in the low mantissa dword; valid
    // exactly on the kernel contract's |u| < 2^51 domain (simd.h),
    // comfortably above the ~2^50 worst case of any shipped parameter
    // set. Ties round to even where the scalar reference rounds away
    // from zero -- a <=1 ulp difference the tests allow.
    const __m256d magic = _mm256_set1_pd(6755399441055744.0);
    const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        __m256d u01 = cplxMulConj(_mm256_loadu_pd(f + 2 * j),
                                  _mm256_loadu_pd(twd + 2 * j));
        __m256d u23 = cplxMulConj(_mm256_loadu_pd(f + 2 * j + 4),
                                  _mm256_loadu_pd(twd + 2 * j + 4));
        // Deinterleave packed complex pairs into [r0..r3]/[i0..i3].
        __m256d t0 = _mm256_permute2f128_pd(u01, u23, 0x20);
        __m256d t1 = _mm256_permute2f128_pd(u01, u23, 0x31);
        __m256d re = _mm256_unpacklo_pd(t0, t1);
        __m256d im = _mm256_unpackhi_pd(t0, t1);
        __m256i rei = _mm256_castpd_si256(_mm256_add_pd(re, magic));
        __m256i imi = _mm256_castpd_si256(_mm256_add_pd(im, magic));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(lo + j),
            _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(rei, pick)));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(hi + j),
            _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(imi, pick)));
    }
    for (; j < m; ++j) {
        Cplx u = freq[j] * std::conj(tw[j]);
        lo[j] = static_cast<uint32_t>(
            static_cast<int64_t>(std::llround(u.real())));
        hi[j] = static_cast<uint32_t>(
            static_cast<int64_t>(std::llround(u.imag())));
    }
}

void
mulAccumulateAvx2(Cplx *out, const Cplx *a, const Cplx *b, size_t m)
{
    double *o = reinterpret_cast<double *>(out);
    const double *ad = reinterpret_cast<const double *>(a);
    const double *bd = reinterpret_cast<const double *>(b);
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
        __m256d s0 = _mm256_add_pd(
            _mm256_loadu_pd(o + 2 * i),
            cplxMul(_mm256_loadu_pd(ad + 2 * i),
                    _mm256_loadu_pd(bd + 2 * i)));
        __m256d s1 = _mm256_add_pd(
            _mm256_loadu_pd(o + 2 * i + 4),
            cplxMul(_mm256_loadu_pd(ad + 2 * i + 4),
                    _mm256_loadu_pd(bd + 2 * i + 4)));
        _mm256_storeu_pd(o + 2 * i, s0);
        _mm256_storeu_pd(o + 2 * i + 4, s1);
    }
    for (; i + 2 <= m; i += 2) {
        __m256d s = _mm256_add_pd(
            _mm256_loadu_pd(o + 2 * i),
            cplxMul(_mm256_loadu_pd(ad + 2 * i),
                    _mm256_loadu_pd(bd + 2 * i)));
        _mm256_storeu_pd(o + 2 * i, s);
    }
    for (; i < m; ++i)
        out[i] += a[i] * b[i];
}

const PolyKernels kAvx2Kernels = {
    "avx2",         fftForwardAvx2, fftForwardBatchAvx2,
    fftInverseAvx2, twistAvx2,      twistBatchAvx2,
    untwistAvx2,    mulAccumulateAvx2,
};

} // namespace

const PolyKernels *
avx2Kernels()
{
    // The table itself is feature-independent data; the probe keeps a
    // non-AVX2 machine from ever calling into this TU's code.
    static const PolyKernels *const published =
        cpuSupportsAvx2Fma() ? &kAvx2Kernels : nullptr;
    return published;
}

} // namespace strix
