/**
 * @file
 * Programmable bootstrapping tests: modulus switching, blind rotation
 * as exact negacyclic rotation (zero noise), LUT evaluation, and a
 * full-parameter noisy bootstrap.
 */

#include <gtest/gtest.h>

#include "tfhe/bootstrap.h"
#include "tfhe/server_context.h"
#include "support/test_util.h"

namespace strix {
namespace {

TEST(ModSwitch, RoundsToGrid)
{
    const uint32_t n = 1024; // 2N = 2048 grid
    EXPECT_EQ(modulusSwitch(0, n), 0u);
    // 2^32 / 2048 = 2^21 per step; half a step rounds up.
    EXPECT_EQ(modulusSwitch(1u << 21, n), 1u);
    EXPECT_EQ(modulusSwitch((1u << 20) - 1, n), 0u);
    EXPECT_EQ(modulusSwitch(1u << 20, n), 1u);
    // Wrap: values near 2^32 round to 0 (mod 2N).
    EXPECT_EQ(modulusSwitch(0xFFFFFFFFu, n), 0u);
    EXPECT_EQ(modulusSwitch(0x80000000u, n), 1024u);
}

TEST(ModSwitch, PreservesEncodingProportion)
{
    // mu = m/16 should land at m * 2N/16.
    const uint32_t n = 512;
    for (int64_t m = 0; m < 16; ++m) {
        EXPECT_EQ(modulusSwitch(encodeMessage(m, 16), n),
                  static_cast<uint32_t>(m) * (2 * n / 16));
    }
}

TEST(ModSwitch, PrecomputedHelperMatchesOneShot)
{
    // The hoisted ModSwitch (one instance per blind rotation) and the
    // one-shot helper must agree everywhere.
    Rng rng(404);
    for (uint32_t n : {4u, 64u, 1024u, 16384u, 1u << 30}) {
        const ModSwitch ms(n);
        for (int i = 0; i < 200; ++i) {
            Torus32 a = rng.uniformTorus32();
            EXPECT_EQ(ms(a), modulusSwitch(a, n)) << "n=" << n;
        }
        // Boundary values.
        EXPECT_EQ(ms(0), modulusSwitch(0, n));
        EXPECT_EQ(ms(0xFFFFFFFFu), modulusSwitch(0xFFFFFFFFu, n));
    }
}

TEST(ModSwitch, HalfTorusRingDimIsIdentity)
{
    // big_n = 2^31 makes 2N = 2^32: the target grid is the torus
    // itself, so the switch is the identity (no rounding bias). The
    // old implementation shifted by -1 here (undefined behavior).
    const uint32_t n = 1u << 31;
    EXPECT_EQ(modulusSwitch(0, n), 0u);
    EXPECT_EQ(modulusSwitch(1, n), 1u);
    EXPECT_EQ(modulusSwitch(123456789u, n), 123456789u);
    EXPECT_EQ(modulusSwitch(0x80000000u, n), 0x80000000u);
    EXPECT_EQ(modulusSwitch(0xFFFFFFFFu, n), 0xFFFFFFFFu);
}

TEST(ModSwitch, RoundsHalfUpAtEveryGridBoundary)
{
    // For 2N = 32, step = 2^27: a = step*g + step/2 rounds up to g+1,
    // one less rounds down to g; the top cell wraps to 0.
    const uint32_t n = 16;
    const uint32_t step = 1u << 27;
    for (uint32_t g = 0; g < 32; ++g) {
        EXPECT_EQ(modulusSwitch(step * g + step / 2, n), (g + 1) % 32);
        EXPECT_EQ(modulusSwitch(step * g + step / 2 - 1, n), g);
    }
}

TEST(ModSwitchDeathTest, PanicsOnNonPowerOfTwoRingDim)
{
    // The old log2 loop never terminated on these; now they are a
    // loud invariant violation before any looping.
    EXPECT_DEATH(modulusSwitch(0, 1000), "power of two");
    EXPECT_DEATH(modulusSwitch(0, 0), "power of two");
    EXPECT_DEATH(ModSwitch ms(3), "power of two");
}

/**
 * Zero-noise fixture with tiny parameters: blind rotation must behave
 * as the exact negacyclic rotation by the phase.
 */
class BootstrapExact : public ::testing::Test
{
  protected:
    static constexpr uint32_t kN = 256; // ring dim
    static constexpr uint32_t kLweDim = 16;

    BootstrapExact()
        : params_(testParams(kLweDim, kN, 1, 3, 8, 0.0)),
          keys_(params_, test::kSeedBootstrap)
    {
    }

    TfheParams params_;
    test::TestKeys keys_;
    const ClientKeyset &client() { return keys_.client; }
    const ServerContext &server() { return keys_.server; }
};

TEST_F(BootstrapExact, LutIdentityFunction)
{
    const uint64_t p = 8;
    for (int64_t m = 0; m < static_cast<int64_t>(p); ++m) {
        auto ct = client().encryptInt(m, p);
        auto out = server().applyLut(ct, p, [](int64_t x) { return x; });
        EXPECT_EQ(client().decryptInt(out, p), m) << "m=" << m;
    }
}

TEST_F(BootstrapExact, LutSquareMod8)
{
    const uint64_t p = 8;
    for (int64_t m = 0; m < 8; ++m) {
        auto ct = client().encryptInt(m, p);
        auto out =
            server().applyLut(ct, p, [](int64_t x) { return (x * x) % 8; });
        EXPECT_EQ(client().decryptInt(out, p), (m * m) % 8) << "m=" << m;
    }
}

TEST_F(BootstrapExact, LutRelu)
{
    // ReLU over centered integers: values >= p/2 represent negatives.
    const uint64_t p = 16;
    auto relu = [](int64_t x) { return x < 8 ? x : 0; };
    for (int64_t m = 0; m < 16; ++m) {
        auto ct = client().encryptInt(m, p);
        auto out = server().applyLut(ct, p, relu);
        EXPECT_EQ(client().decryptInt(out, p), relu(m)) << "m=" << m;
    }
}

TEST_F(BootstrapExact, BootstrapRefreshesToIndependentNoise)
{
    // Even with zero fresh noise, the PBS output must decrypt to the
    // same message after an additive chain that would otherwise grow.
    const uint64_t p = 8;
    auto c1 = client().encryptInt(2, p);
    auto out = server().applyLut(c1, p, [](int64_t x) { return x; });
    // Output dimension must be back to n after keyswitch.
    EXPECT_EQ(out.dim(), params_.n);
}

TEST_F(BootstrapExact, PbsOutputDimensionIsExtracted)
{
    const uint64_t p = 8;
    auto ct = client().encryptInt(3, p);
    TorusPolynomial tv =
        makeIntTestVector(params_.N, p, [](int64_t x) { return x; });
    auto big = programmableBootstrap(ct, tv, server().bsk());
    EXPECT_EQ(big.dim(), params_.k * params_.N);
    LweKey extracted = client().glweKey().extractedLweKey();
    EXPECT_EQ(decodeLut(lwePhase(extracted, big), p), 3);
}

TEST_F(BootstrapExact, TestVectorWindowLayout)
{
    const uint64_t p = 8;
    TorusPolynomial tv =
        makeIntTestVector(kN, p, [](int64_t x) { return x; });
    // Coefficient j encodes floor(j*p/N).
    EXPECT_EQ(tv[0], encodeLut(0, p));
    EXPECT_EQ(tv[kN / 8], encodeLut(1, p));
    EXPECT_EQ(tv[kN - 1], encodeLut(7, p));
}

TEST(BootstrapNoise, FullParameterSetI)
{
    // End-to-end PBS at the paper's parameter set I with real noise.
    // Slow (key generation dominates); kept to a handful of messages.
    test::TestKeys keys(paramsSetI(), 7);
    const uint64_t p = 4;
    for (int64_t m = 0; m < 4; ++m) {
        auto ct = keys.client.encryptInt(m, p);
        auto out = keys.server.applyLut(
            ct, p, [](int64_t x) { return (x + 1) % 4; });
        EXPECT_EQ(keys.client.decryptInt(out, p), (m + 1) % 4)
            << "m=" << m;
    }
}

} // namespace
} // namespace strix
