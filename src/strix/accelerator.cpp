/**
 * @file
 * Strix epoch scheduler and performance model.
 */

#include "strix/accelerator.h"

#include "strix/scheduler.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace strix {

PbsPerf
StrixAccelerator::evaluatePbs(const TfheParams &p) const
{
    Hsc core(cfg_, p);
    const UnitTiming &t = core.timing();
    const MemorySystem &mem = core.memory();
    const double hz = cfg_.clock_ghz * 1e9;

    const uint32_t m = mem.coreBatch();
    PbsPerf perf{};
    perf.core_batch = m;
    perf.device_batch = m * cfg_.tvlp;

    // Latency: one LWE traverses n iterations (each possibly gated by
    // the bsk fetch), drains the pipeline, then keyswitches with
    // nothing to hide behind.
    Cycle iter_lat =
        std::max<Cycle>(t.iterationII(), mem.bskFetchCycles());
    Cycle latency_cycles = t.iterations() * iter_lat +
                           t.drainCycles() + t.keyswitchCycles();
    perf.latency_ms = latency_cycles / hz * 1e3;

    // Throughput: epochs of TvLP*m LWEs; each core pipelines m LWEs
    // per blind-rotation iteration, sharing every bsk fetch via the
    // multicast NoC; keyswitching hides behind the next epoch.
    Cycle iter_tp = core.iterationCycles(m);
    double epoch_s = double(t.iterations()) * double(iter_tp) / hz;
    double tp_br = double(perf.device_batch) / epoch_s;
    // Keyswitch cluster capacity: m LWEs per core per epoch.
    double ks_s = double(m) * double(t.keyswitchCycles()) / hz;
    double tp = ks_s > epoch_s
                    ? double(perf.device_batch) / ks_s
                    : tp_br;
    perf.throughput_pbs_s = tp;
    perf.memory_bound = core.memoryBound(m);

    // Sustained external bandwidth demand while streaming (bsk per
    // iteration, ksk once per epoch, ciphertexts/test vectors per
    // epoch). Reported at core batch m = 1, the latency-critical
    // streaming requirement the paper tabulates in Table VII.
    Cycle iter_m1 = t.iterationII();
    double bsk_bw = ChannelGroup::requiredGbps(
        mem.bskBytesPerIteration(), iter_m1, cfg_.clock_ghz);
    Cycle epoch_m1 = t.iterations() * iter_m1;
    double ksk_bw = ChannelGroup::requiredGbps(mem.kskBytes(), epoch_m1,
                                               cfg_.clock_ghz);
    double ct_bw = ChannelGroup::requiredGbps(
        mem.ctBytesPerLwe() * cfg_.tvlp, epoch_m1, cfg_.clock_ghz);
    perf.required_bw_gbps = bsk_bw + ksk_bw + ct_bw;
    return perf;
}

BatchPerf
StrixAccelerator::runBatch(const TfheParams &p, uint64_t num_lwes) const
{
    // Materialize the epoch schedule (blind rotations back to back,
    // keyswitching overlapped one epoch behind, Sec. IV-C) and read
    // off the makespan.
    BatchPerf perf{};
    if (num_lwes == 0)
        return perf;
    EpochScheduler scheduler(cfg_);
    std::vector<EpochRecord> epochs = scheduler.schedule(p, num_lwes);
    perf.epochs = epochs.size();
    perf.seconds = double(EpochScheduler::makespan(epochs)) /
                   (cfg_.clock_ghz * 1e9);
    return perf;
}

BatchPerf
StrixAccelerator::runGraph(const TfheParams &p,
                           const WorkloadGraph &g) const
{
    // Layers are dependency barriers: a layer's PBS can only start
    // after the previous layer's results are keyswitched. Linear MACs
    // are executed host/accumulator-side and are negligible next to
    // PBS (Sec. IV-C); we cost them at one MAC per cycle per core.
    BatchPerf total{};
    const double hz = cfg_.clock_ghz * 1e9;
    for (const auto &layer : g.layers()) {
        BatchPerf lp = runBatch(p, layer.pbs_count);
        total.seconds += lp.seconds;
        total.epochs += lp.epochs;
        total.seconds +=
            double(layer.linear_macs) / double(cfg_.tvlp) / hz;
    }
    return total;
}

} // namespace strix
