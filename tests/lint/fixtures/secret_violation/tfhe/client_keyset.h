// Fixture: stands in for the real secret-key header.
#ifndef FIXTURE_TFHE_CLIENT_KEYSET_H
#define FIXTURE_TFHE_CLIENT_KEYSET_H

namespace strix {
class ClientKeyset
{
};
} // namespace strix

#endif
