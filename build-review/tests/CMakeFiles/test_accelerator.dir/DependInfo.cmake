
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accelerator.cpp" "tests/CMakeFiles/test_accelerator.dir/test_accelerator.cpp.o" "gcc" "tests/CMakeFiles/test_accelerator.dir/test_accelerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/tests/CMakeFiles/strix_test_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/strix_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/CMakeFiles/strix_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/strix/CMakeFiles/strix_arch.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tfhe/CMakeFiles/strix_tfhe.dir/DependInfo.cmake"
  "/root/repo/build-review/src/poly/CMakeFiles/strix_poly.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/strix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
