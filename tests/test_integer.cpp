/**
 * @file
 * Encrypted integer arithmetic tests (exact context for speed, one
 * noisy spot-check at parameter set I).
 */

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "tfhe/integer.h"

namespace strix {
namespace {

test::TestKeys &
exactKeys()
{
    static test::TestKeys keys(test::fastParams(), test::kSeedInteger);
    return keys;
}

const ClientKeyset &
exactClient()
{
    return exactKeys().client;
}

TEST(Integer, EncryptDecryptRoundTrip)
{
    IntegerOps ops(exactKeys().server);
    for (uint64_t v : {0ull, 1ull, 37ull, 255ull}) {
        auto x = ops.encrypt(exactClient(), v, 4); // 4 base-4 digits = 8 bits
        EXPECT_EQ(ops.decrypt(exactClient(), x), v) << v;
    }
}

TEST(Integer, DecryptReducesModuloRange)
{
    IntegerOps ops(exactKeys().server);
    auto x = ops.encrypt(exactClient(), 300, 4); // 300 mod 256 = 44
    EXPECT_EQ(ops.decrypt(exactClient(), x), 44u);
}

TEST(Integer, AdditionExhaustiveOneDigit)
{
    IntegerOps ops(exactKeys().server);
    for (uint64_t a = 0; a < 4; ++a)
        for (uint64_t b = 0; b < 4; ++b) {
            auto ea = ops.encrypt(exactClient(), a, 1);
            auto eb = ops.encrypt(exactClient(), b, 1);
            EXPECT_EQ(ops.decrypt(exactClient(), ops.add(ea, eb)), (a + b) % 4)
                << a << "+" << b;
        }
}

TEST(Integer, AdditionWithCarriesAcrossDigits)
{
    IntegerOps ops(exactKeys().server);
    struct Case
    {
        uint64_t a, b;
    };
    for (auto [a, b] : {Case{13, 7}, Case{63, 1}, Case{42, 42},
                        Case{255, 255}, Case{0, 0}, Case{170, 85}}) {
        auto ea = ops.encrypt(exactClient(), a, 4);
        auto eb = ops.encrypt(exactClient(), b, 4);
        EXPECT_EQ(ops.decrypt(exactClient(), ops.add(ea, eb)), (a + b) % 256)
            << a << "+" << b;
    }
}

TEST(Integer, SubtractionWithBorrows)
{
    IntegerOps ops(exactKeys().server);
    struct Case
    {
        uint64_t a, b;
    };
    for (auto [a, b] : {Case{13, 7}, Case{7, 13}, Case{0, 1},
                        Case{255, 254}, Case{128, 64}}) {
        auto ea = ops.encrypt(exactClient(), a, 4);
        auto eb = ops.encrypt(exactClient(), b, 4);
        EXPECT_EQ(ops.decrypt(exactClient(), ops.sub(ea, eb)), (a - b) & 0xFF)
            << a << "-" << b;
    }
}

TEST(Integer, AddScalar)
{
    IntegerOps ops(exactKeys().server);
    auto x = ops.encrypt(exactClient(), 100, 4);
    EXPECT_EQ(ops.decrypt(exactClient(), ops.addScalar(x, 55)), 155u);
    EXPECT_EQ(ops.decrypt(exactClient(), ops.addScalar(x, 200)), (100u + 200u) % 256);
}

TEST(Integer, EqualityBit)
{
    IntegerOps ops(exactKeys().server);
    auto a = ops.encrypt(exactClient(), 170, 4);
    auto b = ops.encrypt(exactClient(), 170, 4);
    auto c = ops.encrypt(exactClient(), 169, 4);
    EXPECT_TRUE(ops.decryptBit(exactClient(), ops.equal(a, b)));
    EXPECT_FALSE(ops.decryptBit(exactClient(), ops.equal(a, c)));
    // Differ only in the most-significant digit.
    auto d = ops.encrypt(exactClient(), 170 ^ 0xC0, 4);
    EXPECT_FALSE(ops.decryptBit(exactClient(), ops.equal(a, d)));
}

TEST(Integer, LessThan)
{
    IntegerOps ops(exactKeys().server);
    struct Case
    {
        uint64_t a, b;
    };
    for (auto [a, b] : {Case{3, 5}, Case{5, 3}, Case{7, 7}, Case{0, 255},
                        Case{255, 0}, Case{128, 129}}) {
        auto ea = ops.encrypt(exactClient(), a, 4);
        auto eb = ops.encrypt(exactClient(), b, 4);
        EXPECT_EQ(ops.decryptBit(exactClient(), ops.lessThan(ea, eb)), a < b)
            << a << "<" << b;
    }
}

TEST(Integer, ChainedArithmeticStaysCorrect)
{
    // (a + b) - c + 9, all encrypted: PBS refreshes noise at every
    // digit, so chains of any depth stay exact.
    IntegerOps ops(exactKeys().server);
    auto a = ops.encrypt(exactClient(), 99, 4);
    auto b = ops.encrypt(exactClient(), 120, 4);
    auto c = ops.encrypt(exactClient(), 33, 4);
    auto r = ops.addScalar(ops.sub(ops.add(a, b), c), 9);
    EXPECT_EQ(ops.decrypt(exactClient(), r), (99u + 120 - 33 + 9) % 256);
}

TEST(Integer, PbsCostModel)
{
    EXPECT_EQ(IntegerOps::addPbsCount(4), 8u);
    EXPECT_EQ(IntegerOps::addPbsCount(16), 32u);
}

TEST(Integer, NoisyAdditionAtSetI)
{
    // Real noise spot check: one 8-bit addition at parameter set I,
    // on the split API (ClientKeyset + ServerContext).
    ClientKeyset client(paramsSetI(), 8642);
    ServerContext server(client.evalKeys());
    IntegerOps ops(server);
    auto a = ops.encrypt(client, 173, 4);
    auto b = ops.encrypt(client, 91, 4);
    EXPECT_EQ(ops.decrypt(client, ops.add(a, b)), (173u + 91u) % 256);
}

} // namespace
} // namespace strix
