/**
 * @file
 * Negacyclic polynomial arithmetic implementations.
 */

#include "poly/polynomial.h"

#include <cstring>

#include "common/logging.h"

namespace strix {

void
TorusPolynomial::clear()
{
    std::fill(coeffs_.begin(), coeffs_.end(), 0);
}

void
TorusPolynomial::addAssign(const TorusPolynomial &other)
{
    panicIfNot(size() == other.size(), "poly size mismatch in addAssign");
    for (size_t i = 0; i < coeffs_.size(); ++i)
        coeffs_[i] += other.coeffs_[i];
}

void
TorusPolynomial::subAssign(const TorusPolynomial &other)
{
    panicIfNot(size() == other.size(), "poly size mismatch in subAssign");
    for (size_t i = 0; i < coeffs_.size(); ++i)
        coeffs_[i] -= other.coeffs_[i];
}

void
TorusPolynomial::negate()
{
    for (auto &c : coeffs_)
        c = 0u - c;
}

void
IntPolynomial::clear()
{
    std::fill(coeffs_.begin(), coeffs_.end(), 0);
}

void
negacyclicRotate(TorusPolynomial &result, const TorusPolynomial &poly,
                 uint32_t power)
{
    const size_t n = poly.size();
    panicIfNot(result.size() == n, "rotate size mismatch");
    panicIfNot(&result != &poly, "rotate must not alias");
    power %= 2 * n;
    // X^N == -1: rotation by a >= N equals rotation by a-N with sign flip.
    bool flip = power >= n;
    size_t a = flip ? power - n : power;
    // result[i+a] = poly[i] for i+a < n; wrapped part picks up a minus.
    for (size_t i = 0; i < n - a; ++i) {
        Torus32 v = poly[i];
        result[i + a] = flip ? 0u - v : v;
    }
    for (size_t i = n - a; i < n; ++i) {
        Torus32 v = poly[i];
        result[i + a - n] = flip ? v : 0u - v;
    }
}

void
negacyclicRotateMinusOne(TorusPolynomial &result, const TorusPolynomial &poly,
                         uint32_t power)
{
    negacyclicRotate(result, poly, power);
    result.subAssign(poly);
}

void
negacyclicMulNaive(TorusPolynomial &result, const IntPolynomial &a,
                   const TorusPolynomial &b)
{
    result.clear();
    negacyclicMulAddNaive(result, a, b);
}

void
negacyclicMulAddNaive(TorusPolynomial &result, const IntPolynomial &a,
                      const TorusPolynomial &b)
{
    const size_t n = a.size();
    panicIfNot(b.size() == n && result.size() == n,
               "negacyclic mul size mismatch");
    // Torus arithmetic is mod 2^32, so plain uint32 wraparound
    // accumulation is exact.
    for (size_t i = 0; i < n; ++i) {
        const auto ai = static_cast<uint32_t>(a[i]);
        if (ai == 0)
            continue;
        // a[i] * X^i * b: positive wrap for j < n-i, negated for wrap.
        for (size_t j = 0; j < n - i; ++j)
            result[i + j] += ai * b[j];
        for (size_t j = n - i; j < n; ++j)
            result[i + j - n] -= ai * b[j];
    }
}

namespace {

/**
 * Karatsuba on int64 coefficient arrays (plain, non-modular product of
 * length-2n from two length-n inputs). Threshold below which
 * schoolbook is used.
 */
constexpr size_t kKaratsubaThreshold = 16;

void
plainMul(int64_t *out, const int64_t *a, const int64_t *b, size_t n,
         int64_t *scratch)
{
    if (n <= kKaratsubaThreshold) {
        std::memset(out, 0, sizeof(int64_t) * (2 * n));
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j)
                out[i + j] += a[i] * b[j];
        return;
    }

    const size_t h = n / 2;
    // scratch layout: asum[h], bsum[h], mid[2h], recursion scratch...
    int64_t *asum = scratch;
    int64_t *bsum = scratch + h;
    int64_t *mid = scratch + 2 * h;
    int64_t *next = scratch + 4 * h;

    for (size_t i = 0; i < h; ++i) {
        asum[i] = a[i] + a[i + h];
        bsum[i] = b[i] + b[i + h];
    }

    // out[0..2h) = a_lo*b_lo; out[2h..4h) = a_hi*b_hi
    plainMul(out, a, b, h, next);
    plainMul(out + 2 * h, a + h, b + h, h, next);
    // mid = (a_lo+a_hi)*(b_lo+b_hi)
    plainMul(mid, asum, bsum, h, next);
    for (size_t i = 0; i < 2 * h; ++i)
        mid[i] -= out[i] + out[2 * h + i];
    for (size_t i = 0; i < 2 * h; ++i)
        out[h + i] += mid[i];
}

} // namespace

void
negacyclicMulKaratsuba(TorusPolynomial &result, const IntPolynomial &a,
                       const TorusPolynomial &b)
{
    const size_t n = a.size();
    panicIfNot(b.size() == n && result.size() == n,
               "karatsuba size mismatch");

    std::vector<int64_t> av(n), bv(n), prod(2 * n);
    // Karatsuba recursion scratch: 4h per level summed is < 4n.
    std::vector<int64_t> scratch(8 * n);
    for (size_t i = 0; i < n; ++i) {
        av[i] = a[i];
        // Torus value as unsigned; the final reduction is mod 2^32 so
        // signed vs unsigned lift does not matter, but int64 products
        // must not overflow: |a| small (decomposed), b < 2^32, product
        // sums bounded by n * max|a| * 2^32 -- may exceed int64 for
        // large n and base. Use the centered (signed) lift of b to
        // halve the magnitude.
        bv[i] = static_cast<int32_t>(b[i]);
    }
    plainMul(prod.data(), av.data(), bv.data(), n, scratch.data());
    for (size_t i = 0; i < n; ++i) {
        // reduce mod X^N + 1: coeff i gets prod[i] - prod[i+n]
        result[i] = static_cast<Torus32>(
            static_cast<uint64_t>(prod[i]) -
            static_cast<uint64_t>(prod[i + n]));
    }
}

} // namespace strix
