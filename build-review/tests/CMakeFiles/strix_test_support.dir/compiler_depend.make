# Empty compiler generated dependencies file for strix_test_support.
# This may be replaced when dependencies are built.
