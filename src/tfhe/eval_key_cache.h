/**
 * @file
 * EvalKeyCache: the bytes-budgeted LRU engine under ContextCache.
 *
 * Holds EvalKeys bundles -- public evaluation material only -- keyed
 * by caller-chosen strings, with exactly-once construction per key,
 * LRU eviction under a resident-bytes budget, and hit/miss/eviction
 * counters. Two entry populations share the machinery:
 *
 *  - built entries (getOrBuild): the keygen-amortizing path used by
 *    ContextCache, which owns the secret ClientKeyset alongside the
 *    bundle as an opaque `owner` handle (type-erased here, so this
 *    header never names or includes the secret type);
 *  - inserted entries (getOrInsert): externally-deserialized bundles
 *    -- the serving daemon's tenant-registration path -- namespaced
 *    apart from built keys so the populations can never alias.
 *
 * This split is what lets an evaluation-only daemon run budgeted key
 * storage without reaching tfhe/client_keyset.h (lint-enforced): the
 * secret-owning facade lives in context_cache.h, everything below it
 * is secret-free.
 *
 * Synchronization follows the PR 2 plan-cache discipline: lookups of
 * an already-built entry take a shared (reader) lock on the index --
 * never the build path -- and first touch is double-checked: the
 * entry slot is claimed under the exclusive lock, but the build runs
 * under a per-entry once-flag *outside* the index lock, so building
 * one tenant's keys never blocks cache hits for another. LRU recency
 * is per-entry atomic ticks; eviction scans run under the writer
 * lock.
 */

#ifndef STRIX_TFHE_EVAL_KEY_CACHE_H
#define STRIX_TFHE_EVAL_KEY_CACHE_H

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex> // std::once_flag / std::call_once
#include <string>

#include "common/sync.h"
#include "tfhe/eval_keys.h"

namespace strix {

/** Point-in-time cache observability counters. */
struct CacheStats
{
    uint64_t hits = 0;       //!< lookups served from a built entry
    uint64_t misses = 0;     //!< lookups that ran the builder (keygen)
    uint64_t inserts = 0;    //!< externally-built bundles adopted
    uint64_t evictions = 0;  //!< entries evicted under budget pressure
    uint64_t resident_bytes = 0; //!< bytes of built, resident bundles
    uint64_t entries = 0;    //!< entries resident (built or building)
    uint64_t budget_bytes = 0;   //!< configured budget (0 = unbounded)
};

/** Budgeted LRU cache of EvalKeys bundles (no secret material). */
class EvalKeyCache
{
  public:
    EvalKeyCache() = default;

    EvalKeyCache(const EvalKeyCache &) = delete;
    EvalKeyCache &operator=(const EvalKeyCache &) = delete;

    /**
     * A built entry: the bundle plus an opaque strong reference the
     * builder wants kept alive with it (ContextCache parks the
     * secret ClientKeyset there; it participates in pinning but is
     * never interpreted by the cache).
     */
    struct Built
    {
        std::shared_ptr<const EvalKeys> bundle;
        std::shared_ptr<const void> owner;
    };

    using Builder = std::function<Built()>;

    /**
     * The entry for @p key, running @p build exactly once on first
     * touch (even under concurrent first touch; concurrent callers
     * block on the per-entry once-flag, not the index lock).
     */
    Built getOrBuild(const std::string &key, const Builder &build)
        STRIX_EXCLUDES(index_mutex_);

    /**
     * Adopt an externally-built bundle (typically deserialized off
     * the wire) under @p params_key. Idempotent: if the key is
     * already resident the *existing* bundle is returned (a hit) and
     * @p bundle is dropped -- a tenant re-registering does not
     * duplicate key memory. Keys are namespaced apart from
     * getOrBuild keys. @p bundle must be non-null.
     */
    std::shared_ptr<const EvalKeys>
    getOrInsert(const std::string &params_key,
                std::shared_ptr<const EvalKeys> bundle)
        STRIX_EXCLUDES(index_mutex_);

    /**
     * The bundle previously adopted under @p params_key, or nullptr
     * if never inserted or evicted under budget pressure (treat as
     * "tenant must re-register"). A hit stamps LRU recency.
     */
    std::shared_ptr<const EvalKeys>
    lookup(const std::string &params_key)
        STRIX_EXCLUDES(index_mutex_);

    /**
     * Cap the resident bytes of built bundles
     * (EvalKeys::residentBytes accounting); 0 restores the unbounded
     * default. Applies immediately. Best-effort under pinning: an
     * entry whose bundle or owner is still externally referenced is
     * never evicted, so the cache can stay over budget rather than
     * invalidating live tenants.
     */
    void setBudgetBytes(uint64_t budget) STRIX_EXCLUDES(index_mutex_);

    /** Current counters. */
    CacheStats stats() const STRIX_EXCLUDES(index_mutex_);

    /** Entries resident (built or being built). */
    size_t size() const STRIX_EXCLUDES(index_mutex_);

    /** Builder invocations so far (misses). */
    uint64_t buildCount() const { return builds_.load(); }

    /**
     * Drop every cached entry. Outstanding shared_ptrs stay valid;
     * later lookups rebuild. For tests and memory-pressure hooks.
     */
    void clear() STRIX_EXCLUDES(index_mutex_);

  private:
    /**
     * One cache slot. The once-flag serializes building per entry;
     * `bundle`/`owner` are written exactly once under it and are safe
     * to read without the index lock afterwards (call_once publishes
     * for threads that pass through it; the eviction scan, which does
     * not, synchronizes through `built` instead: store-release after
     * the bundle write, load-acquire before reading it). `last_used`
     * and `bytes` are atomics because the hit path stamps recency
     * under only a reader lock.
     */
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const EvalKeys> bundle;
        std::shared_ptr<const void> owner;
        /**
         * bundle.use_count() when nothing external holds it: 1 for
         * inserted entries, 2 when an owner also references it
         * (ContextCache's keyset holds its own evalKeys pointer).
         */
        uint32_t pin_baseline = 1;
        std::atomic<bool> built{false};
        std::atomic<uint64_t> last_used{0};
        std::atomic<uint64_t> bytes{0};
    };

    std::shared_ptr<Entry> entryFor(const std::string &key)
        STRIX_EXCLUDES(index_mutex_);

    void stampRecency(Entry &e);

    /**
     * Post-build accounting: charge the freshly built @p entry's
     * resident bytes (re-checking it still occupies @p key -- a
     * concurrent clear() may have dropped it, leaving an orphan the
     * caller still holds) and evict down to budget.
     */
    void accountAndEvict(const std::string &key,
                         const std::shared_ptr<Entry> &entry)
        STRIX_EXCLUDES(index_mutex_);

    /**
     * Evict LRU unpinned built entries (never @p exclude, the entry
     * the current caller is about to return) until resident bytes
     * fit the budget or no candidate remains.
     */
    void evictIfOver(const Entry *exclude)
        STRIX_REQUIRES(index_mutex_);

    mutable SharedMutex index_mutex_;
    std::map<std::string, std::shared_ptr<Entry>> entries_
        STRIX_GUARDED_BY(index_mutex_);
    uint64_t budget_bytes_ STRIX_GUARDED_BY(index_mutex_) = 0;
    uint64_t resident_bytes_ STRIX_GUARDED_BY(index_mutex_) = 0;
    std::atomic<uint64_t> builds_{0};
    std::atomic<uint64_t> inserts_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> tick_{0}; //!< global LRU recency clock
};

} // namespace strix

#endif // STRIX_TFHE_EVAL_KEY_CACHE_H
