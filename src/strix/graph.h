/**
 * @file
 * Workload computational graph (Sec. VI-B): the simulator "converts
 * the input workload as a computational graph with nodes, where each
 * node mainly represents either bootstrapping or keyswitching or a
 * combination of both". We group nodes into dependency layers; all
 * PBS inside a layer are independent (batchable), layers execute
 * sequentially.
 */

#ifndef STRIX_STRIX_GRAPH_H
#define STRIX_STRIX_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

namespace strix {

/** One dependency layer of a workload. */
struct GraphLayer
{
    std::string name;     //!< e.g. "conv1-relu"
    uint64_t pbs_count;   //!< independent PBS (+KS) nodes in the layer
    uint64_t linear_macs; //!< plaintext-ciphertext MACs feeding them
};

/** Layered PBS/KS workload graph. */
class WorkloadGraph
{
  public:
    WorkloadGraph() = default;
    explicit WorkloadGraph(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void addLayer(GraphLayer layer) { layers_.push_back(std::move(layer)); }

    const std::vector<GraphLayer> &layers() const { return layers_; }

    /** Total PBS node count. */
    uint64_t totalPbs() const
    {
        uint64_t total = 0;
        for (const auto &l : layers_)
            total += l.pbs_count;
        return total;
    }

    /** Total linear MACs. */
    uint64_t totalLinearMacs() const
    {
        uint64_t total = 0;
        for (const auto &l : layers_)
            total += l.linear_macs;
        return total;
    }

  private:
    std::string name_;
    std::vector<GraphLayer> layers_;
};

} // namespace strix

#endif // STRIX_STRIX_GRAPH_H
