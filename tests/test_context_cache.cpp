/**
 * @file
 * ContextCache: keygen amortization and the concurrent first-touch
 * contract (N threads x one key -> exactly one keygen,
 * pointer-identical bundles), plus the split-API invariants the cache
 * rests on -- ServerContext null-keys panic and end-to-end evaluation
 * under a cached bundle. Runs under the STRIX_TSAN CI leg (label
 * `unit`), which is what makes the double-checked index trustworthy.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "tfhe/context_cache.h"
#include "tfhe/server_context.h"

namespace strix {
namespace {

using namespace strix::test;

TEST(ContextCache, MissThenHitReturnsPointerIdenticalBundle)
{
    ContextCache cache;
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.keygenCount(), 0u);

    auto first = cache.getOrCreate(fastParams(), kSeedContextCache);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.keygenCount(), 1u);

    auto second = cache.getOrCreate(fastParams(), kSeedContextCache);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(cache.keygenCount(), 1u) << "hit must not re-run keygen";
}

TEST(ContextCache, KeysetAndEvalKeysViewsShareOneGeneration)
{
    ContextCache cache;
    auto keyset =
        cache.getOrCreateKeyset(fastParams(), kSeedContextCache);
    auto keys = cache.getOrCreate(fastParams(), kSeedContextCache);
    EXPECT_EQ(keys.get(), keyset->evalKeys().get());
    EXPECT_EQ(cache.keygenCount(), 1u);
}

TEST(ContextCache, DifferentSeedsAndParamsGetDistinctBundles)
{
    ContextCache cache;
    auto a = cache.getOrCreate(fastParams(), 1);
    auto b = cache.getOrCreate(fastParams(), 2);
    auto c = cache.getOrCreate(midParams(), 1);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(b.get(), c.get());
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.keygenCount(), 3u);
}

TEST(ContextCache, ClearKeepsOutstandingBundlesValid)
{
    ContextCache cache;
    auto keys = cache.getOrCreate(fastParams(), kSeedContextCache);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    // The dropped entry must stay usable through our reference.
    ServerContext server(keys);
    EXPECT_EQ(server.params().N, fastParams().N);
    // And a later lookup regenerates (a distinct allocation).
    auto again = cache.getOrCreate(fastParams(), kSeedContextCache);
    EXPECT_NE(again.get(), keys.get());
    EXPECT_EQ(cache.keygenCount(), 2u);
}

TEST(ContextCache, GlobalIsOneInstance)
{
    EXPECT_EQ(&ContextCache::global(), &ContextCache::global());
}

/**
 * The ISSUE's first-touch stress: many threads race getOrCreate on
 * the same previously-unseen key. Exactly one keygen may run, and
 * every thread must get the same published bundle. Distinct seeds
 * raced concurrently must still come out distinct.
 */
TEST(ContextCache, ConcurrentFirstTouchRunsKeygenExactlyOnce)
{
    constexpr int kThreads = 8;
    ContextCache cache;
    std::atomic<int> ready{0};
    std::vector<std::shared_ptr<const EvalKeys>> seen(kThreads);
    std::vector<std::shared_ptr<const EvalKeys>> seen_other(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {
            } // start barrier: maximize first-touch overlap
            seen[t] = cache.getOrCreate(fastParams(), 42);
            seen_other[t] =
                cache.getOrCreate(fastParams(), 43 + uint64_t(t) % 2);
        });
    }
    for (auto &t : threads)
        t.join();

    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[t].get(), seen[0].get()) << "thread " << t;
    EXPECT_NE(seen_other[0].get(), seen[0].get());
    // seed 42 + seeds {43, 44}: exactly three cold generations.
    EXPECT_EQ(cache.keygenCount(), 3u);
    EXPECT_EQ(cache.size(), 3u);
}

/** A cached bundle must actually evaluate: end-to-end PBS round. */
TEST(ContextCache, CachedBundleEvaluatesEndToEnd)
{
    auto keyset = ContextCache::global().getOrCreateKeyset(
        fastParams(), kSeedContextCache);
    ServerContext server(
        ContextCache::global().getOrCreate(fastParams(),
                                           kSeedContextCache));
    const uint64_t space = 8;
    for (int64_t m = 0; m < 4; ++m) {
        auto ct = keyset->encryptInt(m, space);
        auto out = server.applyLut(
            ct, space, [](int64_t v) { return (v + 1) % 8; });
        EXPECT_EQ(keyset->decryptInt(out, space), (m + 1) % 8);
    }
}

TEST(ContextCacheDeathTest, ServerContextRejectsNullBundle)
{
    EXPECT_DEATH(ServerContext(nullptr),
                 "ServerContext: null EvalKeys bundle");
}

} // namespace
} // namespace strix
