/**
 * @file
 * Top-level Strix accelerator model: TvLP HSCs behind a multicast NoC
 * and a shared global scratchpad, scheduled in epochs with two-level
 * (device + core) ciphertext batching (Sec. IV).
 */

#ifndef STRIX_STRIX_ACCELERATOR_H
#define STRIX_STRIX_ACCELERATOR_H

#include "strix/graph.h"
#include "strix/hsc.h"

namespace strix {

/** Microbenchmark result for one parameter set (Table V rows). */
struct PbsPerf
{
    double latency_ms;       //!< single-PBS latency incl. keyswitch
    double throughput_pbs_s; //!< sustained PBS throughput
    double required_bw_gbps; //!< sustained external bandwidth demand
    bool memory_bound;       //!< bsk stream limits the iteration rate
    uint32_t core_batch;     //!< core-level batch size m
    uint32_t device_batch;   //!< total epoch batch = TvLP * m
};

/** Execution-time result for a batch of LWEs or a workload graph. */
struct BatchPerf
{
    double seconds;
    uint64_t epochs; //!< blind-rotation fragments executed
};

/**
 * Analytic/cycle-level model of the full chip. All cycle math comes
 * from UnitTiming and MemorySystem; this class adds the epoch
 * scheduler and fragmentation accounting.
 */
class StrixAccelerator
{
  public:
    explicit StrixAccelerator(StrixConfig cfg = StrixConfig::paperDefault())
        : cfg_(cfg)
    {
    }

    const StrixConfig &config() const { return cfg_; }

    /** Table V microbenchmark: latency and throughput of PBS. */
    PbsPerf evaluatePbs(const TfheParams &p) const;

    /**
     * Execute @p num_lwes PBS(+KS) operations, accounting for
     * blind-rotation fragmentation when the count exceeds the epoch
     * batch (Eqs. (1)-(2) generalized to two-level batching).
     */
    BatchPerf runBatch(const TfheParams &p, uint64_t num_lwes) const;

    /**
     * Execute a layered workload graph; layers run sequentially,
     * keyswitching of one epoch hides behind the next epoch's blind
     * rotation, and the final keyswitch of each layer is exposed.
     */
    BatchPerf runGraph(const TfheParams &p, const WorkloadGraph &g) const;

    /** Construct the per-core model for trace/utilization queries. */
    Hsc makeCore(const TfheParams &p) const { return Hsc(cfg_, p); }

  private:
    StrixConfig cfg_;
};

} // namespace strix

#endif // STRIX_STRIX_ACCELERATOR_H
