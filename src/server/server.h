/**
 * @file
 * StrixServer: the multi-tenant encrypted-compute serving daemon.
 *
 * One poll(2) event loop owns every connection: it accepts, reads
 * MSG1 frames through the incremental FrameDecoder, dispatches
 * requests, and writes replies through per-connection BufferedSenders
 * (MTU + flush-delay coalescing). PBS work never runs on the loop
 * thread: Bootstrap/ApplyLut requests are submitted to the shared
 * BatchExecutor -- so requests from *different tenants and different
 * connections* coalesce into full-width sweeps whenever their key
 * bundles match -- and EvalCircuit requests run plan-driven on a
 * dedicated circuit worker whose per-level PBS stream feeds the same
 * executor. The loop polls outstanding futures and ships each reply
 * when its work completes.
 *
 * Tenants register by uploading an EVK1/EVK2 EvalKeys bundle, which
 * lands in a bytes-budgeted EvalKeyCache: under key-memory pressure
 * the least-recently-used idle tenant is evicted and must re-register
 * (requests answer UnknownTenant, a structured error, never a crash).
 * The server never holds a strong bundle reference outside the cache,
 * the executor's shards (released when idle before each eviction
 * attempt), and in-flight work -- so eviction of idle tenants is
 * actually possible, and active tenants are pinned resident.
 *
 * Admission control bounds work the server will buffer: a per-tenant
 * in-flight cap and a global queue depth; past either, requests get a
 * structured Busy reject immediately (clients back off and retry).
 * Each request may carry a relative deadline; work that completes too
 * late is answered with DeadlineExceeded instead of a stale result.
 *
 * Trust model: this layer never sees a secret key -- it includes
 * neither tfhe/client_keyset.h nor the ContextCache facade that owns
 * keysets (both lint-enforced). Everything it holds and computes on
 * is public evaluation material and ciphertexts.
 *
 * Threading: all connection and admission state belongs to the loop
 * thread exclusively (no locks); cross-thread surface is start/stop,
 * the atomic counters behind stats(), and the internally-synchronized
 * EvalKeyCache / BatchExecutor.
 */

#ifndef STRIX_SERVER_SERVER_H
#define STRIX_SERVER_SERVER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/waitclock.h"
#include "net/buffered.h"
#include "net/socket.h"
#include "net/wire.h"
#include "tfhe/batch_executor.h"
#include "tfhe/eval_key_cache.h"

namespace strix {

/** Multi-tenant MSG1 serving daemon over loopback TCP. */
class StrixServer
{
  public:
    struct Options
    {
        /** Listen port (0 = kernel-assigned; see port()). */
        uint16_t port = 0;

        /**
         * Admission: max requests one tenant may have in flight;
         * the next gets a Busy reject.
         */
        size_t max_inflight_per_tenant = 32;

        /** Admission: max requests in flight across all tenants. */
        size_t max_queue_depth = 256;

        /**
         * Per-request payload cap for compute requests (Bootstrap /
         * ApplyLut / EvalCircuit); RegisterTenant is governed by
         * `limits` alone since key bundles are legitimately tens of
         * MiB. Over the cap answers PayloadTooLarge.
         */
        uint64_t max_request_payload_bytes = 64ull << 20;

        /** Cross-tenant PBS batching policy (shared BatchExecutor). */
        BatchExecutor::Options exec;

        /** Response coalescing policy (per-connection sender). */
        BufferedSender::Options send;

        /**
         * Key-memory budget handed to the EvalKeyCache
         * (0 = unbounded).
         */
        uint64_t cache_budget_bytes = 0;

        /** Outer-framing caps (absolute payload-length bound). */
        FrameLimits limits;
    };

    /** Monotonic serving counters (atomics; readable any time). */
    struct Stats
    {
        uint64_t conns_accepted = 0;
        uint64_t requests = 0;        //!< well-framed messages seen
        uint64_t ok_replies = 0;
        uint64_t error_replies = 0;   //!< all structured errors
        uint64_t busy_rejects = 0;    //!< admission-control rejects
        uint64_t deadline_misses = 0; //!< completed past deadline
        uint64_t protocol_errors = 0; //!< malformed outer framing
    };

    /**
     * @p clock defaults to a fresh SteadyWaitableClock shared with
     * the executor; tests may pass a manual clock to drive batching
     * deadlines deterministically (the event loop itself still
     * paces on real poll timeouts).
     */
    explicit StrixServer(Options opts,
                         std::shared_ptr<WaitableClock> clock = nullptr);

    /** Default Options, real clock. */
    StrixServer();

    /** stop()s if still running. */
    ~StrixServer();

    StrixServer(const StrixServer &) = delete;
    StrixServer &operator=(const StrixServer &) = delete;

    /**
     * Bind the listener and start the event loop + circuit worker.
     * False if the port cannot be bound. Call at most once.
     */
    bool start();

    /**
     * Drain and shut down: stop reading new requests, fulfil every
     * pending response, flush the senders, then stop the executor
     * and join all threads. Idempotent.
     */
    void stop();

    /** Bound port (valid after start()). */
    uint16_t port() const { return port_; }

    bool running() const { return running_.load(); }

    Stats stats() const;

    /** Key-cache counters (tenant bundles). */
    CacheStats cacheStats() const { return cache_.stats(); }

    /** Shared PBS executor counters. */
    BatchExecutor::Stats executorStats() const
    {
        return executor_->stats();
    }

    const Options &options() const { return opts_; }

  private:
    /** Per-connection state; owned by the loop thread. */
    struct ConnState
    {
        uint64_t id = 0;
        TcpConn conn;
        FrameDecoder dec;
        BufferedSender out;
        /** Flush what is queued, then close (post-framing-error). */
        bool closing = false;
    };

    /** One admitted request waiting on its compute future. */
    struct Pending
    {
        uint64_t conn_id = 0;
        uint64_t tenant = 0;
        uint64_t request_id = 0;
        uint64_t deadline_abs_us = 0; //!< 0 = no deadline
        bool is_many = false;         //!< which future is live
        std::future<LweCiphertext> single;
        std::future<std::vector<LweCiphertext>> many;
    };

    void run();
    void circuitWorker();

    void acceptPending(uint64_t now_us);
    /** Read + decode + dispatch; false when the conn must be dropped. */
    bool serviceReadable(ConnState &c, uint64_t now_us);
    void handleMessage(ConnState &c, WireMessage &&m, uint64_t now_us);
    void handleRegister(ConnState &c, const WireMessage &m,
                        uint64_t now_us);
    void handleCompute(ConnState &c, WireMessage &&m, uint64_t now_us);
    /** Scan pendings; ship replies for completed work. */
    void completeFinished(uint64_t now_us);
    void flushSenders(uint64_t now_us);

    void sendOk(ConnState &c, const WireMessage &m,
                std::vector<uint8_t> payload, uint64_t now_us);
    void sendErr(ConnState &c, uint64_t tenant, uint64_t request_id,
                 WireError code, const std::string &text,
                 uint64_t now_us);

    /** Poll timeout folding sender deadlines and pending futures. */
    int pollTimeoutMs(uint64_t now_us) const;

    static std::string tenantKey(uint64_t tenant);

    Options opts_;
    std::shared_ptr<WaitableClock> clock_;
    std::shared_ptr<BatchExecutor> executor_;
    EvalKeyCache cache_;

    TcpListener listener_;
    uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    std::thread loop_;

    // -- loop-thread-owned state ------------------------------------
    uint64_t next_conn_id_ = 1;
    std::map<uint64_t, ConnState> conns_;
    std::vector<uint8_t> rbuf_; //!< loop-thread read scratch
    std::list<Pending> pendings_;
    std::map<uint64_t, size_t> inflight_; //!< per-tenant admitted

    // -- circuit worker ---------------------------------------------
    std::thread circuit_thread_;
    Mutex circuit_m_;
    CondVar circuit_cv_;
    std::deque<std::function<void()>> circuit_q_
        STRIX_GUARDED_BY(circuit_m_);
    bool circuit_stop_ STRIX_GUARDED_BY(circuit_m_) = false;

    // -- counters ----------------------------------------------------
    std::atomic<uint64_t> conns_accepted_{0};
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> ok_replies_{0};
    std::atomic<uint64_t> error_replies_{0};
    std::atomic<uint64_t> busy_rejects_{0};
    std::atomic<uint64_t> deadline_misses_{0};
    std::atomic<uint64_t> protocol_errors_{0};
};

} // namespace strix

#endif // STRIX_SERVER_SERVER_H
