/**
 * @file
 * Parameter set definitions.
 */

#include "tfhe/params.h"

#include "common/logging.h"

// Thread-safety note: the function-local statics below are `const`
// and initialized under C++11 magic-statics (the compiler serializes
// first touch), then never written again -- safe to read from any
// thread. They and the FFT plan caches (poly/complex_fft.cpp,
// poly/negacyclic_fft.cpp, synchronized + lock-free reads) are the
// only process-wide state in src/poly + src/tfhe; everything else
// reachable from ServerContext::bootstrap() const works on per-call
// or per-scratch storage.

namespace strix {

uint64_t
TfheParams::bskBytes() const
{
    // n GGSW ciphertexts; each is (k+1)*l_bsk GLWE rows of (k+1)
    // polynomials of N Torus32 coefficients.
    return uint64_t(n) * (k + 1) * l_bsk * (k + 1) * N * sizeof(uint32_t);
}

uint64_t
TfheParams::kskBytes() const
{
    // k*N * l_ksk LWE ciphertexts of dimension n (+ body).
    return uint64_t(k) * N * l_ksk * (n + 1) * sizeof(uint32_t);
}

const TfheParams &
paramsSetI()
{
    // TFHE-lib default 110-bit gate-bootstrapping parameters:
    // bk: Bg = 2^10, l = 2, stdev ~= 9.0e-9 (2^-26.7)
    // ks: base 2^2, t = 8, stdev ~= 3.05e-5 (2^-15)
    static const TfheParams p{
        "I", 500, 1024, 1, 2, 10, 8, 2, 3.05e-5, 9.0e-9, 110};
    return p;
}

const TfheParams &
paramsSetII()
{
    // Concrete 128-bit: n = 630, Bg = 2^7, l = 3; keyswitch with
    // 4 levels of base 2^4 (YKP's configuration).
    static const TfheParams p{
        "II", 630, 1024, 1, 3, 7, 4, 4, 3.05e-5, 9.0e-9, 128};
    return p;
}

const TfheParams &
paramsSetIII()
{
    static const TfheParams p{
        "III", 592, 2048, 1, 3, 8, 4, 4, 2.0e-5, 4.0e-10, 128};
    return p;
}

const TfheParams &
paramsSetIV()
{
    // High-precision set: deep PBS gadget, shallow wide keyswitch.
    // N = 16384 implies a 64-bit torus implementation (the paper's
    // FFTU datapath is 64-bit); the noise levels below are the
    // 64-bit-torus values and are used by the noise model and the
    // simulator only -- the 32-bit software path never runs set IV.
    static const TfheParams p{
        "IV", 991, 16384, 1, 2, 12, 2, 8, 1.0e-8, 2.0e-14, 128};
    return p;
}

const std::vector<TfheParams> &
paperParamSets()
{
    static const std::vector<TfheParams> sets{
        paramsSetI(), paramsSetII(), paramsSetIII(), paramsSetIV()};
    return sets;
}

TfheParams
testParams(uint32_t n, uint32_t big_n, uint32_t k, uint32_t l,
           uint32_t bg_bits, double noise)
{
    panicIfNot((big_n & (big_n - 1)) == 0, "test N must be a power of two");
    TfheParams p;
    p.name = "test";
    p.n = n;
    p.N = big_n;
    p.k = k;
    p.l_bsk = l;
    p.bg_bits = bg_bits;
    p.l_ksk = 8;
    p.ks_base_bits = 2;
    p.lwe_noise = noise;
    p.glwe_noise = noise;
    p.lambda = 0; // insecure, test-only
    return p;
}

const TfheParams &
deepNnParams(uint32_t big_n)
{
    // Zama Deep-NN (Chillotti et al., CSCML'21) uses three parameter
    // groups keyed by polynomial degree; the LWE dimension and levels
    // follow that reference.
    static const TfheParams p1024{
        "NN-1024", 750, 1024, 1, 2, 10, 7, 3, 2.4e-5, 7.2e-9, 128};
    static const TfheParams p2048{
        "NN-2048", 750, 2048, 1, 2, 10, 7, 3, 2.4e-5, 3.0e-10, 128};
    static const TfheParams p4096{
        "NN-4096", 750, 4096, 1, 2, 10, 7, 3, 2.4e-5, 1.0e-11, 128};
    switch (big_n) {
      case 1024: return p1024;
      case 2048: return p2048;
      case 4096: return p4096;
      default: fatal("deepNnParams: N must be 1024/2048/4096");
    }
}

} // namespace strix
