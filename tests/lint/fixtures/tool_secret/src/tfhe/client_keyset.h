// Fixture stand-in for the secret-key header.
#ifndef FIXTURE_TFHE_CLIENT_KEYSET_H
#define FIXTURE_TFHE_CLIENT_KEYSET_H
struct ClientKeyset
{
};
#endif
