/**
 * @file
 * Deterministic pseudo-random generation for the TFHE substrate.
 *
 * A real deployment would use a CSPRNG; for a reproducible research
 * artifact we use xoshiro256** seeded explicitly, which makes every
 * test and benchmark bit-reproducible. The Gaussian sampler implements
 * the rounded continuous Gaussian over the discretized torus used by
 * TFHE error sampling.
 */

#ifndef STRIX_COMMON_RANDOM_H
#define STRIX_COMMON_RANDOM_H

#include <cstdint>

#include "common/types.h"

namespace strix {

/**
 * xoshiro256** 1.0 generator. Small, fast, and good enough statistical
 * quality for simulation workloads.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed expanded with splitmix64. */
    explicit Rng(uint64_t seed = 0x5713A9C0FFEEULL);

    /**
     * Deterministic substream @p stream_id of this generator's *seed*
     * (one splitmix64 step over seed XOR stream_id). Forking depends
     * only on the construction seed, never on how far this generator
     * has advanced, so fork(i) is reproducible and order-independent:
     * any party holding the seed can expand stream i without drawing
     * streams 0..i-1 first, which is what lets seeded-key mask
     * expansion run per-row and in parallel. Distinct stream ids give
     * statistically independent streams, and every child differs from
     * its parent (fork(0) reseeds through splitmix64, it does not
     * clone).
     */
    Rng fork(uint64_t stream_id) const;

    /** Next raw 64-bit value. */
    uint64_t next64();

    /** Next raw 32-bit value. */
    uint32_t next32() { return static_cast<uint32_t>(next64() >> 32); }

    /** Uniform torus element. */
    Torus32 uniformTorus32() { return next32(); }

    /** Uniform integer in [0, bound). Rejection-free via 128-bit mul. */
    uint64_t uniformBelow(uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Uniform bit. */
    int uniformBit() { return static_cast<int>(next64() >> 63); }

    /**
     * Standard normal sample (Box-Muller).
     * Two values are generated per transform; one is cached.
     */
    double gaussianDouble();

    /**
     * TFHE torus error sample: continuous Gaussian with standard
     * deviation @p stddev (as a fraction of the torus), rounded to
     * the Torus32 grid. stddev == 0 yields exactly 0, which the test
     * suite uses for exact-algebra properties.
     */
    Torus32 gaussianTorus32(double stddev);

  private:
    uint64_t seed_; //!< construction seed, kept for fork()
    uint64_t s_[4];
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

} // namespace strix

#endif // STRIX_COMMON_RANDOM_H
