/**
 * @file
 * ContextCache: a keygen-amortizing service layer over the split API.
 *
 * Key generation dominates setup cost in every example and benchmark
 * (seconds at the paper parameter sets, vs microseconds for the work
 * a short session actually does). Since this library's keygen is
 * deterministic in (parameter set, seed), repeated sessions over the
 * same pair can share one keyset: getOrCreate() returns a cached
 * `shared_ptr<const EvalKeys>` and getOrCreateKeyset() the full
 * ClientKeyset it came from, generating each distinct (params, seed)
 * bundle exactly once no matter how many threads ask concurrently.
 *
 * Memory accounting: a multi-tenant server holding one bundle per
 * resident tenant is bounded by key memory, not compute (a set-I
 * bundle is ~48 MiB resident; see EvalKeys::residentBytes). Under a
 * setBudgetBytes() budget the cache runs as an LRU: when built
 * entries exceed the budget, the least-recently-used *unpinned*
 * bundles are evicted until it fits. An entry is pinned while any
 * external shared_ptr to its keyset or EvalKeys bundle is alive --
 * eviction never invalidates outstanding references (shared_ptr
 * semantics guarantee validity; the pin check keeps actively-used
 * tenants resident so they are not silently regenerated). CacheStats
 * exposes hits/misses/evictions/resident bytes for observability.
 *
 * Trust model: the cache holds ClientKeysets -- secret keys -- so it
 * lives on the key-owning side (a client runtime, a test/bench
 * harness, a trusted session broker). An evaluation-only server never
 * needs it: servers receive EvalKeys bundles, shared in-process or
 * deserialized off the wire.
 *
 * Synchronization follows the PR 2 plan-cache discipline: lookups of
 * an already-built entry take a shared (reader) lock on the index --
 * never the keygen path -- and first touch is double-checked: the
 * entry slot is claimed under the exclusive lock, but the keygen
 * itself runs under a per-entry once-flag *outside* the index lock,
 * so building set-IV keys for one tenant never blocks cache hits for
 * another. LRU recency is tracked with per-entry atomic ticks (a hit
 * holds only the reader lock, so it cannot reorder a list); eviction
 * scans run under the writer lock.
 */

#ifndef STRIX_TFHE_CONTEXT_CACHE_H
#define STRIX_TFHE_CONTEXT_CACHE_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex> // std::once_flag / std::call_once
#include <string>

#include "common/sync.h"
#include "tfhe/client_keyset.h"

namespace strix {

/** Point-in-time ContextCache observability counters. */
struct CacheStats
{
    uint64_t hits = 0;       //!< lookups served from a built entry
    uint64_t misses = 0;     //!< lookups that ran keygen
    uint64_t evictions = 0;  //!< entries evicted under budget pressure
    uint64_t resident_bytes = 0; //!< bytes of built, resident bundles
    uint64_t entries = 0;    //!< entries resident (built or building)
    uint64_t budget_bytes = 0;   //!< configured budget (0 = unbounded)
};

/** Process-wide cache of deterministic (params, seed) keysets. */
class ContextCache
{
  public:
    ContextCache() = default;

    ContextCache(const ContextCache &) = delete;
    ContextCache &operator=(const ContextCache &) = delete;

    /** The process-wide instance the examples and benches share. */
    static ContextCache &global();

    /**
     * The cached evaluation-key bundle for (params, seed), generating
     * it (exactly once, even under concurrent first touch) on a miss.
     * All callers get pointer-identical bundles, so any number of
     * ServerContexts built from them share one BSK/KSK copy.
     */
    std::shared_ptr<const EvalKeys> getOrCreate(const TfheParams &params,
                                                uint64_t seed);

    /**
     * The cached full keyset for (params, seed) -- secret keys
     * included, for callers that also encrypt/decrypt. Its
     * ->evalKeys() is the same pointer getOrCreate() returns.
     */
    std::shared_ptr<const ClientKeyset>
    getOrCreateKeyset(const TfheParams &params, uint64_t seed);

    /**
     * Cap the resident bytes of built bundles (EvalKeys::residentBytes
     * accounting); 0 restores the unbounded default. Applies
     * immediately: if built entries already exceed the new budget,
     * LRU unpinned ones are evicted now. The budget is best-effort
     * under pinning -- if every entry is pinned, the cache stays over
     * budget rather than invalidating live tenants.
     */
    void setBudgetBytes(uint64_t budget) STRIX_EXCLUDES(index_mutex_);

    /** Current counters (hits/misses/evictions/resident bytes). */
    CacheStats stats() const STRIX_EXCLUDES(index_mutex_);

    /** Entries resident (built or being built). */
    size_t size() const;

    /** Cold key generations performed so far (misses). */
    uint64_t keygenCount() const { return keygens_.load(); }

    /**
     * Drop every cached entry. Outstanding shared_ptrs stay valid;
     * later lookups regenerate. Intended for tests and memory-
     * pressure hooks, not steady-state serving.
     */
    void clear();

  private:
    /**
     * One cache slot. The once-flag serializes keygen per entry;
     * `keyset` is written exactly once under it and is safe to read
     * without the index lock afterwards (call_once publishes for
     * threads that pass through it; the eviction scan, which does
     * not, synchronizes through `built` instead: store-release after
     * the keyset write, load-acquire before reading it). `last_used`
     * and `bytes` are atomics because the hit path stamps recency
     * under only a reader lock.
     */
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const ClientKeyset> keyset;
        std::atomic<bool> built{false};
        std::atomic<uint64_t> last_used{0};
        std::atomic<uint64_t> bytes{0};
    };

    std::shared_ptr<Entry> entryFor(const std::string &key)
        STRIX_EXCLUDES(index_mutex_);

    /**
     * Post-keygen accounting: charge the freshly built @p entry's
     * resident bytes (re-checking it still occupies @p key -- a
     * concurrent clear() may have dropped it, leaving an orphan the
     * caller still holds) and evict down to budget.
     */
    void accountAndEvict(const std::string &key,
                         const std::shared_ptr<Entry> &entry)
        STRIX_EXCLUDES(index_mutex_);

    /**
     * Evict LRU unpinned built entries (never @p exclude, the entry
     * the current caller is about to return) until resident bytes fit
     * the budget or no candidate remains.
     */
    void evictIfOver(const Entry *exclude)
        STRIX_REQUIRES(index_mutex_);

    mutable SharedMutex index_mutex_;
    std::map<std::string, std::shared_ptr<Entry>> entries_
        STRIX_GUARDED_BY(index_mutex_);
    uint64_t budget_bytes_ STRIX_GUARDED_BY(index_mutex_) = 0;
    uint64_t resident_bytes_ STRIX_GUARDED_BY(index_mutex_) = 0;
    std::atomic<uint64_t> keygens_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> tick_{0}; //!< global LRU recency clock
};

} // namespace strix

#endif // STRIX_TFHE_CONTEXT_CACHE_H
