/**
 * @file
 * Area/power model tests against the paper's Table III and Table VI.
 */

#include <gtest/gtest.h>

#include "strix/area_model.h"

namespace strix {
namespace {

::testing::AssertionResult
within(double got, double want, double tol)
{
    double rel = std::abs(got / want - 1.0);
    if (rel <= tol)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "got " << got << ", want " << want << " (rel " << rel
           << ")";
}

TEST(AreaModel, TableIIIComponentAreas)
{
    ChipBreakdown b = computeChipBreakdown(StrixConfig::paperDefault());
    EXPECT_TRUE(within(b.local_scratchpad.area_mm2, 0.92, 0.02));
    EXPECT_TRUE(within(b.rotator.area_mm2, 0.02, 0.02));
    EXPECT_TRUE(within(b.decomposer.area_mm2, 0.28, 0.02));
    EXPECT_TRUE(within(b.ifftu.area_mm2, 7.23, 0.03));
    EXPECT_TRUE(within(b.vma.area_mm2, 0.63, 0.02));
    EXPECT_TRUE(within(b.accumulator.area_mm2, 0.32, 0.02));
    EXPECT_TRUE(within(b.core.area_mm2, 9.38, 0.03));
    EXPECT_TRUE(within(b.all_cores.area_mm2, 75.03, 0.03));
    EXPECT_TRUE(within(b.global_scratchpad.area_mm2, 51.40, 0.01));
    EXPECT_TRUE(within(b.hbm_phy.area_mm2, 14.90, 0.01));
    EXPECT_TRUE(within(b.total.area_mm2, 141.37, 0.03));
}

TEST(AreaModel, TableIIIPower)
{
    ChipBreakdown b = computeChipBreakdown(StrixConfig::paperDefault());
    EXPECT_TRUE(within(b.core.power_w, 6.21, 0.05));
    EXPECT_TRUE(within(b.total.power_w, 77.14, 0.05));
}

TEST(AreaModel, TableVIFoldingAblation)
{
    ChipBreakdown fold = computeChipBreakdown(StrixConfig::paperDefault());
    ChipBreakdown nofold =
        computeChipBreakdown(StrixConfig::paperNoFolding());

    // Paper: FFT unit 3.13 vs 1.81 mm^2 (1.73x), core 13.87 vs 9.38
    // (1.48x). The model derives these from the same constants.
    EXPECT_TRUE(within(fold.fft_instance_mm2, 1.81, 0.03));
    EXPECT_TRUE(within(nofold.fft_instance_mm2, 3.13, 0.03));
    EXPECT_TRUE(
        within(nofold.fft_instance_mm2 / fold.fft_instance_mm2, 1.73,
               0.05));
    EXPECT_TRUE(within(nofold.core.area_mm2, 13.87, 0.05));
    EXPECT_TRUE(
        within(nofold.core.area_mm2 / fold.core.area_mm2, 1.48, 0.05));
}

TEST(AreaModel, FftAreaScalesWithLanesAndPoints)
{
    StrixConfig wide = StrixConfig::paperDefault();
    wide.clp = 8;
    ChipBreakdown base = computeChipBreakdown(StrixConfig::paperDefault());
    ChipBreakdown w = computeChipBreakdown(wide);
    EXPECT_GT(w.fft_instance_mm2, base.fft_instance_mm2);

    // Smaller max ring dimension shrinks the delay-line SRAM.
    ChipBreakdown small =
        computeChipBreakdown(StrixConfig::paperDefault(), 2048);
    EXPECT_LT(small.fft_instance_mm2, base.fft_instance_mm2);
}

TEST(AreaModel, CoreCountScalesCoresOnly)
{
    StrixConfig half = StrixConfig::paperDefault();
    half.tvlp = 4;
    ChipBreakdown b8 = computeChipBreakdown(StrixConfig::paperDefault());
    ChipBreakdown b4 = computeChipBreakdown(half);
    EXPECT_NEAR(b4.all_cores.area_mm2, b8.all_cores.area_mm2 / 2, 1e-9);
    EXPECT_DOUBLE_EQ(b4.global_scratchpad.area_mm2,
                     b8.global_scratchpad.area_mm2);
    EXPECT_DOUBLE_EQ(b4.hbm_phy.area_mm2, b8.hbm_phy.area_mm2);
}

TEST(AreaModel, OnChipMemoryBudget)
{
    // The paper highlights ~26 MB total on-chip SRAM (21 global +
    // 8 x 0.625 local) vs hundreds of MB for CKKS accelerators.
    StrixConfig cfg = StrixConfig::paperDefault();
    double total_mb =
        cfg.global_scratch_mb + cfg.tvlp * cfg.local_scratch_kb / 1024.0;
    EXPECT_NEAR(total_mb, 26.0, 0.1);
}

} // namespace
} // namespace strix
