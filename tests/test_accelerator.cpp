/**
 * @file
 * Strix accelerator model tests: Table V regression bounds, epoch
 * scheduling, fragmentation behaviour, and trace invariants.
 */

#include <gtest/gtest.h>

#include "strix/accelerator.h"

namespace strix {
namespace {

/** |got/want - 1| <= tol */
::testing::AssertionResult
within(double got, double want, double tol)
{
    double rel = std::abs(got / want - 1.0);
    if (rel <= tol)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "got " << got << ", want " << want << " (rel err " << rel
           << " > " << tol << ")";
}

struct TableVRow
{
    const TfheParams *params;
    double latency_ms;
    double throughput;
};

class TableVRegression : public ::testing::TestWithParam<TableVRow>
{
};

TEST_P(TableVRegression, ReproducesPaperNumbers)
{
    StrixAccelerator strix;
    PbsPerf perf = strix.evaluatePbs(*GetParam().params);
    // Throughput must match the paper to 2%; latency to 20% (the
    // paper does not publish its keyswitch decomposition depths, see
    // EXPERIMENTS.md).
    EXPECT_TRUE(within(perf.throughput_pbs_s, GetParam().throughput,
                       0.02))
        << "set " << GetParam().params->name;
    EXPECT_TRUE(within(perf.latency_ms, GetParam().latency_ms, 0.20))
        << "set " << GetParam().params->name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableVRegression,
    ::testing::Values(TableVRow{&paramsSetI(), 0.16, 74696},
                      TableVRow{&paramsSetII(), 0.23, 39600},
                      TableVRow{&paramsSetIII(), 0.44, 21104},
                      TableVRow{&paramsSetIV(), 3.31, 2368}),
    [](const auto &info) {
        return "Set" + info.param.params->name;
    });

TEST(Accelerator, FoldingAblationMatchesTableVI)
{
    // Table VI: folding improves latency 1.68x and throughput 1.99x.
    StrixAccelerator fold{StrixConfig::paperDefault()};
    StrixAccelerator nofold{StrixConfig::paperNoFolding()};
    PbsPerf f = fold.evaluatePbs(paramsSetI());
    PbsPerf nf = nofold.evaluatePbs(paramsSetI());
    EXPECT_TRUE(within(nf.latency_ms / f.latency_ms, 1.68, 0.10));
    EXPECT_TRUE(within(f.throughput_pbs_s / nf.throughput_pbs_s, 1.99,
                       0.05));
}

TEST(Accelerator, ThroughputScalesWithCores)
{
    StrixConfig one = StrixConfig::paperDefault();
    one.tvlp = 1;
    PbsPerf p1 = StrixAccelerator(one).evaluatePbs(paramsSetI());
    PbsPerf p8 = StrixAccelerator().evaluatePbs(paramsSetI());
    EXPECT_TRUE(within(p8.throughput_pbs_s / p1.throughput_pbs_s, 8.0,
                       0.01));
    // Latency is per-core and unchanged.
    EXPECT_DOUBLE_EQ(p1.latency_ms, p8.latency_ms);
}

TEST(Accelerator, BatchFragmentationStaircase)
{
    // Below one epoch batch the time is flat; one LWE beyond it adds
    // a whole second fragment (the generalized Eq. (1)/(2)).
    StrixAccelerator strix;
    const TfheParams &p = paramsSetI();
    PbsPerf perf = strix.evaluatePbs(p);
    uint64_t batch = perf.device_batch;

    BatchPerf half = strix.runBatch(p, batch / 2);
    BatchPerf full = strix.runBatch(p, batch);
    BatchPerf over = strix.runBatch(p, batch + 1);

    EXPECT_EQ(half.epochs, 1u);
    EXPECT_EQ(full.epochs, 1u);
    EXPECT_EQ(over.epochs, 2u);
    EXPECT_GT(over.seconds, full.seconds);
    // Equal-epoch runs differ only via per-core batch rounding.
    EXPECT_NEAR(full.seconds / half.seconds, 2.0, 0.35);
}

TEST(Accelerator, RunBatchMatchesThroughputAtScale)
{
    // For a large number of LWEs, runBatch must converge to the
    // steady-state throughput estimate.
    StrixAccelerator strix;
    const TfheParams &p = paramsSetII();
    PbsPerf perf = strix.evaluatePbs(p);
    const uint64_t lwes = 100000;
    BatchPerf bp = strix.runBatch(p, lwes);
    double tp = double(lwes) / bp.seconds;
    EXPECT_TRUE(within(tp, perf.throughput_pbs_s, 0.05));
}

TEST(Accelerator, EmptyBatchIsFree)
{
    StrixAccelerator strix;
    BatchPerf bp = strix.runBatch(paramsSetI(), 0);
    EXPECT_EQ(bp.seconds, 0.0);
    EXPECT_EQ(bp.epochs, 0u);
}

TEST(Accelerator, GraphLayersAreBarriers)
{
    StrixAccelerator strix;
    WorkloadGraph g("toy");
    g.addLayer({"a", 100, 0});
    g.addLayer({"b", 100, 0});
    WorkloadGraph one("merged");
    one.addLayer({"ab", 200, 0});
    BatchPerf split = strix.runGraph(paramsSetI(), g);
    BatchPerf merged = strix.runGraph(paramsSetI(), one);
    // Two barriers cannot be faster than one.
    EXPECT_GE(split.seconds, merged.seconds * 0.999);
}

TEST(Accelerator, MemoryBoundFlagAtExtremeClp)
{
    // TvLP=1/CLP=32 on set IV is the paper's heavily memory-bound
    // extreme (Table VII's last row).
    StrixConfig cfg = StrixConfig::paperDefault();
    cfg.tvlp = 1;
    cfg.clp = 32;
    PbsPerf perf = StrixAccelerator(cfg).evaluatePbs(paramsSetIV());
    EXPECT_TRUE(perf.memory_bound);
    // And the paper design point is not memory bound.
    PbsPerf base = StrixAccelerator().evaluatePbs(paramsSetIV());
    EXPECT_FALSE(base.memory_bound);
}

TEST(Accelerator, TraceHasNoUnitOverlapAndFullFftUtilization)
{
    StrixAccelerator strix;
    Hsc core = strix.makeCore(paramsSetI());
    GanttTrace trace = core.traceBlindRotation(2, 3);
    for (const auto &row : trace.rows()) {
        if (row.name() == "Loc.Scrtpd")
            continue; // two ports: read + write rows share a lane
        EXPECT_FALSE(row.hasOverlap()) << row.name();
    }

    HscUtilization u = core.utilization(3);
    EXPECT_NEAR(u.fft, 1.0, 0.01);
    EXPECT_NEAR(u.decomposer, 1.0, 0.01);
    EXPECT_NEAR(u.vma, 1.0, 0.01);
    EXPECT_NEAR(u.ifft, 1.0, 0.01);
    EXPECT_NEAR(u.accumulator, 1.0, 0.01);
    EXPECT_NEAR(u.rotator, 0.5, 0.01); // paper: rotator at 50%
    EXPECT_GT(u.hbm, 0.3);
    EXPECT_LT(u.hbm, 1.0);
}

TEST(Accelerator, RequiredBandwidthGrowsWithClp)
{
    // Table VII: the bandwidth requirement roughly doubles with CLP.
    const TfheParams &p = paramsSetIV();
    double prev = 0.0;
    for (uint32_t clp : {2u, 4u, 8u, 16u, 32u}) {
        StrixConfig cfg = StrixConfig::paperDefault();
        cfg.tvlp = 32 / clp;
        cfg.clp = clp;
        PbsPerf perf = StrixAccelerator(cfg).evaluatePbs(p);
        EXPECT_GT(perf.required_bw_gbps, prev) << "clp=" << clp;
        prev = perf.required_bw_gbps;
    }
    EXPECT_GT(prev, 300.0); // the extreme config exceeds one stack
}

} // namespace
} // namespace strix
