/**
 * @file
 * StrixClient implementation.
 */

#include "net/client.h"

#include <stdexcept>

namespace strix {

bool
StrixClient::connect(const std::string &host, uint16_t port)
{
    conn_ = TcpConn::connect(host, port);
    decoder_ = FrameDecoder();
    return conn_.valid();
}

bool
StrixClient::connectLoopback(uint16_t port)
{
    return connect("127.0.0.1", port);
}

uint64_t
StrixClient::send(MsgType type, uint64_t tenant,
                  std::vector<uint8_t> payload, uint64_t deadline_us)
{
    if (!conn_.valid())
        return 0;
    WireMessage msg;
    msg.type = type;
    msg.tenant = tenant;
    msg.request_id = next_id_++;
    msg.deadline_us = deadline_us;
    msg.payload = std::move(payload);
    const std::vector<uint8_t> frame = encodeMessage(msg);
    if (!conn_.writeFull(frame.data(), frame.size())) {
        conn_.close();
        return 0;
    }
    return msg.request_id;
}

bool
StrixClient::recvReply(Reply &out)
{
    out = Reply();
    if (!conn_.valid())
        return false;
    WireMessage msg;
    for (;;) {
        bool have = false;
        try {
            have = decoder_.next(msg);
        } catch (const std::runtime_error &) {
            conn_.close();
            return false; // server sent malformed framing
        }
        if (have)
            break;
        uint8_t chunk[16 * 1024];
        size_t got = 0;
        if (conn_.readSome(chunk, sizeof(chunk), got) !=
            TcpConn::IoResult::Ok) {
            conn_.close();
            return false;
        }
        decoder_.feed(chunk, got);
    }
    out.request_id = msg.request_id;
    if (msg.type == MsgType::Ok) {
        out.ok = true;
        out.payload = std::move(msg.payload);
        return true;
    }
    if (msg.type == MsgType::Error) {
        try {
            ErrorInfo info = decodeErrorPayload(msg.payload);
            out.error = info.code;
            out.error_text = std::move(info.text);
        } catch (const std::runtime_error &) {
            out.error = WireError::Protocol;
            out.error_text = "malformed error payload";
        }
        return true;
    }
    out.error = WireError::Protocol;
    out.error_text = "unexpected reply type";
    return true;
}

StrixClient::Reply
StrixClient::call(MsgType type, uint64_t tenant,
                  std::vector<uint8_t> payload, uint64_t deadline_us)
{
    Reply reply;
    const uint64_t id =
        send(type, tenant, std::move(payload), deadline_us);
    if (id == 0) {
        reply.error = WireError::Protocol;
        reply.error_text = "connection closed";
        return reply;
    }
    if (!recvReply(reply)) {
        reply = Reply();
        reply.error = WireError::Protocol;
        reply.error_text = "connection closed";
        return reply;
    }
    if (reply.request_id != id) {
        reply.ok = false;
        reply.error = WireError::Protocol;
        reply.error_text = "reply id mismatch (pipelined caller "
                           "should use send/recvReply)";
    }
    return reply;
}

bool
StrixClient::ping()
{
    Reply r = call(MsgType::Ping, 0, {});
    return r.ok;
}

} // namespace strix
