/**
 * @file
 * Unit tests for torus scalar conversions.
 */

#include <gtest/gtest.h>

#include "common/types.h"

namespace strix {
namespace {

TEST(Types, DoubleToTorusRoundTrip)
{
    EXPECT_EQ(doubleToTorus32(0.0), 0u);
    EXPECT_EQ(doubleToTorus32(0.5), 0x80000000u);
    EXPECT_EQ(doubleToTorus32(-0.25), 0xC0000000u);
    EXPECT_EQ(doubleToTorus32(0.25), 0x40000000u);
    // Reduction mod 1.
    EXPECT_EQ(doubleToTorus32(1.25), doubleToTorus32(0.25));
    EXPECT_EQ(doubleToTorus32(-0.75), doubleToTorus32(0.25));
}

TEST(Types, TorusToDoubleCentered)
{
    EXPECT_DOUBLE_EQ(torus32ToDouble(0), 0.0);
    EXPECT_DOUBLE_EQ(torus32ToDouble(0x40000000u), 0.25);
    EXPECT_DOUBLE_EQ(torus32ToDouble(0xC0000000u), -0.25);
}

TEST(Types, RoundTripThroughDouble)
{
    for (Torus32 t : {0u, 1u, 0x12345678u, 0xFFFFFFFFu, 0x7FFFFFFFu}) {
        EXPECT_EQ(doubleToTorus32(torus32ToDouble(t)), t) << t;
    }
}

TEST(Types, EncodeDecodeMessagePowerOfTwoSpace)
{
    const uint64_t p = 16;
    for (int64_t m = 0; m < static_cast<int64_t>(p); ++m) {
        Torus32 t = encodeMessage(m, p);
        EXPECT_EQ(decodeMessage(t, p), m) << m;
    }
}

TEST(Types, EncodeDecodeMessageNonPowerOfTwoSpace)
{
    const uint64_t p = 10;
    for (int64_t m = 0; m < static_cast<int64_t>(p); ++m) {
        Torus32 t = encodeMessage(m, p);
        EXPECT_EQ(decodeMessage(t, p), m) << m;
    }
}

TEST(Types, DecodeToleratesNoise)
{
    const uint64_t p = 8;
    for (int64_t m = 0; m < 8; ++m) {
        Torus32 t = encodeMessage(m, p);
        // Up to just under half an encoding step (step = 2^32/8 =
        // 2^29, half-step = 2^28) of noise.
        Torus32 noise = (1u << 28) - 1000;
        EXPECT_EQ(decodeMessage(t + noise, p), m);
        EXPECT_EQ(decodeMessage(t - noise, p), m);
    }
}

TEST(Types, NegativeMessagesWrap)
{
    EXPECT_EQ(encodeMessage(-1, 8), encodeMessage(7, 8));
    EXPECT_EQ(encodeMessage(-3, 8), encodeMessage(5, 8));
}

TEST(Types, RoundToBits)
{
    // Keeping 8 bits rounds to the nearest multiple of 2^24.
    EXPECT_EQ(roundToBits(0x01000000u, 8), 0x01000000u);
    EXPECT_EQ(roundToBits(0x01800000u, 8), 0x02000000u); // half rounds up
    EXPECT_EQ(roundToBits(0x017FFFFFu, 8), 0x01000000u);
    // Wrap at the top of the torus.
    EXPECT_EQ(roundToBits(0xFFFFFFFFu, 8), 0u);
    // Full width: identity.
    EXPECT_EQ(roundToBits(0xDEADBEEFu, 32), 0xDEADBEEFu);
}

TEST(Types, TorusDistanceIsCentered)
{
    EXPECT_EQ(torusDistance(5, 3), 2);
    EXPECT_EQ(torusDistance(3, 5), -2);
    // Wraparound: distance between 0 and 0xFFFFFFFF is 1.
    EXPECT_EQ(torusDistance(0, 0xFFFFFFFFu), 1);
}

} // namespace
} // namespace strix
