/**
 * @file
 * TfheContext: a thin single-process facade over the split API.
 *
 * DEPRECATED (now enforced with [[deprecated]]): new code should use
 * the split types directly --
 * `ClientKeyset` (secret keys + encryption, client side), `EvalKeys`
 * (the shareable public BSK/KSK bundle), and `ServerContext`
 * (evaluation over a shared bundle) -- optionally amortizing keygen
 * through `ContextCache`. See README "Client/server key separation"
 * for the migration table. This facade simply composes a ClientKeyset
 * with a ServerContext built on its EvalKeys, for quick experiments
 * and single-process demos where role separation is noise.
 *
 * Thread-safety contract
 * ----------------------
 * Every member is safe to call concurrently on one shared context:
 * key material is immutable after construction, encryptBit/encryptInt
 * serialize the encryption RNG internally (see ClientKeyset), and
 * setBatchThreads publishes pool replacements without disturbing
 * in-flight batches (see ServerContext).
 */

#ifndef STRIX_TFHE_CONTEXT_H
#define STRIX_TFHE_CONTEXT_H

#include <memory>
#include <vector>

#include "tfhe/client_keyset.h"
#include "tfhe/server_context.h"

namespace strix {

/** ClientKeyset + ServerContext in one handle (single-process use). */
class [[deprecated(
    "use ClientKeyset + ServerContext (see README migration table); "
    "TfheContext will be removed in a future release")]] TfheContext
{
  public:
    /**
     * Generate all keys for @p params deterministically from @p seed
     * (see ClientKeyset) and stand up an evaluation context on the
     * resulting EvalKeys bundle.
     */
    explicit TfheContext(const TfheParams &params,
                         uint64_t seed = 0xC0DEC0DEULL)
        : client_(params, seed), server_(client_.evalKeys())
    {
    }

    /** The client half: secret keys, encryption, decryption. */
    const ClientKeyset &client() const { return client_; }

    /** The server half: evaluation over the shared EvalKeys. */
    ServerContext &server() { return server_; }
    const ServerContext &server() const { return server_; }

    /**
     * Implicit view as the evaluation context, so facade handles pass
     * directly to eval-side APIs (gates, IntegerOps, workloads) that
     * compile against ServerContext alone.
     */
    operator const ServerContext &() const { return server_; }

    // --- delegated client API ----------------------------------------
    const TfheParams &params() const { return client_.params(); }
    const LweKey &lweKey() const { return client_.lweKey(); }
    const GlweKey &glweKey() const { return client_.glweKey(); }
    const LweKey &extractedKey() const { return client_.extractedKey(); }

    LweCiphertext encryptBit(bool bit) const
    {
        return client_.encryptBit(bit);
    }
    bool decryptBit(const LweCiphertext &ct) const
    {
        return client_.decryptBit(ct);
    }
    LweCiphertext encryptInt(int64_t m, uint64_t msg_space) const
    {
        return client_.encryptInt(m, msg_space);
    }
    int64_t decryptInt(const LweCiphertext &ct, uint64_t msg_space) const
    {
        return client_.decryptInt(ct, msg_space);
    }

    // --- delegated server API ----------------------------------------
    const BootstrappingKey &bsk() const { return server_.bsk(); }
    const KeySwitchKey &ksk() const { return server_.ksk(); }
    const std::shared_ptr<const EvalKeys> &evalKeys() const
    {
        return server_.evalKeys();
    }

    LweCiphertext bootstrap(const LweCiphertext &ct,
                            const TorusPolynomial &test_vector) const
    {
        return server_.bootstrap(ct, test_vector);
    }
    LweCiphertext applyLut(const LweCiphertext &ct, uint64_t msg_space,
                           const std::function<int64_t(int64_t)> &f) const
    {
        return server_.applyLut(ct, msg_space, f);
    }
    std::vector<LweCiphertext>
    bootstrapBatch(const LweCiphertext *cts, size_t count,
                   const TorusPolynomial &test_vector) const
    {
        return server_.bootstrapBatch(cts, count, test_vector);
    }
    std::vector<LweCiphertext>
    bootstrapBatch(const std::vector<LweCiphertext> &cts,
                   const TorusPolynomial &test_vector) const
    {
        return server_.bootstrapBatch(cts, test_vector);
    }
    std::vector<LweCiphertext>
    applyLutBatch(const std::vector<LweCiphertext> &cts, uint64_t msg_space,
                  const std::function<int64_t(int64_t)> &f) const
    {
        return server_.applyLutBatch(cts, msg_space, f);
    }
    void setBatchThreads(unsigned threads)
    {
        server_.setBatchThreads(threads);
    }
    unsigned batchThreads() const { return server_.batchThreads(); }

  private:
    ClientKeyset client_;
    ServerContext server_;
};

} // namespace strix

#endif // STRIX_TFHE_CONTEXT_H
