/**
 * @file
 * Remote serving session: N concurrent client threads against a live
 * loopback StrixServer daemon.
 *
 * The full wire-level tenant lifecycle, end to end: each client
 * thread connects over TCP, registers its tenant by uploading the
 * EVK2 (seeded) key bundle -- re-registration is idempotent, so both
 * threads of a tenant can do it blindly -- then drives Bootstrap,
 * ApplyLut, and EvalCircuit requests through the MSG1 protocol. The
 * server batches PBS work *across tenants and connections* through
 * its shared BatchExecutor; replies come back in completion order and
 * are matched by request id.
 *
 * Every reply is self-checked: decrypted with the tenant's secret key
 * (which never crosses the wire -- the daemon is evaluation-only) and
 * compared against a local ServerContext evaluation / cleartext
 * reference. Exits nonzero on any mismatch or transport failure.
 */

#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "net/client.h"
#include "server/server.h"
#include "server/wire_codec.h"
#include "tfhe/bootstrap.h"
#include "tfhe/context_cache.h"
#include "tfhe/server_context.h"
#include "workloads/circuit.h"

using namespace strix;

namespace {

constexpr uint64_t kSpace = 8;
constexpr int kThreads = 4; // 2 tenants x 2 connections
constexpr int kRequestsPerThread = 6;
constexpr uint64_t kSeedA = 9101;
constexpr uint64_t kSeedB = 9102;

int64_t
triple(int64_t v)
{
    return (3 * v) % int64_t(kSpace);
}

/** Full adder: sum = a^b^cin, cout = ab | (a^b)cin. */
Circuit
fullAdder()
{
    Circuit c;
    const Wire a = c.input("a");
    const Wire b = c.input("b");
    const Wire cin = c.input("cin");
    const Wire axb = c.gate(GateOp::Xor, a, b);
    const Wire sum = c.gate(GateOp::Xor, axb, cin);
    const Wire ab = c.gate(GateOp::And, a, b);
    const Wire axb_cin = c.gate(GateOp::And, axb, cin);
    const Wire cout = c.gate(GateOp::Or, ab, axb_cin);
    c.output(sum, "sum");
    c.output(cout, "cout");
    return c;
}

std::vector<uint8_t>
evalKeysBytes(const EvalKeys &keys)
{
    return encodeEvalKeysPayload(keys, EvalKeysFormat::Seeded);
}

/**
 * One client thread: register, then drive the three request types.
 * Returns the number of failures (0 = clean).
 */
int
runClient(int id, uint16_t port)
{
    const uint64_t tenant = id % 2 == 0 ? 1 : 2;
    const uint64_t seed = tenant == 1 ? kSeedA : kSeedB;
    auto keyset =
        ContextCache::global().getOrCreateKeyset(testParams(48, 512),
                                                 seed);
    const TfheParams &p = keyset->evalKeys()->params();
    ServerContext local(keyset->evalKeys());

    StrixClient client;
    if (!client.connectLoopback(port)) {
        std::fprintf(stderr, "client %d: connect failed\n", id);
        return 1;
    }
    // Blind re-registration: the server's getOrInsert is idempotent,
    // so each of a tenant's connections can upload without
    // coordination (only the first allocates key memory).
    StrixClient::Reply reg =
        client.call(MsgType::RegisterTenant, tenant,
                    evalKeysBytes(*keyset->evalKeys()));
    if (!reg.ok) {
        std::fprintf(stderr, "client %d: register failed: %s\n", id,
                     reg.error_text.c_str());
        return 1;
    }

    const Circuit adder = fullAdder();
    int failures = 0;
    for (int i = 0; i < kRequestsPerThread; ++i) {
        const int64_t m = (id + i) % int64_t(kSpace);
        switch (i % 3) {
        case 0: { // raw Bootstrap against an explicit test vector
            LweCiphertext ct = keyset->encryptInt(m, kSpace);
            TorusPolynomial tv = makeIntTestVector(p.N, kSpace, triple);
            StrixClient::Reply r =
                client.call(MsgType::Bootstrap, tenant,
                            encodeBootstrapPayload(ct, tv));
            if (!r.ok) {
                std::fprintf(stderr, "client %d: bootstrap: %s\n", id,
                             r.error_text.c_str());
                ++failures;
                break;
            }
            std::vector<LweCiphertext> out =
                decodeCiphertexts(r.payload);
            const int64_t got =
                keyset->decryptInt(out.at(0), kSpace);
            const int64_t want =
                keyset->decryptInt(local.bootstrap(ct, tv), kSpace);
            if (got != want || got != triple(m)) {
                std::fprintf(stderr,
                             "client %d: bootstrap mismatch "
                             "(%lld vs local %lld)\n",
                             id, (long long)got, (long long)want);
                ++failures;
            }
            break;
        }
        case 1: { // ApplyLut with a tabulated function
            LweCiphertext ct = keyset->encryptInt(m, kSpace);
            std::vector<int64_t> table;
            for (uint64_t v = 0; v < kSpace; ++v)
                table.push_back(triple(int64_t(v)));
            StrixClient::Reply r = client.call(
                MsgType::ApplyLut, tenant,
                encodeApplyLutPayload(ct, kSpace, table));
            if (!r.ok) {
                std::fprintf(stderr, "client %d: applyLut: %s\n", id,
                             r.error_text.c_str());
                ++failures;
                break;
            }
            std::vector<LweCiphertext> out =
                decodeCiphertexts(r.payload);
            const int64_t got =
                keyset->decryptInt(out.at(0), kSpace);
            const int64_t want = keyset->decryptInt(
                local.applyLut(ct, kSpace, triple), kSpace);
            if (got != want || got != triple(m)) {
                std::fprintf(stderr,
                             "client %d: applyLut mismatch "
                             "(%lld vs local %lld)\n",
                             id, (long long)got, (long long)want);
                ++failures;
            }
            break;
        }
        default: { // EvalCircuit: full adder on encrypted bits
            const bool a = (m & 1) != 0, b = (m & 2) != 0,
                       cin = (m & 4) != 0;
            std::vector<LweCiphertext> inputs;
            inputs.push_back(keyset->encryptBit(a));
            inputs.push_back(keyset->encryptBit(b));
            inputs.push_back(keyset->encryptBit(cin));
            StrixClient::Reply r = client.call(
                MsgType::EvalCircuit, tenant,
                encodeCircuitPayload(adder, inputs));
            if (!r.ok) {
                std::fprintf(stderr, "client %d: evalCircuit: %s\n",
                             id, r.error_text.c_str());
                ++failures;
                break;
            }
            std::vector<LweCiphertext> out =
                decodeCiphertexts(r.payload);
            const std::vector<bool> want =
                adder.evalPlain({a, b, cin});
            if (out.size() != want.size()) {
                std::fprintf(stderr,
                             "client %d: circuit arity mismatch\n",
                             id);
                ++failures;
                break;
            }
            for (size_t o = 0; o < out.size(); ++o) {
                if (keyset->decryptBit(out[o]) != want[o]) {
                    std::fprintf(stderr,
                                 "client %d: circuit output %zu "
                                 "mismatch\n",
                                 id, o);
                    ++failures;
                }
            }
            break;
        }
        }
    }
    return failures;
}

} // namespace

int
main()
{
    std::printf("=== Remote serving session demo ===\n\n");
    std::printf("%d client threads, 2 tenants, one loopback daemon\n\n",
                kThreads);

    StrixServer::Options opts;
    opts.exec.target_batch = 8;
    opts.exec.flush_delay_us = 500;
    StrixServer server(opts);
    if (!server.start()) {
        std::fprintf(stderr, "server bind failed\n");
        return 1;
    }

    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            failures[size_t(t)] = runClient(t, server.port());
        });
    for (auto &t : threads)
        t.join();

    const StrixServer::Stats st = server.stats();
    const BatchExecutor::Stats ex = server.executorStats();
    const CacheStats cs = server.cacheStats();
    server.stop();

    std::printf("requests served:    %llu (%llu ok, %llu errors)\n",
                (unsigned long long)st.requests,
                (unsigned long long)st.ok_replies,
                (unsigned long long)st.error_replies);
    std::printf("PBS sweeps:         %llu over %llu requests "
                "(occupancy %.2f)\n",
                (unsigned long long)ex.sweeps,
                (unsigned long long)ex.swept_lwes,
                ex.occupancy(opts.exec.target_batch));
    std::printf("tenant bundles:     %llu resident (%llu bytes)\n",
                (unsigned long long)cs.entries,
                (unsigned long long)cs.resident_bytes);

    int bad = 0;
    for (int f : failures)
        bad += f;
    if (bad != 0) {
        std::fprintf(stderr, "\nFAILED: %d mismatches\n", bad);
        return 1;
    }
    std::printf("\nall replies decode-identical to local evaluation\n");
    return 0;
}
