/**
 * @file
 * GGSW and external-product tests: the external product of GGSW(m)
 * with GLWE(M) must decrypt to m*M, and the fused CMux must select
 * between a polynomial and its rotation.
 */

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "tfhe/ggsw.h"

namespace strix {
namespace {

using test::randomMessagePoly;

/** Max |error| of phase vs expectation, in torus ulps. */
int64_t
maxPhaseError(const TorusPolynomial &phase, const TorusPolynomial &expect)
{
    int64_t worst = 0;
    for (size_t i = 0; i < phase.size(); ++i)
        worst = std::max(
            worst, std::abs(static_cast<int64_t>(
                       torusDistance(phase[i], expect[i]))));
    return worst;
}

struct GgswCase
{
    uint32_t k;
    uint32_t big_n;
    uint32_t base_bits;
    uint32_t levels;
};

class ExternalProductSweep : public ::testing::TestWithParam<GgswCase>
{
};

TEST_P(ExternalProductSweep, EncryptsProductOfBit)
{
    const auto c = GetParam();
    Rng rng(42);
    GlweKey key(c.k, c.big_n, rng);
    GadgetParams g{c.base_bits, c.levels};

    for (int32_t m : {0, 1}) {
        GgswCiphertext ggsw = ggswEncrypt(key, m, g, 0.0, rng);
        TorusPolynomial mu = randomMessagePoly(c.big_n, rng);
        GlweCiphertext glwe = glweEncrypt(key, mu, 0.0, rng);
        GlweCiphertext out;
        externalProduct(out, ggsw, glwe);
        TorusPolynomial phase = glwePhase(key, out);

        TorusPolynomial expect(c.big_n);
        if (m == 1)
            expect = mu;
        // Zero noise: the only error is the gadget rounding, bounded
        // by (k+1)*N*B/2 * q/(2B^l) scaled contributions; empirically
        // far below a 1/64 message step. Allow q/2^10.
        EXPECT_LE(maxPhaseError(phase, expect), int64_t{1} << 22)
            << "m=" << m;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExternalProductSweep,
    ::testing::Values(GgswCase{1, 64, 10, 2}, GgswCase{1, 64, 7, 3},
                      GgswCase{2, 32, 8, 3}, GgswCase{1, 256, 10, 2},
                      GgswCase{2, 64, 12, 2}));

TEST(Ggsw, FftExternalProductMatchesExact)
{
    Rng rng(7);
    const uint32_t n = 128, k = 1;
    GlweKey key(k, n, rng);
    GadgetParams g{10, 2};
    GgswCiphertext ggsw = ggswEncrypt(key, 1, g, 0.0, rng);
    GgswFft ggsw_fft(ggsw);

    TorusPolynomial mu = randomMessagePoly(n, rng);
    GlweCiphertext glwe = glweEncrypt(key, mu, 0.0, rng);

    GlweCiphertext exact, viaFft;
    externalProduct(exact, ggsw, glwe);
    ggsw_fft.externalProduct(viaFft, glwe);

    for (uint32_t c = 0; c <= k; ++c) {
        for (uint32_t i = 0; i < n; ++i) {
            EXPECT_LE(std::abs(torusDistance(exact.poly(c)[i],
                                             viaFft.poly(c)[i])),
                      16)
                << "c=" << c << " i=" << i;
        }
    }
}

TEST(Ggsw, BatchFusedExternalProductBitMatchesPerPoly)
{
    // The fused path (all (k+1)*l digits through one forwardBatch
    // sweep) must equal the per-poly reference EXACTLY -- same
    // kernel table, same per-element float ops, bit-identical output
    // -- across gadget shapes and with real noise in the inputs.
    Rng rng(21);
    const GgswCase shapes[] = {{1, 128, 10, 2},
                               {2, 64, 8, 3},
                               {1, 1024, 10, 2},
                               {2, 32, 7, 3}};
    for (const auto &c : shapes) {
        GlweKey key(c.k, c.big_n, rng);
        GadgetParams g{c.base_bits, c.levels};
        GgswCiphertext ggsw = ggswEncrypt(key, 1, g, 1e-7, rng);
        GgswFft ggsw_fft(ggsw);
        TorusPolynomial mu = randomMessagePoly(c.big_n, rng);
        GlweCiphertext glwe = glweEncrypt(key, mu, 1e-7, rng);

        GlweCiphertext fused, ref;
        PbsScratch fused_scratch, ref_scratch;
        ggsw_fft.externalProduct(fused, glwe, fused_scratch);
        ggsw_fft.externalProductPerPoly(ref, glwe, ref_scratch);
        ASSERT_EQ(fused.k(), ref.k());
        for (uint32_t comp = 0; comp <= c.k; ++comp)
            EXPECT_TRUE(fused.poly(comp) == ref.poly(comp))
                << "N=" << c.big_n << " k=" << c.k << " l=" << c.levels
                << " comp=" << comp;
    }
}

TEST(Ggsw, FusedExternalProductSharesScratchAcrossShapes)
{
    // One scratch serving ciphertexts of different shapes must resize
    // cleanly and stay bit-correct (the batched buffers are raw
    // vectors, so stale sizing would corrupt silently if unchecked).
    Rng rng(22);
    PbsScratch scratch;
    for (const auto &c :
         {GgswCase{1, 64, 10, 2}, GgswCase{2, 32, 8, 3},
          GgswCase{1, 256, 10, 2}, GgswCase{1, 64, 10, 2}}) {
        GlweKey key(c.k, c.big_n, rng);
        GadgetParams g{c.base_bits, c.levels};
        GgswFft ggsw_fft(ggswEncrypt(key, 1, g, 0.0, rng));
        GlweCiphertext glwe =
            glweEncrypt(key, randomMessagePoly(c.big_n, rng), 0.0, rng);
        GlweCiphertext shared, fresh;
        PbsScratch fresh_scratch;
        ggsw_fft.externalProduct(shared, glwe, scratch);
        ggsw_fft.externalProduct(fresh, glwe, fresh_scratch);
        for (uint32_t comp = 0; comp <= c.k; ++comp)
            EXPECT_TRUE(shared.poly(comp) == fresh.poly(comp))
                << "N=" << c.big_n << " comp=" << comp;
    }
}

TEST(Ggsw, CmuxSelectsRotationWhenBitSet)
{
    Rng rng(8);
    const uint32_t n = 64, k = 1;
    GlweKey key(k, n, rng);
    GadgetParams g{10, 2};
    TorusPolynomial mu = randomMessagePoly(n, rng);

    const uint32_t power = 13;
    TorusPolynomial rotated(n);
    negacyclicRotate(rotated, mu, power);

    for (int32_t bit : {0, 1}) {
        GgswCiphertext ggsw = ggswEncrypt(key, bit, g, 0.0, rng);
        GgswFft fft(ggsw);
        GlweCiphertext acc = GlweCiphertext::trivial(k, mu);
        fft.cmuxRotate(acc, power);
        TorusPolynomial phase = glwePhase(key, acc);
        const TorusPolynomial &expect = bit ? rotated : mu;
        EXPECT_LE(maxPhaseError(phase, expect), int64_t{1} << 22)
            << "bit=" << bit;
    }
}

TEST(Ggsw, CmuxChainAccumulatesRotations)
{
    // Two chained CMuxes with bits (1, 1) rotate by the sum of powers.
    Rng rng(9);
    const uint32_t n = 64, k = 1;
    GlweKey key(k, n, rng);
    GadgetParams g{10, 2};
    TorusPolynomial mu = randomMessagePoly(n, rng);

    GgswCiphertext one = ggswEncrypt(key, 1, g, 0.0, rng);
    GgswFft fft(one);
    GlweCiphertext acc = GlweCiphertext::trivial(k, mu);
    fft.cmuxRotate(acc, 5);
    fft.cmuxRotate(acc, 9);

    TorusPolynomial expect(n);
    negacyclicRotate(expect, mu, 14);
    EXPECT_LE(maxPhaseError(glwePhase(key, acc), expect),
              int64_t{1} << 22);
}

TEST(Ggsw, RowLayoutMatchesPaper)
{
    // (k+1)*lb rows of (k+1) polynomials (Sec. II-D).
    Rng rng(10);
    GlweKey key(2, 32, rng);
    GadgetParams g{8, 3};
    GgswCiphertext ggsw = ggswEncrypt(key, 1, g, 0.0, rng);
    EXPECT_EQ(ggsw.rows(), (2u + 1) * 3);
    EXPECT_EQ(ggsw.row(0).k(), 2u);
}

} // namespace
} // namespace strix
