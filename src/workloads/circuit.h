/**
 * @file
 * Boolean circuits over bootstrapped gates.
 *
 * TFHE's gate API evaluates arbitrary boolean circuits; this module
 * provides the netlist, three consumers, and a small standard-cell
 * library:
 *
 *   - functional evaluation in cleartext (reference);
 *   - homomorphic evaluation on a ServerContext (every 2-input gate
 *     is one PBS + KS, MUX is two PBS + one KS, NOT is free); the
 *     client+server convenience wrapper for single-process use lives
 *     in workloads/circuit_client.h so that this header -- and every
 *     server-side TU that includes it -- stays free of
 *     tfhe/client_keyset.h and the secret keys it carries;
 *   - lowering to a WorkloadGraph: gates are levelized by dependency
 *     depth and each level becomes one batchable layer, which is how
 *     a gate workload is scheduled on Strix or a GPU.
 *
 * Builders for ripple-carry adders, comparators, and multipliers are
 * provided as realistic workload generators.
 */

#ifndef STRIX_WORKLOADS_CIRCUIT_H
#define STRIX_WORKLOADS_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "strix/graph.h"
#include "tfhe/gates.h"

namespace strix {

class CircuitPlan; // workloads/circuit_analysis.h

/** Gate kinds supported by the netlist. */
enum class GateOp
{
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    AndNY, //!< (not a) and b
    AndYN, //!< a and (not b)
    Not,   //!< free (no bootstrap)
    Mux,   //!< sel ? a : b (two bootstraps)
    Input, //!< primary input (no computation)
    Const, //!< constant wire (no computation)
};

/** A wire is identified by the index of the node driving it. */
using Wire = uint32_t;

/**
 * Gate netlist in topological construction order (operands must
 * already exist when a gate is added).
 */
class Circuit
{
  public:
    explicit Circuit(std::string name = "circuit") : name_(std::move(name))
    {
    }

    const std::string &name() const { return name_; }

    /** One netlist node (read-only view for analysis passes). */
    struct Node
    {
        GateOp op;
        Wire a = 0, b = 0, c = 0; //!< c = MUX's third operand
        bool const_value = false;
    };

    /** Read a node by wire index (for CircuitAnalyzer). */
    const Node &node(Wire w) const { return nodes_[w]; }

    /** Primary-input wires in encryption order. */
    const std::vector<Wire> &inputWires() const { return inputs_; }

    /** Add a primary input; returns its wire. */
    Wire input(const std::string &label = "");

    /** Add a constant wire. */
    Wire constant(bool value);

    /** Add a 2-input gate. */
    Wire gate(GateOp op, Wire a, Wire b);

    /** Add a NOT (free). */
    Wire notGate(Wire a);

    /** Add a MUX: sel ? hi : lo. */
    Wire mux(Wire sel, Wire hi, Wire lo);

    /** Mark a wire as a primary output. */
    void output(Wire w, const std::string &label = "");

    size_t numNodes() const { return nodes_.size(); }
    size_t numInputs() const { return inputs_.size(); }
    size_t numOutputs() const { return outputs_.size(); }
    const std::vector<Wire> &outputs() const { return outputs_; }

    /** Count of bootstraps needed (gates = 1, MUX = 2, NOT/wiring = 0). */
    uint64_t pbsCount() const;

    /** Logic depth in bootstrapped-gate levels. */
    uint32_t depth() const;

    /** Evaluate in cleartext. inputs.size() must equal numInputs(). */
    std::vector<bool> evalPlain(const std::vector<bool> &inputs) const;

    /**
     * Evaluate homomorphically on the server: @p inputs are encrypted
     * bit ciphertexts in primary-input order; the returned vector
     * holds the encrypted primary outputs. Compiles against
     * ServerContext alone -- the evaluation path cannot touch a
     * secret key by construction.
     */
    std::vector<LweCiphertext>
    evalEncrypted(const ServerContext &server,
                  const std::vector<LweCiphertext> &inputs) const;

    /**
     * Plan-driven homomorphic evaluation: executes @p plan (from
     * CircuitAnalyzer, see workloads/circuit_analysis.h) level by
     * level, landing all surviving PBS of a level in one
     * bootstrapBatch sweep and evaluating elided gates as free LWE
     * linear combinations. Panics if the plan is infeasible or was
     * built for a different circuit. Outputs are decode-identical to
     * the naive path (and bit-identical for MUX-free circuits when
     * the plan elides nothing). Defined in circuit_analysis.cpp.
     */
    std::vector<LweCiphertext>
    evalEncrypted(const ServerContext &server,
                  const std::vector<LweCiphertext> &inputs,
                  const CircuitPlan &plan) const;

    /**
     * Async plan-driven evaluation: per level, every surviving PBS is
     * submitted through ServerContext::submitBootstrap, so with a
     * BatchExecutor attached the circuit's PBS stream coalesces with
     * every other session on the same EvalKeys bundle. Same results
     * as the synchronous plan overload. Defined in
     * circuit_analysis.cpp.
     */
    std::vector<LweCiphertext>
    evalEncryptedAsync(const ServerContext &server,
                       const std::vector<LweCiphertext> &inputs,
                       const CircuitPlan &plan) const;

    /**
     * Lower to a layered PBS/KS workload graph: gates at the same
     * dependency level are independent and batch into one layer.
     */
    WorkloadGraph toWorkloadGraph() const;

    /**
     * Lower the *planned* circuit: layers follow the plan's
     * levelization and count only surviving bootstraps. Defined in
     * circuit_analysis.cpp.
     */
    WorkloadGraph toWorkloadGraph(const CircuitPlan &plan) const;

  private:
    /**
     * Bootstrapped-gate level of each node (inputs/const/not =
     * 0-ish). Delegates to CircuitAnalyzer::naiveLevels -- the single
     * level computation shared with the planner.
     */
    std::vector<uint32_t> levels() const;

    std::string name_;
    std::vector<Node> nodes_;
    std::vector<Wire> inputs_;
    std::vector<Wire> outputs_;
};

/** n-bit ripple-carry adder: inputs a[0..n), b[0..n); outputs sum + carry. */
Circuit buildAdder(uint32_t bits);

/** n-bit equality comparator: output a == b. */
Circuit buildEqualityComparator(uint32_t bits);

/** n-bit unsigned less-than comparator: output a < b. */
Circuit buildLessThan(uint32_t bits);

/** n x n -> 2n bit array multiplier. */
Circuit buildMultiplier(uint32_t bits);

} // namespace strix

#endif // STRIX_WORKLOADS_CIRCUIT_H
