/**
 * @file
 * EvalKeys shape validation.
 */

#include "tfhe/eval_keys.h"

#include "common/logging.h"

namespace strix {

EvalKeys::EvalKeys(TfheParams params, BootstrappingKey bsk,
                   KeySwitchKey ksk)
    : params_(std::move(params)), bsk_(std::move(bsk)), ksk_(std::move(ksk))
{
    panicIfNot(bsk_.n() == params_.n,
               "EvalKeys: bsk dimension does not match params");
    panicIfNot(bsk_.params().N == params_.N &&
                   bsk_.params().k == params_.k,
               "EvalKeys: bsk ring shape does not match params");
    panicIfNot(bsk_.params().bg_bits == params_.bg_bits &&
                   bsk_.params().l_bsk == params_.l_bsk,
               "EvalKeys: bsk gadget does not match params");
    panicIfNot(ksk_.inDim() == params_.extractedDim(),
               "EvalKeys: ksk input dimension does not match params");
    panicIfNot(ksk_.outDim() == params_.n,
               "EvalKeys: ksk output dimension does not match params");
    panicIfNot(ksk_.gadget().base_bits == params_.ks_base_bits &&
                   ksk_.gadget().levels == params_.l_ksk,
               "EvalKeys: ksk gadget does not match params");
}

EvalKeys::EvalKeys(TfheParams params, BootstrappingKey bsk,
                   KeySwitchKey ksk, EvalKeySeeds seeds)
    : EvalKeys(std::move(params), std::move(bsk), std::move(ksk))
{
    seeds_ = seeds;
}

uint64_t
EvalKeys::residentBytes() const
{
    // BSK: n GGSWs of (k+1)*l_bsk rows x (k+1) frequency polynomials
    // of N/2 complex points (2 doubles each).
    const uint64_t bsk_polys = uint64_t(params_.n) * (params_.k + 1) *
                               params_.l_bsk * (params_.k + 1);
    const uint64_t bsk_bytes =
        bsk_polys * (params_.N / 2) * sizeof(Cplx);
    // KSK: in_dim*levels LWE rows of out_dim+1 torus words.
    const uint64_t ksk_bytes = uint64_t(ksk_.inDim()) *
                               ksk_.gadget().levels *
                               (uint64_t(ksk_.outDim()) + 1) *
                               sizeof(Torus32);
    return bsk_bytes + ksk_bytes;
}

} // namespace strix
