/**
 * @file
 * TFHE parameter sets.
 *
 * Sets I-IV follow Table IV of the paper (n, N, k, lb, lambda). The
 * remaining knobs (decomposition base, keyswitch depth, noise) are not
 * given in the paper; we use the standard values from the TFHE/Concrete
 * libraries the paper benchmarks, which are the de-facto companions of
 * those (n, N, lb) choices.
 */

#ifndef STRIX_TFHE_PARAMS_H
#define STRIX_TFHE_PARAMS_H

#include <cstdint>
#include <string>
#include <vector>

namespace strix {

/** Full TFHE parameter set. */
struct TfheParams
{
    std::string name;       //!< e.g. "I", "II", "test"
    uint32_t n;             //!< LWE dimension (mask length)
    uint32_t N;             //!< polynomial degree (power of two)
    uint32_t k;             //!< GLWE mask length
    uint32_t l_bsk;         //!< decomposition level count lb (PBS)
    uint32_t bg_bits;       //!< log2 of the PBS decomposition base B
    uint32_t l_ksk;         //!< decomposition level count (keyswitch)
    uint32_t ks_base_bits;  //!< log2 of the keyswitch base
    double lwe_noise;       //!< LWE fresh-noise stddev (torus fraction)
    double glwe_noise;      //!< GLWE fresh-noise stddev (torus fraction)
    int lambda;             //!< claimed security level (bits)

    /** Extracted LWE dimension after sample extract: k * N. */
    uint32_t extractedDim() const { return k * N; }

    /** PBS decomposition base B. */
    uint32_t decompBase() const { return 1u << bg_bits; }

    /** Bootstrapping-key size in bytes (time-domain Torus32). */
    uint64_t bskBytes() const;

    /** Keyswitching-key size in bytes. */
    uint64_t kskBytes() const;

    /** Single LWE ciphertext size in bytes. */
    uint64_t lweBytes() const { return (n + 1) * sizeof(uint32_t); }

    /** GLWE ciphertext (test-vector) size in bytes. */
    uint64_t glweBytes() const
    {
        return uint64_t(k + 1) * N * sizeof(uint32_t);
    }
};

/** Paper Table IV set I (110-bit; TFHE-lib default). */
const TfheParams &paramsSetI();
/** Paper Table IV set II (128-bit; YKP's set). */
const TfheParams &paramsSetII();
/** Paper Table IV set III (128-bit; XHEC's set). */
const TfheParams &paramsSetIII();
/** Paper Table IV set IV (128-bit, N = 16384, high precision). */
const TfheParams &paramsSetIV();

/** All four paper sets in order. */
const std::vector<TfheParams> &paperParamSets();

/**
 * Tiny parameter set for fast unit tests (insecure). Noise defaults
 * to zero so algebraic identities hold exactly.
 */
TfheParams testParams(uint32_t n = 16, uint32_t big_n = 64, uint32_t k = 1,
                      uint32_t l = 3, uint32_t bg_bits = 8,
                      double noise = 0.0);

/**
 * Zama Deep-NN benchmark parameter sets (Fig. 7): same shape as the
 * reference paper's, indexed by polynomial degree 1024/2048/4096.
 */
const TfheParams &deepNnParams(uint32_t big_n);

} // namespace strix

#endif // STRIX_TFHE_PARAMS_H
