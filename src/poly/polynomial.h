/**
 * @file
 * Polynomials over Z[X]/(X^N + 1) (negacyclic ring), the core algebra
 * of TFHE. Two coefficient domains are used:
 *
 *   - TorusPolynomial: coefficients in the discretized torus (Torus32).
 *   - IntPolynomial:   small signed integer coefficients (output of the
 *                      gadget decomposition).
 *
 * The ring product IntPolynomial * TorusPolynomial -> TorusPolynomial
 * is the only multiplication TFHE needs; three implementations are
 * provided (schoolbook, Karatsuba, FFT) and cross-checked in tests.
 */

#ifndef STRIX_POLY_POLYNOMIAL_H
#define STRIX_POLY_POLYNOMIAL_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace strix {

/** Polynomial with Torus32 coefficients, degree < n. */
class TorusPolynomial
{
  public:
    TorusPolynomial() = default;
    explicit TorusPolynomial(size_t n) : coeffs_(n, 0) {}

    size_t size() const { return coeffs_.size(); }
    Torus32 &operator[](size_t i) { return coeffs_[i]; }
    const Torus32 &operator[](size_t i) const { return coeffs_[i]; }
    Torus32 *data() { return coeffs_.data(); }
    const Torus32 *data() const { return coeffs_.data(); }

    /** Set all coefficients to zero. */
    void clear();

    /** this += other (coefficient-wise torus addition). */
    void addAssign(const TorusPolynomial &other);

    /** this -= other. */
    void subAssign(const TorusPolynomial &other);

    /** Negate all coefficients. */
    void negate();

    bool operator==(const TorusPolynomial &o) const
    {
        return coeffs_ == o.coeffs_;
    }

  private:
    std::vector<Torus32> coeffs_;
};

/** Polynomial with small signed integer coefficients, degree < n. */
class IntPolynomial
{
  public:
    IntPolynomial() = default;
    explicit IntPolynomial(size_t n) : coeffs_(n, 0) {}

    size_t size() const { return coeffs_.size(); }
    int32_t &operator[](size_t i) { return coeffs_[i]; }
    const int32_t &operator[](size_t i) const { return coeffs_[i]; }
    int32_t *data() { return coeffs_.data(); }
    const int32_t *data() const { return coeffs_.data(); }

    void clear();

    bool operator==(const IntPolynomial &o) const
    {
        return coeffs_ == o.coeffs_;
    }

  private:
    std::vector<int32_t> coeffs_;
};

/**
 * result = poly * X^power in Z[X]/(X^N+1). power is taken modulo 2N;
 * X^N == -1 so a rotation by N negates. This is the negacyclic
 * rotation the paper's Rotator unit performs.
 *
 * @param power rotation exponent in [0, 2N)
 */
void negacyclicRotate(TorusPolynomial &result, const TorusPolynomial &poly,
                      uint32_t power);

/** result = poly * (X^power - 1); fused form used by blind rotation. */
void negacyclicRotateMinusOne(TorusPolynomial &result,
                              const TorusPolynomial &poly, uint32_t power);

/** Schoolbook negacyclic product: result = a * b mod (X^N + 1). */
void negacyclicMulNaive(TorusPolynomial &result, const IntPolynomial &a,
                        const TorusPolynomial &b);

/** result += a * b mod (X^N + 1), schoolbook. */
void negacyclicMulAddNaive(TorusPolynomial &result, const IntPolynomial &a,
                           const TorusPolynomial &b);

/**
 * Karatsuba negacyclic product (exact, integer arithmetic). Used as a
 * second reference implementation; asymptotically faster than
 * schoolbook and exact unlike the FFT path.
 */
void negacyclicMulKaratsuba(TorusPolynomial &result, const IntPolynomial &a,
                            const TorusPolynomial &b);

} // namespace strix

#endif // STRIX_POLY_POLYNOMIAL_H
