file(REMOVE_RECURSE
  "libstrix_poly.a"
)
