/**
 * @file
 * BufferedSender implementation.
 */

#include "net/buffered.h"

namespace strix {

void
BufferedSender::queue(const std::vector<uint8_t> &frame,
                      uint64_t now_us)
{
    if (empty()) {
        // Compact: everything before off_ is already on the wire.
        buf_.clear();
        off_ = 0;
        oldest_us_ = now_us;
    }
    buf_.insert(buf_.end(), frame.begin(), frame.end());
    ++frames_queued_;
}

bool
BufferedSender::wantFlush(uint64_t now_us) const
{
    if (empty())
        return false;
    if (pendingBytes() >= opts_.mtu_bytes)
        return true;
    return now_us >= oldest_us_ + opts_.flush_delay_us;
}

uint64_t
BufferedSender::flushDeadline() const
{
    if (empty())
        return 0;
    return oldest_us_ + opts_.flush_delay_us;
}

TcpConn::IoResult
BufferedSender::flushTo(TcpConn &conn)
{
    while (!empty()) {
        size_t put = 0;
        const TcpConn::IoResult r =
            conn.writeSome(buf_.data() + off_, pendingBytes(), put);
        if (r != TcpConn::IoResult::Ok)
            return r;
        ++write_calls_;
        off_ += put;
    }
    return TcpConn::IoResult::Ok;
}

} // namespace strix
