// Fixture stub of the deprecated combined facade header.
#ifndef FIXTURE_TFHE_CONTEXT_H
#define FIXTURE_TFHE_CONTEXT_H
#endif
