/**
 * @file
 * Binary serialization implementation.
 */

#include "tfhe/serialize.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace strix {

namespace {

void
writeU32(std::ostream &os, uint32_t v)
{
    // Explicit little-endian byte order for portability.
    char buf[4] = {char(v & 0xFF), char((v >> 8) & 0xFF),
                   char((v >> 16) & 0xFF), char((v >> 24) & 0xFF)};
    os.write(buf, 4);
}

uint32_t
readU32(std::istream &is)
{
    unsigned char buf[4];
    is.read(reinterpret_cast<char *>(buf), 4);
    if (!is)
        throw std::runtime_error("serialize: truncated stream");
    return uint32_t(buf[0]) | uint32_t(buf[1]) << 8 |
           uint32_t(buf[2]) << 16 | uint32_t(buf[3]) << 24;
}

void
writeU64(std::ostream &os, uint64_t v)
{
    writeU32(os, static_cast<uint32_t>(v & 0xFFFFFFFFu));
    writeU32(os, static_cast<uint32_t>(v >> 32));
}

uint64_t
readU64(std::istream &is)
{
    uint64_t lo = readU32(is);
    uint64_t hi = readU32(is);
    return lo | (hi << 32);
}

void
writeDouble(std::ostream &os, double d)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    writeU64(os, bits);
}

double
readDouble(std::istream &is)
{
    uint64_t bits = readU64(is);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

void
writeHeader(std::ostream &os, SerialTag tag)
{
    writeU32(os, static_cast<uint32_t>(tag));
    writeU32(os, kSerializeVersion);
}

void
expectHeader(std::istream &is, SerialTag tag, const char *what)
{
    uint32_t got_tag = readU32(is);
    uint32_t version = readU32(is);
    if (got_tag != static_cast<uint32_t>(tag))
        throw std::runtime_error(std::string("serialize: expected ") +
                                 what + " frame");
    if (version != kSerializeVersion)
        throw std::runtime_error("serialize: unsupported version");
}

void
writeU32Vector(std::ostream &os, const std::vector<uint32_t> &v)
{
    writeU64(os, v.size());
    for (uint32_t x : v)
        writeU32(os, x);
}

std::vector<uint32_t>
readU32Vector(std::istream &is)
{
    uint64_t n = readU64(is);
    // No serialized structure holds a vector anywhere near 2^25
    // entries (LWE dims cap at 2^24); a bigger count is a corrupt or
    // hostile length field (found by the fuzz sweep in
    // tests/test_serialize.cpp).
    if (n > (1ull << 25))
        throw std::runtime_error("serialize: implausible vector size");
    // Grow with the bytes actually present rather than trusting the
    // length field with one eager allocation: a flipped length byte
    // on a short frame then throws "truncated" after consuming what
    // exists instead of first resizing to 128 MiB.
    std::vector<uint32_t> v;
    v.reserve(static_cast<size_t>(std::min<uint64_t>(n, 4096)));
    for (uint64_t i = 0; i < n; ++i)
        v.push_back(readU32(is));
    return v;
}

} // namespace

void
serialize(std::ostream &os, const TfheParams &p)
{
    writeHeader(os, SerialTag::Params);
    writeU64(os, p.name.size());
    os.write(p.name.data(),
             static_cast<std::streamsize>(p.name.size()));
    writeU32(os, p.n);
    writeU32(os, p.N);
    writeU32(os, p.k);
    writeU32(os, p.l_bsk);
    writeU32(os, p.bg_bits);
    writeU32(os, p.l_ksk);
    writeU32(os, p.ks_base_bits);
    writeDouble(os, p.lwe_noise);
    writeDouble(os, p.glwe_noise);
    writeU32(os, static_cast<uint32_t>(p.lambda));
}

TfheParams
deserializeParams(std::istream &is)
{
    expectHeader(is, SerialTag::Params, "params");
    TfheParams p;
    uint64_t len = readU64(is);
    if (len > 4096)
        throw std::runtime_error("serialize: implausible name length");
    p.name.resize(len);
    is.read(p.name.data(), static_cast<std::streamsize>(len));
    if (!is)
        throw std::runtime_error("serialize: truncated stream");
    p.n = readU32(is);
    p.N = readU32(is);
    p.k = readU32(is);
    p.l_bsk = readU32(is);
    p.bg_bits = readU32(is);
    p.l_ksk = readU32(is);
    p.ks_base_bits = readU32(is);
    p.lwe_noise = readDouble(is);
    p.glwe_noise = readDouble(is);
    p.lambda = static_cast<int>(readU32(is));
    return p;
}

void
serialize(std::ostream &os, const LweKey &key)
{
    writeHeader(os, SerialTag::LweKey);
    writeU64(os, key.dim());
    for (uint32_t i = 0; i < key.dim(); ++i)
        writeU32(os, static_cast<uint32_t>(key.bit(i)));
}

LweKey
deserializeLweKey(std::istream &is)
{
    expectHeader(is, SerialTag::LweKey, "LWE key");
    uint64_t n = readU64(is);
    if (n > (1u << 24))
        throw std::runtime_error("serialize: implausible key size");
    std::vector<int32_t> bits(n);
    for (auto &b : bits)
        b = static_cast<int32_t>(readU32(is));
    return LweKey(std::move(bits));
}

void
serialize(std::ostream &os, const LweCiphertext &ct)
{
    writeHeader(os, SerialTag::LweCiphertext);
    writeU32Vector(os, ct.raw());
}

LweCiphertext
deserializeLweCiphertext(std::istream &is)
{
    expectHeader(is, SerialTag::LweCiphertext, "LWE ciphertext");
    std::vector<uint32_t> raw = readU32Vector(is);
    if (raw.empty())
        throw std::runtime_error("serialize: empty ciphertext");
    LweCiphertext ct(static_cast<uint32_t>(raw.size() - 1));
    ct.raw() = std::move(raw);
    return ct;
}

void
serialize(std::ostream &os, const GlweKey &key)
{
    writeHeader(os, SerialTag::GlweKey);
    writeU32(os, key.k());
    writeU32(os, key.ringDim());
    for (uint32_t i = 0; i < key.k(); ++i)
        for (uint32_t j = 0; j < key.ringDim(); ++j)
            writeU32(os, static_cast<uint32_t>(key.poly(i)[j]));
}

GlweKey
deserializeGlweKey(std::istream &is)
{
    expectHeader(is, SerialTag::GlweKey, "GLWE key");
    uint32_t k = readU32(is);
    uint32_t big_n = readU32(is);
    if (k > 16 || big_n > (1u << 20))
        throw std::runtime_error("serialize: implausible GLWE key");
    std::vector<IntPolynomial> polys(k, IntPolynomial(big_n));
    for (uint32_t i = 0; i < k; ++i)
        for (uint32_t j = 0; j < big_n; ++j)
            polys[i][j] = static_cast<int32_t>(readU32(is));
    return GlweKey(std::move(polys));
}

void
serialize(std::ostream &os, const TorusPolynomial &poly)
{
    writeHeader(os, SerialTag::TorusPoly);
    writeU64(os, poly.size());
    for (size_t i = 0; i < poly.size(); ++i)
        writeU32(os, poly[i]);
}

TorusPolynomial
deserializeTorusPolynomial(std::istream &is)
{
    expectHeader(is, SerialTag::TorusPoly, "torus polynomial");
    uint64_t n = readU64(is);
    if (n > (1u << 24))
        throw std::runtime_error("serialize: implausible poly size");
    TorusPolynomial poly(n);
    for (size_t i = 0; i < n; ++i)
        poly[i] = readU32(is);
    return poly;
}

void
serialize(std::ostream &os, const KeySwitchKey &ksk)
{
    writeHeader(os, SerialTag::KeySwitchKey);
    writeU32(os, ksk.inDim());
    writeU32(os, ksk.outDim());
    writeU32(os, ksk.gadget().base_bits);
    writeU32(os, ksk.gadget().levels);
    for (uint32_t i = 0; i < ksk.inDim(); ++i)
        for (uint32_t j = 0; j < ksk.gadget().levels; ++j)
            writeU32Vector(os, ksk.row(i, j).raw());
}

KeySwitchKey
deserializeKeySwitchKey(std::istream &is)
{
    expectHeader(is, SerialTag::KeySwitchKey, "keyswitch key");
    uint32_t in_dim = readU32(is);
    uint32_t out_dim = readU32(is);
    GadgetParams g{readU32(is), readU32(is)};
    if (in_dim > (1u << 24) || g.levels > 64)
        throw std::runtime_error("serialize: implausible ksk");
    std::vector<LweCiphertext> rows;
    rows.reserve(size_t(in_dim) * g.levels);
    for (uint64_t r = 0; r < uint64_t(in_dim) * g.levels; ++r) {
        std::vector<uint32_t> raw = readU32Vector(is);
        if (raw.size() != size_t(out_dim) + 1)
            throw std::runtime_error("serialize: ksk row dim mismatch");
        LweCiphertext ct(out_dim);
        ct.raw() = std::move(raw);
        rows.push_back(std::move(ct));
    }
    return KeySwitchKey::fromRows(in_dim, out_dim, g, std::move(rows));
}

namespace {

/** Little-endian encode @p bits at @p out (8 bytes). */
void
putU64Le(unsigned char *out, uint64_t bits)
{
    for (int b = 0; b < 8; ++b)
        out[b] = static_cast<unsigned char>(bits >> (8 * b));
}

/** Little-endian decode 8 bytes at @p in. */
uint64_t
getU64Le(const unsigned char *in)
{
    uint64_t bits = 0;
    for (int b = 0; b < 8; ++b)
        bits |= uint64_t(in[b]) << (8 * b);
    return bits;
}

} // namespace

void
serialize(std::ostream &os, const BootstrappingKey &bsk)
{
    // Shape is written once (every per-bit GGSW shares it); rows are
    // the frequency-domain images, bit-exact via the double framing.
    // The frame is tens of MiB at the paper sets, so each row is
    // staged into one buffer and written with a single os.write
    // instead of ~15M per-word stream calls (byte layout identical to
    // writeDouble's little-endian framing).
    writeHeader(os, SerialTag::BootstrapKey);
    const TfheParams &p = bsk.params();
    writeU32(os, bsk.n());
    writeU32(os, p.k);
    writeU32(os, p.N);
    writeU32(os, p.bg_bits);
    writeU32(os, p.l_bsk);
    std::vector<unsigned char> buf;
    for (uint32_t i = 0; i < bsk.n(); ++i) {
        for (const FreqPolynomial &row : bsk.bit(i).rawRows()) {
            buf.resize(row.size() * 16);
            for (size_t j = 0; j < row.size(); ++j) {
                uint64_t re_bits, im_bits;
                const double re = row[j].real(), im = row[j].imag();
                std::memcpy(&re_bits, &re, sizeof(re_bits));
                std::memcpy(&im_bits, &im, sizeof(im_bits));
                putU64Le(buf.data() + j * 16, re_bits);
                putU64Le(buf.data() + j * 16 + 8, im_bits);
            }
            os.write(reinterpret_cast<const char *>(buf.data()),
                     static_cast<std::streamsize>(buf.size()));
        }
    }
}

namespace {

/**
 * Body of the BSK frame after the header. When @p expect is non-null
 * (the EvalKeys reader), the shape fields are cross-checked against
 * that parameter frame *before* committing to the large row read, and
 * the key is bound to it; otherwise a minimal shape-consistent
 * parameter set is synthesized.
 */
BootstrappingKey
readBootstrappingKeyBody(std::istream &is, const TfheParams *expect)
{
    uint32_t n = readU32(is);
    uint32_t k = readU32(is);
    uint32_t big_n = readU32(is);
    GadgetParams g{readU32(is), readU32(is)};
    if (expect &&
        (n != expect->n || k != expect->k || big_n != expect->N ||
         g.base_bits != expect->bg_bits || g.levels != expect->l_bsk))
        throw std::runtime_error(
            "serialize: eval-keys bsk/params mismatch");
    // Same plausibility caps as the LWE/GLWE key readers, plus
    // power-of-two N: the FFT engine panics (aborts) on other sizes,
    // and hostile input must throw, never abort.
    if (n == 0 || n > (1u << 24) || k == 0 || k > 16 ||
        big_n < 2 || big_n > (1u << 20) ||
        (big_n & (big_n - 1)) != 0 || g.levels == 0 || g.levels > 64 ||
        g.base_bits == 0 || g.base_bits > 32)
        throw std::runtime_error("serialize: implausible bsk shape");

    const size_t rows_per_bit = size_t(k + 1) * g.levels * (k + 1);
    const size_t half_n = size_t(big_n) / 2;
    std::vector<GgswFft> bits;
    // Same discipline as readU32Vector: grow with the bytes actually
    // present instead of trusting the length field with one eager
    // allocation (n can claim 2^24 bits on a 60-byte hostile frame).
    bits.reserve(std::min<size_t>(n, 4096));
    std::vector<unsigned char> buf(half_n * 16);
    for (uint32_t i = 0; i < n; ++i) {
        std::vector<FreqPolynomial> rows(rows_per_bit);
        for (FreqPolynomial &row : rows) {
            // Bulk-read the row (the write side's layout) in one call;
            // a short read throws like readU32's truncation path.
            is.read(reinterpret_cast<char *>(buf.data()),
                    static_cast<std::streamsize>(buf.size()));
            if (!is)
                throw std::runtime_error("serialize: truncated stream");
            row.resize(half_n);
            for (size_t j = 0; j < half_n; ++j) {
                uint64_t re_bits = getU64Le(buf.data() + j * 16);
                uint64_t im_bits = getU64Le(buf.data() + j * 16 + 8);
                double re, im;
                std::memcpy(&re, &re_bits, sizeof(re));
                std::memcpy(&im, &im_bits, sizeof(im));
                row[j] = Cplx(re, im);
            }
        }
        bits.push_back(
            GgswFft::fromRawRows(k, big_n, g, std::move(rows)));
    }

    if (expect)
        return BootstrappingKey::fromBits(*expect, std::move(bits));
    // fromBits() panics on mismatch, so hand it params that are
    // consistent by construction.
    TfheParams p{};
    p.name = "deserialized-bsk";
    p.n = n;
    p.N = big_n;
    p.k = k;
    p.bg_bits = g.base_bits;
    p.l_bsk = g.levels;
    return BootstrappingKey::fromBits(p, std::move(bits));
}

} // namespace

BootstrappingKey
deserializeBootstrappingKey(std::istream &is)
{
    expectHeader(is, SerialTag::BootstrapKey, "bootstrapping key");
    return readBootstrappingKeyBody(is, nullptr);
}

void
serialize(std::ostream &os, const EvalKeys &keys)
{
    writeHeader(os, SerialTag::EvalKeys);
    serialize(os, keys.params());
    serialize(os, keys.bsk());
    serialize(os, keys.ksk());
}

std::shared_ptr<const EvalKeys>
deserializeEvalKeys(std::istream &is)
{
    expectHeader(is, SerialTag::EvalKeys, "eval keys");
    TfheParams p = deserializeParams(is);
    expectHeader(is, SerialTag::BootstrapKey, "bootstrapping key");
    // Cross-validation against the parameter frame happens inside the
    // body reader (and below for the KSK): EvalKeys panics on shape
    // mismatch (internal invariant), while a corrupt or hostile
    // stream must throw.
    BootstrappingKey bsk = readBootstrappingKeyBody(is, &p);
    KeySwitchKey ksk = deserializeKeySwitchKey(is);
    if (uint64_t(ksk.inDim()) != uint64_t(p.k) * p.N ||
        ksk.outDim() != p.n || ksk.gadget().levels != p.l_ksk ||
        ksk.gadget().base_bits != p.ks_base_bits)
        throw std::runtime_error(
            "serialize: eval-keys ksk/params mismatch");
    return std::make_shared<const EvalKeys>(p, std::move(bsk),
                                            std::move(ksk));
}

void
serialize(std::ostream &os, const EncryptedUint &x)
{
    writeHeader(os, SerialTag::EncryptedUint);
    writeU32(os, x.digit_bits);
    writeU64(os, x.digits.size());
    for (const auto &d : x.digits)
        writeU32Vector(os, d.raw());
}

EncryptedUint
deserializeEncryptedUint(std::istream &is)
{
    expectHeader(is, SerialTag::EncryptedUint, "encrypted uint");
    EncryptedUint x;
    x.digit_bits = readU32(is);
    uint64_t n = readU64(is);
    if (n > (1u << 16))
        throw std::runtime_error("serialize: implausible digit count");
    for (uint64_t i = 0; i < n; ++i) {
        std::vector<uint32_t> raw = readU32Vector(is);
        if (raw.empty())
            throw std::runtime_error("serialize: empty digit");
        LweCiphertext ct(static_cast<uint32_t>(raw.size() - 1));
        ct.raw() = std::move(raw);
        x.digits.push_back(std::move(ct));
    }
    return x;
}

} // namespace strix
