#!/usr/bin/env python3
"""Self-test for tools/lint/strix_lint.py.

Asserts the behaviors the CI lint job depends on:

  1. the real src/ tree passes (exit 0), including the repo-wide
     [deprecated-context] scan over tests/, examples/ and bench/;
  2. the committed negative fixtures fail (exit 1) with a file:line
     diagnostic -- a secret-flow violation reporting its include
     chain, a poly -> tfhe upward include, and a test TU including
     the deprecated tfhe/context.h facade;
  3. a stale allowlist entry (a file that exists but no longer
     includes client_keyset.h) fails, so the allowlist cannot rot.

Plain unittest + subprocess: no third-party test deps, runnable as
`python3 tests/lint/test_lint.py` or through ctest.
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(REPO, "tools", "lint", "strix_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*args):
    return subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True, text=True, cwd=REPO)


class StrixLintTest(unittest.TestCase):
    def test_real_tree_passes(self):
        r = run_lint("--src", "src")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("OK", r.stdout)

    def test_secret_violation_rejected(self):
        src = os.path.join(FIXTURES, "secret_violation")
        r = run_lint("--src", src, "--allowlist=")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        # Direct include flagged with file:line...
        self.assertIn("tfhe/bootstrap.h:6: [secret-direct]", r.stdout)
        # ...the closure walk reports the offending include chain...
        self.assertIn("[secret-include]", r.stdout)
        self.assertIn("tfhe/bootstrap.h (server root)", r.stdout)
        self.assertIn("-> tfhe/client_keyset.h (included at "
                      "tfhe/bootstrap.h:6)", r.stdout)
        # ...and naming the secret type in a server TU is caught too.
        self.assertIn("[secret-name]", r.stdout)

    def test_layering_violation_rejected(self):
        src = os.path.join(FIXTURES, "layering_violation")
        r = run_lint("--src", src, "--allowlist=")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("poly/fft.cpp:3: [layering]", r.stdout)
        self.assertIn("poly/ may not include tfhe/", r.stdout)

    def test_real_tree_passes_repo_wide(self):
        # The repo-wide scan adds tests/, examples/ and bench/ to the
        # [deprecated-context] rule; the real tree must stay clean
        # (only the allowlisted facade-coverage test includes the
        # deprecated header).
        r = run_lint("--src", "src", "--repo", ".")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("OK", r.stdout)

    def test_deprecated_context_include_rejected(self):
        fixture = os.path.join(FIXTURES, "deprecated_context")
        r = run_lint("--src", os.path.join(fixture, "src"),
                     "--repo", fixture, "--allowlist=")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn(
            "tests/bad_context_test.cpp:3: [deprecated-context]",
            r.stdout)
        self.assertIn("ClientKeyset + ServerContext", r.stdout)

    def test_net_layering_violation_rejected(self):
        # The wire layer may only include common/: a net/ TU reaching
        # into tfhe/ breaks the below-the-crypto contract.
        src = os.path.join(FIXTURES, "net_layering")
        r = run_lint("--src", src, "--allowlist=")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("net/socket.cpp:3: [layering]", r.stdout)
        self.assertIn("net/ may not include tfhe/", r.stdout)

    def test_server_secret_violation_rejected(self):
        # A daemon TU including the key-owning ContextCache facade:
        # the closure walk must print the chain down to the secret
        # header, and naming the secret type is flagged separately.
        src = os.path.join(FIXTURES, "server_secret")
        r = run_lint("--src", src,
                     "--allowlist=tfhe/context_cache.h")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("[secret-include]", r.stdout)
        self.assertIn("server/server.cpp (server root)", r.stdout)
        self.assertIn("-> tfhe/context_cache.h (included at "
                      "server/server.cpp:4)", r.stdout)
        self.assertIn("-> tfhe/client_keyset.h (included at "
                      "tfhe/context_cache.h:5)", r.stdout)
        self.assertIn("server/server.cpp:9: [secret-name]", r.stdout)

    def test_tools_tree_joins_secret_checks_under_repo(self):
        # With --repo, tools/ binaries are server-side closure roots:
        # an ops tool including the secret header is rejected.
        fixture = os.path.join(FIXTURES, "tool_secret")
        r = run_lint("--src", os.path.join(fixture, "src"),
                     "--repo", fixture, "--allowlist=")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("tools/key_dumper.cpp:3: [secret-direct]",
                      r.stdout)
        self.assertIn("tools/key_dumper.cpp (server root)", r.stdout)
        # Without --repo the tools tree is out of scope: same src
        # passes clean.
        r = run_lint("--src", os.path.join(fixture, "src"),
                     "--allowlist=")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_stale_allowlist_entry_rejected(self):
        # poly/fft.h exists in the real tree but does not include
        # client_keyset.h, so allowlisting it must fail as stale.
        r = run_lint("--src", "src",
                     "--allowlist=tfhe/context.h,poly/fft.h")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("poly/fft.h:0: [allowlist-stale]", r.stdout)

    def test_missing_allowlist_entry_rejected(self):
        r = run_lint("--src", "src",
                     "--allowlist=tfhe/does_not_exist.h")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("[allowlist-stale]", r.stdout)

    def test_default_allowlist_matches_reality(self):
        # Every default-allowlist entry must still include the secret
        # header (freshness) AND every direct includer must be listed
        # (completeness) -- both are what "the allowlist matches
        # reality" means; a clean run on src asserts the conjunction.
        r = run_lint("--src", "src")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main()
