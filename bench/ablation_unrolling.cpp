/**
 * @file
 * Ablation: bootstrapping-key unrolling (the Matcha technique,
 * Sec. VII) on the Strix microarchitecture.
 *
 * Unrolling halves the blind-rotation iteration count but triples the
 * external products per iteration and grows the key 1.5x. The sweep
 * shows why Strix chose streaming batching instead: at fixed hardware
 * unrolling *loses* throughput; it only wins latency after scaling
 * the FFT/VMA complex (PLP) 3x, paying area and bandwidth.
 */

#include <cstdio>

#include "common/table.h"
#include "strix/accelerator.h"
#include "strix/area_model.h"

using namespace strix;

int
main()
{
    std::printf("=== Ablation: 2x bootstrapping-key unrolling "
                "(set I) ===\n\n");

    struct Variant
    {
        const char *name;
        bool unroll;
        uint32_t plp;
        uint32_t colp;
        double hbm;
    };
    const Variant variants[] = {
        {"Strix (baseline)", false, 2, 2, 300.0},
        {"unrolled, fixed hw", true, 2, 2, 300.0},
        {"unrolled, 3x datapaths", true, 6, 6, 300.0},
        {"unrolled, 3x dp + 4x HBM", true, 6, 6, 1200.0},
    };

    TextTable t;
    t.header({"variant", "iters", "lat ms", "PBS/s", "bsk/iter KB",
              "req BW GB/s", "core mm2"});
    for (const auto &v : variants) {
        StrixConfig cfg = StrixConfig::paperDefault();
        cfg.key_unrolling = v.unroll;
        cfg.plp = v.plp;
        cfg.colp = v.colp;
        cfg.hbm_gbps = v.hbm;
        StrixAccelerator acc(cfg);
        PbsPerf perf = acc.evaluatePbs(paramsSetI());
        UnitTiming timing(cfg, paramsSetI());
        MemorySystem mem(cfg, paramsSetI());
        ChipBreakdown area = computeChipBreakdown(cfg);
        t.row({v.name,
               std::to_string(timing.iterations()),
               TextTable::num(perf.latency_ms, 3),
               TextTable::num(perf.throughput_pbs_s, 0),
               TextTable::num(mem.bskBytesPerIteration() / 1024.0, 0),
               TextTable::num(perf.required_bw_gbps, 0),
               TextTable::num(area.core.area_mm2, 2)});
    }
    t.print();

    std::printf("\nReading: Matcha's unrolling buys single-ciphertext "
                "latency at the cost of key size, bandwidth, and "
                "area; Strix's two-level batching reaches 7.4x "
                "Matcha's throughput without it (Table V), which is "
                "why the paper leaves unrolling out.\n");
    return 0;
}
