/**
 * @file
 * Core scalar types for the TFHE scheme and the Strix simulator.
 *
 * TFHE works on the real torus T = R/Z. Following the standard
 * discretization (and the paper's 32-bit datapath, Sec. VI-A), a torus
 * element is represented as an unsigned 32-bit integer t, denoting the
 * real value t / 2^32. Addition on the torus is plain wrap-around
 * integer addition; multiplication by (signed) integers is plain
 * integer multiplication. There is no torus-torus multiplication.
 */

#ifndef STRIX_COMMON_TYPES_H
#define STRIX_COMMON_TYPES_H

#include <cstdint>
#include <cstddef>

namespace strix {

/** Discretized torus element: value / 2^32 in R/Z. */
using Torus32 = uint32_t;
/** 64-bit discretized torus element: value / 2^64 in R/Z. */
using Torus64 = uint64_t;

/** Cycle count in the hardware simulator. */
using Cycle = uint64_t;

/** Number of bits in the Torus32 representation. */
inline constexpr int kTorus32Bits = 32;

/**
 * Convert a real number in [-0.5, 0.5) (or any real; it is reduced
 * mod 1) to its closest Torus32 representation.
 */
Torus32 doubleToTorus32(double d);

/** Convert a Torus32 to the representative real value in [-0.5, 0.5). */
double torus32ToDouble(Torus32 t);

/**
 * Encode an integer message m modulo msg_space into the torus as
 * m / msg_space (rounded to the torus grid).
 *
 * @param m message, reduced modulo msg_space
 * @param msg_space size of the message space (need not divide 2^32)
 */
Torus32 encodeMessage(int64_t m, uint64_t msg_space);

/**
 * Decode a torus element back to an integer message in
 * [0, msg_space), by rounding to the nearest multiple of
 * 1/msg_space.
 */
int64_t decodeMessage(Torus32 t, uint64_t msg_space);

/**
 * Round a torus element to the nearest multiple of 2^(32 - bits),
 * i.e. keep the top @p bits bits with round-half-up carry.
 */
Torus32 roundToBits(Torus32 t, int bits);

/** Centered (signed) distance between two torus elements. */
int32_t torusDistance(Torus32 a, Torus32 b);

} // namespace strix

#endif // STRIX_COMMON_TYPES_H
