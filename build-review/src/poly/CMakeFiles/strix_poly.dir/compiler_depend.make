# Empty compiler generated dependencies file for strix_poly.
# This may be replaced when dependencies are built.
