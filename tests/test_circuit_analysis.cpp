/**
 * @file
 * CircuitAnalyzer tests: elision accounting on the paper's parameter
 * sets, decode-identity of planned vs naive evaluation (exhaustive on
 * the fast exact context), bit-identity of no-elision plans, the
 * async/BatchExecutor path, levelization unification, and the
 * infeasible-budget diagnostics contract.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "tfhe/batch_executor.h"
#include "workloads/circuit.h"
#include "workloads/circuit_analysis.h"
#include "workloads/circuit_client.h"

namespace strix {
namespace {

/** Fast zero-noise split keyset shared by the evaluation tests. */
test::TestKeys &
exactKeys()
{
    static test::TestKeys keys(test::fastParams(), test::kSeedCircuit);
    return keys;
}

std::vector<bool>
toBits(uint64_t v, uint32_t n)
{
    std::vector<bool> bits(n);
    for (uint32_t i = 0; i < n; ++i)
        bits[i] = (v >> i) & 1;
    return bits;
}

uint64_t
fromBits(const std::vector<bool> &bits)
{
    uint64_t v = 0;
    for (size_t i = 0; i < bits.size(); ++i)
        v |= uint64_t(bits[i]) << i;
    return v;
}

std::vector<LweCiphertext>
encryptBits(const std::vector<bool> &bits)
{
    std::vector<LweCiphertext> out;
    out.reserve(bits.size());
    for (bool b : bits)
        out.push_back(exactKeys().client.encryptBit(b));
    return out;
}

std::vector<bool>
decryptBits(const std::vector<LweCiphertext> &cts)
{
    std::vector<bool> out;
    out.reserve(cts.size());
    for (const auto &ct : cts)
        out.push_back(exactKeys().client.decryptBit(ct));
    return out;
}

TEST(CircuitAnalysis, Adder8ElidesAtLeastQuarterAtSetI)
{
    // The acceptance bar: on the XOR-heavy 8-bit ripple-carry adder
    // at parameter set I, at least 25% of the naive PBS ops go away
    // and the plan still proves the default 6-sigma budget.
    Circuit c = buildAdder(8);
    CircuitPlan plan = analyzeCircuit(c, paramsSetI());
    ASSERT_TRUE(plan.feasible()) << plan.summary();
    EXPECT_EQ(plan.naivePbsCount(), c.pbsCount());
    EXPECT_GE(plan.elisionRatio(), 0.25) << plan.summary();
    // With majority fusion the carry chain costs one PBS per bit:
    // And(a0,b0) + 7 majority gates.
    EXPECT_EQ(plan.pbsCount(), 8u) << plan.summary();
    EXPECT_TRUE(plan.diagnostics().empty());
}

TEST(CircuitAnalysis, XorChainNeedsNoBootstraps)
{
    // A parity tree is torus-linear end to end: every PBS elides and
    // the planned depth collapses to zero.
    Circuit c("parity4");
    Wire a = c.input(), b = c.input(), d = c.input(), e = c.input();
    Wire x1 = c.gate(GateOp::Xor, a, b);
    Wire x2 = c.gate(GateOp::Xor, d, e);
    c.output(c.gate(GateOp::Xnor, x1, x2));
    CircuitPlan plan = analyzeCircuit(c, paramsSetI());
    ASSERT_TRUE(plan.feasible()) << plan.summary();
    EXPECT_EQ(plan.pbsCount(), 0u);
    EXPECT_EQ(plan.depth(), 0u);
    EXPECT_DOUBLE_EQ(plan.elisionRatio(), 1.0);
}

TEST(CircuitAnalysis, XorFeedingAndGateIsNotElided)
{
    // A wide (+-1/4) wire would wrap And's +-1/8-grid linear form, so
    // an XOR consumed by And must keep its bootstrap.
    Circuit c("xorand");
    Wire a = c.input(), b = c.input(), d = c.input();
    Wire x = c.gate(GateOp::Xor, a, b);
    c.output(c.gate(GateOp::And, x, d));
    CircuitPlan plan = analyzeCircuit(c, paramsSetI());
    ASSERT_TRUE(plan.feasible());
    EXPECT_EQ(plan.node(x).action, PlanAction::Bootstrap);
    EXPECT_EQ(plan.pbsCount(), 2u);
}

TEST(CircuitAnalysis, FusionToggleChangesAccounting)
{
    Circuit c = buildAdder(8);
    AnalysisOptions no_fuse;
    no_fuse.fuse_majority = false;
    CircuitPlan fused = analyzeCircuit(c, paramsSetI());
    CircuitPlan plain = analyzeCircuit(c, paramsSetI(), no_fuse);
    ASSERT_TRUE(fused.feasible());
    ASSERT_TRUE(plain.feasible());
    // Majority fusion strictly reduces the surviving PBS count (it
    // also unlocks the carry-chain XOR elisions).
    EXPECT_LT(fused.pbsCount(), plain.pbsCount());
    AnalysisOptions off;
    off.elide = false;
    off.fuse_majority = false;
    CircuitPlan naive = analyzeCircuit(c, paramsSetI(), off);
    EXPECT_EQ(naive.pbsCount(), c.pbsCount());
    EXPECT_EQ(naive.elidedPbs(), 0u);
}

TEST(CircuitAnalysis, PlannedLevelsMatchNaiveDepthWithoutElision)
{
    // Satellite: one level computation. A no-elision plan must agree
    // with Circuit::depth()/toWorkloadGraph() everywhere.
    Circuit c = buildAdder(4);
    AnalysisOptions off;
    off.elide = false;
    off.fuse_majority = false;
    CircuitPlan plan = analyzeCircuit(c, paramsSetI(), off);
    EXPECT_EQ(plan.depth(), c.depth());
    WorkloadGraph naive_g = c.toWorkloadGraph();
    WorkloadGraph plan_g = c.toWorkloadGraph(plan);
    ASSERT_EQ(plan_g.layers().size(), naive_g.layers().size());
    for (size_t i = 0; i < plan_g.layers().size(); ++i)
        EXPECT_EQ(plan_g.layers()[i].pbs_count,
                  naive_g.layers()[i].pbs_count)
            << "layer " << i;
}

TEST(CircuitAnalysis, PlannedWorkloadGraphCountsSurvivingPbsOnly)
{
    Circuit c = buildAdder(8);
    CircuitPlan plan = analyzeCircuit(c, paramsSetI());
    WorkloadGraph g = c.toWorkloadGraph(plan);
    EXPECT_EQ(g.totalPbs(), plan.pbsCount());
    EXPECT_EQ(g.layers().size(), plan.depth());
}

TEST(CircuitAnalysis, NoElisionPlanIsBitIdenticalToNaive)
{
    // With nothing elided and no MUX, the planned path runs the exact
    // linear forms gates.cpp runs and bootstrapBatch is documented
    // bit-identical to bootstrap -- so ciphertexts must match raw.
    const uint32_t bits = 2;
    Circuit c = buildAdder(bits);
    AnalysisOptions off;
    off.elide = false;
    off.fuse_majority = false;
    CircuitPlan plan = analyzeCircuit(c, exactKeys().server.params(), off);
    ASSERT_TRUE(plan.feasible());
    auto in = encryptBits(toBits(0b1011, 2 * bits));
    auto naive = c.evalEncrypted(exactKeys().server, in);
    auto planned = c.evalEncrypted(exactKeys().server, in, plan);
    ASSERT_EQ(planned.size(), naive.size());
    for (size_t i = 0; i < naive.size(); ++i)
        EXPECT_EQ(planned[i].raw(), naive[i].raw()) << "output " << i;
}

TEST(CircuitAnalysis, PlannedAdderDecodesIdenticallyExhaustive)
{
    const uint32_t bits = 2;
    Circuit c = buildAdder(bits);
    CircuitPlan plan = analyzeCircuit(c, exactKeys().server.params());
    ASSERT_TRUE(plan.feasible()) << plan.summary();
    EXPECT_GT(plan.elidedPbs(), 0u);
    for (uint64_t a = 0; a < 4; ++a)
        for (uint64_t b = 0; b < 4; ++b) {
            auto in = encryptBits(toBits(a | (b << bits), 2 * bits));
            auto naive =
                decryptBits(c.evalEncrypted(exactKeys().server, in));
            auto planned = decryptBits(
                c.evalEncrypted(exactKeys().server, in, plan));
            EXPECT_EQ(planned, naive) << a << "+" << b;
            EXPECT_EQ(fromBits(planned), a + b) << a << "+" << b;
        }
}

TEST(CircuitAnalysis, PlannedComparatorAndMuxDecodeIdentically)
{
    // Exhaustive over a circuit mixing AndNY/Xnor/Or (less-than) and
    // a MUX consumer, which exercises the two-PBS sweep entries.
    const uint32_t bits = 2;
    Circuit c("ltmux");
    std::vector<Wire> a(bits), b(bits);
    for (uint32_t i = 0; i < bits; ++i)
        a[i] = c.input();
    for (uint32_t i = 0; i < bits; ++i)
        b[i] = c.input();
    Wire lt = c.gate(GateOp::AndNY, a[0], b[0]);
    for (uint32_t i = 1; i < bits; ++i) {
        Wire bi_gt = c.gate(GateOp::AndNY, a[i], b[i]);
        Wire eq = c.gate(GateOp::Xnor, a[i], b[i]);
        Wire keep = c.gate(GateOp::And, eq, lt);
        lt = c.gate(GateOp::Or, bi_gt, keep);
    }
    c.output(lt);
    c.output(c.mux(lt, a[0], b[0])); // min(a,b) bit 0
    CircuitPlan plan = analyzeCircuit(c, exactKeys().server.params());
    ASSERT_TRUE(plan.feasible()) << plan.summary();
    for (uint64_t av = 0; av < 4; ++av)
        for (uint64_t bv = 0; bv < 4; ++bv) {
            auto in = encryptBits(toBits(av | (bv << bits), 2 * bits));
            auto naive =
                decryptBits(c.evalEncrypted(exactKeys().server, in));
            auto planned = decryptBits(
                c.evalEncrypted(exactKeys().server, in, plan));
            EXPECT_EQ(planned, naive) << av << "<" << bv;
            EXPECT_EQ(planned[0], av < bv);
        }
}

TEST(CircuitAnalysis, AsyncPathMatchesSyncBitForBit)
{
    // submitBootstrap without an executor runs inline and is
    // documented bit-identical; the async planned path must therefore
    // reproduce the sync planned ciphertexts exactly.
    const uint32_t bits = 2;
    Circuit c = buildAdder(bits);
    CircuitPlan plan = analyzeCircuit(c, exactKeys().server.params());
    auto in = encryptBits(toBits(0b0111, 2 * bits));
    auto sync_out = c.evalEncrypted(exactKeys().server, in, plan);
    auto async_out = c.evalEncryptedAsync(exactKeys().server, in, plan);
    ASSERT_EQ(async_out.size(), sync_out.size());
    for (size_t i = 0; i < sync_out.size(); ++i)
        EXPECT_EQ(async_out[i].raw(), sync_out[i].raw());
}

TEST(CircuitAnalysis, AsyncPathCoalescesThroughBatchExecutor)
{
    const uint32_t bits = 2;
    Circuit c = buildAdder(bits);
    CircuitPlan plan = analyzeCircuit(c, exactKeys().server.params());
    auto exec = std::make_shared<BatchExecutor>([] {
        BatchExecutor::Options o;
        o.target_batch = 4;
        o.flush_delay_us = 0; // flush on the dispatcher's next pass
        return o;
    }());
    ServerContext session(exactKeys().client.evalKeys());
    session.attachExecutor(exec);
    auto in = encryptBits(toBits(0b1001, 2 * bits));
    auto naive = decryptBits(c.evalEncrypted(exactKeys().server, in));
    auto coalesced = decryptBits(c.evalEncryptedAsync(session, in, plan));
    EXPECT_EQ(coalesced, naive);
    EXPECT_GT(exec->stats().submitted, 0u);
    session.attachExecutor(nullptr);
}

TEST(CircuitAnalysis, InfeasibleBudgetRejectsWithWireChain)
{
    // An absurd z cannot be met even with every gate bootstrapped:
    // the analyzer must refuse (not silently under-bootstrap) and
    // name the offending wire with a chain of noise contributors.
    Circuit c = buildAdder(2);
    AnalysisOptions opts;
    opts.z = 1e9;
    CircuitPlan plan = analyzeCircuit(c, paramsSetI(), opts);
    EXPECT_FALSE(plan.feasible());
    ASSERT_FALSE(plan.diagnostics().empty());
    const std::string &diag = plan.diagnostics().front();
    EXPECT_NE(diag.find("[budget-infeasible]"), std::string::npos) << diag;
    EXPECT_NE(diag.find("adder2:w"), std::string::npos) << diag;
    EXPECT_NE(diag.find("wire chain:"), std::string::npos) << diag;
    EXPECT_NE(diag.find("-> w"), std::string::npos) << diag;
    EXPECT_NE(plan.summary().find("INFEASIBLE"), std::string::npos);
}

TEST(CircuitAnalysisDeathTest, EvalRejectsInfeasiblePlan)
{
    Circuit c = buildAdder(2);
    AnalysisOptions opts;
    opts.z = 1e9;
    CircuitPlan plan = analyzeCircuit(c, exactKeys().server.params(), opts);
    ASSERT_FALSE(plan.feasible());
    auto in = encryptBits(toBits(0, 4));
    EXPECT_DEATH(c.evalEncrypted(exactKeys().server, in, plan),
                 "infeasible");
}

TEST(CircuitAnalysisDeathTest, EvalRejectsForeignPlan)
{
    Circuit small = buildAdder(2);
    Circuit big = buildAdder(4);
    CircuitPlan plan = analyzeCircuit(small, exactKeys().server.params());
    auto in = encryptBits(toBits(0, 8));
    EXPECT_DEATH(big.evalEncrypted(exactKeys().server, in, plan),
                 "another circuit");
}

TEST(CircuitAnalysis, CheapestSufficientUnelidePinsSharedTrunk)
{
    // Three elided XOR chains: a noisy decoy, a shared trunk, and a
    // cheap arm. Both surviving bootstraps Xor(trunk, decoy) and
    // Xor(trunk, cheap) overdraw a budget tuned so that un-eliding
    // the shared trunk alone restores both, while the greedy
    // max-variance policy pins the decoy first (fixing only one
    // sink) and must spend a second PBS on the trunk anyway.
    const NoiseModel model(paramsSetI());
    const double V = 100.0 * std::max({model.pbsOutput(),
                                       model.freshLwe(),
                                       model.modSwitch()});
    // A chain of k XORs over variance-V inputs accumulates 4V(k+1):
    // decoy 20V > trunk 16V > cheap 12V. Budget b^2 = 26V sits
    // between the unpinned linear forms (36V, 28V) and the
    // trunk-pinned ones (~20V, ~12V), with modSwitch/pbsOutput terms
    // at most V/25 of slack.
    Circuit c("unelide");
    auto chain = [&c](int stages) {
        Wire w = c.gate(GateOp::Xor, c.input(), c.input());
        for (int i = 1; i < stages; ++i)
            w = c.gate(GateOp::Xor, w, c.input());
        return w;
    };
    Wire decoy = chain(4);
    Wire trunk = chain(3);
    Wire cheap = chain(2);
    // Built first = lower wire id = the front violation the revert
    // step reasons about; its cone holds both decoy and trunk.
    Wire x1 = c.gate(GateOp::Xor, trunk, decoy);
    Wire x2 = c.gate(GateOp::Xor, trunk, cheap);
    c.output(c.gate(GateOp::And, x1, c.input()));
    c.output(c.gate(GateOp::And, x2, c.input()));

    AnalysisOptions opts;
    opts.input_variance = V;
    opts.z = 0.25 / std::sqrt(26.0 * V); // decodableStddev(2,z)^2=26V

    AnalysisOptions greedy = opts;
    greedy.unelide = UnelidePolicy::MaxVariance;
    CircuitPlan legacy = analyzeCircuit(c, paramsSetI(), greedy);
    ASSERT_TRUE(legacy.feasible()) << legacy.summary();
    CircuitPlan cost = analyzeCircuit(c, paramsSetI(), opts);
    ASSERT_TRUE(cost.feasible()) << cost.summary();

    // One shared pin beats two greedy ones: x1 + x2 + two output
    // Ands + trunk = 5 PBS, versus greedy's decoy + trunk = 6.
    EXPECT_EQ(cost.pbsCount(), 5u) << cost.summary();
    EXPECT_EQ(legacy.pbsCount(), 6u) << legacy.summary();
    EXPECT_LT(cost.pbsCount(), legacy.pbsCount());
    EXPECT_EQ(cost.node(trunk).action, PlanAction::Bootstrap);
    EXPECT_EQ(cost.node(decoy).action, PlanAction::Linear);
    EXPECT_EQ(legacy.node(trunk).action, PlanAction::Bootstrap);
    EXPECT_EQ(legacy.node(decoy).action, PlanAction::Bootstrap);
}

TEST(CircuitAnalysis, PredictedStddevTracksEncodingAndSummary)
{
    Circuit c = buildAdder(8);
    CircuitPlan plan = analyzeCircuit(c, paramsSetI());
    const NoiseModel model(paramsSetI());
    for (Wire w : c.outputs()) {
        const CircuitPlan::Node &n = plan.node(w);
        const uint64_t space =
            n.encoding == WireEncoding::Wide4 ? 2 : 4;
        EXPECT_LT(plan.predictedStddev(w),
                  NoiseModel::decodableStddev(space, plan.z()))
            << "output wire " << w;
    }
    // Elided sum bits are wide (two bootstrapped operands, weight 1
    // each): variance 2 * pbsOutput plus the fused-carry combination.
    EXPECT_NE(plan.summary().find("adder8"), std::string::npos);
    EXPECT_NE(plan.summary().find("8/37"), std::string::npos)
        << plan.summary();
    (void)model;
}

} // namespace
} // namespace strix
