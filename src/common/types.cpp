/**
 * @file
 * Implementation of torus conversion helpers.
 */

#include "common/types.h"

#include <cmath>

namespace strix {

Torus32
doubleToTorus32(double d)
{
    // Reduce to [0, 1) then scale to 2^32. Using 64-bit intermediate
    // keeps the rounding exact for all doubles with |d| < 2^31.
    double frac = d - std::floor(d);
    double scaled = frac * 4294967296.0; // 2^32
    // Round-to-nearest; 2^32 wraps to 0 on the torus.
    auto v = static_cast<uint64_t>(std::llround(scaled));
    return static_cast<Torus32>(v);
}

double
torus32ToDouble(Torus32 t)
{
    // Interpret as signed to obtain the centered representative.
    auto s = static_cast<int32_t>(t);
    return static_cast<double>(s) / 4294967296.0;
}

Torus32
encodeMessage(int64_t m, uint64_t msg_space)
{
    // m / msg_space on the torus; handles msg_space that does not
    // divide 2^32 by rounding.
    // Reduce m into [0, msg_space).
    int64_t r = m % static_cast<int64_t>(msg_space);
    if (r < 0)
        r += static_cast<int64_t>(msg_space);
    // (r * 2^32) / msg_space, rounded, using 128-bit arithmetic.
    unsigned __int128 num =
        (static_cast<unsigned __int128>(r) << 32) + msg_space / 2;
    return static_cast<Torus32>(num / msg_space);
}

int64_t
decodeMessage(Torus32 t, uint64_t msg_space)
{
    // round(t * msg_space / 2^32) mod msg_space
    unsigned __int128 num =
        static_cast<unsigned __int128>(t) * msg_space +
        (static_cast<unsigned __int128>(1) << 31);
    auto m = static_cast<uint64_t>(num >> 32);
    return static_cast<int64_t>(m % msg_space);
}

Torus32
roundToBits(Torus32 t, int bits)
{
    if (bits >= kTorus32Bits)
        return t;
    Torus32 half = Torus32{1} << (kTorus32Bits - bits - 1);
    Torus32 mask = ~((Torus32{1} << (kTorus32Bits - bits)) - 1);
    return (t + half) & mask;
}

int32_t
torusDistance(Torus32 a, Torus32 b)
{
    return static_cast<int32_t>(a - b);
}

} // namespace strix
