/**
 * @file
 * ServerContext implementation.
 */

#include "tfhe/server_context.h"

#include "common/logging.h"
#include "poly/negacyclic_fft.h"
#include "tfhe/batch_executor.h"

namespace strix {

namespace {

const TfheParams &
checkedParams(const std::shared_ptr<const EvalKeys> &keys)
{
    panicIfNot(keys != nullptr, "ServerContext: null EvalKeys bundle");
    return keys->params();
}

} // namespace

ServerContext::FftPrewarm::FftPrewarm(const TfheParams &p)
{
    NegacyclicFft::prewarm(p.N);
}

ServerContext::ServerContext(std::shared_ptr<const EvalKeys> keys)
    : keys_(std::move(keys)), fft_prewarm_(checkedParams(keys_))
{
}

std::shared_ptr<ThreadPool>
ServerContext::pool() const
{
    MutexLock lock(pool_mutex_);
    if (!pool_)
        pool_ = std::make_shared<ThreadPool>(batch_threads_);
    return pool_;
}

void
ServerContext::setBatchThreads(unsigned threads)
{
    MutexLock lock(pool_mutex_);
    batch_threads_ = threads;
    if (pool_) // already spun up: publish a replacement at the new size
        pool_ = std::make_shared<ThreadPool>(threads);
}

unsigned
ServerContext::batchThreads() const
{
    MutexLock lock(pool_mutex_);
    return batch_threads_ != 0 ? batch_threads_
                               : ThreadPool::defaultThreadCount();
}

LweCiphertext
ServerContext::bootstrap(const LweCiphertext &ct,
                         const TorusPolynomial &test_vector) const
{
    LweCiphertext big =
        programmableBootstrap(ct, test_vector, keys_->bsk());
    return keySwitch(big, keys_->ksk());
}

LweCiphertext
ServerContext::applyLut(const LweCiphertext &ct, uint64_t msg_space,
                        const std::function<int64_t(int64_t)> &f) const
{
    TorusPolynomial tv = makeIntTestVector(params().N, msg_space, f);
    return bootstrap(ct, tv);
}

std::vector<LweCiphertext>
ServerContext::bootstrapBatch(const LweCiphertext *cts, size_t count,
                              const TorusPolynomial &test_vector) const
{
    std::shared_ptr<ThreadPool> pool = this->pool();
    std::vector<LweCiphertext> out(count);
    // One scratch per worker: blind rotation allocates nothing and
    // shares nothing, so workers never touch common mutable state.
    std::vector<PbsScratch> scratch(pool->threads());
    pool->parallelFor(count, [&](size_t i, unsigned worker) {
        LweCiphertext big = programmableBootstrap(
            cts[i], test_vector, keys_->bsk(), scratch[worker]);
        out[i] = keySwitch(big, keys_->ksk());
    });
    return out;
}

std::vector<LweCiphertext>
ServerContext::bootstrapBatch(const std::vector<LweCiphertext> &cts,
                              const TorusPolynomial &test_vector) const
{
    return bootstrapBatch(cts.data(), cts.size(), test_vector);
}

std::vector<LweCiphertext>
ServerContext::bootstrapBatch(const LweCiphertext *cts,
                              const TorusPolynomial *const *tvs,
                              size_t count) const
{
    for (size_t i = 0; i < count; ++i)
        panicIfNot(tvs[i] != nullptr,
                   "bootstrapBatch: null test-vector pointer");
    std::shared_ptr<ThreadPool> pool = this->pool();
    std::vector<LweCiphertext> out(count);
    std::vector<PbsScratch> scratch(pool->threads());
    pool->parallelFor(count, [&](size_t i, unsigned worker) {
        LweCiphertext big = programmableBootstrap(
            cts[i], *tvs[i], keys_->bsk(), scratch[worker]);
        out[i] = keySwitch(big, keys_->ksk());
    });
    return out;
}

void
ServerContext::attachExecutor(std::shared_ptr<BatchExecutor> executor)
{
    MutexLock lock(pool_mutex_);
    executor_ = std::move(executor);
}

std::shared_ptr<BatchExecutor>
ServerContext::executor() const
{
    MutexLock lock(pool_mutex_);
    return executor_;
}

std::future<LweCiphertext>
ServerContext::submitBootstrap(const LweCiphertext &ct,
                               const TorusPolynomial &test_vector) const
{
    if (std::shared_ptr<BatchExecutor> exec = executor())
        return exec->submit(keys_, ct, test_vector);
    // No executor attached: evaluate inline and hand back a ready
    // future, so call sites written against the async API keep
    // working (and stay bit-identical) in single-session setups.
    std::promise<LweCiphertext> result;
    result.set_value(bootstrap(ct, test_vector));
    return result.get_future();
}

std::future<LweCiphertext>
ServerContext::submitApplyLut(const LweCiphertext &ct, uint64_t msg_space,
                              const std::function<int64_t(int64_t)> &f) const
{
    return submitBootstrap(ct,
                           makeIntTestVector(params().N, msg_space, f));
}

std::vector<LweCiphertext>
ServerContext::applyLutBatch(const std::vector<LweCiphertext> &cts,
                             uint64_t msg_space,
                             const std::function<int64_t(int64_t)> &f) const
{
    TorusPolynomial tv = makeIntTestVector(params().N, msg_space, f);
    return bootstrapBatch(cts, tv);
}

} // namespace strix
