/**
 * @file
 * Reference gadget decomposition via the offset trick.
 */

#include "tfhe/decompose.h"

#include "common/logging.h"

namespace strix {

namespace {

/**
 * Offset adding B/2 at every level: after adding it, plain unsigned
 * digit extraction yields digit+B/2, so subtracting B/2 recovers
 * balanced digits with the carries handled implicitly by the addition.
 */
Torus32
decompOffset(const GadgetParams &g)
{
    Torus32 off = 0;
    for (uint32_t j = 1; j <= g.levels; ++j)
        off += (g.base() / 2) * g.levelScale(j);
    return off;
}

} // namespace

void
gadgetDecompose(int32_t *digits, Torus32 a, const GadgetParams &g)
{
    panicIfNot(g.base_bits * g.levels <= 32, "gadget exceeds torus width");
    // Round to the nearest multiple of q/B^l.
    Torus32 rounded = roundToBits(a, g.base_bits * g.levels);
    Torus32 shifted = rounded + decompOffset(g);
    const uint32_t mask = g.base() - 1;
    const int32_t half = static_cast<int32_t>(g.base() / 2);
    for (uint32_t j = 1; j <= g.levels; ++j) {
        uint32_t shift = kTorus32Bits - j * g.base_bits;
        digits[j - 1] =
            static_cast<int32_t>((shifted >> shift) & mask) - half;
    }
}

Torus32
gadgetRecompose(const int32_t *digits, const GadgetParams &g)
{
    Torus32 acc = 0;
    for (uint32_t j = 1; j <= g.levels; ++j)
        acc += static_cast<uint32_t>(digits[j - 1]) * g.levelScale(j);
    return acc;
}

namespace {

/**
 * Hoisted per-level digit extraction shared by both poly decomposers:
 * all round/offset/mask constants are computed once per call, and one
 * level() invocation fills one level's digit row. This is the hot
 * path of every blind-rotation iteration.
 */
struct HoistedDecompose
{
    explicit HoistedDecompose(const GadgetParams &g)
        : base_bits(g.base_bits), offset(decompOffset(g)),
          mask(g.base() - 1), half(static_cast<int32_t>(g.base() / 2))
    {
        const uint32_t keep = g.base_bits * g.levels;
        half_ulp =
            keep >= 32 ? 0 : (Torus32{1} << (kTorus32Bits - keep - 1));
        round_mask =
            keep >= 32 ? ~Torus32{0}
                       : ~((Torus32{1} << (kTorus32Bits - keep)) - 1);
    }

    void level(int32_t *dst, const Torus32 *src, size_t n,
               uint32_t j) const
    {
        const uint32_t shift = kTorus32Bits - j * base_bits;
        for (size_t i = 0; i < n; ++i) {
            Torus32 shifted =
                (((src[i] + half_ulp) & round_mask) + offset);
            dst[i] = static_cast<int32_t>((shifted >> shift) & mask) -
                     half;
        }
    }

    uint32_t base_bits;
    Torus32 offset;
    uint32_t mask;
    int32_t half;
    Torus32 half_ulp;
    Torus32 round_mask;
};

} // namespace

void
gadgetDecomposePoly(std::vector<IntPolynomial> &out,
                    const TorusPolynomial &poly, const GadgetParams &g)
{
    const size_t n = poly.size();
    if (out.size() != g.levels || out[0].size() != n)
        out.assign(g.levels, IntPolynomial(n));

    const HoistedDecompose h(g);
    for (uint32_t j = 1; j <= g.levels; ++j)
        h.level(out[j - 1].data(), poly.data(), n, j);
}

void
gadgetDecomposePolyInto(int32_t *out, const TorusPolynomial &poly,
                        const GadgetParams &g)
{
    const size_t n = poly.size();
    const HoistedDecompose h(g);
    for (uint32_t j = 1; j <= g.levels; ++j)
        h.level(out + size_t(j - 1) * n, poly.data(), n, j);
}

} // namespace strix
