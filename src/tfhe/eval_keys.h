/**
 * @file
 * EvalKeys: the public evaluation-key bundle a client ships to a
 * server.
 *
 * A TFHE deployment separates two roles (the paper's Fig. 1): the
 * *client* owns the secret keys and encrypts/decrypts; the *server*
 * evaluates PBS streams holding only public key material -- the
 * bootstrapping key (BSK) and the keyswitching key (KSK). EvalKeys is
 * exactly that server-side bundle: parameters + BSK + KSK, immutable
 * after construction, shared by `std::shared_ptr` so any number of
 * ServerContexts (and the ContextCache) reference one copy with zero
 * key duplication.
 *
 * EvalKeys contains no secret key and no RNG; code that only sees an
 * EvalKeys (or a ServerContext built on one) provably cannot decrypt.
 * Bundles serialize through the framing in serialize.h
 * (`serialize(os, keys)` / `deserializeEvalKeys(is)`), so a client
 * can export its evaluation keys to a remote server byte-exactly:
 * the frequency-domain BSK rows round-trip bit-for-bit, making
 * evaluation under a deserialized bundle bit-identical to evaluation
 * under the original.
 */

#ifndef STRIX_TFHE_EVAL_KEYS_H
#define STRIX_TFHE_EVAL_KEYS_H

#include <memory>

#include "tfhe/bootstrap.h"
#include "tfhe/keyswitch.h"

namespace strix {

/**
 * Immutable public evaluation-key bundle: parameters, bootstrapping
 * key, keyswitching key. Thread-safe by construction (all accessors
 * are const and the state never changes after the constructor).
 */
class EvalKeys
{
  public:
    /**
     * Bundle @p bsk and @p ksk generated for @p params. Panics if the
     * key shapes do not match the parameter set (a mismatched bundle
     * would silently produce garbage ciphertexts).
     */
    EvalKeys(TfheParams params, BootstrappingKey bsk, KeySwitchKey ksk);

    const TfheParams &params() const { return params_; }
    const BootstrappingKey &bsk() const { return bsk_; }
    const KeySwitchKey &ksk() const { return ksk_; }

    /** Approximate in-memory bundle size (time-domain equivalent). */
    uint64_t bytes() const
    {
        return params_.bskBytes() + params_.kskBytes();
    }

  private:
    TfheParams params_;
    BootstrappingKey bsk_;
    KeySwitchKey ksk_;
};

} // namespace strix

#endif // STRIX_TFHE_EVAL_KEYS_H
