file(REMOVE_RECURSE
  "CMakeFiles/strix_poly.dir/complex_fft.cpp.o"
  "CMakeFiles/strix_poly.dir/complex_fft.cpp.o.d"
  "CMakeFiles/strix_poly.dir/negacyclic_fft.cpp.o"
  "CMakeFiles/strix_poly.dir/negacyclic_fft.cpp.o.d"
  "CMakeFiles/strix_poly.dir/polynomial.cpp.o"
  "CMakeFiles/strix_poly.dir/polynomial.cpp.o.d"
  "libstrix_poly.a"
  "libstrix_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strix_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
