/**
 * @file
 * Bootstrapped boolean gates (the TFHE gate-bootstrapping API).
 *
 * Booleans are encoded as mu = +-1/8. Each binary gate computes a
 * linear combination whose phase sign encodes the result, then runs a
 * *sign bootstrap* (constant test vector 1/8) followed by keyswitching
 * -- the PBS + KS pipeline the paper's Fig. 1 breaks down.
 *
 * Gates evaluate against a ServerContext (public evaluation keys
 * only): the type system guarantees gate evaluation never touches a
 * secret key. A TfheContext facade converts implicitly.
 */

#ifndef STRIX_TFHE_GATES_H
#define STRIX_TFHE_GATES_H

#include "tfhe/server_context.h"

namespace strix {

/** Bootstrapped NAND. */
LweCiphertext gateNand(const ServerContext &ctx, const LweCiphertext &a,
                       const LweCiphertext &b);
/** Bootstrapped AND. */
LweCiphertext gateAnd(const ServerContext &ctx, const LweCiphertext &a,
                      const LweCiphertext &b);
/** Bootstrapped OR. */
LweCiphertext gateOr(const ServerContext &ctx, const LweCiphertext &a,
                     const LweCiphertext &b);
/** Bootstrapped NOR. */
LweCiphertext gateNor(const ServerContext &ctx, const LweCiphertext &a,
                      const LweCiphertext &b);
/** Bootstrapped XOR. */
LweCiphertext gateXor(const ServerContext &ctx, const LweCiphertext &a,
                      const LweCiphertext &b);
/** Bootstrapped XNOR. */
LweCiphertext gateXnor(const ServerContext &ctx, const LweCiphertext &a,
                       const LweCiphertext &b);
/** Bootstrapped ANDNY: (not a) and b. */
LweCiphertext gateAndNY(const ServerContext &ctx, const LweCiphertext &a,
                        const LweCiphertext &b);
/** Bootstrapped ANDYN: a and (not b). */
LweCiphertext gateAndYN(const ServerContext &ctx, const LweCiphertext &a,
                        const LweCiphertext &b);
/** Bootstrapped ORNY: (not a) or b. */
LweCiphertext gateOrNY(const ServerContext &ctx, const LweCiphertext &a,
                       const LweCiphertext &b);
/** Bootstrapped ORYN: a or (not b). */
LweCiphertext gateOrYN(const ServerContext &ctx, const LweCiphertext &a,
                       const LweCiphertext &b);
/** NOT: free (negation), no bootstrap. */
LweCiphertext gateNot(const LweCiphertext &a);
/** MUX(a, b, c) = a ? b : c. Two bootstraps plus one keyswitch. */
LweCiphertext gateMux(const ServerContext &ctx, const LweCiphertext &a,
                      const LweCiphertext &b, const LweCiphertext &c);

/**
 * Instrumentation hooks: cumulative wall time spent in each gate
 * phase, used by the Fig. 1 workload-breakdown bench. Reset with
 * gateStatsReset().
 */
struct GateStats
{
    double rotate_s = 0.0;     //!< blind-rotation rotate/subtract
    double decompose_s = 0.0;  //!< gadget decomposition
    double fft_s = 0.0;        //!< forward FFT
    double vecmult_s = 0.0;    //!< frequency-domain multiply-accumulate
    double ifft_accum_s = 0.0; //!< inverse FFT + time-domain accumulate
    double other_pbs_s = 0.0;  //!< modswitch, sample extract, misc
    double keyswitch_s = 0.0;  //!< keyswitching
    double linear_s = 0.0;     //!< gate linear combination

    double pbsTotal() const
    {
        return rotate_s + decompose_s + fft_s + vecmult_s + ifft_accum_s +
               other_pbs_s;
    }
    double total() const { return pbsTotal() + keyswitch_s + linear_s; }
};

/** Enable/disable timing instrumentation (off by default). */
void gateStatsEnable(bool on);
/** Reset the cumulative counters. */
void gateStatsReset();
/** Read the cumulative counters. */
const GateStats &gateStats();

/**
 * Instrumented gate bootstrap used by the Fig. 1 bench: identical
 * computation to blindRotate/keySwitch but with per-phase timers.
 */
LweCiphertext instrumentedGateBootstrap(const ServerContext &ctx,
                                        const LweCiphertext &linear);

} // namespace strix

#endif // STRIX_TFHE_GATES_H
