/**
 * @file
 * ASCII table printer used by the benchmark harnesses to print the
 * paper's tables/figures as aligned rows (paper value vs measured).
 */

#ifndef STRIX_COMMON_TABLE_H
#define STRIX_COMMON_TABLE_H

#include <string>
#include <vector>

namespace strix {

/**
 * Collects rows of strings and prints them with per-column alignment.
 * Numeric-looking cells are right-aligned; everything else is
 * left-aligned.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cols);

    /** Append a data row. */
    void row(std::vector<std::string> cols);

    /** Append a horizontal separator. */
    void separator();

    /** Render to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    /** Format helper: integer with thousands separators. */
    static std::string numSep(uint64_t v);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool is_separator = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace strix

#endif // STRIX_COMMON_TABLE_H
