/**
 * @file
 * Property-style sweeps: exact PBS across ring shapes (including
 * k = 2), and monotonicity laws of the accelerator model.
 */

#include <gtest/gtest.h>

#include "strix/accelerator.h"
#include "strix/area_model.h"
#include "support/test_util.h"

namespace strix {
namespace {

struct PbsShape
{
    uint32_t n, big_n, k, l, bg;
};

class PbsShapeSweep : public ::testing::TestWithParam<PbsShape>
{
};

TEST_P(PbsShapeSweep, ExactLutAcrossShapes)
{
    const PbsShape s = GetParam();
    test::TestKeys keys(testParams(s.n, s.big_n, s.k, s.l, s.bg, 0.0),
                        7000 + s.n + s.big_n + s.k);
    const uint64_t space = 8;
    for (int64_t m : {0, 3, 7}) {
        auto ct = keys.client.encryptInt(m, space);
        auto out = keys.server.applyLut(
            ct, space, [](int64_t x) { return (3 * x + 2) % 8; });
        EXPECT_EQ(keys.client.decryptInt(out, space), (3 * m + 2) % 8)
            << "m=" << m << " n=" << s.n << " N=" << s.big_n
            << " k=" << s.k << " l=" << s.l;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PbsShapeSweep,
    ::testing::Values(PbsShape{8, 128, 1, 2, 10},
                      PbsShape{16, 256, 1, 3, 8},
                      PbsShape{16, 256, 2, 2, 10}, // k = 2 ring
                      PbsShape{12, 512, 2, 3, 8},
                      PbsShape{32, 1024, 1, 2, 10},
                      PbsShape{8, 128, 3, 2, 10}), // k = 3 ring
    [](const auto &info) {
        const PbsShape &s = info.param;
        return "n" + std::to_string(s.n) + "N" +
               std::to_string(s.big_n) + "k" + std::to_string(s.k) +
               "l" + std::to_string(s.l);
    });

TEST(AcceleratorProperties, ThroughputMonotoneInCores)
{
    double prev = 0.0;
    for (uint32_t tvlp : {1u, 2u, 4u, 8u, 16u}) {
        StrixConfig cfg = StrixConfig::paperDefault();
        cfg.tvlp = tvlp;
        double tp =
            StrixAccelerator(cfg).evaluatePbs(paramsSetII())
                .throughput_pbs_s;
        EXPECT_GT(tp, prev) << tvlp;
        prev = tp;
    }
}

TEST(AcceleratorProperties, LatencyNonIncreasingInClp)
{
    double prev = 1e30;
    for (uint32_t clp : {2u, 4u, 8u, 16u}) {
        StrixConfig cfg = StrixConfig::paperDefault();
        cfg.clp = clp;
        double lat =
            StrixAccelerator(cfg).evaluatePbs(paramsSetI()).latency_ms;
        EXPECT_LE(lat, prev * 1.0001) << clp;
        prev = lat;
    }
}

TEST(AcceleratorProperties, ThroughputMonotoneInParameterWeight)
{
    // Heavier parameter sets (more iterations x bigger transforms)
    // can never be faster.
    StrixAccelerator acc;
    double tp_i = acc.evaluatePbs(paramsSetI()).throughput_pbs_s;
    double tp_ii = acc.evaluatePbs(paramsSetII()).throughput_pbs_s;
    double tp_iii = acc.evaluatePbs(paramsSetIII()).throughput_pbs_s;
    double tp_iv = acc.evaluatePbs(paramsSetIV()).throughput_pbs_s;
    EXPECT_GT(tp_i, tp_ii);
    EXPECT_GT(tp_ii, tp_iii);
    EXPECT_GT(tp_iii, tp_iv);
}

TEST(AcceleratorProperties, BatchTimeSuperadditive)
{
    // Splitting a batch into two runs can never be faster than one
    // run (fragmentation only hurts).
    StrixAccelerator acc;
    Rng rng(33);
    for (int trial = 0; trial < 10; ++trial) {
        uint64_t a = 1 + rng.uniformBelow(2000);
        uint64_t b = 1 + rng.uniformBelow(2000);
        double together = acc.runBatch(paramsSetI(), a + b).seconds;
        double split = acc.runBatch(paramsSetI(), a).seconds +
                       acc.runBatch(paramsSetI(), b).seconds;
        EXPECT_LE(together, split * 1.0001) << a << "+" << b;
    }
}

TEST(AcceleratorProperties, AreaMonotoneInEveryKnob)
{
    ChipBreakdown base =
        computeChipBreakdown(StrixConfig::paperDefault());
    for (auto mutate : {+[](StrixConfig &c) { c.tvlp *= 2; },
                        +[](StrixConfig &c) { c.clp *= 2; },
                        +[](StrixConfig &c) { c.plp *= 2; },
                        +[](StrixConfig &c) { c.colp *= 2; },
                        +[](StrixConfig &c) { c.global_scratch_mb *= 2; }}) {
        StrixConfig cfg = StrixConfig::paperDefault();
        mutate(cfg);
        EXPECT_GT(computeChipBreakdown(cfg).total.area_mm2,
                  base.total.area_mm2);
    }
}

TEST(AcceleratorProperties, RequiredBandwidthScalesWithRingDim)
{
    StrixAccelerator acc;
    double bw_i = acc.evaluatePbs(paramsSetI()).required_bw_gbps;
    double bw_iv = acc.evaluatePbs(paramsSetIV()).required_bw_gbps;
    // Same bsk rate per cycle (N cancels), but set IV's ksk stream is
    // lighter per iteration: total demand differs but both stay in a
    // sane band.
    EXPECT_GT(bw_i, 50.0);
    EXPECT_GT(bw_iv, 50.0);
    EXPECT_LT(bw_i, 1000.0);
    EXPECT_LT(bw_iv, 1000.0);
}

TEST(AcceleratorProperties, FoldingNeverHurts)
{
    for (const auto &p : paperParamSets()) {
        StrixAccelerator fold{StrixConfig::paperDefault()};
        StrixAccelerator nofold{StrixConfig::paperNoFolding()};
        EXPECT_GE(fold.evaluatePbs(p).throughput_pbs_s,
                  nofold.evaluatePbs(p).throughput_pbs_s)
            << p.name;
        EXPECT_LE(fold.evaluatePbs(p).latency_ms,
                  nofold.evaluatePbs(p).latency_ms)
            << p.name;
    }
}

} // namespace
} // namespace strix
