/**
 * @file
 * LWE implementation.
 */

#include "tfhe/lwe.h"

#include "common/logging.h"

namespace strix {

LweKey::LweKey(uint32_t n, Rng &rng)
{
    bits_.resize(n);
    for (auto &b : bits_)
        b = rng.uniformBit();
}

void
LweCiphertext::addAssign(const LweCiphertext &other)
{
    panicIfNot(data_.size() == other.data_.size(), "LWE dim mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
LweCiphertext::subAssign(const LweCiphertext &other)
{
    panicIfNot(data_.size() == other.data_.size(), "LWE dim mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
}

void
LweCiphertext::scalarMulAssign(int32_t factor)
{
    for (auto &v : data_)
        v = static_cast<Torus32>(
            static_cast<uint32_t>(factor) * v);
}

void
LweCiphertext::negate()
{
    for (auto &v : data_)
        v = 0u - v;
}

LweCiphertext
LweCiphertext::trivial(uint32_t n, Torus32 mu)
{
    LweCiphertext ct(n);
    ct.b() = mu;
    return ct;
}

LweCiphertext
lweEncrypt(const LweKey &key, Torus32 mu, double stddev, Rng &rng)
{
    LweCiphertext ct(key.dim());
    Torus32 dot = 0;
    for (uint32_t i = 0; i < key.dim(); ++i) {
        ct.a(i) = rng.uniformTorus32();
        if (key.bit(i))
            dot += ct.a(i);
    }
    ct.b() = dot + mu + rng.gaussianTorus32(stddev);
    return ct;
}

void
lweFillMask(LweCiphertext &ct, Rng &mask_rng)
{
    for (uint32_t i = 0; i < ct.dim(); ++i)
        ct.a(i) = mask_rng.uniformTorus32();
}

LweCiphertext
lweEncryptSeeded(const LweKey &key, Torus32 mu, double stddev,
                 Rng &mask_rng, Rng &noise_rng)
{
    LweCiphertext ct(key.dim());
    lweFillMask(ct, mask_rng);
    Torus32 dot = 0;
    for (uint32_t i = 0; i < key.dim(); ++i)
        if (key.bit(i))
            dot += ct.a(i);
    ct.b() = dot + mu + noise_rng.gaussianTorus32(stddev);
    return ct;
}

Torus32
lwePhase(const LweKey &key, const LweCiphertext &ct)
{
    panicIfNot(key.dim() == ct.dim(), "LWE key/ct dim mismatch");
    Torus32 dot = 0;
    for (uint32_t i = 0; i < key.dim(); ++i)
        if (key.bit(i))
            dot += ct.a(i);
    return ct.b() - dot;
}

int64_t
lweDecrypt(const LweKey &key, const LweCiphertext &ct, uint64_t msg_space)
{
    return decodeMessage(lwePhase(key, ct), msg_space);
}

} // namespace strix
