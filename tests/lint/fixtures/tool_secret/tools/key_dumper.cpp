// Fixture: an ops binary linking secret-key material into what must
// be an evaluation-only deployment artifact.
#include "tfhe/client_keyset.h"

int
main()
{
    return 0;
}
