file(REMOVE_RECURSE
  "CMakeFiles/strix_baselines.dir/cpu_model.cpp.o"
  "CMakeFiles/strix_baselines.dir/cpu_model.cpp.o.d"
  "CMakeFiles/strix_baselines.dir/gpu_model.cpp.o"
  "CMakeFiles/strix_baselines.dir/gpu_model.cpp.o.d"
  "CMakeFiles/strix_baselines.dir/reference_platforms.cpp.o"
  "CMakeFiles/strix_baselines.dir/reference_platforms.cpp.o.d"
  "libstrix_baselines.a"
  "libstrix_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strix_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
