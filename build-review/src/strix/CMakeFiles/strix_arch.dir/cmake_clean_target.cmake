file(REMOVE_RECURSE
  "libstrix_arch.a"
)
