/**
 * @file
 * ContextCache: a keygen-amortizing service layer over the split API.
 *
 * Key generation dominates setup cost in every example and benchmark
 * (seconds at the paper parameter sets, vs microseconds for the work
 * a short session actually does). Since this library's keygen is
 * deterministic in (parameter set, seed), repeated sessions over the
 * same pair can share one keyset: getOrCreate() returns a cached
 * `shared_ptr<const EvalKeys>` and getOrCreateKeyset() the full
 * ClientKeyset it came from, generating each distinct (params, seed)
 * bundle exactly once no matter how many threads ask concurrently.
 *
 * Trust model: the cache holds ClientKeysets -- secret keys -- so it
 * lives on the key-owning side (a client runtime, a test/bench
 * harness, a trusted session broker). An evaluation-only server never
 * needs it: servers receive EvalKeys bundles, shared in-process or
 * deserialized off the wire.
 *
 * Synchronization follows the PR 2 plan-cache discipline: lookups of
 * an already-built entry take a shared (reader) lock on the index --
 * never the keygen path -- and first touch is double-checked: the
 * entry slot is claimed under the exclusive lock, but the keygen
 * itself runs under a per-entry once-flag *outside* the index lock,
 * so building set-IV keys for one tenant never blocks cache hits for
 * another.
 */

#ifndef STRIX_TFHE_CONTEXT_CACHE_H
#define STRIX_TFHE_CONTEXT_CACHE_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex> // std::once_flag / std::call_once
#include <string>

#include "common/sync.h"
#include "tfhe/client_keyset.h"

namespace strix {

/** Process-wide cache of deterministic (params, seed) keysets. */
class ContextCache
{
  public:
    ContextCache() = default;

    ContextCache(const ContextCache &) = delete;
    ContextCache &operator=(const ContextCache &) = delete;

    /** The process-wide instance the examples and benches share. */
    static ContextCache &global();

    /**
     * The cached evaluation-key bundle for (params, seed), generating
     * it (exactly once, even under concurrent first touch) on a miss.
     * All callers get pointer-identical bundles, so any number of
     * ServerContexts built from them share one BSK/KSK copy.
     */
    std::shared_ptr<const EvalKeys> getOrCreate(const TfheParams &params,
                                                uint64_t seed);

    /**
     * The cached full keyset for (params, seed) -- secret keys
     * included, for callers that also encrypt/decrypt. Its
     * ->evalKeys() is the same pointer getOrCreate() returns.
     */
    std::shared_ptr<const ClientKeyset>
    getOrCreateKeyset(const TfheParams &params, uint64_t seed);

    /** Entries resident (built or being built). */
    size_t size() const;

    /** Cold key generations performed so far (misses). */
    uint64_t keygenCount() const { return keygens_.load(); }

    /**
     * Drop every cached entry. Outstanding shared_ptrs stay valid;
     * later lookups regenerate. Intended for tests and memory-
     * pressure hooks, not steady-state serving.
     */
    void clear();

  private:
    /**
     * One cache slot. The once-flag serializes keygen per entry;
     * `keyset` is written exactly once under it and is safe to read
     * without the index lock afterwards (call_once publishes).
     */
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const ClientKeyset> keyset;
    };

    std::shared_ptr<Entry> entryFor(const std::string &key)
        STRIX_EXCLUDES(index_mutex_);

    mutable SharedMutex index_mutex_;
    std::map<std::string, std::shared_ptr<Entry>> entries_
        STRIX_GUARDED_BY(index_mutex_);
    std::atomic<uint64_t> keygens_{0};
};

} // namespace strix

#endif // STRIX_TFHE_CONTEXT_CACHE_H
