/**
 * @file
 * Deep-NN graph construction.
 */

#include "workloads/deepnn.h"

#include "common/logging.h"

namespace strix {

WorkloadGraph
buildDeepNn(uint32_t depth)
{
    panicIfNot(depth >= 3, "Deep-NN depth must be >= 3");
    WorkloadGraph g("NN-" + std::to_string(depth));

    // Layer 1: 10x11 convolution over the 784 encrypted pixels,
    // producing 840 values, each passed through a PBS ReLU.
    g.addLayer({"conv-relu", DeepNnShape::kConvOutputs,
                uint64_t(DeepNnShape::kConvOutputs) *
                    DeepNnShape::kConvKernel});

    // Hidden dense layers with 92 neurons + ReLU. The first consumes
    // the 840 conv outputs; the rest are 92 -> 92.
    uint64_t fan_in = DeepNnShape::kConvOutputs;
    for (uint32_t l = 0; l + 2 < depth; ++l) {
        g.addLayer({"dense" + std::to_string(l + 2) + "-relu",
                    DeepNnShape::kDenseWidth,
                    fan_in * DeepNnShape::kDenseWidth});
        fan_in = DeepNnShape::kDenseWidth;
    }

    // Linear classifier head: no activation, hence no PBS.
    g.addLayer({"classifier", 0, fan_in * DeepNnShape::kClasses});
    return g;
}

uint64_t
deepNnPbsCount(uint32_t depth)
{
    return buildDeepNn(depth).totalPbs();
}

} // namespace strix
