/**
 * @file
 * Encrypted circuit evaluation, functional + scheduled.
 *
 * Builds gate-level circuits (adder, comparator, multiplier), runs a
 * 3-bit adder fully encrypted on the software TFHE library, then
 * lowers the bigger circuits to layered PBS workload graphs and
 * schedules them on the Strix model vs the CPU/GPU baselines --
 * demonstrating the full pipeline from netlist to accelerator
 * timing.
 */

#include <cstdio>

#include "baselines/cpu_model.h"
#include "baselines/gpu_model.h"
#include "common/table.h"
#include "strix/accelerator.h"
#include "workloads/circuit.h"
#include "workloads/circuit_analysis.h"
#include "workloads/circuit_client.h"

using namespace strix;

namespace {

std::vector<bool>
toBits(uint64_t v, uint32_t n)
{
    std::vector<bool> bits(n);
    for (uint32_t i = 0; i < n; ++i)
        bits[i] = (v >> i) & 1;
    return bits;
}

uint64_t
fromBits(const std::vector<bool> &bits)
{
    uint64_t v = 0;
    for (size_t i = 0; i < bits.size(); ++i)
        v |= uint64_t(bits[i]) << i;
    return v;
}

} // namespace

int
main()
{
    // Part 1: run a 3-bit adder fully encrypted (real bootstraps,
    // parameter set I with real noise). The netlist is evaluated
    // against the ServerContext half of the split API -- the circuit
    // engine only ever sees public evaluation keys.
    std::printf("== Encrypted 3-bit adder (set I, real noise) ==\n");
    ClientKeyset client(paramsSetI(), 31415);
    ServerContext server(client.evalKeys());
    Circuit adder = buildAdder(3);
    std::printf("gates: %llu bootstraps, depth %u\n",
                static_cast<unsigned long long>(adder.pbsCount()),
                adder.depth());

    // The static noise-budget analyzer elides the PBS of XOR chains
    // and fuses the carry majority idiom; both paths run below and
    // must agree bit for bit after decryption.
    CircuitPlan plan = analyzeCircuit(adder, paramsSetI());
    std::printf("plan:  %s\n", plan.summary().c_str());

    bool all_ok = true;
    for (auto [a, b] : {std::pair<int, int>{5, 3}, {7, 7}, {0, 6}}) {
        auto in = toBits(a, 3);
        auto bb = toBits(b, 3);
        in.insert(in.end(), bb.begin(), bb.end());
        std::vector<LweCiphertext> enc;
        for (bool bit : in)
            enc.push_back(client.encryptBit(bit));
        auto decode = [&](const std::vector<LweCiphertext> &cts) {
            std::vector<bool> bits;
            for (const auto &ct : cts)
                bits.push_back(client.decryptBit(ct));
            return fromBits(bits);
        };
        uint64_t naive = decode(adder.evalEncrypted(server, enc));
        uint64_t planned =
            decode(adder.evalEncrypted(server, enc, plan));
        const bool ok =
            naive == uint64_t(a + b) && planned == naive;
        std::printf("  %d + %d = %llu naive / %llu planned "
                    "(expect %d) %s\n",
                    a, b, static_cast<unsigned long long>(naive),
                    static_cast<unsigned long long>(planned), a + b,
                    ok ? "ok" : "MISMATCH");
        all_ok &= ok;
    }
    std::printf("naive %llu PBS vs planned %llu PBS (%llu elided)\n",
                static_cast<unsigned long long>(plan.naivePbsCount()),
                static_cast<unsigned long long>(plan.pbsCount()),
                static_cast<unsigned long long>(plan.elidedPbs()));

    // Part 2: schedule realistic circuit workloads on the platforms.
    std::printf("\n== Circuit workloads scheduled on the platform "
                "models (set I) ==\n\n");
    StrixAccelerator strix;
    CpuModel cpu;
    GpuModel gpu(72, 1.0); // no NN fusion for gate workloads

    TextTable t;
    t.header({"circuit", "#PBS", "depth", "CPU ms", "GPU ms",
              "Strix ms"});
    for (const Circuit &c :
         {buildAdder(32), buildMultiplier(8), buildLessThan(32)}) {
        WorkloadGraph g = c.toWorkloadGraph();
        double cpu_ms = cpu.runGraphSeconds(paramsSetI(), g) * 1e3;
        double gpu_ms = gpu.runGraphSeconds(paramsSetI(), g) * 1e3;
        double strix_ms =
            strix.runGraph(paramsSetI(), g).seconds * 1e3;
        t.row({c.name(), std::to_string(g.totalPbs()),
               std::to_string(c.depth()), TextTable::num(cpu_ms, 1),
               TextTable::num(gpu_ms, 1),
               TextTable::num(strix_ms, 2)});
    }
    t.print();
    std::printf("\nNote how the deep, narrow layers of a ripple adder "
                "(few independent gates per level) underfill even "
                "Strix's batch -- circuits with wide levels (the "
                "multiplier) exploit the accelerator far better.\n");
    return all_ok ? 0 : 1;
}
