/**
 * @file
 * Keyswitching tests: dimension conversion, message preservation, and
 * composition with sample extraction.
 */

#include <gtest/gtest.h>

#include "tfhe/glwe.h"
#include "tfhe/keyswitch.h"
#include "tfhe/params.h"

namespace strix {
namespace {

TEST(KeySwitch, PreservesMessageZeroNoise)
{
    Rng rng(1);
    TfheParams p = testParams(32, 128, 1, 3, 8, 0.0);
    LweKey from(256, rng);
    LweKey to(p.n, rng);
    p.l_ksk = 16;
    p.ks_base_bits = 2;
    KeySwitchKey ksk = KeySwitchKey::generate(from, to, p, rng);

    const uint64_t space = 16;
    for (int64_t m = 0; m < 16; ++m) {
        auto ct = lweEncrypt(from, encodeMessage(m, space), 0.0, rng);
        auto out = keySwitch(ct, ksk);
        ASSERT_EQ(out.dim(), p.n);
        EXPECT_EQ(lweDecrypt(to, out, space), m) << "m=" << m;
    }
}

TEST(KeySwitch, DecompositionDepthControlsError)
{
    // Shallower keyswitch decomposition leaves a larger rounding
    // error; both must still decode at p=4, and the deep one must be
    // strictly more accurate on average.
    Rng rng(2);
    LweKey from(512, rng);
    LweKey to(64, rng);

    auto run = [&](uint32_t levels) {
        TfheParams p = testParams(64, 128);
        p.l_ksk = levels;
        p.ks_base_bits = 2;
        KeySwitchKey ksk = KeySwitchKey::generate(from, to, p, rng);
        int64_t worst = 0;
        for (int trial = 0; trial < 20; ++trial) {
            Torus32 mu = encodeMessage(
                static_cast<int64_t>(rng.uniformBelow(4)), 4);
            auto ct = lweEncrypt(from, mu, 0.0, rng);
            auto out = keySwitch(ct, ksk);
            worst = std::max(
                worst, std::abs(static_cast<int64_t>(
                           torusDistance(lwePhase(to, out), mu))));
        }
        return worst;
    };

    int64_t err_shallow = run(4);
    int64_t err_deep = run(14);
    EXPECT_LT(err_deep, err_shallow);
    EXPECT_LT(err_shallow, int64_t{1} << 29); // still decodable at p=4
}

TEST(KeySwitch, ComposesWithSampleExtract)
{
    // GLWE encrypt -> sample extract -> keyswitch back to small key.
    Rng rng(3);
    TfheParams p = testParams(48, 64, 2, 3, 8, 0.0);
    p.l_ksk = 16;
    p.ks_base_bits = 2;
    GlweKey glwe_key(p.k, p.N, rng);
    LweKey small(p.n, rng);
    LweKey extracted = glwe_key.extractedLweKey();
    KeySwitchKey ksk = KeySwitchKey::generate(extracted, small, p, rng);

    TorusPolynomial mu(p.N);
    const uint64_t space = 8;
    for (size_t i = 0; i < p.N; ++i)
        mu[i] = encodeMessage(static_cast<int64_t>(i % space), space);
    auto glwe_ct = glweEncrypt(glwe_key, mu, 0.0, rng);

    for (size_t idx : {size_t{0}, size_t{5}, size_t{63}}) {
        auto big = sampleExtract(glwe_ct, idx);
        auto out = keySwitch(big, ksk);
        EXPECT_EQ(lweDecrypt(small, out, space),
                  static_cast<int64_t>(idx % space))
            << "idx=" << idx;
    }
}

TEST(KeySwitch, HomomorphicAdditionSurvivesSwitch)
{
    Rng rng(4);
    TfheParams p = testParams(64, 128);
    p.l_ksk = 16;
    p.ks_base_bits = 2;
    LweKey from(256, rng);
    LweKey to(64, rng);
    KeySwitchKey ksk = KeySwitchKey::generate(from, to, p, rng);

    auto c1 = lweEncrypt(from, encodeMessage(3, 16), 0.0, rng);
    auto c2 = lweEncrypt(from, encodeMessage(6, 16), 0.0, rng);
    c1.addAssign(c2);
    auto out = keySwitch(c1, ksk);
    EXPECT_EQ(lweDecrypt(to, out, 16), 9);
}

TEST(KeySwitch, RowLayout)
{
    Rng rng(5);
    TfheParams p = testParams(16, 64);
    p.l_ksk = 3;
    LweKey from(8, rng);
    LweKey to(16, rng);
    KeySwitchKey ksk = KeySwitchKey::generate(from, to, p, rng);
    EXPECT_EQ(ksk.inDim(), 8u);
    EXPECT_EQ(ksk.outDim(), 16u);
    EXPECT_EQ(ksk.row(0, 0).dim(), 16u);
}

} // namespace
} // namespace strix
