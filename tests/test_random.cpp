/**
 * @file
 * Unit tests for the PRNG and Gaussian torus sampler.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.h"

namespace strix {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformBelow(17), 17u);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.uniformDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformBitsBalanced)
{
    Rng rng(11);
    int ones = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        ones += rng.uniformBit();
    EXPECT_NEAR(ones, trials / 2, 300);
}

TEST(Rng, GaussianMomentsApproximatelyStandard)
{
    Rng rng(13);
    const int trials = 20000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < trials; ++i) {
        double g = rng.gaussianDouble();
        sum += g;
        sum2 += g * g;
    }
    double mean = sum / trials;
    double var = sum2 / trials - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianTorusZeroStddevIsExactlyZero)
{
    Rng rng(15);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.gaussianTorus32(0.0), 0u);
}

TEST(Rng, GaussianTorusSmallStddevStaysSmall)
{
    Rng rng(17);
    const double stddev = std::pow(2.0, -20);
    for (int i = 0; i < 1000; ++i) {
        Torus32 e = rng.gaussianTorus32(stddev);
        double d = torus32ToDouble(e);
        EXPECT_LT(std::abs(d), 8 * stddev); // 8 sigma
    }
}

TEST(RngFork, DeterministicPerStream)
{
    Rng parent(1234);
    Rng a = parent.fork(7);
    Rng b = Rng(1234).fork(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngFork, StreamsAreIndependent)
{
    Rng parent(1234);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(RngFork, OrderIndependent)
{
    // fork() depends only on the construction seed, never on how much
    // the parent (or sibling forks) have been consumed -- the property
    // seeded key expansion relies on to regenerate row r without
    // replaying rows 0..r-1.
    Rng fresh(99);
    Rng consumed(99);
    for (int i = 0; i < 1000; ++i)
        (void)consumed.next64();
    Rng early = fresh.fork(42);
    Rng late = consumed.fork(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(early.next64(), late.next64());
}

TEST(RngFork, DoesNotDisturbParent)
{
    Rng forked(55);
    Rng plain(55);
    (void)forked.fork(1);
    (void)forked.fork(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(forked.next64(), plain.next64());
}

TEST(RngFork, StreamZeroDiffersFromParent)
{
    // fork(0) is a distinct stream, not a clone of the parent: the
    // child seed passes through an extra splitmix64 scramble.
    Rng parent(77);
    Rng child = Rng(77).fork(0);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next64() == child.next64();
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace strix
