# Empty dependencies file for test_unrolling.
# This may be replaced when dependencies are built.
