/**
 * @file
 * Noise-model tests: analytic formulas vs empirical measurements on
 * the real implementation, and budget checks for the paper parameter
 * sets.
 */

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "tfhe/noise.h"
#include "workloads/circuit.h"
#include "workloads/circuit_analysis.h"

namespace strix {
namespace {

/** Empirical variance of fresh LWE encryptions. */
NoiseStats
measureFreshLwe(const TfheParams &p, int trials, uint64_t seed)
{
    Rng rng(seed);
    LweKey key(p.n, rng);
    NoiseStats stats;
    for (int i = 0; i < trials; ++i) {
        Torus32 mu = encodeMessage(1, 8);
        auto ct = lweEncrypt(key, mu, p.lwe_noise, rng);
        stats.add(torus32ToDouble(lwePhase(key, ct) - mu));
    }
    stats.finalize();
    return stats;
}

TEST(Noise, FreshLweMatchesAnalytic)
{
    const TfheParams &p = paramsSetI();
    NoiseModel model(p);
    NoiseStats stats = measureFreshLwe(p, 4000, 11);
    EXPECT_NEAR(stats.mean, 0.0, 3 * p.lwe_noise / std::sqrt(4000.0));
    // Variance within 15% of sigma^2.
    EXPECT_NEAR(stats.variance / model.freshLwe(), 1.0, 0.15);
}

TEST(Noise, LinearCombinationVariance)
{
    double v = NoiseModel::linearCombination({1, -2, 3}, {1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(v, 1.0 + 4.0 + 9.0);
}

TEST(Noise, LinearCombinationEmpirical)
{
    // phase(c1 + 2*c2) error variance ~ (1 + 4) * sigma^2.
    const TfheParams &p = paramsSetI();
    Rng rng(13);
    LweKey key(p.n, rng);
    NoiseStats stats;
    for (int i = 0; i < 3000; ++i) {
        auto c1 = lweEncrypt(key, 0, p.lwe_noise, rng);
        auto c2 = lweEncrypt(key, 0, p.lwe_noise, rng);
        c2.scalarMulAssign(2);
        c1.addAssign(c2);
        stats.add(torus32ToDouble(lwePhase(key, c1)));
    }
    stats.finalize();
    double expect =
        NoiseModel::linearCombination({1, 2}, {NoiseModel(p).freshLwe(),
                                               NoiseModel(p).freshLwe()});
    EXPECT_NEAR(stats.variance / expect, 1.0, 0.15);
}

TEST(NoiseDeathTest, LinearCombinationSizeMismatchPanics)
{
    // The analytic model is only meaningful when every weight pairs
    // with a variance; a silent zip-to-shortest would understate the
    // noise a circuit plan certifies against.
    EXPECT_DEATH(NoiseModel::linearCombination({1, 2}, {1.0}),
                 "mismatch");
    EXPECT_DEATH(NoiseModel::linearCombination({1}, {1.0, 2.0}),
                 "mismatch");
}

/** Split keyset at real set-I noise for the planned-chain tests. */
test::TestKeys &
setIKeys()
{
    static test::TestKeys keys(paramsSetI(), 23);
    return keys;
}

/**
 * Evaluate @p c under @p plan on pinned-seed random inputs and check,
 * for every primary output, (a) the measured phase error stays within
 * the analyzer's z-sigma per-wire bound and (b) the planned bits
 * decode identically to the naive path.
 */
void
checkPlannedChain(const Circuit &c, int sweeps, uint64_t seed)
{
    test::TestKeys &keys = setIKeys();
    CircuitPlan plan = analyzeCircuit(c, keys.server.params());
    ASSERT_TRUE(plan.feasible()) << plan.summary();

    Rng rng(seed);
    for (int s = 0; s < sweeps; ++s) {
        std::vector<bool> bits(c.numInputs());
        std::vector<LweCiphertext> enc;
        for (size_t i = 0; i < bits.size(); ++i) {
            bits[i] = rng.uniformBit() != 0;
            enc.push_back(keys.client.encryptBit(bits[i]));
        }
        auto expected = c.evalPlain(bits);
        auto naive = c.evalEncrypted(keys.server, enc);
        auto planned = c.evalEncrypted(keys.server, enc, plan);
        ASSERT_EQ(planned.size(), c.numOutputs());
        for (size_t i = 0; i < planned.size(); ++i) {
            const Wire w = c.outputs()[i];
            // Decode-identity: planned == naive == plain.
            EXPECT_EQ(keys.client.decryptBit(planned[i]), expected[i])
                << "sweep " << s << " output " << i;
            EXPECT_EQ(keys.client.decryptBit(naive[i]), expected[i])
                << "sweep " << s << " output " << i;
            // Measured phase error within the predicted bound: the
            // nominal phase is +-amp for the wire's encoding, and the
            // analyzer certifies z sigmas of worst-case noise.
            const bool wide = plan.node(w).encoding == WireEncoding::Wide4;
            const Torus32 mu = encodeMessage(1, wide ? 4 : 8);
            const Torus32 nominal = expected[i] ? mu : 0u - mu;
            const double err = std::abs(torus32ToDouble(
                lwePhase(keys.client.lweKey(), planned[i]) - nominal));
            EXPECT_LT(err, plan.z() * plan.predictedStddev(w))
                << "sweep " << s << " output " << i << " wire " << w;
        }
    }
}

TEST(Noise, PlannedAdderChainWithinPredictedBound)
{
    checkPlannedChain(buildAdder(3), 4, 29);
}

TEST(Noise, PlannedComparatorChainWithinPredictedBound)
{
    checkPlannedChain(buildLessThan(3), 4, 31);
}

TEST(Noise, ExternalProductBoundHoldsEmpirically)
{
    // Measured external-product noise must stay below the analytic
    // bound (the bound is a worst case, so <=, with real noise).
    TfheParams p = testParams(16, 1024, 1, 2, 10, 0.0);
    p.glwe_noise = 9.0e-9; // set-I GLWE noise
    NoiseModel model(p);

    Rng rng(17);
    GlweKey key(p.k, p.N, rng);
    GadgetParams g{p.bg_bits, p.l_bsk};
    GgswCiphertext ggsw = ggswEncrypt(key, 1, g, p.glwe_noise, rng);
    GgswFft fft(ggsw);

    TorusPolynomial mu(p.N); // zero message isolates the noise
    // Real encryption (random mask): the decomposition must chew on
    // full-entropy coefficients for the noise terms to appear.
    GlweCiphertext ct = glweEncrypt(key, mu, 0.0, rng);

    GlweCiphertext out;
    fft.externalProduct(out, ct);
    TorusPolynomial phase = glwePhase(key, out);
    NoiseStats stats;
    for (size_t i = 0; i < p.N; ++i)
        stats.add(torus32ToDouble(phase[i]));
    stats.finalize();

    double bound = model.externalProduct(0.0);
    // Measured variance below the bound, but not absurdly so (the
    // bound should be within ~100x of reality, catching formula
    // regressions in either direction).
    EXPECT_LT(stats.variance, bound);
    EXPECT_GT(stats.variance, bound / 200.0);
}

TEST(Noise, BlindRotationGrowsLinearlyInN)
{
    TfheParams small = paramsSetI();
    TfheParams big = paramsSetI();
    big.n = 2 * small.n;
    double v_small = NoiseModel(small).blindRotation();
    double v_big = NoiseModel(big).blindRotation();
    EXPECT_NEAR(v_big / v_small, 2.0, 0.01);
}

TEST(Noise, PaperParameterSetsDecodeGateMessages)
{
    // Every paper set must leave enough budget to decode the gate
    // message space (8) after one PBS + KS; sets with larger N
    // support larger spaces.
    for (const auto &p : paperParamSets()) {
        NoiseModel m(p);
        EXPECT_TRUE(m.pbsDecodes(8)) << "set " << p.name
            << " stddev=" << std::sqrt(m.pbsOutput());
    }
}

TEST(Noise, SetIVSupportsHighPrecision)
{
    // The paper motivates set IV as the high-precision set: it must
    // decode far larger message spaces than set I.
    NoiseModel m1(paramsSetI());
    NoiseModel m4(paramsSetIV());
    EXPECT_TRUE(m4.pbsDecodes(128));
    EXPECT_FALSE(m1.pbsDecodes(128));
    // And the budget ordering holds outright.
    EXPECT_LT(m4.pbsOutput(), m1.pbsOutput());
}

TEST(Noise, PbsOutputEmpiricalWithinBound)
{
    // Full end-to-end: bootstrap a known message many times at set I
    // and compare the measured output-phase variance to the bound.
    test::TestKeys keys(paramsSetI(), 19);
    NoiseModel model(paramsSetI());
    const uint64_t space = 4;
    TorusPolynomial tv = makeIntTestVector(
        keys.server.params().N, space, [](int64_t x) { return x; });
    NoiseStats stats;
    for (int i = 0; i < 12; ++i) {
        auto ct = keys.client.encryptInt(1, space);
        auto out = keys.server.bootstrap(ct, tv);
        Torus32 expected = encodeLut(1, space);
        stats.add(torus32ToDouble(
            lwePhase(keys.client.lweKey(), out) - expected));
    }
    stats.finalize();
    EXPECT_LT(stats.worst, std::sqrt(model.pbsOutput()) * 8 + 1.0 / 64);
    EXPECT_LT(stats.variance, model.pbsOutput() * 4);
}

TEST(Noise, StatsAccumulator)
{
    NoiseStats s;
    s.add(1.0);
    s.add(-1.0);
    s.add(3.0);
    s.finalize();
    EXPECT_EQ(s.samples, 3u);
    EXPECT_NEAR(s.mean, 1.0, 1e-12);
    EXPECT_NEAR(s.variance, (1 + 1 + 9) / 3.0 - 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.worst, 3.0);
}

TEST(Noise, DecodableStddevScale)
{
    // Half a step of space p is 1/(2p); at z sigma confidence the
    // tolerable stddev is 1/(4pz).
    EXPECT_DOUBLE_EQ(NoiseModel::decodableStddev(8, 6.0),
                     1.0 / (2 * 8 * 6.0));
    EXPECT_GT(NoiseModel::decodableStddev(4),
              NoiseModel::decodableStddev(16));
}

} // namespace
} // namespace strix
