/**
 * @file
 * Versioned little-endian binary framing.
 *
 * FrameWriter/FrameReader are the byte layer every Strix wire format
 * builds on: a frame is a 4-byte type tag + u32 version header
 * followed by little-endian primitives, optionally grouped into
 * length-prefixed sections ([id u32][length u64][payload]) whose
 * declared lengths the reader validates. The TFHE serialization
 * formats (tfhe/serialize.h) and the MSG1 network protocol
 * (net/wire.h) are both built on this layer; it lives in common/ so
 * the net/ layer can frame messages without depending on TFHE types.
 *
 * Reader error messages keep the historical "serialize:" prefix --
 * they are part of the observable contract of the TFHE readers.
 */

#ifndef STRIX_COMMON_FRAME_H
#define STRIX_COMMON_FRAME_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <type_traits>
#include <vector>

namespace strix {

/**
 * Incremental frame writer: header (tag + version) up front, then
 * little-endian primitives. Version-2 frames group their payload into
 * length-prefixed sections ([id u32][length u64][payload]): the
 * section payload is staged in memory by beginSection()/endSection()
 * so the length prefix is exact, giving readers a checkable frame
 * skeleton. Primitives outside a section write straight through --
 * the v1 frames use only that raw mode, which keeps their byte layout
 * identical to the historical ad-hoc writers.
 */
class FrameWriter
{
  public:
    /** Write the frame header for @p tag at @p version. */
    FrameWriter(std::ostream &os, uint32_t tag, uint32_t version);

    /** Same, taking the tag as a u32-backed enum (e.g. SerialTag). */
    template <typename Tag,
              typename = std::enable_if_t<std::is_enum<Tag>::value>>
    FrameWriter(std::ostream &os, Tag tag, uint32_t version)
        : FrameWriter(os, static_cast<uint32_t>(tag), version)
    {
    }

    void u32(uint32_t v);
    void u64(uint64_t v);
    /** Double by bit pattern (exact round-trip). */
    void f64(double v);
    void bytes(const void *data, size_t len);

    /** Open section @p id; payload is staged until endSection(). */
    void beginSection(uint32_t id);
    /** Flush the staged section: id, byte length, payload. */
    void endSection();

  private:
    std::ostream &os_;
    bool in_section_ = false;
    uint32_t section_id_ = 0;
    std::vector<unsigned char> buf_;
};

/**
 * Validating frame reader, the read-side twin of FrameWriter. The
 * header constructor reads tag + version (either pinning an expected
 * tag or exposing what it found, for multi-format dispatch). Inside a
 * section every primitive is bounds-checked against the declared
 * section length and leaveSection() demands exact consumption, so a
 * tampered length field or a truncated/oversized payload throws
 * std::runtime_error instead of desynchronizing the stream. All reads
 * throw on truncation; nothing here ever panics on wire input.
 */
class FrameReader
{
  public:
    /** Read a header, throwing unless it is @p expect at @p version. */
    FrameReader(std::istream &is, uint32_t expect, uint32_t version,
                const char *what);

    /** Same, taking the expected tag as a u32-backed enum. */
    template <typename Tag,
              typename = std::enable_if_t<std::is_enum<Tag>::value>>
    FrameReader(std::istream &is, Tag expect, uint32_t version,
                const char *what)
        : FrameReader(is, static_cast<uint32_t>(expect), version, what)
    {
    }

    /** Read any header; caller dispatches on tag()/version(). */
    explicit FrameReader(std::istream &is);

    uint32_t tag() const { return tag_; }
    uint32_t version() const { return version_; }

    uint32_t u32();
    uint64_t u64();
    double f64();
    void bytes(void *out, size_t len);

    /**
     * Enter the next section, which must carry @p id and declare a
     * length of at most @p max_len bytes (the caller's plausibility
     * bound -- a hostile length field must never drive allocation).
     */
    void enterSection(uint32_t id, uint64_t max_len);

    /** Bytes of the current section not yet consumed. */
    uint64_t sectionRemaining() const { return remaining_; }

    /** Close the section; throws unless it was consumed exactly. */
    void leaveSection();

  private:
    std::istream &is_;
    uint32_t tag_ = 0;
    uint32_t version_ = 0;
    bool in_section_ = false;
    uint64_t remaining_ = 0;
};

} // namespace strix

#endif // STRIX_COMMON_FRAME_H
