/**
 * @file
 * BufferedSender: MTU-coalescing write buffering for response frames.
 *
 * Single LWE ciphertext replies are ~KB while the PBS work behind
 * them is ms-scale, so batching small responses into one syscall-
 * sized write is nearly free throughput (the `COMM_MIN` buffered-
 * network shape from the ROADMAP): responses queue into a pending
 * buffer, and the owner flushes when the buffer reaches the MTU
 * threshold (size trigger) or when the oldest queued byte has waited
 * the flush delay (deadline trigger) -- the same two-trigger policy
 * the BatchExecutor uses for PBS coalescing, applied to egress.
 *
 * The class is deliberately passive about time and IO: the caller
 * supplies `now_us` stamps and drives flushTo() from its poll loop,
 * so the policy is unit-testable with manual clocks and socketpairs
 * and the event loop keeps a single time source.
 */

#ifndef STRIX_NET_BUFFERED_H
#define STRIX_NET_BUFFERED_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.h"

namespace strix {

/** Coalesces queued frames into MTU-sized socket writes. */
class BufferedSender
{
  public:
    struct Options
    {
        /** Size trigger: flush once this many bytes are pending. */
        size_t mtu_bytes = 16 * 1024;
        /**
         * Deadline trigger: maximum microseconds the oldest pending
         * byte may wait before a flush regardless of size. 0 flushes
         * on the owner's next pass.
         */
        uint64_t flush_delay_us = 100;
    };

    BufferedSender() = default;
    explicit BufferedSender(Options opts) : opts_(opts) {}

    /** Queue one encoded frame for sending. */
    void queue(const std::vector<uint8_t> &frame, uint64_t now_us);

    /** True when a trigger fired: pending >= MTU, or oldest aged out. */
    bool wantFlush(uint64_t now_us) const;

    /**
     * Absolute microsecond time when the deadline trigger fires, or 0
     * when nothing is pending (the owner folds this into its poll
     * timeout).
     */
    uint64_t flushDeadline() const;

    /**
     * Write as much pending data as the socket accepts; the
     * unwritten remainder stays queued. Ok covers both "all flushed"
     * and "short write" (check empty()); WouldBlock means poll for
     * writability; Eof/Error mean the connection is dead.
     */
    TcpConn::IoResult flushTo(TcpConn &conn);

    bool empty() const { return buf_.size() == off_; }
    size_t pendingBytes() const { return buf_.size() - off_; }

    /** Frames queued over the sender's lifetime. */
    uint64_t framesQueued() const { return frames_queued_; }
    /** Socket write calls issued (coalescing = frames / writes). */
    uint64_t writeCalls() const { return write_calls_; }

    const Options &options() const { return opts_; }

  private:
    Options opts_;
    std::vector<uint8_t> buf_;
    size_t off_ = 0;           //!< flushed prefix of buf_
    uint64_t oldest_us_ = 0;   //!< queue time of the oldest pending byte
    uint64_t frames_queued_ = 0;
    uint64_t write_calls_ = 0;
};

} // namespace strix

#endif // STRIX_NET_BUFFERED_H
