file(REMOVE_RECURSE
  "CMakeFiles/test_integer.dir/test_integer.cpp.o"
  "CMakeFiles/test_integer.dir/test_integer.cpp.o.d"
  "test_integer"
  "test_integer.pdb"
  "test_integer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
