/**
 * @file
 * Noise model implementation.
 */

#include "tfhe/noise.h"

#include <cmath>

#include "common/logging.h"

namespace strix {

double
NoiseModel::linearCombination(const std::vector<int32_t> &w,
                              const std::vector<double> &v)
{
    panicIfNot(w.size() == v.size(), "noise: weight/variance mismatch");
    double out = 0.0;
    for (size_t i = 0; i < w.size(); ++i)
        out += double(w[i]) * double(w[i]) * v[i];
    return out;
}

double
NoiseModel::externalProduct(double v_in) const
{
    const double big_n = p_.N;
    const double k = p_.k;
    const double l = p_.l_bsk;
    const double base = p_.decompBase();
    // Gadget rounding eps = 2^-(1 + base_bits*l) of the torus.
    const double eps =
        std::pow(2.0, -double(p_.bg_bits) * l - 1.0);
    return v_in +
           (k + 1) * l * big_n * (base * base / 4.0) * freshGlwe() +
           (1.0 + k * big_n) * eps * eps;
}

double
NoiseModel::blindRotation() const
{
    // n sequential CMuxes, each one external product on the
    // accumulator (which starts noiseless: a trivial test vector).
    double v = 0.0;
    for (uint32_t i = 0; i < p_.n; ++i)
        v = externalProduct(v);
    return v;
}

double
NoiseModel::modSwitch() const
{
    // Rounding each of n+1 coefficients to the 2N grid contributes a
    // uniform error in [-1/(4N), 1/(4N)] against a binary key:
    // variance ~ (n/2 + 1) * (1/(2N))^2 / 12.
    const double step = 1.0 / (2.0 * p_.N);
    return (p_.n / 2.0 + 1.0) * step * step / 12.0;
}

double
NoiseModel::keySwitch(double v_in) const
{
    const double kn = double(p_.k) * p_.N;
    const double l = p_.l_ksk;
    const double base = double(1u << p_.ks_base_bits);
    const double eps =
        std::pow(2.0, -double(p_.ks_base_bits) * l - 1.0);
    // Balanced digits: E[d^2] ~ base^2/12 for uniform digits.
    return v_in + kn * l * (base * base / 12.0) * freshLwe() +
           kn * eps * eps / 3.0;
}

double
NoiseModel::pbsOutput() const
{
    // Modulus switching perturbs the selected window, not the output
    // noise; the output LWE noise is blind rotation + keyswitch.
    return keySwitch(blindRotation());
}

void
NoiseStats::add(double err)
{
    mean += err;
    variance += err * err;
    worst = std::max(worst, std::abs(err));
    ++samples;
}

void
NoiseStats::finalize()
{
    if (samples == 0)
        return;
    mean /= double(samples);
    variance = variance / double(samples) - mean * mean;
}

} // namespace strix
