// Fixture: the wire layer reaching up into the crypto layer.
// net/ may only include common/ -- it moves opaque bytes.
#include "tfhe/eval_keys.h"

int
net_fixture()
{
    return 0;
}
