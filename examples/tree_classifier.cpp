/**
 * @file
 * Privacy-preserving decision-tree classification (the tree-based ML
 * use case the paper cites in Sec. II-C).
 *
 * A server owns a decision tree; a client owns a feature vector it
 * must keep private. The client encrypts its features, the server
 * evaluates the tree homomorphically (comparisons = PBS borrow
 * chains, path selection = PBS multiplexers) and returns an encrypted
 * class label only the client can open. The example then schedules a
 * production-sized forest on the platform models.
 */

#include <cstdio>

#include "baselines/cpu_model.h"
#include "baselines/gpu_model.h"
#include "common/table.h"
#include "strix/accelerator.h"
#include "workloads/decision_tree.h"

using namespace strix;

int
main()
{
    std::printf("== Encrypted decision-tree inference ==\n\n");

    // A small credit-scoring style tree over 3 features in [0, 16):
    //   income, debt, history.
    DecisionTree tree(2, 3);
    tree.setNode(0, 0, 8);  // income >= 8 ?
    tree.setNode(1, 1, 6);  // low income: debt >= 6 ?
    tree.setNode(2, 2, 10); // high income: history >= 10 ?
    tree.setLeaf(0, 1);     // low income, low debt   -> class 1
    tree.setLeaf(1, 0);     // low income, high debt  -> class 0
    tree.setLeaf(2, 2);     // high income, short hist-> class 2
    tree.setLeaf(3, 3);     // high income, long hist -> class 3

    // The roles are explicit in the types: the clients encrypt and
    // decrypt with the ClientKeyset; the tree evaluates on a
    // ServerContext that holds only the public EvalKeys bundle.
    ClientKeyset client(testParams(48, 512, 1, 3, 8, 0.0), 777);
    ServerContext server(client.evalKeys());
    IntegerOps ops(server);

    struct ClientQuery
    {
        const char *name;
        std::vector<uint64_t> features;
    };
    for (const ClientQuery &c :
         {ClientQuery{"alice", {11, 2, 12}},
          ClientQuery{"bob", {3, 9, 1}},
          ClientQuery{"carol", {9, 0, 4}}}) {
        std::vector<EncryptedUint> enc;
        for (uint64_t f : c.features)
            enc.push_back(ops.encrypt(client, f, 2));
        auto label = tree.predictEncrypted(ops, enc);
        uint64_t got = client.decryptInt(label, ops.space());
        uint64_t want = tree.predictPlain(c.features);
        std::printf("  %-6s -> class %llu (expected %llu) %s\n",
                    c.name, static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(want),
                    got == want ? "ok" : "MISMATCH");
    }

    std::printf("\n== A depth-8 tree over 32 8-bit features on the "
                "platform models (set I) ==\n\n");
    DecisionTree big = randomTree(8, 32, 256, 2026);
    WorkloadGraph g = big.toWorkloadGraph(/*digits=*/4);

    StrixAccelerator strix;
    CpuModel cpu;
    GpuModel gpu(72, 1.0);
    TextTable t;
    t.header({"platform", "total PBS", "time ms"});
    t.row({"CPU (Concrete model)", std::to_string(g.totalPbs()),
           TextTable::num(cpu.runGraphSeconds(paramsSetI(), g) * 1e3,
                          0)});
    t.row({"GPU (NuFHE model)", std::to_string(g.totalPbs()),
           TextTable::num(gpu.runGraphSeconds(paramsSetI(), g) * 1e3,
                          0)});
    t.row({"Strix (simulated)", std::to_string(g.totalPbs()),
           TextTable::num(strix.runGraph(paramsSetI(), g).seconds * 1e3,
                          2)});
    t.print();
    std::printf("\nThe comparison layer (255 nodes x 4 digits = 1020 "
                "independent PBS) batches beautifully; the MUX "
                "reduction tail is where fragmentation bites the "
                "GPU.\n");
    return 0;
}
