/**
 * @file
 * Epoch scheduler implementation.
 */

#include "strix/scheduler.h"

#include <limits>

#include "common/logging.h"

namespace strix {

std::vector<EpochRecord>
EpochScheduler::schedule(const TfheParams &p, uint64_t num_lwes) const
{
    std::vector<EpochRecord> epochs;
    if (num_lwes == 0)
        return epochs;

    Hsc core(cfg_, p);
    const UnitTiming &t = core.timing();
    const uint64_t epoch_batch =
        uint64_t(core.memory().coreBatch()) * cfg_.tvlp;
    // coreBatch() is always >= 1, so this only trips on tvlp == 0 --
    // but that zero used to flow straight into a division.
    panicIfNot(epoch_batch > 0,
               "EpochScheduler: epoch batch is zero (tvlp must be >= 1)");
    // Overflow-free ceil division: the textbook (a + b - 1) / b wraps
    // for num_lwes within epoch_batch of 2^64 and silently returned an
    // *empty* schedule, dropping every LWE. Also bound the epoch count:
    // a schedule of more than 2^32 epochs is unrepresentable in memory
    // and always a caller bug, so fail loudly instead of bad_alloc.
    const uint64_t count =
        num_lwes / epoch_batch + (num_lwes % epoch_batch != 0);
    panicIfNot(count <= (uint64_t(1) << 32),
               "EpochScheduler: epoch count overflows a representable "
               "schedule");
    epochs.reserve(count);

    uint64_t remaining = num_lwes;
    Cycle br_cursor = 0;     // PBS clusters busy until here
    Cycle ks_free = 0;       // KS clusters busy until here
    for (uint64_t e = 0; e < count; ++e) {
        EpochRecord rec{};
        rec.index = e;
        rec.lwes = std::min<uint64_t>(remaining, epoch_batch);
        // Ceil division without the overflowing (a + b - 1) form, and
        // a checked narrowing: rec.lwes <= epoch_batch implies the
        // quotient fits coreBatch()'s uint32 range, but if that
        // invariant ever breaks the cast must not silently truncate.
        const uint64_t core_batch =
            rec.lwes / cfg_.tvlp + (rec.lwes % cfg_.tvlp != 0);
        panicIfNot(core_batch <=
                       std::numeric_limits<uint32_t>::max(),
                   "EpochScheduler: core batch exceeds uint32 range");
        rec.core_batch = static_cast<uint32_t>(core_batch);

        // BR starts when the PBS cluster frees up (br_cursor already
        // accounts for serialization on a slow KS cluster: the local
        // scratchpad's KS section is double-buffered one epoch deep).
        rec.br_start = br_cursor;
        rec.br_end =
            rec.br_start + core.blindRotationCycles(rec.core_batch);

        // KS starts when both the BR results and the KS cluster are
        // available.
        rec.ks_start = std::max(rec.br_end, ks_free);
        rec.ks_end = rec.ks_start +
                     Cycle(rec.core_batch) * t.keyswitchCycles();
        ks_free = rec.ks_end;

        // The next BR may not outrun the KS cluster by more than one
        // epoch (double-buffered outputs): it can start immediately,
        // but if the previous KS is still running when it finishes,
        // the chain serializes on KS.
        br_cursor = std::max(rec.br_end, epochs.empty()
                                             ? rec.br_end
                                             : epochs.back().ks_end);
        remaining -= rec.lwes;
        epochs.push_back(rec);
    }

    // Mark exposures: KS that outlives the following epoch's BR.
    for (size_t e = 0; e + 1 < epochs.size(); ++e)
        epochs[e].ks_exposed = epochs[e].ks_end > epochs[e + 1].br_end;
    if (!epochs.empty())
        epochs.back().ks_exposed = true; // final KS is always exposed
    return epochs;
}

Cycle
EpochScheduler::makespan(const std::vector<EpochRecord> &epochs)
{
    Cycle end = 0;
    for (const auto &e : epochs)
        end = std::max(end, e.ks_end);
    return end;
}

GanttTrace
EpochScheduler::toTrace(const std::vector<EpochRecord> &epochs)
{
    GanttTrace trace;
    auto &pbs = trace.row("PBS clusters");
    auto &ks = trace.row("KS clusters");
    for (const auto &e : epochs) {
        std::string label = std::to_string(e.index % 10);
        pbs.record(e.br_start, e.br_end, label);
        ks.record(e.ks_start, e.ks_end, label);
    }
    return trace;
}

} // namespace strix
