/**
 * @file
 * Table V reproduction: PBS latency and throughput across platforms
 * and parameter sets I-IV.
 *
 * Strix rows are computed by our cycle-level model; Concrete/NuFHE
 * rows come from our calibrated analytic baselines; FPGA/ASIC rows
 * are the published reference constants. The headline ratios (1,067x
 * vs CPU, 37x vs GPU, 7.4x vs Matcha) are recomputed at the bottom.
 */

#include <cstdio>

#include "baselines/cpu_model.h"
#include "baselines/gpu_model.h"
#include "baselines/reference_platforms.h"
#include "common/table.h"
#include "strix/accelerator.h"

using namespace strix;

namespace {

std::string
opt(const std::optional<double> &v, int digits)
{
    return v ? TextTable::num(*v, digits) : "-";
}

} // namespace

int
main()
{
    std::printf("=== Table V: PBS latency and throughput across "
                "platforms ===\n\n");

    CpuModel cpu;
    GpuModel gpu;
    StrixAccelerator strix;

    TextTable t;
    t.header({"Platform", "HW", "Set", "Latency ms", "PBS/s",
              "paper ms", "paper PBS/s"});

    // CPU (our analytic model) against the published Concrete rows.
    for (const auto &ref : tableVReferenceRows()) {
        const TfheParams *p = nullptr;
        for (const auto &ps : paperParamSets())
            if (ps.name == ref.param_set)
                p = &ps;
        if (ref.platform == "Concrete") {
            t.row({"Concrete (model)", "CPU", ref.param_set,
                   TextTable::num(cpu.pbsLatencyMs(*p), 2),
                   TextTable::num(cpu.throughputPbsPerSec(*p), 0),
                   opt(ref.latency_ms, 2),
                   opt(ref.throughput_pbs_s, 0)});
        } else if (ref.platform == "NuFHE") {
            t.row({"NuFHE (model)", "GPU", ref.param_set,
                   TextTable::num(gpu.pbsLatencyMs(*p), 2),
                   TextTable::num(gpu.throughputPbsPerSec(*p), 0),
                   opt(ref.latency_ms, 2),
                   opt(ref.throughput_pbs_s, 0)});
        } else {
            // FPGA/ASIC reference-only rows.
            t.row({ref.platform + " (published)", ref.hardware,
                   ref.param_set, opt(ref.latency_ms, 2),
                   opt(ref.throughput_pbs_s, 0), opt(ref.latency_ms, 2),
                   opt(ref.throughput_pbs_s, 0)});
        }
    }
    t.separator();

    // Strix rows: computed by the simulator.
    double strix_tp_I = 0.0;
    for (size_t i = 0; i < paperParamSets().size(); ++i) {
        const TfheParams &p = paperParamSets()[i];
        PbsPerf perf = strix.evaluatePbs(p);
        if (p.name == "I")
            strix_tp_I = perf.throughput_pbs_s;
        const auto &paper = tableVStrixPaperRows()[i];
        t.row({"Strix (simulated)", "ASIC", p.name,
               TextTable::num(perf.latency_ms, 2),
               TextTable::num(perf.throughput_pbs_s, 0),
               opt(paper.latency_ms, 2), opt(paper.throughput_pbs_s, 0)});
    }
    t.print();

    // Headline ratios at parameter set I.
    double cpu_tp = cpu.throughputPbsPerSec(paramsSetI());
    double gpu_tp = gpu.throughputPbsPerSec(paramsSetI());
    std::printf("\nHeadline throughput ratios (set I):\n");
    std::printf("  Strix vs CPU   : %7.0fx  (paper: 1,067x)\n",
                strix_tp_I / cpu_tp);
    std::printf("  Strix vs GPU   : %7.1fx  (paper: 37x)\n",
                strix_tp_I / gpu_tp);
    std::printf("  Strix vs Matcha: %7.1fx  (paper: 7.4x)\n",
                strix_tp_I / 10000.0);
    std::printf("  Set IV vs Concrete: %5.0fx throughput (paper: "
                "2,368x)\n",
                strix.evaluatePbs(paramsSetIV()).throughput_pbs_s /
                    cpu.throughputPbsPerSec(paramsSetIV()));
    return 0;
}
