/**
 * @file
 * Quickstart: the 5-minute tour of the library.
 *
 *  1. Generate TFHE keys (paper parameter set I, 110-bit).
 *  2. Encrypt bits, evaluate bootstrapped gates, decrypt.
 *  3. Encrypt a small integer and evaluate a function homomorphically
 *     with programmable bootstrapping (PBS).
 *  4. Ask the Strix simulator what the same workload costs on the
 *     accelerator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "strix/accelerator.h"
#include "tfhe/gates.h"

using namespace strix;

int
main()
{
    std::printf("-- 1. key generation (parameter set %s, lambda = "
                "%d bits)\n",
                paramsSetI().name.c_str(), paramsSetI().lambda);
    TfheContext ctx(paramsSetI(), /*seed=*/42);

    std::printf("-- 2. bootstrapped boolean gates\n");
    auto a = ctx.encryptBit(true);
    auto b = ctx.encryptBit(false);
    std::printf("   NAND(1,0) = %d   (expect 1)\n",
                ctx.decryptBit(gateNand(ctx, a, b)));
    std::printf("   AND(1,0)  = %d   (expect 0)\n",
                ctx.decryptBit(gateAnd(ctx, a, b)));
    std::printf("   XOR(1,0)  = %d   (expect 1)\n",
                ctx.decryptBit(gateXor(ctx, a, b)));
    auto m = gateMux(ctx, a, b, ctx.encryptBit(true));
    std::printf("   MUX(1,0,1) = %d  (expect 0: selects b)\n",
                ctx.decryptBit(m));

    std::printf("-- 3. programmable bootstrapping: f(x) = x^2 mod 8 "
                "on an encrypted x\n");
    const uint64_t space = 8;
    for (int64_t x : {2, 3, 5}) {
        auto ct = ctx.encryptInt(x, space);
        auto ct2 = ctx.applyLut(
            ct, space, [](int64_t v) { return (v * v) % 8; });
        std::printf("   x = %lld -> f(x) = %lld (expect %lld)\n",
                    static_cast<long long>(x),
                    static_cast<long long>(ctx.decryptInt(ct2, space)),
                    static_cast<long long>((x * x) % 8));
    }

    std::printf("-- 4. the same ops on the Strix accelerator model\n");
    StrixAccelerator strix;
    PbsPerf perf = strix.evaluatePbs(paramsSetI());
    std::printf("   PBS latency   : %.3f ms\n", perf.latency_ms);
    std::printf("   PBS throughput: %.0f PBS/s (device batch %u = "
                "%u cores x %u LWE/core)\n",
                perf.throughput_pbs_s, perf.device_batch,
                strix.config().tvlp, perf.core_batch);
    std::printf("done.\n");
    return 0;
}
