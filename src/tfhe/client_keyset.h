/**
 * @file
 * ClientKeyset: the client-side half of the split TFHE API.
 *
 * Owns every *secret*: the LWE key, the GLWE key, the extracted LWE
 * key, and the encryption RNG. Key generation also derives the public
 * EvalKeys bundle (BSK + KSK) from the same deterministic RNG stream,
 * available through evalKeys() as a `shared_ptr` the client can hand
 * to local ServerContexts or serialize to a remote server (see
 * serialize.h). Evaluation itself lives on ServerContext; nothing in
 * this class runs a bootstrap.
 *
 * Thread-safety contract
 * ----------------------
 * All members are safe to call concurrently on one shared keyset. Key
 * material is immutable after construction; encryptBit/encryptInt
 * serialize access to the internal RNG with a mutex, so concurrent
 * encryptions are safe (their interleaving -- and therefore the noise
 * each draw gets -- is whatever order the lock grants; encrypt results
 * are only deterministic across runs when calls are externally
 * ordered). Callers that need per-thread deterministic streams use
 * the explicit `Rng &` overloads, which never touch the internal RNG
 * or its mutex: the caller owns that generator and its thread-safety.
 */

#ifndef STRIX_TFHE_CLIENT_KEYSET_H
#define STRIX_TFHE_CLIENT_KEYSET_H

#include <memory>

#include "common/sync.h"
#include "tfhe/eval_keys.h"

namespace strix {

/** Secret keys + encryption RNG for one TFHE client. */
class ClientKeyset
{
  public:
    /**
     * Generate all key material for @p params deterministically from
     * @p seed (fixed stream order: LWE key, GLWE key, mask seeds, BSK
     * noise, KSK noise -- a given (params, seed) pair always yields
     * bit-identical keys) and prewarm the FFT plan caches for this
     * ring dimension. The BSK/KSK are generated with seeded masks, so
     * evalKeys() carries the mask seeds and serializes as either the
     * expanded EVK1 or the compressed EVK2 frame.
     */
    // no_thread_safety_analysis: the member-initializer list draws the
    // key material from rng_ without rng_mutex_. Manual proof: a
    // constructor runs strictly before any other thread can hold a
    // reference to the object, so no concurrent encrypt*() can touch
    // rng_ until construction completes.
    explicit ClientKeyset(const TfheParams &params,
                          uint64_t seed = 0xC0DEC0DEULL)
        STRIX_NO_THREAD_SAFETY_ANALYSIS;

    const TfheParams &params() const { return params_; }
    const LweKey &lweKey() const { return lwe_key_; }
    const GlweKey &glweKey() const { return glwe_key_; }
    const LweKey &extractedKey() const { return extracted_key_; }

    /**
     * The public evaluation-key bundle generated alongside the secret
     * keys. Sharing the pointer shares one copy of the BSK/KSK across
     * any number of ServerContexts.
     */
    const std::shared_ptr<const EvalKeys> &evalKeys() const
    {
        return eval_keys_;
    }

    /** Encrypt a boolean as mu = +-1/8 under the dim-n key. */
    LweCiphertext encryptBit(bool bit) const STRIX_EXCLUDES(rng_mutex_);

    /** Encrypt a boolean drawing noise from caller-owned @p rng. */
    LweCiphertext encryptBit(bool bit, Rng &rng) const;

    /**
     * Encrypt an integer in [0, msg_space) with centered LUT encoding
     * (padding bit) under the dim-n key.
     */
    LweCiphertext encryptInt(int64_t m, uint64_t msg_space) const
        STRIX_EXCLUDES(rng_mutex_);

    /** Encrypt an integer drawing noise from caller-owned @p rng. */
    LweCiphertext encryptInt(int64_t m, uint64_t msg_space,
                             Rng &rng) const;

    /** Decrypt a boolean (sign of the phase). */
    bool decryptBit(const LweCiphertext &ct) const;

    /** Decrypt an integer with centered LUT encoding. */
    int64_t decryptInt(const LweCiphertext &ct, uint64_t msg_space) const;

  private:
    TfheParams params_;

    /**
     * Populates the FFT plan caches for this ring dimension. Members
     * initialize in declaration order, so the caches are published
     * before any key material is generated and every later lookup is
     * a lock-free read.
     */
    struct FftPrewarm
    {
        explicit FftPrewarm(const TfheParams &p);
    };
    FftPrewarm fft_prewarm_;

    mutable Mutex rng_mutex_; //!< guards rng_ for encrypt*()
    mutable Rng rng_ STRIX_GUARDED_BY(rng_mutex_);
    LweKey lwe_key_;
    GlweKey glwe_key_;
    LweKey extracted_key_;
    std::shared_ptr<const EvalKeys> eval_keys_;
};

} // namespace strix

#endif // STRIX_TFHE_CLIENT_KEYSET_H
