/**
 * @file
 * NoC / global scratchpad analysis.
 *
 * Modeling assumptions (documented because the paper gives only bus
 * widths): the bsk multicast carries Fourier-domain points as 2x16-bit
 * fixed point (consistent with the paper's 16-bit twiddle precision),
 * expanded to the 64-bit VMA datapath at the cores, so the 512-bit bus
 * exactly sustains the design point's consumption of 2*CLP*CoLP*TvLP-
 * lane VMA traffic; the ksk bus streams HBM -> global scratchpad at
 * the epoch-amortized rate.
 */

#include "strix/noc.h"

namespace strix {

GlobalScratchpadPlan
NocModel::scratchpadPlan() const
{
    GlobalScratchpadPlan plan{};
    // Double-buffered GGSW tile (current iteration + streaming next).
    plan.bsk_tile_bytes = 2 * mem_.bskBytesPerIteration();
    // Double-buffered 1024-row keyswitch tile (rows are (n+1) words).
    const uint64_t ksk_row_bytes = (p_.n + 1) * sizeof(uint32_t);
    const uint64_t ksk_rows =
        std::min<uint64_t>(uint64_t(p_.k) * p_.N * p_.l_ksk, 1024);
    plan.ksk_tile_bytes = 2 * ksk_rows * ksk_row_bytes;
    // Private sections: input LWEs, initial test vectors, and output
    // (extracted) LWEs for a full epoch batch.
    const uint64_t epoch_lwes =
        uint64_t(cfg_.tvlp) * mem_.coreBatch();
    plan.ct_bytes = epoch_lwes * mem_.ctBytesPerLwe();

    plan.total_bytes =
        plan.bsk_tile_bytes + plan.ksk_tile_bytes + plan.ct_bytes;
    plan.capacity_bytes =
        static_cast<uint64_t>(cfg_.global_scratch_mb * 1024.0 * 1024.0);
    plan.fits = plan.total_bytes <= plan.capacity_bytes;
    return plan;
}

MulticastPlan
NocModel::multicastPlan() const
{
    MulticastPlan plan{};
    const double bytes_per_cycle_to_gbps = cfg_.clock_ghz; // B/cy -> GB/s

    plan.bsk_bus_gbps = (kBskBusBits / 8.0) * bytes_per_cycle_to_gbps;
    // Compressed 2x16-bit points: half the stored 8 B/point, consumed
    // once per blind-rotation iteration at the pipeline II.
    double bsk_bytes_per_cycle =
        0.5 * double(mem_.bskBytesPerIteration()) /
        double(timing_.iterationII());
    plan.bsk_demand_gbps = bsk_bytes_per_cycle * bytes_per_cycle_to_gbps;

    plan.ksk_bus_gbps = (kKskBusBits / 8.0) * bytes_per_cycle_to_gbps;
    const double epoch_cycles = double(timing_.iterations()) *
                                double(mem_.coreBatch()) *
                                double(timing_.iterationII());
    plan.ksk_demand_gbps = double(mem_.kskBytes()) / epoch_cycles *
                           bytes_per_cycle_to_gbps;

    plan.feasible = plan.bsk_demand_gbps <= plan.bsk_bus_gbps * 1.001 &&
                    plan.ksk_demand_gbps <= plan.ksk_bus_gbps * 1.001;
    return plan;
}

} // namespace strix
