/**
 * @file
 * ContextCache: keygen amortization and the concurrent first-touch
 * contract (N threads x one key -> exactly one keygen,
 * pointer-identical bundles), plus the split-API invariants the cache
 * rests on -- ServerContext null-keys panic and end-to-end evaluation
 * under a cached bundle. Runs under the STRIX_TSAN CI leg (label
 * `unit`), which is what makes the double-checked index trustworthy.
 */

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "tfhe/context_cache.h"
#include "tfhe/serialize.h"
#include "tfhe/server_context.h"

namespace strix {
namespace {

using namespace strix::test;

TEST(ContextCache, MissThenHitReturnsPointerIdenticalBundle)
{
    ContextCache cache;
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.keygenCount(), 0u);

    auto first = cache.getOrCreate(fastParams(), kSeedContextCache);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.keygenCount(), 1u);

    auto second = cache.getOrCreate(fastParams(), kSeedContextCache);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(cache.keygenCount(), 1u) << "hit must not re-run keygen";
}

TEST(ContextCache, KeysetAndEvalKeysViewsShareOneGeneration)
{
    ContextCache cache;
    auto keyset =
        cache.getOrCreateKeyset(fastParams(), kSeedContextCache);
    auto keys = cache.getOrCreate(fastParams(), kSeedContextCache);
    EXPECT_EQ(keys.get(), keyset->evalKeys().get());
    EXPECT_EQ(cache.keygenCount(), 1u);
}

TEST(ContextCache, DifferentSeedsAndParamsGetDistinctBundles)
{
    ContextCache cache;
    auto a = cache.getOrCreate(fastParams(), 1);
    auto b = cache.getOrCreate(fastParams(), 2);
    auto c = cache.getOrCreate(midParams(), 1);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(b.get(), c.get());
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.keygenCount(), 3u);
}

TEST(ContextCache, ClearKeepsOutstandingBundlesValid)
{
    ContextCache cache;
    auto keys = cache.getOrCreate(fastParams(), kSeedContextCache);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    // The dropped entry must stay usable through our reference.
    ServerContext server(keys);
    EXPECT_EQ(server.params().N, fastParams().N);
    // And a later lookup regenerates (a distinct allocation).
    auto again = cache.getOrCreate(fastParams(), kSeedContextCache);
    EXPECT_NE(again.get(), keys.get());
    EXPECT_EQ(cache.keygenCount(), 2u);
}

TEST(ContextCache, GlobalIsOneInstance)
{
    EXPECT_EQ(&ContextCache::global(), &ContextCache::global());
}

/**
 * The ISSUE's first-touch stress: many threads race getOrCreate on
 * the same previously-unseen key. Exactly one keygen may run, and
 * every thread must get the same published bundle. Distinct seeds
 * raced concurrently must still come out distinct.
 */
TEST(ContextCache, ConcurrentFirstTouchRunsKeygenExactlyOnce)
{
    constexpr int kThreads = 8;
    ContextCache cache;
    std::atomic<int> ready{0};
    std::vector<std::shared_ptr<const EvalKeys>> seen(kThreads);
    std::vector<std::shared_ptr<const EvalKeys>> seen_other(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {
            } // start barrier: maximize first-touch overlap
            seen[t] = cache.getOrCreate(fastParams(), 42);
            seen_other[t] =
                cache.getOrCreate(fastParams(), 43 + uint64_t(t) % 2);
        });
    }
    for (auto &t : threads)
        t.join();

    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[t].get(), seen[0].get()) << "thread " << t;
    EXPECT_NE(seen_other[0].get(), seen[0].get());
    // seed 42 + seeds {43, 44}: exactly three cold generations.
    EXPECT_EQ(cache.keygenCount(), 3u);
    EXPECT_EQ(cache.size(), 3u);
}

/** A cached bundle must actually evaluate: end-to-end PBS round. */
TEST(ContextCache, CachedBundleEvaluatesEndToEnd)
{
    auto keyset = ContextCache::global().getOrCreateKeyset(
        fastParams(), kSeedContextCache);
    ServerContext server(
        ContextCache::global().getOrCreate(fastParams(),
                                           kSeedContextCache));
    const uint64_t space = 8;
    for (int64_t m = 0; m < 4; ++m) {
        auto ct = keyset->encryptInt(m, space);
        auto out = server.applyLut(
            ct, space, [](int64_t v) { return (v + 1) % 8; });
        EXPECT_EQ(keyset->decryptInt(out, space), (m + 1) % 8);
    }
}

TEST(ContextCacheDeathTest, ServerContextRejectsNullBundle)
{
    EXPECT_DEATH(ServerContext(nullptr),
                 "ServerContext: null EvalKeys bundle");
}

// ---------------------------------------------------------------------------
// Bytes-budgeted LRU eviction. Tests drop the returned shared_ptrs
// (immediately, or by scope) where eviction is expected: an entry is
// pinned -- never evictable -- while any external reference is alive.

TEST(ContextCacheLru, StatsCountersTrack)
{
    ContextCache cache;
    CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.resident_bytes, 0u);
    EXPECT_EQ(s.budget_bytes, 0u);

    uint64_t bundle_bytes = 0;
    {
        auto keys = cache.getOrCreate(fastParams(), 1);
        bundle_bytes = keys->residentBytes();
    }
    EXPECT_GT(bundle_bytes, 0u);
    (void)cache.getOrCreate(fastParams(), 1); // hit
    s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.resident_bytes, bundle_bytes);

    cache.clear();
    EXPECT_EQ(cache.stats().resident_bytes, 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ContextCacheLru, BudgetEvictsLeastRecentlyUsed)
{
    ContextCache cache;
    const uint64_t b =
        cache.getOrCreate(fastParams(), 1)->residentBytes();
    (void)cache.getOrCreate(fastParams(), 2);
    (void)cache.getOrCreate(fastParams(), 3);
    (void)cache.getOrCreate(fastParams(), 1); // touch: 2 is now LRU
    ASSERT_EQ(cache.keygenCount(), 3u);

    cache.setBudgetBytes(2 * b); // room for two of the three bundles
    CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.resident_bytes, 2 * b);

    // Survivors must be the recently used seeds 1 and 3: looking them
    // up again is a hit, while the evicted seed 2 re-runs keygen.
    (void)cache.getOrCreate(fastParams(), 1);
    (void)cache.getOrCreate(fastParams(), 3);
    EXPECT_EQ(cache.keygenCount(), 3u);
    (void)cache.getOrCreate(fastParams(), 2);
    EXPECT_EQ(cache.keygenCount(), 4u);
}

TEST(ContextCacheLru, InsertionUnderBudgetEvictsEagerly)
{
    ContextCache cache;
    const uint64_t b =
        cache.getOrCreate(fastParams(), 1)->residentBytes();
    cache.setBudgetBytes(b); // exactly one bundle fits
    (void)cache.getOrCreate(fastParams(), 2);
    CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u) << "inserting 2 must evict 1";
    EXPECT_EQ(s.entries, 1u);
    EXPECT_LE(s.resident_bytes, b);
    // Seed 2 -- the entry just built for the caller -- must survive.
    (void)cache.getOrCreate(fastParams(), 2);
    EXPECT_EQ(cache.keygenCount(), 2u);
}

TEST(ContextCacheLru, PinnedBundlesAreNeverEvicted)
{
    ContextCache cache;
    auto pinned = cache.getOrCreate(fastParams(), 1);
    const uint64_t b = pinned->residentBytes();
    (void)cache.getOrCreate(fastParams(), 2);

    // Room for one: the unpinned seed 2 goes, the pinned seed 1 stays.
    cache.setBudgetBytes(b);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.getOrCreate(fastParams(), 1).get(), pinned.get());
    EXPECT_EQ(cache.keygenCount(), 2u);

    // Over budget with only pinned entries left: the cache must stay
    // over budget rather than invalidate a live tenant.
    cache.setBudgetBytes(b / 2);
    CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.resident_bytes, s.budget_bytes);

    // Unpinning makes it evictable on the next budget application.
    pinned.reset();
    cache.setBudgetBytes(b / 2);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ContextCacheLru, ZeroBudgetRestoresUnbounded)
{
    ContextCache cache;
    const uint64_t b =
        cache.getOrCreate(fastParams(), 1)->residentBytes();
    cache.setBudgetBytes(b);
    cache.setBudgetBytes(0);
    for (uint64_t seed = 2; seed <= 5; ++seed)
        (void)cache.getOrCreate(fastParams(), seed);
    CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 5u);
}

/**
 * Eviction racing getOrCreate: threads churn a seed space that cannot
 * fit the budget (every insert evicts) while one bundle stays pinned
 * from the main thread. Exercises the built/pinned checks in the
 * eviction scan against concurrent keygen publication; runs under the
 * STRIX_TSAN CI leg. Tiny parameters keep the many keygens cheap.
 */
TEST(ContextCacheLru, ConcurrentChurnUnderBudgetPressure)
{
    const TfheParams tiny = testParams(16, 64, 1, 2, 8, 0.0);
    constexpr int kThreads = 4;
    constexpr int kIters = 16;
    constexpr uint64_t kSeeds = 3;

    ContextCache cache;
    auto pinned = cache.getOrCreate(tiny, 0);
    cache.setBudgetBytes(pinned->residentBytes()); // 1-bundle budget

    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {
            }
            for (int i = 0; i < kIters; ++i) {
                uint64_t seed = 1 + (uint64_t(t) + i) % kSeeds;
                auto keys = cache.getOrCreate(tiny, seed);
                ASSERT_NE(keys, nullptr);
                EXPECT_EQ(keys->params().N, tiny.N);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    // The pinned bundle survived every eviction scan: same pointer,
    // no regeneration for its seed.
    EXPECT_EQ(cache.getOrCreate(tiny, 0).get(), pinned.get());
    CacheStats s = cache.stats();
    EXPECT_GT(s.evictions, 0u);
    EXPECT_EQ(s.hits + s.misses, uint64_t(kThreads) * kIters + 2);
}

// ---------------------------------------------------------------------------
// getOrInsert: externally-deserialized bundles (the serving daemon's
// RegisterTenant path) adopted into the same LRU budgeting and
// CacheStats as keygen entries.

/**
 * A bundle with no owner but the adopting cache and whoever holds the
 * returned pointer -- the wire shape: serialize a generated bundle and
 * re-expand it into a fresh allocation.
 */
std::shared_ptr<const EvalKeys>
externalBundle(uint64_t seed)
{
    auto keys = ContextCache::global().getOrCreate(fastParams(), seed);
    std::ostringstream os;
    serialize(os, *keys, EvalKeysFormat::Seeded);
    std::istringstream is(os.str());
    return deserializeEvalKeys(is);
}

TEST(ContextCacheInsert, AdoptsBundleAndHitsOnRepeat)
{
    ContextCache cache;
    auto bundle = externalBundle(71);
    const uint64_t b = bundle->residentBytes();

    auto adopted = cache.getOrInsert("tenant-a", bundle);
    EXPECT_EQ(adopted.get(), bundle.get());
    CacheStats s = cache.stats();
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u) << "an insert is not a keygen miss";
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.resident_bytes, b);
    EXPECT_EQ(cache.keygenCount(), 0u);

    // Idempotent re-registration: a second upload under the same key
    // returns the *resident* bundle and drops the new copy.
    auto other = externalBundle(71);
    auto again = cache.getOrInsert("tenant-a", other);
    EXPECT_EQ(again.get(), bundle.get());
    EXPECT_NE(again.get(), other.get());
    s = cache.stats();
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.resident_bytes, b) << "no double accounting";
}

TEST(ContextCacheInsert, LookupMissesThenHitsThenServes)
{
    ContextCache cache;
    EXPECT_EQ(cache.lookup("tenant-a"), nullptr);

    auto bundle = externalBundle(72);
    (void)cache.getOrInsert("tenant-a", bundle);
    auto found = cache.lookup("tenant-a");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found.get(), bundle.get());

    // The adopted bundle must actually evaluate.
    auto keyset =
        ContextCache::global().getOrCreateKeyset(fastParams(), 72);
    ServerContext server(found);
    auto ct = keyset->encryptInt(3, 8);
    auto out = server.applyLut(ct, 8,
                               [](int64_t v) { return (v * 2) % 8; });
    EXPECT_EQ(keyset->decryptInt(out, 8), 6);
}

TEST(ContextCacheInsert, ExternalKeysAreNamespacedFromKeygen)
{
    ContextCache cache;
    (void)cache.getOrCreate(fastParams(), 73);
    // A hostile (or merely unlucky) params_key cannot collide with a
    // keygen entry, whatever string it is.
    (void)cache.getOrInsert("n=48 N=512", externalBundle(73));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.keygenCount(), 1u);
    EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(ContextCacheInsert, BudgetPressureEvictsIdleTenant)
{
    ContextCache cache;
    uint64_t b = 0;
    {
        auto bundle = externalBundle(74);
        b = bundle->residentBytes();
        (void)cache.getOrInsert("tenant-a", bundle);
    } // tenant A is now idle: no external references
    cache.setBudgetBytes(b + b / 2); // room for one bundle, not two

    // Registering B under pressure evicts idle A...
    auto b_bundle = externalBundle(75);
    auto b_res = cache.getOrInsert("tenant-b", b_bundle);
    CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(cache.lookup("tenant-a"), nullptr)
        << "A must re-register";
    EXPECT_NE(cache.lookup("tenant-b"), nullptr);

    // ...while B -- still referenced here, an active tenant -- is
    // pinned even when the budget drops below its size.
    cache.setBudgetBytes(b / 2);
    s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.resident_bytes, s.budget_bytes);

    // Dropping the last external reference makes B evictable.
    b_bundle.reset();
    b_res.reset();
    cache.setBudgetBytes(b / 2);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ContextCacheInsert, LruOrderSpansKeygenAndInsertedEntries)
{
    ContextCache cache;
    const uint64_t b =
        cache.getOrCreate(fastParams(), 76)->residentBytes();
    (void)cache.getOrInsert("tenant-a", externalBundle(77));
    (void)cache.getOrCreate(fastParams(), 76); // keygen entry is MRU

    cache.setBudgetBytes(b); // room for one: the idle external goes
    CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(cache.lookup("tenant-a"), nullptr);
    (void)cache.getOrCreate(fastParams(), 76);
    EXPECT_EQ(cache.keygenCount(), 1u) << "keygen entry survived";
}

} // namespace
} // namespace strix
