/**
 * @file
 * Shared double-checked plan cache used by FftPlan and NegacyclicFft.
 *
 * One atomic slot per power-of-two size, indexed by log2(size).
 * Publication is double-checked: the steady-state path is a single
 * acquire load with no lock, so concurrent bootstraps never contend
 * here. Published objects are deliberately immortal (never freed) --
 * handed-out references must outlive any thread that might still be
 * transforming at process exit. Keeping the synchronization in one
 * template means a future memory-order fix cannot miss one of the two
 * caches.
 */

#ifndef STRIX_POLY_PLAN_CACHE_H
#define STRIX_POLY_PLAN_CACHE_H

#include <atomic>
#include <cstddef>

#include "common/logging.h"
#include "common/sync.h"
#include "poly/complex_fft.h" // kMaxFftLog2

namespace strix {
namespace detail {

/** Lock-free-after-publication cache of immortal @p Plan objects. */
template <typename Plan>
class Log2PlanCache
{
  public:
    /** @param size power of two, validated by the caller / Plan ctor. */
    const Plan &get(size_t size)
    {
        size_t slot = 0;
        while ((size_t{1} << slot) < size)
            ++slot;
        panicIfNot((size_t{1} << slot) == size && slot <= kMaxFftLog2,
                   "plan cache: size must be a power of two in range");
        const Plan *plan = slots_[slot].load(std::memory_order_acquire);
        if (plan == nullptr) {
            MutexLock lock(build_mutex_);
            plan = slots_[slot].load(std::memory_order_relaxed);
            if (plan == nullptr) {
                plan = new Plan(size);
                slots_[slot].store(plan, std::memory_order_release);
            }
        }
        return *plan;
    }

  private:
    // slots_ is intentionally NOT STRIX_GUARDED_BY(build_mutex_): the
    // steady-state read is a lock-free acquire load; build_mutex_ only
    // serializes the one-time build/publish (double-checked locking),
    // and the release/acquire pair carries the publication ordering.
    std::atomic<const Plan *> slots_[kMaxFftLog2 + 1] = {};
    Mutex build_mutex_;
};

} // namespace detail
} // namespace strix

#endif // STRIX_POLY_PLAN_CACHE_H
