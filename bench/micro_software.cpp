/**
 * @file
 * Google-benchmark microbenchmarks of the software TFHE substrate:
 * transforms, multipliers, decomposition, external product, PBS,
 * keyswitch, and gates. These are the measured counterparts of the
 * CPU baseline's cost model.
 */

#include <benchmark/benchmark.h>

#include "tfhe/gates.h"

using namespace strix;

namespace {

/** Shared set-I context (keygen is expensive; build once). */
TfheContext &
ctxI()
{
    static TfheContext ctx(paramsSetI(), 77);
    return ctx;
}

void
BM_ComplexFft(benchmark::State &state)
{
    const size_t m = state.range(0);
    const FftPlan &plan = FftPlan::get(m);
    std::vector<Cplx> data(m, Cplx(0.5, -0.25));
    for (auto _ : state) {
        plan.forward(data.data());
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ComplexFft)->Arg(512)->Arg(1024)->Arg(8192);

void
BM_NegacyclicForward(benchmark::State &state)
{
    const size_t n = state.range(0);
    const auto &eng = NegacyclicFft::get(n);
    Rng rng(1);
    TorusPolynomial p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = rng.uniformTorus32();
    FreqPolynomial f;
    for (auto _ : state) {
        eng.forward(f, p);
        benchmark::DoNotOptimize(f.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NegacyclicForward)->Arg(1024)->Arg(2048)->Arg(16384);

void
BM_PolyMulNaive(benchmark::State &state)
{
    const size_t n = state.range(0);
    Rng rng(2);
    IntPolynomial a(n);
    TorusPolynomial b(n), r(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = int32_t(rng.uniformBelow(1024)) - 512;
        b[i] = rng.uniformTorus32();
    }
    for (auto _ : state) {
        negacyclicMulNaive(r, a, b);
        benchmark::DoNotOptimize(r.data());
    }
}
BENCHMARK(BM_PolyMulNaive)->Arg(256)->Arg(1024);

void
BM_PolyMulKaratsuba(benchmark::State &state)
{
    const size_t n = state.range(0);
    Rng rng(3);
    IntPolynomial a(n);
    TorusPolynomial b(n), r(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = int32_t(rng.uniformBelow(1024)) - 512;
        b[i] = rng.uniformTorus32();
    }
    for (auto _ : state) {
        negacyclicMulKaratsuba(r, a, b);
        benchmark::DoNotOptimize(r.data());
    }
}
BENCHMARK(BM_PolyMulKaratsuba)->Arg(256)->Arg(1024);

void
BM_PolyMulFft(benchmark::State &state)
{
    const size_t n = state.range(0);
    Rng rng(4);
    IntPolynomial a(n);
    TorusPolynomial b(n), r(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = int32_t(rng.uniformBelow(1024)) - 512;
        b[i] = rng.uniformTorus32();
    }
    for (auto _ : state) {
        negacyclicMulFft(r, a, b);
        benchmark::DoNotOptimize(r.data());
    }
}
BENCHMARK(BM_PolyMulFft)->Arg(256)->Arg(1024)->Arg(16384);

void
BM_GadgetDecomposePoly(benchmark::State &state)
{
    const size_t n = state.range(0);
    GadgetParams g{10, 2};
    Rng rng(5);
    TorusPolynomial p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = rng.uniformTorus32();
    std::vector<IntPolynomial> out;
    for (auto _ : state) {
        gadgetDecomposePoly(out, p, g);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GadgetDecomposePoly)->Arg(1024)->Arg(16384);

void
BM_ExternalProductFft(benchmark::State &state)
{
    Rng rng(6);
    const uint32_t n = 1024, k = 1;
    GlweKey key(k, n, rng);
    GadgetParams g{10, 2};
    GgswFft ggsw(ggswEncrypt(key, 1, g, 0.0, rng));
    TorusPolynomial mu(n);
    GlweCiphertext ct = glweEncrypt(key, mu, 0.0, rng);
    GlweCiphertext out;
    for (auto _ : state) {
        ggsw.externalProduct(out, ct);
        benchmark::DoNotOptimize(&out);
    }
}
BENCHMARK(BM_ExternalProductFft);

void
BM_ProgrammableBootstrap(benchmark::State &state)
{
    auto &ctx = ctxI();
    auto ct = ctx.encryptInt(2, 4);
    TorusPolynomial tv = makeIntTestVector(ctx.params().N, 4,
                                           [](int64_t x) { return x; });
    for (auto _ : state) {
        auto out = programmableBootstrap(ct, tv, ctx.bsk());
        benchmark::DoNotOptimize(&out);
    }
    state.SetLabel("parameter set I");
}
BENCHMARK(BM_ProgrammableBootstrap)->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

void
BM_KeySwitch(benchmark::State &state)
{
    auto &ctx = ctxI();
    auto ct = ctx.encryptInt(2, 4);
    TorusPolynomial tv = makeIntTestVector(ctx.params().N, 4,
                                           [](int64_t x) { return x; });
    auto big = programmableBootstrap(ct, tv, ctx.bsk());
    for (auto _ : state) {
        auto out = keySwitch(big, ctx.ksk());
        benchmark::DoNotOptimize(&out);
    }
}
BENCHMARK(BM_KeySwitch)->Unit(benchmark::kMillisecond);

void
BM_GateNand(benchmark::State &state)
{
    auto &ctx = ctxI();
    auto a = ctx.encryptBit(true);
    auto b = ctx.encryptBit(false);
    for (auto _ : state) {
        auto out = gateNand(ctx, a, b);
        benchmark::DoNotOptimize(&out);
    }
    state.SetLabel("bootstrapped NAND, set I");
}
BENCHMARK(BM_GateNand)->Unit(benchmark::kMillisecond)->MinTime(2.0);

} // namespace

BENCHMARK_MAIN();
