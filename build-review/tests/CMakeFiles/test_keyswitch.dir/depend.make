# Empty dependencies file for test_keyswitch.
# This may be replaced when dependencies are built.
