/**
 * @file
 * Homomorphic look-up tables: an encrypted threshold classifier,
 * served across repeated sessions through the ContextCache.
 *
 * Scenario (the kind of workload the paper's intro motivates): a
 * server scores sensor readings it must never see in the clear. Each
 * reading x in [0,16) is encrypted client-side; the server
 * homomorphically evaluates
 *
 *     risk(x)  = 0 (low) / 1 (medium) / 2 (high)   -- one PBS
 *     clamp(x) = min(x, 9)                          -- one PBS
 *     score    = risk(clamp(x) + bias)              -- chained PBS
 *
 * demonstrating that PBS evaluates arbitrary univariate functions
 * while refreshing noise, so chains of any depth stay decryptable.
 *
 * Setup cost is the point of the session loop: key generation at set
 * I dominates everything else a short session does, so each session
 * asks ContextCache::global() for its keys instead of regenerating --
 * the first touch pays keygen once, every later session gets the
 * cached bundle back in ~microseconds.
 */

#include <chrono>
#include <cstdio>

#include "tfhe/context_cache.h"
#include "tfhe/server_context.h"

using namespace strix;

namespace {

int64_t
risk(int64_t x)
{
    if (x < 6)
        return 0;
    if (x < 11)
        return 1;
    return 2;
}

/**
 * One serving session: fetch keys from the cache, classify a few
 * readings, self-check. Returns the number of mismatches.
 */
int
runSession(int session, int64_t x0)
{
    using Clock = std::chrono::steady_clock;
    const uint64_t space = 16;
    const uint64_t seed = 1001; // one tenant: all sessions share keys

    auto t0 = Clock::now();
    auto keyset =
        ContextCache::global().getOrCreateKeyset(paramsSetI(), seed);
    // keyset->evalKeys() is the same pointer getOrCreate() returns:
    // one lookup serves both roles.
    ServerContext server(keyset->evalKeys());
    double setup_ms =
        std::chrono::duration<double>(Clock::now() - t0).count() * 1e3;
    std::printf("session %d: setup %.3f ms (%s; %llu keygen(s) so "
                "far)\n",
                session, setup_ms,
                session == 0 ? "cold keygen" : "cache hit",
                static_cast<unsigned long long>(
                    ContextCache::global().keygenCount()));

    int failures = 0;
    std::printf("%6s %12s %12s %18s\n", "x", "risk(x)", "clamp(x)",
                "risk(clamp(x)+2)");
    for (int64_t x = x0; x < 16; x += 6) {
        auto ct = keyset->encryptInt(x, space);

        auto ct_risk = server.applyLut(ct, space, risk);
        auto ct_clamp = server.applyLut(
            ct, space, [](int64_t v) { return v < 9 ? v : 9; });

        // Chained PBS: add an encrypted bias, then classify again.
        auto bias = keyset->encryptInt(2, space);
        auto shifted = ct_clamp;
        shifted.addAssign(bias);
        // Additions shift the centered encoding by the bias center;
        // recenter with a trivial correction of -1/(4*space)... the
        // LUT API hides this: chain through applyLut directly.
        auto recenter = LweCiphertext::trivial(
            shifted.dim(), 0u - encodeLut(0, space));
        shifted.addAssign(recenter);
        auto ct_chain = server.applyLut(shifted, space, risk);

        int64_t got_risk = keyset->decryptInt(ct_risk, space);
        int64_t got_clamp = keyset->decryptInt(ct_clamp, space);
        int64_t got_chain = keyset->decryptInt(ct_chain, space);
        int64_t want_clamp = x < 9 ? x : 9;
        int64_t want_chain = risk(want_clamp + 2);

        bool ok = got_risk == risk(x) && got_clamp == want_clamp &&
                  got_chain == want_chain;
        failures += !ok;
        std::printf("%6lld %8lld (%lld) %8lld (%lld) %12lld (%lld)  %s\n",
                    static_cast<long long>(x),
                    static_cast<long long>(got_risk),
                    static_cast<long long>(risk(x)),
                    static_cast<long long>(got_clamp),
                    static_cast<long long>(want_clamp),
                    static_cast<long long>(got_chain),
                    static_cast<long long>(want_chain),
                    ok ? "ok" : "MISMATCH");
    }
    return failures;
}

} // namespace

int
main()
{
    std::printf("Encrypted threshold classifier, 3 sessions through "
                "the ContextCache\n\n");
    int failures = 0;
    for (int session = 0; session < 3; ++session) {
        failures += runSession(session, session);
        std::printf("\n");
    }
    std::printf("%s\n", failures == 0
                            ? "all encrypted evaluations correct"
                            : "SOME EVALUATIONS FAILED");
    return failures == 0 ? 0 : 1;
}
