# Empty dependencies file for test_integer.
# This may be replaced when dependencies are built.
