/**
 * @file
 * EncryptedUint: the radix-integer ciphertext container.
 *
 * Split out of tfhe/integer.h so pure data consumers (serialize.h,
 * and through it the wire layer and serving daemon) can name the
 * struct without pulling in the client-side encrypt/decrypt API and
 * its secret-key header -- the lint-enforced secret-isolation
 * boundary runs between this header and integer.h. Semantics
 * (little-endian digits, centered LUT encoding with one headroom
 * bit) are documented with the arithmetic in integer.h.
 */

#ifndef STRIX_TFHE_ENCRYPTED_UINT_H
#define STRIX_TFHE_ENCRYPTED_UINT_H

#include <cstdint>
#include <vector>

#include "tfhe/lwe.h"

namespace strix {

/** Little-endian encrypted unsigned integer. */
struct EncryptedUint
{
    std::vector<LweCiphertext> digits; //!< LSB first
    uint32_t digit_bits = 2;

    uint32_t numDigits() const
    {
        return static_cast<uint32_t>(digits.size());
    }
};

} // namespace strix

#endif // STRIX_TFHE_ENCRYPTED_UINT_H
