/**
 * @file
 * Measured CPU baseline: runs our actual software TFHE (not the
 * analytic model) single-threaded and through the batched,
 * thread-parallel PBS API, reporting real PBS latency and throughput
 * on this machine. Complements Table V's Concrete rows: the absolute
 * numbers depend on how optimized the FFT is, but the scaling
 * behaviour (throughput = threads/latency, no packing) is the
 * phenomenon the paper's Sec. III builds on.
 *
 * Flags:
 *   --smoke        single rep, small batches, thread sweep capped at
 *                  2 workers (used by the ctest smoke run).
 *   --json <file>  additionally write the measurements as JSON; CI's
 *                  bench job uploads this next to micro_software's
 *                  capture in the `bench-results` artifact.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_flags.h"
#include "pbs_sweep.h"
#include "poly/simd.h"
#include "tfhe/client_keyset.h"
#include "tfhe/server_context.h"

using namespace strix;

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!matchJsonFlag(argc, argv, i, json_path)) {
            std::fprintf(stderr,
                         "usage: cpu_measured [--smoke] [--json <file>]\n");
            return 2;
        }
    }

    std::printf("=== Measured software-TFHE PBS on this machine "
                "(parameter set I) ===\n\n");
    std::printf("FFT kernel backend: %s\n\n", activeKernels().name);

    ClientKeyset client(paramsSetI(), 4242);
    ServerContext server(client.evalKeys());
    const uint64_t space = 4;
    TorusPolynomial tv = makeIntTestVector(
        server.params().N, space, [](int64_t x) { return x; });
    LweCiphertext input = client.encryptInt(1, space);

    using Clock = std::chrono::steady_clock;

    // Single-thread latency.
    const int warm = smoke ? 0 : 2, reps = smoke ? 1 : 8;
    for (int i = 0; i < warm; ++i)
        server.bootstrap(input, tv);
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i)
        server.bootstrap(input, tv);
    double lat_ms =
        std::chrono::duration<double>(Clock::now() - t0).count() /
        reps * 1e3;
    std::printf("single-thread PBS+KS latency: %.2f ms "
                "(Concrete on Xeon: 14 ms)\n\n",
                lat_ms);

    // Thread scaling through ServerContext::bootstrapBatch. Each worker
    // still bootstraps one message at a time -- throughput scales
    // with workers, never within a bootstrap, the 'no ciphertext
    // packing' property that motivates Strix's batching architecture.
    std::vector<PbsSweepRow> rows;
    bool ok = runBatchPbsSweep(client, server, smoke, &rows);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"binary\": \"cpu_measured\",\n"
                     "  \"params\": \"I\",\n"
                     "  \"fft_kernel\": \"%s\",\n"
                     "  \"smoke\": %s,\n"
                     "  \"single_thread_pbs_ms\": %.4f,\n"
                     "  \"sweep\": [",
                     activeKernels().name, smoke ? "true" : "false",
                     lat_ms);
        for (size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                         "%s\n    {\"threads\": %u, \"batch\": %zu, "
                         "\"pbs_per_s\": %.2f, \"scaling\": %.3f}",
                         i ? "," : "", rows[i].threads, rows[i].batch,
                         rows[i].pbs_per_s, rows[i].scaling);
        std::fprintf(f, "\n  ],\n  \"outputs_ok\": %s\n}\n",
                     ok ? "true" : "false");
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return ok ? 0 : 1;
}
