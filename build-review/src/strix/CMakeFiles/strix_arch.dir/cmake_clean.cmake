file(REMOVE_RECURSE
  "CMakeFiles/strix_arch.dir/__/sim/timeline.cpp.o"
  "CMakeFiles/strix_arch.dir/__/sim/timeline.cpp.o.d"
  "CMakeFiles/strix_arch.dir/accelerator.cpp.o"
  "CMakeFiles/strix_arch.dir/accelerator.cpp.o.d"
  "CMakeFiles/strix_arch.dir/area_model.cpp.o"
  "CMakeFiles/strix_arch.dir/area_model.cpp.o.d"
  "CMakeFiles/strix_arch.dir/hsc.cpp.o"
  "CMakeFiles/strix_arch.dir/hsc.cpp.o.d"
  "CMakeFiles/strix_arch.dir/noc.cpp.o"
  "CMakeFiles/strix_arch.dir/noc.cpp.o.d"
  "CMakeFiles/strix_arch.dir/scheduler.cpp.o"
  "CMakeFiles/strix_arch.dir/scheduler.cpp.o.d"
  "libstrix_arch.a"
  "libstrix_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strix_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
