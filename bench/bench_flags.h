/**
 * @file
 * Shared flag parsing for the measured bench binaries: both
 * micro_software and cpu_measured expose the same `--json <file>` /
 * `--json=<file>` spelling, kept in one place so the syntax cannot
 * drift between them.
 */

#ifndef STRIX_BENCH_FLAGS_H
#define STRIX_BENCH_FLAGS_H

#include <cstring>
#include <string>

namespace strix {

/**
 * If argv[i] is the --json flag (either spelling) with a usable path
 * value, capture the path into @p json_path, advance @p i past any
 * consumed value argument, and return true. A missing/empty path or a
 * value that is itself a flag ("--json --smoke") does NOT match, so
 * the caller reports it as an unrecognized argument instead of
 * silently writing to a file named like a flag.
 */
inline bool
matchJsonFlag(int argc, char **argv, int &i, std::string &json_path)
{
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc &&
        argv[i + 1][0] != '\0' && argv[i + 1][0] != '-') {
        json_path = argv[++i];
        return true;
    }
    if (!std::strncmp(argv[i], "--json=", 7) && argv[i][7] != '\0') {
        json_path = argv[i] + 7;
        return true;
    }
    return false;
}

} // namespace strix

#endif // STRIX_BENCH_FLAGS_H
