/**
 * @file
 * Measured CPU baseline: runs our actual software TFHE (not the
 * analytic model) single-threaded and through the batched,
 * thread-parallel PBS API, reporting real PBS latency and throughput
 * on this machine. Complements Table V's Concrete rows: the absolute
 * numbers depend on how optimized the FFT is, but the scaling
 * behaviour (throughput = threads/latency, no packing) is the
 * phenomenon the paper's Sec. III builds on.
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "pbs_sweep.h"
#include "tfhe/context.h"

using namespace strix;

int
main(int argc, char **argv)
{
    // --smoke: single rep, small batches, thread sweep capped at 2
    // workers. Used by the ctest smoke run so the binary is exercised
    // end-to-end without paying for a full measurement.
    const bool smoke = argc > 1 && !std::strcmp(argv[1], "--smoke");

    std::printf("=== Measured software-TFHE PBS on this machine "
                "(parameter set I) ===\n\n");

    TfheContext ctx(paramsSetI(), 4242);
    const uint64_t space = 4;
    TorusPolynomial tv = makeIntTestVector(
        ctx.params().N, space, [](int64_t x) { return x; });
    LweCiphertext input = ctx.encryptInt(1, space);

    using Clock = std::chrono::steady_clock;

    // Single-thread latency.
    const int warm = smoke ? 0 : 2, reps = smoke ? 1 : 8;
    for (int i = 0; i < warm; ++i)
        ctx.bootstrap(input, tv);
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i)
        ctx.bootstrap(input, tv);
    double lat_ms =
        std::chrono::duration<double>(Clock::now() - t0).count() /
        reps * 1e3;
    std::printf("single-thread PBS+KS latency: %.2f ms "
                "(Concrete on Xeon: 14 ms)\n\n",
                lat_ms);

    // Thread scaling through TfheContext::bootstrapBatch. Each worker
    // still bootstraps one message at a time -- throughput scales
    // with workers, never within a bootstrap, the 'no ciphertext
    // packing' property that motivates Strix's batching architecture.
    bool ok = runBatchPbsSweep(ctx, smoke);
    return ok ? 0 : 1;
}
