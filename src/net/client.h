/**
 * @file
 * StrixClient: blocking byte-level client for the MSG1 protocol.
 *
 * The client lives in net/, below the TFHE layer, so it moves opaque
 * payload bytes: callers (examples/remote_session, tools/serverd
 * self-tests, the serving bench) build request payloads with the
 * serialize.h writers and decode reply payloads with the validating
 * readers themselves. Two usage shapes:
 *
 *  - call(): fire one request and block for its reply -- the simple
 *    closed-loop path.
 *  - send()/recvReply(): pipelining -- keep several requests in
 *    flight on one connection and match replies by request id (the
 *    server replies in completion order, not submission order; that
 *    is the point of cross-tenant batching).
 *
 * Not thread-safe: one StrixClient per thread, like a socket.
 */

#ifndef STRIX_NET_CLIENT_H
#define STRIX_NET_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace strix {

/** Blocking MSG1 client over one TCP connection. */
class StrixClient
{
  public:
    /** Outcome of one request. */
    struct Reply
    {
        bool ok = false;             //!< true on an Ok frame
        uint64_t request_id = 0;     //!< id this reply answers
        WireError error = WireError::Internal; //!< valid when !ok
        std::string error_text;      //!< server-provided detail
        std::vector<uint8_t> payload; //!< Ok payload (request-typed)
    };

    StrixClient() = default;

    /** Connect to 127.0.0.1:@p port (blocking). */
    bool connectLoopback(uint16_t port);
    /** Connect to @p host (dotted quad) : @p port. */
    bool connect(const std::string &host, uint16_t port);
    bool connected() const { return conn_.valid(); }
    void close() { conn_.close(); }

    /**
     * Send one request and block for its reply. Requires no other
     * request in flight on this connection (use send()/recvReply()
     * for pipelining); a reply carrying a different request id is
     * reported as a Protocol error.
     */
    Reply call(MsgType type, uint64_t tenant,
               std::vector<uint8_t> payload, uint64_t deadline_us = 0);

    /** Liveness probe: empty-payload Ping round trip. */
    bool ping();

    /**
     * Fire a request without waiting; returns its request id (0 on a
     * dead connection). Pair with recvReply().
     */
    uint64_t send(MsgType type, uint64_t tenant,
                  std::vector<uint8_t> payload,
                  uint64_t deadline_us = 0);

    /**
     * Block for the next reply frame (any request id). False when the
     * connection died or the server sent malformed bytes; the
     * connection is closed in that case.
     */
    bool recvReply(Reply &out);

  private:
    TcpConn conn_;
    FrameDecoder decoder_;
    uint64_t next_id_ = 1;
};

} // namespace strix

#endif // STRIX_NET_CLIENT_H
