/**
 * @file
 * Binary serialization for TFHE material.
 *
 * A TFHE deployment is client/server: the client keeps the secret
 * keys and ships ciphertexts plus the (public) bootstrapping and
 * keyswitching keys to the server. This module provides a compact,
 * versioned, little-endian binary format for every transferable
 * object, built on a small FrameWriter/FrameReader layer (frame header
 * = type tag + version; version-2 frames add length-checked sections).
 *
 * Two generations of evaluation-key frames coexist:
 *
 *  - v1 (`BSK1`/`EVK1`): the expanded format -- every mask and body
 *    component travels. Kept as the legacy read/write path so old
 *    blobs keep loading, and the only format bundles without mask
 *    seeds can write.
 *  - v2 (`BSK2`/`KSK2`/`EVK2`): the compressed format for keys from
 *    the seeded keygen path. Mask components are pure PRNG output
 *    regenerable from a shipped 64-bit seed (Rng::fork per row), so
 *    the frame carries only seeds + body components: ~1/(k+1) of the
 *    BSK and ~1/(n+1) of the KSK -- about a third of the EVK1 size at
 *    paper set I. deserializeEvalKeys() re-expands the masks
 *    deterministically; the rebuilt bundle is bit-identical to the
 *    directly generated one (same process / same FFT kernel).
 */

#ifndef STRIX_TFHE_SERIALIZE_H
#define STRIX_TFHE_SERIALIZE_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/frame.h"
#include "tfhe/encrypted_uint.h"
#include "tfhe/eval_keys.h"
#include "tfhe/keyswitch.h"
#include "tfhe/params.h"

namespace strix {

/** Format version written into every v1 frame. */
inline constexpr uint32_t kSerializeVersion = 1;

/** Format version of the seeded (compressed) frames. */
inline constexpr uint32_t kSerializeVersionSeeded = 2;

/** Frame type tags. */
enum class SerialTag : uint32_t
{
    Params = 0x50415230,           // "PAR0"
    LweKey = 0x4C4B4559,           // "LKEY"
    LweCiphertext = 0x4C435431,    // "LCT1"
    GlweKey = 0x474B4559,          // "GKEY"
    TorusPoly = 0x54504C59,        // "TPLY"
    KeySwitchKey = 0x4B534B31,     // "KSK1"
    EncryptedUint = 0x45554931,    // "EUI1"
    BootstrapKey = 0x42534B31,     // "BSK1"
    EvalKeys = 0x45564B31,         // "EVK1"
    SeededKeySwitchKey = 0x4B534B32, // "KSK2"
    SeededBootstrapKey = 0x42534B32, // "BSK2"
    SeededEvalKeys = 0x45564B32,     // "EVK2"
};

// FrameWriter/FrameReader (the byte layer these formats are built on)
// live in common/frame.h; the enum-tag constructor overloads accept
// SerialTag values directly, so call sites are unchanged.

/** Serialization format selector for EvalKeys bundles. */
enum class EvalKeysFormat
{
    Expanded, //!< v1 `EVK1`: full mask + body material (legacy)
    Seeded,   //!< v2 `EVK2`: mask seeds + body components (compressed)
};

// --- writers ---------------------------------------------------------
void serialize(std::ostream &os, const TfheParams &p);
void serialize(std::ostream &os, const LweKey &key);
void serialize(std::ostream &os, const LweCiphertext &ct);
void serialize(std::ostream &os, const GlweKey &key);
void serialize(std::ostream &os, const TorusPolynomial &poly);
void serialize(std::ostream &os, const KeySwitchKey &ksk);
void serialize(std::ostream &os, const EncryptedUint &x);
void serialize(std::ostream &os, const BootstrappingKey &bsk);
/**
 * One frame bundling params + BSK + KSK: the shippable server keyset,
 * in the expanded v1 format (equivalent to EvalKeysFormat::Expanded).
 */
void serialize(std::ostream &os, const EvalKeys &keys);
/**
 * Format-selecting EvalKeys writer. Seeded requires the bundle to
 * carry mask seeds (keys.seeds(), i.e. it came from the seeded keygen
 * path or an EVK2 frame); throws std::runtime_error otherwise.
 */
void serialize(std::ostream &os, const EvalKeys &keys,
               EvalKeysFormat format);

// --- readers (throw std::runtime_error on malformed input) -----------
TfheParams deserializeParams(std::istream &is);
LweKey deserializeLweKey(std::istream &is);
LweCiphertext deserializeLweCiphertext(std::istream &is);
GlweKey deserializeGlweKey(std::istream &is);
TorusPolynomial deserializeTorusPolynomial(std::istream &is);
KeySwitchKey deserializeKeySwitchKey(std::istream &is);
EncryptedUint deserializeEncryptedUint(std::istream &is);
BootstrappingKey deserializeBootstrappingKey(std::istream &is);
/**
 * Read an EvalKeys bundle from either frame generation, auto-detected
 * from the header: `EVK1` loads the expanded material directly, and
 * `EVK2` re-expands every mask from the shipped seeds (bit-identical
 * to the bundle the seeds came from) and keeps the seeds, so the
 * result can re-serialize in either format. BSK/KSK shapes are
 * cross-validated against the embedded parameter frame (mismatches
 * throw rather than yielding a bundle that silently evaluates
 * garbage). Returned behind shared_ptr, ready to hand to any number
 * of ServerContexts.
 */
std::shared_ptr<const EvalKeys> deserializeEvalKeys(std::istream &is);

} // namespace strix

#endif // STRIX_TFHE_SERIALIZE_H
