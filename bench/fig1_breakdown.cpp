/**
 * @file
 * Fig. 1 reproduction: workload breakdown of a TFHE gate operation on
 * CPU. Unlike the other benches (which use analytic models), this one
 * *measures* our from-scratch software TFHE with phase timers and
 * prints the same three-level breakdown as the paper:
 *
 *   gate level:      PBS ~65% / keyswitch ~30% / other ~5%
 *   PBS level:       blind rotation ~98%
 *   BR iteration:    FFT > vector mult > accum+IFFT > decomp > rotate
 */

#include <cstdio>

#include "common/table.h"
#include "tfhe/client_keyset.h"
#include "tfhe/gates.h"

using namespace strix;

int
main()
{
    std::printf("=== Fig. 1: TFHE gate workload breakdown on CPU "
                "(measured on our software TFHE, parameter set I) ===\n\n");

    ClientKeyset client(paramsSetI(), 2024);
    ServerContext server(client.evalKeys());

    gateStatsReset();
    gateStatsEnable(true);
    // A mix of bootstrapped gates, as in a gate-level workload.
    const int kGates = 12;
    auto a = client.encryptBit(true);
    auto b = client.encryptBit(false);
    LweCiphertext out = a;
    for (int i = 0; i < kGates; ++i) {
        switch (i % 4) {
          case 0: out = gateNand(server, a, b); break;
          case 1: out = gateAnd(server, out, a); break;
          case 2: out = gateOr(server, out, b); break;
          default: out = gateXor(server, out, a); break;
        }
    }
    gateStatsEnable(false);
    const GateStats &s = gateStats();

    const double total = s.total();
    const double pbs = s.pbsTotal();

    TextTable gate;
    gate.header({"Gate-level phase", "measured %", "paper %"});
    gate.row({"PBS", TextTable::num(100 * pbs / total, 1), "~65"});
    gate.row({"Keyswitch (KS)",
              TextTable::num(100 * s.keyswitch_s / total, 1), "~30"});
    gate.row({"Other (linear ops)",
              TextTable::num(100 * s.linear_s / total, 1), "~5"});
    gate.print();

    const double br = s.rotate_s + s.decompose_s + s.fft_s +
                      s.vecmult_s + s.ifft_accum_s;
    TextTable pbs_t;
    pbs_t.header({"PBS phase", "measured %", "paper %"});
    pbs_t.row({"Blind rotation (BR)", TextTable::num(100 * br / pbs, 1),
               "~98"});
    pbs_t.row({"ModSwitch + SampleExtract",
               TextTable::num(100 * s.other_pbs_s / pbs, 1), "~2"});
    pbs_t.print();

    TextTable iter;
    iter.header({"BR iteration phase", "measured %"});
    iter.row({"FFT", TextTable::num(100 * s.fft_s / br, 1)});
    iter.row({"Vector mult", TextTable::num(100 * s.vecmult_s / br, 1)});
    iter.row({"Accum + IFFT",
              TextTable::num(100 * s.ifft_accum_s / br, 1)});
    iter.row({"Decomposition",
              TextTable::num(100 * s.decompose_s / br, 1)});
    iter.row({"Rotate", TextTable::num(100 * s.rotate_s / br, 1)});
    iter.print();

    std::printf("\nGates executed: %d; total measured time: %.1f ms "
                "(%.2f ms/gate)\n",
                kGates, total * 1e3, total * 1e3 / kGates);
    std::printf("\nNote: our portable-C++ FFT is slower relative to "
                "keyswitching than Concrete's AVX-optimized FFT, so "
                "the PBS share measures above the paper's ~65%% and "
                "the KS share below ~30%%; the ordering and the "
                "BR-dominates-PBS structure match.\n");
    std::printf("Shape check: PBS dominates the gate, BR dominates "
                "PBS, and the transform pipeline (FFT + vector mult + "
                "IFFT) dominates each BR iteration -- the premise of "
                "the Strix design.\n");
    return 0;
}
