/**
 * @file
 * LWE encryption tests: exact algebra with zero noise, decoding with
 * real noise, and homomorphic linear operations.
 */

#include <gtest/gtest.h>

#include "tfhe/lwe.h"

namespace strix {
namespace {

TEST(Lwe, ZeroNoiseEncryptDecryptExact)
{
    Rng rng(1);
    LweKey key(128, rng);
    for (uint64_t p : {2ull, 8ull, 16ull, 256ull}) {
        for (int64_t m = 0;
             m < static_cast<int64_t>(std::min<uint64_t>(p, 16)); ++m) {
            auto ct = lweEncrypt(key, encodeMessage(m, p), 0.0, rng);
            EXPECT_EQ(lweDecrypt(key, ct, p), m);
            EXPECT_EQ(lwePhase(key, ct), encodeMessage(m, p));
        }
    }
}

TEST(Lwe, NoisyEncryptDecrypt)
{
    Rng rng(2);
    LweKey key(500, rng);
    const uint64_t p = 8;
    const double stddev = 3.05e-5; // paper set I LWE noise
    for (int trial = 0; trial < 50; ++trial) {
        int64_t m = static_cast<int64_t>(rng.uniformBelow(p));
        auto ct = lweEncrypt(key, encodeMessage(m, p), stddev, rng);
        EXPECT_EQ(lweDecrypt(key, ct, p), m);
    }
}

TEST(Lwe, HomomorphicAddition)
{
    Rng rng(3);
    LweKey key(64, rng);
    const uint64_t p = 16;
    auto c1 = lweEncrypt(key, encodeMessage(3, p), 0.0, rng);
    auto c2 = lweEncrypt(key, encodeMessage(5, p), 0.0, rng);
    c1.addAssign(c2);
    EXPECT_EQ(lweDecrypt(key, c1, p), 8);
}

TEST(Lwe, HomomorphicSubtractionWraps)
{
    Rng rng(4);
    LweKey key(64, rng);
    const uint64_t p = 16;
    auto c1 = lweEncrypt(key, encodeMessage(3, p), 0.0, rng);
    auto c2 = lweEncrypt(key, encodeMessage(5, p), 0.0, rng);
    c1.subAssign(c2);
    EXPECT_EQ(lweDecrypt(key, c1, p), 14); // 3 - 5 mod 16
}

TEST(Lwe, ScalarMultiplication)
{
    Rng rng(5);
    LweKey key(64, rng);
    const uint64_t p = 16;
    auto ct = lweEncrypt(key, encodeMessage(3, p), 0.0, rng);
    ct.scalarMulAssign(4);
    EXPECT_EQ(lweDecrypt(key, ct, p), 12);
}

TEST(Lwe, NegationIsScalarMinusOne)
{
    Rng rng(6);
    LweKey key(64, rng);
    const uint64_t p = 16;
    auto ct = lweEncrypt(key, encodeMessage(5, p), 0.0, rng);
    ct.negate();
    EXPECT_EQ(lweDecrypt(key, ct, p), 11); // -5 mod 16
}

TEST(Lwe, TrivialCiphertextDecryptsUnderAnyKey)
{
    Rng rng(7);
    LweKey key(64, rng);
    auto ct = LweCiphertext::trivial(64, encodeMessage(9, 16));
    EXPECT_EQ(lweDecrypt(key, ct, 16), 9);
}

TEST(Lwe, RawLayoutBodyIsLast)
{
    // Matches the paper's [a_1..a_n, b] layout (Sec. II-D).
    LweCiphertext ct(10);
    ct.b() = 0xAABBCCDDu;
    EXPECT_EQ(ct.raw().size(), 11u);
    EXPECT_EQ(ct.raw()[10], 0xAABBCCDDu);
}

TEST(Lwe, PhaseIsLinearInCiphertext)
{
    Rng rng(8);
    LweKey key(96, rng);
    auto c1 = lweEncrypt(key, 0x10000000u, 0.0, rng);
    auto c2 = lweEncrypt(key, 0x20000000u, 0.0, rng);
    auto sum = c1;
    sum.addAssign(c2);
    EXPECT_EQ(lwePhase(key, sum),
              lwePhase(key, c1) + lwePhase(key, c2));
}

TEST(Lwe, KeyDimMismatchDies)
{
    Rng rng(9);
    LweKey key(32, rng);
    LweCiphertext ct(64);
    EXPECT_DEATH(lwePhase(key, ct), "dim mismatch");
}

} // namespace
} // namespace strix
