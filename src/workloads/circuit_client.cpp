/**
 * @file
 * Client-side circuit wrapper implementation.
 */

#include "workloads/circuit_client.h"

namespace strix {

std::vector<bool>
evalEncrypted(const Circuit &circuit, const ClientKeyset &client,
              const ServerContext &server, const std::vector<bool> &inputs)
{
    std::vector<LweCiphertext> enc;
    enc.reserve(inputs.size());
    for (bool bit : inputs)
        enc.push_back(client.encryptBit(bit));
    std::vector<LweCiphertext> enc_out =
        circuit.evalEncrypted(server, enc);
    std::vector<bool> out;
    out.reserve(enc_out.size());
    for (const LweCiphertext &ct : enc_out)
        out.push_back(client.decryptBit(ct));
    return out;
}

} // namespace strix
