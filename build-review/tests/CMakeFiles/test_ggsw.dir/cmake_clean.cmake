file(REMOVE_RECURSE
  "CMakeFiles/test_ggsw.dir/test_ggsw.cpp.o"
  "CMakeFiles/test_ggsw.dir/test_ggsw.cpp.o.d"
  "test_ggsw"
  "test_ggsw.pdb"
  "test_ggsw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ggsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
