/**
 * @file
 * Hardware-style streaming decomposer (paper Sec. V-B, Fig. 6).
 *
 * The paper's decomposer unit is a fully pipelined, multiplier-free
 * datapath split into a *rounding step* (masking + carry add) and an
 * *extraction step* (precomputed masks, shifts, and a carry chain from
 * the least-significant level upward). This class is a cycle-faithful
 * software model of that datapath: it consumes one coefficient per
 * "cycle" and emits one decomposed coefficient per cycle per lane,
 * buffering the rounded coefficients exactly as the hardware does.
 *
 * The test suite proves the output bit-identical to the reference
 * gadget decomposition in decompose.h.
 */

#ifndef STRIX_TFHE_DECOMPOSER_HW_H
#define STRIX_TFHE_DECOMPOSER_HW_H

#include <cstdint>
#include <deque>
#include <vector>

#include "tfhe/decompose.h"

namespace strix {

/**
 * Streaming decomposer modeled after the paper's two-step
 * microarchitecture. Uses only masks, shifts, and adds.
 */
class StreamingDecomposer
{
  public:
    explicit StreamingDecomposer(const GadgetParams &g);

    /**
     * Combinational model of one lane: decompose one coefficient into
     * levels digits (most-significant level first), using only
     * mask/shift/add -- no multiply, no divide.
     */
    void decomposeOne(int32_t *digits, Torus32 coeff) const;

    /**
     * Stream interface: push an input coefficient (one per cycle).
     * After the pipeline fill, pop() yields, per cycle, one digit of
     * one buffered coefficient; digits of a given coefficient appear
     * over `levels` consecutive cycles, matching the N/CLP * lb cycle
     * occupancy stated in Sec. V-B.
     */
    void push(Torus32 coeff);

    /** Whether an output digit is available this cycle. */
    bool outputReady() const { return !out_fifo_.empty(); }

    /**
     * Pop the next output digit.
     * @param level receives the digit's level index (0-based, MSB
     *              level first)
     */
    int32_t pop(uint32_t &level);

    /** Cycles a full N-coefficient polynomial occupies this unit. */
    static uint64_t
    cyclesPerPoly(uint64_t big_n, uint64_t lanes, uint64_t levels)
    {
        return big_n / lanes * levels;
    }

    const GadgetParams &gadget() const { return g_; }

  private:
    /** Rounding step: mask upper bits, add the rounding carry. */
    Torus32 roundStep(Torus32 coeff) const;

    GadgetParams g_;
    Torus32 round_carry_;        //!< precomputed rounding increment
    Torus32 round_mask_;         //!< precomputed upper-bit mask
    std::vector<Torus32> level_mask_;  //!< per-level extraction masks
    std::vector<uint32_t> level_shift_;

    /** Buffer between rounding and extraction (the paper's buffer). */
    std::deque<Torus32> rounded_fifo_;
    /** Output digit FIFO with level tags. */
    std::deque<std::pair<int32_t, uint32_t>> out_fifo_;
};

/**
 * Decompose a polynomial through the streaming datapath; used by
 * tests to validate stream order and by the software PBS when
 * configured to use the hardware-equivalent path.
 */
void streamingDecomposePoly(std::vector<IntPolynomial> &out,
                            const TorusPolynomial &poly,
                            const GadgetParams &g);

} // namespace strix

#endif // STRIX_TFHE_DECOMPOSER_HW_H
