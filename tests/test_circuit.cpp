/**
 * @file
 * Circuit netlist tests: plain evaluation, encrypted evaluation
 * (exhaustive for small circuits on the fast exact context), and
 * workload-graph lowering.
 */

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "workloads/circuit.h"
#include "workloads/circuit_client.h"

namespace strix {
namespace {

/** Fast zero-noise split keyset for encrypted circuit evaluation. */
test::TestKeys &
exactKeys()
{
    static test::TestKeys keys(test::fastParams(), test::kSeedCircuit);
    return keys;
}

std::vector<bool>
toBits(uint64_t v, uint32_t n)
{
    std::vector<bool> bits(n);
    for (uint32_t i = 0; i < n; ++i)
        bits[i] = (v >> i) & 1;
    return bits;
}

uint64_t
fromBits(const std::vector<bool> &bits)
{
    uint64_t v = 0;
    for (size_t i = 0; i < bits.size(); ++i)
        v |= uint64_t(bits[i]) << i;
    return v;
}

std::vector<bool>
concat(std::vector<bool> a, const std::vector<bool> &b)
{
    a.insert(a.end(), b.begin(), b.end());
    return a;
}

TEST(Circuit, AdderPlainExhaustive)
{
    for (uint32_t bits : {1u, 2u, 3u, 4u}) {
        Circuit c = buildAdder(bits);
        for (uint64_t a = 0; a < (1u << bits); ++a)
            for (uint64_t b = 0; b < (1u << bits); ++b) {
                auto out = c.evalPlain(
                    concat(toBits(a, bits), toBits(b, bits)));
                EXPECT_EQ(fromBits(out), a + b)
                    << bits << "b " << a << "+" << b;
            }
    }
}

TEST(Circuit, LessThanPlainExhaustive)
{
    const uint32_t bits = 3;
    Circuit c = buildLessThan(bits);
    for (uint64_t a = 0; a < 8; ++a)
        for (uint64_t b = 0; b < 8; ++b) {
            auto out =
                c.evalPlain(concat(toBits(a, bits), toBits(b, bits)));
            EXPECT_EQ(out[0], a < b) << a << "<" << b;
        }
}

TEST(Circuit, EqualityPlainExhaustive)
{
    const uint32_t bits = 3;
    Circuit c = buildEqualityComparator(bits);
    for (uint64_t a = 0; a < 8; ++a)
        for (uint64_t b = 0; b < 8; ++b) {
            auto out =
                c.evalPlain(concat(toBits(a, bits), toBits(b, bits)));
            EXPECT_EQ(out[0], a == b) << a << "==" << b;
        }
}

TEST(Circuit, MultiplierPlainExhaustive)
{
    const uint32_t bits = 3;
    Circuit c = buildMultiplier(bits);
    for (uint64_t a = 0; a < 8; ++a)
        for (uint64_t b = 0; b < 8; ++b) {
            auto out =
                c.evalPlain(concat(toBits(a, bits), toBits(b, bits)));
            EXPECT_EQ(fromBits(out), a * b) << a << "*" << b;
        }
}

TEST(Circuit, AdderEncryptedMatchesPlain)
{
    const uint32_t bits = 2;
    Circuit c = buildAdder(bits);
    test::TestKeys &keys = exactKeys();
    for (uint64_t a = 0; a < 4; ++a)
        for (uint64_t b = 0; b < 4; ++b) {
            auto in = concat(toBits(a, bits), toBits(b, bits));
            EXPECT_EQ(fromBits(evalEncrypted(c, keys.client, keys.server, in)), a + b)
                << a << "+" << b;
        }
}

TEST(Circuit, ServerOnlyEvalMatchesConvenienceWrapper)
{
    // The ciphertext-in/ciphertext-out overload is the pure server
    // path (no secret key in scope); it must agree with the
    // encrypt-eval-decrypt wrapper.
    const uint32_t bits = 2;
    Circuit c = buildAdder(bits);
    test::TestKeys &keys = exactKeys();
    auto in = concat(toBits(2, bits), toBits(3, bits));
    std::vector<LweCiphertext> enc;
    for (bool bit : in)
        enc.push_back(keys.client.encryptBit(bit));
    std::vector<LweCiphertext> enc_out =
        c.evalEncrypted(keys.server, enc);
    std::vector<bool> out;
    for (const auto &ct : enc_out)
        out.push_back(keys.client.decryptBit(ct));
    EXPECT_EQ(fromBits(out), 5u);
}

TEST(Circuit, LessThanEncrypted)
{
    const uint32_t bits = 2;
    Circuit c = buildLessThan(bits);
    test::TestKeys &keys = exactKeys();
    for (uint64_t a = 0; a < 4; ++a)
        for (uint64_t b = 0; b < 4; ++b) {
            auto in = concat(toBits(a, bits), toBits(b, bits));
            EXPECT_EQ(evalEncrypted(c, keys.client, keys.server, in)[0], a < b)
                << a << "<" << b;
        }
}

TEST(Circuit, MuxAndConstEncrypted)
{
    Circuit c("muxconst");
    Wire s = c.input();
    Wire t = c.constant(true);
    Wire f = c.constant(false);
    c.output(c.mux(s, t, f)); // == s
    c.output(c.mux(s, f, t)); // == !s
    test::TestKeys &keys = exactKeys();
    for (bool s_val : {false, true}) {
        auto out = evalEncrypted(c, keys.client, keys.server, {s_val});
        EXPECT_EQ(out[0], s_val);
        EXPECT_EQ(out[1], !s_val);
    }
}

TEST(Circuit, PbsCountAndDepth)
{
    Circuit c("counts");
    Wire a = c.input();
    Wire b = c.input();
    Wire x = c.gate(GateOp::Xor, a, b); // level 1
    Wire n = c.notGate(x);              // free, level 1
    Wire y = c.gate(GateOp::And, n, a); // level 2
    Wire m = c.mux(y, a, b);            // level 3, 2 PBS
    c.output(m);
    EXPECT_EQ(c.pbsCount(), 1u + 1u + 2u);
    EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, WorkloadGraphLayersFollowLevels)
{
    const uint32_t bits = 4;
    Circuit c = buildAdder(bits);
    WorkloadGraph g = c.toWorkloadGraph();
    EXPECT_EQ(g.totalPbs(), c.pbsCount());
    EXPECT_EQ(g.layers().size(), c.depth());
    // Level-1 gates: per bit XOR+AND = 2 gates, all independent.
    EXPECT_EQ(g.layers().front().pbs_count, uint64_t(2 * bits));
}

TEST(Circuit, AdderGateCountScalesLinearly)
{
    EXPECT_EQ(buildAdder(1).pbsCount(), 2u);  // xor + and
    // Each further bit: xor,xor,and,and,or = 5 gates.
    EXPECT_EQ(buildAdder(4).pbsCount(), 2u + 3 * 5);
}

TEST(Circuit, RejectsForwardReferences)
{
    Circuit c("bad");
    Wire a = c.input();
    EXPECT_DEATH(c.gate(GateOp::And, a, 99), "out of range");
}

} // namespace
} // namespace strix
