file(REMOVE_RECURSE
  "libstrix_common.a"
)
