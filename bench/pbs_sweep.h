/**
 * @file
 * Shared measured batch-PBS scaling sweep used by cpu_measured and
 * ablation_parallelism: one bootstrapBatch call per pool size with
 * kPerWorker ciphertexts per worker (so every row is fully supplied),
 * identity LUT so every output self-checks, thread counts
 * deduplicated (max(4, hw) repeats 4 on a 4-core machine).
 */

#ifndef STRIX_BENCH_PBS_SWEEP_H
#define STRIX_BENCH_PBS_SWEEP_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.h"
#include "tfhe/client_keyset.h"
#include "tfhe/server_context.h"

namespace strix {

/** One row of the measured batch-PBS scaling sweep. */
struct PbsSweepRow
{
    unsigned threads;
    size_t batch;
    double pbs_per_s;
    double scaling;
};

/**
 * Print the threads/batch/PBS-per-second/scaling table for the
 * @p client / @p server pair (the server must stand on the client's
 * EvalKeys bundle).
 * @param rows_out when non-null, receives one PbsSweepRow per printed
 *        row (used by cpu_measured --json).
 * @return false if any decrypted batch output mismatches (the caller
 *         should exit nonzero).
 */
inline bool
runBatchPbsSweep(const ClientKeyset &client, ServerContext &server,
                 bool smoke, std::vector<PbsSweepRow> *rows_out = nullptr)
{
    const uint64_t space = 4;
    TorusPolynomial tv = makeIntTestVector(
        server.params().N, space, [](int64_t x) { return x; });

    unsigned hw = std::thread::hardware_concurrency();
    std::vector<unsigned> counts{1u, 2u, 4u, std::max(4u, hw)};
    if (smoke)
        counts = {1u, 2u};
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

    // Encrypt once for the widest row (client-side work; the sweep
    // below is pure server evaluation).
    const size_t per_worker = smoke ? 2 : 4;
    std::vector<LweCiphertext> inputs;
    for (size_t i = 0; i < per_worker * counts.back(); ++i)
        inputs.push_back(client.encryptInt(int64_t(i % space), space));

    using Clock = std::chrono::steady_clock;
    TextTable t;
    t.header({"threads", "batch", "PBS/s", "scaling"});
    double tp1 = 0.0;
    bool ok = true;
    for (unsigned n : counts) {
        server.setBatchThreads(n);
        const size_t batch = per_worker * n;
        auto t0 = Clock::now();
        std::vector<LweCiphertext> outs =
            server.bootstrapBatch(inputs.data(), batch, tv);
        double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        for (size_t i = 0; i < outs.size(); ++i)
            ok &= client.decryptInt(outs[i], space) == int64_t(i % space);
        double tp = double(outs.size()) / secs;
        if (n == 1)
            tp1 = tp;
        if (rows_out)
            rows_out->push_back({n, batch, tp, tp / tp1});
        t.row({std::to_string(n), std::to_string(batch),
               TextTable::num(tp, 1), TextTable::num(tp / tp1, 2) + "x"});
    }
    t.print();
    std::printf("\nbatch outputs %s the identity LUT\n",
                ok ? "match" : "MISMATCH");
    return ok;
}

} // namespace strix

#endif // STRIX_BENCH_PBS_SWEEP_H
