file(REMOVE_RECURSE
  "CMakeFiles/test_accelerator.dir/test_accelerator.cpp.o"
  "CMakeFiles/test_accelerator.dir/test_accelerator.cpp.o.d"
  "test_accelerator"
  "test_accelerator.pdb"
  "test_accelerator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
