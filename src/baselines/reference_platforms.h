/**
 * @file
 * Published latency/throughput constants of the platforms the paper
 * compares against in Table V. These are reference rows printed next
 * to our model outputs; Strix rows are *computed* by the simulator.
 */

#ifndef STRIX_BASELINES_REFERENCE_PLATFORMS_H
#define STRIX_BASELINES_REFERENCE_PLATFORMS_H

#include <optional>
#include <string>
#include <vector>

namespace strix {

/** One Table V row as published. */
struct PlatformRow
{
    std::string platform;  //!< "Concrete", "NuFHE", ...
    std::string hardware;  //!< "CPU", "GPU", "FPGA", "ASIC"
    std::string param_set; //!< "I".."IV"
    std::optional<double> latency_ms;
    std::optional<double> throughput_pbs_s;
};

/** All non-Strix rows of Table V. */
const std::vector<PlatformRow> &tableVReferenceRows();

/** The paper's reported Strix rows (for delta reporting). */
const std::vector<PlatformRow> &tableVStrixPaperRows();

} // namespace strix

#endif // STRIX_BASELINES_REFERENCE_PLATFORMS_H
