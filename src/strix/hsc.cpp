/**
 * @file
 * HSC trace construction.
 */

#include "strix/hsc.h"

namespace strix {

GanttTrace
Hsc::traceBlindRotation(uint32_t iterations, uint32_t batch) const
{
    GanttTrace trace;
    auto &rot = trace.row("Rotator");
    auto &dec = trace.row("Decomp.");
    auto &fft = trace.row("FFT");
    auto &vma = trace.row("VMA");
    auto &ifft = trace.row("IFFT");
    auto &acc = trace.row("Accum.");
    auto &spad = trace.row("Loc.Scrtpd");
    auto &hbm = trace.row("HBM");

    const Cycle ii = timing_.iterationII();
    const Cycle period = iterationCycles(batch);

    // Stage skews: each stage starts once its producer has filled a
    // small buffer; the (I)FFT contributes a full transform of
    // latency before its first output (Sec. V-A).
    const Cycle buf = 8;
    const Cycle fft_lat = timing_.fftCyclesPerPoly();
    const Cycle skew_dec = buf;
    const Cycle skew_fft = skew_dec + buf;
    const Cycle skew_vma = skew_fft + fft_lat;
    const Cycle skew_ifft = skew_vma + buf;
    const Cycle skew_acc = skew_ifft + fft_lat;

    for (uint32_t it = 0; it < iterations; ++it) {
        const Cycle t0 = Cycle(it) * period;
        // Keys for the *next* iteration stream during this one: bsk
        // plus the amortized ksk/ciphertext shares of the epoch.
        hbm.record(t0, t0 + mem_.hbmBusyCyclesPerIteration(batch), "k");
        for (uint32_t j = 0; j < batch; ++j) {
            const Cycle s = t0 + Cycle(j) * ii;
            const std::string lwe = std::to_string(j + 1);
            rot.record(s, s + timing_.rotatorCycles(), lwe);
            dec.record(s + skew_dec, s + skew_dec +
                       timing_.decomposerCycles(), lwe);
            fft.record(s + skew_fft, s + skew_fft + timing_.fftCycles(),
                       lwe);
            vma.record(s + skew_vma, s + skew_vma + timing_.vmaCycles(),
                       lwe);
            ifft.record(s + skew_ifft,
                        s + skew_ifft + timing_.ifftCycles(), lwe);
            acc.record(s + skew_acc,
                       s + skew_acc + timing_.accumulatorCycles(), lwe);
            // Scratchpad: rotator reads at the head, accumulator
            // writes at the tail of each LWE slot.
            spad.record(s, s + timing_.rotatorCycles(), lwe);
            spad.record(s + skew_acc,
                        s + skew_acc + timing_.accumulatorCycles(), lwe);
        }
    }
    return trace;
}

HscUtilization
Hsc::utilization(uint32_t batch) const
{
    const double period =
        static_cast<double>(iterationCycles(batch));
    const double b = batch;
    auto util = [&](Cycle busy) {
        return std::min(1.0, b * static_cast<double>(busy) / period);
    };

    HscUtilization u{};
    u.rotator = util(timing_.rotatorCycles());
    u.decomposer = util(timing_.decomposerCycles());
    u.fft = util(timing_.fftCycles());
    u.vma = util(timing_.vmaCycles());
    u.ifft = util(timing_.ifftCycles());
    u.accumulator = util(timing_.accumulatorCycles());
    u.local_scratchpad =
        util(timing_.rotatorCycles() + timing_.accumulatorCycles());
    u.hbm = std::min(
        1.0, static_cast<double>(mem_.hbmBusyCyclesPerIteration(batch)) /
                 period);
    return u;
}

} // namespace strix
