/**
 * @file
 * Cycle-cost models of the five HSC functional units (Sec. V).
 *
 * Each unit is fully pipelined with an initiation interval (II)
 * determined by its lane count; the closed forms below give the cycles
 * a unit is busy per LWE per blind-rotation iteration. The pipeline II
 * of the whole PBS cluster is the max over units (Sec. IV-B's
 * "six-stage fully-pipelined" cluster balances them to be equal for
 * the paper design point, with the rotator at 50%).
 */

#ifndef STRIX_STRIX_FUNCTIONAL_UNITS_H
#define STRIX_STRIX_FUNCTIONAL_UNITS_H

#include <algorithm>

#include "common/types.h"
#include "strix/config.h"
#include "tfhe/params.h"

namespace strix {

/** Per-unit, per-LWE busy cycles in one blind-rotation iteration. */
class UnitTiming
{
  public:
    UnitTiming(const StrixConfig &cfg, const TfheParams &p)
        : cfg_(cfg), p_(p)
    {
    }

    /**
     * Blind-rotation iterations per PBS: n, or ceil(n/2) with 2x key
     * unrolling.
     */
    Cycle iterations() const
    {
        return cfg_.key_unrolling ? (Cycle(p_.n) + 1) / 2 : p_.n;
    }

    /**
     * External products evaluated per iteration: 1 normally, 3 with
     * unrolling (s-, t-, and st-terms).
     */
    Cycle productsPerIteration() const
    {
        return cfg_.key_unrolling ? 3 : 1;
    }

    /**
     * Rotator: negacyclic rotate+subtract of the (k+1) accumulator
     * polynomials; CoLP instances of 2*CLP-lane datapaths.
     */
    Cycle rotatorCycles() const
    {
        return productsPerIteration() * Cycle(p_.k + 1) * p_.N /
               (cfg_.effLanes() * cfg_.colp);
    }

    /**
     * Decomposer: (k+1) polynomials in, (k+1)*lb polynomials out;
     * occupies N/lanes * lb cycles per polynomial (Sec. V-B), CoLP
     * instances.
     */
    Cycle decomposerCycles() const
    {
        return productsPerIteration() * Cycle(p_.k + 1) * p_.l_bsk *
               p_.N / (cfg_.effLanes() * cfg_.colp);
    }

    /**
     * FFT: (k+1)*lb decomposed polynomials across PLP pipelined-FFT
     * instances. With folding each instance transforms an N-point
     * polynomial in N/(2*CLP) cycles (N/2-point FFT, CLP lanes);
     * without folding the instance is a full N-point FFT at CLP lanes
     * taking N/CLP cycles (Sec. V-A).
     */
    Cycle fftCyclesPerPoly() const
    {
        return cfg_.folding ? Cycle(p_.N) / (2 * cfg_.clp)
                            : Cycle(p_.N) / cfg_.clp;
    }

    Cycle fftCycles() const
    {
        Cycle polys =
            productsPerIteration() * Cycle(p_.k + 1) * p_.l_bsk;
        Cycle per_instance = (polys + cfg_.plp - 1) / cfg_.plp;
        return per_instance * fftCyclesPerPoly();
    }

    /**
     * VMA: (k+1)*lb x (k+1) frequency-domain multiply-accumulates of
     * N/2 points; PLP instances whose lane count follows the folding
     * choice (Sec. V-A: all non-FFT units move to 2*CLP lanes).
     */
    Cycle vmaCycles() const
    {
        Cycle cmults = productsPerIteration() * Cycle(p_.k + 1) *
                       p_.l_bsk * (p_.k + 1) * (p_.N / 2);
        return cmults / (cfg_.plp * cfg_.effLanes());
    }

    /**
     * IFFT: the paper splits accumulation between frequency and time
     * domains to reach a 1:1 FFT:IFFT ratio (Sec. IV-B), so the IFFT
     * unit transforms as many polynomials as the FFT unit.
     */
    Cycle ifftCycles() const { return fftCycles(); }

    /** Accumulator: time-domain accumulation of the IFFT outputs. */
    Cycle accumulatorCycles() const
    {
        return productsPerIteration() * Cycle(p_.k + 1) * p_.l_bsk *
               p_.N / (cfg_.effLanes() * cfg_.colp);
    }

    /**
     * PBS-cluster initiation interval: cycles between successive LWEs
     * entering one blind-rotation iteration (the bottleneck unit).
     */
    Cycle iterationII() const
    {
        Cycle ii = rotatorCycles();
        ii = std::max(ii, decomposerCycles());
        ii = std::max(ii, fftCycles());
        ii = std::max(ii, vmaCycles());
        ii = std::max(ii, ifftCycles());
        ii = std::max(ii, accumulatorCycles());
        return ii;
    }

    /**
     * Extra drain latency for the last LWE of a blind rotation: the
     * pipeline must flush through the (I)FFT before the final
     * accumulator write-back (dominated by one FFT transform).
     */
    Cycle drainCycles() const { return fftCyclesPerPoly(); }

    /**
     * Keyswitch cluster: the k*N*lk x (n+1) vector-matrix product
     * (Algorithm 2) on a CLP_ks x CoLP_ks MAC array.
     */
    Cycle keyswitchCycles() const
    {
        return Cycle(p_.k) * p_.N * p_.l_ksk * (p_.n + 1) /
               (cfg_.ks_clp * cfg_.ks_colp);
    }

  private:
    StrixConfig cfg_;
    TfheParams p_;
};

} // namespace strix

#endif // STRIX_STRIX_FUNCTIONAL_UNITS_H
