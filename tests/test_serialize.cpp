/**
 * @file
 * Serialization round-trip and malformed-input tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "tfhe/serialize.h"
#include "support/test_util.h"

namespace strix {
namespace {

TEST(Serialize, ParamsRoundTrip)
{
    std::stringstream ss;
    serialize(ss, paramsSetII());
    TfheParams p = deserializeParams(ss);
    EXPECT_EQ(p.name, "II");
    EXPECT_EQ(p.n, paramsSetII().n);
    EXPECT_EQ(p.N, paramsSetII().N);
    EXPECT_EQ(p.l_bsk, paramsSetII().l_bsk);
    EXPECT_DOUBLE_EQ(p.lwe_noise, paramsSetII().lwe_noise);
    EXPECT_EQ(p.lambda, 128);
}

TEST(Serialize, LweKeyRoundTrip)
{
    Rng rng(1);
    LweKey key(500, rng);
    std::stringstream ss;
    serialize(ss, key);
    LweKey back = deserializeLweKey(ss);
    ASSERT_EQ(back.dim(), key.dim());
    for (uint32_t i = 0; i < key.dim(); ++i)
        EXPECT_EQ(back.bit(i), key.bit(i));
}

TEST(Serialize, CiphertextRoundTripDecrypts)
{
    Rng rng(2);
    LweKey key(128, rng);
    auto ct = lweEncrypt(key, encodeMessage(5, 16), 0.0, rng);
    std::stringstream ss;
    serialize(ss, ct);
    LweCiphertext back = deserializeLweCiphertext(ss);
    EXPECT_EQ(lweDecrypt(key, back, 16), 5);
}

TEST(Serialize, GlweKeyRoundTrip)
{
    Rng rng(3);
    GlweKey key(2, 64, rng);
    std::stringstream ss;
    serialize(ss, key);
    GlweKey back = deserializeGlweKey(ss);
    ASSERT_EQ(back.k(), 2u);
    ASSERT_EQ(back.ringDim(), 64u);
    for (uint32_t i = 0; i < 2; ++i)
        EXPECT_EQ(back.poly(i), key.poly(i));
}

TEST(Serialize, TorusPolynomialRoundTrip)
{
    Rng rng(4);
    TorusPolynomial p = test::randomTorusPoly(256, rng);
    std::stringstream ss;
    serialize(ss, p);
    EXPECT_EQ(deserializeTorusPolynomial(ss), p);
}

TEST(Serialize, KeySwitchKeyRoundTripFunctional)
{
    // The deserialized ksk must actually keyswitch correctly.
    Rng rng(5);
    TfheParams p = testParams(32, 64);
    p.l_ksk = 12;
    p.ks_base_bits = 2;
    LweKey from(128, rng);
    LweKey to(32, rng);
    KeySwitchKey ksk = KeySwitchKey::generate(from, to, p, rng);

    std::stringstream ss;
    serialize(ss, ksk);
    KeySwitchKey back = deserializeKeySwitchKey(ss);

    auto ct = lweEncrypt(from, encodeMessage(3, 8), 0.0, rng);
    EXPECT_EQ(lweDecrypt(to, keySwitch(ct, back), 8), 3);
}

TEST(Serialize, EncryptedUintRoundTrip)
{
    TfheContext ctx(testParams(32, 256, 1, 3, 8, 0.0), 99);
    IntegerOps ops(ctx);
    EncryptedUint x = ops.encrypt(201, 4);
    std::stringstream ss;
    serialize(ss, x);
    EncryptedUint back = deserializeEncryptedUint(ss);
    EXPECT_EQ(ops.decrypt(back), 201u);
    EXPECT_EQ(back.digit_bits, x.digit_bits);
}

TEST(Serialize, MultipleFramesInOneStream)
{
    Rng rng(6);
    LweKey key(64, rng);
    auto c1 = lweEncrypt(key, encodeMessage(1, 8), 0.0, rng);
    auto c2 = lweEncrypt(key, encodeMessage(2, 8), 0.0, rng);
    std::stringstream ss;
    serialize(ss, paramsSetI());
    serialize(ss, c1);
    serialize(ss, c2);
    TfheParams p = deserializeParams(ss);
    EXPECT_EQ(p.name, "I");
    EXPECT_EQ(lweDecrypt(key, deserializeLweCiphertext(ss), 8), 1);
    EXPECT_EQ(lweDecrypt(key, deserializeLweCiphertext(ss), 8), 2);
}

TEST(Serialize, WrongTagThrows)
{
    Rng rng(7);
    LweKey key(16, rng);
    std::stringstream ss;
    serialize(ss, key);
    EXPECT_THROW(deserializeLweCiphertext(ss), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows)
{
    Rng rng(8);
    LweKey key(64, rng);
    auto ct = lweEncrypt(key, 0, 0.0, rng);
    std::stringstream full;
    serialize(full, ct);
    std::string bytes = full.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(deserializeLweCiphertext(truncated),
                 std::runtime_error);
}

TEST(Serialize, GarbageThrows)
{
    std::stringstream ss("this is not a TFHE frame at all....");
    EXPECT_THROW(deserializeParams(ss), std::runtime_error);
}

} // namespace
} // namespace strix
