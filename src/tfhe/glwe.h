/**
 * @file
 * GLWE (generalized/ring LWE) ciphertexts and keys.
 *
 * A GLWE ciphertext under key z = (z_1..z_k) of binary polynomials:
 *     (A_1(X)..A_k(X), B(X)),  B = sum_i A_i * z_i + M + E.
 * The paper stores test vectors as GLWE ciphertexts of k+1 polynomials
 * of degree N-1 (Sec. II-D).
 */

#ifndef STRIX_TFHE_GLWE_H
#define STRIX_TFHE_GLWE_H

#include <vector>

#include "common/random.h"
#include "poly/negacyclic_fft.h"
#include "poly/polynomial.h"
#include "tfhe/lwe.h"

namespace strix {

/** GLWE secret key: k binary polynomials of degree N-1. */
class GlweKey
{
  public:
    GlweKey() = default;

    /** Sample a uniform binary key. */
    GlweKey(uint32_t k, uint32_t big_n, Rng &rng);

    /** Build from explicit polynomials (deserialization). */
    explicit GlweKey(std::vector<IntPolynomial> polys)
        : polys_(std::move(polys))
    {
    }

    uint32_t k() const { return static_cast<uint32_t>(polys_.size()); }
    uint32_t ringDim() const
    {
        return polys_.empty() ? 0
                              : static_cast<uint32_t>(polys_[0].size());
    }
    const IntPolynomial &poly(size_t i) const { return polys_[i]; }

    /**
     * Flatten into the extracted LWE key of dimension k*N used after
     * sample extraction: bit (i*N + j) = z_i[j].
     */
    LweKey extractedLweKey() const;

  private:
    std::vector<IntPolynomial> polys_;
};

/** GLWE ciphertext: k mask polynomials plus the body polynomial. */
class GlweCiphertext
{
  public:
    GlweCiphertext() = default;
    GlweCiphertext(uint32_t k, uint32_t big_n);

    /** Number of mask polynomials k. */
    uint32_t k() const { return static_cast<uint32_t>(polys_.size()) - 1; }
    uint32_t ringDim() const
    {
        return static_cast<uint32_t>(polys_[0].size());
    }

    /** Component access; index k is the body. */
    TorusPolynomial &poly(size_t i) { return polys_[i]; }
    const TorusPolynomial &poly(size_t i) const { return polys_[i]; }
    TorusPolynomial &body() { return polys_.back(); }
    const TorusPolynomial &body() const { return polys_.back(); }

    void clear();
    void addAssign(const GlweCiphertext &other);
    void subAssign(const GlweCiphertext &other);

    /** Noiseless ciphertext with body @p mu and zero mask. */
    static GlweCiphertext trivial(uint32_t k, const TorusPolynomial &mu);

  private:
    std::vector<TorusPolynomial> polys_;
};

/** Encrypt a torus polynomial message. */
GlweCiphertext glweEncrypt(const GlweKey &key, const TorusPolynomial &mu,
                           double stddev, Rng &rng);

/** Encrypt zero (used by GGSW rows). */
GlweCiphertext glweEncryptZero(const GlweKey &key, double stddev, Rng &rng);

/**
 * Fill the k mask polynomials of @p ct from @p mask_rng: k*N
 * uniformTorus32 draws, component-major. The single source of truth
 * for the seeded mask stream layout -- glweEncryptSeeded draws masks
 * through this helper and seeded-key expansion
 * (BootstrappingKey::fromSeededBodies) replays it with an identically
 * forked generator, so both sides see bit-identical masks.
 */
void glweFillMask(GlweCiphertext &ct, Rng &mask_rng);

/**
 * Encrypt with the k mask polynomials drawn from @p mask_rng
 * (glweFillMask order) and the noise from @p noise_rng. With the mask
 * stream forked from a shippable seed, the masks are pure PRNG output
 * regenerable by any holder of the seed; only the body polynomial
 * must travel (the seeded BSK2 frame).
 */
GlweCiphertext glweEncryptSeeded(const GlweKey &key,
                                 const TorusPolynomial &mu, double stddev,
                                 Rng &mask_rng, Rng &noise_rng);

/** Raw phase B - sum A_i z_i (message + noise polynomial). */
TorusPolynomial glwePhase(const GlweKey &key, const GlweCiphertext &ct);

/**
 * Sample extraction (Algorithm 1 line 13): build the LWE ciphertext of
 * coefficient @p index of the GLWE plaintext, under the extracted LWE
 * key of dimension k*N.
 */
LweCiphertext sampleExtract(const GlweCiphertext &ct, size_t index = 0);

} // namespace strix

#endif // STRIX_TFHE_GLWE_H
