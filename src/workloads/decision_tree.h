/**
 * @file
 * Privacy-preserving decision-tree inference over TFHE (the paper's
 * Sec. II-C cites tree-based ML as a motivating PBS workload).
 *
 * Model: a complete binary decision tree over integer features.
 * Every internal node compares one encrypted feature against a
 * plaintext threshold (an encrypted less-than, i.e. a borrow chain of
 * PBS); the leaf values are then aggregated with an oblivious
 * selection network of encrypted multiplexers so the server learns
 * neither the path nor the result.
 *
 * Provides functional evaluation on a ServerContext-backed IntegerOps
 * (the server never sees a secret key) plus lowering to a
 * WorkloadGraph for the accelerator models.
 */

#ifndef STRIX_WORKLOADS_DECISION_TREE_H
#define STRIX_WORKLOADS_DECISION_TREE_H

#include <cstdint>
#include <vector>

#include "strix/graph.h"
#include "tfhe/integer.h"

namespace strix {

/** A complete binary decision tree over integer features. */
class DecisionTree
{
  public:
    /** Internal node: feature index + threshold (go right if f >= t). */
    struct Node
    {
        uint32_t feature;
        uint64_t threshold;
    };

    /**
     * @param depth        tree depth (2^depth leaves)
     * @param num_features feature vector length
     */
    DecisionTree(uint32_t depth, uint32_t num_features)
        : depth_(depth), num_features_(num_features),
          nodes_((size_t{1} << depth) - 1),
          leaves_(size_t{1} << depth, 0)
    {
    }

    uint32_t depth() const { return depth_; }
    uint32_t numFeatures() const { return num_features_; }
    size_t numNodes() const { return nodes_.size(); }
    size_t numLeaves() const { return leaves_.size(); }

    /** Set internal node i (level-order, root = 0). */
    void setNode(size_t i, uint32_t feature, uint64_t threshold);

    /** Set leaf value (label). */
    void setLeaf(size_t i, uint64_t value) { leaves_[i] = value; }

    /** Cleartext inference. */
    uint64_t predictPlain(const std::vector<uint64_t> &features) const;

    /**
     * Encrypted inference: features arrive as EncryptedUint; returns
     * the encrypted leaf value (one digit, values must fit the digit
     * space of @p ops). All 2^depth-1 comparisons and the selection
     * network run homomorphically.
     */
    LweCiphertext
    predictEncrypted(const IntegerOps &ops,
                     const std::vector<EncryptedUint> &features) const;

    /**
     * Lower to a layered workload graph: one comparison layer per
     * tree level (all nodes of a level are independent), then a
     * selection layer per level of the MUX reduction.
     *
     * @param digits digits per feature (drives PBS per comparison)
     */
    WorkloadGraph toWorkloadGraph(uint32_t digits) const;

  private:
    uint32_t depth_;
    uint32_t num_features_;
    std::vector<Node> nodes_;
    std::vector<uint64_t> leaves_;
};

/** Deterministically generate a random tree for benchmarks/tests. */
DecisionTree randomTree(uint32_t depth, uint32_t num_features,
                        uint64_t feature_space, uint64_t seed);

} // namespace strix

#endif // STRIX_WORKLOADS_DECISION_TREE_H
