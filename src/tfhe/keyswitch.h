/**
 * @file
 * LWE-to-LWE keyswitching (Algorithm 2).
 *
 * After PBS the ciphertext is encrypted under the extracted key of
 * dimension k*N. Keyswitching decomposes each mask scalar and
 * subtracts the matching combination of keyswitching-key rows,
 * yielding a ciphertext of dimension n under the original key
 * (a k*N*lk x (n+1) vector-matrix multiplication, as the paper says).
 */

#ifndef STRIX_TFHE_KEYSWITCH_H
#define STRIX_TFHE_KEYSWITCH_H

#include <vector>

#include "tfhe/decompose.h"
#include "tfhe/lwe.h"
#include "tfhe/params.h"

namespace strix {

/** Keyswitching key: rows ksk[i][j] = LWE_s(z_i * q / base^{j+1}). */
class KeySwitchKey
{
  public:
    KeySwitchKey() = default;

    uint32_t inDim() const { return in_dim_; }
    uint32_t outDim() const { return out_dim_; }
    const GadgetParams &gadget() const { return g_; }

    const LweCiphertext &row(size_t i, size_t level) const
    {
        return rows_[i * g_.levels + level];
    }

    /**
     * Generate a keyswitching key from @p from (dimension k*N,
     * typically GlweKey::extractedLweKey()) to @p to (dimension n).
     */
    static KeySwitchKey generate(const LweKey &from, const LweKey &to,
                                 const TfheParams &params, Rng &rng);

    /**
     * Seeded-mask generation (lweEncryptSeeded per row): the mask of
     * row (i, level) comes from fork i*l_ksk + level of the stream
     * rooted at @p mask_seed; only noise draws from @p noise_rng. The
     * key is fully determined by (mask_seed, bodies) -- the KSK2
     * frame ships exactly that and fromSeededBodies() reconstructs it
     * bit-identically.
     */
    static KeySwitchKey generateSeeded(const LweKey &from,
                                       const LweKey &to,
                                       const TfheParams &params,
                                       uint64_t mask_seed,
                                       Rng &noise_rng);

    /**
     * Rebuild a generateSeeded() key from its mask seed plus the
     * shipped bodies: @p bodies holds in_dim*levels scalars, entry
     * i*levels + level being b of row (i, level). Masks re-expand
     * from per-row forks of @p mask_seed; needs no secret key. Panics
     * on count mismatch -- callers feeding untrusted bytes validate
     * shapes first (serialize.cpp does).
     */
    static KeySwitchKey fromSeededBodies(uint32_t in_dim,
                                         uint32_t out_dim,
                                         const GadgetParams &g,
                                         uint64_t mask_seed,
                                         const std::vector<Torus32> &bodies);

    /** Rebuild from raw rows (deserialization). */
    static KeySwitchKey fromRows(uint32_t in_dim, uint32_t out_dim,
                                 const GadgetParams &g,
                                 std::vector<LweCiphertext> rows);

  private:
    uint32_t in_dim_ = 0;
    uint32_t out_dim_ = 0;
    GadgetParams g_{0, 0};
    std::vector<LweCiphertext> rows_;
};

/** Switch @p ct (dimension ksk.inDim()) to dimension ksk.outDim(). */
LweCiphertext keySwitch(const LweCiphertext &ct, const KeySwitchKey &ksk);

} // namespace strix

#endif // STRIX_TFHE_KEYSWITCH_H
