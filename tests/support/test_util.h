/**
 * @file
 * Shared helpers for the Strix test suite.
 *
 * Centralizes the random-polynomial generators and the toy TFHE
 * parameter fixtures that used to be copy-pasted across test files.
 * Everything here is deterministic: fixtures document their seed so a
 * failure reproduces bit-for-bit with `ctest -R <test>`.
 */

#ifndef STRIX_TESTS_SUPPORT_TEST_UTIL_H
#define STRIX_TESTS_SUPPORT_TEST_UTIL_H

#include <cstdint>

#include "common/random.h"
#include "poly/polynomial.h"
#include "tfhe/client_keyset.h"
#include "tfhe/params.h"
#include "tfhe/server_context.h"

namespace strix {
namespace test {

/** Uniform torus polynomial of degree < n. */
TorusPolynomial randomTorusPoly(size_t n, Rng &rng);

/** Integer polynomial with coefficients uniform in [-bound, bound]. */
IntPolynomial randomSmallIntPoly(size_t n, int32_t bound, Rng &rng);

/**
 * Torus polynomial whose every coefficient encodes a uniform message
 * from a discrete space of @p space values (the "plaintext polynomial"
 * shape GLWE/GGSW tests encrypt).
 */
TorusPolynomial randomMessagePoly(uint32_t n, Rng &rng,
                                  uint64_t space = 16);

/**
 * The standard small-but-real PBS parameter set used by the gate /
 * integer / workload tests: n=48, N=512, k=1, l=3, Bg=2^8, zero
 * noise. Big enough that blind rotation is exercised for real, small
 * enough that a full bootstrap takes milliseconds.
 */
TfheParams fastParams();

/**
 * Mid-size zero-noise set (n=20, N=256): used where a second,
 * differently-shaped ring is wanted (e.g. cross-parameter tests)
 * while staying fast.
 */
TfheParams midParams();

/**
 * Split-API fixture: one deterministic ClientKeyset and a
 * ServerContext sharing its EvalKeys bundle, the pair most suites
 * need. Members are public on purpose -- tests read `client` for
 * encrypt/decrypt and `server` for evaluation, which keeps each call
 * site explicit about the role it exercises.
 */
struct TestKeys
{
    explicit TestKeys(const TfheParams &params, uint64_t seed)
        : client(params, seed), server(client.evalKeys())
    {
    }

    ClientKeyset client;
    ServerContext server;
};

/**
 * Deterministic per-suite context seeds. Each test file that builds a
 * shared TestKeys/TfheContext uses its own seed so suites stay
 * independent; keeping them here documents that they are arbitrary
 * but pinned.
 */
enum Seed : uint64_t {
    kSeedGates = 1234,
    kSeedCircuit = 4321,
    kSeedDecisionTree = 1357,
    kSeedInteger = 2468,
    kSeedIntegration = 60606,
    kSeedBootstrap = 99,
    kSeedParallel = 7777,
    kSeedContextCache = 31337,
    kSeedSerialize = 90210,
    kSeedBatchExecutor = 5150,
};

} // namespace test
} // namespace strix

#endif // STRIX_TESTS_SUPPORT_TEST_UTIL_H
