/**
 * @file
 * StrixServer implementation: one poll loop, one circuit worker, and
 * the shared BatchExecutor doing the actual PBS work.
 */

#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "server/wire_codec.h"
#include "tfhe/bootstrap.h"
#include "tfhe/server_context.h"
#include "workloads/circuit_analysis.h"

namespace strix {

namespace {

bool
futureReady(const std::future<LweCiphertext> &f)
{
    return f.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

bool
futureReady(const std::future<std::vector<LweCiphertext>> &f)
{
    return f.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

} // namespace

StrixServer::StrixServer(Options opts,
                         std::shared_ptr<WaitableClock> clock)
    : opts_(opts),
      clock_(clock ? std::move(clock)
                   : std::make_shared<SteadyWaitableClock>()),
      executor_(std::make_shared<BatchExecutor>(opts.exec, clock_))
{
    cache_.setBudgetBytes(opts_.cache_budget_bytes);
}

StrixServer::StrixServer() : StrixServer(Options()) {}

StrixServer::~StrixServer()
{
    stop();
}

std::string
StrixServer::tenantKey(uint64_t tenant)
{
    return std::to_string(tenant);
}

bool
StrixServer::start()
{
    panicIfNot(!running_.load() && !loop_.joinable(),
               "StrixServer: start() called twice");
    listener_ = TcpListener::listenLoopback(opts_.port);
    if (!listener_.valid())
        return false;
    port_ = listener_.port();
    running_.store(true);
    circuit_thread_ = std::thread([this] { circuitWorker(); });
    loop_ = std::thread([this] { run(); });
    return true;
}

void
StrixServer::stop()
{
    stop_requested_.store(true);
    if (loop_.joinable())
        loop_.join();
    {
        MutexLock lock(circuit_m_);
        circuit_stop_ = true;
    }
    circuit_cv_.notify_all();
    if (circuit_thread_.joinable())
        circuit_thread_.join();
    executor_->shutdown();
    running_.store(false);
}

StrixServer::Stats
StrixServer::stats() const
{
    Stats s;
    s.conns_accepted = conns_accepted_.load();
    s.requests = requests_.load();
    s.ok_replies = ok_replies_.load();
    s.error_replies = error_replies_.load();
    s.busy_rejects = busy_rejects_.load();
    s.deadline_misses = deadline_misses_.load();
    s.protocol_errors = protocol_errors_.load();
    return s;
}

void
StrixServer::circuitWorker()
{
    for (;;) {
        std::function<void()> job;
        {
            MutexLock lock(circuit_m_);
            circuit_cv_.wait(lock, [&] {
                circuit_m_.assertHeld();
                return circuit_stop_ || !circuit_q_.empty();
            });
            if (circuit_q_.empty())
                return; // stop requested and queue drained
            job = std::move(circuit_q_.front());
            circuit_q_.pop_front();
        }
        job();
    }
}

void
StrixServer::sendOk(ConnState &c, const WireMessage &m,
                    std::vector<uint8_t> payload, uint64_t now_us)
{
    WireMessage reply;
    reply.type = MsgType::Ok;
    reply.tenant = m.tenant;
    reply.request_id = m.request_id;
    reply.payload = std::move(payload);
    c.out.queue(encodeMessage(reply), now_us);
    ok_replies_.fetch_add(1, std::memory_order_relaxed);
}

void
StrixServer::sendErr(ConnState &c, uint64_t tenant, uint64_t request_id,
                     WireError code, const std::string &text,
                     uint64_t now_us)
{
    c.out.queue(encodeError(tenant, request_id, code, text), now_us);
    error_replies_.fetch_add(1, std::memory_order_relaxed);
}

void
StrixServer::handleRegister(ConnState &c, const WireMessage &m,
                            uint64_t now_us)
{
    std::shared_ptr<const EvalKeys> keys;
    try {
        keys = decodeEvalKeysPayload(m.payload);
    } catch (const std::exception &e) {
        sendErr(c, m.tenant, m.request_id, WireError::BadPayload,
                e.what(), now_us);
        return;
    }
    // Unpin idle tenants' bundles before the insert: the executor
    // keeps a shard (and a strong bundle reference) per key bundle it
    // has served, which would otherwise make every previously-served
    // tenant unevictable and defeat the budget.
    executor_->releaseIdleShards();
    cache_.getOrInsert(tenantKey(m.tenant), std::move(keys));
    sendOk(c, m, {}, now_us);
}

void
StrixServer::handleCompute(ConnState &c, WireMessage &&m,
                           uint64_t now_us)
{
    if (m.payload.size() > opts_.max_request_payload_bytes) {
        sendErr(c, m.tenant, m.request_id, WireError::PayloadTooLarge,
                "request payload over the compute cap", now_us);
        return;
    }
    if (pendings_.size() >= opts_.max_queue_depth) {
        busy_rejects_.fetch_add(1, std::memory_order_relaxed);
        sendErr(c, m.tenant, m.request_id, WireError::Busy,
                "server queue full; retry with backoff", now_us);
        return;
    }
    size_t &tenant_inflight = inflight_[m.tenant];
    if (tenant_inflight >= opts_.max_inflight_per_tenant) {
        if (tenant_inflight == 0)
            inflight_.erase(m.tenant);
        busy_rejects_.fetch_add(1, std::memory_order_relaxed);
        sendErr(c, m.tenant, m.request_id, WireError::Busy,
                "tenant in-flight cap reached; retry with backoff",
                now_us);
        return;
    }
    std::shared_ptr<const EvalKeys> bundle =
        cache_.lookup(tenantKey(m.tenant));
    if (!bundle) {
        if (tenant_inflight == 0)
            inflight_.erase(m.tenant);
        sendErr(c, m.tenant, m.request_id, WireError::UnknownTenant,
                "tenant not registered (or evicted); re-register",
                now_us);
        return;
    }
    const TfheParams &p = bundle->params();

    Pending pend;
    pend.conn_id = c.id;
    pend.tenant = m.tenant;
    pend.request_id = m.request_id;
    pend.deadline_abs_us =
        m.deadline_us != 0 ? now_us + m.deadline_us : 0;
    try {
        switch (m.type) {
        case MsgType::Bootstrap: {
            BootstrapRequest req = decodeBootstrapPayload(m.payload);
            if (req.ct.dim() != p.n || req.tv.size() != p.N)
                throw std::runtime_error(
                    "request shape does not match tenant parameters");
            pend.single = executor_->submit(bundle, std::move(req.ct),
                                            std::move(req.tv));
            break;
        }
        case MsgType::ApplyLut: {
            ApplyLutRequest req = decodeApplyLutPayload(m.payload);
            if (req.ct.dim() != p.n)
                throw std::runtime_error(
                    "request shape does not match tenant parameters");
            TorusPolynomial tv = makeIntTestVector(
                p.N, req.msg_space,
                [t = std::move(req.table)](int64_t v) {
                    return t[static_cast<size_t>(v) % t.size()];
                });
            pend.single = executor_->submit(bundle, std::move(req.ct),
                                            std::move(tv));
            break;
        }
        case MsgType::EvalCircuit: {
            CircuitRequest req = decodeCircuitPayload(m.payload);
            for (const LweCiphertext &ct : req.inputs)
                if (ct.dim() != p.n)
                    throw std::runtime_error(
                        "input ciphertext does not match tenant "
                        "parameters");
            CircuitPlan plan = analyzeCircuit(req.circuit, p);
            if (!plan.feasible()) {
                std::ostringstream os;
                os << "no feasible noise plan:";
                for (const std::string &d : plan.diagnostics())
                    os << " " << d << ";";
                if (tenant_inflight == 0)
                    inflight_.erase(m.tenant);
                sendErr(c, m.tenant, m.request_id,
                        WireError::Infeasible, os.str(), now_us);
                return;
            }
            // The worker owns bundle + request for the eval's whole
            // lifetime (pinning the tenant resident); its per-level
            // PBS stream feeds the shared executor, coalescing with
            // the Bootstrap/ApplyLut traffic of every session.
            auto task = std::make_shared<
                std::packaged_task<std::vector<LweCiphertext>()>>(
                [executor = executor_, bundle,
                 circuit = std::move(req.circuit),
                 inputs = std::move(req.inputs),
                 plan = std::move(plan)] {
                    ServerContext ctx(bundle);
                    ctx.attachExecutor(executor);
                    return circuit.evalEncryptedAsync(ctx, inputs,
                                                      plan);
                });
            pend.is_many = true;
            pend.many = task->get_future();
            {
                MutexLock lock(circuit_m_);
                circuit_q_.push_back([task] { (*task)(); });
            }
            circuit_cv_.notify_one();
            break;
        }
        default:
            panic("handleCompute: unreachable type");
        }
    } catch (const std::exception &e) {
        if (tenant_inflight == 0)
            inflight_.erase(m.tenant);
        sendErr(c, m.tenant, m.request_id, WireError::BadPayload,
                e.what(), now_us);
        return;
    }
    ++tenant_inflight;
    pendings_.push_back(std::move(pend));
}

void
StrixServer::handleMessage(ConnState &c, WireMessage &&m,
                           uint64_t now_us)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    const bool draining = stop_requested_.load();
    switch (m.type) {
    case MsgType::Ping:
        sendOk(c, m, std::move(m.payload), now_us); // echo
        break;
    case MsgType::RegisterTenant:
        if (draining) {
            sendErr(c, m.tenant, m.request_id,
                    WireError::ShuttingDown, "server is draining",
                    now_us);
            break;
        }
        handleRegister(c, m, now_us);
        break;
    case MsgType::Bootstrap:
    case MsgType::ApplyLut:
    case MsgType::EvalCircuit:
        if (draining) {
            sendErr(c, m.tenant, m.request_id,
                    WireError::ShuttingDown, "server is draining",
                    now_us);
            break;
        }
        handleCompute(c, std::move(m), now_us);
        break;
    default:
        sendErr(c, m.tenant, m.request_id, WireError::UnknownType,
                "unknown message type", now_us);
        break;
    }
}

bool
StrixServer::serviceReadable(ConnState &c, uint64_t now_us)
{
    if (rbuf_.empty())
        rbuf_.resize(64 * 1024);
    for (;;) {
        size_t got = 0;
        const TcpConn::IoResult r =
            c.conn.readSome(rbuf_.data(), rbuf_.size(), got);
        if (r == TcpConn::IoResult::WouldBlock)
            return true;
        if (r != TcpConn::IoResult::Ok)
            return false; // Eof / Error: drop the connection
        try {
            c.dec.feed(rbuf_.data(), got);
            WireMessage m;
            while (c.dec.next(m))
                handleMessage(c, std::move(m), now_us);
        } catch (const std::exception &e) {
            // Malformed outer framing: no trustworthy resync point.
            // Answer with a structured error frame, then close once
            // it has flushed -- hostile bytes never crash the loop.
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            sendErr(c, 0, 0, WireError::Protocol, e.what(), now_us);
            c.closing = true;
            return true;
        }
    }
}

void
StrixServer::acceptPending(uint64_t /*now_us*/)
{
    for (;;) {
        TcpConn nc = listener_.accept();
        if (!nc.valid())
            return;
        const uint64_t id = next_conn_id_++;
        ConnState st;
        st.id = id;
        st.conn = std::move(nc);
        st.dec = FrameDecoder(opts_.limits);
        st.out = BufferedSender(opts_.send);
        conns_.emplace(id, std::move(st));
        conns_accepted_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
StrixServer::completeFinished(uint64_t now_us)
{
    for (auto it = pendings_.begin(); it != pendings_.end();) {
        Pending &pend = *it;
        const bool ready = pend.is_many ? futureReady(pend.many)
                                        : futureReady(pend.single);
        if (!ready) {
            ++it;
            continue;
        }
        std::vector<LweCiphertext> cts;
        std::string fail;
        try {
            if (pend.is_many)
                cts = pend.many.get();
            else
                cts.push_back(pend.single.get());
        } catch (const std::exception &e) {
            fail = e.what();
        }
        const uint64_t done_us = clock_->nowMicros();
        const bool missed = pend.deadline_abs_us != 0 &&
                            done_us > pend.deadline_abs_us;
        if (missed)
            deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        auto cit = conns_.find(pend.conn_id);
        if (cit != conns_.end() && !cit->second.closing) {
            ConnState &c = cit->second;
            if (!fail.empty()) {
                sendErr(c, pend.tenant, pend.request_id,
                        WireError::Internal, fail, now_us);
            } else if (missed) {
                sendErr(c, pend.tenant, pend.request_id,
                        WireError::DeadlineExceeded,
                        "completed after the request deadline",
                        now_us);
            } else {
                WireMessage reply;
                reply.tenant = pend.tenant;
                reply.request_id = pend.request_id;
                sendOk(c, reply, encodeCiphertexts(cts), now_us);
            }
        }
        auto fit = inflight_.find(pend.tenant);
        if (fit != inflight_.end() && --fit->second == 0)
            inflight_.erase(fit);
        it = pendings_.erase(it);
    }
}

void
StrixServer::flushSenders(uint64_t now_us)
{
    std::vector<uint64_t> dead;
    for (auto &[id, c] : conns_) {
        if (!c.out.empty() && c.out.wantFlush(now_us)) {
            const TcpConn::IoResult r = c.out.flushTo(c.conn);
            if (r == TcpConn::IoResult::Eof ||
                r == TcpConn::IoResult::Error) {
                dead.push_back(id);
                continue;
            }
        }
        if (c.closing && c.out.empty())
            dead.push_back(id);
    }
    for (uint64_t id : dead)
        conns_.erase(id);
}

int
StrixServer::pollTimeoutMs(uint64_t now_us) const
{
    // Idle heartbeat also bounds how fast stop() is noticed.
    uint64_t wait_us = 20 * 1000;
    // Outstanding futures have no fd; poll them at ms granularity
    // (PBS work is ms-scale at the paper parameter sets).
    if (!pendings_.empty())
        wait_us = std::min<uint64_t>(wait_us, 1000);
    for (const auto &[id, c] : conns_) {
        (void)id;
        // A sender past its trigger is waiting on POLLOUT, not time.
        if (c.out.empty() || c.out.wantFlush(now_us))
            continue;
        const uint64_t deadline = c.out.flushDeadline();
        wait_us = std::min<uint64_t>(
            wait_us, deadline > now_us ? deadline - now_us : 0);
    }
    return static_cast<int>((wait_us + 999) / 1000);
}

void
StrixServer::run()
{
    Poller poller;
    for (;;) {
        const bool draining = stop_requested_.load();
        uint64_t now_us = clock_->nowMicros();
        // Drain must not depend on the executor's own flush policy: a
        // long flush_delay_us would strand admitted work (and us)
        // forever. Force everything queued due each pass; the circuit
        // worker's next per-level submissions get caught next pass.
        if (draining && !pendings_.empty())
            executor_->flushNow();
        completeFinished(now_us);
        flushSenders(now_us);
        if (draining && pendings_.empty()) {
            bool flushed = true;
            for (const auto &[id, c] : conns_) {
                (void)id;
                if (!c.out.empty())
                    flushed = false;
            }
            if (flushed)
                break;
        }
        poller.clear();
        if (!draining)
            poller.add(listener_.fd(), true, false);
        for (const auto &[id, c] : conns_) {
            (void)id;
            poller.add(c.conn.fd(), !draining && !c.closing,
                       !c.out.empty());
        }
        poller.wait(pollTimeoutMs(now_us));
        now_us = clock_->nowMicros();
        if (!draining && poller.readable(listener_.fd()))
            acceptPending(now_us);
        std::vector<uint64_t> dead;
        for (auto &[id, c] : conns_) {
            const int fd = c.conn.fd();
            if (poller.errored(fd)) {
                dead.push_back(id);
                continue;
            }
            if (poller.writable(fd)) {
                const TcpConn::IoResult r = c.out.flushTo(c.conn);
                if (r == TcpConn::IoResult::Eof ||
                    r == TcpConn::IoResult::Error) {
                    dead.push_back(id);
                    continue;
                }
            }
            if (!c.closing && poller.readable(fd) &&
                !serviceReadable(c, now_us))
                dead.push_back(id);
        }
        for (uint64_t id : dead)
            conns_.erase(id);
    }
    conns_.clear();
    listener_.close();
}

} // namespace strix
