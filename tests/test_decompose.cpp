/**
 * @file
 * Tests for the gadget decomposition (reference and hardware-style
 * streaming variants) and the paper's Eq. (3) error bound.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "tfhe/decompose.h"
#include "tfhe/decomposer_hw.h"
#include "support/test_util.h"

namespace strix {
namespace {

struct GadgetCase
{
    uint32_t base_bits;
    uint32_t levels;
};

class GadgetSweep : public ::testing::TestWithParam<GadgetCase>
{
};

TEST_P(GadgetSweep, DigitsAreBalanced)
{
    const GadgetParams g{GetParam().base_bits, GetParam().levels};
    const int32_t half = static_cast<int32_t>(g.base() / 2);
    Rng rng(1);
    std::vector<int32_t> digits(g.levels);
    for (int trial = 0; trial < 2000; ++trial) {
        gadgetDecompose(digits.data(), rng.uniformTorus32(), g);
        for (auto d : digits) {
            EXPECT_GE(d, -half);
            EXPECT_LT(d, half);
        }
    }
}

TEST_P(GadgetSweep, RecomposeEqualsRounded)
{
    const GadgetParams g{GetParam().base_bits, GetParam().levels};
    Rng rng(2);
    std::vector<int32_t> digits(g.levels);
    for (int trial = 0; trial < 2000; ++trial) {
        Torus32 a = rng.uniformTorus32();
        gadgetDecompose(digits.data(), a, g);
        Torus32 back = gadgetRecompose(digits.data(), g);
        Torus32 rounded = roundToBits(a, g.base_bits * g.levels);
        EXPECT_EQ(back, rounded) << "a=" << a;
    }
}

TEST_P(GadgetSweep, ErrorBoundEq3Holds)
{
    // | a - sum d_j q/B^j | <= q / (2 B^l)  -- paper Eq. (3).
    const GadgetParams g{GetParam().base_bits, GetParam().levels};
    Rng rng(3);
    std::vector<int32_t> digits(g.levels);
    // keep == 32 decomposes the full torus word: the bound q/(2B^l)
    // is half an integer ulp, so the error must be exactly zero (the
    // unguarded shift here was a shift-by-minus-one, the same UB
    // family the asan-ubsan CI leg exists to catch).
    const uint32_t keep = g.base_bits * g.levels;
    const uint64_t bound =
        keep >= static_cast<uint32_t>(kTorus32Bits)
            ? 0
            : uint64_t{1} << (kTorus32Bits - keep - 1);
    for (int trial = 0; trial < 2000; ++trial) {
        Torus32 a = rng.uniformTorus32();
        gadgetDecompose(digits.data(), a, g);
        Torus32 back = gadgetRecompose(digits.data(), g);
        auto err = static_cast<uint64_t>(
            std::abs(static_cast<int64_t>(torusDistance(a, back))));
        EXPECT_LE(err, bound);
    }
}

TEST_P(GadgetSweep, StreamingDecomposerBitIdentical)
{
    // The multiplier-free two-step hardware datapath (Fig. 6) must
    // agree with the reference offset-trick decomposition everywhere.
    const GadgetParams g{GetParam().base_bits, GetParam().levels};
    StreamingDecomposer hw(g);
    Rng rng(4);
    std::vector<int32_t> ref(g.levels), got(g.levels);
    for (int trial = 0; trial < 5000; ++trial) {
        Torus32 a = rng.uniformTorus32();
        gadgetDecompose(ref.data(), a, g);
        hw.decomposeOne(got.data(), a);
        EXPECT_EQ(ref, got) << "a=" << a;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Bases, GadgetSweep,
    ::testing::Values(GadgetCase{10, 2}, GadgetCase{7, 3}, GadgetCase{8, 3},
                      GadgetCase{12, 2}, GadgetCase{4, 8},
                      GadgetCase{2, 16}, GadgetCase{16, 2},
                      GadgetCase{8, 4}));

TEST(Gadget, BoundaryValues)
{
    const GadgetParams g{10, 2};
    StreamingDecomposer hw(g);
    std::vector<int32_t> ref(g.levels), got(g.levels);
    for (Torus32 a : {0u, 1u, 0x7FFFFFFFu, 0x80000000u, 0x80000001u,
                      0xFFFFFFFFu, 0x001FFFFFu, 0x00200000u}) {
        gadgetDecompose(ref.data(), a, g);
        hw.decomposeOne(got.data(), a);
        EXPECT_EQ(ref, got) << "a=" << a;
        EXPECT_EQ(gadgetRecompose(ref.data(), g),
                  roundToBits(a, g.base_bits * g.levels));
    }
}

TEST(Gadget, FullWidthGadgetIsExact)
{
    // base_bits * levels == 32: rounding is the identity and the
    // decomposition is lossless.
    const GadgetParams g{8, 4};
    Rng rng(5);
    std::vector<int32_t> digits(g.levels);
    for (int trial = 0; trial < 1000; ++trial) {
        Torus32 a = rng.uniformTorus32();
        gadgetDecompose(digits.data(), a, g);
        EXPECT_EQ(gadgetRecompose(digits.data(), g), a);
    }
}

TEST(Gadget, PolyDecomposeMatchesScalar)
{
    const GadgetParams g{7, 3};
    Rng rng(6);
    const size_t n = 64;
    TorusPolynomial p = test::randomTorusPoly(n, rng);
    std::vector<IntPolynomial> out;
    gadgetDecomposePoly(out, p, g);
    ASSERT_EQ(out.size(), g.levels);
    std::vector<int32_t> digits(g.levels);
    for (size_t i = 0; i < n; ++i) {
        gadgetDecompose(digits.data(), p[i], g);
        for (uint32_t j = 0; j < g.levels; ++j)
            EXPECT_EQ(out[j][i], digits[j]);
    }
}

TEST(Gadget, StreamingPolyMatchesReferencePoly)
{
    const GadgetParams g{10, 2};
    Rng rng(7);
    const size_t n = 256;
    TorusPolynomial p = test::randomTorusPoly(n, rng);
    std::vector<IntPolynomial> ref, hw;
    gadgetDecomposePoly(ref, p, g);
    streamingDecomposePoly(hw, p, g);
    ASSERT_EQ(ref.size(), hw.size());
    for (size_t j = 0; j < ref.size(); ++j)
        EXPECT_EQ(ref[j], hw[j]) << "level " << j;
}

TEST(Gadget, StreamingThroughputModel)
{
    // N/CLP * lb cycles per polynomial (Sec. V-B).
    EXPECT_EQ(StreamingDecomposer::cyclesPerPoly(1024, 4, 2), 512u);
    EXPECT_EQ(StreamingDecomposer::cyclesPerPoly(2048, 8, 3), 768u);
    EXPECT_EQ(StreamingDecomposer::cyclesPerPoly(16384, 8, 2), 4096u);
}

TEST(Gadget, StreamOrderIsLevelMajorPerCoefficient)
{
    const GadgetParams g{10, 2};
    StreamingDecomposer hw(g);
    hw.push(0x12345678u);
    ASSERT_TRUE(hw.outputReady());
    uint32_t level = 99;
    hw.pop(level);
    EXPECT_EQ(level, 0u);
    hw.pop(level);
    EXPECT_EQ(level, 1u);
    EXPECT_FALSE(hw.outputReady());
}

} // namespace
} // namespace strix
