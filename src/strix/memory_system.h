/**
 * @file
 * Strix memory system model: global/local scratchpads, multicast NoC,
 * and the HBM channel split (Sec. IV-B and VI-A).
 */

#ifndef STRIX_STRIX_MEMORY_SYSTEM_H
#define STRIX_STRIX_MEMORY_SYSTEM_H

#include <algorithm>

#include "sim/bandwidth.h"
#include "strix/config.h"
#include "tfhe/params.h"

namespace strix {

/**
 * Sizes and transfer-time helpers for the data the accelerator moves
 * every blind-rotation iteration / epoch.
 */
class MemorySystem
{
  public:
    MemorySystem(const StrixConfig &cfg, const TfheParams &p)
        : cfg_(cfg), p_(p),
          bsk_group_(cfg.hbm_gbps, cfg.bsk_channels, cfg.hbm_channels),
          ksk_group_(cfg.hbm_gbps, cfg.ksk_channels, cfg.hbm_channels),
          ct_group_(cfg.hbm_gbps, cfg.ct_channels, cfg.hbm_channels)
    {
    }

    /**
     * Bootstrapping-key bytes fetched per blind-rotation iteration:
     * one GGSW of (k+1)*lb x (k+1) polynomials, stored in the Fourier
     * domain as N/2 complex points of 2x32-bit fixed point (the VMA
     * datapath format), i.e. 8 bytes per point. Shared by all cores
     * via the multicast NoC, so fetched once per iteration.
     */
    uint64_t bskBytesPerIteration() const
    {
        uint64_t ggsw_per_iter = cfg_.key_unrolling ? 3 : 1;
        return ggsw_per_iter * uint64_t(p_.k + 1) * p_.l_bsk *
               (p_.k + 1) * (p_.N / 2) * 8;
    }

    /** Keyswitching-key bytes streamed once per epoch (tiled). */
    uint64_t kskBytes() const { return p_.kskBytes(); }

    /** Ciphertext + test-vector bytes moved per LWE per epoch. */
    uint64_t ctBytesPerLwe() const
    {
        // input LWE + initial test vector in, extracted LWE out.
        return p_.lweBytes() + p_.glweBytes() +
               (uint64_t(p_.k) * p_.N + 1) * sizeof(uint32_t);
    }

    /** Cycles to multicast one iteration's bsk at the bsk share. */
    Cycle bskFetchCycles() const
    {
        return bsk_group_.transferCycles(bskBytesPerIteration(),
                                         cfg_.clock_ghz);
    }

    /**
     * Cycles to fetch one iteration's bsk when the whole stack serves
     * the fetch (single-LWE latency mode: no other traffic competes).
     */
    Cycle bskFetchCyclesFullBw() const
    {
        ChannelGroup all(cfg_.hbm_gbps, cfg_.hbm_channels,
                         cfg_.hbm_channels);
        return all.transferCycles(bskBytesPerIteration(), cfg_.clock_ghz);
    }

    /**
     * HBM occupancy per blind-rotation iteration: the channel groups
     * run in parallel, so the stack is "occupied" while the slowest
     * stream of the iteration is active (bsk per iteration, ksk
     * amortized over the n iterations of an epoch, ciphertexts/test
     * vectors likewise).
     */
    Cycle
    hbmBusyCyclesPerIteration(uint32_t core_batch) const
    {
        const uint64_t iters =
            cfg_.key_unrolling ? (uint64_t(p_.n) + 1) / 2 : p_.n;
        Cycle bsk = bskFetchCycles();
        Cycle ksk = ksk_group_.transferCycles(kskBytes() / iters,
                                              cfg_.clock_ghz);
        Cycle ct = ct_group_.transferCycles(
            ctBytesPerLwe() * core_batch / iters, cfg_.clock_ghz);
        return std::max(bsk, std::max(ksk, ct));
    }

    /**
     * Core-level batch size: how many test vectors fit in the PBS
     * section of the local scratchpad, double-buffered (Sec. IV-C:
     * "the core-level batch size depends on the number of LWE
     * test-vectors that can be stored in the local scratchpad").
     */
    uint32_t coreBatch() const
    {
        uint64_t tv_bytes = p_.glweBytes();
        auto fit = static_cast<uint32_t>(cfg_.localPbsBytes() /
                                         (2 * tv_bytes));
        return std::max<uint32_t>(1, fit);
    }

    const ChannelGroup &bskGroup() const { return bsk_group_; }
    const ChannelGroup &kskGroup() const { return ksk_group_; }
    const ChannelGroup &ctGroup() const { return ct_group_; }

  private:
    StrixConfig cfg_;
    TfheParams p_;
    ChannelGroup bsk_group_;
    ChannelGroup ksk_group_;
    ChannelGroup ct_group_;
};

} // namespace strix

#endif // STRIX_STRIX_MEMORY_SYSTEM_H
