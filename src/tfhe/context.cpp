/**
 * @file
 * TfheContext implementation.
 */

#include "tfhe/context.h"

#include "poly/negacyclic_fft.h"

namespace strix {

TfheContext::FftPrewarm::FftPrewarm(const TfheParams &p)
{
    NegacyclicFft::prewarm(p.N);
}

TfheContext::TfheContext(const TfheParams &params, uint64_t seed)
    : params_(params),
      fft_prewarm_(params_),
      rng_(seed),
      lwe_key_(params.n, rng_),
      glwe_key_(params.k, params.N, rng_),
      extracted_key_(glwe_key_.extractedLweKey()),
      bsk_(BootstrappingKey::generate(lwe_key_, glwe_key_, params, rng_)),
      ksk_(KeySwitchKey::generate(extracted_key_, lwe_key_, params, rng_))
{
}

ThreadPool &
TfheContext::pool() const
{
    std::call_once(pool_once_, [this] {
        pool_ = std::make_unique<ThreadPool>(batch_threads_);
    });
    return *pool_;
}

LweCiphertext
TfheContext::encryptBit(bool bit)
{
    Torus32 mu = encodeMessage(bit ? 1 : -1, 8); // +-1/8
    return lweEncrypt(lwe_key_, mu, params_.lwe_noise, rng_);
}

bool
TfheContext::decryptBit(const LweCiphertext &ct) const
{
    Torus32 phase = lwePhase(lwe_key_, ct);
    return static_cast<int32_t>(phase) > 0;
}

LweCiphertext
TfheContext::encryptInt(int64_t m, uint64_t msg_space)
{
    return lweEncrypt(lwe_key_, encodeLut(m, msg_space), params_.lwe_noise,
                      rng_);
}

int64_t
TfheContext::decryptInt(const LweCiphertext &ct, uint64_t msg_space) const
{
    return decodeLut(lwePhase(lwe_key_, ct), msg_space);
}

LweCiphertext
TfheContext::bootstrap(const LweCiphertext &ct,
                       const TorusPolynomial &test_vector) const
{
    LweCiphertext big = programmableBootstrap(ct, test_vector, bsk_);
    return keySwitch(big, ksk_);
}

LweCiphertext
TfheContext::applyLut(const LweCiphertext &ct, uint64_t msg_space,
                      const std::function<int64_t(int64_t)> &f) const
{
    TorusPolynomial tv = makeIntTestVector(params_.N, msg_space, f);
    return bootstrap(ct, tv);
}

std::vector<LweCiphertext>
TfheContext::bootstrapBatch(const LweCiphertext *cts, size_t count,
                            const TorusPolynomial &test_vector) const
{
    ThreadPool &pool = this->pool();
    std::vector<LweCiphertext> out(count);
    // One scratch per worker: blind rotation allocates nothing and
    // shares nothing, so workers never touch common mutable state.
    std::vector<PbsScratch> scratch(pool.threads());
    pool.parallelFor(count, [&](size_t i, unsigned worker) {
        LweCiphertext big = programmableBootstrap(cts[i], test_vector,
                                                  bsk_, scratch[worker]);
        out[i] = keySwitch(big, ksk_);
    });
    return out;
}

std::vector<LweCiphertext>
TfheContext::bootstrapBatch(const std::vector<LweCiphertext> &cts,
                            const TorusPolynomial &test_vector) const
{
    return bootstrapBatch(cts.data(), cts.size(), test_vector);
}

std::vector<LweCiphertext>
TfheContext::applyLutBatch(const std::vector<LweCiphertext> &cts,
                           uint64_t msg_space,
                           const std::function<int64_t(int64_t)> &f) const
{
    TorusPolynomial tv = makeIntTestVector(params_.N, msg_space, f);
    return bootstrapBatch(cts, tv);
}

void
TfheContext::setBatchThreads(unsigned threads)
{
    batch_threads_ = threads;
    if (pool_) // already spun up: replace at the requested size
        pool_ = std::make_unique<ThreadPool>(threads);
}

} // namespace strix
