# Empty compiler generated dependencies file for strix_tfhe.
# This may be replaced when dependencies are built.
