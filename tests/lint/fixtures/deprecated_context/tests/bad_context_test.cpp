// Negative fixture: a test TU reaching for the deprecated facade
// instead of the split ClientKeyset/ServerContext types.
#include "tfhe/context.h"
