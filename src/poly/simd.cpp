/**
 * @file
 * Kernel-table selection: one CPUID probe plus one environment check,
 * latched on first use so every transform in the process agrees on a
 * backend.
 */

#include "poly/simd.h"

#include <cstdlib>

namespace strix {

bool
cpuSupportsAvx2Fma()
{
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool
simdForcedScalar()
{
    static const bool forced = [] {
        const char *e = std::getenv("STRIX_FORCE_SCALAR");
        // Unset, empty, and "0" all mean "use the best backend".
        return e != nullptr && e[0] != '\0' &&
               !(e[0] == '0' && e[1] == '\0');
    }();
    return forced;
}

#ifndef STRIX_HAVE_AVX2
// Built with STRIX_SIMD=OFF (or a compiler that cannot target AVX2):
// the vector TU is absent, so the probe reports "unavailable" and the
// scalar reference serves every call.
const PolyKernels *
avx2Kernels()
{
    return nullptr;
}
#endif

const PolyKernels &
activeKernels()
{
    static const PolyKernels &selected = []() -> const PolyKernels & {
        if (!simdForcedScalar()) {
            if (const PolyKernels *v = avx2Kernels())
                return *v;
        }
        return scalarKernels();
    }();
    return selected;
}

} // namespace strix
