/**
 * @file
 * Payload codec for the MSG1 request/reply types.
 *
 * net/ moves opaque bytes; this module gives those bytes TFHE
 * meaning. Each request payload is built from the hardened
 * serialize.h frames (LCT1/TPLY/EVK1/EVK2) plus small typed headers
 * framed the same way, so every decoder below validates hostile
 * input with the same length-checked readers the file formats use:
 * malformed payloads throw std::runtime_error, never crash. The
 * daemon decodes requests and encodes replies; clients (the example,
 * the bench, the tests) do the reverse with the same functions --
 * one codec TU keeps the two sides byte-compatible by construction.
 *
 * This lives in server/ (not net/) because it speaks TFHE types;
 * the lint layering keeps net/ below tfhe/.
 */

#ifndef STRIX_SERVER_WIRE_CODEC_H
#define STRIX_SERVER_WIRE_CODEC_H

#include <cstdint>
#include <memory>
#include <vector>

#include "tfhe/serialize.h"
#include "workloads/circuit.h"

namespace strix {

// --- caps enforced by the decoders (hostile-input bounds) ------------

/** Max LUT message space accepted by ApplyLut (tables stay tiny). */
inline constexpr uint64_t kMaxLutMsgSpace = 4096;
/** Max netlist nodes accepted by EvalCircuit. */
inline constexpr uint64_t kMaxCircuitNodes = 1u << 20;
/** Max ciphertexts in one request or reply. */
inline constexpr uint64_t kMaxWireCiphertexts = 1u << 16;

// --- Bootstrap -------------------------------------------------------

/** Decoded Bootstrap request: raw PBS of ct against a test vector. */
struct BootstrapRequest
{
    LweCiphertext ct;
    TorusPolynomial tv;
};

std::vector<uint8_t> encodeBootstrapPayload(const LweCiphertext &ct,
                                            const TorusPolynomial &tv);
BootstrapRequest
decodeBootstrapPayload(const std::vector<uint8_t> &payload);

// --- ApplyLut --------------------------------------------------------

/** Decoded ApplyLut request: tabulated f over Z_msg_space. */
struct ApplyLutRequest
{
    LweCiphertext ct;
    uint64_t msg_space = 0;
    std::vector<int64_t> table; //!< msg_space entries, f(0..msg_space)
};

std::vector<uint8_t>
encodeApplyLutPayload(const LweCiphertext &ct, uint64_t msg_space,
                      const std::vector<int64_t> &table);
ApplyLutRequest
decodeApplyLutPayload(const std::vector<uint8_t> &payload);

// --- EvalCircuit -----------------------------------------------------

/** Decoded EvalCircuit request: netlist + encrypted inputs. */
struct CircuitRequest
{
    Circuit circuit;
    std::vector<LweCiphertext> inputs;
};

std::vector<uint8_t>
encodeCircuitPayload(const Circuit &circuit,
                     const std::vector<LweCiphertext> &inputs);
CircuitRequest
decodeCircuitPayload(const std::vector<uint8_t> &payload);

// --- ciphertext vectors (Ok reply payloads) --------------------------

std::vector<uint8_t>
encodeCiphertexts(const std::vector<LweCiphertext> &cts);
std::vector<LweCiphertext>
decodeCiphertexts(const std::vector<uint8_t> &payload);

// --- RegisterTenant --------------------------------------------------

/** The EVK1/EVK2 frame bytes of @p keys (what RegisterTenant ships). */
std::vector<uint8_t> encodeEvalKeysPayload(const EvalKeys &keys,
                                           EvalKeysFormat format);
/** Deserialize an uploaded bundle (hardened EVK1/EVK2 readers). */
std::shared_ptr<const EvalKeys>
decodeEvalKeysPayload(const std::vector<uint8_t> &payload);

} // namespace strix

#endif // STRIX_SERVER_WIRE_CODEC_H
