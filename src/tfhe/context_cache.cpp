/**
 * @file
 * ContextCache implementation: keygen keys + secret-side ownership
 * over the EvalKeyCache engine.
 */

#include "tfhe/context_cache.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace strix {

namespace {

/**
 * Exact cache key over every field that affects keygen: all numeric
 * parameters (doubles by bit pattern, so -0.0 vs 0.0 or NaN payloads
 * cannot alias), the name, and the seed. Two parameter sets that
 * differ only in name hash apart -- conservative, but a name is part
 * of a set's identity in this codebase.
 */
std::string
cacheKey(const TfheParams &p, uint64_t seed)
{
    uint64_t lwe_bits, glwe_bits;
    static_assert(sizeof(lwe_bits) == sizeof(p.lwe_noise));
    std::memcpy(&lwe_bits, &p.lwe_noise, sizeof(lwe_bits));
    std::memcpy(&glwe_bits, &p.glwe_noise, sizeof(glwe_bits));
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%" PRIu32 ";N=%" PRIu32 ";k=%" PRIu32
                  ";lb=%" PRIu32 ";bg=%" PRIu32 ";lk=%" PRIu32
                  ";kb=%" PRIu32 ";ln=%" PRIx64 ";gn=%" PRIx64
                  ";lam=%d;seed=%" PRIx64 ";",
                  p.n, p.N, p.k, p.l_bsk, p.bg_bits, p.l_ksk,
                  p.ks_base_bits, lwe_bits, glwe_bits, p.lambda, seed);
    return std::string(buf) + p.name;
}

} // namespace

ContextCache &
ContextCache::global()
{
    static ContextCache cache;
    return cache;
}

std::shared_ptr<const ClientKeyset>
ContextCache::getOrCreateKeyset(const TfheParams &params, uint64_t seed)
{
    EvalKeyCache::Built built =
        cache_.getOrBuild(cacheKey(params, seed), [&] {
            auto keyset =
                std::make_shared<const ClientKeyset>(params, seed);
            // Park the keyset as the entry's opaque owner: it stays
            // alive with the bundle and pins the entry while any
            // caller still holds it.
            return EvalKeyCache::Built{keyset->evalKeys(), keyset};
        });
    return std::static_pointer_cast<const ClientKeyset>(built.owner);
}

std::shared_ptr<const EvalKeys>
ContextCache::getOrCreate(const TfheParams &params, uint64_t seed)
{
    return getOrCreateKeyset(params, seed)->evalKeys();
}

} // namespace strix
