/**
 * @file
 * Folded negacyclic FFT implementation.
 */

#include "poly/negacyclic_fft.h"

#include <cmath>

#include "common/logging.h"
#include "poly/plan_cache.h"

namespace strix {

NegacyclicFft::NegacyclicFft(size_t n)
    : n_(n), plan_(FftPlan::get(n / 2))
{
    panicIfNot(n >= 4 && (n & (n - 1)) == 0,
               "negacyclic FFT ring dim must be 2^k >= 4");
    twist_.resize(n / 2);
    for (size_t j = 0; j < n / 2; ++j) {
        double ang = M_PI * static_cast<double>(j) / static_cast<double>(n);
        twist_[j] = Cplx(std::cos(ang), std::sin(ang));
    }
}

template <typename CoeffToDouble, typename Poly>
void
NegacyclicFft::forwardImpl(FreqPolynomial &out, const Poly &poly,
                           CoeffToDouble conv) const
{
    panicIfNot(poly.size() == n_, "forward: polynomial size mismatch");
    const size_t m = n_ / 2;
    out.resize(m);
    // Fold: u_j = a_j + i * a_{j+N/2}, then twist by w^j.
    for (size_t j = 0; j < m; ++j) {
        Cplx u(conv(poly[j]), conv(poly[j + m]));
        out[j] = u * twist_[j];
    }
    plan_.forward(out.data());
}

void
NegacyclicFft::forward(FreqPolynomial &out, const IntPolynomial &poly) const
{
    forwardImpl(out, poly,
                [](int32_t c) { return static_cast<double>(c); });
}

void
NegacyclicFft::forward(FreqPolynomial &out, const TorusPolynomial &poly) const
{
    // Centered lift keeps magnitudes <= 2^31 and therefore the
    // double-precision products exact enough for TFHE noise budgets.
    forwardImpl(out, poly, [](Torus32 c) {
        return static_cast<double>(static_cast<int32_t>(c));
    });
}

void
NegacyclicFft::inverse(TorusPolynomial &out, const FreqPolynomial &freq) const
{
    panicIfNot(out.size() == n_, "inverse: polynomial size mismatch");
    panicIfNot(freq.size() == n_ / 2, "inverse: freq size mismatch");
    const size_t m = n_ / 2;
    FreqPolynomial work = freq;
    plan_.inverse(work.data());
    for (size_t j = 0; j < m; ++j) {
        Cplx u = work[j] * std::conj(twist_[j]);
        // Round to the integer grid and wrap mod 2^32. Coefficients
        // may exceed int64 only for absurd parameter choices; TFHE
        // gadget decomposition keeps them below ~2^52.
        out[j] = static_cast<Torus32>(
            static_cast<int64_t>(std::llround(u.real())));
        out[j + m] = static_cast<Torus32>(
            static_cast<int64_t>(std::llround(u.imag())));
    }
}

void
NegacyclicFft::mulAccumulate(FreqPolynomial &out, const FreqPolynomial &a,
                             const FreqPolynomial &b)
{
    panicIfNot(a.size() == b.size(), "mulAccumulate size mismatch");
    if (out.size() != a.size())
        out.assign(a.size(), Cplx(0, 0));
    for (size_t i = 0; i < a.size(); ++i)
        out[i] += a[i] * b[i];
}

namespace {

detail::Log2PlanCache<NegacyclicFft> g_engine_cache;

} // namespace

const NegacyclicFft &
NegacyclicFft::get(size_t n)
{
    panicIfNot(n >= 4 && (n & (n - 1)) == 0,
               "negacyclic FFT ring dim must be 2^k >= 4");
    return g_engine_cache.get(n);
}

void
NegacyclicFft::prewarm(size_t n)
{
    get(n);
}

void
negacyclicMulFft(TorusPolynomial &result, const IntPolynomial &a,
                 const TorusPolynomial &b)
{
    const auto &eng = NegacyclicFft::get(a.size());
    FreqPolynomial fa, fb, prod;
    eng.forward(fa, a);
    eng.forward(fb, b);
    NegacyclicFft::mulAccumulate(prod, fa, fb);
    eng.inverse(result, prod);
}

void
negacyclicMulAddFft(TorusPolynomial &result, const IntPolynomial &a,
                    const TorusPolynomial &b)
{
    TorusPolynomial tmp(result.size());
    negacyclicMulFft(tmp, a, b);
    result.addAssign(tmp);
}

} // namespace strix
