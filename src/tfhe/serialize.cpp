/**
 * @file
 * Binary serialization implementation.
 *
 * Everything is built on FrameWriter/FrameReader (serialize.h): the
 * v1 frames use the raw (sectionless) primitives, which keeps their
 * byte layout identical to the historical ad-hoc writers, while the
 * seeded v2 frames use length-checked sections. The large BSK payloads
 * are staged row-by-row into a byte buffer and moved in bulk instead
 * of ~15M per-word stream calls.
 */

#include "tfhe/serialize.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace strix {

// FrameWriter/FrameReader implementations moved to common/frame.cpp.

namespace {

/** Section ids used by the v2 frames. */
constexpr uint32_t kSectionShape = 1;
constexpr uint32_t kSectionBodies = 2;

void
writeU32Vector(FrameWriter &fw, const std::vector<uint32_t> &v)
{
    fw.u64(v.size());
    for (uint32_t x : v)
        fw.u32(x);
}

std::vector<uint32_t>
readU32Vector(FrameReader &fr)
{
    uint64_t n = fr.u64();
    // No serialized structure holds a vector anywhere near 2^25
    // entries (LWE dims cap at 2^24); a bigger count is a corrupt or
    // hostile length field (found by the fuzz sweep in
    // tests/test_serialize.cpp).
    if (n > (1ull << 25))
        throw std::runtime_error("serialize: implausible vector size");
    // Grow with the bytes actually present rather than trusting the
    // length field with one eager allocation: a flipped length byte
    // on a short frame then throws "truncated" after consuming what
    // exists instead of first resizing to 128 MiB.
    std::vector<uint32_t> v;
    v.reserve(static_cast<size_t>(std::min<uint64_t>(n, 4096)));
    for (uint64_t i = 0; i < n; ++i)
        v.push_back(fr.u32());
    return v;
}

/** Little-endian encode @p bits at @p out (8 bytes). */
void
putU64Le(unsigned char *out, uint64_t bits)
{
    for (int b = 0; b < 8; ++b)
        out[b] = static_cast<unsigned char>(bits >> (8 * b));
}

/** Little-endian decode 8 bytes at @p in. */
uint64_t
getU64Le(const unsigned char *in)
{
    uint64_t bits = 0;
    for (int b = 0; b < 8; ++b)
        bits |= uint64_t(in[b]) << (8 * b);
    return bits;
}

/** Stage @p row into @p buf, 16 bytes per complex point. */
void
stageFreqPoly(std::vector<unsigned char> &buf, const FreqPolynomial &row)
{
    buf.resize(row.size() * 16);
    for (size_t j = 0; j < row.size(); ++j) {
        uint64_t re_bits, im_bits;
        const double re = row[j].real(), im = row[j].imag();
        std::memcpy(&re_bits, &re, sizeof(re_bits));
        std::memcpy(&im_bits, &im, sizeof(im_bits));
        putU64Le(buf.data() + j * 16, re_bits);
        putU64Le(buf.data() + j * 16 + 8, im_bits);
    }
}

/** Decode a staged freq row back into @p row (half_n points). */
void
unstageFreqPoly(FreqPolynomial &row, const std::vector<unsigned char> &buf,
                size_t half_n)
{
    row.resize(half_n);
    for (size_t j = 0; j < half_n; ++j) {
        uint64_t re_bits = getU64Le(buf.data() + j * 16);
        uint64_t im_bits = getU64Le(buf.data() + j * 16 + 8);
        double re, im;
        std::memcpy(&re, &re_bits, sizeof(re));
        std::memcpy(&im, &im_bits, sizeof(im));
        row[j] = Cplx(re, im);
    }
}

/**
 * Plausibility caps for a BSK shape off the wire -- same caps as the
 * LWE/GLWE key readers, plus power-of-two N: the FFT engine panics
 * (aborts) on other sizes, and hostile input must throw, never abort.
 */
void
checkBskShape(uint32_t n, uint32_t k, uint32_t big_n,
              const GadgetParams &g)
{
    if (n == 0 || n > (1u << 24) || k == 0 || k > 16 || big_n < 2 ||
        big_n > (1u << 20) || (big_n & (big_n - 1)) != 0 ||
        g.levels == 0 || g.levels > 64 || g.base_bits == 0 ||
        g.base_bits > 32)
        throw std::runtime_error("serialize: implausible bsk shape");
}

} // namespace

void
serialize(std::ostream &os, const TfheParams &p)
{
    FrameWriter fw(os, SerialTag::Params, kSerializeVersion);
    fw.u64(p.name.size());
    fw.bytes(p.name.data(), p.name.size());
    fw.u32(p.n);
    fw.u32(p.N);
    fw.u32(p.k);
    fw.u32(p.l_bsk);
    fw.u32(p.bg_bits);
    fw.u32(p.l_ksk);
    fw.u32(p.ks_base_bits);
    fw.f64(p.lwe_noise);
    fw.f64(p.glwe_noise);
    fw.u32(static_cast<uint32_t>(p.lambda));
}

TfheParams
deserializeParams(std::istream &is)
{
    FrameReader fr(is, SerialTag::Params, kSerializeVersion, "params");
    TfheParams p;
    uint64_t len = fr.u64();
    if (len > 4096)
        throw std::runtime_error("serialize: implausible name length");
    p.name.resize(len);
    fr.bytes(p.name.data(), len);
    p.n = fr.u32();
    p.N = fr.u32();
    p.k = fr.u32();
    p.l_bsk = fr.u32();
    p.bg_bits = fr.u32();
    p.l_ksk = fr.u32();
    p.ks_base_bits = fr.u32();
    p.lwe_noise = fr.f64();
    p.glwe_noise = fr.f64();
    p.lambda = static_cast<int>(fr.u32());
    return p;
}

void
serialize(std::ostream &os, const LweKey &key)
{
    FrameWriter fw(os, SerialTag::LweKey, kSerializeVersion);
    fw.u64(key.dim());
    for (uint32_t i = 0; i < key.dim(); ++i)
        fw.u32(static_cast<uint32_t>(key.bit(i)));
}

LweKey
deserializeLweKey(std::istream &is)
{
    FrameReader fr(is, SerialTag::LweKey, kSerializeVersion, "LWE key");
    uint64_t n = fr.u64();
    if (n > (1u << 24))
        throw std::runtime_error("serialize: implausible key size");
    std::vector<int32_t> bits(n);
    for (auto &b : bits)
        b = static_cast<int32_t>(fr.u32());
    return LweKey(std::move(bits));
}

void
serialize(std::ostream &os, const LweCiphertext &ct)
{
    FrameWriter fw(os, SerialTag::LweCiphertext, kSerializeVersion);
    writeU32Vector(fw, ct.raw());
}

LweCiphertext
deserializeLweCiphertext(std::istream &is)
{
    FrameReader fr(is, SerialTag::LweCiphertext, kSerializeVersion,
                   "LWE ciphertext");
    std::vector<uint32_t> raw = readU32Vector(fr);
    if (raw.empty())
        throw std::runtime_error("serialize: empty ciphertext");
    LweCiphertext ct(static_cast<uint32_t>(raw.size() - 1));
    ct.raw() = std::move(raw);
    return ct;
}

void
serialize(std::ostream &os, const GlweKey &key)
{
    FrameWriter fw(os, SerialTag::GlweKey, kSerializeVersion);
    fw.u32(key.k());
    fw.u32(key.ringDim());
    for (uint32_t i = 0; i < key.k(); ++i)
        for (uint32_t j = 0; j < key.ringDim(); ++j)
            fw.u32(static_cast<uint32_t>(key.poly(i)[j]));
}

GlweKey
deserializeGlweKey(std::istream &is)
{
    FrameReader fr(is, SerialTag::GlweKey, kSerializeVersion,
                   "GLWE key");
    uint32_t k = fr.u32();
    uint32_t big_n = fr.u32();
    if (k > 16 || big_n > (1u << 20))
        throw std::runtime_error("serialize: implausible GLWE key");
    std::vector<IntPolynomial> polys(k, IntPolynomial(big_n));
    for (uint32_t i = 0; i < k; ++i)
        for (uint32_t j = 0; j < big_n; ++j)
            polys[i][j] = static_cast<int32_t>(fr.u32());
    return GlweKey(std::move(polys));
}

void
serialize(std::ostream &os, const TorusPolynomial &poly)
{
    FrameWriter fw(os, SerialTag::TorusPoly, kSerializeVersion);
    fw.u64(poly.size());
    for (size_t i = 0; i < poly.size(); ++i)
        fw.u32(poly[i]);
}

TorusPolynomial
deserializeTorusPolynomial(std::istream &is)
{
    FrameReader fr(is, SerialTag::TorusPoly, kSerializeVersion,
                   "torus polynomial");
    uint64_t n = fr.u64();
    if (n > (1u << 24))
        throw std::runtime_error("serialize: implausible poly size");
    TorusPolynomial poly(n);
    for (size_t i = 0; i < n; ++i)
        poly[i] = fr.u32();
    return poly;
}

void
serialize(std::ostream &os, const KeySwitchKey &ksk)
{
    FrameWriter fw(os, SerialTag::KeySwitchKey, kSerializeVersion);
    fw.u32(ksk.inDim());
    fw.u32(ksk.outDim());
    fw.u32(ksk.gadget().base_bits);
    fw.u32(ksk.gadget().levels);
    for (uint32_t i = 0; i < ksk.inDim(); ++i)
        for (uint32_t j = 0; j < ksk.gadget().levels; ++j)
            writeU32Vector(fw, ksk.row(i, j).raw());
}

namespace {

KeySwitchKey
readKeySwitchKeyBody(FrameReader &fr)
{
    uint32_t in_dim = fr.u32();
    uint32_t out_dim = fr.u32();
    GadgetParams g{fr.u32(), fr.u32()};
    if (in_dim > (1u << 24) || g.levels > 64)
        throw std::runtime_error("serialize: implausible ksk");
    std::vector<LweCiphertext> rows;
    rows.reserve(size_t(in_dim) * g.levels);
    for (uint64_t r = 0; r < uint64_t(in_dim) * g.levels; ++r) {
        std::vector<uint32_t> raw = readU32Vector(fr);
        if (raw.size() != size_t(out_dim) + 1)
            throw std::runtime_error("serialize: ksk row dim mismatch");
        LweCiphertext ct(out_dim);
        ct.raw() = std::move(raw);
        rows.push_back(std::move(ct));
    }
    return KeySwitchKey::fromRows(in_dim, out_dim, g, std::move(rows));
}

} // namespace

KeySwitchKey
deserializeKeySwitchKey(std::istream &is)
{
    FrameReader fr(is, SerialTag::KeySwitchKey, kSerializeVersion,
                   "keyswitch key");
    return readKeySwitchKeyBody(fr);
}

void
serialize(std::ostream &os, const BootstrappingKey &bsk)
{
    // Shape is written once (every per-bit GGSW shares it); rows are
    // the frequency-domain images, bit-exact via the double framing.
    FrameWriter fw(os, SerialTag::BootstrapKey, kSerializeVersion);
    const TfheParams &p = bsk.params();
    fw.u32(bsk.n());
    fw.u32(p.k);
    fw.u32(p.N);
    fw.u32(p.bg_bits);
    fw.u32(p.l_bsk);
    std::vector<unsigned char> buf;
    for (uint32_t i = 0; i < bsk.n(); ++i) {
        for (const FreqPolynomial &row : bsk.bit(i).rawRows()) {
            stageFreqPoly(buf, row);
            fw.bytes(buf.data(), buf.size());
        }
    }
}

namespace {

/**
 * Body of the BSK frame after the header. When @p expect is non-null
 * (the EvalKeys reader), the shape fields are cross-checked against
 * that parameter frame *before* committing to the large row read, and
 * the key is bound to it; otherwise a minimal shape-consistent
 * parameter set is synthesized.
 */
BootstrappingKey
readBootstrappingKeyBody(FrameReader &fr, const TfheParams *expect)
{
    uint32_t n = fr.u32();
    uint32_t k = fr.u32();
    uint32_t big_n = fr.u32();
    GadgetParams g{fr.u32(), fr.u32()};
    if (expect &&
        (n != expect->n || k != expect->k || big_n != expect->N ||
         g.base_bits != expect->bg_bits || g.levels != expect->l_bsk))
        throw std::runtime_error(
            "serialize: eval-keys bsk/params mismatch");
    checkBskShape(n, k, big_n, g);

    const size_t rows_per_bit = size_t(k + 1) * g.levels * (k + 1);
    const size_t half_n = size_t(big_n) / 2;
    std::vector<GgswFft> bits;
    // Same discipline as readU32Vector: grow with the bytes actually
    // present instead of trusting the length field with one eager
    // allocation (n can claim 2^24 bits on a 60-byte hostile frame).
    bits.reserve(std::min<size_t>(n, 4096));
    std::vector<unsigned char> buf(half_n * 16);
    for (uint32_t i = 0; i < n; ++i) {
        std::vector<FreqPolynomial> rows(rows_per_bit);
        for (FreqPolynomial &row : rows) {
            // Bulk-read the row (the write side's layout) in one
            // call; a short read throws like the truncation path.
            fr.bytes(buf.data(), buf.size());
            unstageFreqPoly(row, buf, half_n);
        }
        bits.push_back(
            GgswFft::fromRawRows(k, big_n, g, std::move(rows)));
    }

    if (expect)
        return BootstrappingKey::fromBits(*expect, std::move(bits));
    // fromBits() panics on mismatch, so hand it params that are
    // consistent by construction.
    TfheParams p{};
    p.name = "deserialized-bsk";
    p.n = n;
    p.N = big_n;
    p.k = k;
    p.bg_bits = g.base_bits;
    p.l_bsk = g.levels;
    return BootstrappingKey::fromBits(p, std::move(bits));
}

} // namespace

BootstrappingKey
deserializeBootstrappingKey(std::istream &is)
{
    FrameReader fr(is, SerialTag::BootstrapKey, kSerializeVersion,
                   "bootstrapping key");
    return readBootstrappingKeyBody(fr, nullptr);
}

void
serialize(std::ostream &os, const EvalKeys &keys)
{
    FrameWriter fw(os, SerialTag::EvalKeys, kSerializeVersion);
    serialize(os, keys.params());
    serialize(os, keys.bsk());
    serialize(os, keys.ksk());
}

void
serialize(std::ostream &os, const EncryptedUint &x)
{
    FrameWriter fw(os, SerialTag::EncryptedUint, kSerializeVersion);
    fw.u32(x.digit_bits);
    fw.u64(x.digits.size());
    for (const auto &d : x.digits)
        writeU32Vector(fw, d.raw());
}

EncryptedUint
deserializeEncryptedUint(std::istream &is)
{
    FrameReader fr(is, SerialTag::EncryptedUint, kSerializeVersion,
                   "encrypted uint");
    EncryptedUint x;
    x.digit_bits = fr.u32();
    uint64_t n = fr.u64();
    if (n > (1u << 16))
        throw std::runtime_error("serialize: implausible digit count");
    for (uint64_t i = 0; i < n; ++i) {
        std::vector<uint32_t> raw = readU32Vector(fr);
        if (raw.empty())
            throw std::runtime_error("serialize: empty digit");
        LweCiphertext ct(static_cast<uint32_t>(raw.size() - 1));
        ct.raw() = std::move(raw);
        x.digits.push_back(std::move(ct));
    }
    return x;
}

// --- seeded (v2) frames ----------------------------------------------

namespace {

/**
 * BSK2: shape + mask seed in one checked section, then the
 * frequency-domain *body column* of every GLWE row (column k of
 * GgswFft::rawRows) in another. The k mask columns per row are not
 * written -- the reader re-expands them from per-row forks of the
 * seed (BootstrappingKey::fromSeededBodies), cutting the frame to
 * ~1/(k+1) of BSK1.
 */
void
writeSeededBsk(std::ostream &os, const BootstrappingKey &bsk,
               uint64_t mask_seed)
{
    FrameWriter fw(os, SerialTag::SeededBootstrapKey,
                   kSerializeVersionSeeded);
    const TfheParams &p = bsk.params();
    fw.beginSection(kSectionShape);
    fw.u32(bsk.n());
    fw.u32(p.k);
    fw.u32(p.N);
    fw.u32(p.bg_bits);
    fw.u32(p.l_bsk);
    fw.u64(mask_seed);
    fw.endSection();

    const size_t rows_per_bit = size_t(p.k + 1) * p.l_bsk;
    fw.beginSection(kSectionBodies);
    std::vector<unsigned char> buf;
    for (uint32_t i = 0; i < bsk.n(); ++i) {
        for (size_t r = 0; r < rows_per_bit; ++r) {
            stageFreqPoly(buf, bsk.bit(i).row(r, p.k));
            fw.bytes(buf.data(), buf.size());
        }
    }
    fw.endSection();
}

BootstrappingKey
readSeededBsk(std::istream &is, const TfheParams &expect,
              uint64_t &mask_seed_out)
{
    FrameReader fr(is, SerialTag::SeededBootstrapKey,
                   kSerializeVersionSeeded, "seeded bootstrapping key");
    fr.enterSection(kSectionShape, 28);
    uint32_t n = fr.u32();
    uint32_t k = fr.u32();
    uint32_t big_n = fr.u32();
    GadgetParams g{fr.u32(), fr.u32()};
    mask_seed_out = fr.u64();
    fr.leaveSection();
    if (n != expect.n || k != expect.k || big_n != expect.N ||
        g.base_bits != expect.bg_bits || g.levels != expect.l_bsk)
        throw std::runtime_error(
            "serialize: eval-keys bsk/params mismatch");
    checkBskShape(n, k, big_n, g);

    const uint64_t rows = uint64_t(n) * (k + 1) * g.levels;
    const size_t half_n = size_t(big_n) / 2;
    const uint64_t poly_bytes = uint64_t(half_n) * 16;
    fr.enterSection(kSectionBodies, rows * poly_bytes);
    if (fr.sectionRemaining() != rows * poly_bytes)
        throw std::runtime_error(
            "serialize: seeded bsk body length mismatch");
    std::vector<FreqPolynomial> bodies;
    // Incremental growth against hostile lengths, as everywhere: a
    // huge claimed n on a short stream throws "truncated" after
    // consuming what exists, before any multi-GiB allocation.
    bodies.reserve(std::min<uint64_t>(rows, 4096));
    std::vector<unsigned char> buf(poly_bytes);
    for (uint64_t r = 0; r < rows; ++r) {
        fr.bytes(buf.data(), buf.size());
        FreqPolynomial body;
        unstageFreqPoly(body, buf, half_n);
        bodies.push_back(std::move(body));
    }
    fr.leaveSection();
    // Shapes fully validated above: the panics inside the rebuild are
    // unreachable from wire input.
    return BootstrappingKey::fromSeededBodies(expect, mask_seed_out,
                                              std::move(bodies));
}

/**
 * KSK2: shape + mask seed in one checked section, then only the body
 * scalar of every LWE row -- 1/(n+1) of KSK1. Masks re-expand from
 * per-row forks of the seed (KeySwitchKey::fromSeededBodies).
 */
void
writeSeededKsk(std::ostream &os, const KeySwitchKey &ksk,
               uint64_t mask_seed)
{
    FrameWriter fw(os, SerialTag::SeededKeySwitchKey,
                   kSerializeVersionSeeded);
    fw.beginSection(kSectionShape);
    fw.u32(ksk.inDim());
    fw.u32(ksk.outDim());
    fw.u32(ksk.gadget().base_bits);
    fw.u32(ksk.gadget().levels);
    fw.u64(mask_seed);
    fw.endSection();

    fw.beginSection(kSectionBodies);
    for (uint32_t i = 0; i < ksk.inDim(); ++i)
        for (uint32_t j = 0; j < ksk.gadget().levels; ++j)
            fw.u32(ksk.row(i, j).b());
    fw.endSection();
}

KeySwitchKey
readSeededKsk(std::istream &is, const TfheParams &expect,
              uint64_t &mask_seed_out)
{
    FrameReader fr(is, SerialTag::SeededKeySwitchKey,
                   kSerializeVersionSeeded, "seeded keyswitch key");
    fr.enterSection(kSectionShape, 24);
    uint32_t in_dim = fr.u32();
    uint32_t out_dim = fr.u32();
    GadgetParams g{fr.u32(), fr.u32()};
    mask_seed_out = fr.u64();
    fr.leaveSection();
    if (uint64_t(in_dim) != uint64_t(expect.k) * expect.N ||
        out_dim != expect.n || g.levels != expect.l_ksk ||
        g.base_bits != expect.ks_base_bits)
        throw std::runtime_error(
            "serialize: eval-keys ksk/params mismatch");
    if (in_dim == 0 || in_dim > (1u << 24) || out_dim == 0 ||
        out_dim > (1u << 24) || g.levels == 0 || g.levels > 64 ||
        g.base_bits == 0 || g.base_bits > 32)
        throw std::runtime_error("serialize: implausible ksk");

    const uint64_t rows = uint64_t(in_dim) * g.levels;
    fr.enterSection(kSectionBodies, rows * 4);
    if (fr.sectionRemaining() != rows * 4)
        throw std::runtime_error(
            "serialize: seeded ksk body length mismatch");
    std::vector<Torus32> bodies;
    bodies.reserve(std::min<uint64_t>(rows, 4096));
    for (uint64_t r = 0; r < rows; ++r)
        bodies.push_back(fr.u32());
    fr.leaveSection();
    return KeySwitchKey::fromSeededBodies(in_dim, out_dim, g,
                                          mask_seed_out, bodies);
}

} // namespace

void
serialize(std::ostream &os, const EvalKeys &keys, EvalKeysFormat format)
{
    if (format == EvalKeysFormat::Expanded) {
        serialize(os, keys);
        return;
    }
    if (!keys.seeds())
        throw std::runtime_error(
            "serialize: bundle carries no mask seeds (expanded-only "
            "key material); use EvalKeysFormat::Expanded");
    FrameWriter fw(os, SerialTag::SeededEvalKeys,
                   kSerializeVersionSeeded);
    serialize(os, keys.params());
    writeSeededBsk(os, keys.bsk(), keys.seeds()->bsk_mask);
    writeSeededKsk(os, keys.ksk(), keys.seeds()->ksk_mask);
}

std::shared_ptr<const EvalKeys>
deserializeEvalKeys(std::istream &is)
{
    FrameReader fr(is);
    if (fr.tag() == static_cast<uint32_t>(SerialTag::EvalKeys)) {
        if (fr.version() != kSerializeVersion)
            throw std::runtime_error("serialize: unsupported version");
        TfheParams p = deserializeParams(is);
        FrameReader bsk_fr(is, SerialTag::BootstrapKey,
                           kSerializeVersion, "bootstrapping key");
        // Cross-validation against the parameter frame happens inside
        // the body reader (and below for the KSK): EvalKeys panics on
        // shape mismatch (internal invariant), while a corrupt or
        // hostile stream must throw.
        BootstrappingKey bsk = readBootstrappingKeyBody(bsk_fr, &p);
        KeySwitchKey ksk = deserializeKeySwitchKey(is);
        if (uint64_t(ksk.inDim()) != uint64_t(p.k) * p.N ||
            ksk.outDim() != p.n || ksk.gadget().levels != p.l_ksk ||
            ksk.gadget().base_bits != p.ks_base_bits)
            throw std::runtime_error(
                "serialize: eval-keys ksk/params mismatch");
        return std::make_shared<const EvalKeys>(p, std::move(bsk),
                                                std::move(ksk));
    }
    if (fr.tag() == static_cast<uint32_t>(SerialTag::SeededEvalKeys)) {
        if (fr.version() != kSerializeVersionSeeded)
            throw std::runtime_error("serialize: unsupported version");
        TfheParams p = deserializeParams(is);
        EvalKeySeeds seeds{0, 0};
        BootstrappingKey bsk = readSeededBsk(is, p, seeds.bsk_mask);
        KeySwitchKey ksk = readSeededKsk(is, p, seeds.ksk_mask);
        // Keep the seeds: the rebuilt bundle re-serializes in either
        // format, byte-identically to the original's frames.
        return std::make_shared<const EvalKeys>(p, std::move(bsk),
                                                std::move(ksk), seeds);
    }
    throw std::runtime_error("serialize: expected eval keys frame");
}

} // namespace strix
