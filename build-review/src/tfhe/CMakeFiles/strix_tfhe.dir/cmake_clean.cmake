file(REMOVE_RECURSE
  "CMakeFiles/strix_tfhe.dir/bootstrap.cpp.o"
  "CMakeFiles/strix_tfhe.dir/bootstrap.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/context.cpp.o"
  "CMakeFiles/strix_tfhe.dir/context.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/decompose.cpp.o"
  "CMakeFiles/strix_tfhe.dir/decompose.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/decomposer_hw.cpp.o"
  "CMakeFiles/strix_tfhe.dir/decomposer_hw.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/gates.cpp.o"
  "CMakeFiles/strix_tfhe.dir/gates.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/ggsw.cpp.o"
  "CMakeFiles/strix_tfhe.dir/ggsw.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/glwe.cpp.o"
  "CMakeFiles/strix_tfhe.dir/glwe.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/integer.cpp.o"
  "CMakeFiles/strix_tfhe.dir/integer.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/keyswitch.cpp.o"
  "CMakeFiles/strix_tfhe.dir/keyswitch.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/lwe.cpp.o"
  "CMakeFiles/strix_tfhe.dir/lwe.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/noise.cpp.o"
  "CMakeFiles/strix_tfhe.dir/noise.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/params.cpp.o"
  "CMakeFiles/strix_tfhe.dir/params.cpp.o.d"
  "CMakeFiles/strix_tfhe.dir/serialize.cpp.o"
  "CMakeFiles/strix_tfhe.dir/serialize.cpp.o.d"
  "libstrix_tfhe.a"
  "libstrix_tfhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strix_tfhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
