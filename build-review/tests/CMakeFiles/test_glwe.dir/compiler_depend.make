# Empty compiler generated dependencies file for test_glwe.
# This may be replaced when dependencies are built.
