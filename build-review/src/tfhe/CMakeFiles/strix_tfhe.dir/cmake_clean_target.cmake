file(REMOVE_RECURSE
  "libstrix_tfhe.a"
)
