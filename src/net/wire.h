/**
 * @file
 * MSG1: the length-prefixed message framing of the serving protocol.
 *
 * Every message is one frame, built on the common FrameWriter layer
 * (same header shape as the TFHE serialization formats -- a 4-byte
 * tag + u32 version):
 *
 *   +--------+---------+-------+----------+------------+-------------+
 *   | "MSG1" | version | type  | tenant   | request id | deadline us |
 *   |  u32   |  u32    | u32   | u64      | u64        | u64         |
 *   +--------+---------+-------+----------+------------+-------------+
 *   | payload length u64 | payload bytes ...                         |
 *   +-----------------------------------------------------------------+
 *
 * all little-endian, 44 header bytes. The payload of the TFHE request
 * types is itself made of the hardened serialize.h frames (LCT1/TPLY/
 * EVK1/EVK2), so a hostile payload is rejected by the same validating
 * readers the file formats use; this layer only validates the outer
 * skeleton (magic, version, a per-connection payload-length cap so a
 * length-lying header can never drive allocation).
 *
 * FrameDecoder is the incremental read-side: feed() raw bytes as they
 * arrive, next() yields complete messages; malformed outer framing
 * throws std::runtime_error (the server answers with an error frame
 * and/or closes -- it never crashes on wire bytes).
 */

#ifndef STRIX_NET_WIRE_H
#define STRIX_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace strix {

/** "MSG1" as a little-endian u32 tag (FrameWriter header). */
inline constexpr uint32_t kMsg1Magic = 0x3147534D;
/** Protocol version this build speaks. */
inline constexpr uint32_t kMsg1Version = 1;
/** Fixed byte length of the MSG1 header (through payload length). */
inline constexpr size_t kMsg1HeaderBytes = 44;

/** Message types. Requests are client->server; Ok/Error the replies. */
enum class MsgType : uint32_t
{
    Ping = 1,           //!< liveness probe; empty payload echoed back
    RegisterTenant = 2, //!< payload: an EVK1/EVK2 EvalKeys frame
    Bootstrap = 3,      //!< payload: LCT1 ciphertext + TPLY test vector
    ApplyLut = 4,       //!< payload: msg_space + table + LCT1 ciphertext
    EvalCircuit = 5,    //!< payload: gate list + input ciphertexts
    Ok = 0x100,         //!< success reply; payload per request type
    Error = 0x101,      //!< failure reply; payload = code + message
};

/** Structured failure codes carried by Error replies. */
enum class WireError : uint32_t
{
    Protocol = 1,         //!< malformed outer framing
    BadPayload = 2,       //!< payload failed its validating reader
    UnknownType = 3,      //!< request type this server does not speak
    UnknownTenant = 4,    //!< tenant never registered, or evicted
    Busy = 5,             //!< admission control rejected (backpressure)
    DeadlineExceeded = 6, //!< completed past the request deadline
    Infeasible = 7,       //!< circuit has no feasible noise plan
    ShuttingDown = 8,     //!< server is draining
    PayloadTooLarge = 9,  //!< payload length over the per-type cap
    Internal = 10,        //!< unexpected server-side failure
};

/** One decoded MSG1 message. */
struct WireMessage
{
    MsgType type = MsgType::Ping;
    uint64_t tenant = 0;
    uint64_t request_id = 0;
    /**
     * Relative latency budget in microseconds (0 = none): the server
     * measures it from request receipt, so client and server clocks
     * never need to agree.
     */
    uint64_t deadline_us = 0;
    std::vector<uint8_t> payload;
};

/** Encode @p msg as one MSG1 frame. */
std::vector<uint8_t> encodeMessage(const WireMessage &msg);

/** Convenience: encode an Error reply for (@p tenant, @p request). */
std::vector<uint8_t> encodeError(uint64_t tenant, uint64_t request_id,
                                 WireError code,
                                 const std::string &text);

/** Decoded Error-reply payload. */
struct ErrorInfo
{
    WireError code = WireError::Internal;
    std::string text;
};

/** Parse an Error payload; throws std::runtime_error if malformed. */
ErrorInfo decodeErrorPayload(const std::vector<uint8_t> &payload);

/** Human-readable name of @p code (for logs and error text). */
const char *wireErrorName(WireError code);

/** Outer-framing caps enforced by FrameDecoder. */
struct FrameLimits
{
    /**
     * Hard upper bound on any declared payload length. Key bundles
     * are the largest legitimate payload (tens of MiB at the paper
     * sets); the server additionally enforces tighter per-type caps.
     */
    uint64_t max_payload_bytes = 256ull << 20;
};

/**
 * Incremental MSG1 decoder. feed() appends raw bytes; next() yields
 * complete messages in arrival order. A malformed header (bad magic,
 * unsupported version, payload length over the cap) throws
 * std::runtime_error and poisons the decoder -- after a framing error
 * the byte stream has no trustworthy resync point, so the connection
 * must be closed.
 */
class FrameDecoder
{
  public:
    FrameDecoder() = default;
    explicit FrameDecoder(FrameLimits limits) : limits_(limits) {}

    /** Append @p len raw bytes from the socket. */
    void feed(const void *data, size_t len);

    /**
     * Extract the next complete message into @p out. Returns false
     * when more bytes are needed. Throws on malformed framing.
     */
    bool next(WireMessage &out);

    /** Bytes buffered but not yet consumed as messages. */
    size_t buffered() const { return buf_.size() - off_; }

  private:
    uint32_t u32At(size_t at) const;
    uint64_t u64At(size_t at) const;

    FrameLimits limits_;
    std::vector<uint8_t> buf_;
    size_t off_ = 0;      //!< consumed prefix of buf_
    bool poisoned_ = false;
};

} // namespace strix

#endif // STRIX_NET_WIRE_H
