/**
 * @file
 * xoshiro256** implementation and torus Gaussian sampling.
 */

#include "common/random.h"

#include <cmath>

namespace strix {

namespace {

/** splitmix64, used to expand the 64-bit seed into generator state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed) : seed_(seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

Rng
Rng::fork(uint64_t stream_id) const
{
    uint64_t x = seed_ ^ stream_id;
    return Rng(splitmix64(x));
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::uniformBelow(uint64_t bound)
{
    // Lemire's multiply-shift; bias is negligible for our purposes.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next64()) * bound;
    return static_cast<uint64_t>(m >> 64);
}

double
Rng::uniformDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::gaussianDouble()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    // Box-Muller; avoid log(0).
    double u1 = uniformDouble();
    while (u1 <= 1e-300)
        u1 = uniformDouble();
    double u2 = uniformDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

Torus32
Rng::gaussianTorus32(double stddev)
{
    if (stddev == 0.0)
        return 0;
    return doubleToTorus32(gaussianDouble() * stddev);
}

} // namespace strix
