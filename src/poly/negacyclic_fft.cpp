/**
 * @file
 * Folded negacyclic FFT implementation. The fold/twist/untwist loops
 * run through the runtime-dispatched kernel table (poly/simd.h), so
 * every caller -- externalProduct, blindRotate, bootstrapBatch --
 * picks up the vector backend transparently.
 */

#include "poly/negacyclic_fft.h"

#include <cmath>

#include "common/logging.h"
#include "poly/plan_cache.h"
#include "poly/simd.h"

namespace strix {

NegacyclicFft::NegacyclicFft(size_t n)
    : n_(n), plan_(FftPlan::get(n / 2))
{
    panicIfNot(n >= 4 && (n & (n - 1)) == 0,
               "negacyclic FFT ring dim must be 2^k >= 4");
    twist_.resize(n / 2);
    for (size_t j = 0; j < n / 2; ++j) {
        double ang = M_PI * static_cast<double>(j) / static_cast<double>(n);
        twist_[j] = Cplx(std::cos(ang), std::sin(ang));
    }
}

void
NegacyclicFft::forwardImpl(FreqPolynomial &out, const int32_t *coeffs,
                           size_t size, const PolyKernels &kernels) const
{
    panicIfNot(size == n_, "forward: polynomial size mismatch");
    const size_t m = n_ / 2;
    out.resize(m);
    // Fold: u_j = a_j + i * a_{j+N/2}, then twist by w^j.
    kernels.twist(out.data(), coeffs, coeffs + m, twist_.data(), m);
    plan_.forward(out.data(), kernels);
}

void
NegacyclicFft::forward(FreqPolynomial &out, const IntPolynomial &poly) const
{
    forward(out, poly, activeKernels());
}

void
NegacyclicFft::forward(FreqPolynomial &out, const TorusPolynomial &poly) const
{
    forward(out, poly, activeKernels());
}

void
NegacyclicFft::forward(FreqPolynomial &out, const IntPolynomial &poly,
                       const PolyKernels &kernels) const
{
    forwardImpl(out, poly.data(), poly.size(), kernels);
}

void
NegacyclicFft::forward(FreqPolynomial &out, const TorusPolynomial &poly,
                       const PolyKernels &kernels) const
{
    // Centered lift keeps magnitudes <= 2^31 and therefore the
    // double-precision products exact enough for TFHE noise budgets.
    // Torus32 is uint32_t; the int32_t view is the centered lift (and
    // a legal aliasing, signed-of-the-same-width).
    forwardImpl(out, reinterpret_cast<const int32_t *>(poly.data()),
                poly.size(), kernels);
}

void
NegacyclicFft::forwardBatch(Cplx *out, const int32_t *coeffs,
                            size_t batch) const
{
    forwardBatch(out, coeffs, batch, activeKernels());
}

void
NegacyclicFft::forwardBatch(Cplx *out, const int32_t *coeffs, size_t batch,
                            const PolyKernels &kernels) const
{
    const size_t m = n_ / 2;
    kernels.twistBatch(out, coeffs, twist_.data(), m, batch);
    plan_.forwardBatch(out, batch, kernels);
}

void
NegacyclicFft::inverse(TorusPolynomial &out, const FreqPolynomial &freq) const
{
    inverse(out, freq, activeKernels());
}

void
NegacyclicFft::inverse(TorusPolynomial &out, const FreqPolynomial &freq,
                       const PolyKernels &kernels) const
{
    panicIfNot(out.size() == n_, "inverse: polynomial size mismatch");
    panicIfNot(freq.size() == n_ / 2, "inverse: freq size mismatch");
    const size_t m = n_ / 2;
    FreqPolynomial work = freq;
    plan_.inverse(work.data(), kernels);
    // Untwist by conj(w^j), round to the integer grid, wrap mod 2^32.
    kernels.untwist(out.data(), out.data() + m, work.data(),
                    twist_.data(), m);
}

void
NegacyclicFft::mulAccumulate(FreqPolynomial &out, const FreqPolynomial &a,
                             const FreqPolynomial &b)
{
    mulAccumulate(out, a, b, activeKernels());
}

void
NegacyclicFft::mulAccumulate(FreqPolynomial &out, const FreqPolynomial &a,
                             const FreqPolynomial &b,
                             const PolyKernels &kernels)
{
    panicIfNot(a.size() == b.size(), "mulAccumulate size mismatch");
    if (out.empty())
        out.assign(a.size(), Cplx(0, 0));
    // A wrong-sized non-empty accumulator used to be silently
    // zero-reinitialized, which masked shape bugs in callers (the
    // partial sum vanished along with the mismatch).
    panicIfNot(out.size() == a.size(),
               "mulAccumulate accumulator size mismatch");
    kernels.mulAccumulate(out.data(), a.data(), b.data(), a.size());
}

namespace {

detail::Log2PlanCache<NegacyclicFft> g_engine_cache;

} // namespace

const NegacyclicFft &
NegacyclicFft::get(size_t n)
{
    panicIfNot(n >= 4 && (n & (n - 1)) == 0,
               "negacyclic FFT ring dim must be 2^k >= 4");
    return g_engine_cache.get(n);
}

void
NegacyclicFft::prewarm(size_t n)
{
    get(n);
}

void
negacyclicMulFft(TorusPolynomial &result, const IntPolynomial &a,
                 const TorusPolynomial &b)
{
    const auto &eng = NegacyclicFft::get(a.size());
    FreqPolynomial fa, fb, prod;
    eng.forward(fa, a);
    eng.forward(fb, b);
    NegacyclicFft::mulAccumulate(prod, fa, fb);
    eng.inverse(result, prod);
}

void
negacyclicMulAddFft(TorusPolynomial &result, const IntPolynomial &a,
                    const TorusPolynomial &b)
{
    TorusPolynomial tmp(result.size());
    negacyclicMulFft(tmp, a, b);
    result.addAssign(tmp);
}

} // namespace strix
